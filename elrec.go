// Package elrec is the public API of this repository: a Go reproduction of
// "EL-Rec: Efficient Large-Scale Recommendation Model Training via
// Tensor-Train Embedding Table" (SC 2022).
//
// The package exposes three layers:
//
//   - The Eff-TT embedding bag (NewEffTTEmbeddingBag): a tensor-train
//     compressed, sum-pooling embedding table that is a drop-in replacement
//     for an uncompressed EmbeddingBag (NewEmbeddingBag), with the paper's
//     forward intermediate-result reuse and backward in-advance gradient
//     aggregation + fused update.
//
//   - Locality-based index reordering (BuildReordering): an offline
//     bijection over row ids built from access frequencies (global
//     information) and intra-batch co-occurrence (local information) via
//     modularity-based community detection.
//
//   - The EL-Rec training system (BuildSystem): a full DLRM with
//     HBM-capacity-aware table placement, an embedding parameter server
//     with pre-fetch/gradient queues, and the RAW-safe embedding cache.
//
// The deeper machinery lives in internal/ packages (tensor kernels, the
// DLRM model, the pipeline, baselines, the experiment harness); this facade
// re-exports the surface a downstream user needs.
package elrec

import (
	"io"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/criteoio"
	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/embedding"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/ps"
	"repro/internal/reorder"
	"repro/internal/serve"
	"repro/internal/served"
	"repro/internal/tensor"
	"repro/internal/tt"
)

// EmbeddingBag is the embedding-table abstraction shared by compressed and
// uncompressed tables: sum-pooling lookup over indices/offsets bags (the
// torch.nn.EmbeddingBag batch encoding) and a combined backward+SGD update.
type EmbeddingBag = dlrm.Table

// Options selects the Eff-TT optimizations; EffOptions enables the full
// set and NaiveOptions reproduces the TT-Rec baseline behaviour.
type Options = tt.Options

// EffOptions returns the full Eff-TT optimization set.
func EffOptions() Options { return tt.EffOptions() }

// NaiveOptions returns the TT-Rec baseline configuration (no reuse, no
// aggregation, unfused updates).
func NaiveOptions() Options { return tt.NaiveOptions() }

// NewEffTTEmbeddingBag builds a TT-compressed embedding bag for a rows×dim
// table at the given TT rank, initialized so materialized rows match the
// DLRM reference initialization scale. It is the drop-in replacement for
// NewEmbeddingBag: identical Lookup/Update semantics at a fraction of the
// memory.
func NewEffTTEmbeddingBag(rows, dim, rank int, seed uint64) (*tt.Table, error) {
	shape, err := tt.NewShape(rows, dim, rank)
	if err != nil {
		return nil, err
	}
	return tt.NewTable(shape, tensor.NewRNG(seed), math.Sqrt(1/float64(rows))), nil
}

// NewEmbeddingBag builds an uncompressed rows×dim embedding bag.
func NewEmbeddingBag(rows, dim int, seed uint64) *embedding.Bag {
	return embedding.NewBag(rows, dim, tensor.NewRNG(seed))
}

// NewGeneralTTEmbeddingBag builds a TT-compressed embedding bag with an
// arbitrary number of cores d ≥ 2 (the specialized Eff-TT table fixes
// d = 3; deeper factorizations compress harder at the cost of a longer
// multiplication chain). The returned table has the same Lookup/Update
// interface.
func NewGeneralTTEmbeddingBag(rows, dim, d, rank int, seed uint64) (*tt.GeneralTable, error) {
	shape, err := tt.NewGeneralShape(rows, dim, d, rank)
	if err != nil {
		return nil, err
	}
	return tt.NewGeneralTable(shape, tensor.NewRNG(seed), math.Sqrt(1/float64(rows))), nil
}

// DecomposeTable TT-decomposes an existing dense table (rows×dim, row-major)
// into an Eff-TT bag with the given rank via truncated TT-SVD — the
// "initialize from a pretrained table" path.
func DecomposeTable(rows, dim, rank int, weights []float32) (*tt.Table, error) {
	shape, err := tt.NewShape(rows, dim, rank)
	if err != nil {
		return nil, err
	}
	return tt.DecomposeDense(tensor.FromSlice(rows, dim, weights), shape)
}

// DatasetSpec describes a synthetic CTR dataset; Avazu, Kaggle and Terabyte
// return presets mirroring the paper's three benchmarks at a cardinality
// scale (1.0 = the real datasets' sizes).
type DatasetSpec = data.Spec

// Avazu returns the Avazu-like preset.
func Avazu(scale float64) DatasetSpec { return data.AvazuSpec(scale) }

// Kaggle returns the Criteo-Kaggle-like preset.
func Kaggle(scale float64) DatasetSpec { return data.KaggleSpec(scale) }

// Terabyte returns the Criteo-Terabyte-like preset.
func Terabyte(scale float64) DatasetSpec { return data.TerabyteSpec(scale) }

// NewDataset instantiates a deterministic dataset from a spec.
func NewDataset(spec DatasetSpec) (*data.Dataset, error) { return data.New(spec) }

// ReorderConfig tunes index-reordering bijection generation.
type ReorderConfig = reorder.Config

// Bijection is a permutation of one table's row ids.
type Bijection = reorder.Bijection

// BuildReordering builds the locality-based index bijection of one table
// from its access counts and a sample of batched indices (Algorithm 2 +
// Louvain community detection).
func BuildReordering(counts []int64, batches [][]int, cfg ReorderConfig) (*Bijection, error) {
	return reorder.Build(counts, batches, cfg)
}

// DefaultReorderConfig mirrors the paper's setup (5% hot rows).
func DefaultReorderConfig() ReorderConfig { return reorder.DefaultConfig() }

// ModelConfig describes the dense part of a DLRM (tower sizes, learning
// rate, embedding dimension).
type ModelConfig = dlrm.Config

// DLRMModel is the trainable/servable DLRM model — the type NewDLRM and
// System.Model return. Exported as an alias so callers outside the module
// can name it, e.g. when writing a ServingModelFactory closure.
type DLRMModel = dlrm.Model

// NewDLRM assembles a DLRM over the given embedding tables.
func NewDLRM(cfg ModelConfig, tables []EmbeddingBag) (*DLRMModel, error) {
	return dlrm.NewModel(cfg, tables)
}

// SystemConfig configures a full EL-Rec training system.
type SystemConfig = core.Config

// System is a built EL-Rec instance: compressed tables placed in simulated
// device memory, overflow tables behind the parameter-server pipeline, and
// index reordering applied to every batch.
type System = core.System

// DefaultSystemConfig returns a ready-to-train configuration for a dataset.
func DefaultSystemConfig(spec DatasetSpec) SystemConfig { return core.DefaultConfig(spec) }

// BuildSystem constructs an EL-Rec system: profiling, reordering, table
// construction with HBM-aware placement, and the pipeline when host memory
// is needed.
func BuildSystem(cfg SystemConfig) (*System, error) { return core.Build(cfg) }

// CriteoSchema describes the on-disk Criteo TSV layout (13 integer + 26
// categorical features) with a hash range per table.
type CriteoSchema = criteoio.Schema

// NewCriteoReader streams training batches from real Criteo-format TSV data
// (label \t integer features \t hex categorical features): categorical
// values hash into each table's range, integers get the log(1+x) transform.
func NewCriteoReader(r io.Reader, schema CriteoSchema) (*criteoio.Reader, error) {
	return criteoio.NewReader(r, schema)
}

// Ranker scores candidate items against a user context and returns the
// top-k, the ranking-stage inference pattern.
type Ranker = serve.Ranker

// RankContext is one user/request context for the Ranker.
type RankContext = serve.Context

// Scored pairs a candidate item with its predicted CTR.
type Scored = serve.Scored

// NewRanker wraps a trained model for candidate ranking; itemFeature is the
// categorical feature carrying the candidate item id. A Ranker is
// single-goroutine (its model owns reusable scratch); for concurrent
// traffic use NewServingPool.
func NewRanker(m *dlrm.Model, itemFeature, batchSize int) (*Ranker, error) {
	return serve.NewRanker(m, itemFeature, batchSize)
}

// ServingPool serves concurrent Score/TopK traffic over N isolated replicas
// of one trained model: per-replica deep-copied scratch over shared
// read-only TT cores, micro-batch request coalescing, and bounded-queue
// admission control with typed shedding. Results are bit-identical to the
// serial Ranker path. cmd/elrec-serve wraps it in an HTTP front end.
type ServingPool = served.Pool

// ServingOptions configures a ServingPool (replicas, queue depth, coalesce
// width, default deadline, clock, metrics registry).
type ServingOptions = served.Options

// ServingModelFactory builds a fresh model skeleton for checkpoint-backed
// serving; see ServingOptions.Factory and NewServingPoolFromCheckpoint.
type ServingModelFactory = served.ModelFactory

// NewServingPool clones model into Options.Replicas serving replicas. The
// pool's clones share model's embedding cores read-only, so model must not
// train while this pool serves it; a continuously retraining trainer should
// checkpoint and go through NewServingPoolFromCheckpoint plus
// ServingPool.SwapFromCheckpoint (or POST /reload on the HTTP handler),
// which hot-swap new versions in with zero dropped requests.
func NewServingPool(m *dlrm.Model, itemFeature, batchSize int, opts ServingOptions) (*ServingPool, error) {
	return served.New(m, itemFeature, batchSize, opts)
}

// NewServingPoolFromCheckpoint builds a serving pool whose first model
// version is loaded from a SaveModel checkpoint: opts.Factory constructs
// the architecture skeleton and the checkpoint bytes fill it, so the pool
// owns every parameter it serves and never aliases a live trainer's memory.
// The path becomes the default SwapFromCheckpoint / POST /reload source.
func NewServingPoolFromCheckpoint(path string, itemFeature, batchSize int, opts ServingOptions) (*ServingPool, error) {
	return served.NewFromCheckpoint(path, itemFeature, batchSize, opts)
}

// Typed serving-pool shedding errors (match with errors.Is): a full
// admission queue, a request that out-waited its deadline, and a draining
// pool.
var (
	ErrServingOverloaded = served.ErrOverloaded
	ErrServingDeadline   = served.ErrDeadline
	ErrServingShutdown   = served.ErrShutdown
)

// SaveModel / LoadModel checkpoint a trained model to and from a file,
// including TT cores and Adagrad state.
func SaveModel(path string, m *dlrm.Model) error { return checkpoint.SaveFile(path, m) }

// LoadModel restores a checkpoint saved with SaveModel into a model with
// the same architecture.
func LoadModel(path string, m *dlrm.Model) error { return checkpoint.LoadFile(path, m) }

// Fault-tolerant training surface. System.TrainContext trains under a
// context: cancellation drains the pipeline gracefully (in-flight batch
// finishes, every queued gradient is applied) and the returned TrainResult
// carries the partial loss curve plus the next resumable iteration.
// SystemConfig.CheckpointPath/CheckpointEvery enable periodic atomic
// training checkpoints; System.SaveCheckpoint and System.ResumeFrom persist
// and restore them, and a resumed run is bit-identical to one that never
// stopped.

// TrainResult is what System.TrainContext hands back, on success and on
// failure alike: the (possibly partial) loss curve, the number of completed
// iterations, the next resumable iteration and whether the in-memory
// parameters are consistent.
type TrainResult = ps.TrainResult

// TrainStats aggregates pipeline counters, including the fault-tolerance
// counters (injected faults, retries, backoff time, checkpoints written).
type TrainStats = ps.Stats

// RetryPolicy bounds transient-fault retries in the pipeline (capped
// exponential backoff); the zero value takes defaults.
type RetryPolicy = ps.RetryPolicy

// FaultInjector decides, per attempt, whether a pipeline operation faults.
// Set SystemConfig.Faults to inject deterministic failures for chaos and
// recovery testing; nil trains fault-free.
type FaultInjector = faults.Injector

// FaultConfig parameterizes NewSeededFaults: per-attempt probabilities for
// transient gather/apply failures, slow-server stalls and a fatal worker
// fault, all drawn deterministically from the seed.
type FaultConfig = faults.Config

// NewSeededFaults builds a deterministic fault injector: the same seed and
// schedule inject the same faults, so failure handling is replayable.
func NewSeededFaults(cfg FaultConfig) FaultInjector { return faults.NewSeeded(cfg) }

// IsInjected reports whether err originates from a fault injector rather
// than a genuine failure.
func IsInjected(err error) bool { return faults.IsInjected(err) }

// Observability surface. Set SystemConfig.Metrics to a registry and every
// component the build wires up exports its instruments into it: the
// parameter-server pipeline (ps_* counters, cache hits/misses, stage-latency
// histograms) and the Eff-TT tables (tt_* reuse and aggregation counters
// with derived ratio gauges). Set SystemConfig.Trace to a tracer and the
// pipeline records per-stage spans exportable as Chrome trace-event JSON.

// MetricsRegistry collects named counters, gauges and histograms from a
// training system; snapshot it with Snapshot for a JSON-marshalable view.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry ready to hang off
// SystemConfig.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsSnapshot is a point-in-time copy of a registry's instruments,
// JSON-marshalable under lowercase counters/gauges/histograms keys.
type MetricsSnapshot = obs.Snapshot

// Tracer records named spans from the pipeline stages; export them with
// WriteChromeTrace for chrome://tracing or Perfetto.
type Tracer = obs.Tracer

// NewTracer returns a tracer on the system clock, ready to hang off
// SystemConfig.Trace.
func NewTracer() *Tracer { return obs.NewTracer(nil) }
