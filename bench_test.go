package elrec

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/graphx"
	"repro/internal/tensor"
	"repro/internal/tt"
)

// ---------------------------------------------------------------------------
// Experiment benchmarks: one per table/figure of the paper. Each regenerates
// the experiment at a trimmed quick scale (a full sweep at default scale is
// cmd/elrec-bench's job); the benchmark time is the cost of reproducing that
// artifact end to end.
// ---------------------------------------------------------------------------

// benchScale returns a trimmed scale so the full -bench=. sweep stays fast.
func benchScale() bench.Scale {
	sc := bench.Quick()
	sc.Steps = 4
	sc.WarmSteps = 1
	sc.TrainSteps = 60
	return sc
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	sc := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(id, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2DatasetStats(b *testing.B)   { runExperiment(b, "table2") }
func BenchmarkTable3Footprint(b *testing.B)      { runExperiment(b, "table3") }
func BenchmarkTable4Accuracy(b *testing.B)       { runExperiment(b, "table4") }
func BenchmarkFig4aAccessSkew(b *testing.B)      { runExperiment(b, "fig4a") }
func BenchmarkFig4bUniquePerBatch(b *testing.B)  { runExperiment(b, "fig4b") }
func BenchmarkFig11EndToEndV100(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkFig11EndToEndT4(b *testing.B)      { runExperiment(b, "fig11-t4") }
func BenchmarkFig12MultiGPU(b *testing.B)        { runExperiment(b, "fig12") }
func BenchmarkFig13LargeTable(b *testing.B)      { runExperiment(b, "fig13") }
func BenchmarkFig14Breakdown(b *testing.B)       { runExperiment(b, "fig14") }
func BenchmarkFig15Convergence(b *testing.B)     { runExperiment(b, "fig15") }
func BenchmarkFig16Pipeline(b *testing.B)        { runExperiment(b, "fig16") }
func BenchmarkFig17LookupLatency(b *testing.B)   { runExperiment(b, "fig17") }
func BenchmarkFig18BackwardLatency(b *testing.B) { runExperiment(b, "fig18") }

// ---------------------------------------------------------------------------
// Primitive benchmarks: the kernels behind the figures, at a fixed
// representative configuration (50k-row table, dim 16, rank 8, batch 1024).
// The Eff-TT variants should beat their naive counterparts; Figure 17/18
// sweep these across batch sizes.
// ---------------------------------------------------------------------------

const (
	benchRows  = 50_000
	benchDim   = 16
	benchRank  = 8
	benchBatch = 1024
)

func benchTable(b *testing.B, opts tt.Options) (*tt.Table, []int, []int) {
	b.Helper()
	shape, err := tt.NewShape(benchRows, benchDim, benchRank)
	if err != nil {
		b.Fatal(err)
	}
	tbl := tt.NewTable(shape, tensor.NewRNG(1), 0.05)
	tbl.Opts = opts
	d, err := data.New(data.Spec{
		Name: "bench", NumDense: 1, TableRows: []int{benchRows},
		ZipfS: 1.15, ZipfV: 2, GroupSize: 64, ActiveGroups: 8, Locality: 0.8,
		Samples: 1 << 30, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	indices := d.BatchIndices(0, benchBatch, 0)
	offsets := make([]int, benchBatch)
	for i := range offsets {
		offsets[i] = i
	}
	return tbl, indices, offsets
}

func BenchmarkEffTTLookup(b *testing.B) {
	tbl, indices, offsets := benchTable(b, tt.EffOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Forward(indices, offsets)
	}
}

func BenchmarkNaiveTTLookup(b *testing.B) {
	tbl, indices, offsets := benchTable(b, tt.NaiveOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Forward(indices, offsets)
	}
}

func BenchmarkEffTTBackward(b *testing.B) {
	tbl, indices, offsets := benchTable(b, tt.EffOptions())
	dOut := tensor.New(benchBatch, benchDim)
	tensor.NewRNG(2).FillUniform(dOut.Data, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cache := tbl.Forward(indices, offsets)
		tbl.Backward(cache, dOut, 1e-4)
	}
}

func BenchmarkNaiveTTBackward(b *testing.B) {
	tbl, indices, offsets := benchTable(b, tt.NaiveOptions())
	dOut := tensor.New(benchBatch, benchDim)
	tensor.NewRNG(2).FillUniform(dOut.Data, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cache := tbl.Forward(indices, offsets)
		tbl.Backward(cache, dOut, 1e-4)
	}
}

func BenchmarkEmbeddingBagLookup(b *testing.B) {
	bag := embedding.NewBag(benchRows, benchDim, tensor.NewRNG(1))
	_, indices, offsets := benchTable(b, tt.EffOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bag.Lookup(indices, offsets)
	}
}

func BenchmarkLouvain(b *testing.B) {
	r := tensor.NewRNG(3)
	g := graphx.NewGraph(2000)
	for e := 0; e < 20_000; e++ {
		g.AddEdge(r.Intn(2000), r.Intn(2000), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphx.Louvain(g)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := tensor.NewRNG(4)
	a := tensor.New(128, 128)
	c := tensor.New(128, 128)
	out := tensor.New(128, 128)
	r.FillUniform(a.Data, 1)
	r.FillUniform(c.Data, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(out, a, c)
	}
}
