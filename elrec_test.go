package elrec

import (
	"strings"
	"testing"
)

func TestEffTTEmbeddingBagDropIn(t *testing.T) {
	dense := NewEmbeddingBag(1000, 16, 1)
	eff, err := NewEffTTEmbeddingBag(1000, 16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eff.FootprintBytes() >= dense.FootprintBytes() {
		t.Fatalf("TT footprint %d not below dense %d", eff.FootprintBytes(), dense.FootprintBytes())
	}
	indices, offsets := []int{3, 500, 999, 3}, []int{0, 2}
	for _, table := range []EmbeddingBag{dense, eff} {
		out := table.Lookup(indices, offsets)
		if out.Rows != 2 || out.Cols != 16 {
			t.Fatalf("lookup shape %dx%d", out.Rows, out.Cols)
		}
		grad := out.Clone()
		table.Update(indices, offsets, grad, 0.01)
	}
}

func TestNewEffTTEmbeddingBagBadDim(t *testing.T) {
	// A prime dimension factorizes as 1×1×p, which is always legal, so use
	// an invalid rank instead to exercise the error path.
	if _, err := NewEffTTEmbeddingBag(100, 16, 0, 1); err == nil {
		t.Fatal("zero rank accepted")
	}
}

func TestDecomposeTableRoundTrip(t *testing.T) {
	const rows, dim, rank = 60, 8, 6
	src, err := NewEffTTEmbeddingBag(rows, dim, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	dense := src.Materialize()
	got, err := DecomposeTable(rows, dim, rank, dense.Data)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Materialize().MaxAbsDiff(dense); d > 1e-3 {
		t.Fatalf("TT-SVD round trip error %v", d)
	}
}

func TestDatasetPresets(t *testing.T) {
	for _, spec := range []DatasetSpec{Avazu(0.01), Kaggle(0.01), Terabyte(0.01)} {
		d, err := NewDataset(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		b := d.Batch(0, 16)
		if b.Size() != 16 || len(b.Sparse) != spec.NumTables() {
			t.Fatalf("%s: bad batch shape", spec.Name)
		}
	}
}

func TestBuildReorderingFacade(t *testing.T) {
	counts := make([]int64, 100)
	for i := range counts {
		counts[i] = int64(100 - i)
	}
	bij, err := BuildReordering(counts, [][]int{{1, 2, 3}, {4, 5, 6}}, DefaultReorderConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := bij.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSystemEndToEnd(t *testing.T) {
	spec := Kaggle(0.0005)
	cfg := DefaultSystemConfig(spec)
	cfg.Model.EmbDim = 8
	cfg.Rank = 4
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	curve := sys.Train(0, 30, 64)
	if len(curve.Losses) != 30 {
		t.Fatalf("trained %d steps", len(curve.Losses))
	}
	acc, auc := sys.Evaluate(40, 3, 64)
	if acc <= 0 || auc < 0 || auc > 1 {
		t.Fatalf("evaluation out of range: acc=%v auc=%v", acc, auc)
	}
}

func TestNewDLRMFacade(t *testing.T) {
	tables := []EmbeddingBag{NewEmbeddingBag(50, 8, 1), NewEmbeddingBag(70, 8, 2)}
	cfg := ModelConfig{NumDense: 3, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 0.5, Seed: 1}
	m, err := NewDLRM(cfg, tables)
	if err != nil {
		t.Fatal(err)
	}
	if m.MLPBytes() <= 0 {
		t.Fatal("model has no dense parameters")
	}
}

func TestGeneralTTFacade(t *testing.T) {
	g, err := NewGeneralTTEmbeddingBag(500, 16, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Lookup([]int{1, 499}, []int{0, 1})
	if out.Rows != 2 || out.Cols != 16 {
		t.Fatalf("general lookup shape %dx%d", out.Rows, out.Cols)
	}
	g.Update([]int{1, 499}, []int{0, 1}, out, 0.01)
}

func TestSaveLoadModelFacade(t *testing.T) {
	tables := []EmbeddingBag{NewEmbeddingBag(40, 8, 1)}
	cfg := ModelConfig{NumDense: 2, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 0.5, Seed: 1}
	m, err := NewDLRM(cfg, tables)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.ckpt"
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewDLRM(cfg, []EmbeddingBag{NewEmbeddingBag(40, 8, 9)})
	if err := LoadModel(path, m2); err != nil {
		t.Fatal(err)
	}
}

func TestCriteoReaderFacade(t *testing.T) {
	schema := CriteoSchema{NumDense: 1, TableRows: []int{16, 16}}
	r, err := NewCriteoReader(strings.NewReader("1\t5\tab\tcd\n0\t\tab\t\n"), schema)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ReadBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 2 || len(b.Sparse) != 2 {
		t.Fatalf("batch %d samples, %d tables", b.Size(), len(b.Sparse))
	}
}
