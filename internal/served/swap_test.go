package served

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/tt"
)

// poolFactory builds the poolModel architecture untrained — the serving
// skeleton SwapFromCheckpoint fills from checkpoint bytes. Seeds are
// irrelevant: LoadFile overwrites every parameter.
func poolFactory() ModelFactory {
	return func() (*dlrm.Model, error) {
		tables, _, err := dlrm.BuildTables(poolSpec().TableRows,
			dlrm.TableSpec{Dim: 8, Rank: 4, TTThreshold: 1000, Opts: tt.EffOptions(), Seed: 3})
		if err != nil {
			return nil, err
		}
		return dlrm.NewModel(dlrm.Config{
			NumDense: 3, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 1.0, Seed: 4,
		}, tables)
	}
}

// saveVersions trains poolModel onward and checkpoints it at two training
// horizons, returning the two paths. The versions genuinely differ, so a
// stale-read bug cannot hide behind identical scores.
func saveVersions(t *testing.T) (v1, v2 string) {
	t.Helper()
	m := poolModel(t)
	dir := t.TempDir()
	v1 = filepath.Join(dir, "v1.ckpt")
	v2 = filepath.Join(dir, "v2.ckpt")
	if err := checkpoint.SaveFile(v1, m); err != nil {
		t.Fatal(err)
	}
	d, err := data.New(poolSpec())
	if err != nil {
		t.Fatal(err)
	}
	for it := 20; it < 40; it++ {
		m.TrainStep(d.Batch(it, 64))
	}
	if err := checkpoint.SaveFile(v2, m); err != nil {
		t.Fatal(err)
	}
	return v1, v2
}

// serialScores computes the serve.Ranker reference scores for every test
// goroutine on the checkpoint at path.
func serialScores(t *testing.T, path string, goroutines int) [][]float32 {
	t.Helper()
	m, err := loadVersion(poolFactory(), path)
	if err != nil {
		t.Fatal(err)
	}
	ranker, err := serve.NewRanker(m, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([][]float32, goroutines)
	for g := range refs {
		refs[g], err = ranker.Score(poolContext(g), poolCandidates(g))
		if err != nil {
			t.Fatal(err)
		}
	}
	return refs
}

func bitEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSwapUnderLoadBitExact is the swap-under-load regression: 8 goroutines
// hammer Score under -race while the main goroutine SwapFromCheckpoints in
// a loop between two genuinely different versions. Every response must
// succeed (zero sheds, zero drops) and be bit-identical to one of the two
// version references — a torn read mixing versions, or a stale clone
// serving after its version retired two swaps ago, both fail the membership
// check. Afterwards the hot pool must score bit-identically to a cold pool
// built from the final checkpoint, and the swap instruments must have fired.
func TestSwapUnderLoadBitExact(t *testing.T) {
	v1, v2 := saveVersions(t)
	paths := []string{v1, v2}
	const goroutines = 8
	refs := [][][]float32{
		serialScores(t, v1, goroutines),
		serialScores(t, v2, goroutines),
	}
	for g := 0; g < goroutines; g++ {
		if bitEqual(refs[0][g], refs[1][g]) {
			t.Fatalf("goroutine %d: v1 and v2 scores identical — versions must differ for the test to mean anything", g)
		}
	}

	reg := obs.NewRegistry()
	p, err := NewFromCheckpoint(v1, 1, 16, Options{
		Replicas: 4, QueueDepth: 256, MaxCoalesce: 4, Metrics: reg, Factory: poolFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.Version(); got != 1 {
		t.Fatalf("fresh pool version %d want 1", got)
	}

	stop := make(chan struct{})
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				scores, err := p.Score(poolContext(g), poolCandidates(g))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %v", g, it, err)
					return
				}
				if !bitEqual(scores, refs[0][g]) && !bitEqual(scores, refs[1][g]) {
					errs <- fmt.Errorf("goroutine %d iter %d: scores match neither checkpoint version", g, it)
					return
				}
			}
		}(g)
	}

	const swaps = 10
	for s := 0; s < swaps; s++ {
		next := paths[(s+1)%2]
		v, err := p.SwapFromCheckpoint(next)
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("swap %d: %v", s, err)
		}
		if v != int64(s+2) {
			close(stop)
			wg.Wait()
			t.Fatalf("swap %d returned version %d want %d", s, v, s+2)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Post-swap scores must be bit-exact vs a cold pool loaded from the
	// same (final) checkpoint.
	final := paths[swaps%2]
	cold, err := NewFromCheckpoint(final, 1, 16, Options{Replicas: 2, Factory: poolFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	for g := 0; g < goroutines; g++ {
		hot, err := p.Score(poolContext(g), poolCandidates(g))
		if err != nil {
			t.Fatal(err)
		}
		want, err := cold.Score(poolContext(g), poolCandidates(g))
		if err != nil {
			t.Fatal(err)
		}
		if !bitEqual(hot, want) {
			t.Fatalf("goroutine %d: hot pool diverges from cold pool on the same checkpoint", g)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Gauges["model_version"]; got != float64(swaps+1) {
		t.Fatalf("model_version gauge %v want %d", got, swaps+1)
	}
	if got := snap.Histograms["serve_swap_ns"].Count; got != swaps {
		t.Fatalf("serve_swap_ns count %d want %d", got, swaps)
	}
	if p.Version() != int64(swaps+1) {
		t.Fatalf("Version() %d want %d", p.Version(), swaps+1)
	}
}

// TestSwapFailuresLeavePoolServing drives every SwapFromCheckpoint failure
// mode and asserts the pool keeps serving the old version untouched.
func TestSwapFailuresLeavePoolServing(t *testing.T) {
	v1, _ := saveVersions(t)
	p, err := NewFromCheckpoint(v1, 1, 16, Options{Replicas: 2, Factory: poolFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	want := serialScores(t, v1, 1)[0]

	// Missing file → os.ErrNotExist surfaces for the 404 mapping.
	if _, err := p.SwapFromCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint: err %v, want os.ErrNotExist", err)
	}
	// Corrupt file → ErrCorruptCheckpoint; pool untouched.
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SwapFromCheckpoint(bad); !errors.Is(err, checkpoint.ErrCorruptCheckpoint) {
		t.Fatalf("corrupt checkpoint: err %v, want ErrCorruptCheckpoint", err)
	}
	if got := p.Version(); got != 1 {
		t.Fatalf("failed swaps bumped version to %d", got)
	}
	scores, err := p.Score(poolContext(0), poolCandidates(0))
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(scores, want) {
		t.Fatal("failed swaps disturbed the serving model")
	}

	// No factory → ErrInvalidConfig from both reload entry points.
	m, err := loadVersion(poolFactory(), v1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(m, 1, 16, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.SwapFromCheckpoint(v1); !errors.Is(err, serve.ErrInvalidConfig) {
		t.Fatalf("factoryless swap: err %v, want ErrInvalidConfig", err)
	}
	if _, err := plain.SwapFromCheckpoint(""); !errors.Is(err, serve.ErrInvalidConfig) {
		t.Fatalf("pathless swap: err %v, want ErrInvalidConfig", err)
	}
	if _, err := NewFromCheckpoint(v1, 1, 16, Options{Replicas: 1}); !errors.Is(err, serve.ErrInvalidConfig) {
		t.Fatalf("factoryless NewFromCheckpoint: err %v, want ErrInvalidConfig", err)
	}
}

// TestSwapAfterClose asserts a swap against a drained pool fails with
// ErrShutdown instead of deadlocking on dead workers.
func TestSwapAfterClose(t *testing.T) {
	m := poolModel(t)
	p, err := New(m, 1, 16, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Swap(m); !errors.Is(err, ErrShutdown) {
		t.Fatalf("swap after close: err %v, want ErrShutdown", err)
	}
}

// TestSwapDefaultPath asserts SwapFromCheckpoint("") re-reads the
// NewFromCheckpoint path.
func TestSwapDefaultPath(t *testing.T) {
	v1, _ := saveVersions(t)
	p, err := NewFromCheckpoint(v1, 1, 16, Options{Replicas: 1, Factory: poolFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	v, err := p.SwapFromCheckpoint("")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("default-path swap returned version %d want 2", v)
	}
}

// TestReadyFlipsDuringSwapAndClose pins the readiness state machine: ready
// while serving, not ready after Close. (Mid-swap readiness is exercised by
// the HTTP test via a slow factory.)
func TestReadyFlipsDuringSwapAndClose(t *testing.T) {
	m := poolModel(t)
	p, err := New(m, 1, 16, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Ready() {
		t.Fatal("fresh pool not ready")
	}
	p.Close()
	if p.Ready() {
		t.Fatal("closed pool reports ready")
	}
}

// TestScoreRowsZeroAllocSteadyState cross-checks hotalloc's static claim at
// runtime: once replica scratch has grown to the working shape, scoring a
// coalesced micro-batch allocates nothing. Uses an all-TT model — Eff-TT
// lookups run in arena scratch, while dense-table lookups allocate rows by
// contract.
func TestScoreRowsZeroAllocSteadyState(t *testing.T) {
	old := tensor.Workers()
	tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(old)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	tables, _, err := dlrm.BuildTables(poolSpec().TableRows,
		dlrm.TableSpec{Dim: 8, Rank: 4, TTThreshold: 0, Opts: tt.EffOptions(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dlrm.NewModel(dlrm.Config{
		NumDense: 3, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 1.0, Seed: 4,
	}, tables)
	if err != nil {
		t.Fatal(err)
	}
	p, err := newPool(m, 1, 16, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := p.workers[0].rep

	ctxs := make([]serve.Context, 4)
	for i := range ctxs {
		ctxs[i] = poolContext(i)
	}
	r.rows = r.rows[:0]
	for i := range ctxs {
		for _, c := range poolCandidates(i) {
			r.rows = append(r.rows, serve.Row{Ctx: &ctxs[i], Item: c})
		}
	}

	r.scoreRows() // warmup: grows the scores scratch to the row count
	allocs := testing.AllocsPerRun(20, func() {
		r.scoreRows()
	})
	if allocs != 0 {
		t.Fatalf("steady-state scoreRows allocated %v times per call, want 0", allocs)
	}
}
