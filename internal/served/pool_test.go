package served

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tt"
)

func poolSpec() data.Spec {
	return data.Spec{
		Name: "served", NumDense: 3, TableRows: []int{100, 2000},
		ZipfS: 1.2, ZipfV: 2, GroupSize: 16, ActiveGroups: 4, Locality: 0.8,
		Samples: 1 << 20, Seed: 61,
	}
}

// poolModel trains a small mixed dense/Eff-TT model: table 1 (2000 rows) is
// TT-compressed and carries the candidate item feature.
func poolModel(t *testing.T) *dlrm.Model {
	t.Helper()
	tables, _, err := dlrm.BuildTables(poolSpec().TableRows,
		dlrm.TableSpec{Dim: 8, Rank: 4, TTThreshold: 1000, Opts: tt.EffOptions(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dlrm.NewModel(dlrm.Config{
		NumDense: 3, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 1.0, Seed: 4,
	}, tables)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := data.New(poolSpec())
	for it := 0; it < 20; it++ {
		m.TrainStep(d.Batch(it, 64))
	}
	return m
}

// poolContext derives a distinct valid request context from a seed.
func poolContext(seed int) serve.Context {
	return serve.Context{
		Dense:  []float32{0.5 + float32(seed)*0.25, -1, 0.2 * float32(seed)},
		Sparse: []int{(seed * 13) % 100, 0},
	}
}

func poolCandidates(seed int) []int {
	out := make([]int, 12)
	for i := range out {
		out[i] = (seed*31 + i*97) % 2000
	}
	return out
}

// TestPoolConcurrentMatchesSerial is the tentpole regression: ≥8 goroutines
// drive mixed Score/TopK traffic through a 4-replica pool under -race, and
// every result must be bit-identical to the serial serve.Ranker path on the
// source model. The same workload on one shared model (no pool) is a data
// race — that is the bug the replica pool fixes.
func TestPoolConcurrentMatchesSerial(t *testing.T) {
	m := poolModel(t)

	// Serial references first, before the pool's clones share the cores.
	serial, err := serve.NewRanker(m, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const iters = 10
	wantScores := make([][]float32, goroutines)
	wantTop := make([][]serve.Scored, goroutines)
	for g := 0; g < goroutines; g++ {
		s, err := serial.Score(poolContext(g), poolCandidates(g))
		if err != nil {
			t.Fatal(err)
		}
		wantScores[g] = s
		top, err := serial.TopK(poolContext(g), poolCandidates(g), 5)
		if err != nil {
			t.Fatal(err)
		}
		wantTop[g] = top
	}

	p, err := New(m, 1, 16, Options{Replicas: 4, QueueDepth: 64, MaxCoalesce: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				scores, err := p.Score(poolContext(g), poolCandidates(g))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %v", g, it, err)
					return
				}
				for i := range wantScores[g] {
					if scores[i] != wantScores[g][i] {
						errs <- fmt.Errorf("goroutine %d iter %d: score %d = %v, serial says %v", g, it, i, scores[i], wantScores[g][i])
						return
					}
				}
				top, err := p.TopK(poolContext(g), poolCandidates(g), 5)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d topk: %v", g, it, err)
					return
				}
				for i := range wantTop[g] {
					if top[i] != wantTop[g][i] {
						errs <- fmt.Errorf("goroutine %d iter %d: top[%d] = %+v, serial says %+v", g, it, i, top[i], wantTop[g][i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPoolOverloadSheds fills the bounded queue of a stopped pool (no
// workers draining) and checks the typed shed.
func TestPoolOverloadSheds(t *testing.T) {
	m := poolModel(t)
	reg := obs.NewRegistry()
	p, err := newPool(m, 1, 16, Options{QueueDepth: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.admit(&request{ctx: poolContext(0), candidates: []int{1}}); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	err = p.admit(&request{ctx: poolContext(0), candidates: []int{1}})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: err = %v, want ErrOverloaded", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("serve_requests"); got != 3 {
		t.Fatalf("serve_requests = %d want 3", got)
	}
	if got := snap.Counter("serve_shed_overload"); got != 1 {
		t.Fatalf("serve_shed_overload = %d want 1", got)
	}
	if got := snap.Gauges["serve_queue_depth"]; got != 2 {
		t.Fatalf("serve_queue_depth = %v want 2", got)
	}
}

// TestPoolDeadlineSheds expires a queued request on a manual clock and
// drives the worker synchronously: the request must shed with ErrDeadline
// before any scoring happens.
func TestPoolDeadlineSheds(t *testing.T) {
	m := poolModel(t)
	clock := obs.NewManual(time.Unix(0, 0))
	reg := obs.NewRegistry()
	p, err := newPool(m, 1, 16, Options{QueueDepth: 4, Clock: clock, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	expired := &request{ctx: poolContext(1), candidates: poolCandidates(1), timeout: time.Millisecond}
	fresh := &request{ctx: poolContext(2), candidates: poolCandidates(2), timeout: time.Minute}
	if err := p.admit(expired); err != nil {
		t.Fatal(err)
	}
	if err := p.admit(fresh); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Millisecond)
	if !p.serveOne(p.workers[0].rep) {
		t.Fatal("serveOne reported a closed queue")
	}
	resp := <-expired.done
	if !errors.Is(resp.err, ErrDeadline) {
		t.Fatalf("expired request: err = %v, want ErrDeadline", resp.err)
	}
	resp = <-fresh.done
	if resp.err != nil {
		t.Fatalf("fresh request shed: %v", resp.err)
	}
	if len(resp.scores) != len(fresh.candidates) {
		t.Fatalf("fresh request got %d scores", len(resp.scores))
	}
	if got := reg.Snapshot().Counter("serve_shed_deadline"); got != 1 {
		t.Fatalf("serve_shed_deadline = %d want 1", got)
	}
}

// TestPoolCoalescesWaitingRequests: with requests already queued, one
// serveOne call must merge them into a single micro-batch whose scores
// match the serial path row for row.
func TestPoolCoalescesWaitingRequests(t *testing.T) {
	m := poolModel(t)
	serial, err := serve.NewRanker(m, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	p, err := newPool(m, 1, 16, Options{QueueDepth: 8, MaxCoalesce: 8, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]*request, 3)
	for i := range reqs {
		reqs[i] = &request{ctx: poolContext(i), candidates: poolCandidates(i)}
		if err := p.admit(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !p.serveOne(p.workers[0].rep) {
		t.Fatal("serveOne reported a closed queue")
	}
	for i, req := range reqs {
		resp := <-req.done
		if resp.err != nil {
			t.Fatalf("request %d: %v", i, resp.err)
		}
		want, err := serial.Score(poolContext(i), poolCandidates(i))
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if resp.scores[j] != want[j] {
				t.Fatalf("request %d score %d: coalesced %v != serial %v", i, j, resp.scores[j], want[j])
			}
		}
	}
	snap := reg.Snapshot()
	co := snap.Histograms["serve_coalesced_batch_size"]
	if co.Count != 1 || co.Max != 3 {
		t.Fatalf("serve_coalesced_batch_size %+v, want one micro-batch of 3", co)
	}
	if snap.Histograms["serve_exec_ns"].Count != 1 {
		t.Fatal("serve_exec_ns not observed")
	}
	if snap.Histograms["serve_queue_wait_ns"].Count != 3 {
		t.Fatal("serve_queue_wait_ns must record every request")
	}
	if got := snap.Gauges["serve_queue_depth"]; got != 0 {
		t.Fatalf("serve_queue_depth = %v want 0 after drain", got)
	}
}

// TestPoolHydrateStage: the Hydrate callback runs once per micro-batch with
// one entry per live request, its latency is observed, scores are unchanged,
// and a hydrate error fails every request in the batch.
func TestPoolHydrateStage(t *testing.T) {
	m := poolModel(t)
	serial, err := serve.NewRanker(m, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]HydrateRequest
	var fail error
	reg := obs.NewRegistry()
	p, err := newPool(m, 1, 16, Options{
		QueueDepth: 8, MaxCoalesce: 8, Metrics: reg,
		Hydrate: func(batch []HydrateRequest) error {
			copied := make([]HydrateRequest, len(batch))
			copy(copied, batch)
			batches = append(batches, copied)
			return fail
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]*request, 2)
	for i := range reqs {
		reqs[i] = &request{ctx: poolContext(i), candidates: poolCandidates(i)}
		if err := p.admit(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !p.serveOne(p.workers[0].rep) {
		t.Fatal("serveOne reported a closed queue")
	}
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("hydrate saw %d batches of %d, want one batch of 2", len(batches), len(batches[0]))
	}
	for i, hr := range batches[0] {
		if hr.Ctx.Sparse[0] != poolContext(i).Sparse[0] || hr.Candidates[0] != poolCandidates(i)[0] {
			t.Fatalf("hydrate entry %d does not match request %d: %+v", i, i, hr)
		}
	}
	for i, req := range reqs {
		resp := <-req.done
		if resp.err != nil {
			t.Fatalf("request %d: %v", i, resp.err)
		}
		want, err := serial.Score(poolContext(i), poolCandidates(i))
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if resp.scores[j] != want[j] {
				t.Fatalf("request %d score %d: hydrated %v != serial %v", i, j, resp.scores[j], want[j])
			}
		}
	}
	if got := reg.Snapshot().Histograms["serve_hydrate_ns"].Count; got != 1 {
		t.Fatalf("serve_hydrate_ns count = %d want 1", got)
	}

	// A hydrate failure must fail the whole micro-batch, wrapped once.
	fail = errors.New("feature store down")
	bad := &request{ctx: poolContext(3), candidates: poolCandidates(3)}
	if err := p.admit(bad); err != nil {
		t.Fatal(err)
	}
	if !p.serveOne(p.workers[0].rep) {
		t.Fatal("serveOne reported a closed queue")
	}
	resp := <-bad.done
	if !errors.Is(resp.err, fail) {
		t.Fatalf("hydrate failure: err = %v, want wrapped %v", resp.err, fail)
	}
}

// TestPoolValidationErrors: bad requests come back with the serve sentinels
// and never reach the model.
func TestPoolValidationErrors(t *testing.T) {
	m := poolModel(t)
	p, err := New(m, 1, 16, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Score(serve.Context{Dense: []float32{1}, Sparse: []int{0, 0}}, []int{1}); !errors.Is(err, serve.ErrInvalidContext) {
		t.Fatalf("bad context: err = %v, want serve.ErrInvalidContext", err)
	}
	if _, err := p.Score(poolContext(0), []int{5000}); !errors.Is(err, serve.ErrInvalidCandidate) {
		t.Fatalf("bad candidate: err = %v, want serve.ErrInvalidCandidate", err)
	}
	if _, err := p.TopK(poolContext(0), []int{1}, 0); !errors.Is(err, serve.ErrInvalidConfig) {
		t.Fatalf("k=0: err = %v, want serve.ErrInvalidConfig", err)
	}
}

// TestPoolCloseDrainsAndSheds: Close completes in-flight traffic, later
// requests shed with ErrShutdown, and double Close is safe.
func TestPoolCloseDrainsAndSheds(t *testing.T) {
	m := poolModel(t)
	p, err := New(m, 1, 16, Options{Replicas: 2, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	const inflight = 16
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := p.Score(poolContext(i%4), poolCandidates(i%4)); err != nil {
				errs <- fmt.Errorf("inflight %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if _, err := p.Score(poolContext(0), poolCandidates(0)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-close: err = %v, want ErrShutdown", err)
	}
}

// TestPoolRejectsUnservableModel: a model with a table type the clone path
// cannot replicate must fail construction with dlrm.ErrNotServable.
func TestPoolRejectsUnservableModel(t *testing.T) {
	m := poolModel(t)
	if _, err := New(m, 9, 16, Options{}); !errors.Is(err, serve.ErrInvalidConfig) {
		t.Fatalf("bad item feature: err = %v, want serve.ErrInvalidConfig", err)
	}
	if _, err := New(m, 1, 0, Options{}); !errors.Is(err, serve.ErrInvalidConfig) {
		t.Fatalf("bad batch size: err = %v, want serve.ErrInvalidConfig", err)
	}
}
