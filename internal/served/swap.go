// Hot model reload: the versioned replica-swap protocol.
//
// Swap never shares memory between a trainer and the pool. A new version
// enters as a caller-built model (Swap) or is materialized from checkpoint
// bytes into a Factory-built skeleton (SwapFromCheckpoint); either way every
// worker receives a fresh CloneForServing replica of it. Handoff happens on
// each worker's unbuffered swap channel, which the worker only receives on
// between micro-batches — so in-flight batches finish on the old clone, the
// next admission lands on the new one, and zero requests are dropped. Old
// clones simply become garbage once their worker adopts the replacement.
package served

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/dlrm"
	"repro/internal/obs"
	"repro/internal/serve"
)

// ModelFactory builds a fresh model skeleton matching the serving
// architecture: same layer shapes, table kinds and table shapes as the
// checkpoints the pool loads. Each call must return a brand-new model that
// shares no parameter memory with any previous call or with a live trainer —
// checkpoint.LoadFile then overwrites its parameters in place.
type ModelFactory func() (*dlrm.Model, error)

// NewFromCheckpoint builds a pool whose first served version is
// materialized from the checkpoint at path: opts.Factory constructs the
// skeleton, checkpoint.LoadFile fills it, and the pool clones it per
// replica. The path is remembered as the default SwapFromCheckpoint source,
// so `POST /reload` with no body re-reads the same file.
func NewFromCheckpoint(path string, itemFeature, batchSize int, opts Options) (*Pool, error) {
	if opts.Factory == nil {
		return nil, fmt.Errorf("%w: NewFromCheckpoint requires Options.Factory", serve.ErrInvalidConfig)
	}
	model, err := loadVersion(opts.Factory, path)
	if err != nil {
		return nil, err
	}
	p, err := New(model, itemFeature, batchSize, opts)
	if err != nil {
		return nil, err
	}
	p.reloadPath = path
	return p, nil
}

// loadVersion materializes one model version from checkpoint bytes into a
// factory-built skeleton the pool owns outright.
func loadVersion(factory ModelFactory, path string) (*dlrm.Model, error) {
	m, err := factory()
	if err != nil {
		return nil, fmt.Errorf("served: model factory: %w", err)
	}
	if err := checkpoint.LoadFile(path, m); err != nil {
		return nil, fmt.Errorf("served: load checkpoint %s: %w", path, err)
	}
	return m, nil
}

// Swap replaces the served model with model: it builds one fresh
// CloneForServing replica per worker up front (any failure leaves the pool
// serving the old version, untouched), then hands each worker its
// replacement at a micro-batch boundary and waits for every adoption.
// In-flight micro-batches finish on the old clones; every request admitted
// after Swap returns scores on the new version; no request is ever dropped.
// Returns the new version number. After the handoff the pool owns clones of
// model, so — exactly as with New — model must not train afterwards; a
// continuously retraining trainer should go through SwapFromCheckpoint.
//
// Concurrent swaps serialize; a swap against a closed pool fails with
// ErrShutdown. Ready reports false while the handoff is in flight.
func (p *Pool) Swap(model *dlrm.Model) (int64, error) {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	start := p.clock.Now()
	reps := make([]*replica, len(p.workers))
	for i := range p.workers {
		r, err := p.buildReplica(model)
		if err != nil {
			return p.version.Load(), fmt.Errorf("served: swap replica %d: %w", i, err)
		}
		reps[i] = r
	}
	// Readiness drops before mu is taken so probes (which check swapping
	// first) answer "not ready" instantly instead of queueing behind the
	// write lock.
	p.swapping.Store(true)
	defer p.swapping.Store(false)
	// Holding mu excludes Close for the whole distribution: closed cannot
	// flip mid-handoff, so every worker is guaranteed alive to adopt.
	// Admission briefly blocks on the read lock — delayed, never dropped.
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return p.version.Load(), fmt.Errorf("served: swap: %w", ErrShutdown)
	}
	adopted := make(chan struct{}, len(p.workers))
	for i, w := range p.workers {
		// Safe while holding mu: closed is false, so every worker loop is
		// alive and selects on its swap channel between micro-batches;
		// workers never acquire mu, so the handoff cannot deadlock.
		w.swap <- swapMsg{rep: reps[i], adopted: adopted} //elrec:lockorder mu intentionally excludes Close during the handoff; workers never take mu
	}
	for range p.workers {
		<-adopted //elrec:lockorder adopted is buffered to the worker count; every worker acks without taking mu
	}
	v := p.version.Add(1)
	p.met.modelVersion.Set(float64(v))
	p.met.swapNS.Observe(float64(obs.Since(p.clock, start)))
	return v, nil
}

// SwapFromCheckpoint hot-reloads the pool from the checkpoint at path
// (empty: the NewFromCheckpoint path), materializing the new version
// through Options.Factory + checkpoint.LoadFile so serving state is rebuilt
// from checkpoint bytes — never aliased from a live trainer. Any load error
// leaves the pool serving the current version. Returns the new version.
func (p *Pool) SwapFromCheckpoint(path string) (int64, error) {
	if path == "" {
		path = p.reloadPath
	}
	if path == "" {
		return p.version.Load(), fmt.Errorf("%w: no checkpoint path: pool was not built by NewFromCheckpoint and the reload request named none", serve.ErrInvalidConfig)
	}
	if p.opts.Factory == nil {
		return p.version.Load(), fmt.Errorf("%w: SwapFromCheckpoint requires Options.Factory", serve.ErrInvalidConfig)
	}
	model, err := loadVersion(p.opts.Factory, path)
	if err != nil {
		return p.version.Load(), err
	}
	return p.Swap(model)
}
