package served

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/serve"
)

// ScoreRequest is the JSON body of POST /score and POST /topk.
type ScoreRequest struct {
	// Dense and Sparse form the request context (serve.Context semantics:
	// the item feature's sparse slot is ignored during ranking).
	Dense  []float32 `json:"dense"`
	Sparse []int     `json:"sparse"`
	// Candidates are the item ids to score.
	Candidates []int `json:"candidates"`
	// K selects top-k ranking on /topk (ignored by /score).
	K int `json:"k,omitempty"`
	// TimeoutMS overrides the pool's default deadline for this request in
	// milliseconds (0: pool default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ScoreResponse is the JSON body answering /score.
type ScoreResponse struct {
	Scores []float32 `json:"scores"`
}

// TopKResponse is the JSON body answering /topk.
type TopKResponse struct {
	Items []ScoredItem `json:"items"`
}

// ScoredItem mirrors serve.Scored with stable JSON field names.
type ScoredItem struct {
	Item  int     `json:"item"`
	Score float32 `json:"score"`
}

// errorResponse is the JSON body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler exposes the pool over HTTP JSON: POST /score returns calibrated
// CTRs in candidate order, POST /topk the ranked top k. Shedding maps to
// status codes a load balancer can act on: 503 for ErrOverloaded and
// ErrShutdown, 504 for ErrDeadline, 400 for invalid requests.
func (p *Pool) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/score", func(w http.ResponseWriter, r *http.Request) {
		p.handle(w, r, false)
	})
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		p.handle(w, r, true)
	})
	return mux
}

func (p *Pool) handle(w http.ResponseWriter, r *http.Request, topK bool) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req ScoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	ctx := serve.Context{Dense: req.Dense, Sparse: req.Sparse}
	timeout := p.opts.Timeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if topK {
		items, err := p.TopKDeadline(ctx, req.Candidates, req.K, timeout)
		if err != nil {
			writeError(w, err)
			return
		}
		out := TopKResponse{Items: make([]ScoredItem, len(items))}
		for i, s := range items {
			out.Items[i] = ScoredItem{Item: s.Item, Score: s.Score}
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	scores, err := p.ScoreDeadline(ctx, req.Candidates, timeout)
	if err != nil {
		writeError(w, err)
		return
	}
	if scores == nil {
		scores = []float32{}
	}
	writeJSON(w, http.StatusOK, ScoreResponse{Scores: scores})
}

// writeError maps pool and serve errors to HTTP status codes.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrShutdown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline):
		status = http.StatusGatewayTimeout
	case errors.Is(err, serve.ErrInvalidContext),
		errors.Is(err, serve.ErrInvalidCandidate),
		errors.Is(err, serve.ErrInvalidConfig):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding a fixed-shape response cannot fail; a broken connection is
	// the client's problem.
	_ = json.NewEncoder(w).Encode(v)
}
