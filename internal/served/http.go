package served

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
)

// ScoreRequest is the JSON body of POST /score and POST /topk.
type ScoreRequest struct {
	// Dense and Sparse form the request context (serve.Context semantics:
	// the item feature's sparse slot is ignored during ranking).
	Dense  []float32 `json:"dense"`
	Sparse []int     `json:"sparse"`
	// Candidates are the item ids to score.
	Candidates []int `json:"candidates"`
	// K selects top-k ranking on /topk (ignored by /score).
	K int `json:"k,omitempty"`
	// TimeoutMS overrides the pool's default deadline for this request in
	// milliseconds (0: pool default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ScoreResponse is the JSON body answering /score.
type ScoreResponse struct {
	Scores []float32 `json:"scores"`
}

// TopKResponse is the JSON body answering /topk.
type TopKResponse struct {
	Items []ScoredItem `json:"items"`
}

// ScoredItem mirrors serve.Scored with stable JSON field names.
type ScoredItem struct {
	Item  int     `json:"item"`
	Score float32 `json:"score"`
}

// errorResponse is the JSON body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

// ReloadRequest is the JSON body of POST /reload. An empty body (or empty
// path) reloads from the pool's NewFromCheckpoint path.
type ReloadRequest struct {
	Path string `json:"path,omitempty"`
}

// ReloadResponse is the JSON body answering a successful /reload.
type ReloadResponse struct {
	Version int64 `json:"version"`
}

// Handler exposes the pool over HTTP JSON: POST /score returns calibrated
// CTRs in candidate order, POST /topk the ranked top k, POST /reload
// hot-swaps in a new checkpoint and returns the new model version. GET
// /healthz answers 200 while the process lives; GET /readyz answers 200
// only when the pool is serving a stable version (503 mid-swap and after
// Close) so load balancers route around a node that is reloading. Shedding
// maps to status codes a balancer can act on: 503 for ErrOverloaded and
// ErrShutdown, 504 for ErrDeadline, 400 for invalid requests.
func (p *Pool) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/score", func(w http.ResponseWriter, r *http.Request) {
		p.handle(w, r, false)
	})
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		p.handle(w, r, true)
	})
	mux.HandleFunc("/reload", p.handleReload)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, statusResponse{Status: "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !p.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, statusResponse{Status: "not ready"})
			return
		}
		writeJSON(w, http.StatusOK, statusResponse{Status: "ready"})
	})
	return mux
}

// statusResponse is the JSON body of /healthz and /readyz.
type statusResponse struct {
	Status string `json:"status"`
}

// handleReload serves POST /reload: swap the pool to the checkpoint named
// in the body (default: the pool's construction checkpoint). 404 for a
// missing file, 400 for a pool without a reload surface, 503 once shut
// down, 500 for a corrupt checkpoint — in every failure case the pool keeps
// serving the old version.
func (p *Pool) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req ReloadRequest
	if r.Body != nil {
		// An empty body means "reload the default path"; only malformed
		// JSON is an error.
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
			return
		}
	}
	version, err := p.SwapFromCheckpoint(req.Path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Version: version})
}

func (p *Pool) handle(w http.ResponseWriter, r *http.Request, topK bool) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req ScoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	ctx := serve.Context{Dense: req.Dense, Sparse: req.Sparse}
	timeout := p.opts.Timeout
	if req.TimeoutMS < 0 {
		// A negative deadline must not silently fall back to the pool
		// default — that would let clients smuggle "no deadline" past the
		// shedding policy.
		writeError(w, fmt.Errorf("%w: negative timeout_ms %d", serve.ErrInvalidConfig, req.TimeoutMS))
		return
	}
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if topK {
		items, err := p.TopKDeadline(ctx, req.Candidates, req.K, timeout)
		if err != nil {
			writeError(w, err)
			return
		}
		out := TopKResponse{Items: make([]ScoredItem, len(items))}
		for i, s := range items {
			out.Items[i] = ScoredItem{Item: s.Item, Score: s.Score}
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	scores, err := p.ScoreDeadline(ctx, req.Candidates, timeout)
	if err != nil {
		writeError(w, err)
		return
	}
	if scores == nil {
		scores = []float32{}
	}
	writeJSON(w, http.StatusOK, ScoreResponse{Scores: scores})
}

// writeError maps pool and serve errors to HTTP status codes.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrShutdown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline):
		status = http.StatusGatewayTimeout
	case errors.Is(err, serve.ErrInvalidContext),
		errors.Is(err, serve.ErrInvalidCandidate),
		errors.Is(err, serve.ErrInvalidConfig):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding a fixed-shape response cannot fail; a broken connection is
	// the client's problem.
	_ = json.NewEncoder(w).Encode(v)
}
