package served

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
)

func postJSON(t *testing.T, h http.Handler, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHTTPScoreAndTopK(t *testing.T) {
	m := poolModel(t)
	serial, err := serve.NewRanker(m, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := poolContext(0)
	candidates := poolCandidates(0)
	wantScores, err := serial.Score(ctx, candidates)
	if err != nil {
		t.Fatal(err)
	}
	wantTop, err := serial.TopK(ctx, candidates, 3)
	if err != nil {
		t.Fatal(err)
	}

	p, err := New(m, 1, 16, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	h := p.Handler()

	rec := postJSON(t, h, "/score", ScoreRequest{Dense: ctx.Dense, Sparse: ctx.Sparse, Candidates: candidates})
	if rec.Code != http.StatusOK {
		t.Fatalf("/score status %d: %s", rec.Code, rec.Body.String())
	}
	var sr ScoreResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Scores) != len(wantScores) {
		t.Fatalf("got %d scores want %d", len(sr.Scores), len(wantScores))
	}
	for i := range wantScores {
		if sr.Scores[i] != wantScores[i] {
			t.Fatalf("score %d: %v want %v", i, sr.Scores[i], wantScores[i])
		}
	}

	rec = postJSON(t, h, "/topk", ScoreRequest{Dense: ctx.Dense, Sparse: ctx.Sparse, Candidates: candidates, K: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("/topk status %d: %s", rec.Code, rec.Body.String())
	}
	var tr TopKResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Items) != len(wantTop) {
		t.Fatalf("got %d items want %d", len(tr.Items), len(wantTop))
	}
	for i := range wantTop {
		if tr.Items[i].Item != wantTop[i].Item || tr.Items[i].Score != wantTop[i].Score {
			t.Fatalf("top[%d] = %+v want %+v", i, tr.Items[i], wantTop[i])
		}
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	m := poolModel(t)
	p, err := New(m, 1, 16, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := p.Handler()

	// Invalid context → 400.
	rec := postJSON(t, h, "/score", ScoreRequest{Dense: []float32{1}, Sparse: []int{0, 0}, Candidates: []int{1}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad context status %d want 400", rec.Code)
	}
	// Invalid candidate → 400.
	ctx := poolContext(0)
	rec = postJSON(t, h, "/topk", ScoreRequest{Dense: ctx.Dense, Sparse: ctx.Sparse, Candidates: []int{5000}, K: 2})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad candidate status %d want 400", rec.Code)
	}
	// Broken JSON → 400.
	req := httptest.NewRequest(http.MethodPost, "/score", bytes.NewReader([]byte("{not json")))
	raw := httptest.NewRecorder()
	h.ServeHTTP(raw, req)
	if raw.Code != http.StatusBadRequest {
		t.Fatalf("broken JSON status %d want 400", raw.Code)
	}
	// GET → 405.
	get := httptest.NewRecorder()
	h.ServeHTTP(get, httptest.NewRequest(http.MethodGet, "/score", nil))
	if get.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d want 405", get.Code)
	}
	// Shut-down pool → 503.
	p.Close()
	rec = postJSON(t, h, "/score", ScoreRequest{Dense: ctx.Dense, Sparse: ctx.Sparse, Candidates: []int{1}})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-close status %d want 503", rec.Code)
	}
}
