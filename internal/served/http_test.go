package served

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

func postJSON(t *testing.T, h http.Handler, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHTTPScoreAndTopK(t *testing.T) {
	m := poolModel(t)
	serial, err := serve.NewRanker(m, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := poolContext(0)
	candidates := poolCandidates(0)
	wantScores, err := serial.Score(ctx, candidates)
	if err != nil {
		t.Fatal(err)
	}
	wantTop, err := serial.TopK(ctx, candidates, 3)
	if err != nil {
		t.Fatal(err)
	}

	p, err := New(m, 1, 16, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	h := p.Handler()

	rec := postJSON(t, h, "/score", ScoreRequest{Dense: ctx.Dense, Sparse: ctx.Sparse, Candidates: candidates})
	if rec.Code != http.StatusOK {
		t.Fatalf("/score status %d: %s", rec.Code, rec.Body.String())
	}
	var sr ScoreResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Scores) != len(wantScores) {
		t.Fatalf("got %d scores want %d", len(sr.Scores), len(wantScores))
	}
	for i := range wantScores {
		if sr.Scores[i] != wantScores[i] {
			t.Fatalf("score %d: %v want %v", i, sr.Scores[i], wantScores[i])
		}
	}

	rec = postJSON(t, h, "/topk", ScoreRequest{Dense: ctx.Dense, Sparse: ctx.Sparse, Candidates: candidates, K: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("/topk status %d: %s", rec.Code, rec.Body.String())
	}
	var tr TopKResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Items) != len(wantTop) {
		t.Fatalf("got %d items want %d", len(tr.Items), len(wantTop))
	}
	for i := range wantTop {
		if tr.Items[i].Item != wantTop[i].Item || tr.Items[i].Score != wantTop[i].Score {
			t.Fatalf("top[%d] = %+v want %+v", i, tr.Items[i], wantTop[i])
		}
	}
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestHTTPNegativeTimeoutRejected pins the deadline-policy fix: a negative
// timeout_ms must 400 instead of silently falling back to the pool default.
func TestHTTPNegativeTimeoutRejected(t *testing.T) {
	m := poolModel(t)
	p, err := New(m, 1, 16, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	h := p.Handler()
	ctx := poolContext(0)
	for _, path := range []string{"/score", "/topk"} {
		rec := postJSON(t, h, path, ScoreRequest{
			Dense: ctx.Dense, Sparse: ctx.Sparse, Candidates: []int{1}, K: 1, TimeoutMS: -1,
		})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s with timeout_ms=-1: status %d want 400: %s", path, rec.Code, rec.Body.String())
		}
	}
	// 0 still means "pool default", not an error.
	rec := postJSON(t, h, "/score", ScoreRequest{Dense: ctx.Dense, Sparse: ctx.Sparse, Candidates: []int{1}})
	if rec.Code != http.StatusOK {
		t.Fatalf("timeout_ms=0 status %d want 200: %s", rec.Code, rec.Body.String())
	}
}

// TestHTTPReload exercises the admin surface end to end: /healthz and
// /readyz answer, POST /reload (explicit path, then empty body for the
// default path) bumps the version, scoring works before and after, and the
// failure mappings (404 missing file, 405 GET) hold.
func TestHTTPReload(t *testing.T) {
	v1, v2 := saveVersions(t)
	p, err := NewFromCheckpoint(v1, 1, 16, Options{Replicas: 2, Factory: poolFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	h := p.Handler()
	ctx := poolContext(0)
	score := func() *httptest.ResponseRecorder {
		return postJSON(t, h, "/score", ScoreRequest{Dense: ctx.Dense, Sparse: ctx.Sparse, Candidates: poolCandidates(0)})
	}

	if rec := getPath(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz status %d want 200", rec.Code)
	}
	if rec := getPath(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz status %d want 200", rec.Code)
	}
	if rec := score(); rec.Code != http.StatusOK {
		t.Fatalf("pre-reload score status %d", rec.Code)
	}

	rec := postJSON(t, h, "/reload", ReloadRequest{Path: v2})
	if rec.Code != http.StatusOK {
		t.Fatalf("/reload status %d: %s", rec.Code, rec.Body.String())
	}
	var rr ReloadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Version != 2 {
		t.Fatalf("/reload version %d want 2", rr.Version)
	}
	if rec := score(); rec.Code != http.StatusOK {
		t.Fatalf("post-reload score status %d", rec.Code)
	}

	// Empty body reloads the construction checkpoint (v1) → version 3.
	req := httptest.NewRequest(http.MethodPost, "/reload", nil)
	raw := httptest.NewRecorder()
	h.ServeHTTP(raw, req)
	if raw.Code != http.StatusOK {
		t.Fatalf("empty-body /reload status %d: %s", raw.Code, raw.Body.String())
	}
	if p.Version() != 3 {
		t.Fatalf("version after default reload %d want 3", p.Version())
	}

	// Missing checkpoint → 404; version and serving untouched.
	rec = postJSON(t, h, "/reload", ReloadRequest{Path: v2 + ".missing"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing-checkpoint /reload status %d want 404", rec.Code)
	}
	if p.Version() != 3 {
		t.Fatalf("failed reload bumped version to %d", p.Version())
	}
	if rec := score(); rec.Code != http.StatusOK {
		t.Fatalf("score after failed reload status %d", rec.Code)
	}

	// GET /reload → 405.
	if rec := getPath(t, h, "/reload"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload status %d want 405", rec.Code)
	}

	// Factoryless pool → 400 (no reload surface).
	m := poolModel(t)
	plain, err := New(m, 1, 16, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	rec = postJSON(t, plain.Handler(), "/reload", ReloadRequest{Path: v1})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("factoryless /reload status %d want 400", rec.Code)
	}
}

// TestHTTPReadyzFlipsMidSwap pins the drain/readiness state machine under a
// live handoff: while a swap is blocked on a worker that is mid-micro-batch
// (parked in Hydrate), /readyz must answer 503 without blocking; once the
// batch finishes and the swap completes, readiness recovers.
func TestHTTPReadyzFlipsMidSwap(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	m := poolModel(t)
	p, err := New(m, 1, 16, Options{
		Replicas: 1,
		Hydrate: func(batch []HydrateRequest) error {
			entered <- struct{}{}
			<-release
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	h := p.Handler()
	ctx := poolContext(0)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Parks the only worker inside the micro-batch.
		postJSON(t, h, "/score", ScoreRequest{Dense: ctx.Dense, Sparse: ctx.Sparse, Candidates: poolCandidates(0)})
	}()
	<-entered
	swapped := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(swapped)
		if _, err := p.Swap(m); err != nil {
			t.Errorf("swap: %v", err)
		}
	}()

	// The swap cannot hand off until the worker leaves Hydrate, so poll
	// until readiness drops (it flips as soon as Swap enters distribution).
	for getPath(t, h, "/readyz").Code != http.StatusServiceUnavailable {
		select {
		case <-swapped:
			t.Fatal("swap completed while its worker was parked in Hydrate")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if rec := getPath(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatal("/healthz must stay 200 mid-swap")
	}

	close(release)
	wg.Wait()
	if rec := getPath(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after swap status %d want 200", rec.Code)
	}
	if p.Version() != 2 {
		t.Fatalf("version %d want 2", p.Version())
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	m := poolModel(t)
	p, err := New(m, 1, 16, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := p.Handler()

	// Invalid context → 400.
	rec := postJSON(t, h, "/score", ScoreRequest{Dense: []float32{1}, Sparse: []int{0, 0}, Candidates: []int{1}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad context status %d want 400", rec.Code)
	}
	// Invalid candidate → 400.
	ctx := poolContext(0)
	rec = postJSON(t, h, "/topk", ScoreRequest{Dense: ctx.Dense, Sparse: ctx.Sparse, Candidates: []int{5000}, K: 2})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad candidate status %d want 400", rec.Code)
	}
	// Broken JSON → 400.
	req := httptest.NewRequest(http.MethodPost, "/score", bytes.NewReader([]byte("{not json")))
	raw := httptest.NewRecorder()
	h.ServeHTTP(raw, req)
	if raw.Code != http.StatusBadRequest {
		t.Fatalf("broken JSON status %d want 400", raw.Code)
	}
	// GET → 405.
	get := httptest.NewRecorder()
	h.ServeHTTP(get, httptest.NewRequest(http.MethodGet, "/score", nil))
	if get.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d want 405", get.Code)
	}
	// Shut-down pool → 503.
	p.Close()
	rec = postJSON(t, h, "/score", ScoreRequest{Dense: ctx.Dense, Sparse: ctx.Sparse, Candidates: []int{1}})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-close status %d want 503", rec.Code)
	}
}
