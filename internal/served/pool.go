// Package served is the production serving front end over a trained DLRM:
// a replica pool that fixes the concurrent-scoring data race structurally.
//
// After the buffer-reuse work, every nn layer, the dlrm.Model and the Eff-TT
// arena own mutable scratch, so two concurrent Ranker calls on one model are
// a data race. Instead of locking the hot path, the pool clones the model N
// ways (dlrm.Model.CloneForServing: deep-copied layer buffers and TT arenas
// over shared read-only TT cores) and gives each replica its own worker
// goroutine — within a replica requests run serially, across replicas they
// run in parallel, and no two goroutines ever share mutable scratch.
//
// In front of the replicas sits a bounded admission queue with typed
// shedding (ErrOverloaded when the queue is full, ErrDeadline when a request
// waited past its deadline, ErrShutdown after Close) and a request coalescer:
// a worker drains whatever is queued — up to MaxCoalesce requests — into one
// micro-batch, built through pooled serve.Batcher scratch, and scores it in
// a single model forward pass (cf. DeepRecSys' ranking-stage batching).
// Because every scoring kernel accumulates per output element in fixed
// k-order, a sample's score does not depend on its micro-batch neighbours:
// pooled results are bit-identical to the serial path, which the -race tests
// assert.
//
// The pool also supports hot model reload (see swap.go): Swap hands every
// worker a freshly cloned replica of a new model version between
// micro-batches — in-flight batches finish on the old clones, no request is
// ever dropped — and SwapFromCheckpoint rebuilds that new version from the
// checkpoint codec, so a continuously retraining trainer and a serving pool
// never share mutable memory.
package served

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dlrm"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Typed shedding errors. Match with errors.Is; every error the pool returns
// for an admission failure wraps one of these.
var (
	// ErrOverloaded marks a request rejected because the admission queue was
	// full — the caller should back off or route to another node.
	ErrOverloaded = errors.New("served: overloaded")
	// ErrDeadline marks a request shed because it waited in the queue past
	// its deadline — scoring it would only return a result nobody wants.
	ErrDeadline = errors.New("served: deadline exceeded")
	// ErrShutdown marks a request rejected because the pool is draining.
	ErrShutdown = errors.New("served: pool shut down")
)

// Options configures a Pool. The zero value serves: one replica, a
// 64-request queue, micro-batches of up to 8 requests, no deadline.
type Options struct {
	// Replicas is the number of model clones, each with its own worker
	// goroutine; requests run in parallel across replicas.
	Replicas int
	// QueueDepth bounds the admission queue; a full queue sheds with
	// ErrOverloaded instead of building unbounded latency.
	QueueDepth int
	// MaxCoalesce caps how many waiting requests one worker merges into a
	// single micro-batch forward pass.
	MaxCoalesce int
	// Timeout is the default per-request deadline measured from admission
	// (0: none). Requests still queued past it are shed with ErrDeadline.
	Timeout time.Duration
	// Hydrate, when non-nil, runs once per coalesced micro-batch on the
	// replica worker after validation and before scoring — the blocking
	// feature-fetch stage of a DeepRecSys-style rank server, resolving
	// candidate features from a remote store in one batched call. Each
	// replica blocks independently, so hydration stalls overlap across
	// replicas while other replicas score. A non-nil error fails every
	// request in the micro-batch. The callback must not retain the slice.
	Hydrate func(batch []HydrateRequest) error
	// Clock is the time base for deadlines and latency instruments
	// (nil: system clock). Tests inject a manual clock.
	Clock obs.Clock
	// Metrics, when non-nil, registers the serve_* pool instruments.
	// Instrumentation is fixed at construction so workers never race an
	// attach.
	Metrics *obs.Registry
	// Factory builds a fresh model skeleton with the serving architecture
	// (same parameter shapes, table kinds and table shapes as the
	// checkpoints the pool will load). NewFromCheckpoint and
	// SwapFromCheckpoint call it once per load, so the pool materializes
	// every model version from checkpoint bytes into memory it owns —
	// never aliasing the live trainer's parameters. Nil disables the
	// checkpoint-reload surface; Swap with a caller-built model still
	// works.
	Factory ModelFactory
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxCoalesce <= 0 {
		o.MaxCoalesce = 8
	}
	o.Clock = obs.OrSystem(o.Clock)
	return o
}

// Pool serves Score/TopK traffic over N isolated replicas of one model and
// hot-swaps in new model versions without dropping requests.
type Pool struct {
	opts        Options
	clock       obs.Clock
	itemFeature int // Ranker item feature, fixed across swaps
	batchSize   int // Ranker scoring chunk size, fixed across swaps
	workers     []*worker

	queue chan *request
	depth atomic.Int64 // admitted but not yet claimed by a worker

	mu     sync.RWMutex
	closed bool // guarded by mu

	// swapMu serializes Swap/SwapFromCheckpoint so two concurrent reloads
	// cannot interleave their replica distributions.
	swapMu sync.Mutex
	// swapping is true while a swap distributes replicas; Ready reports
	// false then (and checks it before touching mu, so readiness probes
	// never block behind a swap in progress).
	swapping atomic.Bool
	// version counts model versions served: 1 at construction, +1 per
	// completed swap. Mirrored into the model_version gauge.
	version atomic.Int64
	// reloadPath is the default SwapFromCheckpoint source, set by
	// NewFromCheckpoint before the pool is exposed; immutable afterwards.
	reloadPath string

	wg  sync.WaitGroup
	met poolMetrics
}

// worker is one serving goroutine. It owns exactly one replica at a time;
// ownership transfers only through the swap channel, at micro-batch
// boundaries, so replica scratch is never shared.
type worker struct {
	// rep is the worker's current replica. Written by newPool before the
	// goroutine starts and by the worker itself when it adopts a swap;
	// never touched by any other goroutine while the worker runs.
	rep *replica
	// swap delivers the next replica; unbuffered, so a send completes
	// exactly when the worker is between micro-batches.
	swap chan swapMsg
}

// swapMsg hands a worker its next replica; the worker confirms adoption on
// adopted (buffered to the worker count, so the ack never blocks).
type swapMsg struct {
	rep     *replica
	adopted chan<- struct{}
}

// replica is one isolated copy of the model plus its scoring scratch; it is
// only ever touched by the single worker goroutine that owns it.
type replica struct {
	model   *dlrm.Model
	ranker  *serve.Ranker
	batcher *serve.Batcher
	batch   int // scoring chunk size (rows per forward pass)

	reqs   []*request       // coalesce scratch, reused across micro-batches
	rows   []serve.Row      // flattened row scratch, reused across micro-batches
	hyd    []HydrateRequest // hydration scratch, reused across micro-batches
	scores []float32        // micro-batch score scratch, reused across micro-batches
}

// HydrateRequest is one live request handed to the Options.Hydrate stage.
type HydrateRequest struct {
	Ctx        *serve.Context
	Candidates []int
}

// poolMetrics instruments the pool. Zero value (no registry): every record
// path is a nil-safe no-op. The request/error counters reuse the
// serve.Ranker names — a node runs either the single-goroutine Ranker or
// the pool, so dashboards read serve_requests/serve_errors the same way for
// both.
type poolMetrics struct {
	requests     *obs.Counter   // serve_requests: admission attempts
	errors       *obs.Counter   // serve_errors: error responses (incl. sheds)
	shedOverload *obs.Counter   // serve_shed_overload
	shedDeadline *obs.Counter   // serve_shed_deadline
	queueDepth   *obs.Gauge     // serve_queue_depth
	modelVersion *obs.Gauge     // model_version: 1 at construction, +1 per swap
	coalesced    *obs.Histogram // serve_coalesced_batch_size: requests per micro-batch
	queueWaitNS  *obs.Histogram // serve_queue_wait_ns: admission → worker pickup
	hydrateNS    *obs.Histogram // serve_hydrate_ns: Hydrate stage per micro-batch
	execNS       *obs.Histogram // serve_exec_ns: micro-batch hydrate+build+forward+rank
	swapNS       *obs.Histogram // serve_swap_ns: Swap clone-build + distribution latency
}

func newPoolMetrics(reg *obs.Registry) poolMetrics {
	if reg == nil {
		return poolMetrics{}
	}
	return poolMetrics{
		requests:     reg.Counter("serve_requests"),
		errors:       reg.Counter("serve_errors"),
		shedOverload: reg.Counter("serve_shed_overload"),
		shedDeadline: reg.Counter("serve_shed_deadline"),
		queueDepth:   reg.Gauge("serve_queue_depth"),
		modelVersion: reg.Gauge("model_version"),
		coalesced:    reg.Histogram("serve_coalesced_batch_size"),
		queueWaitNS:  reg.Histogram("serve_queue_wait_ns"),
		hydrateNS:    reg.Histogram("serve_hydrate_ns"),
		execNS:       reg.Histogram("serve_exec_ns"),
		swapNS:       reg.Histogram("serve_swap_ns"),
	}
}

// New builds a pool over model: Options.Replicas serving clones, each
// validated through its own serve.Ranker. itemFeature and batchSize have
// Ranker semantics (which sparse feature carries the candidate id, and the
// rows-per-forward-pass chunk size). The clones share model's embedding
// cores read-only, so model must not train while this pool still serves
// clones of it. To retrain continuously, do not train the served model
// in place: checkpoint the trainer and reload through NewFromCheckpoint /
// SwapFromCheckpoint, which rebuild serving state from checkpoint bytes
// instead of aliasing live trainer memory (Swap with a freshly built model
// works too — the handed-over model must simply never train afterwards).
func New(model *dlrm.Model, itemFeature, batchSize int, opts Options) (*Pool, error) {
	p, err := newPool(model, itemFeature, batchSize, opts)
	if err != nil {
		return nil, err
	}
	for _, w := range p.workers {
		w := w
		p.spawn(func() { p.run(w) })
	}
	return p, nil
}

// newPool builds the pool without starting workers (tests drive serveOne
// and process synchronously against a stopped pool).
func newPool(model *dlrm.Model, itemFeature, batchSize int, opts Options) (*Pool, error) {
	opts = opts.withDefaults()
	p := &Pool{
		opts:        opts,
		clock:       opts.Clock,
		itemFeature: itemFeature,
		batchSize:   batchSize,
		queue:       make(chan *request, opts.QueueDepth),
		met:         newPoolMetrics(opts.Metrics),
	}
	for i := 0; i < opts.Replicas; i++ {
		r, err := p.buildReplica(model)
		if err != nil {
			return nil, fmt.Errorf("served: replica %d: %w", i, err)
		}
		p.workers = append(p.workers, &worker{rep: r, swap: make(chan swapMsg)})
	}
	p.version.Store(1)
	p.met.modelVersion.Set(1)
	return p, nil
}

// buildReplica clones model into one isolated serving replica with its own
// validated Ranker and pooled scratch.
func (p *Pool) buildReplica(model *dlrm.Model) (*replica, error) {
	clone, err := model.CloneForServing()
	if err != nil {
		return nil, err
	}
	ranker, err := serve.NewRanker(clone, p.itemFeature, p.batchSize)
	if err != nil {
		return nil, err
	}
	return &replica{
		model:   clone,
		ranker:  ranker,
		batcher: ranker.NewBatcher(),
		batch:   p.batchSize,
	}, nil
}

// Replicas returns the number of serving replicas.
func (p *Pool) Replicas() int { return len(p.workers) }

// Version returns the model version currently served: 1 for the model the
// pool was built over, incremented by every completed Swap.
func (p *Pool) Version() int64 { return p.version.Load() }

// Ready reports whether the pool is serving at a stable model version:
// false while a swap is mid-flight and after Close. Load balancers poll
// this through the /readyz route. The swapping check comes first so a
// readiness probe answers immediately even while Swap holds the pool lock.
func (p *Pool) Ready() bool {
	if p.swapping.Load() {
		return false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return !p.closed
}

// spawn starts fn on a pool goroutine tracked by the drain barrier. Every
// pool goroutine is born here (the gospawn analyzer enforces it), so worker
// lifetime is always tied to Close.
func (p *Pool) spawn(fn func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		fn()
	}()
}

// request is one queued Score/TopK call.
type request struct {
	ctx        serve.Context
	candidates []int
	k          int           // 0: Score, >0: TopK
	timeout    time.Duration // 0: no deadline
	admitted   time.Time     // pool-clock timestamp at admission
	done       chan response // cap 1: respond never blocks the worker
	responded  bool          // owned by the worker processing the request
}

type response struct {
	scores []float32
	top    []serve.Scored
	err    error
}

// respond delivers at most one response; later calls (the panic backstop
// re-failing an already-answered batch) are no-ops.
func (req *request) respond(r response) {
	if req.responded {
		return
	}
	req.responded = true
	req.done <- r
}

// Score scores candidates for ctx through the pool, using the pool's
// default deadline. Results are bit-identical to serve.Ranker.Score on the
// source model.
func (p *Pool) Score(ctx serve.Context, candidates []int) ([]float32, error) {
	return p.ScoreDeadline(ctx, candidates, p.opts.Timeout)
}

// ScoreDeadline is Score with a per-request deadline override (0: none).
func (p *Pool) ScoreDeadline(ctx serve.Context, candidates []int, timeout time.Duration) ([]float32, error) {
	resp := p.do(&request{ctx: ctx, candidates: candidates, timeout: timeout})
	return resp.scores, resp.err
}

// TopK returns the k highest-scoring candidates through the pool, with
// serve.Ranker.TopK ordering (NaN last, ties by lower item id).
func (p *Pool) TopK(ctx serve.Context, candidates []int, k int) ([]serve.Scored, error) {
	return p.TopKDeadline(ctx, candidates, k, p.opts.Timeout)
}

// TopKDeadline is TopK with a per-request deadline override (0: none).
func (p *Pool) TopKDeadline(ctx serve.Context, candidates []int, k int, timeout time.Duration) ([]serve.Scored, error) {
	if k <= 0 {
		p.met.requests.Inc()
		p.met.errors.Inc()
		return nil, fmt.Errorf("%w: non-positive k %d", serve.ErrInvalidConfig, k)
	}
	resp := p.do(&request{ctx: ctx, candidates: candidates, k: k, timeout: timeout})
	return resp.top, resp.err
}

// do admits the request and blocks until its worker responds (or admission
// sheds it).
func (p *Pool) do(req *request) response {
	if err := p.admit(req); err != nil {
		p.met.errors.Inc()
		return response{err: err}
	}
	resp := <-req.done
	if resp.err != nil {
		p.met.errors.Inc()
	}
	return resp
}

// admit enqueues the request, shedding with ErrShutdown after Close and
// ErrOverloaded when the bounded queue is full. The closed flag and the
// channel close happen under mu, so admit can never send on a closed queue.
func (p *Pool) admit(req *request) error {
	p.met.requests.Inc()
	req.admitted = p.clock.Now()
	req.done = make(chan response, 1)
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrShutdown
	}
	select {
	case p.queue <- req:
		p.met.queueDepth.Set(float64(p.depth.Add(1)))
		return nil
	default:
		p.met.shedOverload.Inc()
		return fmt.Errorf("%w: queue of %d full", ErrOverloaded, cap(p.queue))
	}
}

// run is a worker loop: serve micro-batches until the queue closes and
// drains, adopting a new replica whenever a swap delivers one. The select
// makes the swap boundary exact: a handoff can only land between
// micro-batches, so an in-flight batch always finishes on the clone it
// started on.
func (p *Pool) run(w *worker) {
	for {
		select {
		case msg := <-w.swap:
			w.rep = msg.rep
			msg.adopted <- struct{}{}
		case req, ok := <-p.queue:
			if !ok {
				return
			}
			p.serveAdmitted(w.rep, req)
		}
	}
}

// serveOne blocks for one request and serves one micro-batch on r.
// Returns false once the queue is closed and fully drained. Tests drive it
// synchronously against a stopped pool; the live path is run's select.
func (p *Pool) serveOne(r *replica) bool {
	req, ok := <-p.queue
	if !ok {
		return false
	}
	p.serveAdmitted(r, req)
	return true
}

// serveAdmitted coalesces whatever else is waiting behind req (up to
// MaxCoalesce) into a micro-batch on r and processes it.
func (p *Pool) serveAdmitted(r *replica, req *request) {
	r.reqs = r.reqs[:0]
	r.reqs = append(r.reqs, req)
coalesce:
	for len(r.reqs) < p.opts.MaxCoalesce {
		select {
		case more, ok := <-p.queue:
			if !ok {
				break coalesce // closed mid-drain: serve what we have
			}
			r.reqs = append(r.reqs, more)
		default:
			break coalesce
		}
	}
	p.met.queueDepth.Set(float64(p.depth.Add(int64(-len(r.reqs)))))
	p.process(r, r.reqs)
}

// process scores one coalesced micro-batch on r: shed expired requests,
// reject invalid ones, flatten the rest into rows, run chunked forward
// passes through the replica's pooled batcher, and split the scores back
// per request. Every request in reqs receives exactly one response.
func (p *Pool) process(r *replica, reqs []*request) {
	defer func() {
		// Backstop: a scoring panic must fail the batch, not kill the
		// worker with callers blocked on their done channels.
		if v := recover(); v != nil {
			err := fmt.Errorf("served: replica fault: %v", v)
			for _, req := range reqs {
				req.respond(response{err: err})
			}
		}
	}()
	start := p.clock.Now()
	live := reqs[:0]
	for _, req := range reqs {
		wait := start.Sub(req.admitted)
		p.met.queueWaitNS.Observe(float64(wait))
		if req.timeout > 0 && wait > req.timeout {
			p.met.shedDeadline.Inc()
			req.respond(response{err: fmt.Errorf("%w: queued %v, deadline %v", ErrDeadline, wait, req.timeout)})
			continue
		}
		if err := r.ranker.Validate(req.ctx); err != nil {
			req.respond(response{err: err})
			continue
		}
		if err := r.ranker.ValidateCandidates(req.candidates); err != nil {
			req.respond(response{err: err})
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	p.met.coalesced.Observe(float64(len(live)))
	if p.opts.Hydrate != nil {
		r.hyd = r.hyd[:0]
		for _, req := range live {
			r.hyd = append(r.hyd, HydrateRequest{Ctx: &req.ctx, Candidates: req.candidates})
		}
		hs := p.clock.Now()
		err := p.opts.Hydrate(r.hyd)
		p.met.hydrateNS.Observe(float64(obs.Since(p.clock, hs)))
		if err != nil {
			err = fmt.Errorf("served: hydrate: %w", err)
			for _, req := range live {
				req.respond(response{err: err})
			}
			return
		}
	}
	r.rows = r.rows[:0]
	for _, req := range live {
		for _, c := range req.candidates {
			r.rows = append(r.rows, serve.Row{Ctx: &req.ctx, Item: c})
		}
	}
	scores := r.scoreRows()
	off := 0
	for _, req := range live {
		n := len(req.candidates)
		own := append([]float32(nil), scores[off:off+n]...)
		off += n
		if req.k > 0 {
			req.respond(response{top: serve.SelectTopK(req.candidates, own, req.k)})
		} else {
			req.respond(response{scores: own})
		}
	}
	p.met.execNS.Observe(float64(obs.Since(p.clock, start)))
}

// scoreRows scores r.rows in Ranker-sized chunks into the replica's pooled
// scores scratch and returns the scratch resliced to the row count. Steady
// state allocates nothing (the AllocsPerRun test pins it; elrec-lint's
// hotalloc pass keeps the scratch management honest): the scratch grows once
// to the high-water row count, then every micro-batch reuses it. Results are
// bit-identical to per-chunk Predict — Forward fills the same logits buffer
// and SigmoidInto applies the same per-element sigmoid.
//
//elrec:hotpath
func (r *replica) scoreRows() []float32 {
	if cap(r.scores) < len(r.rows) {
		r.scores = make([]float32, len(r.rows)) //elrec:coldpath amortized scratch growth to the high-water micro-batch size
	}
	scores := r.scores[:len(r.rows)]
	for s := 0; s < len(r.rows); s += r.batch {
		e := s + r.batch
		if e > len(r.rows) {
			e = len(r.rows)
		}
		logits := r.model.Forward(r.batcher.BuildRows(r.rows[s:e])) //elrec:coldpath forward reuses model-owned buffers; its steady-state allocations are pinned by runtime AllocsPerRun tests
		nn.SigmoidInto(scores[s:e], logits.Data)
	}
	return scores
}

// Close stops admission (new requests shed with ErrShutdown) and drains:
// every already-queued request is still served — or deadline-shed — before
// the workers exit. Safe to call more than once; blocks until drained.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
