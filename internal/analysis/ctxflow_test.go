package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestCtxFlowGolden(t *testing.T) {
	analysistest.Run(t, analysis.CtxFlow, filepath.Join("testdata", "src", "ctxflow"))
}
