package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestHotAllocGolden(t *testing.T) {
	analysistest.Run(t, analysis.HotAlloc, filepath.Join("testdata", "src", "hotalloc"))
}
