package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file grows the framework from an intraprocedural AST walker into a
// facts-based interprocedural engine: a module-local call graph (static
// calls and method sets resolved through go/types, conservative on
// interface and func-value calls) over which analyzers propagate
// per-function facts bottom-up in strongly-connected-component order. The
// hotalloc, lockorder and ctxflow analyzers are built on it; wireexhaustive
// uses the whole-program view without the graph.

// FuncNode is one module function with a body: a call-graph vertex.
// Function literals are attributed to their enclosing declaration — a
// closure's statements belong to the function that wrote it — except that
// subtrees handed to a goroutine (a `go` statement, or a function literal
// passed to a panic-converting spawn helper) are marked asynchronous, so
// analyzers can exclude work that does not run on the caller's own
// control flow.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	File *ast.File

	// Calls are the statically resolved module-internal call sites, in
	// source order. External and Dynamic record what the graph is
	// conservative about: calls into packages analyzed signature-only
	// (the standard library) and calls through func values or interface
	// methods, respectively.
	Calls    []CallSite
	External []ExternCall
	Dynamic  []DynCall
}

// CallSite is one statically resolved call to another module function.
type CallSite struct {
	Callee *FuncNode
	Call   *ast.CallExpr
	// Async marks a call that runs on a spawned goroutine rather than the
	// caller's own control flow.
	Async bool
}

// ExternCall is a call whose target has no analyzable body here (standard
// library, signature-only dependency).
type ExternCall struct {
	Fn    *types.Func
	Call  *ast.CallExpr
	Async bool
}

// DynCall is a call the graph cannot resolve statically: through a func
// value, or an interface method (the conservative frontier).
type DynCall struct {
	Call *ast.CallExpr
	// Iface is the interface method being invoked, when known (nil for
	// plain func-value calls).
	Iface *types.Func
	Async bool
}

// DisplayName renders the function compactly for diagnostics:
// (*tt.Table).Lookup, tensor.ParallelFor.
func (n *FuncNode) DisplayName() string {
	full := n.Obj.FullName()
	full = strings.ReplaceAll(full, ModulePath+"/internal/", "")
	full = strings.ReplaceAll(full, ModulePath+"/", "")
	return full
}

// Program is the whole-module view interprocedural analyzers run on.
type Program struct {
	Packages []*Package
	Fset     *token.FileSet
	ByObj    map[*types.Func]*FuncNode
	// Nodes in deterministic order (package path, then position).
	Nodes []*FuncNode

	directives map[*ast.File]map[int][]directive
	facts      *Facts
}

// BuildProgram links the packages (all type-checked by one shared loader,
// so *types.Func identities agree across package boundaries) into a call
// graph.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		ByObj:      map[*types.Func]*FuncNode{},
		directives: map[*ast.File]map[int][]directive{},
	}
	p.Packages = append(p.Packages, pkgs...)
	sort.Slice(p.Packages, func(i, j int) bool { return p.Packages[i].PkgPath < p.Packages[j].PkgPath })
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fn, Pkg: pkg, File: file}
				p.ByObj[obj] = node
				p.Nodes = append(p.Nodes, node)
			}
		}
	}
	for _, node := range p.Nodes {
		p.resolveCalls(node)
	}
	return p
}

// resolveCalls fills node's call lists from its body.
func (p *Program) resolveCalls(node *FuncNode) {
	info := node.Pkg.TypesInfo
	walkAsync(node.Decl.Body, func(n ast.Node, async bool) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		switch fun := fun.(type) {
		case *ast.Ident:
			switch obj := info.Uses[fun].(type) {
			case *types.Func:
				p.addCall(node, obj, call, async)
			case *types.Builtin:
				// builtins are inspected syntactically by analyzers
			default:
				if obj != nil { // func-typed var/param/field
					node.Dynamic = append(node.Dynamic, DynCall{Call: call, Async: async})
				}
			}
		case *ast.SelectorExpr:
			obj, ok := info.Uses[fun.Sel].(*types.Func)
			if !ok {
				node.Dynamic = append(node.Dynamic, DynCall{Call: call, Async: async})
				return true
			}
			if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				if types.IsInterface(sel.Recv().Underlying()) {
					node.Dynamic = append(node.Dynamic, DynCall{Call: call, Iface: obj, Async: async})
					return true
				}
			}
			p.addCall(node, obj, call, async)
		case *ast.FuncLit:
			// Immediately invoked literal: its body is already part of
			// this node's subtree.
		default:
			node.Dynamic = append(node.Dynamic, DynCall{Call: call, Async: async})
		}
		return true
	})
}

func (p *Program) addCall(node *FuncNode, obj *types.Func, call *ast.CallExpr, async bool) {
	if target, ok := p.ByObj[obj]; ok {
		node.Calls = append(node.Calls, CallSite{Callee: target, Call: call, Async: async})
		return
	}
	node.External = append(node.External, ExternCall{Fn: obj, Call: call, Async: async})
}

// walkAsync walks root in source order, reporting for each node whether it
// executes asynchronously with respect to the enclosing function: inside a
// `go` statement, or inside a function literal passed to a spawn helper
// (the project's panic-converting goroutine entry, enforced by gospawn).
func walkAsync(root ast.Node, fn func(n ast.Node, async bool) bool) {
	var asyncRanges []asyncRange
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			asyncRanges = append(asyncRanges, asyncRange{n.Call.Pos(), n.Call.End()})
		case *ast.CallExpr:
			if isSpawnCall(n) {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						asyncRanges = append(asyncRanges, asyncRange{lit.Pos(), lit.End()})
					}
				}
			}
		}
		return true
	})
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		async := false
		for _, r := range asyncRanges {
			if r.lo <= n.Pos() && n.Pos() < r.hi {
				async = true
				break
			}
		}
		return fn(n, async)
	})
}

type asyncRange struct{ lo, hi token.Pos }

// isSpawnCall reports whether call invokes a function named spawn (the
// gospawn-enforced goroutine entry helper).
func isSpawnCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "spawn"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "spawn"
	}
	return false
}

// SCCs returns the call graph's strongly connected components in
// bottom-up (callee-first) order: by the time a component is visited,
// every component it calls into has already been visited. Fact
// propagation iterates this order once.
func (p *Program) SCCs() [][]*FuncNode {
	// Tarjan, iterative over the deterministic node order.
	index := map[*FuncNode]int{}
	low := map[*FuncNode]int{}
	onStack := map[*FuncNode]bool{}
	var stack []*FuncNode
	var sccs [][]*FuncNode
	next := 0

	var strongconnect func(v *FuncNode)
	strongconnect = func(v *FuncNode) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, cs := range v.Calls {
			w := cs.Callee
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*FuncNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range p.Nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	// Tarjan emits components in reverse topological order of the
	// condensation — exactly callee-first.
	return sccs
}

// fileFor locates the package and file containing pos.
func (p *Program) fileFor(pos token.Pos) (*Package, *ast.File) {
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return pkg, f
			}
		}
	}
	return nil, nil
}

// LineDirective reports the //elrec:<name> directive annotating the line
// of pos (same line or the line above), program-wide.
func (p *Program) LineDirective(pos token.Pos, name string) (directive, bool) {
	_, file := p.fileFor(pos)
	if file == nil {
		return directive{}, false
	}
	byLine, ok := p.directives[file]
	if !ok {
		byLine = parseDirectives(p.Fset, file)
		p.directives[file] = byLine
	}
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range byLine[l] {
			if d.name == name {
				return d, true
			}
		}
	}
	return directive{}, false
}

// FuncDirective reports the //elrec:<name> directive in node's doc
// comment.
func (p *Program) FuncDirective(n *FuncNode, name string) (directive, bool) {
	return docDirective(n.Decl.Doc, name)
}

// docDirective scans a doc comment group for //elrec:<name>.
func docDirective(doc *ast.CommentGroup, name string) (directive, bool) {
	if doc == nil {
		return directive{}, false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if !strings.HasPrefix(text, DirectivePrefix) {
			continue
		}
		dname, args, _ := strings.Cut(strings.TrimPrefix(text, DirectivePrefix), " ")
		if dname == name {
			return directive{name: dname, args: strings.TrimSpace(args)}, true
		}
	}
	return directive{}, false
}

// modulePackage reports whether pkgPath belongs to this module. Packages
// loaded standalone by the analysistest harness (import path with no
// slash, outside the module) are treated as in scope by the analyzers'
// package filters, so golden packages exercise the same checks.
func modulePackage(pkgPath string) bool {
	return pkgPath == ModulePath || strings.HasPrefix(pkgPath, ModulePath+"/")
}
