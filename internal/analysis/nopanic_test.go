package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestNoPanicGolden(t *testing.T) {
	analysistest.Run(t, analysis.NoPanic, filepath.Join("testdata", "src", "nopanic"))
}
