package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Per-function facts computed bottom-up over the call graph's strongly
// connected components. Two analyzers consume them today: ctxflow (does an
// entry point block?) and lockorder (which locks can a call acquire, and
// can it block while they are held?).

// BlockKind classifies how a function may block.
type BlockKind uint8

const (
	// BlockChan: channel operations, select without default, time.Sleep,
	// WaitGroup/Cond Wait — unbounded waits on in-process coordination.
	BlockChan BlockKind = 1 << iota
	// BlockNet: network I/O — dials, accepts, reads and writes on net
	// connections (deadline-governed in this tree, but still I/O a lock
	// must never be held across).
	BlockNet
)

// BlockFact is the may-block fact of one function: what kinds of blocking
// it can perform, with one human-readable witness for diagnostics.
type BlockFact struct {
	Kind    BlockKind
	Witness string // e.g. "channel receive", "time.Sleep", "call to roundTrip"
}

// Facts is the program-wide fact store.
type Facts struct {
	// Block[n] is n's may-block fact (zero Kind: proven non-blocking
	// modulo the conservative frontier).
	Block map[*FuncNode]BlockFact
	// Acquires[n] maps each lock object n may acquire (transitively,
	// excluding spawned goroutines) to one acquisition site.
	Acquires map[*FuncNode]map[types.Object]token.Pos
}

// Facts computes (once) and returns the program's fact store. Not safe for
// concurrent first use; the driver runs program analyzers sequentially.
func (p *Program) Facts() *Facts {
	if p.facts != nil {
		return p.facts
	}
	f := &Facts{
		Block:    map[*FuncNode]BlockFact{},
		Acquires: map[*FuncNode]map[types.Object]token.Pos{},
	}
	// Direct facts per function.
	for _, n := range p.Nodes {
		f.Block[n] = directBlockFact(n)
		f.Acquires[n] = directAcquires(n)
	}
	// Propagate bottom-up: callees first, components unioned to a fixed
	// point trivially (one union suffices because SCC members share one
	// merged fact).
	for _, scc := range p.SCCs() {
		merged := BlockFact{}
		acq := map[types.Object]token.Pos{}
		inSCC := map[*FuncNode]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		for _, n := range scc {
			merged = mergeBlock(merged, f.Block[n], "")
			for obj, pos := range f.Acquires[n] {
				if _, ok := acq[obj]; !ok {
					acq[obj] = pos
				}
			}
			for _, cs := range n.Calls {
				if cs.Async || inSCC[cs.Callee] {
					continue
				}
				cb := f.Block[cs.Callee]
				merged = mergeBlock(merged, cb, "call to "+cs.Callee.DisplayName())
				for obj := range f.Acquires[cs.Callee] {
					if _, ok := acq[obj]; !ok {
						acq[obj] = cs.Call.Pos()
					}
				}
			}
		}
		for _, n := range scc {
			f.Block[n] = merged
			f.Acquires[n] = acq
		}
	}
	p.facts = f
	return f
}

func mergeBlock(into, from BlockFact, viaWitness string) BlockFact {
	if from.Kind == 0 {
		return into
	}
	if into.Kind == 0 {
		w := from.Witness
		if viaWitness != "" {
			w = viaWitness
		}
		return BlockFact{Kind: from.Kind, Witness: w}
	}
	into.Kind |= from.Kind
	return into
}

// directBlockFact scans one function body (excluding spawned-goroutine
// subtrees) for blocking operations.
func directBlockFact(n *FuncNode) BlockFact {
	var fact BlockFact
	info := n.Pkg.TypesInfo
	nonBlockingComms := selectDefaultComms(n.Decl.Body)
	walkAsync(n.Decl.Body, func(node ast.Node, async bool) bool {
		if async || fact.Kind == BlockChan|BlockNet {
			return !async
		}
		switch node := node.(type) {
		case *ast.SendStmt:
			if !nonBlockingComms[node.Pos()] {
				fact = mergeBlock(fact, BlockFact{BlockChan, "channel send"}, "")
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && !nonBlockingComms[node.Pos()] {
				fact = mergeBlock(fact, BlockFact{BlockChan, "channel receive"}, "")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				fact = mergeBlock(fact, BlockFact{BlockChan, "select"}, "")
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					fact = mergeBlock(fact, BlockFact{BlockChan, "range over channel"}, "")
				}
			}
		case *ast.CallExpr:
			if k, why := externalBlockKind(info, node); k != 0 {
				fact = mergeBlock(fact, BlockFact{k, why}, "")
			}
		}
		return true
	})
	return fact
}

// selectDefaultComms returns the positions of send/receive operations that
// are the guards of select cases in a select carrying a default clause —
// those are non-blocking by construction.
func selectDefaultComms(body *ast.BlockStmt) map[token.Pos]bool {
	out := map[token.Pos]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || !selectHasDefault(sel) {
			return true
		}
		for _, clause := range sel.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			ast.Inspect(comm.Comm, func(cn ast.Node) bool {
				switch cn := cn.(type) {
				case *ast.SendStmt:
					out[cn.Pos()] = true
				case *ast.UnaryExpr:
					if cn.Op == token.ARROW {
						out[cn.Pos()] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if comm, ok := clause.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// externalBlockKind classifies one call expression against the known
// blocking surface of the standard library: time.Sleep, WaitGroup/Cond
// Wait, and anything in package net (including interface methods on
// net.Conn/net.Listener, which resolve to the net package).
func externalBlockKind(info *types.Info, call *ast.CallExpr) (BlockKind, string) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return 0, ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return 0, ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return BlockChan, "time.Sleep"
		}
	case "sync":
		if fn.Name() == "Wait" {
			recv := recvTypeName(fn)
			if recv == "WaitGroup" || recv == "Cond" {
				return BlockChan, "sync." + recv + ".Wait"
			}
		}
	case "net":
		return BlockNet, "net." + fn.Name()
	}
	return 0, ""
}

// recvTypeName returns the bare receiver type name of a method, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// directAcquires scans one function body (excluding spawned goroutines)
// for mutex acquisitions, keyed by the lock's declared object.
func directAcquires(n *FuncNode) map[types.Object]token.Pos {
	out := map[types.Object]token.Pos{}
	info := n.Pkg.TypesInfo
	walkAsync(n.Decl.Body, func(node ast.Node, async bool) bool {
		if async {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, _, ok := lockAcquisition(info, call); ok {
			if _, seen := out[obj]; !seen {
				out[obj] = call.Pos()
			}
		}
		return true
	})
	return out
}

// lockAcquisition resolves a call of the form <lock>.Lock() or
// <lock>.RLock() to the object declaring the lock (a struct field or a
// variable), reporting whether the acquisition is a write lock.
func lockAcquisition(info *types.Info, call *ast.CallExpr) (obj types.Object, write bool, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		write = true
	case "RLock":
	default:
		return nil, false, false
	}
	if !isSyncLockMethod(info, sel) {
		return nil, false, false
	}
	obj = lockBaseObject(info, sel.X)
	return obj, write, obj != nil
}

// lockRelease resolves <lock>.Unlock() / <lock>.RUnlock() the same way.
func lockRelease(info *types.Info, call *ast.CallExpr) (types.Object, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return nil, false
	}
	if !isSyncLockMethod(info, sel) {
		return nil, false
	}
	obj := lockBaseObject(info, sel.X)
	return obj, obj != nil
}

// isSyncLockMethod reports whether sel selects a method declared in
// package sync (Mutex/RWMutex and wrappers embedding them).
func isSyncLockMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync"
}

// lockBaseObject reduces p.hostMu[h], c.mu, or mu to the object declaring
// the lock (field hostMu, field mu, var mu).
func lockBaseObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return lockBaseObject(info, e.X)
	case *ast.StarExpr:
		return lockBaseObject(info, e.X)
	}
	return nil
}

// lockDisplayName renders a lock object for diagnostics: ps.statsMu,
// distps.mu.
func lockDisplayName(obj types.Object) string {
	if obj.Pkg() != nil {
		pkg := obj.Pkg().Path()
		pkg = pkg[strings.LastIndex(pkg, "/")+1:]
		return pkg + "." + obj.Name()
	}
	return obj.Name()
}
