package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockOrderGolden(t *testing.T) {
	analysistest.Run(t, analysis.LockOrder, filepath.Join("testdata", "src", "lockorder"))
}
