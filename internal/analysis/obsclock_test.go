package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestObsClockGolden(t *testing.T) {
	analysistest.Run(t, analysis.ObsClock, filepath.Join("testdata", "src", "obsclock"))
}
