// Package analysistest runs an analyzer over a testdata package and checks
// its diagnostics against golden expectations embedded in the source, the
// same contract as golang.org/x/tools/go/analysis/analysistest: a comment
//
//	// want "regexp" ["regexp" ...]
//
// on a line declares that the analyzer must report at least one diagnostic
// on that line matching each regexp; any diagnostic without a matching
// expectation — and any expectation without a matching diagnostic — fails
// the test.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one want pattern anchored to a file line.
type expectation struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// Run loads the single package rooted at dir, applies the analyzer, and
// compares its diagnostics against the package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("no want expectations in %s: a golden test must demonstrate at least one caught violation", dir)
	}
	for _, d := range diags {
		found := false
		for i := range wants {
			w := &wants[i]
			if w.matched || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s diagnostic matching %q", w.file, w.line, a.Name, w.raw)
		}
	}
}

// collectWants scans every .go file of dir for want comments.
func collectWants(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var out []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading %s: %v", e.Name(), err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRe.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				t.Fatalf(`%s:%d: malformed want comment (need // want "regexp")`, e.Name(), i+1)
			}
			for _, q := range quoted {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: unquoting %s: %v", e.Name(), i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: compiling %q: %v", e.Name(), i+1, pat, err)
				}
				out = append(out, expectation{file: e.Name(), line: i + 1, re: re, raw: pat})
			}
		}
	}
	return out
}
