package analysis

import (
	"go/types"
	"strings"
)

// CtxFlow enforces the PR 1 cancellation contract interprocedurally:
//
//  1. Library code must not mint its own context: every call to
//     context.Background() or context.TODO() outside cmd/, examples/ and
//     internal/bench needs a line //elrec:rootctx annotation declaring it
//     an audited root (a nil-ctx compatibility default, a detached
//     background janitor).
//  2. Exported entry points of the blocking-surface packages (ps, distps,
//     serve) that may block on in-process coordination — channel
//     operations, time.Sleep, WaitGroup waits, transitively through the
//     call graph — must accept a context.Context, so callers can cancel
//     them. Network I/O alone does not trigger the requirement: socket
//     calls are deadline-governed. Close is exempt (io.Closer's contract
//     has no context). A deliberate exception carries //elrec:rootctx on
//     the function's doc comment.
var CtxFlow = &Analyzer{
	Name:       "ctxflow",
	Doc:        "exported blocking entry points must accept context; no context.Background in library code",
	RunProgram: runCtxFlow,
}

// ctxRootScope: packages where minting a root context is normal.
func ctxRootScope(pkgPath string) bool {
	switch {
	case strings.HasPrefix(pkgPath, ModulePath+"/cmd/"),
		strings.HasPrefix(pkgPath, ModulePath+"/examples/"),
		strings.HasPrefix(pkgPath, ModulePath+"/internal/bench"):
		return false
	}
	return true
}

// ctxEntryScope: packages whose exported blocking API must take ctx — the
// training pipeline, the distributed parameter server and the serving
// front end, plus standalone analysistest packages.
func ctxEntryScope(pkgPath string) bool {
	switch pkgPath {
	case ModulePath + "/internal/ps",
		ModulePath + "/internal/distps",
		ModulePath + "/internal/serve":
		return true
	}
	return !modulePackage(pkgPath)
}

func runCtxFlow(pass *Pass) error {
	prog := pass.Program
	facts := prog.Facts()

	for _, n := range prog.Nodes {
		// Check 1: context.Background()/TODO() in library code.
		if ctxRootScope(n.Pkg.PkgPath) {
			for _, ec := range n.External {
				fn := ec.Fn
				if fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					continue
				}
				if fn.Name() != "Background" && fn.Name() != "TODO" {
					continue
				}
				if _, ok := prog.LineDirective(ec.Call.Pos(), "rootctx"); ok {
					continue
				}
				pass.Reportf(ec.Call.Pos(), "context.%s() in library code: accept the caller's context (or annotate //elrec:rootctx <reason> for an audited root)", fn.Name())
			}
		}

		// Check 2: exported blocking entry points must accept ctx.
		if !ctxEntryScope(n.Pkg.PkgPath) {
			continue
		}
		if !n.Decl.Name.IsExported() || !exportedReceiver(n.Obj) {
			continue
		}
		if n.Decl.Name.Name == "Close" {
			continue // io.Closer's contract has no context parameter
		}
		bf := facts.Block[n]
		if bf.Kind&BlockChan == 0 {
			continue
		}
		if hasContextParam(n.Obj) {
			continue
		}
		if _, ok := prog.FuncDirective(n, "rootctx"); ok {
			continue
		}
		pass.Reportf(n.Decl.Name.Pos(), "exported %s may block (%s) but does not accept a context.Context", n.DisplayName(), bf.Witness)
	}
	return nil
}

// exportedReceiver reports whether fn is a plain function or a method on
// an exported named type — methods of unexported types are not API.
func exportedReceiver(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return true
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Exported()
}

// hasContextParam reports whether any parameter of fn is context.Context.
func hasContextParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
