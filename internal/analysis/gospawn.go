package analysis

import (
	"go/ast"
)

// GoSpawn pins down how pipeline goroutines are born: every `go`
// statement in the package must live inside the panic-converting spawn
// helper (a function named spawn), so a panicking goroutine is always
// converted into a recorded failure instead of killing the process. The
// fault-tolerance contract — Train returns an error, queues drain, state
// stays checkpoint-consistent — only holds if no code path can start a
// bare goroutine. The driver applies this analyzer to the goroutine-owning
// packages (internal/ps and the internal/served replica pool, whose spawn
// ties worker lifetime to the drain barrier).
var GoSpawn = &Analyzer{
	Name: "gospawn",
	Doc: "every `go` statement must route through the panic-converting " +
		"spawn helper",
	Run: runGoSpawn,
}

func runGoSpawn(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			inSpawn := fn.Name.Name == "spawn"
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok && !inSpawn {
					pass.Reportf(g.Pos(), "bare go statement: route goroutines through the panic-converting spawn helper")
				}
				return true
			})
		}
	}
	return nil
}
