package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWireExhaustiveGolden(t *testing.T) {
	analysistest.Run(t, analysis.WireExhaustive, filepath.Join("testdata", "src", "wireexhaustive"))
}
