package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WireExhaustive keeps the distps wire protocol closed under extension:
// adding a frame-type constant without wiring every decode path fails
// lint instead of failing at runtime with "unexpected frame".
//
// The const block declaring the frame types carries //elrec:wiretypes on
// its doc comment. The protocol's parity convention classifies each
// constant: odd values are requests (except *Error, which answers any
// request), everything else is a response. Each dispatch/decode switch is
// annotated //elrec:wireswitch <role> with role one of:
//
//	requests  — must case every request constant (server dispatch,
//	            client request→response mapping)
//	responses — must case every response constant
//	all       — must case every constant (diagnostic name tables)
//
// A default clause does not satisfy the requirement — the point is that
// the compiler-invisible "forgot to handle it" hole becomes a finding.
// If wiretypes constants exist at all, at least one `requests` switch and
// one `all` switch must exist, so deleting the annotation (or the switch)
// is itself a finding.
var WireExhaustive = &Analyzer{
	Name:       "wireexhaustive",
	Doc:        "every wire frame-type constant must be handled in all annotated dispatch switches",
	RunProgram: runWireExhaustive,
}

type wireConst struct {
	name string
	obj  types.Object
	val  int64
}

func runWireExhaustive(pass *Pass) error {
	prog := pass.Program

	var consts []wireConst
	var declPos token.Pos
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				if _, ok := docDirective(gd.Doc, "wiretypes"); !ok {
					continue
				}
				if declPos == token.NoPos {
					declPos = gd.Pos()
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						c, ok := pkg.TypesInfo.Defs[name].(*types.Const)
						if !ok {
							continue
						}
						v, exact := constant.Int64Val(c.Val())
						if !exact {
							continue
						}
						consts = append(consts, wireConst{name: name.Name, obj: c, val: v})
					}
				}
			}
		}
	}
	if len(consts) == 0 {
		return nil
	}

	required := func(role string) []wireConst {
		var out []wireConst
		for _, c := range consts {
			isErr := strings.HasSuffix(c.name, "Error")
			isReq := c.val%2 == 1 && !isErr
			switch role {
			case "requests":
				if isReq {
					out = append(out, c)
				}
			case "responses":
				if !isReq {
					out = append(out, c)
				}
			case "all":
				out = append(out, c)
			}
		}
		return out
	}

	rolesSeen := map[string]bool{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			info := pkg.TypesInfo
			ast.Inspect(file, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok {
					return true
				}
				d, ok := prog.LineDirective(sw.Pos(), "wireswitch")
				if !ok {
					return true
				}
				role := d.args
				switch role {
				case "requests", "responses", "all":
				default:
					pass.Reportf(sw.Pos(), "unknown //elrec:wireswitch role %q (want requests, responses or all)", role)
					return true
				}
				rolesSeen[role] = true
				handled := map[types.Object]bool{}
				for _, stmt := range sw.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						var id *ast.Ident
						switch e := ast.Unparen(e).(type) {
						case *ast.Ident:
							id = e
						case *ast.SelectorExpr:
							id = e.Sel
						default:
							continue
						}
						if obj := info.Uses[id]; obj != nil {
							handled[obj] = true
						}
					}
				}
				var missing []string
				for _, c := range required(role) {
					if !handled[c.obj] {
						missing = append(missing, c.name)
					}
				}
				if len(missing) > 0 {
					sort.Strings(missing)
					pass.Reportf(sw.Pos(), "wire switch (//elrec:wireswitch %s) missing cases: %s", role, strings.Join(missing, ", "))
				}
				return true
			})
		}
	}

	for _, role := range []string{"requests", "all"} {
		if !rolesSeen[role] {
			pass.Reportf(declPos, "wire frame types declared but no //elrec:wireswitch %s switch exists to handle them", role)
		}
	}
	return nil
}
