package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDeterminismGolden(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, filepath.Join("testdata", "src", "determinism"))
}
