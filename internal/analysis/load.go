package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages without the go/packages driver:
// `go list -deps -json` supplies the file sets and a topological order,
// and go/types checks everything from source. Standard-library
// dependencies are checked with IgnoreFuncBodies (only their exported
// shape matters), so a full-module load stays fast and fully offline.
type Loader struct {
	fset    *token.FileSet
	checked map[string]*types.Package

	// parsed caches files by absolute path; guarded by mu so the
	// pre-parse worker pool and on-demand parsing can share it.
	mu     sync.Mutex
	parsed map[string]*ast.File
}

// NewLoader returns an empty loader. Loaders cache type-checked
// dependencies, so one loader should be reused across calls.
func NewLoader() *Loader {
	return &Loader{
		fset:    token.NewFileSet(),
		checked: map[string]*types.Package{},
		parsed:  map[string]*ast.File{},
	}
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -json` in dir and decodes the JSON stream.
// CGO is disabled so every package resolves to its pure-Go file set.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPkg
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// importerFor adapts the loader's cache to types.Importer.
type importerFor struct{ l *Loader }

func (im importerFor) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := im.l.checked[path]; ok {
		return pkg, nil
	}
	// Fall back to on-demand loading: LoadDir-style checks reach std
	// packages that were not part of a prior go list closure.
	if err := im.l.ensureDeps(path); err != nil {
		return nil, err
	}
	if pkg, ok := im.l.checked[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("analysis: import %q not loaded", path)
}

// ensureDeps loads and type-checks path and its transitive dependencies
// (signatures only).
func (l *Loader) ensureDeps(path string) error {
	listed, err := goList(".", []string{path})
	if err != nil {
		return err
	}
	for _, lp := range listed {
		if _, ok := l.checked[lp.ImportPath]; ok || lp.ImportPath == "unsafe" {
			continue
		}
		if _, err := l.checkListed(lp, true, nil); err != nil {
			return err
		}
	}
	return nil
}

// parseFile parses one file, consulting the loader's cache first. The
// shared token.FileSet serializes AddFile internally, so concurrent
// callers only need the cache lock.
func (l *Loader) parseFile(path string) (*ast.File, error) {
	l.mu.Lock()
	f, ok := l.parsed[path]
	l.mu.Unlock()
	if ok {
		return f, nil
	}
	f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	if prev, ok := l.parsed[path]; ok {
		f = prev // lost a benign race; keep one canonical tree
	} else {
		l.parsed[path] = f
	}
	l.mu.Unlock()
	return f, nil
}

// parseFiles parses the named files of one package directory.
func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := l.parseFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// preparse parses every file of the listed packages on a worker pool.
// Type-checking must stay sequential in dependency order, but parsing —
// which dominates a cold load of the module plus its std closure — is
// embarrassingly parallel. Errors are not reported here; the sequential
// parseFiles pass re-encounters them with full package context.
func (l *Loader) preparse(listed []*listedPkg) {
	var paths []string
	for _, lp := range listed {
		if lp.Error != nil || lp.ImportPath == "unsafe" {
			continue
		}
		if _, done := l.checked[lp.ImportPath]; done {
			continue
		}
		for _, name := range lp.GoFiles {
			paths = append(paths, filepath.Join(lp.Dir, name))
		}
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, path := range paths {
		wg.Add(1)
		sem <- struct{}{}
		go func(path string) {
			defer wg.Done()
			defer func() { <-sem }()
			_, _ = l.parseFile(path) // error re-surfaces in parseFiles
		}(path)
	}
	wg.Wait()
}

// newInfo allocates a fully populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// checkListed type-checks one go-list entry. With sigOnly set, function
// bodies are skipped (dependency mode); otherwise full bodies are checked
// and info receives the results.
func (l *Loader) checkListed(lp *listedPkg, sigOnly bool, info *types.Info) (*types.Package, error) {
	if lp.Error != nil {
		return nil, fmt.Errorf("analysis: go list: %s: %s", lp.ImportPath, lp.Error.Err)
	}
	files, err := l.parseFiles(lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	cfg := &types.Config{
		Importer:         importerFor{l},
		IgnoreFuncBodies: sigOnly,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
	}
	if sigOnly {
		// Standard-library sources occasionally trip body-level checks the
		// compiler handles specially; with bodies ignored these cannot
		// occur, but keep a tolerant error handler for belt and braces.
		cfg.Error = func(error) {}
	}
	pkg, err := cfg.Check(lp.ImportPath, l.fset, files, info)
	if err != nil && !sigOnly {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: type-checking %s produced no package", lp.ImportPath)
	}
	l.checked[lp.ImportPath] = pkg
	return pkg, nil
}

// Load type-checks the packages matching the go-list patterns (run from
// dir) and returns the non-standard-library ones — the module's own
// packages — with full syntax and type information, sorted by import
// path.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	l.preparse(listed)
	var out []*Package
	for _, lp := range listed { // dependency order: deps precede dependents
		if lp.ImportPath == "unsafe" {
			continue
		}
		if _, ok := l.checked[lp.ImportPath]; ok && lp.Standard {
			continue
		}
		if lp.Standard {
			if _, err := l.checkListed(lp, true, nil); err != nil {
				return nil, err
			}
			continue
		}
		info := newInfo()
		files, err := l.parseFiles(lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		cfg := &types.Config{
			Importer: importerFor{l},
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		pkg, err := cfg.Check(lp.ImportPath, l.fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
		}
		l.checked[lp.ImportPath] = pkg
		out = append(out, &Package{
			PkgPath:   lp.ImportPath,
			Dir:       lp.Dir,
			Fset:      l.fset,
			Files:     files,
			Types:     pkg,
			TypesInfo: info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir parses and type-checks the single package rooted at dir (outside
// the module build, e.g. an analysistest testdata package). Imports are
// resolved on demand: module-internal ones via go list from the current
// directory, standard-library ones from GOROOT source.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	files, err := l.parseFiles(dir, names)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	cfg := &types.Config{
		Importer: importerFor{l},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkgPath := filepath.Base(dir)
	pkg, err := cfg.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", dir, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     pkg,
		TypesInfo: info,
	}, nil
}

// enforce importer interface compliance at compile time.
var _ types.Importer = importerFor{}
