package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism guards the numeric result paths whose outputs must be
// bit-reproducible (the reorder bijection feeds training, and training is
// verified bit-exact across kill/resume). It reports:
//
//   - range statements over maps: Go randomizes iteration order, so any
//     map-range whose body can leak order into a result (float
//     accumulation, slice append, min/argmax selection — in practice, any
//     body at all) silently breaks reproducibility. Loops that only
//     delete from the ranged map are allowed (order provably cannot
//     escape), as are loops annotated //elrec:orderless <reason>.
//   - calls through the global math/rand source (rand.Intn, rand.Float64,
//     …): numeric paths must draw from an explicitly seeded generator.
//   - time.Now in numeric code: wall-clock time must never influence a
//     numeric result. (Pipeline bookkeeping lives outside the packages
//     this analyzer is applied to.)
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flags map-iteration order, global math/rand and time.Now leaking " +
		"into deterministic numeric paths",
	Run: runDeterminism,
}

// randConstructors are the math/rand functions that build an explicitly
// seeded generator rather than touching the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				pass.checkMapRange(file, n)
			case *ast.CallExpr:
				pass.checkNondetCall(n)
			}
			return true
		})
	}
	return nil
}

func (p *Pass) checkMapRange(file *ast.File, rs *ast.RangeStmt) {
	tv, ok := p.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if d, ok := p.directiveFor(file, rs, "orderless"); ok {
		if d.args == "" {
			p.Reportf(rs.Pos(), "//elrec:orderless annotation requires a reason")
		}
		return
	}
	if deleteOnlyBody(p.TypesInfo, rs) {
		return
	}
	p.Reportf(rs.Pos(), "map iteration order can leak into results: iterate sorted keys, or annotate //elrec:orderless <reason>")
}

// deleteOnlyBody reports whether every statement of the range body is a
// delete(m, k) on the ranged map itself — the one body shape whose effect
// is provably independent of iteration order.
func deleteOnlyBody(info *types.Info, rs *ast.RangeStmt) bool {
	rangedObj := exprObject(info, rs.X)
	if rangedObj == nil || len(rs.Body.List) == 0 {
		return false
	}
	for _, stmt := range rs.Body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "delete" {
			return false
		}
		if obj := info.Uses[fn]; obj != nil {
			if _, builtin := obj.(*types.Builtin); !builtin {
				return false
			}
		}
		if exprObject(info, call.Args[0]) != rangedObj {
			return false
		}
	}
	return true
}

// exprObject resolves an identifier or field selector to its object, the
// loader's handle for "the same variable".
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

func (p *Pass) checkNondetCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := p.TypesInfo.Uses[pkgIdent].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			p.Reportf(call.Pos(), "global math/rand source in a numeric result path: draw from an explicitly seeded generator")
		}
	case "time":
		if sel.Sel.Name == "Now" {
			p.Reportf(call.Pos(), "time.Now in a numeric result path: wall-clock time must not influence results")
		}
	}
}
