// Package analysis is a self-contained static-analysis framework plus the
// six project-specific analyzers (nopanic, determinism, locksafe, gospawn,
// errcmp, obsclock) that machine-check the invariants PR 1 established:
// panic-free library code, deterministic numeric paths, lock-guarded shared
// state, panic-converting goroutine spawns, errors.Is-based sentinel
// handling and wall-clock reads funnelled through the injected obs.Clock.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can migrate to the upstream framework —
// and its multichecker/unitchecker drivers — without touching analyzer
// code. The local implementation exists because this module builds with
// the standard library only.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Analyzer describes one static-analysis pass. Exactly one of Run and
// RunProgram is set: Run analyzes one package at a time; RunProgram
// analyzes the whole loaded module at once over the interprocedural call
// graph (Pass.Program), scoping itself to the packages it cares about.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph help text.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// RunProgram applies the analyzer to the whole program.
	RunProgram func(*Pass) error
}

// Pass carries everything Run needs to analyze one package: syntax, type
// information and a diagnostic sink. For program analyzers (RunProgram),
// the per-package fields are nil and Program carries the whole module.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Program is the whole-module call-graph view; set only for program
	// analyzers.
	Program *Program

	diagnostics []Diagnostic
	// directives caches per-file //elrec: directive positions, lazily built.
	directives map[*ast.File]map[int][]directive
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //elrec:<name> <args> comment.
type directive struct {
	name string // e.g. "invariant", "orderless", "locked"
	args string // trailing free text (reason, mutex name, ...)
}

// DirectivePrefix introduces the project's analyzer escape-hatch comments:
// //elrec:invariant <reason>, //elrec:orderless <reason>,
// //elrec:locked <mu> [reason].
const DirectivePrefix = "elrec:"

// parseDirectives indexes every //elrec: comment of f by the line it ends
// on, so analyzers can ask whether a node is annotated (same line or the
// line immediately above — both the trailing-comment and the
// preceding-comment styles).
func parseDirectives(fset *token.FileSet, f *ast.File) map[int][]directive {
	out := map[int][]directive{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			text = strings.TrimPrefix(text, DirectivePrefix)
			name, args, _ := strings.Cut(text, " ")
			line := fset.Position(c.End()).Line
			out[line] = append(out[line], directive{name: name, args: strings.TrimSpace(args)})
		}
	}
	return out
}

// directiveFor returns the //elrec:<name> directive annotating node, if
// any: on the node's first line, the line above it, or — so annotations
// survive gofmt moving them onto an enclosing declaration — any line of
// the doc comment attached to the enclosing function declaration when
// decl is non-nil.
func (p *Pass) directiveFor(file *ast.File, node ast.Node, name string) (directive, bool) {
	if p.directives == nil {
		p.directives = map[*ast.File]map[int][]directive{}
	}
	byLine, ok := p.directives[file]
	if !ok {
		byLine = parseDirectives(p.Fset, file)
		p.directives[file] = byLine
	}
	line := p.Fset.Position(node.Pos()).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range byLine[l] {
			if d.name == name {
				return d, true
			}
		}
	}
	return directive{}, false
}

// fileOf returns the *ast.File of the pass containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// funcDirective reports whether the function declaration enclosing pos (if
// any) carries //elrec:<name> in its doc comment, returning its args.
func (p *Pass) funcDirective(file *ast.File, fn *ast.FuncDecl, name string) (directive, bool) {
	if fn == nil || fn.Doc == nil {
		return directive{}, false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if !strings.HasPrefix(text, DirectivePrefix) {
			continue
		}
		dname, args, _ := strings.Cut(strings.TrimPrefix(text, DirectivePrefix), " ")
		if dname == name {
			return directive{name: dname, args: strings.TrimSpace(args)}, true
		}
	}
	return directive{}, false
}

// RunAnalyzers applies every analyzer to every package (subject to each
// analyzer's package filter, see Suite) and returns the combined
// diagnostics sorted by position. Per-package passes run concurrently on a
// bounded worker pool (syntax trees and types.Info are read-only here;
// each pass has its own directive cache and diagnostic sink); program
// analyzers then run sequentially over one shared call-graph Program,
// whose fact store and directive cache are built lazily without locking.
// The final position sort makes the output order deterministic either way.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, applies func(a *Analyzer, pkgPath string) bool) ([]Diagnostic, error) {
	type unit struct {
		a   *Analyzer
		pkg *Package
	}
	var units []unit
	var programAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			programAnalyzers = append(programAnalyzers, a)
			continue
		}
		for _, pkg := range pkgs {
			if applies != nil && !applies(a, pkg.PkgPath) {
				continue
			}
			units = append(units, unit{a, pkg})
		}
	}

	results := make([][]Diagnostic, len(units))
	errs := make([]error, len(units))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, u := range units {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, u unit) {
			defer wg.Done()
			defer func() { <-sem }()
			pass := &Pass{
				Analyzer:  u.a,
				Fset:      u.pkg.Fset,
				Files:     u.pkg.Files,
				Pkg:       u.pkg.Types,
				TypesInfo: u.pkg.TypesInfo,
			}
			if err := u.a.Run(pass); err != nil {
				errs[i] = fmt.Errorf("analysis: %s on %s: %w", u.a.Name, u.pkg.PkgPath, err)
				return
			}
			results[i] = pass.diagnostics
		}(i, u)
	}
	wg.Wait()
	var out []Diagnostic
	for i := range units {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i]...)
	}

	if len(programAnalyzers) > 0 && len(pkgs) > 0 {
		prog := BuildProgram(pkgs)
		for _, a := range programAnalyzers {
			pass := &Pass{Analyzer: a, Fset: prog.Fset, Program: prog}
			if err := a.RunProgram(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
			}
			out = append(out, pass.diagnostics...)
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
