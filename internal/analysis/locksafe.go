package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockSafe enforces the "guarded by <mu>" field contracts: a struct field
// whose declaration comment says `guarded by statsMu` may only be read or
// written inside a function that (a) acquires that mutex — contains a
// <mu>.Lock() or <mu>.RLock() call — or (b) declares, via an
// //elrec:locked <mu> [reason] directive in its doc comment, that its
// callers hold the lock or otherwise guarantee exclusivity (constructors
// before publication, test-only hooks). The check is function-local and
// presence-based — it does not prove lock ordering — which is exactly the
// class of regression it is meant to catch: a new method touching guarded
// state with no locking discipline at all.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc: "fields commented `guarded by <mu>` may only be accessed with " +
		"that mutex held (or under //elrec:locked <mu>)",
	Run: runLockSafe,
}

var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func runLockSafe(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			pass.checkGuardedAccesses(file, fn, guarded)
		}
	}
	return nil
}

// collectGuardedFields maps each annotated struct-field object to the name
// of the mutex guarding it.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	out := map[types.Object]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardedMutex(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// guardedMutex extracts the mutex name from a field's doc or line comment.
func guardedMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkGuardedAccesses verifies every guarded-field access in fn.
func (p *Pass) checkGuardedAccesses(file *ast.File, fn *ast.FuncDecl, guarded map[types.Object]string) {
	locked := lockCallsIn(fn.Body)
	if d, ok := p.funcDirective(file, fn, "locked"); ok {
		mu, _, _ := strings.Cut(d.args, " ")
		if mu == "" {
			p.Reportf(fn.Pos(), "//elrec:locked annotation requires a mutex name")
		} else {
			locked[mu] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.TypesInfo.Uses[sel.Sel]
		mu, isGuarded := guarded[obj]
		if !isGuarded {
			return true
		}
		if !locked[mu] {
			p.Reportf(sel.Sel.Pos(), "%s is guarded by %s, but %s neither locks it nor declares //elrec:locked %s",
				sel.Sel.Name, mu, fn.Name.Name, mu)
		}
		return true
	})
}

// lockCallsIn returns the set of mutex field names on which the body calls
// Lock or RLock. The receiver chain is reduced to its final component, so
// p.statsMu.Lock(), c.mu.RLock() and p.hostMu[h].Lock() register statsMu,
// mu and hostMu respectively.
func lockCallsIn(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if name := baseName(sel.X); name != "" {
			out[name] = true
		}
		return true
	})
	return out
}

// baseName reduces an expression like p.hostMu[h] or c.mu to the last
// identifier naming the mutex (hostMu, mu).
func baseName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return baseName(e.X)
	case *ast.ParenExpr:
		return baseName(e.X)
	}
	return ""
}
