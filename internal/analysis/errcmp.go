package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmp enforces the error-discipline half of PR 1's contract: sentinel
// errors (ps.ErrGatherFailed, serve.ErrInvalidContext, io.EOF, …) travel
// on wrap chains, so identity must be tested with errors.Is/errors.As.
// It reports:
//
//   - == or != between an error value and a package-level error variable
//     (comparisons against nil stay legal);
//   - == or != on the result of err.Error() — matching on message text;
//   - strings.Contains / HasPrefix / HasSuffix applied to err.Error().
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc: "sentinel errors must be compared with errors.Is/errors.As, " +
		"never == or message matching",
	Run: runErrCmp,
}

func runErrCmp(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					pass.checkErrCompare(n)
				}
			case *ast.CallExpr:
				pass.checkStringMatch(n)
			}
			return true
		})
	}
	return nil
}

func (p *Pass) checkErrCompare(be *ast.BinaryExpr) {
	if p.isNil(be.X) || p.isNil(be.Y) {
		return
	}
	if p.isSentinelError(be.X) || p.isSentinelError(be.Y) {
		p.Reportf(be.OpPos, "sentinel error compared with %s: use errors.Is", be.Op)
		return
	}
	if p.isErrorMessageCall(be.X) || p.isErrorMessageCall(be.Y) {
		p.Reportf(be.OpPos, "error message compared with %s: use errors.Is on the sentinel instead", be.Op)
	}
}

// checkStringMatch flags strings.Contains/HasPrefix/HasSuffix over an
// err.Error() result.
func (p *Pass) checkStringMatch(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := p.TypesInfo.Uses[pkgIdent].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "strings" {
		return
	}
	switch sel.Sel.Name {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		leaked := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && p.isErrorMessageCall(c) {
				leaked = true
			}
			return !leaked
		})
		if leaked {
			p.Reportf(call.Pos(), "matching on err.Error() text: use errors.Is/errors.As on the sentinel instead")
			return
		}
	}
}

func (p *Pass) isNil(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// isSentinelError reports whether e references a package-level variable of
// type error — the sentinel pattern.
func (p *Pass) isSentinelError(e ast.Expr) bool {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = p.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = p.TypesInfo.Uses[e.Sel]
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Parent() == nil || v.Parent() != v.Pkg().Scope() {
		return false // not package-level
	}
	return isErrorType(v.Type())
}

// isErrorMessageCall reports whether e is a call of the error interface's
// Error method (or a method named Error() string on an error type).
func (p *Pass) isErrorMessageCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	tv, ok := p.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	return isErrorType(tv.Type) || types.Implements(tv.Type, errorInterface())
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}
