// Package locksafe exercises the locksafe analyzer: a field commented
// `guarded by <mu>` may only be touched by functions that lock that mutex
// or declare //elrec:locked <mu> in their doc comment.
package locksafe

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	// hits counts cache hits.
	// guarded by mu
	hits int

	free int // unguarded: no annotation, no enforcement
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.hits++
}

func (c *counter) racyRead() int {
	return c.n // want "n is guarded by mu"
}

func (c *counter) racyWrite(v int) {
	c.hits = v // want "hits is guarded by mu"
}

// snapshot reads n without locking.
//
//elrec:locked mu caller holds the lock across the call
func (c *counter) snapshot() int {
	return c.n
}

func (c *counter) unguardedOK() int {
	return c.free
}

type sharded struct {
	shardMu []sync.RWMutex
	vals    []int // guarded by shardMu (per-shard)
}

func (s *sharded) get(i int) int {
	s.shardMu[i].RLock()
	defer s.shardMu[i].RUnlock()
	return s.vals[i]
}
