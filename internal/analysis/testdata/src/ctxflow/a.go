// Package ctxflow is the golden test for the ctxflow analyzer: Drain's
// blocking operation sits one call hop down, so the entry-point check only
// fires through the propagated Block fact.
package ctxflow

import "context"

var jobs = make(chan int)

// Drain is an exported entry point that blocks (via helper) without
// accepting a context — the seeded violation.
func Drain() int { // want "exported ctxflow.Drain may block .call to ctxflow.helper. but does not accept a context.Context"
	return helper()
}

func helper() int { return <-jobs }

// DrainCtx is the compliant twin: same blocking callee, but the caller's
// context is accepted.
func DrainCtx(ctx context.Context) int {
	select {
	case v := <-jobs:
		return v
	case <-ctx.Done():
		return 0
	}
}

// spawnRoot manufactures a context in library code without an audit
// annotation — the seeded check-1 violation.
func spawnRoot() context.Context {
	return context.Background() // want "context.Background.. in library code"
}

// auditedRoot is the annotated escape hatch.
func auditedRoot() context.Context {
	//elrec:rootctx golden audited root
	return context.Background()
}

// Close is exempt by name: close paths run after the caller's context is
// already dead.
func Close() { <-jobs }
