// Package errcmp exercises the errcmp analyzer: sentinel identity must be
// tested with errors.Is/errors.As, never == / != or message matching.
package errcmp

import (
	"errors"
	"strings"
)

var errBoom = errors.New("errcmp: boom")

func eqSentinel(err error) bool {
	return err == errBoom // want "sentinel error compared with =="
}

func neqSentinel(err error) bool {
	return err != errBoom // want "sentinel error compared with !="
}

func eqMessage(err error) bool {
	return err.Error() == "errcmp: boom" // want "error message compared with =="
}

func containsMessage(err error) bool {
	return strings.Contains(err.Error(), "boom") // want "matching on err.Error"
}

func nilCheck(err error) bool {
	return err == nil || err != nil
}

func errorsIs(err error) bool {
	return errors.Is(err, errBoom)
}

func plainStrings(a, b string) bool {
	return strings.Contains(a, b) && a == b
}
