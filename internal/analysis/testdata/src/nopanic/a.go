// Package nopanic exercises the nopanic analyzer: bare panics and
// reason-less invariant annotations are violations; typed-error returns and
// annotated invariants are not.
package nopanic

import "errors"

var errNegative = errors.New("nopanic: negative input")

func bare(x int) {
	if x < 0 {
		panic("negative input") // want "panic in library code"
	}
}

func reasonless(x int) {
	if x < 0 {
		//elrec:invariant
		panic("negative input") // want "annotation requires a reason"
	}
}

func typedError(x int) error {
	if x < 0 {
		return errNegative
	}
	return nil
}

func annotated(x int) {
	if x < 0 {
		//elrec:invariant callers validate x at the API boundary
		panic("negative input")
	}
}

func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
