// Package determinism exercises the determinism analyzer: map-range loops
// (including the key-collection loop of a collect-then-sort pattern, which
// must carry //elrec:orderless in real code), the global math/rand source
// and time.Now are violations in numeric result paths; delete-only loops,
// seeded generators and annotated orderless loops are not.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func sumValues(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want "map iteration order can leak into results"
		s += v
	}
	return s
}

func sumSorted(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m { // want "map iteration order can leak into results"
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

func clearAll(m map[int]bool) {
	for k := range m {
		delete(m, k)
	}
}

func count(m map[int]bool) int {
	n := 0
	//elrec:orderless the body only counts entries; no order can escape
	for range m {
		n++
	}
	return n
}

func globalNoise() float64 {
	return rand.Float64() // want "global math/rand source"
}

func seededNoise(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now in a numeric result path"
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since)
}
