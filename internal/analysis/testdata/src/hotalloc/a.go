// Package hotalloc is the golden test for the hotalloc analyzer: the
// seeded violation allocates two call hops below the annotated root, so it
// is invisible to any intraprocedural walk of Step's body.
package hotalloc

var sink []float32

// Step is the hot-path root. Its own body is allocation-free; the
// violation is buried in gather → grow.
//
//elrec:hotpath golden steady-state step
func Step(buf []float32, n int) []float32 {
	return gather(buf, n)
}

// gather is hop one: still allocation-free itself.
func gather(buf []float32, n int) []float32 {
	for i := range buf {
		buf[i] = 0
	}
	return grow(buf, n)
}

// grow is hop two: the seeded transitive violation.
func grow(buf []float32, n int) []float32 {
	if cap(buf) < n {
		buf = make([]float32, n) // want "hot path must not allocate: make in hotalloc.grow .reachable from hot-path root hotalloc.Step via hotalloc.gather."
	}
	return buf[:n]
}

// warmup shows the audited escape hatch: the same allocation is fine under
// a coldpath line directive, and the function-level form removes a whole
// callee subtree from the hot region.
func warmup(n int) {
	//elrec:coldpath golden warm-up growth
	sink = make([]float32, n)
	pool(n)
}

//elrec:coldpath golden pool construction
func pool(n int) {
	sink = append(sink, make([]float32, n)...)
}

// Drive keeps warmup reachable from the root so the suppressions above are
// actually exercised by the traversal.
//
//elrec:hotpath golden root reaching suppressed sites
func Drive(n int) {
	warmup(n)
}
