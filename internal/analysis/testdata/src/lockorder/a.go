// Package lockorder is the golden test for the lockorder analyzer: both
// seeded violations live one call hop below the function that holds the
// lock, so neither is visible intraprocedurally.
package lockorder

import "sync"

var (
	muA, muB sync.Mutex
	results  = make(chan int)
)

// TransferAB establishes the order muA → muB; the second lock is taken by
// the callee, so the edge only exists through the Acquires fact.
func TransferAB() {
	muA.Lock()
	lockB() // want "lock acquisition order cycle: lockorder.muA → lockorder.muB → lockorder.muA"
	muB.Unlock()
	muA.Unlock()
}

func lockB() { muB.Lock() }

// TransferBA establishes the reverse order muB → muA, closing the cycle.
func TransferBA() {
	muB.Lock()
	lockA()
	muA.Unlock()
	muB.Unlock()
}

func lockA() { muA.Lock() }

// WaitHolding holds muA across a callee whose blocking is only visible
// through its Block fact.
func WaitHolding() {
	muA.Lock()
	recv() // want "lock lockorder.muA held across call to lockorder.recv, which may block"
	muA.Unlock()
}

func recv() { <-results }

// PollHolding is the non-blocking counterpart: the callee's receive is
// guarded by a select with a default, so no fact and no finding.
func PollHolding() {
	muA.Lock()
	poll()
	muA.Unlock()
}

func poll() {
	select {
	case <-results:
	default:
	}
}
