// Package obsclock exercises the obsclock analyzer: direct time.Now and
// time.Since calls are violations (the clock must be injected through
// obs.Clock); other time-package calls, method calls named Now on other
// types, and //elrec:wallclock-annotated sites are not.
package obsclock

import "time"

func stamp() time.Time {
	return time.Now() // want "direct time.Now outside internal/obs"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "direct time.Since outside internal/obs"
}

func annotated() time.Time {
	//elrec:wallclock CLI-style progress timestamp, precision is irrelevant
	return time.Now()
}

func annotatedWithoutReason() time.Time {
	//elrec:wallclock
	return time.Now() // want "annotation requires a reason"
}

type fakeClock struct{}

func (fakeClock) Now() time.Time { return time.Time{} }

func viaClock(c fakeClock) time.Time {
	return c.Now() // a method named Now on a non-time type is fine
}

func otherTimeCalls(d time.Duration) {
	t := time.NewTimer(d) // timers and sleeps are not clock reads
	t.Stop()
	time.Sleep(0)
	_ = time.Unix(0, 0)
}
