// Package gospawn exercises the gospawn analyzer: every go statement must
// live inside the panic-converting spawn helper.
package gospawn

import "sync"

type pool struct {
	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

// spawn is the one blessed goroutine entry point: it converts panics into
// recorded errors, so a fault surfaces instead of killing the process.
func (p *pool) spawn(fn func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				p.mu.Lock()
				if err, ok := r.(error); ok && p.err == nil {
					p.err = err
				}
				p.mu.Unlock()
			}
		}()
		fn()
	}()
}

func (p *pool) bare(fn func()) {
	go fn() // want "bare go statement"
}

func (p *pool) bareClosure(fn func()) {
	p.wg.Add(1)
	go func() { // want "bare go statement"
		defer p.wg.Done()
		fn()
	}()
}

func (p *pool) routed(fn func()) {
	p.spawn(fn)
	p.wg.Wait()
}
