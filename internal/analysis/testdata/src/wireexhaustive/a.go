// Package wireexhaustive is the golden test for the wireexhaustive
// analyzer: the annotated request switch omits one request constant, which
// is only detectable by joining the switch against the wiretypes const
// block declared elsewhere in the package.
package wireexhaustive

// Message types, odd requests / even responses, mirroring the distps wire
// protocol convention.
//
//elrec:wiretypes
const (
	msgPing    = uint8(1)
	msgPong    = uint8(2)
	msgFetch   = uint8(3)
	msgRows    = uint8(4)
	msgError   = uint8(5)
	msgIOError = uint8(7) // odd but an error type: name suffix excludes it from requests
)

// dispatch is the seeded violation: a request switch that forgot msgFetch.
func dispatch(t uint8) int {
	//elrec:wireswitch requests
	switch t { // want "wire switch .*wireswitch requests. missing cases: msgFetch"
	case msgPing:
		return 1
	default:
		return 0
	}
}

// name decodes every type — the compliant all-role switch.
func name(t uint8) string {
	//elrec:wireswitch all
	switch t {
	case msgPing:
		return "ping"
	case msgPong:
		return "pong"
	case msgFetch:
		return "fetch"
	case msgRows:
		return "rows"
	case msgError:
		return "error"
	case msgIOError:
		return "ioerror"
	}
	return "?"
}
