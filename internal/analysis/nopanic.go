package analysis

import (
	"go/ast"
	"go/types"
)

// NoPanic forbids panic calls in library packages. A panic site survives
// review only when it is annotated with an //elrec:invariant directive
// carrying a reason — the project's marker for a contract violation that
// is a programming error by construction (validated upstream, or
// unreachable), kept as a panic because an error return would poison a
// hot numeric kernel's API. Everything else must return a typed error.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc: "forbids panic( in library packages except at sites annotated " +
		"//elrec:invariant <reason>",
	Run: runNoPanic,
}

func runNoPanic(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ident, ok := call.Fun.(*ast.Ident)
			if !ok || ident.Name != "panic" {
				return true
			}
			if obj := pass.TypesInfo.Uses[ident]; obj != nil {
				if _, builtin := obj.(*types.Builtin); !builtin {
					return true // a local function shadowing panic
				}
			}
			d, ok := pass.directiveFor(file, call, "invariant")
			if !ok {
				pass.Reportf(call.Pos(), "panic in library code: return a typed error or annotate the invariant with //elrec:invariant <reason>")
				return true
			}
			if d.args == "" {
				pass.Reportf(call.Pos(), "//elrec:invariant annotation requires a reason")
			}
			return true
		})
	}
	return nil
}
