package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder enforces two deadlock invariants across the lock-striped
// packages (ps, distps, served, tt):
//
//  1. The lock-acquisition-order graph — an edge A→B whenever some
//     function acquires B while holding A, directly or through a callee's
//     transitive Acquires fact — must be acyclic. A cycle means two
//     executions can acquire the same pair of locks in opposite orders.
//  2. No lock may be held across a blocking operation: channel sends and
//     receives, select without default, time.Sleep, WaitGroup/Cond Wait,
//     or network I/O — whether written inline or hidden behind a call
//     whose may-block fact says so.
//
// Locks are identified at field/variable granularity (every element of
// p.hostMu[h] is one lock "hostMu"), matching locksafe. A site that is
// intentional — e.g. a condition-variable pattern — is suppressed with a
// line //elrec:lockorder <reason> directive.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "lock acquisition order must be acyclic; no lock held across blocking operations",
	RunProgram: runLockOrder,
}

// lockOrderScope reports whether pkgPath is subject to lock-order
// checking: the lock-striped module packages, plus standalone test
// packages loaded by the analysistest harness.
func lockOrderScope(pkgPath string) bool {
	switch pkgPath {
	case ModulePath + "/internal/ps",
		ModulePath + "/internal/distps",
		ModulePath + "/internal/served",
		ModulePath + "/internal/tt":
		return true
	}
	return !modulePackage(pkgPath)
}

// lockEdge is one observed A-held-while-acquiring-B event.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos
}

func runLockOrder(pass *Pass) error {
	prog := pass.Program
	facts := prog.Facts()

	var edges []lockEdge
	for _, n := range prog.Nodes {
		if !lockOrderScope(n.Pkg.PkgPath) {
			continue
		}
		edges = append(edges, simulateLocks(pass, n, facts)...)
	}
	reportLockCycles(pass, prog, edges)
	return nil
}

// heldLock is one entry of the simulated held-lock stack.
type heldLock struct {
	obj   types.Object
	write bool
	pos   token.Pos
}

// simulateLocks walks n's body in source order (excluding spawned
// goroutines) maintaining a held-lock stack, reporting blocking-while-held
// and re-acquisition, and returning the acquisition-order edges observed.
func simulateLocks(pass *Pass, n *FuncNode, facts *Facts) []lockEdge {
	prog := pass.Program
	info := n.Pkg.TypesInfo
	var held []heldLock
	var edges []lockEdge

	// Calls under defer release at function exit, not at their source
	// position; a deferred Unlock therefore keeps the lock held for the
	// rest of the simulation.
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if d, ok := node.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	nonBlockingComms := selectDefaultComms(n.Decl.Body)
	staticCalls := map[*ast.CallExpr]*FuncNode{}
	for _, cs := range n.Calls {
		if !cs.Async {
			staticCalls[cs.Call] = cs.Callee
		}
	}

	suppressed := func(pos token.Pos) bool {
		_, ok := prog.LineDirective(pos, "lockorder")
		return ok
	}
	reportBlocked := func(pos token.Pos, what string) {
		if suppressed(pos) {
			return
		}
		top := held[len(held)-1]
		pass.Reportf(pos, "lock %s held across blocking operation: %s (in %s; acquired at %s)",
			lockDisplayName(top.obj), what, n.DisplayName(), prog.Fset.Position(top.pos))
	}

	walkAsync(n.Decl.Body, func(node ast.Node, async bool) bool {
		if async {
			return false
		}
		switch node := node.(type) {
		case *ast.SendStmt:
			if len(held) > 0 && !nonBlockingComms[node.Pos()] {
				reportBlocked(node.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && len(held) > 0 && !nonBlockingComms[node.Pos()] {
				reportBlocked(node.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !selectHasDefault(node) {
				reportBlocked(node.Pos(), "select")
			}
		case *ast.RangeStmt:
			if len(held) > 0 {
				if tv, ok := info.Types[node.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						reportBlocked(node.Pos(), "range over channel")
					}
				}
			}
		case *ast.CallExpr:
			edges = append(edges, lockCallSim(pass, n, node, info, facts, staticCalls, deferred, &held, suppressed)...)
		}
		return true
	})
	return edges
}

// lockCallSim handles one call expression during the lock simulation:
// acquisitions, releases, blocking externals and callee facts.
func lockCallSim(pass *Pass, n *FuncNode, call *ast.CallExpr, info *types.Info, facts *Facts,
	staticCalls map[*ast.CallExpr]*FuncNode, deferred map[*ast.CallExpr]bool,
	held *[]heldLock, suppressed func(token.Pos) bool) []lockEdge {

	prog := pass.Program

	if obj, write, ok := lockAcquisition(info, call); ok {
		var edges []lockEdge
		for _, h := range *held {
			if h.obj == obj {
				if !(!h.write && !write) && !suppressed(call.Pos()) {
					pass.Reportf(call.Pos(), "lock %s acquired while already held (in %s; first acquired at %s)",
						lockDisplayName(obj), n.DisplayName(), prog.Fset.Position(h.pos))
				}
				continue
			}
			edges = append(edges, lockEdge{from: h.obj, to: obj, pos: call.Pos()})
		}
		*held = append(*held, heldLock{obj: obj, write: write, pos: call.Pos()})
		return edges
	}

	if obj, ok := lockRelease(info, call); ok {
		if deferred[call] {
			return nil // releases at return: lock stays held for the simulation
		}
		for i := len(*held) - 1; i >= 0; i-- {
			if (*held)[i].obj == obj {
				*held = append((*held)[:i], (*held)[i+1:]...)
				break
			}
		}
		return nil
	}

	if len(*held) == 0 {
		// Nothing held: only acquisition-order edges matter, and those come
		// from the callee's own simulation.
		return nil
	}

	if callee, ok := staticCalls[call]; ok {
		var edges []lockEdge
		for lock := range facts.Acquires[callee] {
			heldSame := false
			for _, h := range *held {
				if h.obj == lock {
					heldSame = true
					if !suppressed(call.Pos()) {
						pass.Reportf(call.Pos(), "lock %s held when calling %s, which may acquire it again (in %s)",
							lockDisplayName(lock), callee.DisplayName(), n.DisplayName())
					}
				}
			}
			if !heldSame {
				for _, h := range *held {
					edges = append(edges, lockEdge{from: h.obj, to: lock, pos: call.Pos()})
				}
			}
		}
		if bf := facts.Block[callee]; bf.Kind != 0 && !suppressed(call.Pos()) {
			top := (*held)[len(*held)-1]
			pass.Reportf(call.Pos(), "lock %s held across call to %s, which may block (%s) (in %s)",
				lockDisplayName(top.obj), callee.DisplayName(), bf.Witness, n.DisplayName())
		}
		return edges
	}

	if k, why := externalBlockKind(info, call); k != 0 && !suppressed(call.Pos()) {
		top := (*held)[len(*held)-1]
		pass.Reportf(call.Pos(), "lock %s held across blocking operation: %s (in %s; acquired at %s)",
			lockDisplayName(top.obj), why, n.DisplayName(), prog.Fset.Position(top.pos))
	}
	return nil
}

// reportLockCycles finds strongly connected components of the global
// acquisition-order graph and reports each once, deterministically, at
// the earliest witness position of an in-cycle edge.
func reportLockCycles(pass *Pass, prog *Program, edges []lockEdge) {
	adj := map[types.Object]map[types.Object]token.Pos{}
	var locks []types.Object
	seen := map[types.Object]bool{}
	addLock := func(o types.Object) {
		if !seen[o] {
			seen[o] = true
			locks = append(locks, o)
		}
	}
	for _, e := range edges {
		addLock(e.from)
		addLock(e.to)
		if adj[e.from] == nil {
			adj[e.from] = map[types.Object]token.Pos{}
		}
		if _, ok := adj[e.from][e.to]; !ok {
			adj[e.from][e.to] = e.pos
		}
	}
	sort.Slice(locks, func(i, j int) bool { return lockDisplayName(locks[i]) < lockDisplayName(locks[j]) })

	// Tarjan over the lock graph.
	index := map[types.Object]int{}
	low := map[types.Object]int{}
	onStack := map[types.Object]bool{}
	var stack []types.Object
	next := 0
	var sccs [][]types.Object
	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []types.Object
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Slice(succs, func(i, j int) bool { return lockDisplayName(succs[i]) < lockDisplayName(succs[j]) })
		for _, w := range succs {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []types.Object
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, l := range locks {
		if _, ok := index[l]; !ok {
			strongconnect(l)
		}
	}

	for _, scc := range sccs {
		selfLoop := len(scc) == 1 && func() bool { _, ok := adj[scc[0]][scc[0]]; return ok }()
		if len(scc) < 2 && !selfLoop {
			continue
		}
		names := make([]string, len(scc))
		for i, o := range scc {
			names[i] = lockDisplayName(o)
		}
		sort.Strings(names)
		inSCC := map[types.Object]bool{}
		for _, o := range scc {
			inSCC[o] = true
		}
		// Earliest witness among in-cycle edges.
		var at token.Pos
		for _, from := range scc {
			for to, pos := range adj[from] {
				if !inSCC[to] {
					continue
				}
				if at == token.NoPos || prog.Fset.Position(pos).Filename < prog.Fset.Position(at).Filename ||
					(prog.Fset.Position(pos).Filename == prog.Fset.Position(at).Filename && pos < at) {
					at = pos
				}
			}
		}
		pass.Reportf(at, "lock acquisition order cycle: %s", joinCycle(names))
	}
}

func joinCycle(names []string) string {
	s := ""
	for i, n := range names {
		if i > 0 {
			s += " → "
		}
		s += n
	}
	return s + " → " + names[0]
}
