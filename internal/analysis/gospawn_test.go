package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestGoSpawnGolden(t *testing.T) {
	analysistest.Run(t, analysis.GoSpawn, filepath.Join("testdata", "src", "gospawn"))
}
