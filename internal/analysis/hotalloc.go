package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc proves the paper's zero-allocation claim for the training hot
// path statically: every function transitively reachable from an
// //elrec:hotpath root (TT Lookup/Update, the gemm kernels, ParallelFor
// bodies, the serving batcher) must be free of allocation sites. The
// AllocsPerRun tests check the same property at runtime for the inputs
// they run; this analyzer checks it for every path, ahead of time.
//
// //elrec:coldpath on a function's doc comment removes it (and everything
// only reachable through it) from the hot region — the audited escape
// hatch for warm-up growth and error paths. On a single line it exempts
// one site or one call edge. Sites inside a panic(...) argument are
// exempt automatically: a hot path that is about to crash may allocate
// its message.
var HotAlloc = &Analyzer{
	Name:       "hotalloc",
	Doc:        "functions reachable from //elrec:hotpath roots must not allocate",
	RunProgram: runHotAlloc,
}

// hotAllocAllowedPkgs are external packages whose calls are permitted on
// the hot path: pure math, synchronization (sync.Pool reuse is the point
// of the arenas), atomics and runtime introspection.
var hotAllocAllowedPkgs = map[string]bool{
	"math":        true,
	"sync":        true,
	"sync/atomic": true,
	"runtime":     true,
}

func runHotAlloc(pass *Pass) error {
	prog := pass.Program

	// BFS from hotpath roots over non-async static call edges, skipping
	// coldpath functions and coldpath-annotated call sites. parent gives
	// the shortest root chain for diagnostics.
	parent := map[*FuncNode]*FuncNode{}
	rootOf := map[*FuncNode]*FuncNode{}
	var queue []*FuncNode
	for _, n := range prog.Nodes {
		if _, ok := prog.FuncDirective(n, "hotpath"); ok {
			parent[n] = nil
			rootOf[n] = n
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		checkHotBody(pass, n, hotChain(n, parent, rootOf))
		for _, cs := range n.Calls {
			if cs.Async {
				continue
			}
			if _, cold := prog.LineDirective(cs.Call.Pos(), "coldpath"); cold {
				continue
			}
			callee := cs.Callee
			if _, cold := prog.FuncDirective(callee, "coldpath"); cold {
				continue
			}
			if _, seen := rootOf[callee]; seen {
				continue
			}
			parent[callee] = n
			rootOf[callee] = rootOf[n]
			queue = append(queue, callee)
		}
	}
	return nil
}

// hotChain renders how n was reached: "" for a root itself, otherwise
// "reachable from hot-path root R via A → B".
func hotChain(n *FuncNode, parent, rootOf map[*FuncNode]*FuncNode) string {
	if parent[n] == nil {
		return ""
	}
	var hops []string
	for at := n; at != nil; at = parent[at] {
		hops = append(hops, at.DisplayName())
	}
	// hops is n..root; reverse and drop n itself from the "via" list.
	root := hops[len(hops)-1]
	via := hops[1 : len(hops)-1]
	for i, j := 0, len(via)-1; i < j; i, j = i+1, j-1 {
		via[i], via[j] = via[j], via[i]
	}
	s := "reachable from hot-path root " + root
	if len(via) > 0 {
		s += " via " + strings.Join(via, " → ")
	}
	return s
}

// checkHotBody reports every allocation site in n's own body (excluding
// spawned-goroutine subtrees, panic arguments and coldpath-annotated
// lines).
func checkHotBody(pass *Pass, n *FuncNode, chain string) {
	prog := pass.Program
	info := n.Pkg.TypesInfo
	panicRanges := panicArgRanges(info, n.Decl.Body)
	directArgLits := directCallFuncLits(n.Decl.Body)

	report := func(pos token.Pos, what string) {
		if inRanges(panicRanges, pos) {
			return
		}
		if _, ok := prog.LineDirective(pos, "coldpath"); ok {
			return
		}
		msg := what + " in " + n.DisplayName()
		if chain != "" {
			msg += " (" + chain + ")"
		}
		pass.Reportf(pos, "hot path must not allocate: %s", msg)
	}

	walkAsync(n.Decl.Body, func(node ast.Node, async bool) bool {
		if async {
			return false
		}
		switch node := node.(type) {
		case *ast.GoStmt:
			report(node.Pos(), "goroutine spawn")
		case *ast.FuncLit:
			// A literal passed directly to a statically resolved call is
			// analyzed as part of this body (and checked through the call
			// edge if the callee invokes it dynamically); a literal that is
			// stored or returned escapes to the heap.
			if !directArgLits[node] {
				report(node.Pos(), "escaping function literal")
			}
		case *ast.UnaryExpr:
			// &T{...} always heap-allocates on the hot path's terms; a plain
			// value literal T{...} is constructed in place and is fine.
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					report(node.Pos(), "heap-allocated composite literal")
				}
			}
		case *ast.CompositeLit:
			if allocatingLiteral(info, node) {
				report(node.Pos(), "slice or map literal")
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
					report(lhs.Pos(), "map insert")
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(node.X).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
				report(node.Pos(), "map insert")
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isNonConstString(info, node) {
				report(node.Pos(), "string concatenation")
			}
		case *ast.CallExpr:
			checkHotCall(pass, info, node, report)
		}
		return true
	})
}

// checkHotCall classifies one call expression on the hot path: allocating
// builtins, allocating conversions, and calls the graph cannot prove
// allocation-free.
func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	prog := pass.Program
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkHotConversion(info, call, tv.Type, report)
		return
	}
	fun := ast.Unparen(call.Fun)
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.FuncLit:
		return // immediately invoked: body checked inline
	default:
		report(call.Pos(), "dynamic call (cannot be proven allocation-free)")
		return
	}
	switch obj := obj.(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			report(call.Pos(), "make")
		case "new":
			report(call.Pos(), "new")
		case "append":
			report(call.Pos(), "append (may grow its backing array)")
		}
	case *types.Func:
		if _, ok := prog.ByObj[obj]; ok {
			return // module function with a body: traversed through the call graph
		}
		pkg := obj.Pkg()
		if pkg == nil || hotAllocAllowedPkgs[pkg.Path()] {
			return
		}
		report(call.Pos(), "call to "+pkg.Name()+"."+obj.Name()+" (external, cannot be proven allocation-free)")
	default:
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv().Underlying()) {
				report(call.Pos(), "interface method call (cannot be proven allocation-free)")
				return
			}
		}
		report(call.Pos(), "dynamic call (cannot be proven allocation-free)")
	}
}

// checkHotConversion reports conversions that allocate: concrete value to
// interface, and string ↔ []byte/[]rune copies.
func checkHotConversion(info *types.Info, call *ast.CallExpr, target types.Type, report func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	srcTV, ok := info.Types[call.Args[0]]
	if !ok {
		return
	}
	src := srcTV.Type
	if types.IsInterface(target.Underlying()) && !types.IsInterface(src.Underlying()) {
		report(call.Pos(), "conversion to interface")
		return
	}
	if stringByteConversion(src, target) {
		report(call.Pos(), "string conversion (copies the bytes)")
	}
}

// stringByteConversion reports string↔[]byte/[]rune in either direction.
func stringByteConversion(src, dst types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
	}
	return (isStr(src) && isByteOrRuneSlice(dst)) || (isByteOrRuneSlice(src) && isStr(dst))
}

// allocatingLiteral reports whether a value composite literal allocates:
// slice and map literals build heap backing storage, while struct and array
// value literals are constructed in place (the &T{...} form is handled at
// the enclosing UnaryExpr).
func allocatingLiteral(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// isMapIndex reports whether idx indexes a map.
func isMapIndex(info *types.Info, idx *ast.IndexExpr) bool {
	tv, ok := info.Types[idx.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isNonConstString reports whether e is a string-typed expression with no
// compile-time constant value.
func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// panicArgRanges collects the source ranges of panic(...) arguments: a hot
// path that is crashing may allocate its message.
func panicArgRanges(info *types.Info, body *ast.BlockStmt) []asyncRange {
	var out []asyncRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			out = append(out, asyncRange{call.Lparen, call.Rparen})
		}
		return true
	})
	return out
}

// directCallFuncLits collects function literals appearing directly as
// arguments (or the callee) of call expressions.
func directCallFuncLits(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			out[lit] = true
		}
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				out[lit] = true
			}
		}
		return true
	})
	return out
}

func inRanges(ranges []asyncRange, pos token.Pos) bool {
	for _, r := range ranges {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}
