package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestErrCmpGolden(t *testing.T) {
	analysistest.Run(t, analysis.ErrCmp, filepath.Join("testdata", "src", "errcmp"))
}
