package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockSafeGolden(t *testing.T) {
	analysistest.Run(t, analysis.LockSafe, filepath.Join("testdata", "src", "locksafe"))
}
