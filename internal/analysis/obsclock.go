package analysis

import (
	"go/ast"
	"go/types"
)

// ObsClock funnels every wall-clock read through the observability layer's
// injected clock: outside internal/obs and the command binaries (see
// Applies), calling time.Now or time.Since directly is forbidden — library
// code must measure against an obs.Clock so tests can drive timing
// deterministically and the determinism contract ("wall time never
// influences numeric results") stays auditable at one choke point. The
// escape hatch is //elrec:wallclock <reason> for the rare site where raw
// wall time is genuinely wanted.
var ObsClock = &Analyzer{
	Name: "obsclock",
	Doc: "forbids direct time.Now/time.Since outside internal/obs and the " +
		"cmds: measure against an injected obs.Clock",
	Run: runObsClock,
}

func runObsClock(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if sel.Sel.Name != "Now" && sel.Sel.Name != "Since" {
				return true
			}
			if d, ok := pass.directiveFor(file, call, "wallclock"); ok {
				if d.args == "" {
					pass.Reportf(call.Pos(), "//elrec:wallclock annotation requires a reason")
				}
				return true
			}
			pass.Reportf(call.Pos(), "direct time.%s outside internal/obs: measure against an injected obs.Clock (or annotate //elrec:wallclock <reason>)", sel.Sel.Name)
			return true
		})
	}
	return nil
}
