package analysis

import "strings"

// ModulePath is the import-path root of this module.
const ModulePath = "repro"

// Suite returns the ten project analyzers in reporting order: the six
// intraprocedural passes, then the four interprocedural ones built on the
// call-graph facts engine (which scope themselves, see each analyzer).
func Suite() []*Analyzer {
	return []*Analyzer{
		NoPanic, Determinism, LockSafe, GoSpawn, ErrCmp, ObsClock,
		HotAlloc, LockOrder, CtxFlow, WireExhaustive,
	}
}

// deterministicPackages are the numeric result paths whose outputs must be
// bit-reproducible: the reorder bijection pipeline (graphx, reorder), the
// TT embedding kernels (tt) and the system-composition layer that is
// verified bit-exact across kill/resume (core).
var deterministicPackages = map[string]bool{
	ModulePath + "/internal/graphx":  true,
	ModulePath + "/internal/reorder": true,
	ModulePath + "/internal/tt":      true,
	ModulePath + "/internal/core":    true,
}

// goroutineOwnerPackages are the packages that own long-lived goroutines
// and therefore must route every `go` statement through their
// panic-converting spawn helper: the pipeline trainer (ps), the serving
// replica pool (served), the distributed parameter server (distps, whose
// shard accept loops and heartbeat tickers outlive individual requests),
// and the fault proxy (faults), whose callers block on response channels
// or socket reads that a crashed bare goroutine would never answer.
var goroutineOwnerPackages = map[string]bool{
	ModulePath + "/internal/ps":     true,
	ModulePath + "/internal/served": true,
	ModulePath + "/internal/distps": true,
	ModulePath + "/internal/faults": true,
}

// Applies reports whether analyzer a runs on package pkgPath. Library
// packages are the public facade plus everything under internal/ except
// internal/bench — the experiment harness is tool code (it renders
// figures and tables for a human; panic-on-setup-error is its contract),
// as are cmd/ and examples/ binaries.
func Applies(a *Analyzer, pkgPath string) bool {
	if pkgPath != ModulePath && !strings.HasPrefix(pkgPath, ModulePath+"/") {
		return false
	}
	switch a {
	case NoPanic:
		return libraryPackage(pkgPath)
	case Determinism:
		return deterministicPackages[pkgPath]
	case GoSpawn:
		return goroutineOwnerPackages[pkgPath]
	case ObsClock:
		return clockFunnelPackage(pkgPath)
	case LockSafe, ErrCmp:
		return true
	}
	return true
}

// clockFunnelPackage reports whether pkgPath must route wall-clock reads
// through obs.Clock: everything except the clock's home (internal/obs) and
// the binary entry points (cmd/, examples/), where raw wall time for
// progress reporting and CLI timing is fine.
func clockFunnelPackage(pkgPath string) bool {
	switch {
	case pkgPath == ModulePath+"/internal/obs":
		return false
	case strings.HasPrefix(pkgPath, ModulePath+"/cmd/"):
		return false
	case strings.HasPrefix(pkgPath, ModulePath+"/examples/"):
		return false
	}
	return true
}

// libraryPackage reports whether pkgPath holds library code (as opposed
// to a binary entry point or the experiment harness).
func libraryPackage(pkgPath string) bool {
	if pkgPath == ModulePath {
		return true
	}
	if !strings.HasPrefix(pkgPath, ModulePath+"/internal/") {
		return false
	}
	return !strings.HasPrefix(pkgPath, ModulePath+"/internal/bench")
}
