package baselines

import (
	"fmt"

	"repro/internal/dlrm"
	"repro/internal/embedding"
	"repro/internal/tensor"
)

// Traffic accumulates the inter-device bytes a sharded table moves.
type Traffic struct {
	ForwardBytes  int64 // embedding exchange in the forward pass
	BackwardBytes int64 // gradient exchange in the backward pass
}

// RowSharded is a HugeCTR-style model-parallel embedding table: rows are
// range-partitioned across n devices. Lookup semantics are identical to a
// single embedding.Bag; every remote row fetched in the forward pass and
// every remote gradient pushed in the backward pass is counted as
// all-to-all traffic.
type RowSharded struct {
	shards     []*embedding.Bag
	boundaries []int // boundaries[d] = first row of shard d
	rows, dim  int
	n          int

	Traffic Traffic
}

var _ dlrm.Table = (*RowSharded)(nil)

// NewRowSharded partitions rows evenly across n devices.
func NewRowSharded(rows, dim, n int, rng *tensor.RNG) (*RowSharded, error) {
	if n <= 0 || rows < n {
		return nil, fmt.Errorf("baselines: cannot shard %d rows across %d devices", rows, n)
	}
	r := &RowSharded{rows: rows, dim: dim, n: n}
	per := (rows + n - 1) / n
	for lo := 0; lo < rows; lo += per {
		hi := lo + per
		if hi > rows {
			hi = rows
		}
		r.boundaries = append(r.boundaries, lo)
		r.shards = append(r.shards, embedding.NewBag(hi-lo, dim, rng))
	}
	return r, nil
}

// shardOf returns (shard id, local row) of a global row.
func (r *RowSharded) shardOf(idx int) (int, int) {
	per := (r.rows + r.n - 1) / r.n
	s := idx / per
	return s, idx - r.boundaries[s]
}

// Lookup performs the sum-pooling lookup, charging all-to-all forward
// traffic for every looked-up row served by a remote shard. HugeCTR's
// model-parallel exchange moves per-sample embeddings (no cross-device
// deduplication); with the batch itself sharded evenly across the same n
// devices, a row is remote with probability (n−1)/n, and we charge that
// expectation over all len(indices) lookups.
func (r *RowSharded) Lookup(indices, offsets []int) *tensor.Matrix {
	out := tensor.New(len(offsets), r.dim)
	for s := range offsets {
		lo := offsets[s]
		hi := len(indices)
		if s+1 < len(offsets) {
			hi = offsets[s+1]
		}
		row := out.Row(s)
		for _, idx := range indices[lo:hi] {
			shard, local := r.shardOf(idx)
			tensor.AddTo(row, r.shards[shard].Weights.Row(local))
		}
	}
	r.Traffic.ForwardBytes += int64(len(indices)) * int64(r.dim) * 4 * int64(r.n-1) / int64(r.n)
	return out
}

// Update applies the sparse SGD update shard by shard, charging the
// symmetric backward gradient exchange.
func (r *RowSharded) Update(indices, offsets []int, dOut *tensor.Matrix, lr float32) {
	uniq, inverse := embedding.Unique(indices)
	grads := tensor.New(len(uniq), r.dim)
	for s := range offsets {
		lo := offsets[s]
		hi := len(indices)
		if s+1 < len(offsets) {
			hi = offsets[s+1]
		}
		for p := lo; p < hi; p++ {
			tensor.AddTo(grads.Row(inverse[p]), dOut.Row(s))
		}
	}
	for i, idx := range uniq {
		shard, local := r.shardOf(idx)
		tensor.Axpy(-lr, grads.Row(i), r.shards[shard].Weights.Row(local))
	}
	r.Traffic.BackwardBytes += int64(len(indices)) * int64(r.dim) * 4 * int64(r.n-1) / int64(r.n)
}

// NumRows returns the logical row count.
func (r *RowSharded) NumRows() int { return r.rows }

// Dim returns the embedding dimension.
func (r *RowSharded) Dim() int { return r.dim }

// FootprintBytes returns the summed shard storage (equal to the dense
// table; sharding spreads it, per-device share is FootprintBytes()/n).
func (r *RowSharded) FootprintBytes() int64 { return int64(r.rows) * int64(r.dim) * 4 }

// PerDeviceBytes returns the HBM cost per device.
func (r *RowSharded) PerDeviceBytes() int64 { return r.FootprintBytes() / int64(r.n) }

// SetRow overwrites a logical row (test helper for equivalence checks).
func (r *RowSharded) SetRow(idx int, vals []float32) {
	shard, local := r.shardOf(idx)
	copy(r.shards[shard].Weights.Row(local), vals)
}

// RowAt returns a copy of a logical row.
func (r *RowSharded) RowAt(idx int) []float32 {
	shard, local := r.shardOf(idx)
	out := make([]float32, r.dim)
	copy(out, r.shards[shard].Weights.Row(local))
	return out
}

// ColSharded is a TorchRec-style column-wise sharded embedding table: every
// device holds all rows but only dim/n of the columns. Each pooled lookup
// must gather the other devices' column slices (all-gather), and the
// backward pass scatters gradient slices back.
type ColSharded struct {
	shards    []*embedding.Bag // each rows × colWidth(d)
	colStart  []int
	rows, dim int
	n         int

	Traffic Traffic
}

var _ dlrm.Table = (*ColSharded)(nil)

// NewColSharded splits dim columns across n devices.
func NewColSharded(rows, dim, n int, rng *tensor.RNG) (*ColSharded, error) {
	if n <= 0 || dim < n {
		return nil, fmt.Errorf("baselines: cannot shard %d columns across %d devices", dim, n)
	}
	c := &ColSharded{rows: rows, dim: dim, n: n}
	per := (dim + n - 1) / n
	for lo := 0; lo < dim; lo += per {
		hi := lo + per
		if hi > dim {
			hi = dim
		}
		c.colStart = append(c.colStart, lo)
		c.shards = append(c.shards, embedding.NewBag(rows, hi-lo, rng))
	}
	return c, nil
}

// Lookup pools each shard's columns and concatenates, charging the
// all-gather traffic: each device receives the (n−1)/n of every pooled
// vector it does not own.
func (c *ColSharded) Lookup(indices, offsets []int) *tensor.Matrix {
	out := tensor.New(len(offsets), c.dim)
	for sh, bag := range c.shards {
		part := bag.Lookup(indices, offsets)
		start := c.colStart[sh]
		for s := 0; s < part.Rows; s++ {
			copy(out.Row(s)[start:start+part.Cols], part.Row(s))
		}
	}
	c.Traffic.ForwardBytes += int64(len(offsets)) * int64(c.dim) * 4 * int64(c.n-1) / int64(c.n)
	return out
}

// Update splits the pooled gradient by columns and updates each shard,
// charging the symmetric scatter traffic.
func (c *ColSharded) Update(indices, offsets []int, dOut *tensor.Matrix, lr float32) {
	for sh, bag := range c.shards {
		start := c.colStart[sh]
		width := bag.Dim()
		part := tensor.New(dOut.Rows, width)
		for s := 0; s < dOut.Rows; s++ {
			copy(part.Row(s), dOut.Row(s)[start:start+width])
		}
		bag.Update(indices, offsets, part, lr)
	}
	c.Traffic.BackwardBytes += int64(dOut.Rows) * int64(c.dim) * 4 * int64(c.n-1) / int64(c.n)
}

// NumRows returns the row count.
func (c *ColSharded) NumRows() int { return c.rows }

// Dim returns the full embedding dimension.
func (c *ColSharded) Dim() int { return c.dim }

// FootprintBytes returns total storage across shards.
func (c *ColSharded) FootprintBytes() int64 { return int64(c.rows) * int64(c.dim) * 4 }

// PerDeviceBytes returns the HBM cost per device.
func (c *ColSharded) PerDeviceBytes() int64 { return c.FootprintBytes() / int64(c.n) }

// SetRow overwrites a logical row across shards (test helper).
func (c *ColSharded) SetRow(idx int, vals []float32) {
	for sh, bag := range c.shards {
		start := c.colStart[sh]
		copy(bag.Weights.Row(idx), vals[start:start+bag.Dim()])
	}
}

// RowAt returns a copy of a logical row assembled from the shards.
func (c *ColSharded) RowAt(idx int) []float32 {
	out := make([]float32, c.dim)
	for sh, bag := range c.shards {
		copy(out[c.colStart[sh]:], bag.Weights.Row(idx))
	}
	return out
}
