// Package baselines implements the competing systems of the paper's
// evaluation: FAE's hot-embedding scheduling, HugeCTR-style row-sharded
// (model-parallel) tables and TorchRec-style column-sharded tables. Each
// baseline performs the real embedding math (bit-equivalent to a single
// uncompressed table) and additionally counts the bytes its placement
// strategy would move between devices; the experiment harness converts the
// byte counts into simulated time under the hw model.
package baselines

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/dlrm"
)

// FAE schedules work the way the FAE system does: embedding rows are split
// into a hot set (cached in GPU HBM) and a cold remainder (host memory).
// FAE's preprocessing segregates samples into hot minibatches (every index
// hot — trained entirely on the GPU) and cold minibatches (trained through
// the host path). The paper's profiling found ~25% cold batches; the
// per-sample classification here reproduces that split on the synthetic
// datasets, and the harness charges the host path only for the cold share.
type FAE struct {
	Model  *dlrm.Model
	hotSet []map[int]struct{} // per table

	HotSamples  int64
	ColdSamples int64
	// ColdBytes counts embedding rows the cold share moves host→device and
	// gradients moved back (the traffic EL-Rec avoids).
	ColdBytes int64
}

// NewFAE wraps a model (with uncompressed tables) and computes per-table hot
// sets: the smallest prefix of rows in descending access frequency whose
// cumulative access share reaches hotFrac.
func NewFAE(model *dlrm.Model, counts [][]int64, hotFrac float64) (*FAE, error) {
	if len(counts) != len(model.Tables) {
		return nil, fmt.Errorf("baselines: %d count vectors for %d tables", len(counts), len(model.Tables))
	}
	if hotFrac <= 0 || hotFrac > 1 {
		return nil, fmt.Errorf("baselines: hot fraction %v outside (0,1]", hotFrac)
	}
	f := &FAE{Model: model, hotSet: make([]map[int]struct{}, len(counts))}
	for t, cnt := range counts {
		if len(cnt) != model.Tables[t].NumRows() {
			return nil, fmt.Errorf("baselines: table %d counts len %d != rows %d", t, len(cnt), model.Tables[t].NumRows())
		}
		order := make([]int, len(cnt))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return cnt[order[a]] > cnt[order[b]] })
		var total, run float64
		for _, c := range cnt {
			total += float64(c)
		}
		set := make(map[int]struct{})
		for _, idx := range order {
			if total > 0 && run/total >= hotFrac {
				break
			}
			set[idx] = struct{}{}
			run += float64(cnt[idx])
		}
		f.hotSet[t] = set
	}
	return f, nil
}

// IsHot reports whether every sparse index of the batch is in the hot sets.
func (f *FAE) IsHot(b *data.Batch) bool {
	for t, col := range b.Sparse {
		set := f.hotSet[t]
		for _, idx := range col {
			if _, ok := set[idx]; !ok {
				return false
			}
		}
	}
	return true
}

// SampleIsHot reports whether sample s of the batch touches only hot rows.
func (f *FAE) SampleIsHot(b *data.Batch, s int) bool {
	for t := range b.Sparse {
		if _, ok := f.hotSet[t][b.Sparse[t][s]]; !ok {
			return false
		}
	}
	return true
}

// TrainBatch trains one batch and classifies its samples: FAE's
// preprocessing would pack the hot samples into pure-GPU minibatches and
// the rest into host-path minibatches, so the returned coldFrac is the
// fraction of training that runs on the host. The cold share accounts
// host↔device transfer (and parameter-server row accesses) for the unique
// embedding rows its samples touch, each direction once.
func (f *FAE) TrainBatch(b *data.Batch) (loss float32, coldFrac float64) {
	cold := 0
	coldOf := make([]bool, b.Size())
	for s := 0; s < b.Size(); s++ {
		if f.SampleIsHot(b, s) {
			f.HotSamples++
		} else {
			f.ColdSamples++
			coldOf[s] = true
			cold++
		}
	}
	dim := int64(f.Model.Cfg.EmbDim)
	for t := range b.Sparse {
		seen := make(map[int]struct{})
		for s, idx := range b.Sparse[t] {
			if coldOf[s] {
				seen[idx] = struct{}{}
			}
		}
		f.ColdBytes += 2 * int64(len(seen)) * dim * 4
	}
	return f.Model.TimedTrainStep(b), float64(cold) / float64(b.Size())
}

// HotSetRows returns the total hot rows cached on the device (HBM cost).
func (f *FAE) HotSetRows() int {
	n := 0
	for _, s := range f.hotSet {
		n += len(s)
	}
	return n
}
