package baselines

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/embedding"
	"repro/internal/tensor"
)

func faeSpec() data.Spec {
	return data.Spec{
		Name: "fae-test", NumDense: 2, TableRows: []int{500, 200},
		ZipfS: 1.3, ZipfV: 2, GroupSize: 16, ActiveGroups: 3, Locality: 0.9,
		Samples: 1 << 20, Seed: 31,
	}
}

func faeModel(t *testing.T, spec data.Spec) *dlrm.Model {
	t.Helper()
	tables, _, err := dlrm.BuildTables(spec.TableRows, dlrm.TableSpec{Dim: 8, Rank: 4, TTThreshold: -1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dlrm.NewModel(dlrm.Config{NumDense: 2, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 0.5, Seed: 3}, tables)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFAEValidation(t *testing.T) {
	spec := faeSpec()
	m := faeModel(t, spec)
	if _, err := NewFAE(m, [][]int64{{1}}, 0.75); err == nil {
		t.Fatal("wrong count vector count accepted")
	}
	counts := [][]int64{make([]int64, 500), make([]int64, 200)}
	if _, err := NewFAE(m, counts, 0); err == nil {
		t.Fatal("zero hot fraction accepted")
	}
	if _, err := NewFAE(m, [][]int64{make([]int64, 499), make([]int64, 200)}, 0.5); err == nil {
		t.Fatal("count length mismatch accepted")
	}
}

func TestFAEClassification(t *testing.T) {
	spec := faeSpec()
	d, _ := data.New(spec)
	m := faeModel(t, spec)
	counts := make([][]int64, len(spec.TableRows))
	for t2 := range counts {
		counts[t2] = d.AccessCounts(t2, 30, 64)
	}
	fae, err := NewFAE(m, counts, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	var coldSum float64
	for it := 30; it < 70; it++ {
		_, coldFrac := fae.TrainBatch(d.Batch(it, 64))
		coldSum += coldFrac
	}
	if fae.HotSamples+fae.ColdSamples != 40*64 {
		t.Fatal("sample counters do not cover the batches")
	}
	if fae.ColdSamples == 0 {
		t.Fatal("no cold samples: classification has no power")
	}
	if fae.HotSamples == 0 {
		t.Fatal("no hot samples: hot set useless")
	}
	if fae.ColdBytes == 0 {
		t.Fatal("cold samples must account transfer bytes")
	}
	if fae.HotSetRows() == 0 || fae.HotSetRows() >= 700 {
		t.Fatalf("hot set size %d implausible", fae.HotSetRows())
	}
	t.Logf("hot=%d cold=%d samples (%.0f%% cold), hot rows=%d", fae.HotSamples, fae.ColdSamples,
		100*float64(fae.ColdSamples)/float64(fae.HotSamples+fae.ColdSamples), fae.HotSetRows())
}

func TestFAEHotBatchDetection(t *testing.T) {
	spec := faeSpec()
	d, _ := data.New(spec)
	m := faeModel(t, spec)
	// All rows hot: every batch must classify hot.
	counts := make([][]int64, len(spec.TableRows))
	for t2, r := range spec.TableRows {
		counts[t2] = make([]int64, r)
		for i := range counts[t2] {
			counts[t2][i] = 1
		}
	}
	fae, _ := NewFAE(m, counts, 1.0)
	b := d.Batch(0, 32)
	if !fae.IsHot(b) {
		t.Fatal("batch cold although all rows are hot")
	}
	if !fae.SampleIsHot(b, 0) {
		t.Fatal("sample cold although all rows are hot")
	}
}

// referenceBag builds a Bag with prescribed weights.
func referenceBag(rows, dim int, seed uint64) *embedding.Bag {
	return embedding.NewBag(rows, dim, tensor.NewRNG(seed))
}

func copyWeightsToSharded(ref *embedding.Bag, set func(idx int, vals []float32)) {
	for i := 0; i < ref.NumRows(); i++ {
		set(i, ref.Weights.Row(i))
	}
}

func randomBatch(r *tensor.RNG, rows, batch int) (indices, offsets []int) {
	offsets = make([]int, batch)
	for s := 0; s < batch; s++ {
		offsets[s] = s
		indices = append(indices, r.Intn(rows))
	}
	return indices, offsets
}

func TestRowShardedMatchesReference(t *testing.T) {
	const rows, dim, n = 103, 8, 4
	ref := referenceBag(rows, dim, 7)
	sh, err := NewRowSharded(rows, dim, n, tensor.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	copyWeightsToSharded(ref, sh.SetRow)

	r := tensor.NewRNG(9)
	for step := 0; step < 5; step++ {
		indices, offsets := randomBatch(r, rows, 16)
		a := ref.Lookup(indices, offsets)
		b := sh.Lookup(indices, offsets)
		if d := a.MaxAbsDiff(b); d != 0 {
			t.Fatalf("row-sharded lookup differs by %v", d)
		}
		dOut := tensor.New(16, dim)
		r.FillUniform(dOut.Data, 1)
		ref.Update(indices, offsets, dOut, 0.1)
		sh.Update(indices, offsets, dOut, 0.1)
	}
	for i := 0; i < rows; i++ {
		got := sh.RowAt(i)
		for j := 0; j < dim; j++ {
			if math.Abs(float64(got[j]-ref.Weights.At(i, j))) > 1e-6 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, got[j], ref.Weights.At(i, j))
			}
		}
	}
	if sh.Traffic.ForwardBytes == 0 || sh.Traffic.BackwardBytes == 0 {
		t.Fatal("row-sharded traffic not accounted")
	}
}

func TestColShardedMatchesReference(t *testing.T) {
	const rows, dim, n = 50, 12, 3
	ref := referenceBag(rows, dim, 17)
	sh, err := NewColSharded(rows, dim, n, tensor.NewRNG(18))
	if err != nil {
		t.Fatal(err)
	}
	copyWeightsToSharded(ref, sh.SetRow)

	r := tensor.NewRNG(19)
	for step := 0; step < 5; step++ {
		indices, offsets := randomBatch(r, rows, 8)
		a := ref.Lookup(indices, offsets)
		b := sh.Lookup(indices, offsets)
		if d := a.MaxAbsDiff(b); d != 0 {
			t.Fatalf("col-sharded lookup differs by %v", d)
		}
		dOut := tensor.New(8, dim)
		r.FillUniform(dOut.Data, 1)
		ref.Update(indices, offsets, dOut, 0.1)
		sh.Update(indices, offsets, dOut, 0.1)
	}
	for i := 0; i < rows; i++ {
		got := sh.RowAt(i)
		for j := 0; j < dim; j++ {
			if math.Abs(float64(got[j]-ref.Weights.At(i, j))) > 1e-6 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, got[j], ref.Weights.At(i, j))
			}
		}
	}
	if sh.Traffic.ForwardBytes == 0 || sh.Traffic.BackwardBytes == 0 {
		t.Fatal("col-sharded traffic not accounted")
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewRowSharded(2, 8, 4, tensor.NewRNG(1)); err == nil {
		t.Fatal("fewer rows than shards accepted")
	}
	if _, err := NewColSharded(10, 2, 4, tensor.NewRNG(1)); err == nil {
		t.Fatal("fewer cols than shards accepted")
	}
}

func TestTrafficGrowsWithDevices(t *testing.T) {
	const rows, dim = 1000, 16
	r := tensor.NewRNG(20)
	indices, offsets := randomBatch(r, rows, 64)
	fwdAt := func(n int) int64 {
		sh, err := NewRowSharded(rows, dim, n, tensor.NewRNG(2))
		if err != nil {
			t.Fatal(err)
		}
		sh.Lookup(indices, offsets)
		return sh.Traffic.ForwardBytes
	}
	if !(fwdAt(2) < fwdAt(4)) {
		t.Fatal("row-sharded all-to-all traffic should grow with device count")
	}
	colAt := func(n int) int64 {
		sh, err := NewColSharded(rows, dim, n, tensor.NewRNG(2))
		if err != nil {
			t.Fatal(err)
		}
		sh.Lookup(indices, offsets)
		return sh.Traffic.ForwardBytes
	}
	if !(colAt(2) < colAt(4)) {
		t.Fatal("col-sharded all-gather traffic should grow with device count")
	}
}

func TestPerDeviceBytes(t *testing.T) {
	sh, _ := NewRowSharded(1000, 16, 4, tensor.NewRNG(3))
	if sh.PerDeviceBytes() != sh.FootprintBytes()/4 {
		t.Fatal("row-sharded per-device bytes wrong")
	}
	ch, _ := NewColSharded(1000, 16, 4, tensor.NewRNG(3))
	if ch.PerDeviceBytes() != ch.FootprintBytes()/4 {
		t.Fatal("col-sharded per-device bytes wrong")
	}
}
