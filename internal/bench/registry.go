package bench

import (
	"fmt"
	"sort"

	"repro/internal/hw"
)

// Runner regenerates one table or figure at the given scale.
type Runner func(Scale) *Result

// registry maps experiment ids to their runners.
var registry = map[string]Runner{
	"table2":       Table2,
	"table3":       Table3,
	"table4":       Table4,
	"fig4a":        Fig4a,
	"fig4b":        Fig4b,
	"fig11":        func(sc Scale) *Result { return Fig11(sc, hw.TeslaV100()) },
	"fig11-t4":     func(sc Scale) *Result { return Fig11(sc, hw.TeslaT4()) },
	"fig12":        Fig12,
	"fig13":        Fig13,
	"fig14":        Fig14,
	"fig15":        Fig15,
	"fig16":        Fig16,
	"fig17":        Fig17,
	"fig18":        Fig18,
	"ttcore":       TTCore,
	"servecore":    ServeCore,
	"pipecache":    PipeCache,
	"ext-ttdepth":  ExtTTDepth,
	"ext-optim":    ExtOptim,
	"ext-hotratio": ExtHotRatio,
}

// Run executes the experiment with the given id.
func Run(id string, sc Scale) (*Result, error) {
	fn, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, List())
	}
	return fn(sc), nil
}

// List returns all experiment ids in sorted order.
func List() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
