// Package bench is the experiment harness: one Run function per table and
// figure of the paper's evaluation (§VI), each regenerating the same rows or
// series the paper reports. End-to-end comparisons (Figures 11/12/13/16)
// combine measured CPU kernel time with the hw package's device/interconnect
// cost model; microbenchmarks (Figures 14/17/18) are pure measured compute.
// cmd/elrec-bench and the root bench_test.go both drive this package.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Result is one experiment's regenerated table: a header plus data rows,
// with free-form notes recording parameters and caveats.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one formatted row.
func (r *Result) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a formatted note line.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the result to a string.
func (r *Result) String() string {
	var b strings.Builder
	r.Fprint(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f2 formats a float with 2 decimals; fx formats a speedup like "3.01x".
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func fx(v float64) string { return fmt.Sprintf("%.2fx", v) }
