package bench

import (
	"fmt"

	"repro/internal/data"
)

// Fig4a regenerates Figure 4(a): the cumulative access percentage covered by
// the most popular fraction of embedding rows, per dataset — the power-law
// skew the Eff-TT optimizations exploit.
func Fig4a(sc Scale) *Result {
	points := []float64{0.01, 0.05, 0.10, 0.25, 0.50, 1.00}
	r := &Result{
		ID:     "fig4a",
		Title:  "cumulative access percentage vs top fraction of rows",
		Header: []string{"dataset", "top1%", "top5%", "top10%", "top25%", "top50%", "top100%"},
	}
	for _, spec := range datasets(sc) {
		d, err := data.New(spec)
		if err != nil {
			panic(err)
		}
		// Aggregate the curve over the largest table (where skew matters).
		largest := 0
		for t, rows := range spec.TableRows {
			if rows > spec.TableRows[largest] {
				largest = t
			}
		}
		counts := d.AccessCounts(largest, 30, sc.Batch)
		curve := data.CumulativeAccessCurve(counts, points)
		row := []string{spec.Name}
		for _, v := range curve {
			row = append(row, f2(v*100))
		}
		r.AddRow(row...)
	}
	r.AddNote("largest table per dataset, 30 batches of %d", sc.Batch)
	return r
}

// Fig4b regenerates Figure 4(b): batch size vs the average number of unique
// indices per batch — the gap that in-advance gradient aggregation exploits.
func Fig4b(sc Scale) *Result {
	batchSizes := []int{512, 1024, 2048, 4096, 8192}
	r := &Result{
		ID:     "fig4b",
		Title:  "average unique indices per batch vs batch size",
		Header: []string{"dataset", "512", "1024", "2048", "4096", "8192"},
	}
	for _, spec := range datasets(sc) {
		d, err := data.New(spec)
		if err != nil {
			panic(err)
		}
		row := []string{spec.Name}
		for _, bs := range batchSizes {
			row = append(row, fmt.Sprintf("%.0f", d.AvgUniqueAllTables(5, bs)))
		}
		r.AddRow(row...)
	}
	r.AddNote("averaged over all tables, 5 batches per point; unique count ≪ batch size throughout")
	return r
}
