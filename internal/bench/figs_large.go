package bench

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/dlrm"
	"repro/internal/hw"
	"repro/internal/tensor"
	"repro/internal/tt"
)

// rngFor returns a deterministic generator for a bench component.
func rngFor(seed uint64) *tensor.RNG { return tensor.NewRNG(seed) }

// Fig13 regenerates Figure 13: training throughput of one very large
// embedding table (the paper's 40M×128, ~19 GB — exceeding one GPU's 16 GB)
// under EL-Rec (TT, data parallel), HugeCTR (row sharding, model parallel)
// and TorchRec (column sharding, model parallel) across device counts.
// Placement feasibility (OOM) is judged at the paper's full-scale footprint;
// compute is measured at the harness scale.
func Fig13(sc Scale) *Result {
	const fullRows, fullDim = 40_000_000, 128
	fullBytes := int64(fullRows) * fullDim * 4
	rows := scaledRows(fullRows, sc, 50_000)
	dev := hw.TeslaV100()
	devCounts := []int{1, 2, 4}

	r := &Result{
		ID:     "fig13",
		Title:  fmt.Sprintf("single large table (%d rows scaled from 40M x 128) throughput (samples/s)", rows),
		Header: []string{"devices", "EL-Rec (TT)", "HugeCTR (row-shard)", "TorchRec (col-shard)"},
	}

	w := newTableWorkload(rows, sc.Steps+sc.WarmSteps, sc.Batch, 1313)
	dOut := gradFor(sc.Batch, sc.EmbDim, 7)
	samples := float64(sc.Steps * sc.Batch)

	// Measures one table's full training steps, returning compute wall time
	// over the measured steps.
	measure := func(tbl dlrm.Table, batches [][]int) time.Duration {
		for i := 0; i < sc.WarmSteps; i++ {
			tbl.Update(batches[i], w.offsets, dOut, 1e-4)
		}
		return timeIt(func() {
			for i := sc.WarmSteps; i < sc.WarmSteps+sc.Steps; i++ {
				out := tbl.Lookup(batches[i], w.offsets)
				_ = out
				tbl.Update(batches[i], w.offsets, dOut, 1e-4)
			}
		})
	}

	for _, n := range devCounts {
		row := []string{fmt.Sprintf("%d", n)}

		// EL-Rec: replicated TT table, batch split n ways, all-reduce of the
		// (tiny) TT core gradients each step.
		ttTbl := w.newTT(sc.EmbDim, sc.Rank, tt.EffOptions())
		wall := measure(ttTbl, w.reordered)
		compute := time.Duration(float64(wall) / float64(n) / dev.ComputeScale)
		perStep := hw.AllReduceTime(nvlink, n, ttTbl.FootprintBytes())
		if n > 1 {
			perStep += hw.CollectiveOverhead(1)
		}
		comm := perStep * time.Duration(sc.Steps)
		row = append(row, fmt.Sprintf("%.0f", samples/(compute+comm).Seconds()))

		// HugeCTR: row-sharded full table. The full-scale footprint must fit
		// n devices.
		if !dev.Fits(fullBytes/int64(n), 1<<30) {
			row = append(row, "OOM")
		} else {
			sh, err := baselines.NewRowSharded(rows, sc.EmbDim, n, rngFor(2))
			if err != nil {
				panic(err)
			}
			wall := measure(sh, w.raw)
			perPeer := (sh.Traffic.ForwardBytes + sh.Traffic.BackwardBytes) / int64(maxInt(1, n-1)) / int64(sc.Steps+sc.WarmSteps)
			compute := time.Duration(float64(wall) / float64(n) / dev.ComputeScale)
			perStep := hw.AllToAllTime(nvlink, n, perPeer)*2 + hw.CollectiveOverhead(2)
			comm := perStep * time.Duration(sc.Steps)
			row = append(row, fmt.Sprintf("%.0f", samples/(compute+comm).Seconds()))
		}

		// TorchRec: column-sharded full table, same feasibility rule.
		if !dev.Fits(fullBytes/int64(n), 1<<30) {
			row = append(row, "OOM")
		} else {
			sh, err := baselines.NewColSharded(rows, sc.EmbDim, n, rngFor(3))
			if err != nil {
				panic(err)
			}
			wall := measure(sh, w.raw)
			perPeer := (sh.Traffic.ForwardBytes + sh.Traffic.BackwardBytes) / int64(maxInt(1, n-1)) / int64(sc.Steps+sc.WarmSteps)
			compute := time.Duration(float64(wall) / float64(n) / dev.ComputeScale)
			perStep := hw.AllToAllTime(nvlink, n, perPeer)*2 + hw.CollectiveOverhead(2)
			comm := perStep * time.Duration(sc.Steps)
			row = append(row, fmt.Sprintf("%.0f", samples/(compute+comm).Seconds()))
		}
		r.AddRow(row...)
	}
	r.AddNote("19 GB full-scale table exceeds one 16 GB GPU: sharded systems need >=2 devices, EL-Rec fits on one")
	r.AddNote("paper: EL-Rec 1.07x over HugeCTR, 1.35x over TorchRec at 4 GPUs")
	return r
}
