package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/hw"
	"repro/internal/ps"
	"repro/internal/tt"
)

// faeCoverage is the per-table access coverage of FAE's GPU-resident hot
// set. FAE sizes its cache to HBM, covering the overwhelming majority of
// accesses per table; 0.998 per table over 26 tables yields roughly the
// paper's ~25% cold share on the synthetic datasets.
const faeCoverage = 0.998

// faeProfileBatches is how many batches FAE's (and Table IV's) offline
// profiling pass observes when sizing the hot sets.
const faeProfileBatches = 30

// statsDelta subtracts two pipeline stats snapshots; the hit rate is
// recomputed over the delta's own lookups.
func statsDelta(after, before ps.Stats) ps.Stats {
	d := ps.Stats{
		Steps:               after.Steps - before.Steps,
		BytesPrefetched:     after.BytesPrefetched - before.BytesPrefetched,
		BytesPushed:         after.BytesPushed - before.BytesPushed,
		CacheSyncs:          after.CacheSyncs - before.CacheSyncs,
		CacheHits:           after.CacheHits - before.CacheHits,
		CacheMisses:         after.CacheMisses - before.CacheMisses,
		CacheEvictions:      after.CacheEvictions - before.CacheEvictions,
		LookaheadWindows:    after.LookaheadWindows - before.LookaheadWindows,
		LookaheadPinnedRows: after.LookaheadPinnedRows - before.LookaheadPinnedRows,
		PrefetchWait:        after.PrefetchWait - before.PrefetchWait,
		GatherTime:          after.GatherTime - before.GatherTime,
		ApplyTime:           after.ApplyTime - before.ApplyTime,
		TrainTime:           after.TrainTime - before.TrainTime,
		AdapterTime:         after.AdapterTime - before.AdapterTime,
		InjectedFaults:      after.InjectedFaults - before.InjectedFaults,
		Retries:             after.Retries - before.Retries,
		BackoffTime:         after.BackoffTime - before.BackoffTime,
		StallTime:           after.StallTime - before.StallTime,
		Checkpoints:         after.Checkpoints - before.Checkpoints,
	}
	if lookups := d.CacheHits + d.CacheMisses; lookups > 0 {
		d.CacheHitRate = float64(d.CacheHits) / float64(lookups)
	}
	return d
}

// pipelineTime converts one pipeline run's stats into modeled time on the
// given device: worker compute scaled to the device; server work at host
// speed plus the per-row parameter-server overhead (hw.PSRowLatency); PCIe
// transfer for the queue traffic. Overlapped projects the pipelined
// schedule, where the server side hides behind worker compute and only the
// longer of the two bounds the step (Figure 9); otherwise the two sides
// serialize (sequential / DLRM execution). Stats always come from a
// sequential (depth 1) measurement run so single-core goroutine contention
// cannot distort the wall times — queue-depth >1 execution is validated
// separately for correctness by the ps package's equivalence tests.
func pipelineTime(st ps.Stats, dev hw.Device, dim int, overlapped bool) time.Duration {
	deviceT := time.Duration(float64(st.TrainTime-st.AdapterTime) / dev.ComputeScale)
	psRows := (st.BytesPrefetched + st.BytesPushed) / int64(dim*4)
	hostT := st.GatherTime + st.ApplyTime + st.AdapterTime + hw.PSAccessTime(psRows)
	commT := pcie.TransferTime(st.BytesPrefetched) + pcie.TransferTime(st.BytesPushed)
	if overlapped {
		if serverSide := hostT + commT; serverSide > deviceT {
			return serverSide
		}
		return deviceT
	}
	return deviceT + hostT + commT
}

// Fig11 regenerates Figure 11: end-to-end single-GPU training speedup of
// EL-Rec over DLRM (CPU+GPU), FAE and TT-Rec on the three datasets. rank
// follows the paper: full rank on the V100, half on the T4.
func Fig11(sc Scale, dev hw.Device) *Result {
	rank := sc.Rank
	if dev.Name == hw.TeslaT4().Name {
		rank = sc.Rank / 2
		if rank < 2 {
			rank = 2
		}
	}
	r := &Result{
		ID:    "fig11",
		Title: fmt.Sprintf("end-to-end speedup over DLRM, single %s", dev.Name),
		Header: []string{"dataset", "DLRM(CPU+GPU)", "FAE", "TT-Rec", "EL-Rec",
			"FAE spd", "TT-Rec spd", "EL-Rec spd"},
	}
	for _, spec := range datasets(sc) {
		d, err := data.New(spec)
		if err != nil {
			panic(err)
		}
		samples := sc.Steps * sc.Batch

		tDLRM := timeDLRMHost(spec, d, sc, dev)
		tFAE := timeFAE(spec, d, sc, dev)
		tTTRec := timeOnDevice(spec, d, sc, dev, rank, tt.NaiveOptions(), false)
		tELRec := timeOnDevice(spec, d, sc, dev, rank, tt.EffOptions(), true)

		thr := func(t time.Duration) string {
			return fmt.Sprintf("%.0f/s", float64(samples)/t.Seconds())
		}
		r.AddRow(spec.Name,
			thr(tDLRM), thr(tFAE), thr(tTTRec), thr(tELRec),
			fx(float64(tDLRM)/float64(tFAE)),
			fx(float64(tDLRM)/float64(tTTRec)),
			fx(float64(tDLRM)/float64(tELRec)))
	}
	r.AddNote("batch %d, dim %d, rank %d, %d measured steps; paper: EL-Rec 3x over DLRM, 1.5x over FAE, 1.4x over TT-Rec (V100)",
		sc.Batch, sc.EmbDim, rank, sc.Steps)
	return r
}

// timeDLRMHost models the DLRM (CPU+GPU) baseline: every embedding table in
// host memory behind the parameter server, no pre-fetch pipeline.
func timeDLRMHost(spec data.Spec, d *data.Dataset, sc Scale, dev hw.Device) time.Duration {
	cfg := core.DefaultConfig(spec)
	cfg.Model = modelConfig(spec, sc)
	cfg.TTThreshold = -1
	cfg.Reorder = false
	cfg.QueueDepth = 1
	cfg.Device = hw.Device{Name: dev.Name, HBMBytes: 0, ComputeScale: dev.ComputeScale}
	cfg.HBMReserve = 0
	cfg.Metrics = sc.Metrics
	sys, err := core.BuildWithDataset(cfg, d)
	if err != nil {
		panic(err)
	}
	if sys.Pipeline == nil {
		panic("bench: DLRM baseline must spill to host")
	}
	sys.Train(0, sc.WarmSteps, sc.Batch)
	before := sys.Pipeline.Stats()
	sys.Train(sc.WarmSteps, sc.Steps, sc.Batch)
	return pipelineTime(statsDelta(sys.Pipeline.Stats(), before), dev, sc.EmbDim, false)
}

// timeFAE models FAE: hot share on the device, cold share on the host plus
// its transfers.
func timeFAE(spec data.Spec, d *data.Dataset, sc Scale, dev hw.Device) time.Duration {
	tables, _, err := dlrm.BuildTables(spec.TableRows, dlrm.TableSpec{Dim: sc.EmbDim, Rank: sc.Rank, TTThreshold: -1, Seed: 17})
	if err != nil {
		panic(err)
	}
	model, err := dlrm.NewModel(modelConfig(spec, sc), tables)
	if err != nil {
		panic(err)
	}
	counts := make([][]int64, spec.NumTables())
	for t := range counts {
		counts[t] = d.AccessCounts(t, faeProfileBatches, sc.Batch)
	}
	fae, err := baselines.NewFAE(model, counts, faeCoverage)
	if err != nil {
		panic(err)
	}
	for it := 0; it < sc.WarmSteps; it++ {
		fae.TrainBatch(d.Batch(it, sc.Batch))
	}
	model.ResetTiming()
	hot0, cold0, bytes0 := fae.HotSamples, fae.ColdSamples, fae.ColdBytes
	for it := sc.WarmSteps; it < sc.WarmSteps+sc.Steps; it++ {
		fae.TrainBatch(d.Batch(it, sc.Batch))
	}
	wall := model.Timing().Total()
	hot, cold := fae.HotSamples-hot0, fae.ColdSamples-cold0
	hotFrac := float64(hot) / float64(hot+cold)
	deviceT := time.Duration(float64(wall) * hotFrac / dev.ComputeScale)
	coldBytes := fae.ColdBytes - bytes0
	hostT := time.Duration(float64(wall)*(1-hotFrac)) + hw.PSAccessTime(coldBytes/int64(sc.EmbDim*4))
	commT := pcie.TransferTime(coldBytes)
	return deviceT + hostT + commT
}

// timeOnDevice models a fully device-resident system (TT-compressed large
// tables): all measured compute scaled to the device, no host traffic.
func timeOnDevice(spec data.Spec, d *data.Dataset, sc Scale, dev hw.Device, rank int, opts tt.Options, reorderOn bool) time.Duration {
	cfg := core.DefaultConfig(spec)
	cfg.Model = modelConfig(spec, sc)
	cfg.Rank = rank
	cfg.TTThreshold = sc.TTThresholdRows
	cfg.Opts = opts
	cfg.Reorder = reorderOn
	cfg.ProfileBatches, cfg.ProfileBatchSize = 8, 512
	cfg.Device = dev
	cfg.Metrics = sc.Metrics
	sys, err := core.BuildWithDataset(cfg, d)
	if err != nil {
		panic(err)
	}
	if sys.Pipeline != nil {
		panic("bench: compressed system unexpectedly spilled to host")
	}
	sys.Train(0, sc.WarmSteps, sc.Batch)
	sys.Model().ResetTiming()
	sys.Train(sc.WarmSteps, sc.Steps, sc.Batch)
	return time.Duration(float64(sys.Model().Timing().Total()) / dev.ComputeScale)
}

// Fig12 regenerates Figure 12: training throughput of EL-Rec vs DLRM with 1
// and 4 GPUs. EL-Rec replicates TT tables (data parallel, tiny all-reduce);
// DLRM shards its uncompressed tables (model parallel, all-to-all).
func Fig12(sc Scale) *Result {
	spec := data.KaggleSpec(sc.DatasetScale)
	d, err := data.New(spec)
	if err != nil {
		panic(err)
	}
	dev := hw.TeslaV100()
	r := &Result{
		ID:     "fig12",
		Title:  "multi-GPU training throughput (samples/s)",
		Header: []string{"system", "1 GPU", "4 GPU", "scaling"},
	}

	elrec1, elrecComm1 := timeDataParallelTT(spec, d, sc, 1)
	elrec4, elrecComm4 := timeDataParallelTT(spec, d, sc, 4)
	dlrm1, dlrmComm1 := timeModelParallelDense(spec, d, sc, 1)
	dlrm4, dlrmComm4 := timeModelParallelDense(spec, d, sc, 4)

	samples := float64(sc.Steps * sc.Batch)
	thr := func(compute time.Duration, comm time.Duration, n int) float64 {
		total := time.Duration(float64(compute)/float64(n)/dev.ComputeScale) + comm
		return samples / total.Seconds()
	}
	e1, e4 := thr(elrec1, elrecComm1, 1), thr(elrec4, elrecComm4, 4)
	d1, d4 := thr(dlrm1, dlrmComm1, 1), thr(dlrm4, dlrmComm4, 4)
	r.AddRow("DLRM", fmt.Sprintf("%.0f", d1), fmt.Sprintf("%.0f", d4), fx(d4/d1))
	r.AddRow("EL-Rec", fmt.Sprintf("%.0f", e1), fmt.Sprintf("%.0f", e4), fx(e4/e1))
	r.AddRow("EL-Rec/DLRM", fx(e1/d1), fx(e4/d4), "")
	r.AddNote("kaggle-like dataset, batch %d; paper: DLRM slightly ahead at 1 GPU, EL-Rec up to 1.4x ahead at 4 GPUs", sc.Batch)
	return r
}

// timeDataParallelTT measures EL-Rec's replicated-table execution: total
// worker compute (to be divided by the worker count) plus the gradient
// all-reduce of MLP and TT-core parameters.
func timeDataParallelTT(spec data.Spec, d *data.Dataset, sc Scale, n int) (compute, comm time.Duration) {
	tables, _, err := dlrm.BuildTables(spec.TableRows, dlrm.TableSpec{
		Dim: sc.EmbDim, Rank: sc.Rank, TTThreshold: sc.TTThresholdRows, Opts: tt.EffOptions(), Seed: 17})
	if err != nil {
		panic(err)
	}
	model, err := dlrm.NewModel(modelConfig(spec, sc), tables)
	if err != nil {
		panic(err)
	}
	sub := sc.Batch / n
	for it := 0; it < sc.WarmSteps*n; it++ {
		model.TimedTrainStep(d.Batch(it, sub))
	}
	model.ResetTiming()
	for it := 0; it < sc.Steps*n; it++ {
		model.TimedTrainStep(d.Batch(sc.WarmSteps*n+it, sub))
	}
	compute = model.Timing().Total()
	var ttBytes int64
	for _, t := range tables {
		if _, ok := t.(*tt.Table); ok {
			ttBytes += t.FootprintBytes()
		}
	}
	perStep := hw.AllReduceTime(nvlink, n, model.MLPBytes()+ttBytes)
	if n > 1 {
		perStep += hw.CollectiveOverhead(2) // one all-reduce for MLP grads, one for TT cores
	}
	comm = perStep * time.Duration(sc.Steps)
	return compute, comm
}

// timeModelParallelDense measures DLRM's multi-GPU execution: uncompressed
// tables row-sharded across devices (all-to-all embedding exchange) with
// data-parallel MLPs.
func timeModelParallelDense(spec data.Spec, d *data.Dataset, sc Scale, n int) (compute, comm time.Duration) {
	tables := make([]dlrm.Table, spec.NumTables())
	shards := make([]*baselines.RowSharded, 0, spec.NumTables())
	for i, rows := range spec.TableRows {
		if n > 1 && rows >= n {
			sh, err := baselines.NewRowSharded(rows, sc.EmbDim, n, rngFor(17+uint64(i)))
			if err != nil {
				panic(err)
			}
			tables[i] = sh
			shards = append(shards, sh)
		} else {
			tables[i] = dlrm.MustDenseTable(rows, sc.EmbDim, 17+uint64(i)*7919)
		}
	}
	model, err := dlrm.NewModel(modelConfig(spec, sc), tables)
	if err != nil {
		panic(err)
	}
	sub := sc.Batch / n
	for it := 0; it < sc.WarmSteps*n; it++ {
		model.TimedTrainStep(d.Batch(it, sub))
	}
	model.ResetTiming()
	var fwd0, bwd0 int64
	for _, sh := range shards {
		fwd0 += sh.Traffic.ForwardBytes
		bwd0 += sh.Traffic.BackwardBytes
	}
	for it := 0; it < sc.Steps*n; it++ {
		model.TimedTrainStep(d.Batch(sc.WarmSteps*n+it, sub))
	}
	compute = model.Timing().Total()
	var fwd, bwd int64
	for _, sh := range shards {
		fwd += sh.Traffic.ForwardBytes
		bwd += sh.Traffic.BackwardBytes
	}
	perPeer := (fwd - fwd0 + bwd - bwd0) / int64(maxInt(1, n-1)) / int64(maxInt(1, sc.Steps*n))
	perStep := hw.AllToAllTime(nvlink, n, perPeer)*2 + hw.AllReduceTime(nvlink, n, model.MLPBytes())
	if n > 1 {
		// The DLRM reference implementation exchanges embeddings with a
		// butterfly shuffle per sharded table, each way, plus one MLP
		// all-reduce — it does not fuse tables the way HugeCTR does.
		perStep += hw.CollectiveOverhead(2*len(shards) + 1)
	}
	comm = perStep * time.Duration(sc.Steps)
	return compute, comm
}

// Fig15 regenerates Figure 15: the training-loss convergence of DLRM,
// TT-Rec and EL-Rec on the terabyte-like dataset.
func Fig15(sc Scale) *Result {
	spec := data.TerabyteSpec(sc.DatasetScale)
	d, err := data.New(spec)
	if err != nil {
		panic(err)
	}
	r := &Result{
		ID:     "fig15",
		Title:  "loss convergence (smoothed)",
		Header: []string{"iteration", "DLRM", "TT-Rec", "EL-Rec"},
	}
	train := func(thresh int, opts tt.Options, reorderOn bool) []float64 {
		cfg := core.DefaultConfig(spec)
		cfg.Model = modelConfig(spec, sc)
		cfg.Rank = sc.Rank
		cfg.TTThreshold = thresh
		cfg.Opts = opts
		cfg.Reorder = reorderOn
		cfg.ProfileBatches, cfg.ProfileBatchSize = 8, 512
		cfg.Metrics = sc.Metrics
		sys, err := core.BuildWithDataset(cfg, d)
		if err != nil {
			panic(err)
		}
		curve := sys.Train(0, sc.TrainSteps, sc.Batch)
		return curve.Smoothed(sc.TrainSteps / 10)
	}
	dl := train(-1, tt.Options{}, false)
	tr := train(sc.TTThresholdRows, tt.NaiveOptions(), false)
	el := train(sc.TTThresholdRows, tt.EffOptions(), true)
	points := 10
	for p := 1; p <= points; p++ {
		i := p*sc.TrainSteps/points - 1
		r.AddRow(fmt.Sprintf("%d", i+1), f2(dl[i]), f2(tr[i]), f2(el[i]))
	}
	r.AddNote("batch %d; paper: the three curves coincide — tensorization does not slow convergence", sc.Batch)
	return r
}

// Fig16 regenerates Figure 16: pipeline vs sequential vs DLRM when the
// largest table is TT-compressed on the device and the rest stay in host
// memory.
func Fig16(sc Scale) *Result {
	spec := data.TerabyteSpec(sc.DatasetScale)
	d, err := data.New(spec)
	if err != nil {
		panic(err)
	}
	dev := hw.TeslaV100()
	largest := 0
	for t, rows := range spec.TableRows {
		if rows > spec.TableRows[largest] {
			largest = t
		}
	}
	run := func(queueDepth int, ttLargest bool) ps.Stats {
		locs := make([]ps.TableLoc, spec.NumTables())
		for i, rows := range spec.TableRows {
			if ttLargest && i == largest {
				shape, err := tt.NewShape(rows, sc.EmbDim, sc.Rank)
				if err != nil {
					panic(err)
				}
				tbl := tt.NewTable(shape, rngFor(99), 0.05)
				tbl.Opts = tt.EffOptions()
				locs[i] = ps.TableLoc{Device: tbl}
			} else {
				locs[i] = ps.TableLoc{HostRows: rows}
			}
		}
		p, err := ps.NewPipeline(ps.Config{Model: modelConfig(spec, sc), QueueDepth: queueDepth, Seed: 3,
			Metrics: sc.Metrics}, locs)
		if err != nil {
			panic(err)
		}
		if _, err := p.Train(context.Background(), d, 0, sc.WarmSteps, sc.Batch); err != nil {
			panic(err)
		}
		before := p.Stats()
		if _, err := p.Train(context.Background(), d, sc.WarmSteps, sc.Steps, sc.Batch); err != nil {
			panic(err)
		}
		return statsDelta(p.Stats(), before)
	}

	dlrmStats := run(1, false)
	elrecStats := run(1, true)
	tDLRM := pipelineTime(dlrmStats, dev, sc.EmbDim, false)
	tSeq := pipelineTime(elrecStats, dev, sc.EmbDim, false)
	tPipe := pipelineTime(elrecStats, dev, sc.EmbDim, true)

	samples := float64(sc.Steps * sc.Batch)
	r := &Result{
		ID:     "fig16",
		Title:  "pipeline training throughput (samples/s)",
		Header: []string{"system", "throughput", "speedup vs DLRM"},
	}
	r.AddRow("DLRM", fmt.Sprintf("%.0f", samples/tDLRM.Seconds()), fx(1))
	r.AddRow("EL-Rec (Sequential)", fmt.Sprintf("%.0f", samples/tSeq.Seconds()), fx(float64(tDLRM)/float64(tSeq)))
	r.AddRow("EL-Rec (Pipeline)", fmt.Sprintf("%.0f", samples/tPipe.Seconds()), fx(float64(tDLRM)/float64(tPipe)))
	r.AddNote("largest table TT on device, %d tables on host; paper: pipeline 2.44x over DLRM, 1.30x over sequential",
		spec.NumTables()-1)
	return r
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
