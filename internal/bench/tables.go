package bench

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/tt"
)

// Table2 regenerates Table II: the dataset statistics. Rows are printed at
// the synthetic scale plus the full-scale (scale=1) footprint the paper
// reports (59.2 GB for Criteo Terabyte at dim 128).
func Table2(sc Scale) *Result {
	r := &Result{
		ID:     "table2",
		Title:  "dataset statistics",
		Header: []string{"dataset", "#samples", "#dense", "#categorical", "rows(scaled)", "emb GB (scale=1, dim=128)"},
	}
	full := []data.Spec{data.AvazuSpec(1), data.TerabyteSpec(1), data.KaggleSpec(1)}
	scaled := []data.Spec{
		data.AvazuSpec(sc.DatasetScale),
		data.TerabyteSpec(sc.DatasetScale),
		data.KaggleSpec(sc.DatasetScale),
	}
	for i, spec := range scaled {
		r.AddRow(
			spec.Name,
			fmt.Sprintf("%d", spec.Samples),
			fmt.Sprintf("%d", spec.NumDense),
			fmt.Sprintf("%d", spec.NumTables()),
			fmt.Sprintf("%d", spec.TotalRows()),
			f2(float64(full[i].EmbeddingBytes(128))/1e9),
		)
	}
	r.AddNote("cardinalities scaled by %g; paper reports 59.2 GB for Terabyte at dim 128", sc.DatasetScale)
	return r
}

// Table3 regenerates Table III: embedding-table footprint of the
// uncompressed model vs the Eff-TT model (compressing tables above the
// threshold, keeping small tables dense, as §VI-A describes).
func Table3(sc Scale) *Result {
	r := &Result{
		ID:     "table3",
		Title:  "embedding footprint: uncompressed vs Eff-TT",
		Header: []string{"dataset", "dense MB", "TT MB", "compression", "tables compressed"},
	}
	for _, spec := range datasets(sc) {
		var denseBytes, ttBytes int64
		compressed := 0
		for _, rows := range spec.TableRows {
			denseBytes += int64(rows) * int64(sc.EmbDim) * 4
			if rows >= sc.TTThresholdRows {
				shape, err := tt.NewShape(rows, sc.EmbDim, sc.Rank)
				if err != nil {
					panic(err)
				}
				ttBytes += shape.FootprintBytes()
				compressed++
			} else {
				ttBytes += int64(rows) * int64(sc.EmbDim) * 4
			}
		}
		r.AddRow(
			spec.Name,
			f2(float64(denseBytes)/1e6),
			f2(float64(ttBytes)/1e6),
			fx(float64(denseBytes)/float64(ttBytes)),
			fmt.Sprintf("%d/%d", compressed, spec.NumTables()),
		)
	}
	r.AddNote("dim=%d rank=%d threshold=%d rows (paper compresses tables above 1M rows)", sc.EmbDim, sc.Rank, sc.TTThresholdRows)
	return r
}

// Table4 regenerates Table IV: held-out prediction accuracy of DLRM, TT-Rec,
// FAE and EL-Rec on the three datasets — the tensorization must cost at most
// a fraction of a point of accuracy.
func Table4(sc Scale) *Result {
	r := &Result{
		ID:     "table4",
		Title:  "prediction accuracy (%)",
		Header: []string{"dataset", "DLRM", "TT-Rec", "FAE", "EL-Rec", "AUC DLRM", "AUC EL-Rec"},
	}
	for _, spec := range datasets(sc) {
		d, err := data.New(spec)
		if err != nil {
			panic(err)
		}
		evalStart := sc.TrainSteps + 1

		build := func(thresh int, opts tt.Options, reorderOn bool) *core.System {
			cfg := core.DefaultConfig(spec)
			cfg.Model = modelConfig(spec, sc)
			cfg.Rank = sc.Rank
			cfg.TTThreshold = thresh
			cfg.Opts = opts
			cfg.Reorder = reorderOn
			cfg.ProfileBatches, cfg.ProfileBatchSize = 8, 512
			cfg.Metrics = sc.Metrics
			sys, err := core.BuildWithDataset(cfg, d)
			if err != nil {
				panic(err)
			}
			sys.Train(0, sc.TrainSteps, sc.Batch)
			return sys
		}

		dlrmSys := build(-1, tt.Options{}, false)
		ttrecSys := build(sc.TTThresholdRows, tt.NaiveOptions(), false)
		elrecSys := build(sc.TTThresholdRows, tt.EffOptions(), true)

		// FAE trains the same uncompressed model through its hot/cold
		// scheduler; accuracy matches DLRM by construction of the schedule.
		tables, _, err := dlrm.BuildTables(spec.TableRows, dlrm.TableSpec{Dim: sc.EmbDim, Rank: sc.Rank, TTThreshold: -1, Seed: 17})
		if err != nil {
			panic(err)
		}
		faeModel, err := dlrm.NewModel(modelConfig(spec, sc), tables)
		if err != nil {
			panic(err)
		}
		counts := make([][]int64, spec.NumTables())
		for t := range counts {
			counts[t] = d.AccessCounts(t, faeProfileBatches, sc.Batch)
		}
		fae, err := baselines.NewFAE(faeModel, counts, faeCoverage)
		if err != nil {
			panic(err)
		}
		for it := 0; it < sc.TrainSteps; it++ {
			fae.TrainBatch(d.Batch(it, sc.Batch))
		}
		var faeProbs, faeLabels []float32
		for it := 0; it < 10; it++ {
			b := d.Batch(evalStart+it, sc.Batch)
			faeProbs = append(faeProbs, faeModel.Predict(b)...)
			faeLabels = append(faeLabels, b.Labels...)
		}
		faeAcc := accuracyPct(faeProbs, faeLabels)

		accD, aucD := dlrmSys.Evaluate(evalStart, 10, sc.Batch)
		accT, _ := ttrecSys.Evaluate(evalStart, 10, sc.Batch)
		accE, aucE := elrecSys.Evaluate(evalStart, 10, sc.Batch)
		r.AddRow(spec.Name,
			f2(accD*100), f2(accT*100), f2(faeAcc), f2(accE*100),
			f2(aucD), f2(aucE))
	}
	r.AddNote("%d training steps, batch %d, dim %d, rank %d; paper finds <0.1pp accuracy loss at full scale",
		sc.TrainSteps, sc.Batch, sc.EmbDim, sc.Rank)
	return r
}

func accuracyPct(probs, labels []float32) float64 {
	correct := 0
	for i, p := range probs {
		pred := float32(0)
		if p >= 0.5 {
			pred = 1
		}
		if pred == labels[i] {
			correct++
		}
	}
	if len(probs) == 0 {
		return 0
	}
	return 100 * float64(correct) / float64(len(probs))
}
