package bench

import (
	"fmt"
	"time"

	"repro/internal/tensor"
	"repro/internal/tt"
)

// ExtTTDepth is an extension experiment beyond the paper: it sweeps the
// number of TT cores d (the paper and TT-Rec fix d = 3; TT-Rec's appendix
// discusses d = 4) and reports the compression/latency trade-off of the
// general-d table — deeper factorization compresses harder but multiplies
// the lookup chain length.
func ExtTTDepth(sc Scale) *Result {
	rows := scaledRows(5_000_000, sc, 20_000)
	r := &Result{
		ID:     "ext-ttdepth",
		Title:  "general-d TT: compression vs lookup latency",
		Header: []string{"d", "params (K)", "compression", "lookup ms/batch", "vs dense MB"},
	}
	denseMB := float64(rows) * float64(sc.EmbDim) * 4 / 1e6
	w := newTableWorkload(rows, sc.Steps, sc.Batch, 2001)
	for _, depth := range []int{2, 3, 4} {
		shape, err := tt.NewGeneralShape(rows, sc.EmbDim, depth, sc.Rank)
		if err != nil {
			panic(err)
		}
		tbl := tt.NewGeneralTable(shape, tensor.NewRNG(9), 0.05)
		// Warm then measure pooled lookups over the workload batches.
		tbl.Lookup(w.raw[0], w.offsets)
		elapsed := minOf(3, func() time.Duration {
			return timeIt(func() {
				for _, b := range w.raw {
					tbl.Lookup(b, w.offsets)
				}
			})
		})
		per := float64(elapsed.Microseconds()) / 1000 / float64(len(w.raw))
		r.AddRow(fmt.Sprintf("%d", depth),
			fmt.Sprintf("%d", shape.NumParams()/1000),
			fx(shape.CompressionRatio()),
			f2(per),
			f2(denseMB))
	}
	r.AddNote("table %d rows, dim %d, rank %d, batch %d; extension — not a paper figure", rows, sc.EmbDim, sc.Rank, sc.Batch)
	return r
}
