package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/reorder"
)

// ExtOptim is an extension experiment: SGD vs Adagrad convergence of the
// full EL-Rec system (the paper trains with SGD; production DLRM commonly
// uses Adagrad for embeddings).
func ExtOptim(sc Scale) *Result {
	spec := data.KaggleSpec(sc.DatasetScale)
	d, err := data.New(spec)
	if err != nil {
		panic(err)
	}
	r := &Result{
		ID:     "ext-optim",
		Title:  "EL-Rec convergence: SGD vs Adagrad embeddings",
		Header: []string{"checkpoint", "SGD loss", "Adagrad loss"},
	}
	run := func(adagrad bool) []float64 {
		cfg := core.DefaultConfig(spec)
		cfg.Model = modelConfig(spec, sc)
		if adagrad {
			// Adagrad's first step moves every touched entry by ±lr (the
			// accumulator equals the squared gradient), so it needs a far
			// smaller learning rate than SGD.
			cfg.Model.LR = 0.05
		}
		cfg.Rank = sc.Rank
		cfg.TTThreshold = sc.TTThresholdRows
		cfg.Adagrad = adagrad
		cfg.ProfileBatches, cfg.ProfileBatchSize = 8, 512
		cfg.Metrics = sc.Metrics
		sys, err := core.BuildWithDataset(cfg, d)
		if err != nil {
			panic(err)
		}
		curve := sys.Train(0, sc.TrainSteps, sc.Batch)
		return curve.Smoothed(maxInt(1, sc.TrainSteps/10))
	}
	sgd := run(false)
	ada := run(true)
	points := 8
	for p := 1; p <= points; p++ {
		i := p*sc.TrainSteps/points - 1
		r.AddRow(fmt.Sprintf("%d", i+1), f2(sgd[i]), f2(ada[i]))
	}
	r.AddNote("kaggle-like, batch %d, %d steps; SGD lr 1.0, Adagrad lr 0.05; extension — not a paper figure", sc.Batch, sc.TrainSteps)
	return r
}

// ExtHotRatio is an extension experiment: how the reordering hyperparameter
// Hot_ratio (Algorithm 2) affects the prefix sharing the Eff-TT reuse buffer
// feeds on, measured as unique TT prefixes per held-out batch.
func ExtHotRatio(sc Scale) *Result {
	rows := scaledRows(2_000_000, sc, 8192)
	spec := singleTableSpec(rows, 3003)
	d, err := data.New(spec)
	if err != nil {
		panic(err)
	}
	const profile = 30
	counts := make([]int64, rows)
	var batches [][]int
	for it := 0; it < profile; it++ {
		col := d.Batch(it, sc.Batch).Sparse[0]
		batches = append(batches, col)
		for _, idx := range col {
			counts[idx]++
		}
	}
	// m3 approximates the third TT-core length of this table.
	m3 := 1
	for m3*m3*m3 < rows {
		m3++
	}
	uniquePrefixes := func(indices []int) int {
		pfx := make([]int, len(indices))
		for i, idx := range indices {
			pfx[i] = idx / m3
		}
		uniq, _ := embedding.Unique(pfx)
		return len(uniq)
	}
	baseline := 0
	var heldOut [][]int
	for it := profile; it < profile+10; it++ {
		col := d.Batch(it, sc.Batch).Sparse[0]
		heldOut = append(heldOut, col)
		baseline += uniquePrefixes(col)
	}

	r := &Result{
		ID:     "ext-hotratio",
		Title:  "index reordering: unique TT prefixes vs Hot_ratio",
		Header: []string{"hot ratio", "unique prefixes / 10 batches", "reduction"},
	}
	r.AddRow("no reorder", fmt.Sprintf("%d", baseline), "-")
	for _, hot := range []float64{0, 0.01, 0.05, 0.20, 0.50} {
		bij, err := reorder.Build(counts, batches, reorder.Config{HotRatio: hot})
		if err != nil {
			panic(err)
		}
		total := 0
		for _, col := range heldOut {
			total += uniquePrefixes(bij.Apply(col))
		}
		r.AddRow(fmt.Sprintf("%.2f", hot), fmt.Sprintf("%d", total),
			fmt.Sprintf("%.1f%%", 100*(1-float64(total)/float64(baseline))))
	}
	r.AddNote("table %d rows, batch %d, m3=%d; extension — sweeps Algorithm 2's Hot_ratio", rows, sc.Batch, m3)
	return r
}
