//go:build race

package bench

// raceEnabled reports whether this test binary was built with the race
// detector. Mirrors the internal raceenabled constant of the runtime.
const raceEnabled = true
