package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/data"
	"repro/internal/ps"
	"repro/internal/tt"
)

// PipeCache measures the data-pipeline cache on the Figure 16 workload
// (largest table TT-compressed on the device, the rest in host memory behind
// the parameter server). Scale.Lookahead selects the window size: 0 runs the
// plain LC/push-visibility cache, N≥2 turns on lookahead planning — oracle
// admission, Belady pinning and cross-batch dedup. Two schedules run back to
// back from identical initial state: the pipelined schedule (queue depth 4)
// supplies the throughput/hit-rate rows, and the sequential schedule (queue
// depth 1, where the worker waits out the entire gather each step) supplies
// prefetch_stall_ms — at depth 4 the worker is compute-bound and its queue
// wait is cold-start noise, while the sequential stall exposes the gather
// work the lookahead dedup actually removes. One result row per metric, so
// two runs at different lookahead settings diff row-by-row under
// `elrec-bench -compare`:
//
//	cache_hit_rate, seq_cache_hit_rate,
//	steps_per_s                     higher is better
//	bytes_prefetched, gather_ms,
//	prefetch_stall_ms, evictions    lower is better
//	final_loss                      must be bit-identical (the lookahead
//	                                schedule never changes trained values)
//
// seq_cache_hit_rate is the deterministic policy metric: the pipelined
// counters depend slightly on how far the apply stage had advanced when
// each batch was gathered, while the sequential schedule orders every
// apply before the next gather and reproduces its counters exactly.
//
// pinned_rows and windows are informational (zero without lookahead).
func PipeCache(sc Scale) *Result {
	pipe := pipeCacheRun(sc, 4)
	seq := pipeCacheRun(sc, 1)

	r := &Result{
		ID:     "pipecache",
		Title:  fmt.Sprintf("pipeline cache, lookahead window %d", sc.Lookahead),
		Header: []string{"metric", "value"},
	}
	r.AddRow("cache_hit_rate", fmt.Sprintf("%.4f", pipe.st.CacheHitRate))
	r.AddRow("seq_cache_hit_rate", fmt.Sprintf("%.4f", seq.st.CacheHitRate))
	r.AddRow("bytes_prefetched", fmt.Sprintf("%d", pipe.st.BytesPrefetched))
	r.AddRow("gather_ms", fmt.Sprintf("%.3f", pipe.st.GatherTime.Seconds()*1e3))
	r.AddRow("prefetch_stall_ms", fmt.Sprintf("%.3f", seq.st.PrefetchWait.Seconds()*1e3))
	r.AddRow("evictions", fmt.Sprintf("%d", pipe.st.CacheEvictions))
	r.AddRow("steps_per_s", fmt.Sprintf("%.1f/s", float64(pipe.st.Steps)/pipe.wall.Seconds()))
	r.AddRow("pinned_rows", fmt.Sprintf("%d", pipe.st.LookaheadPinnedRows))
	r.AddRow("windows", fmt.Sprintf("%d", pipe.st.LookaheadWindows))
	r.AddRow("final_loss", fmt.Sprintf("%.6f", pipe.loss))
	r.AddNote("terabyte-like dataset, largest table TT on device, batch %d, %d measured steps",
		sc.Batch, sc.Steps)
	r.AddNote("pipelined rows from queue depth 4; seq_* and prefetch_stall_ms from the sequential schedule (depth 1)")
	r.AddNote("seq_cache_hit_rate is exactly reproducible: the sequential schedule applies each push before the next gather, so the cache counters do not depend on queue timing")
	r.AddNote("sequential schedule reproduced final_loss bit-exactly: %v", pipe.loss == seq.loss)
	return r
}

// pipeCacheResult is one schedule's measurement.
type pipeCacheResult struct {
	st   ps.Stats
	loss float64
	wall time.Duration
}

// pipeCacheRun builds a fresh pipecache system (identical initial state for
// every call — table init is seeded) at the given queue depth, warms it, and
// runs the measured steps. Only the depth-4 run adopts the scale's metrics
// registry so the two schedules' instruments do not collide.
func pipeCacheRun(sc Scale, depth int) pipeCacheResult {
	spec := data.TerabyteSpec(sc.DatasetScale)
	d, err := data.New(spec)
	if err != nil {
		panic(err)
	}
	largest := 0
	for t, rows := range spec.TableRows {
		if rows > spec.TableRows[largest] {
			largest = t
		}
	}
	locs := make([]ps.TableLoc, spec.NumTables())
	for i, rows := range spec.TableRows {
		if i == largest {
			shape, err := tt.NewShape(rows, sc.EmbDim, sc.Rank)
			if err != nil {
				panic(err)
			}
			tbl := tt.NewTable(shape, rngFor(99), 0.05)
			tbl.Opts = tt.EffOptions()
			locs[i] = ps.TableLoc{Device: tbl}
		} else {
			locs[i] = ps.TableLoc{HostRows: rows}
		}
	}
	cfg := ps.Config{
		Model:      modelConfig(spec, sc),
		QueueDepth: depth,
		Seed:       3,
		Lookahead:  sc.Lookahead,
	}
	if depth > 1 {
		cfg.Metrics = sc.Metrics
	}
	p, err := ps.NewPipeline(cfg, locs)
	if err != nil {
		panic(err)
	}
	if _, err := p.Train(context.Background(), d, 0, sc.WarmSteps, sc.Batch); err != nil {
		panic(err)
	}
	before := p.Stats()
	var out pipeCacheResult
	out.wall = timeIt(func() {
		res, err := p.Train(context.Background(), d, sc.WarmSteps, sc.Steps, sc.Batch)
		if err != nil {
			panic(err)
		}
		out.loss = res.Curve.Final(sc.Steps)
	})
	out.st = statsDelta(p.Stats(), before)
	return out
}
