package bench

import (
	"time"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Scale controls how large the experiments run. The paper's parameters
// (batch 4K, rank 128/64, full Criteo cardinalities) are reachable by
// raising these; the defaults keep a full sweep tractable on a CPU while
// preserving every relative comparison.
type Scale struct {
	// DatasetScale multiplies the real datasets' cardinalities.
	DatasetScale float64
	// Batch is the training batch size (paper: 4096).
	Batch int
	// Steps is the number of measured batches per configuration.
	Steps int
	// WarmSteps run before measurement.
	WarmSteps int
	// EmbDim is the embedding dimension (paper: 128 with rank 128 on V100).
	EmbDim int
	// Rank is the TT rank.
	Rank int
	// TTThresholdRows: tables at or above this many (scaled) rows get
	// TT-compressed, mirroring the paper's >1M-row rule scaled down.
	TTThresholdRows int
	// TrainSteps is the step count for accuracy/convergence experiments.
	TrainSteps int
	// Lookahead is the data-pipeline planning window for the pipecache
	// experiment (0 = plain LC cache, N≥2 = oracle prefetching over N
	// batches). Overridable with elrec-bench -lookahead.
	Lookahead int
	// Metrics, when non-nil, receives the instruments of every system the
	// experiments build (pipeline ps_*, TT tt_* counters); cmd/elrec-bench
	// snapshots it into the BENCH_<id>.json artifacts. Excluded from the
	// artifact's own scale record.
	Metrics *obs.Registry `json:"-"`
}

// Quick returns the smallest useful scale (used by unit-style bench tests).
func Quick() Scale {
	return Scale{
		DatasetScale:    0.001,
		Batch:           256,
		Steps:           6,
		WarmSteps:       1,
		EmbDim:          16,
		Rank:            8,
		TTThresholdRows: 1000,
		TrainSteps:      300,
		Lookahead:       8,
	}
}

// Default returns the scale cmd/elrec-bench uses out of the box: large
// enough that reuse/aggregation effects dominate overheads, small enough to
// sweep every experiment in minutes.
func Default() Scale {
	return Scale{
		DatasetScale:    0.01,
		Batch:           2048,
		Steps:           12,
		WarmSteps:       2,
		EmbDim:          32,
		Rank:            16,
		TTThresholdRows: 10_000,
		TrainSteps:      1500,
		Lookahead:       16,
	}
}

// modelConfig builds the dense-model configuration for a dataset spec.
func modelConfig(spec data.Spec, sc Scale) dlrm.Config {
	return dlrm.Config{
		NumDense:    spec.NumDense,
		EmbDim:      sc.EmbDim,
		BottomSizes: []int{64, 32},
		TopSizes:    []int{64, 32},
		LR:          1.0,
		Seed:        17,
	}
}

// datasets returns the three evaluation datasets at the given scale.
func datasets(sc Scale) []data.Spec {
	return []data.Spec{
		data.AvazuSpec(sc.DatasetScale),
		data.TerabyteSpec(sc.DatasetScale),
		data.KaggleSpec(sc.DatasetScale),
	}
}

// timeIt measures fn's wall time against the system clock (benchmarks run
// against real time by definition; the obs funnel still applies so the
// call is auditable).
func timeIt(fn func()) time.Duration {
	clock := obs.System()
	start := clock.Now()
	fn()
	return obs.Since(clock, start)
}

// singleTableSpec builds a one-table dataset used by the standalone
// embedding-table workloads (Figures 13/14/17/18): Zipf-skewed with hidden
// group locality so index reordering has structure to exploit.
func singleTableSpec(rows int, seed uint64) data.Spec {
	return data.Spec{
		Name:         "table-workload",
		NumDense:     1,
		TableRows:    []int{rows},
		ZipfS:        1.15,
		ZipfV:        2,
		GroupSize:    64,
		ActiveGroups: 8,
		Locality:     0.8,
		Samples:      1 << 30,
		Seed:         seed,
	}
}

// gradFor builds a fixed pseudo-random output gradient for table-only
// training workloads.
func gradFor(batch, dim int, seed uint64) *tensor.Matrix {
	g := tensor.New(batch, dim)
	tensor.NewRNG(seed).FillUniform(g.Data, 0.1)
	return g
}

// links used across end-to-end experiments.
var (
	pcie   = hw.PCIe3x16()
	nvlink = hw.NVLinkPair()
)
