package bench

import (
	"fmt"
	"time"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/tensor"
	"repro/internal/tt"
)

// TTCore measures the compute-core hot paths directly, one row per path, so
// kernel-level changes show up as per-row deltas between two BENCH_ttcore
// artifacts (elrec-bench -compare). Unlike the figure experiments it is not
// a paper artifact: it exists to record before/after trajectories of the
// blocked GEMM kernels, the zero-allocation TT step and the cross-batch
// prefix cache.
func TTCore(sc Scale) *Result {
	rows := scaledRows(5_000_000, sc, 20_000)
	r := &Result{
		ID:     "ttcore",
		Title:  "compute-core hot paths (µs/op)",
		Header: []string{"path", "us/op", "ops/s"},
	}

	addRow := func(name string, perOp time.Duration) {
		us := float64(perOp.Nanoseconds()) / 1e3
		opsPerSec := 0.0
		if perOp > 0 {
			opsPerSec = float64(time.Second) / float64(perOp)
		}
		r.AddRow(name, fmt.Sprintf("%.2f", us), fmt.Sprintf("%.0f", opsPerSec))
	}

	// Raw GEMM kernels at an MLP-tower-like and a square shape.
	gemmReps := 200
	timeGemm := func(m, k, n int) time.Duration {
		a, b := tensor.New(m, k), tensor.New(k, n)
		dst := tensor.New(m, n)
		rng := tensor.NewRNG(11)
		rng.FillUniform(a.Data, 1)
		rng.FillUniform(b.Data, 1)
		return minOf(3, func() time.Duration {
			return timeIt(func() {
				for i := 0; i < gemmReps; i++ {
					tensor.MatMul(dst, a, b)
				}
			})
		}) / time.Duration(gemmReps)
	}
	addRow("gemm-128x128x128", timeGemm(128, 128, 128))
	addRow(fmt.Sprintf("gemm-%dx64x64", sc.Batch), timeGemm(sc.Batch, 64, 64))

	timeGemmTB := func(m, k, n int) time.Duration {
		a, b := tensor.New(m, k), tensor.New(n, k)
		dst := tensor.New(m, n)
		rng := tensor.NewRNG(12)
		rng.FillUniform(a.Data, 1)
		rng.FillUniform(b.Data, 1)
		return minOf(3, func() time.Duration {
			return timeIt(func() {
				for i := 0; i < gemmReps; i++ {
					tensor.MatMulTransB(dst, a, b)
				}
			})
		}) / time.Duration(gemmReps)
	}
	addRow(fmt.Sprintf("gemmTB-%dx64x64", sc.Batch), timeGemmTB(sc.Batch, 64, 64))

	// TT table paths over the standard single-table workload.
	w := newTableWorkload(rows, sc.Steps, sc.Batch, 1004)
	dOut := gradFor(sc.Batch, sc.EmbDim, 7)
	perBatch := func(total time.Duration) time.Duration {
		return total / time.Duration(len(w.raw))
	}

	naive := w.newTT(sc.EmbDim, sc.Rank, tt.NaiveOptions())
	addRow("tt-forward-naive", perBatch(measureLookup(naive, w.raw, w.offsets, sc.WarmSteps)))

	eff := w.newTT(sc.EmbDim, sc.Rank, tt.EffOptions())
	addRow("tt-forward-eff", perBatch(measureLookup(eff, w.raw, w.offsets, sc.WarmSteps)))
	addRow("tt-backward-eff", perBatch(measureBackward(eff, w.raw, w.offsets, dOut, sc.WarmSteps)))

	// One-table DLRM training step: the end-to-end steps/sec consumers see.
	stepTime := func() time.Duration {
		spec := singleTableSpec(rows, 1005)
		d, err := data.New(spec)
		if err != nil {
			panic(err)
		}
		tables, _, err := dlrm.BuildTables([]int{rows}, dlrm.TableSpec{
			Dim: sc.EmbDim, Rank: sc.Rank, TTThreshold: 0, Opts: tt.EffOptions(), Seed: 3,
		})
		if err != nil {
			panic(err)
		}
		model, err := dlrm.NewModel(modelConfig(spec, sc), tables)
		if err != nil {
			panic(err)
		}
		for i := 0; i < sc.WarmSteps; i++ {
			model.TrainStep(d.Batch(i, sc.Batch))
		}
		return minOf(3, func() time.Duration {
			return timeIt(func() {
				for it := 0; it < sc.Steps; it++ {
					model.TrainStep(d.Batch(sc.WarmSteps+it, sc.Batch))
				}
			})
		}) / time.Duration(sc.Steps)
	}
	addRow("dlrm-train-step", stepTime())

	r.AddNote("table %d rows, dim %d, rank %d, batch %d; ops/s is per-path calls per second", rows, sc.EmbDim, sc.Rank, sc.Batch)
	return r
}
