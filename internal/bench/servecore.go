package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/served"
	"repro/internal/tt"
)

// serveFetchRTT emulates the round-trip of a batched remote feature fetch
// (the DeepRecSys-style hydration stage): one stall per micro-batch,
// overlappable across replicas because it blocks without burning CPU.
const serveFetchRTT = 5 * time.Millisecond

// ServeCore measures ranking-stage serving throughput through the replica
// pool at 1, 4 and 8 replicas under a fixed closed-loop client population,
// against the single-goroutine serial Ranker baseline. Two workload
// profiles: "cpu" is pure local scoring — on a single-CPU host it is
// compute-bound, so replicas buy isolation, not throughput — and "fetch5ms"
// adds a 5 ms batched remote-feature hydration stall per micro-batch, the
// regime replica pools exist for: stalls overlap across replicas while other
// replicas score, so requests/sec scales with the replica count until the
// CPU saturates. Not a paper artifact — it records the serving front end's
// scaling trajectory across PRs, the way ttcore does for the compute core.
func ServeCore(sc Scale) *Result {
	spec := data.TerabyteSpec(sc.DatasetScale)
	d, err := data.New(spec)
	if err != nil {
		panic(err)
	}
	tables, _, err := dlrm.BuildTables(spec.TableRows, dlrm.TableSpec{
		Dim: sc.EmbDim, Rank: sc.Rank, TTThreshold: sc.TTThresholdRows,
		Opts: tt.EffOptions(), Seed: 21,
	})
	if err != nil {
		panic(err)
	}
	model, err := dlrm.NewModel(modelConfig(spec, sc), tables)
	if err != nil {
		panic(err)
	}
	for it := 0; it < 20; it++ {
		model.TrainStep(d.Batch(it, sc.Batch))
	}

	item := 0
	for i, rows := range spec.TableRows {
		if rows > spec.TableRows[item] {
			item = i
		}
	}

	const clients = 32
	const candidatesPerReq = 8
	perClient := 8 * sc.Steps
	totalReqs := clients * perClient
	// The serial baseline pays the full stall on every request; a quarter of
	// the traffic is plenty to measure its (much lower) steady-state rate.
	serialReqs := totalReqs / 4

	// Per-client fixed workloads: a valid context plus a candidate set.
	ctxs := make([]serve.Context, clients)
	cands := make([][]int, clients)
	for c := 0; c < clients; c++ {
		dense := make([]float32, spec.NumDense)
		for j := range dense {
			dense[j] = float32((c*7+j*3)%11) * 0.1
		}
		sparse := make([]int, len(spec.TableRows))
		for t, rows := range spec.TableRows {
			sparse[t] = (c*31 + t*13) % rows
		}
		ctxs[c] = serve.Context{Dense: dense, Sparse: sparse}
		cand := make([]int, candidatesPerReq)
		for i := range cand {
			cand[i] = (c*17 + i*97) % spec.TableRows[item]
		}
		cands[c] = cand
	}

	stall := func(batch []served.HydrateRequest) error {
		time.Sleep(serveFetchRTT)
		return nil
	}

	// runSerial drives the single-goroutine Ranker; with hydration the stall
	// lands on every request, since there is no coalescing to amortize it.
	runSerial := func(hydrated bool) float64 {
		ranker, err := serve.NewRanker(model, item, sc.Batch)
		if err != nil {
			panic(err)
		}
		dur := timeIt(func() {
			for i := 0; i < serialReqs; i++ {
				c := i % clients
				if hydrated {
					time.Sleep(serveFetchRTT)
				}
				if _, err := ranker.Score(ctxs[c], cands[c]); err != nil {
					panic(err)
				}
			}
		})
		return float64(serialReqs) / dur.Seconds()
	}

	// runPool drives the replica pool closed-loop and returns requests/sec
	// plus the mean coalesced micro-batch size.
	runPool := func(replicas int, hydrate func([]served.HydrateRequest) error) (float64, float64) {
		reg := obs.NewRegistry()
		pool, err := served.New(model, item, sc.Batch, served.Options{
			Replicas: replicas, QueueDepth: 4 * clients, MaxCoalesce: 4,
			Hydrate: hydrate, Metrics: reg,
		})
		if err != nil {
			panic(err)
		}
		dur := timeIt(func() {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						if _, err := pool.Score(ctxs[c], cands[c]); err != nil {
							panic(err)
						}
					}
				}(c)
			}
			wg.Wait()
		})
		pool.Close()
		coalesce := reg.Snapshot().Histograms["serve_coalesced_batch_size"]
		return float64(totalReqs) / dur.Seconds(), coalesce.Mean
	}

	r := &Result{
		ID:     "servecore",
		Title:  "serving throughput vs replica count",
		Header: []string{"config", "replicas", "clients", "req/s", "speedup", "avg coalesce"},
	}
	profiles := []struct {
		name    string
		hydrate func([]served.HydrateRequest) error
	}{
		{"cpu", nil},
		{"fetch5ms", stall},
	}
	for _, prof := range profiles {
		rate := runSerial(prof.hydrate != nil)
		r.AddRow(prof.name+"/serial", "1", "1", fmt.Sprintf("%.0f", rate), "", "")
		var baseRate float64
		for _, replicas := range []int{1, 4, 8} {
			rate, coalesce := runPool(replicas, prof.hydrate)
			if replicas == 1 {
				baseRate = rate
			}
			r.AddRow(fmt.Sprintf("%s/pool-%dr", prof.name, replicas),
				fmt.Sprintf("%d", replicas),
				fmt.Sprintf("%d", clients),
				fmt.Sprintf("%.0f", rate),
				fmt.Sprintf("%.2fx", rate/baseRate),
				fmt.Sprintf("%.1f", coalesce))
		}
	}

	r.AddNote("%d requests of %d candidates each, %d closed-loop clients; dataset %s, dim %d, rank %d",
		totalReqs, candidatesPerReq, clients, spec.Name, sc.EmbDim, sc.Rank)
	r.AddNote("speedup is relative to the 1-replica pool within each profile; serial is the no-pool baseline")
	r.AddNote("fetch5ms adds a %v batched remote-feature hydration stall per micro-batch (served.Options.Hydrate); "+
		"cpu is pure local scoring and compute-bound on a single-CPU host", serveFetchRTT)
	return r
}
