package bench

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/hw"
)

// cellFloat parses a numeric table cell, stripping unit suffixes.
func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell, "/s")
	s = strings.TrimSuffix(s, "x")
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "M")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

// skipUnderRace skips experiment-harness tests when the race detector is
// on: they assert wall-clock performance shapes (and run ~10x slower), so
// under instrumentation they only report the detector's overhead. The
// concurrency they exercise is raced directly by the library packages'
// own -race tests.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("timing-shape experiment: meaningless under the race detector")
	}
}

func TestRegistry(t *testing.T) {
	if _, err := Run("nonsense", Quick()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	ids := List()
	if len(ids) < 14 {
		t.Fatalf("registry lists only %d experiments", len(ids))
	}
	for _, want := range []string{"table2", "table3", "table4", "fig4a", "fig4b",
		"fig11", "fig11-t4", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("experiment %q missing from registry", want)
		}
	}
}

func TestResultFormatting(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddNote("n=%d", 3)
	out := r.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "note: n=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted result missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	skipUnderRace(t)
	r := Table2(Quick())
	if len(r.Rows) != 3 {
		t.Fatalf("Table2 has %d rows", len(r.Rows))
	}
	// Terabyte full-scale footprint in the paper's ~59 GB regime.
	var tbGB float64
	for _, row := range r.Rows {
		if row[0] == "terabyte" {
			tbGB = cellFloat(t, row[5])
		}
	}
	if tbGB < 45 || tbGB > 75 {
		t.Fatalf("terabyte footprint %.1f GB, want ≈59", tbGB)
	}
}

func TestTable3CompressionAboveOne(t *testing.T) {
	skipUnderRace(t)
	r := Table3(Quick())
	for _, row := range r.Rows {
		if c := cellFloat(t, row[3]); c <= 1 {
			t.Fatalf("%s compression %.2f not > 1", row[0], c)
		}
	}
}

func TestFig4aMonotoneToOne(t *testing.T) {
	skipUnderRace(t)
	r := Fig4a(Quick())
	for _, row := range r.Rows {
		prev := 0.0
		for _, cell := range row[1:] {
			v := cellFloat(t, cell)
			if v < prev-1e-9 {
				t.Fatalf("%s curve not monotone: %v", row[0], row[1:])
			}
			prev = v
		}
		if prev < 99.9 {
			t.Fatalf("%s curve does not reach 100%%: %v", row[0], row)
		}
		if top5 := cellFloat(t, row[2]); top5 < 30 {
			t.Fatalf("%s top-5%% coverage %.1f lacks power-law skew", row[0], top5)
		}
	}
}

func TestFig4bUniqueBelowBatch(t *testing.T) {
	skipUnderRace(t)
	r := Fig4b(Quick())
	sizes := []float64{512, 1024, 2048, 4096, 8192}
	for _, row := range r.Rows {
		prev := 0.0
		for i, cell := range row[1:] {
			v := cellFloat(t, cell)
			if v >= sizes[i] {
				t.Fatalf("%s unique %.0f not below batch %v", row[0], v, sizes[i])
			}
			if v < prev {
				t.Fatalf("%s unique counts not increasing: %v", row[0], row[1:])
			}
			prev = v
		}
	}
}

func TestFig11ELRecWins(t *testing.T) {
	skipUnderRace(t)
	if testing.Short() {
		t.Skip("end-to-end comparison skipped in -short")
	}
	r := Fig11(Quick(), hw.TeslaV100())
	for _, row := range r.Rows {
		fae := cellFloat(t, row[5])
		ttrec := cellFloat(t, row[6])
		elrec := cellFloat(t, row[7])
		// EL-Rec beating DLRM is the paper's headline; the margins of the
		// other systems are recorded from clean runs in EXPERIMENTS.md —
		// at quick scale under machine load they can brush 1.0, so the
		// test only rejects clear inversions.
		if elrec <= 1 {
			t.Fatalf("%s: EL-Rec speedup %.2f does not beat DLRM", row[0], elrec)
		}
		if fae <= 0.85 {
			t.Fatalf("%s: FAE speedup %.2f clearly below DLRM", row[0], fae)
		}
		if ttrec <= 0.85 {
			t.Fatalf("%s: TT-Rec speedup %.2f clearly below DLRM", row[0], ttrec)
		}
		if elrec < 0.8*ttrec {
			t.Fatalf("%s: EL-Rec %.2f far below TT-Rec %.2f", row[0], elrec, ttrec)
		}
	}
}

func TestFig13ShapeAndOOM(t *testing.T) {
	skipUnderRace(t)
	r := Fig13(Quick())
	if len(r.Rows) != 3 {
		t.Fatalf("Fig13 has %d rows", len(r.Rows))
	}
	// Single device: only EL-Rec runs.
	if r.Rows[0][2] != "OOM" || r.Rows[0][3] != "OOM" {
		t.Fatalf("sharded systems should OOM at 1 device: %v", r.Rows[0])
	}
	if cellFloat(t, r.Rows[0][1]) <= 0 {
		t.Fatal("EL-Rec must run on a single device")
	}
	// At 2 and 4 devices everything runs with the same order of magnitude
	// of throughput. (The exact EL-Rec-vs-HugeCTR ratio depends on the GPU
	// GEMM efficiency the CPU substrate cannot reproduce and on machine
	// load; EXPERIMENTS.md records the clean-run comparison.)
	for _, row := range r.Rows[1:] {
		el := cellFloat(t, row[1])
		hc := cellFloat(t, row[2])
		tr := cellFloat(t, row[3])
		if el <= 0 || hc <= 0 || tr <= 0 {
			t.Fatalf("zero throughput in %v", row)
		}
		if el < hc/10 || hc < el/10 {
			t.Fatalf("throughput orders diverge: EL-Rec %.0f vs HugeCTR %.0f at %s devices", el, hc, row[0])
		}
	}
}

func TestFig14AllOptimizationsMatter(t *testing.T) {
	skipUnderRace(t)
	r := Fig14(Quick())
	for _, row := range r.Rows {
		full := cellFloat(t, row[1])
		if full <= 0 {
			t.Fatalf("zero throughput: %v", row)
		}
		// At least one disabled variant must cost >5% (the breakdown has
		// signal); no variant should be dramatically faster than full.
		dropReuse := cellFloat(t, row[5])
		dropAgg := cellFloat(t, row[6])
		dropReorder := cellFloat(t, row[7])
		if dropReuse < 5 && dropAgg < 5 && dropReorder < 5 {
			t.Fatalf("no optimization shows impact: %v", row)
		}
		for _, d := range []float64{dropReuse, dropAgg, dropReorder} {
			if d < -20 {
				t.Fatalf("disabled variant much faster than full Eff-TT: %v", row)
			}
		}
	}
}

func TestFig16PipelineBeatsSequential(t *testing.T) {
	skipUnderRace(t)
	r := Fig16(Quick())
	if len(r.Rows) != 3 {
		t.Fatalf("Fig16 has %d rows", len(r.Rows))
	}
	seqSpd := cellFloat(t, r.Rows[1][2])
	pipeSpd := cellFloat(t, r.Rows[2][2])
	if pipeSpd <= seqSpd {
		t.Fatalf("pipeline %.2fx not above sequential %.2fx", pipeSpd, seqSpd)
	}
	if pipeSpd <= 1 {
		t.Fatalf("pipeline %.2fx does not beat DLRM", pipeSpd)
	}
}

func TestFig17ReuseSpeedsUpLookup(t *testing.T) {
	skipUnderRace(t)
	r := Fig17(Quick())
	last := r.Rows[len(r.Rows)-1]
	if spd := cellFloat(t, last[4]); spd <= 1 {
		t.Fatalf("reuse speedup %.2f at largest batch", spd)
	}
	if spd := cellFloat(t, last[5]); spd <= 1 {
		t.Fatalf("total speedup %.2f at largest batch", spd)
	}
	// Speedup grows with batch size (the paper's headline trend): compare
	// largest vs smallest batch.
	first := r.Rows[0]
	if cellFloat(t, last[5]) < cellFloat(t, first[5])*0.8 {
		t.Fatalf("lookup speedup shrank with batch size: %v -> %v", first[5], last[5])
	}
}

func TestFig18AggregationSpeedsUpBackward(t *testing.T) {
	skipUnderRace(t)
	r := Fig18(Quick())
	last := r.Rows[len(r.Rows)-1]
	naive := cellFloat(t, last[1])
	agg := cellFloat(t, last[3])
	if agg >= naive {
		t.Fatalf("aggregation did not speed up backward: %.2f vs %.2f", agg, naive)
	}
	if spd := cellFloat(t, last[5]); spd <= 1 {
		t.Fatalf("total backward speedup %.2f", spd)
	}
}

func TestFig12MultiGPUShape(t *testing.T) {
	skipUnderRace(t)
	if testing.Short() {
		t.Skip("multi-GPU comparison skipped in -short")
	}
	r := Fig12(Quick())
	d1 := cellFloat(t, r.Rows[0][1])
	e1 := cellFloat(t, r.Rows[1][1])
	d4 := cellFloat(t, r.Rows[0][2])
	e4 := cellFloat(t, r.Rows[1][2])
	// Paper shape: DLRM at least matches EL-Rec on one GPU (TT adds
	// compute); EL-Rec ahead at 4 GPUs (model-parallel comm hurts DLRM).
	if e1 > d1*1.15 {
		t.Fatalf("EL-Rec(1) %.0f should not beat DLRM(1) %.0f clearly", e1, d1)
	}
	if e4 <= d4 {
		t.Fatalf("EL-Rec(4) %.0f should beat DLRM(4) %.0f", e4, d4)
	}
}

func TestTable4AccuracyParity(t *testing.T) {
	skipUnderRace(t)
	if testing.Short() {
		t.Skip("accuracy training skipped in -short")
	}
	r := Table4(Quick())
	for _, row := range r.Rows {
		dlrmAcc := cellFloat(t, row[1])
		elrecAcc := cellFloat(t, row[4])
		if dlrmAcc < 55 {
			t.Fatalf("%s: DLRM accuracy %.1f shows no learning", row[0], dlrmAcc)
		}
		if elrecAcc < dlrmAcc-3 {
			t.Fatalf("%s: EL-Rec accuracy %.2f more than 3pp below DLRM %.2f", row[0], elrecAcc, dlrmAcc)
		}
	}
}

func TestFig15CurvesCoincide(t *testing.T) {
	skipUnderRace(t)
	if testing.Short() {
		t.Skip("convergence training skipped in -short")
	}
	r := Fig15(Quick())
	first := r.Rows[0]
	last := r.Rows[len(r.Rows)-1]
	for col := 1; col <= 3; col++ {
		if cellFloat(t, last[col]) >= cellFloat(t, first[col]) {
			t.Fatalf("column %d loss did not decrease: %v -> %v", col, first[col], last[col])
		}
	}
	// DLRM and EL-Rec final losses coincide (within 10%).
	dl, el := cellFloat(t, last[1]), cellFloat(t, last[3])
	if el > dl*1.1 {
		t.Fatalf("EL-Rec final loss %.3f far above DLRM %.3f", el, dl)
	}
}

func TestExtHotRatioImprovesSharing(t *testing.T) {
	skipUnderRace(t)
	r := ExtHotRatio(Quick())
	if len(r.Rows) < 3 {
		t.Fatalf("ext-hotratio has %d rows", len(r.Rows))
	}
	base := cellFloat(t, r.Rows[0][1])
	for _, row := range r.Rows[1:] {
		if v := cellFloat(t, row[1]); v >= base {
			t.Fatalf("hot ratio %s did not reduce unique prefixes: %v >= %v", row[0], v, base)
		}
	}
}

func TestExtTTDepthTradeoff(t *testing.T) {
	skipUnderRace(t)
	r := ExtTTDepth(Quick())
	if len(r.Rows) != 3 {
		t.Fatalf("ext-ttdepth has %d rows", len(r.Rows))
	}
	// Compression must grow with d.
	prev := 0.0
	for _, row := range r.Rows {
		c := cellFloat(t, row[2])
		if c <= prev {
			t.Fatalf("compression not increasing with d: %v", r.Rows)
		}
		prev = c
	}
}

func TestExtOptimBothConverge(t *testing.T) {
	skipUnderRace(t)
	if testing.Short() {
		t.Skip("training experiment skipped in -short")
	}
	sc := Quick()
	sc.TrainSteps = 150
	r := ExtOptim(sc)
	first := r.Rows[0]
	last := r.Rows[len(r.Rows)-1]
	for col := 1; col <= 2; col++ {
		if cellFloat(t, last[col]) >= cellFloat(t, first[col]) {
			t.Fatalf("column %d loss did not decrease: %v -> %v", col, first[col], last[col])
		}
	}
}

// TestPipeCacheLookaheadBeatsLC runs the pipecache experiment with and
// without lookahead at quick scale: the oracle cache must raise the
// sequential-schedule hit rate (the deterministic policy counter — the
// pipelined counters shift slightly with apply timing, so they are not
// asserted strictly at this tiny scale), gather fewer bytes, and leave the
// trained loss bit-identical.
func TestPipeCacheLookaheadBeatsLC(t *testing.T) {
	skipUnderRace(t)
	if testing.Short() {
		t.Skip("pipeline experiment skipped in -short")
	}
	cell := func(r *Result, name string) string {
		for _, row := range r.Rows {
			if row[0] == name {
				return row[1]
			}
		}
		t.Fatalf("row %q missing from %v", name, r.Rows)
		return ""
	}
	// The hit-rate gain comes from oracle retention (entries kept past
	// push-visibility until their promised reuse), which needs several
	// windows' worth of steps to show up in the counters.
	base := Quick()
	base.Lookahead = 0
	base.Steps = 24
	la := Quick()
	la.Lookahead = 8
	la.Steps = 24
	rb, rl := PipeCache(base), PipeCache(la)
	if hb, hl := cellFloat(t, cell(rb, "seq_cache_hit_rate")), cellFloat(t, cell(rl, "seq_cache_hit_rate")); hl <= hb {
		t.Fatalf("lookahead hit rate %.4f not above LC baseline %.4f", hl, hb)
	}
	if bb, bl := cellFloat(t, cell(rb, "bytes_prefetched")), cellFloat(t, cell(rl, "bytes_prefetched")); bl >= bb {
		t.Fatalf("lookahead gathered %.0f bytes, baseline %.0f", bl, bb)
	}
	if cellFloat(t, cell(rl, "pinned_rows")) == 0 || cellFloat(t, cell(rl, "windows")) == 0 {
		t.Fatalf("lookahead run recorded no planning activity: %v", rl.Rows)
	}
	if lb, ll := cell(rb, "final_loss"), cell(rl, "final_loss"); lb != ll {
		t.Fatalf("final loss differs: %s vs %s — lookahead changed trained values", lb, ll)
	}
}

// BenchmarkPipecache is the CI smoke hook (`-benchtime=1x`): one quick-scale
// pipecache run per schedule, so the lookahead machinery is exercised on
// every push without a full bench sweep.
func BenchmarkPipecache(b *testing.B) {
	for _, look := range []int{0, 8} {
		b.Run(fmt.Sprintf("lookahead=%d", look), func(b *testing.B) {
			sc := Quick()
			sc.Lookahead = look
			for i := 0; i < b.N; i++ {
				PipeCache(sc)
			}
		})
	}
}
