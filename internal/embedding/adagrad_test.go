package embedding

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestAdagradBagKnownUpdate(t *testing.T) {
	bag := NewBag(5, 2, tensor.NewRNG(1))
	before := bag.Weights.Clone()
	a := NewAdagradBag(bag)

	indices, offsets := []int{3}, []int{0}
	dOut := tensor.FromSlice(1, 2, []float32{2, 0})
	a.Update(indices, offsets, dOut, 0.5)

	// Row 3 col 0: accum=4, update 0.5*2/sqrt(4+eps) ≈ 0.5.
	want := before.At(3, 0) - 0.5
	if math.Abs(float64(bag.Weights.At(3, 0)-want)) > 1e-5 {
		t.Fatalf("row3[0] = %v want %v", bag.Weights.At(3, 0), want)
	}
	if bag.Weights.At(3, 1) != before.At(3, 1) {
		t.Fatal("zero-grad column moved")
	}
	// Untouched rows unchanged.
	for r := 0; r < 5; r++ {
		if r == 3 {
			continue
		}
		for j := 0; j < 2; j++ {
			if bag.Weights.At(r, j) != before.At(r, j) {
				t.Fatalf("untouched row %d moved", r)
			}
		}
	}
	if acc := a.AccumRow(3); acc[0] != 4 {
		t.Fatalf("accumulator %v", acc)
	}
}

func TestAdagradBagAdaptiveShrink(t *testing.T) {
	bag := NewBag(4, 1, tensor.NewRNG(2))
	a := NewAdagradBag(bag)
	indices, offsets := []int{0}, []int{0}
	dOut := tensor.FromSlice(1, 1, []float32{1})

	w0 := bag.Weights.At(0, 0)
	a.Update(indices, offsets, dOut, 1)
	step1 := w0 - bag.Weights.At(0, 0)
	w1 := bag.Weights.At(0, 0)
	a.Update(indices, offsets, dOut, 1)
	step2 := w1 - bag.Weights.At(0, 0)
	if step2 >= step1 {
		t.Fatalf("Adagrad steps must shrink: %v then %v", step1, step2)
	}
}

func TestAdagradBagFootprintIncludesState(t *testing.T) {
	bag := NewBag(10, 4, tensor.NewRNG(3))
	a := NewAdagradBag(bag)
	if a.FootprintBytes() != int64(2*bag.NumRows()*4*4) {
		t.Fatalf("footprint %d", a.FootprintBytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AccumRow out of range accepted")
		}
	}()
	a.AccumRow(10)
}
