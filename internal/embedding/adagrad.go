package embedding

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// AdagradBag wraps a Bag with row-wise Adagrad state: the sparse analogue of
// torch's SparseAdam/Adagrad for embeddings. Only rows touched by a batch
// pay any cost. It satisfies the same table interface as Bag, with Update
// applying the adaptive rule instead of plain SGD.
type AdagradBag struct {
	*Bag
	Eps float32
	// accum[r*dim+j] is the running sum of squared gradients of entry (r,j).
	accum []float32
}

// NewAdagradBag wraps an existing Bag (which keeps its initialization).
func NewAdagradBag(bag *Bag) *AdagradBag {
	return &AdagradBag{
		Bag:   bag,
		Eps:   1e-8,
		accum: make([]float32, bag.NumRows()*bag.Dim()),
	}
}

// Update aggregates the batch gradient per unique row and applies the
// Adagrad update to exactly those rows.
func (a *AdagradBag) Update(indices, offsets []int, dOut *tensor.Matrix, lr float32) {
	g := a.Backward(indices, offsets, dOut)
	dim := a.Dim()
	for i, r := range g.Rows {
		grow := g.Grads.Row(i)
		wrow := a.Weights.Row(r)
		arow := a.accum[r*dim : (r+1)*dim]
		for j, gv := range grow {
			arow[j] += gv * gv
			wrow[j] -= lr * gv / float32(math.Sqrt(float64(arow[j])+float64(a.Eps)))
		}
	}
}

// AccumRow returns the accumulator of one row (for tests/checkpoints).
func (a *AdagradBag) AccumRow(r int) []float32 {
	if r < 0 || r >= a.NumRows() {
		//elrec:invariant row comes from an in-range unique list built by the gather
		panic(fmt.Sprintf("embedding: AccumRow %d out of range", r))
	}
	return a.accum[r*a.Dim() : (r+1)*a.Dim()]
}

// FootprintBytes includes the optimizer state (it doubles the table).
func (a *AdagradBag) FootprintBytes() int64 { return 2 * a.Bag.FootprintBytes() }
