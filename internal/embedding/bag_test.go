package embedding

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func newTestBag(rows, dim int, seed uint64) *Bag {
	return NewBag(rows, dim, tensor.NewRNG(seed))
}

func TestNewBagInitializationScale(t *testing.T) {
	b := newTestBag(100, 8, 1)
	bound := float32(0.1) // sqrt(1/100)
	for _, v := range b.Weights.Data {
		if v < -bound || v > bound {
			t.Fatalf("init value %v outside ±%v", v, bound)
		}
	}
	if b.NumRows() != 100 || b.Dim() != 8 {
		t.Fatalf("shape accessors: %d, %d", b.NumRows(), b.Dim())
	}
	if b.FootprintBytes() != 100*8*4 {
		t.Fatalf("FootprintBytes = %d", b.FootprintBytes())
	}
}

func TestNewBagInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBag(0, 8) did not panic")
		}
	}()
	NewBag(0, 8, tensor.NewRNG(1))
}

func TestLookupSingleIndexBags(t *testing.T) {
	b := newTestBag(10, 4, 2)
	indices := []int{3, 7, 0}
	offsets := []int{0, 1, 2} // three samples, one index each
	out := b.Lookup(indices, offsets)
	for s, idx := range indices {
		for j := 0; j < 4; j++ {
			if out.At(s, j) != b.Weights.At(idx, j) {
				t.Fatalf("sample %d column %d mismatch", s, j)
			}
		}
	}
}

func TestLookupSumPooling(t *testing.T) {
	b := newTestBag(10, 3, 3)
	indices := []int{1, 2, 5}
	offsets := []int{0} // one sample with three indices
	out := b.Lookup(indices, offsets)
	for j := 0; j < 3; j++ {
		want := b.Weights.At(1, j) + b.Weights.At(2, j) + b.Weights.At(5, j)
		if math.Abs(float64(out.At(0, j)-want)) > 1e-6 {
			t.Fatalf("pooled[%d] = %v want %v", j, out.At(0, j), want)
		}
	}
}

func TestLookupEmptyBagIsZero(t *testing.T) {
	b := newTestBag(10, 3, 4)
	// Sample 0 has no indices, sample 1 has one.
	out := b.Lookup([]int{4}, []int{0, 0})
	for j := 0; j < 3; j++ {
		if out.At(0, j) != 0 {
			t.Fatal("empty bag must produce zero embedding")
		}
		if out.At(1, j) != b.Weights.At(4, j) {
			t.Fatal("second bag wrong")
		}
	}
}

func TestLookupValidation(t *testing.T) {
	b := newTestBag(10, 3, 5)
	cases := []struct {
		name             string
		indices, offsets []int
	}{
		{"empty offsets", []int{1}, nil},
		{"nonzero first offset", []int{1}, []int{1}},
		{"decreasing offsets", []int{1, 2}, []int{0, 2, 1}},
		{"offset beyond indices", []int{1}, []int{0, 5}},
		{"negative index", []int{-1}, []int{0}},
		{"index out of range", []int{10}, []int{0}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", c.name)
				}
			}()
			b.Lookup(c.indices, c.offsets)
		}()
	}
}

func TestBackwardAggregatesDuplicates(t *testing.T) {
	b := newTestBag(10, 2, 6)
	// Row 3 appears in both samples; row 5 once.
	indices := []int{3, 5, 3}
	offsets := []int{0, 2}
	dOut := tensor.FromSlice(2, 2, []float32{1, 2, 10, 20})
	g := b.Backward(indices, offsets, dOut)
	if len(g.Rows) != 2 {
		t.Fatalf("unique rows = %v want [3 5]", g.Rows)
	}
	// Row 3 gets sample0 + sample1 grads, row 5 only sample0.
	byRow := map[int][]float32{}
	for i, r := range g.Rows {
		byRow[r] = g.Grads.Row(i)
	}
	if byRow[3][0] != 11 || byRow[3][1] != 22 {
		t.Fatalf("grad row3 = %v want [11 22]", byRow[3])
	}
	if byRow[5][0] != 1 || byRow[5][1] != 2 {
		t.Fatalf("grad row5 = %v want [1 2]", byRow[5])
	}
}

func TestBackwardShapeMismatchPanics(t *testing.T) {
	b := newTestBag(4, 2, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward with wrong grad shape did not panic")
		}
	}()
	b.Backward([]int{1}, []int{0}, tensor.New(2, 2))
}

func TestApplySGDUpdatesOnlyTouchedRows(t *testing.T) {
	b := newTestBag(6, 2, 8)
	before := b.Weights.Clone()
	indices := []int{2}
	offsets := []int{0}
	dOut := tensor.FromSlice(1, 2, []float32{1, -1})
	b.Step(indices, offsets, dOut, 0.5)
	for r := 0; r < 6; r++ {
		for j := 0; j < 2; j++ {
			want := before.At(r, j)
			if r == 2 {
				want -= 0.5 * dOut.At(0, j)
			}
			if math.Abs(float64(b.Weights.At(r, j)-want)) > 1e-6 {
				t.Fatalf("row %d col %d = %v want %v", r, j, b.Weights.At(r, j), want)
			}
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	b := newTestBag(8, 3, 9)
	rows := []int{1, 4, 6}
	got := b.GatherRows(rows)
	for i, r := range rows {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != b.Weights.At(r, j) {
				t.Fatal("GatherRows copied wrong data")
			}
		}
	}
	// ScatterAdd of zeros is identity; of deltas adds.
	delta := tensor.New(3, 3)
	delta.Set(1, 2, 5)
	before := b.Weights.At(4, 2)
	b.ScatterAdd(rows, delta)
	if b.Weights.At(4, 2) != before+5 {
		t.Fatal("ScatterAdd did not add delta")
	}
}

func TestGatherRowsOutOfRangePanics(t *testing.T) {
	b := newTestBag(4, 2, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("GatherRows out of range did not panic")
		}
	}()
	b.GatherRows([]int{4})
}

func TestUniqueBasic(t *testing.T) {
	uniq, inv := Unique([]int{5, 3, 5, 7, 3})
	wantU := []int{5, 3, 7}
	if len(uniq) != 3 {
		t.Fatalf("uniq = %v", uniq)
	}
	for i := range wantU {
		if uniq[i] != wantU[i] {
			t.Fatalf("uniq = %v want %v", uniq, wantU)
		}
	}
	for p, u := range inv {
		if uniq[u] != []int{5, 3, 5, 7, 3}[p] {
			t.Fatalf("inverse[%d] wrong", p)
		}
	}
}

func TestUniqueEmpty(t *testing.T) {
	uniq, inv := Unique(nil)
	if len(uniq) != 0 || len(inv) != 0 {
		t.Fatal("Unique(nil) not empty")
	}
}

// Property: Unique produces a valid inverse mapping and no duplicates.
func TestQuickUniqueInverse(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := r.Intn(50)
		indices := make([]int, n)
		for i := range indices {
			indices[i] = r.Intn(10)
		}
		uniq, inv := Unique(indices)
		seen := map[int]bool{}
		for _, u := range uniq {
			if seen[u] {
				return false
			}
			seen[u] = true
		}
		for p := range indices {
			if uniq[inv[p]] != indices[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Backward+ApplySGD equals a dense gradient-descent step on the
// materialized table.
func TestQuickSparseStepMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		rows, dim := 2+r.Intn(8), 1+r.Intn(5)
		b := NewBag(rows, dim, tensor.NewRNG(seed+1))
		dense := b.Weights.Clone()

		batch := 1 + r.Intn(4)
		var indices []int
		offsets := make([]int, batch)
		for s := 0; s < batch; s++ {
			offsets[s] = len(indices)
			k := 1 + r.Intn(3)
			for i := 0; i < k; i++ {
				indices = append(indices, r.Intn(rows))
			}
		}
		dOut := tensor.New(batch, dim)
		r.FillUniform(dOut.Data, 1)

		const lr = 0.1
		b.Step(indices, offsets, dOut, lr)

		// Dense reference: accumulate full-table gradient then subtract.
		full := tensor.New(rows, dim)
		for s := 0; s < batch; s++ {
			lo := offsets[s]
			hi := len(indices)
			if s+1 < batch {
				hi = offsets[s+1]
			}
			for _, idx := range indices[lo:hi] {
				tensor.AddTo(full.Row(idx), dOut.Row(s))
			}
		}
		tensor.Axpy(-lr, full.Data, dense.Data)
		return b.Weights.MaxAbsDiff(dense) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
