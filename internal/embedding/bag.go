// Package embedding implements the uncompressed embedding-table baseline: a
// sum-pooling EmbeddingBag with the semantics of torch.nn.EmbeddingBag
// (mode="sum", sparse gradients). It is both the reference the Eff-TT table
// is validated against and the table used by the DLRM / FAE / HugeCTR /
// TorchRec baseline systems.
package embedding

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Bag is a dense embedding table with sum pooling over per-sample index
// bags. Batches use the PyTorch indices+offsets encoding: offsets[i] is the
// start of sample i's indices; sample i owns indices[offsets[i]:offsets[i+1]].
type Bag struct {
	rows, dim int
	Weights   *tensor.Matrix // rows × dim
}

// NewBag allocates a rows×dim table initialized uniformly in
// [-√(1/rows), √(1/rows)], mirroring the DLRM reference initialization.
func NewBag(rows, dim int, rng *tensor.RNG) *Bag {
	if rows <= 0 || dim <= 0 {
		//elrec:invariant table shape comes from validated configs
		panic(fmt.Sprintf("embedding: invalid table shape %dx%d", rows, dim))
	}
	b := &Bag{rows: rows, dim: dim, Weights: tensor.New(rows, dim)}
	scale := float32(math.Sqrt(1 / float64(rows)))
	rng.FillUniform(b.Weights.Data, scale)
	return b
}

// NumRows returns the number of embedding rows.
func (b *Bag) NumRows() int { return b.rows }

// Dim returns the embedding dimension.
func (b *Bag) Dim() int { return b.dim }

// FootprintBytes returns the parameter storage size in bytes.
func (b *Bag) FootprintBytes() int64 { return int64(b.rows) * int64(b.dim) * 4 }

// validate panics when a batch description is malformed.
func validate(rows int, indices, offsets []int) {
	if len(offsets) == 0 {
		//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
		panic("embedding: empty offsets")
	}
	if offsets[0] != 0 {
		//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
		panic(fmt.Sprintf("embedding: offsets[0] = %d want 0", offsets[0]))
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
			panic(fmt.Sprintf("embedding: offsets not monotone at %d", i))
		}
	}
	if offsets[len(offsets)-1] > len(indices) {
		//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
		panic(fmt.Sprintf("embedding: last offset %d exceeds %d indices", offsets[len(offsets)-1], len(indices)))
	}
	for i, idx := range indices {
		if idx < 0 || idx >= rows {
			//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
			panic(fmt.Sprintf("embedding: index %d at position %d out of [0,%d)", idx, i, rows))
		}
	}
}

// Lookup returns the batch×dim matrix of sum-pooled embeddings. offsets has
// one entry per sample (its start in indices); the final sample extends to
// len(indices).
func (b *Bag) Lookup(indices, offsets []int) *tensor.Matrix {
	validate(b.rows, indices, offsets)
	batch := len(offsets)
	out := tensor.New(batch, b.dim)
	for s := 0; s < batch; s++ {
		lo, hi := bagBounds(offsets, s, len(indices))
		row := out.Row(s)
		for _, idx := range indices[lo:hi] {
			tensor.AddTo(row, b.Weights.Row(idx))
		}
	}
	return out
}

// bagBounds returns the [lo,hi) index range of sample s.
func bagBounds(offsets []int, s, total int) (int, int) {
	lo := offsets[s]
	hi := total
	if s+1 < len(offsets) {
		hi = offsets[s+1]
	}
	return lo, hi
}

// SparseGrad holds the aggregated gradient of a batch: one dense gradient
// row per unique accessed index.
type SparseGrad struct {
	Rows  []int          // unique row ids, ascending order of first occurrence
	Grads *tensor.Matrix // len(Rows) × dim
}

// Backward computes the sparse gradient of the sum-pooled lookup: the
// gradient of row r is the sum of dOut rows of every (sample, occurrence)
// of r in the batch, pre-aggregated over unique indices.
func (b *Bag) Backward(indices, offsets []int, dOut *tensor.Matrix) *SparseGrad {
	validate(b.rows, indices, offsets)
	if dOut.Rows != len(offsets) || dOut.Cols != b.dim {
		//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
		panic(fmt.Sprintf("embedding: Backward grad %dx%d want %dx%d", dOut.Rows, dOut.Cols, len(offsets), b.dim))
	}
	uniq, inverse := Unique(indices)
	g := tensor.New(len(uniq), b.dim)
	for s := range offsets {
		lo, hi := bagBounds(offsets, s, len(indices))
		src := dOut.Row(s)
		for p := lo; p < hi; p++ {
			tensor.AddTo(g.Row(inverse[p]), src)
		}
	}
	return &SparseGrad{Rows: uniq, Grads: g}
}

// ApplySGD applies Weights[r] -= lr·grad[r] for every row in the sparse
// gradient.
func (b *Bag) ApplySGD(g *SparseGrad, lr float32) {
	for i, r := range g.Rows {
		tensor.Axpy(-lr, g.Grads.Row(i), b.Weights.Row(r))
	}
}

// Step is the convenience Backward+ApplySGD used by training loops.
func (b *Bag) Step(indices, offsets []int, dOut *tensor.Matrix, lr float32) {
	b.ApplySGD(b.Backward(indices, offsets, dOut), lr)
}

// Update is Step under the name the DLRM table interface expects, making
// Bag a drop-in peer of the TT tables.
func (b *Bag) Update(indices, offsets []int, dOut *tensor.Matrix, lr float32) {
	b.Step(indices, offsets, dOut, lr)
}

// GatherRows copies the given rows into a fresh len(rows)×dim matrix; used
// by the parameter server to service pre-fetch requests.
func (b *Bag) GatherRows(rows []int) *tensor.Matrix {
	out := tensor.New(len(rows), b.dim)
	for i, r := range rows {
		if r < 0 || r >= b.rows {
			//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
			panic(fmt.Sprintf("embedding: GatherRows index %d out of range", r))
		}
		copy(out.Row(i), b.Weights.Row(r))
	}
	return out
}

// ScatterAdd adds delta rows into the table at the given row ids; used by
// the parameter server to apply pushed gradients (delta is already −lr·g).
func (b *Bag) ScatterAdd(rows []int, delta *tensor.Matrix) {
	if delta.Rows != len(rows) || delta.Cols != b.dim {
		//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
		panic("embedding: ScatterAdd shape mismatch")
	}
	for i, r := range rows {
		tensor.AddTo(b.Weights.Row(r), delta.Row(i))
	}
}

// Unique returns the distinct values of indices in order of first occurrence
// together with an inverse mapping: indices[p] == uniq[inverse[p]]. It is the
// shared primitive behind in-advance gradient aggregation and the paper's
// Figure 4(b) statistic.
func Unique(indices []int) (uniq []int, inverse []int) {
	inverse = make([]int, len(indices))
	pos := make(map[int]int, len(indices))
	for p, idx := range indices {
		u, ok := pos[idx]
		if !ok {
			u = len(uniq)
			pos[idx] = u
			uniq = append(uniq, idx)
		}
		inverse[p] = u
	}
	return uniq, inverse
}
