// Package metrics provides the evaluation metrics the paper reports:
// classification accuracy (Table IV), ROC AUC, loss-convergence curves
// (Figure 15) and throughput bookkeeping.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Accuracy returns the fraction of predictions on the correct side of the
// threshold (the paper's Table IV metric, threshold 0.5).
func Accuracy(probs, labels []float32, threshold float32) float64 {
	if len(probs) != len(labels) {
		//elrec:invariant probs and labels are produced together by the evaluation loop
		panic(fmt.Sprintf("metrics: %d probs vs %d labels", len(probs), len(labels)))
	}
	if len(probs) == 0 {
		return 0
	}
	correct := 0
	for i, p := range probs {
		pred := float32(0)
		if p >= threshold {
			pred = 1
		}
		if pred == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(probs))
}

// AUC returns the area under the ROC curve via the rank-sum formulation,
// handling ties by average rank. Returns 0.5 when a class is absent.
func AUC(probs, labels []float32) float64 {
	if len(probs) != len(labels) {
		//elrec:invariant probs and labels are produced together by the evaluation loop
		panic(fmt.Sprintf("metrics: %d probs vs %d labels", len(probs), len(labels)))
	}
	n := len(probs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return probs[idx[a]] < probs[idx[b]] })

	// Average ranks over tie groups.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && probs[idx[j+1]] == probs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	var posRankSum float64
	var pos, neg int
	for i, l := range labels {
		if l == 1 {
			posRankSum += ranks[i]
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return (posRankSum - float64(pos)*float64(pos+1)/2) / (float64(pos) * float64(neg))
}

// LogLoss returns the mean binary cross-entropy of probabilities against
// labels with clamping.
func LogLoss(probs, labels []float32) float64 {
	if len(probs) != len(labels) {
		//elrec:invariant probs and labels are produced together by the evaluation loop
		panic(fmt.Sprintf("metrics: %d probs vs %d labels", len(probs), len(labels)))
	}
	if len(probs) == 0 {
		return 0
	}
	const eps = 1e-7
	var total float64
	for i, p := range probs {
		pf := float64(p)
		if pf < eps {
			pf = eps
		} else if pf > 1-eps {
			pf = 1 - eps
		}
		if labels[i] == 1 {
			total += -math.Log(pf)
		} else {
			total += -math.Log(1 - pf)
		}
	}
	return total / float64(len(probs))
}

// LossCurve records training loss over iterations (Figure 15).
type LossCurve struct {
	Steps  []int
	Losses []float64
}

// Add appends one observation.
func (c *LossCurve) Add(step int, loss float64) {
	c.Steps = append(c.Steps, step)
	c.Losses = append(c.Losses, loss)
}

// Smoothed returns the curve smoothed with a trailing window average.
func (c *LossCurve) Smoothed(window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(c.Losses))
	var sum float64
	for i, v := range c.Losses {
		sum += v
		if i >= window {
			sum -= c.Losses[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// Final returns the smoothed final loss (last min(window, len) points).
func (c *LossCurve) Final(window int) float64 {
	if len(c.Losses) == 0 {
		return 0
	}
	s := c.Smoothed(window)
	return s[len(s)-1]
}
