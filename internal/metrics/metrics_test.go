package metrics

import (
	"math"
	"testing"
)

func TestAccuracy(t *testing.T) {
	probs := []float32{0.9, 0.1, 0.6, 0.4}
	labels := []float32{1, 0, 0, 1}
	if got := Accuracy(probs, labels, 0.5); got != 0.5 {
		t.Fatalf("Accuracy = %v want 0.5", got)
	}
	if got := Accuracy(nil, nil, 0.5); got != 0 {
		t.Fatalf("empty Accuracy = %v", got)
	}
}

func TestAccuracyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Accuracy([]float32{1}, []float32{1, 0}, 0.5)
}

func TestAUCPerfectAndInverted(t *testing.T) {
	probs := []float32{0.1, 0.2, 0.8, 0.9}
	labels := []float32{0, 0, 1, 1}
	if got := AUC(probs, labels); math.Abs(got-1) > 1e-9 {
		t.Fatalf("perfect AUC = %v", got)
	}
	inverted := []float32{1, 1, 0, 0}
	if got := AUC(probs, inverted); math.Abs(got) > 1e-9 {
		t.Fatalf("inverted AUC = %v", got)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	// All-equal scores: AUC must be exactly 0.5 via tie handling.
	probs := []float32{0.5, 0.5, 0.5, 0.5}
	labels := []float32{0, 1, 0, 1}
	if got := AUC(probs, labels); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("tied AUC = %v want 0.5", got)
	}
}

func TestAUCSingleClass(t *testing.T) {
	if got := AUC([]float32{0.3, 0.7}, []float32{1, 1}); got != 0.5 {
		t.Fatalf("single-class AUC = %v want 0.5", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// One miss-ordered pair of 6: AUC = (9-1... compute directly:
	// pos scores {0.8, 0.3}, neg {0.1, 0.5}: pairs ordered correctly:
	// (0.8>0.1), (0.8>0.5), (0.3>0.1) = 3 of 4 → 0.75.
	probs := []float32{0.8, 0.3, 0.1, 0.5}
	labels := []float32{1, 1, 0, 0}
	if got := AUC(probs, labels); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("AUC = %v want 0.75", got)
	}
}

func TestLogLoss(t *testing.T) {
	probs := []float32{0.5, 0.5}
	labels := []float32{1, 0}
	if got := LogLoss(probs, labels); math.Abs(got-math.Ln2) > 1e-6 {
		t.Fatalf("LogLoss = %v want ln2", got)
	}
	// Clamping keeps extremes finite.
	if got := LogLoss([]float32{0, 1}, []float32{1, 0}); math.IsInf(got, 0) {
		t.Fatal("LogLoss not clamped")
	}
	if LogLoss(nil, nil) != 0 {
		t.Fatal("empty LogLoss != 0")
	}
}

func TestLossCurve(t *testing.T) {
	var c LossCurve
	for i := 0; i < 10; i++ {
		c.Add(i, float64(10-i))
	}
	s := c.Smoothed(3)
	if len(s) != 10 {
		t.Fatalf("smoothed length %d", len(s))
	}
	// First point is itself.
	if s[0] != 10 {
		t.Fatalf("s[0] = %v", s[0])
	}
	// Middle point is trailing mean of 3.
	if math.Abs(s[5]-(5.0+6.0+7.0)/3) > 1e-9 {
		t.Fatalf("s[5] = %v", s[5])
	}
	if got := c.Final(3); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Final = %v want 2", got)
	}
	var empty LossCurve
	if empty.Final(5) != 0 {
		t.Fatal("empty Final != 0")
	}
}

func TestSmoothedWindowClamp(t *testing.T) {
	var c LossCurve
	c.Add(0, 4)
	if got := c.Smoothed(0); got[0] != 4 {
		t.Fatalf("window 0 smoothing = %v", got)
	}
}
