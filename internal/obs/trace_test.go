package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTracerRecordsSpansOnManualClock(t *testing.T) {
	clk := NewManual(time.Unix(100, 0))
	tr := NewTracer(clk)
	tr.SetThreadName(1, "prefetch")
	tr.SetThreadName(2, "worker")

	h := tr.Begin("gather", "ps", 1)
	clk.Advance(3 * time.Millisecond)
	h.End()

	clk.Advance(time.Millisecond)
	h2 := tr.Begin("train", "ps", 2)
	clk.Advance(5 * time.Millisecond)
	h2.End()
	tr.Instant("retry", "ps", 1)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "gather" || spans[0].TID != 1 || spans[0].Start != 0 || spans[0].Dur != 3*time.Millisecond {
		t.Fatalf("gather span wrong: %+v", spans[0])
	}
	if spans[1].Name != "train" || spans[1].Start != 4*time.Millisecond || spans[1].Dur != 5*time.Millisecond {
		t.Fatalf("train span wrong: %+v", spans[1])
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	clk := NewManual(time.Unix(0, 0))
	tr := NewTracer(clk)
	tr.SetThreadName(2, "worker")
	h := tr.Begin("train", "ps", 2)
	clk.Advance(1500 * time.Microsecond)
	h.End()
	tr.Instant("fault", "ps", 2)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var phases []string
	for _, ev := range doc.TraceEvents {
		phases = append(phases, ev["ph"].(string))
	}
	wantPhases := map[string]bool{"M": false, "X": false, "i": false}
	for _, ph := range phases {
		wantPhases[ph] = true
	}
	for ph, seen := range wantPhases {
		if !seen {
			t.Fatalf("missing phase %q in %v", ph, phases)
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			if ev["name"] != "train" || ev["dur"].(float64) != 1500 {
				t.Fatalf("complete event wrong: %v", ev)
			}
		}
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	h := tr.Begin("x", "y", 1)
	h.End()
	tr.Instant("x", "y", 1)
	tr.SetThreadName(1, "a")
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must read empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer write: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer must still emit valid JSON: %v", err)
	}
}
