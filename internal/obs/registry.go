package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically named cumulative count. The zero value is
// ready to use; every method on a nil *Counter is a no-op, so instrumented
// code pays only a nil check when no registry is attached.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// reset zeroes the counter.
func (c *Counter) reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) reset() {
	if g != nil {
		g.bits.Store(0)
	}
}

// histSamples bounds the per-histogram sample retention used for quantile
// summaries: beyond it, the ring overwrites the oldest observation, so
// quantiles describe the most recent histSamples observations while
// count/sum/min/max stay exact over the full stream.
const histSamples = 1024

// Histogram accumulates float64 observations: exact count/sum/min/max plus
// a bounded ring of recent samples for quantile summaries.
type Histogram struct {
	mu      sync.Mutex
	count   int64     // guarded by mu
	sum     float64   // guarded by mu
	min     float64   // guarded by mu
	max     float64   // guarded by mu
	samples []float64 // guarded by mu
	next    int       // guarded by mu; ring cursor once len(samples) == histSamples
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < histSamples {
		h.samples = append(h.samples, v)
	} else {
		h.samples[h.next] = v
		h.next = (h.next + 1) % histSamples
	}
	h.mu.Unlock()
}

// HistogramSummary is a point-in-time digest of a histogram. Quantiles use
// the nearest-rank definition over the retained samples: P(q) is the
// smallest retained value with at least q·n retained values at or below it.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summary digests the histogram (zero summary on a nil or empty histogram).
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	h.mu.Lock()
	s := HistogramSummary{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	sorted := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	if s.Count == 0 {
		return s
	}
	s.Mean = s.Sum / float64(s.Count)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	s.P99 = quantile(sorted, 0.99)
	return s
}

func (h *Histogram) reset() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
	h.samples = h.samples[:0]
	h.next = 0
	h.mu.Unlock()
}

// quantile returns the nearest-rank q-quantile of sorted (which must be in
// ascending order); 0 when sorted is empty.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Registry is a named collection of instruments. Instruments are created on
// first use (get-or-create by name) or adopted via the Register* methods so
// code that owns its own instrument storage — the pipeline's Stats()
// counters — can expose them through a registry without double counting.
// Every method on a nil *Registry returns a nil instrument or zero
// snapshot, keeping call sites branch-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterCounter adopts an externally owned counter under name, replacing
// any prior registration. No-op on a nil registry or nil counter.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// RegisterHistogram adopts an externally owned histogram under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// Snapshot is a consistent-enough point-in-time view of every instrument:
// each instrument is read atomically, though the set is not a global
// atomic cut (concurrent updates may land between reads — fine for
// monitoring). Its JSON form sorts instrument names so scrapes are
// deterministic and diffable; that ordering is contractual (MarshalJSON),
// not an accident of the encoder.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters"`
	Gauges     map[string]float64          `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`
}

// marshalSorted renders one name→value section as a JSON object with keys
// in ascending name order.
func marshalSorted[V any](m map[string]V) ([]byte, error) {
	names := make([]string, 0, len(m))
	//elrec:orderless keys are sorted immediately below
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := []byte{'{'}
	for i, name := range names {
		if i > 0 {
			buf = append(buf, ',')
		}
		k, err := json.Marshal(name)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(m[name])
		if err != nil {
			return nil, err
		}
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	return append(buf, '}'), nil
}

// MarshalJSON emits the snapshot with instrument names in sorted order in
// every section, so two scrapes of identical state are byte-identical.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	counters, err := marshalSorted(s.Counters)
	if err != nil {
		return nil, err
	}
	gauges, err := marshalSorted(s.Gauges)
	if err != nil {
		return nil, err
	}
	hists, err := marshalSorted(s.Histograms)
	if err != nil {
		return nil, err
	}
	buf := append([]byte(`{"counters":`), counters...)
	buf = append(buf, `,"gauges":`...)
	buf = append(buf, gauges...)
	buf = append(buf, `,"histograms":`...)
	buf = append(buf, hists...)
	return append(buf, '}'), nil
}

// Counter returns the named counter's value in the snapshot (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Snapshot reads every instrument. Safe to call concurrently with updates.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSummary{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	//elrec:orderless copying one map into another is order-independent
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	//elrec:orderless copying one map into another is order-independent
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	//elrec:orderless copying one map into another is order-independent
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()
	//elrec:orderless map insertion result is order-independent
	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	//elrec:orderless map insertion result is order-independent
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	//elrec:orderless map insertion result is order-independent
	for name, h := range hists {
		s.Histograms[name] = h.Summary()
	}
	return s
}

// Reset zeroes every instrument (the instruments stay registered).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	//elrec:orderless collecting map values for order-independent reset
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	//elrec:orderless collecting map values for order-independent reset
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	//elrec:orderless collecting map values for order-independent reset
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	for _, c := range counters {
		c.reset()
	}
	for _, g := range gauges {
		g.reset()
	}
	for _, h := range hists {
		h.reset()
	}
}
