package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func decodeMerged(t *testing.T, procs []ProcessTrace) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMergedChromeTrace(&buf, procs); err != nil {
		t.Fatalf("WriteMergedChromeTrace: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	return doc
}

// TestMergedTraceRebasesOntoSharedOrigin merges two processes whose epochs
// sit 2ms apart and checks every event lands on one timeline anchored at
// the earliest event (ts 0), with the later process's spans shifted by the
// epoch gap.
func TestMergedTraceRebasesOntoSharedOrigin(t *testing.T) {
	procs := []ProcessTrace{
		{
			Name: "worker", PID: 1, EpochNS: 1_000_000,
			Spans: []Span{{Name: "a", Cat: "t", TID: 1, Start: 0, Dur: time.Millisecond, Trace: 1, ID: 1}},
		},
		{
			Name: "shard0", PID: 2, EpochNS: 3_000_000,
			Spans: []Span{{Name: "b", Cat: "t", TID: 1, Start: 0, Dur: time.Millisecond, Trace: 2, ID: 2}},
		},
	}
	doc := decodeMerged(t, procs)
	ts := map[string]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			ts[ev.Name] = tsOf(t, doc, ev.Name)
		}
	}
	if got := ts["a"]; got != 0 {
		t.Fatalf("earliest span sits at ts %v, want 0", got)
	}
	// shard0's epoch is 2ms after the worker's → its span starts at 2000µs.
	if got := ts["b"]; got != 2000 {
		t.Fatalf("rebased span sits at ts %v µs, want 2000", got)
	}
}

// tsOf returns the ts of the named X event.
func tsOf(t *testing.T, doc chromeDoc, name string) float64 {
	t.Helper()
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == name {
			return ev.TS
		}
	}
	t.Fatalf("no X event named %q", name)
	return 0
}

// TestMergedTraceLinksSpansAcrossProcesses builds the cross-process shape
// the wire protocol produces — a client span in pid 1, its handler span in
// pid 2 carrying Parent = the client span id — and checks the merge draws
// the flow arrow between them.
func TestMergedTraceLinksSpansAcrossProcesses(t *testing.T) {
	const clientSpan, serverSpan = uint64(0xA1), uint64(1<<48 | 0xB2)
	procs := []ProcessTrace{
		{
			Name: "worker", PID: 1, EpochNS: 0,
			Spans:   []Span{{Name: "gather", Cat: "rpc", TID: 10, Start: 0, Dur: 4 * time.Millisecond, Trace: clientSpan, ID: clientSpan}},
			Threads: map[int]string{10: "rpc:shard0"},
		},
		{
			Name: "shard0", PID: 2, EpochNS: 1_000_000,
			Spans:   []Span{{Name: "handle:gather", Cat: "rpc", TID: 101, Start: 0, Dur: 2 * time.Millisecond, Trace: clientSpan, ID: serverSpan, Parent: clientSpan}},
			Threads: map[int]string{101: "conn1"},
		},
	}
	doc := decodeMerged(t, procs)

	var sPID, fPID, flows int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s":
			flows++
			sPID = ev.PID
			if ev.ID != serverSpan {
				t.Fatalf("flow start id %#x, want child span id %#x", ev.ID, serverSpan)
			}
		case "f":
			flows++
			fPID = ev.PID
			if ev.ID != serverSpan {
				t.Fatalf("flow finish id %#x, want child span id %#x", ev.ID, serverSpan)
			}
		}
	}
	if flows != 2 {
		t.Fatalf("got %d flow events, want a start/finish pair", flows)
	}
	if sPID != 1 || fPID != 2 {
		t.Fatalf("flow runs pid %d → pid %d, want 1 → 2 (worker to shard)", sPID, fPID)
	}

	names := map[int][]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			if n, ok := ev.Args["name"].(string); ok {
				names[ev.PID] = append(names[ev.PID], n)
			}
		}
	}
	if !contains(names[1], "worker") || !contains(names[2], "shard0") {
		t.Fatalf("process metadata missing: %v", names)
	}
	if !contains(names[1], "rpc:shard0") || !contains(names[2], "conn1") {
		t.Fatalf("thread metadata missing: %v", names)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestMergedTraceRejectsDuplicatePIDs: pid collisions would silently
// interleave two processes into one lane, so the merge refuses them.
func TestMergedTraceRejectsDuplicatePIDs(t *testing.T) {
	var buf bytes.Buffer
	err := WriteMergedChromeTrace(&buf, []ProcessTrace{
		{Name: "a", PID: 3}, {Name: "b", PID: 3},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate pid") {
		t.Fatalf("err = %v, want duplicate-pid error", err)
	}
}

// TestMergedTraceEmptyIsValid: an empty process list still yields a valid
// document Perfetto can open.
func TestMergedTraceEmptyIsValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMergedChromeTrace(&buf, nil); err != nil {
		t.Fatalf("empty merge: %v", err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty merge is not valid JSON: %v", err)
	}
	if doc.TraceEvents == nil {
		t.Fatal(`empty merge must still carry "traceEvents": []`)
	}
}
