package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpans bounds span retention so a long training run cannot grow the
// trace without limit; past the cap the ring overwrites the oldest events
// (keeping the most recent window — the interesting one for a live cluster
// scrape) and counts every overwrite in Dropped.
const maxSpans = 1 << 18

// Span is one completed interval on a logical thread (a pipeline stage).
// Start is relative to the tracer's epoch (its creation instant).
//
// Trace, ID and Parent carry the distributed-tracing identity: spans begun
// with Begin have all three zero (purely local), BeginTrace roots a new
// trace (Trace == ID), and BeginChild links a span under a parent that may
// live in another process — the wire protocol forwards the caller's
// TraceContext, so a shard-side handler span's Parent is the worker-side
// RPC span's ID. WriteChromeTrace and WriteMergedChromeTrace turn each
// resolvable Parent link into a Chrome flow event (a visible arrow).
type Span struct {
	Name  string
	Cat   string
	TID   int
	Start time.Duration
	Dur   time.Duration

	Trace  uint64 // trace id (0 = untraced)
	ID     uint64 // span id, unique within the tracer's id space
	Parent uint64 // parent span id (0 = root or untraced)
}

// TraceContext is the portable identity of an open span: what a caller
// forwards (in-process or over the wire) so downstream work can link
// itself under the span.
type TraceContext struct {
	Trace uint64
	Span  uint64
}

// ring is bounded most-recent retention: append up to cap, then overwrite
// the oldest entry, counting every overwrite.
type ring[T any] struct {
	buf     []T
	next    int // overwrite cursor once len(buf) == cap
	dropped int64
}

func (r *ring[T]) add(capN int, v T) {
	if capN < 1 {
		capN = 1
	}
	if len(r.buf) < capN {
		r.buf = append(r.buf, v)
		return
	}
	if r.next >= len(r.buf) {
		r.next = 0
	}
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	r.dropped++
}

// ordered returns a copy in recording order (oldest first).
func (r *ring[T]) ordered() []T {
	if r.dropped == 0 || r.next == 0 {
		return append([]T(nil), r.buf...)
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Tracer records spans and instant events against an injected clock and
// exports them as Chrome trace-event JSON (chrome://tracing / Perfetto).
// All methods are safe for concurrent use and no-ops on a nil *Tracer.
type Tracer struct {
	clock Clock
	epoch time.Time

	idBase atomic.Uint64 // OR-ed into every allocated id (process salt)
	ids    atomic.Uint64 // monotone id counter

	mu      sync.Mutex
	cap     int            // guarded by mu; ring capacity
	spans   ring[Span]     // guarded by mu
	inst    ring[instant]  // guarded by mu
	threads map[int]string // guarded by mu
}

// instant is one zero-duration marker event (a retry, an injected fault).
type instant struct {
	name string
	cat  string
	tid  int
	at   time.Duration
}

// NewTracer returns a tracer whose epoch is the clock's current reading
// (nil clock: the system clock).
func NewTracer(clock Clock) *Tracer {
	clock = OrSystem(clock)
	t := &Tracer{clock: clock, epoch: clock.Now()}
	t.mu.Lock()
	t.cap = maxSpans
	t.threads = map[int]string{}
	t.mu.Unlock()
	return t
}

// Epoch returns the instant span Starts are measured from (zero time on a
// nil tracer). Cross-process trace merging anchors each process's spans at
// its epoch.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// SetSpanIDBase installs a per-process salt OR-ed into every span id this
// tracer allocates. Processes contributing to one merged trace must use
// disjoint salts (high bits, e.g. processIndex<<48) so parent links never
// collide across id spaces. Call it before recording; ids already handed
// out keep their old base.
func (t *Tracer) SetSpanIDBase(base uint64) {
	if t == nil {
		return
	}
	t.idBase.Store(base)
}

// SetCapacity bounds event retention (spans and instants each keep up to n
// most-recent events). Intended for tests and tools; call it before
// recording. n < 1 is clamped to 1.
func (t *Tracer) SetCapacity(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.cap = n
	t.mu.Unlock()
}

// nextID allocates a span id.
func (t *Tracer) nextID() uint64 {
	return t.idBase.Load() | t.ids.Add(1)
}

// SetThreadName labels a logical thread id in the exported trace.
func (t *Tracer) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[tid] = name
	t.mu.Unlock()
}

// Threads returns a copy of the thread-name table.
func (t *Tracer) Threads() map[int]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]string, len(t.threads))
	//elrec:orderless copying one map into another is order-independent
	for tid, name := range t.threads {
		out[tid] = name
	}
	return out
}

// SpanHandle is an open span returned by Begin/BeginTrace/BeginChild; End
// closes it. Only End records anything: a span left open never appears in
// the export, so every exported span is complete by construction.
type SpanHandle struct {
	t      *Tracer
	name   string
	cat    string
	tid    int
	start  time.Time
	trace  uint64
	id     uint64
	parent uint64
}

// Begin opens a purely local span (no trace identity). On a nil tracer the
// returned handle's End is a no-op.
func (t *Tracer) Begin(name, cat string, tid int) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, name: name, cat: cat, tid: tid, start: t.clock.Now()}
}

// BeginTrace opens a span rooting a fresh trace: the span's id doubles as
// the trace id. Forward the handle's Context() (in-process or over the
// wire) to link downstream work under it.
func (t *Tracer) BeginTrace(name, cat string, tid int) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	id := t.nextID()
	return SpanHandle{t: t, name: name, cat: cat, tid: tid, start: t.clock.Now(),
		trace: id, id: id}
}

// BeginChild opens a span linked under parent (typically a TraceContext
// that crossed a process boundary). A zero parent degrades gracefully: the
// span still gets its own id but stays untraced.
func (t *Tracer) BeginChild(name, cat string, tid int, parent TraceContext) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, name: name, cat: cat, tid: tid, start: t.clock.Now(),
		trace: parent.Trace, id: t.nextID(), parent: parent.Span}
}

// Context returns the span's forwardable identity (zero for spans opened
// with Begin or on a nil tracer).
func (s SpanHandle) Context() TraceContext {
	return TraceContext{Trace: s.trace, Span: s.id}
}

// End closes the span and records it.
func (s SpanHandle) End() {
	if s.t == nil {
		return
	}
	now := s.t.clock.Now()
	s.t.add(Span{
		Name:   s.name,
		Cat:    s.cat,
		TID:    s.tid,
		Start:  s.start.Sub(s.t.epoch),
		Dur:    now.Sub(s.start),
		Trace:  s.trace,
		ID:     s.id,
		Parent: s.parent,
	})
}

// add records one completed span, honouring the retention cap.
func (t *Tracer) add(sp Span) {
	t.mu.Lock()
	t.spans.add(t.cap, sp)
	t.mu.Unlock()
}

// Instant records a zero-duration marker event at the current instant.
func (t *Tracer) Instant(name, cat string, tid int) {
	if t == nil {
		return
	}
	at := t.clock.Now().Sub(t.epoch)
	t.mu.Lock()
	t.inst.add(t.cap, instant{name: name, cat: cat, tid: tid, at: at})
	t.mu.Unlock()
}

// Spans returns a copy of the retained spans in recording order (oldest
// first; the ring keeps the most recent window).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans.ordered()
}

// Dropped reports how many events were discarded past the retention cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans.dropped + t.inst.dropped
}

// traceEvent is one Chrome trace-event JSON object. Timestamps and
// durations are microseconds; ph X is a complete span, i an instant event,
// M metadata (process/thread names), s/f a flow arrow between two slices.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"` // flow-event binding id
	BP   string         `json:"bp,omitempty"` // flow binding point ("e": enclosing slice)
	S    string         `json:"s,omitempty"`  // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// usOf converts a duration to Chrome trace microseconds.
func usOf(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// spanEvent renders one complete-span event at absolute timestamp ts (µs).
func spanEvent(sp Span, pid int, ts float64) traceEvent {
	ev := traceEvent{
		Name: sp.Name, Cat: sp.Cat, Ph: "X", PID: pid, TID: sp.TID,
		TS: ts, Dur: usOf(sp.Dur),
	}
	if sp.Trace != 0 || sp.ID != 0 {
		ev.Args = map[string]any{
			"trace": fmt.Sprintf("%#x", sp.Trace),
			"span":  fmt.Sprintf("%#x", sp.ID),
		}
		if sp.Parent != 0 {
			ev.Args["parent"] = fmt.Sprintf("%#x", sp.Parent)
		}
	}
	return ev
}

// placedSpan is a span located in the merged (or single-process) event
// set: its process and its absolute timestamp in trace microseconds.
type placedSpan struct {
	span Span
	pid  int
	ts   float64
}

// flowEvents emits one Chrome flow arrow (ph s → ph f) for every span
// whose Parent resolves to another placed span's ID: the arrow starts
// inside the parent slice and lands on the child slice. The child's own id
// binds the pair, so a parent with several children (RPC retries) gets one
// arrow per child.
func flowEvents(placed []placedSpan) []traceEvent {
	byID := make(map[uint64]placedSpan, len(placed))
	for _, p := range placed {
		if p.span.ID != 0 {
			byID[p.span.ID] = p
		}
	}
	var out []traceEvent
	for _, child := range placed {
		if child.span.Parent == 0 {
			continue
		}
		parent, ok := byID[child.span.Parent]
		if !ok {
			continue
		}
		out = append(out, traceEvent{
			Name: "rpc", Cat: "flow", Ph: "s", PID: parent.pid, TID: parent.span.TID,
			TS: parent.ts, ID: child.span.ID,
		})
		out = append(out, traceEvent{
			Name: "rpc", Cat: "flow", Ph: "f", BP: "e", PID: child.pid, TID: child.span.TID,
			TS: child.ts, ID: child.span.ID,
		})
	}
	return out
}

// threadNameEvents renders thread-name metadata for one process, in
// ascending tid order.
func threadNameEvents(pid int, threads map[int]string) []traceEvent {
	tids := make([]int, 0, len(threads))
	//elrec:orderless keys are sorted immediately below
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	out := make([]traceEvent, 0, len(tids))
	for _, tid := range tids {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": threads[tid]},
		})
	}
	return out
}

// WriteChromeTrace writes the recorded events as a Chrome trace-event JSON
// object ({"traceEvents": [...]}), loadable by chrome://tracing and
// ui.perfetto.dev. Parent links that resolve within this tracer are
// rendered as flow arrows; links whose parent lives in another process
// only materialize in WriteMergedChromeTrace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	spans := t.spans.ordered()
	insts := t.inst.ordered()
	names := make(map[int]string, len(t.threads))
	//elrec:orderless copying one map into another is order-independent
	for tid, name := range t.threads {
		names[tid] = name
	}
	t.mu.Unlock()

	events := make([]traceEvent, 0, len(spans)+len(insts)+len(names))
	events = append(events, threadNameEvents(1, names)...)
	placed := make([]placedSpan, 0, len(spans))
	for _, sp := range spans {
		p := placedSpan{span: sp, pid: 1, ts: usOf(sp.Start)}
		placed = append(placed, p)
		events = append(events, spanEvent(sp, 1, p.ts))
	}
	for _, in := range insts {
		events = append(events, traceEvent{
			Name: in.name, Cat: in.cat, Ph: "i", PID: 1, TID: in.tid, S: "t",
			TS: usOf(in.at),
		})
	}
	events = append(events, flowEvents(placed)...)
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WriteChromeTraceFile writes the trace to a file at path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing trace to %s: %w", path, err)
	}
	return f.Close()
}
