package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// maxSpans bounds span retention so a long training run cannot grow the
// trace without limit; spans past the cap are counted and dropped.
const maxSpans = 1 << 18

// Span is one completed interval on a logical thread (a pipeline stage).
// Start is relative to the tracer's epoch (its creation instant).
type Span struct {
	Name  string
	Cat   string
	TID   int
	Start time.Duration
	Dur   time.Duration
}

// Tracer records spans and instant events against an injected clock and
// exports them as Chrome trace-event JSON (chrome://tracing / Perfetto).
// All methods are safe for concurrent use and no-ops on a nil *Tracer.
type Tracer struct {
	clock Clock
	epoch time.Time

	mu      sync.Mutex
	spans   []Span         // guarded by mu
	inst    []instant      // guarded by mu
	threads map[int]string // guarded by mu
	dropped int64          // guarded by mu
}

// instant is one zero-duration marker event (a retry, an injected fault).
type instant struct {
	name string
	cat  string
	tid  int
	at   time.Duration
}

// NewTracer returns a tracer whose epoch is the clock's current reading
// (nil clock: the system clock).
func NewTracer(clock Clock) *Tracer {
	clock = OrSystem(clock)
	t := &Tracer{clock: clock, epoch: clock.Now()}
	t.mu.Lock()
	t.threads = map[int]string{}
	t.mu.Unlock()
	return t
}

// SetThreadName labels a logical thread id in the exported trace.
func (t *Tracer) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[tid] = name
	t.mu.Unlock()
}

// SpanHandle is an open span returned by Begin; End closes it.
type SpanHandle struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start time.Time
}

// Begin opens a span. On a nil tracer the returned handle's End is a no-op.
func (t *Tracer) Begin(name, cat string, tid int) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, name: name, cat: cat, tid: tid, start: t.clock.Now()}
}

// End closes the span and records it.
func (s SpanHandle) End() {
	if s.t == nil {
		return
	}
	now := s.t.clock.Now()
	s.t.add(Span{
		Name:  s.name,
		Cat:   s.cat,
		TID:   s.tid,
		Start: s.start.Sub(s.t.epoch),
		Dur:   now.Sub(s.start),
	})
}

// add records one completed span, honouring the retention cap.
func (t *Tracer) add(sp Span) {
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, sp)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Instant records a zero-duration marker event at the current instant.
func (t *Tracer) Instant(name, cat string, tid int) {
	if t == nil {
		return
	}
	at := t.clock.Now().Sub(t.epoch)
	t.mu.Lock()
	if len(t.inst) < maxSpans {
		t.inst = append(t.inst, instant{name: name, cat: cat, tid: tid, at: at})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped reports how many events were discarded past the retention cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// traceEvent is one Chrome trace-event JSON object. Timestamps and
// durations are microseconds; ph X is a complete span, i an instant event,
// M metadata (thread names).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the recorded events as a Chrome trace-event JSON
// object ({"traceEvents": [...]}), loadable by chrome://tracing and
// ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	insts := append([]instant(nil), t.inst...)
	tids := make([]int, 0, len(t.threads))
	//elrec:orderless keys are sorted immediately below
	for tid := range t.threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	names := make(map[int]string, len(tids))
	for _, tid := range tids {
		names[tid] = t.threads[tid]
	}
	t.mu.Unlock()

	events := make([]traceEvent, 0, len(spans)+len(insts)+len(tids))
	for _, tid := range tids {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": names[tid]},
		})
	}
	for _, sp := range spans {
		events = append(events, traceEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X", PID: 1, TID: sp.TID,
			TS:  float64(sp.Start) / float64(time.Microsecond),
			Dur: float64(sp.Dur) / float64(time.Microsecond),
		})
	}
	for _, in := range insts {
		events = append(events, traceEvent{
			Name: in.name, Cat: in.cat, Ph: "i", PID: 1, TID: in.tid, S: "t",
			TS: float64(in.at) / float64(time.Microsecond),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WriteChromeTraceFile writes the trace to a file at path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing trace to %s: %w", path, err)
	}
	return f.Close()
}
