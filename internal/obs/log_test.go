package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestLoggerFormat(t *testing.T) {
	var buf strings.Builder
	clk := NewManual(time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC))
	l := NewLogger(&buf, LevelInfo, clk)
	l.Info("training step", "step", 100, "loss", float64(0.5), "note", "two words")
	got := buf.String()
	want := `time=2026-08-06T12:00:00Z level=INFO msg="training step" step=100 loss=0.5 note="two words"` + "\n"
	if got != want {
		t.Fatalf("record mismatch:\n got %q\nwant %q", got, want)
	}
}

func TestLoggerLevelsAndNil(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelWarn, NewManual(time.Unix(0, 0)))
	l.Debug("hidden")
	l.Info("hidden")
	l.Warn("shown")
	l.Error("shown too", "err", errors.New("boom boom"))
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("levels below warn must be suppressed:\n%s", out)
	}
	if !strings.Contains(out, "level=WARN msg=shown") || !strings.Contains(out, `err="boom boom"`) {
		t.Fatalf("missing records:\n%s", out)
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Fatal("Enabled mismatch")
	}

	var nilLogger *Logger
	nilLogger.Info("no-op")
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
}

func TestLoggerOddKeyValueCount(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelInfo, NewManual(time.Unix(0, 0)))
	l.Info("msg", "dangling")
	if !strings.Contains(buf.String(), "dangling=!MISSING") {
		t.Fatalf("odd kv count must mark the missing value: %s", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("unknown level must error")
	}
}
