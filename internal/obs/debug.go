package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"
)

// Handler returns the debug endpoint's HTTP handler:
//
//	/metrics       JSON snapshot of the registry (Snapshot shape)
//	/trace         Chrome trace-event JSON of the tracer (load in Perfetto)
//	/debug/pprof/  the standard runtime profiles
//	/              a plain-text index of the above
//
// reg and tr may be nil; the corresponding endpoints then serve empty
// documents, so a partially wired binary still exposes pprof.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	return HandlerWith(reg, tr, nil)
}

// HandlerWith is Handler plus caller-supplied routes (path → handler),
// letting a binary mount extra endpoints — /healthz, /cluster — on the
// same debug mux. Extra routes are listed in the index and may not shadow
// the built-in paths.
func HandlerWith(reg *Registry, tr *Tracer, extra map[string]http.HandlerFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// The connection is gone on encode failure; nothing to report to.
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="elrec-trace.json"`)
		_ = tr.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	extraPaths := make([]string, 0, len(extra))
	//elrec:orderless paths are sorted immediately below
	for path := range extra {
		extraPaths = append(extraPaths, path)
	}
	sort.Strings(extraPaths)
	for _, path := range extraPaths {
		mux.HandleFunc(path, extra[path])
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "elrec debug endpoint")
		fmt.Fprintln(w, "  /metrics       metrics registry snapshot (JSON)")
		fmt.Fprintln(w, "  /trace         Chrome trace-event JSON (open in ui.perfetto.dev)")
		fmt.Fprintln(w, "  /debug/pprof/  runtime profiles")
		for _, path := range extraPaths {
			fmt.Fprintf(w, "  %s\n", path)
		}
	})
	return mux
}

// DebugServer is a running debug endpoint.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound address (useful with a ":0" listen request).
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close stops the server, waiting briefly for in-flight requests.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}

// Shutdown drains gracefully: no new connections, in-flight requests get
// up to timeout to finish, then the remnants are force-closed. A zero or
// negative timeout degrades to Close.
func (d *DebugServer) Shutdown(timeout time.Duration) error {
	if d == nil {
		return nil
	}
	if timeout <= 0 {
		return d.srv.Close()
	}
	//elrec:rootctx shutdown outlives any request context; bounded by the timeout itself
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		return d.srv.Close()
	}
	return nil
}

// Serve binds addr and serves the debug endpoint on a background
// goroutine until Close. The server carries header/idle timeouts so a
// stalled or idle debug client cannot pin connections forever.
func Serve(addr string, reg *Registry, tr *Tracer) (*DebugServer, error) {
	return ServeWith(addr, reg, tr, nil)
}

// ServeWith is Serve with caller-supplied extra routes (see HandlerWith).
func ServeWith(addr string, reg *Registry, tr *Tracer, extra map[string]http.HandlerFunc) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	srv := &http.Server{
		Handler:           HandlerWith(reg, tr, extra),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		// ErrServerClosed after Close is the expected shutdown path; any
		// other serve error has no caller left to report to.
		_ = srv.Serve(ln)
	}()
	return &DebugServer{srv: srv, ln: ln}, nil
}
