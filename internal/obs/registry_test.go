package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments, got %v %v %v", c, g, h)
	}
	c.Add(5)
	c.Inc()
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Summary().Count != 0 {
		t.Fatalf("nil instruments must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty: %+v", s)
	}
	r.Reset() // must not panic
	r.RegisterCounter("x", &Counter{})
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("steps")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("steps") != c {
		t.Fatalf("get-or-create must return the same instrument")
	}
	g := r.Gauge("queue_depth")
	g.Set(7.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
	s := r.Snapshot()
	if s.Counter("steps") != 4 || s.Gauges["queue_depth"] != 7.5 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("reset must zero instruments")
	}
}

func TestRegisterCounterAdoptsExternal(t *testing.T) {
	r := NewRegistry()
	var own Counter
	own.Add(11)
	r.RegisterCounter("ps_steps", &own)
	if got := r.Snapshot().Counter("ps_steps"); got != 11 {
		t.Fatalf("adopted counter reads %d, want 11", got)
	}
	own.Add(1)
	if got := r.Counter("ps_steps").Value(); got != 12 {
		t.Fatalf("registry must share the adopted instrument, got %d", got)
	}
}

// TestHistogramQuantilesAgainstSortedReference checks the nearest-rank
// quantiles against an independently sorted copy of the observations.
func TestHistogramQuantilesAgainstSortedReference(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency")
	// A deterministic, deliberately unsorted sequence below the retention
	// cap, so quantiles are exact.
	var vals []float64
	for i := 0; i < 999; i++ {
		vals = append(vals, float64((i*7919)%1000))
	}
	for _, v := range vals {
		h.Observe(v)
	}
	ref := append([]float64(nil), vals...)
	sort.Float64s(ref)
	nearestRank := func(q float64) float64 {
		rank := int(math.Ceil(q * float64(len(ref))))
		return ref[rank-1]
	}
	s := h.Summary()
	if s.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if s.Sum != sum || s.Min != ref[0] || s.Max != ref[len(ref)-1] {
		t.Fatalf("sum/min/max mismatch: %+v", s)
	}
	for _, tc := range []struct {
		q   float64
		got float64
	}{{0.50, s.P50}, {0.90, s.P90}, {0.99, s.P99}} {
		if want := nearestRank(tc.q); tc.got != want {
			t.Fatalf("P%v = %v, want %v", tc.q*100, tc.got, want)
		}
	}
}

func TestHistogramRingKeepsRecentSamples(t *testing.T) {
	h := &Histogram{}
	n := histSamples + 500
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	s := h.Summary()
	if s.Count != int64(n) || s.Min != 0 || s.Max != float64(n-1) {
		t.Fatalf("exact stats must cover the full stream: %+v", s)
	}
	// Quantiles describe the most recent histSamples observations
	// (500..n-1), so the median must sit inside that window.
	if s.P50 < 500 {
		t.Fatalf("P50 = %v, want a value from the retained window [500,%d)", s.P50, n)
	}
}

// TestRegistrySnapshotUpdateRace hammers the registry from concurrent
// writers while snapshotting and resetting; run under -race it proves the
// snapshot path never tears instrument state.
func TestRegistrySnapshotUpdateRace(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const iters = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("depth")
			h := r.Histogram("lat")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(w*iters + i))
				// Interleave get-or-create with updates.
				r.Counter("hits").Add(1)
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if s.Counter("hits") < 0 {
				t.Error("negative counter in snapshot")
				return
			}
			if _, err := json.Marshal(s); err != nil {
				t.Errorf("snapshot marshal: %v", err)
				return
			}
			r.Reset()
			time.Sleep(50 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
}

// TestSnapshotJSONIsSortedAndDeterministic checks the scrape contract:
// instrument names appear in ascending order inside every section, and two
// scrapes of identical state are byte-identical regardless of the map
// iteration order underneath.
func TestSnapshotJSONIsSortedAndDeterministic(t *testing.T) {
	r := NewRegistry()
	// Register in deliberately unsorted order.
	for _, name := range []string{"zeta", "alpha", "mid", "beta_2", "beta_1"} {
		r.Counter(name).Add(1)
		r.Gauge(name).Set(2)
		r.Histogram(name).Observe(3)
	}
	first, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for i := 0; i < 20; i++ {
		again, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("scrape %d differs from the first:\n%s\nvs\n%s", i, first, again)
		}
	}
	// Key order inside each section must be ascending.
	want := []string{"alpha", "beta_1", "beta_2", "mid", "zeta"}
	doc := string(first)
	for _, section := range []string{"counters", "gauges", "histograms"} {
		at := strings.Index(doc, `"`+section+`"`)
		if at < 0 {
			t.Fatalf("section %q missing from %s", section, doc)
		}
		last := at
		for _, name := range want {
			idx := strings.Index(doc[last:], `"`+name+`"`)
			if idx < 0 {
				t.Fatalf("section %q: key %q missing or out of order in %s", section, name, doc)
			}
			last += idx + 1
		}
	}
	// And the document must round-trip back into an equal snapshot.
	var back Snapshot
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counters["zeta"] != 1 || back.Gauges["alpha"] != 2 || back.Histograms["mid"].Count != 1 {
		t.Fatalf("round trip lost values: %+v", back)
	}
}
