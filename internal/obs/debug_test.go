package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestDebugEndpointServesMetricsAndTrace(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ps_steps").Add(42)
	reg.Histogram("serve_score_ns").Observe(1000)
	clk := NewManual(time.Unix(0, 0))
	tr := NewTracer(clk)
	h := tr.Begin("train", "ps", 2)
	clk.Advance(time.Millisecond)
	h.End()

	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	if snap.Counter("ps_steps") != 42 {
		t.Fatalf("/metrics ps_steps = %d, want 42", snap.Counter("ps_steps"))
	}
	if snap.Histograms["serve_score_ns"].Count != 1 {
		t.Fatalf("/metrics histogram missing: %+v", snap.Histograms)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/trace"), &doc); err != nil {
		t.Fatalf("/trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/trace has no events")
	}

	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
	if body := get("/"); len(body) == 0 {
		t.Fatal("index empty")
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var nilSrv *DebugServer
	if nilSrv.Addr() != "" || nilSrv.Close() != nil {
		t.Fatal("nil DebugServer must be inert")
	}
}
