// Package obs is the unified observability layer: a metrics registry
// (counters, gauges, histograms with snapshot/reset), span-based tracing
// that exports Chrome trace-event JSON, a leveled key=value logger, and an
// optional HTTP debug endpoint serving /metrics, /trace and pprof.
//
// Two rules keep instrumentation determinism-safe and near-zero-cost:
//
//   - Every wall-clock read outside this package and the command binaries
//     goes through an injected Clock (the obsclock analyzer enforces it),
//     so numeric packages stay free of direct time.Now/time.Since calls
//     and tests can drive timing-dependent code with a Manual clock.
//
//   - Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
//     *Histogram, *Tracer or *Logger are no-ops, so instrumented hot paths
//     cost a nil check when no registry or tracer is attached.
package obs

import (
	"sync"
	"time"
)

// Clock supplies the time base for duration measurements. Production code
// uses System; tests inject a Manual clock to make timing deterministic.
type Clock interface {
	Now() time.Time
}

// System returns the process wall clock (time.Now, which carries the
// monotonic reading, so subtraction yields true elapsed time).
func System() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// OrSystem returns c, or the system clock when c is nil — the standard
// default for packages holding an optional injected clock.
func OrSystem(c Clock) Clock {
	if c == nil {
		return System()
	}
	return c
}

// Since returns the elapsed time on c since t (OrSystem semantics for a
// nil c).
func Since(c Clock, t time.Time) time.Duration {
	return OrSystem(c).Now().Sub(t)
}

// Manual is a hand-advanced clock for tests. The zero value starts at the
// zero time; it is safe for concurrent use.
type Manual struct {
	mu sync.Mutex
	t  time.Time // guarded by mu
}

// NewManual returns a manual clock starting at start.
func NewManual(start time.Time) *Manual {
	m := &Manual{}
	m.mu.Lock()
	m.t = start
	m.mu.Unlock()
	return m
}

// Now returns the clock's current reading.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Advance moves the clock forward by d and returns the new reading.
func (m *Manual) Advance(d time.Duration) time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t = m.t.Add(d)
	return m.t
}
