package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. The numeric values match log/slog so the logger
// can be swapped for an slog handler without renumbering call sites.
type Level int

// Severity levels, slog-compatible.
const (
	LevelDebug Level = -4
	LevelInfo  Level = 0
	LevelWarn  Level = 4
	LevelError Level = 8
)

// String returns the slog-style upper-case level name.
func (l Level) String() string {
	switch {
	case l < LevelInfo:
		return "DEBUG"
	case l < LevelWarn:
		return "INFO"
	case l < LevelError:
		return "WARN"
	default:
		return "ERROR"
	}
}

// ParseLevel maps a case-insensitive level name to its Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Logger is a leveled key=value line logger (the log/slog text-handler
// shape: time=... level=... msg=... k=v ...). It is safe for concurrent
// use; every method on a nil *Logger is a no-op.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer // guarded by mu
	level atomic.Int32
	clock Clock
}

// NewLogger returns a logger writing records at or above level to w,
// timestamped by clock (nil: the system clock).
func NewLogger(w io.Writer, level Level, clock Clock) *Logger {
	l := &Logger{clock: OrSystem(clock)}
	l.level.Store(int32(level))
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
	return l
}

// Enabled reports whether records at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.level.Load())
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// log formats one record and writes it under the lock (whole lines, so
// concurrent records never interleave).
func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	ts := l.clock.Now()
	var b strings.Builder
	b.WriteString("time=")
	b.WriteString(ts.UTC().Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprintf("%v", kv[i])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		if i+1 < len(kv) {
			b.WriteString(formatValue(kv[i+1]))
		} else {
			// Odd trailing key, the slog convention for a missing value.
			b.WriteString("!MISSING")
		}
	}
	b.WriteByte('\n')
	line := b.String()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return
	}
	// A write error on a log sink is unreportable; drop the record.
	_, _ = io.WriteString(l.w, line)
}

// formatValue renders one attribute value, quoting when needed.
func formatValue(v any) string {
	switch v := v.(type) {
	case string:
		return quoteValue(v)
	case float64:
		return strconv.FormatFloat(v, 'g', 6, 64)
	case float32:
		return strconv.FormatFloat(float64(v), 'g', 6, 32)
	case error:
		return quoteValue(v.Error())
	case fmt.Stringer:
		return quoteValue(v.String())
	default:
		return quoteValue(fmt.Sprintf("%v", v))
	}
}

// quoteValue quotes s when it contains spaces, quotes or control bytes.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
