package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// chromeDoc decodes the exported trace for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		ID   uint64         `json:"id"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func decodeTrace(t *testing.T, tr *Tracer) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return doc
}

// TestTracerRingWraparoundConcurrent hammers Begin/End far past capacity
// from several goroutines and checks the ring's accounting stays exact:
// retained + dropped = recorded, and the export holds only complete spans
// (every emitted span was Ended — spans left open never appear).
func TestTracerRingWraparoundConcurrent(t *testing.T) {
	const capN, workers, perWorker = 64, 8, 1000
	tr := NewTracer(NewManual(time.Unix(0, 0)))
	tr.SetCapacity(capN)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Begin(fmt.Sprintf("w%d-%d", w, i), "test", w)
				sp.End()
			}
		}(w)
	}
	// An open span concurrent with the storm: it must never be exported.
	open := tr.Begin("never-ended", "test", 99)
	_ = open
	wg.Wait()

	spans := tr.Spans()
	if len(spans) != capN {
		t.Fatalf("retained %d spans, want the capacity %d", len(spans), capN)
	}
	const total = workers * perWorker
	if got := tr.Dropped(); got != total-capN {
		t.Fatalf("Dropped() = %d, want exactly %d (recorded %d, capacity %d)",
			got, total-capN, total, capN)
	}

	doc := decodeTrace(t, tr)
	emitted := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		emitted++
		if ev.Name == "never-ended" {
			t.Fatal("an un-Ended span leaked into the export")
		}
	}
	if emitted != capN {
		t.Fatalf("export holds %d complete spans, want %d", emitted, capN)
	}
}

// TestTracerRingKeepsMostRecent records an ordered stream past capacity
// and checks the survivors are exactly the most recent window, still in
// recording order.
func TestTracerRingKeepsMostRecent(t *testing.T) {
	clock := NewManual(time.Unix(0, 0))
	tr := NewTracer(clock)
	tr.SetCapacity(4)
	for i := 0; i < 10; i++ {
		sp := tr.Begin(fmt.Sprintf("s%d", i), "test", 0)
		clock.Advance(time.Millisecond)
		sp.End()
	}
	spans := tr.Spans()
	want := []string{"s6", "s7", "s8", "s9"}
	if len(spans) != len(want) {
		t.Fatalf("retained %d spans, want %d", len(spans), len(want))
	}
	for i, sp := range spans {
		if sp.Name != want[i] {
			t.Fatalf("spans[%d] = %q, want %q (recording order must survive the wrap)", i, sp.Name, want[i])
		}
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
}

// TestTraceContextLinksAndFlowEvents checks BeginTrace/BeginChild identity
// plumbing and the exported flow arrows: a child linked under a parent
// produces a ph "s" event at the parent and a ph "f" event at the child,
// bound by the child's span id.
func TestTraceContextLinksAndFlowEvents(t *testing.T) {
	clock := NewManual(time.Unix(0, 0))
	tr := NewTracer(clock)
	tr.SetSpanIDBase(7 << 48)

	parent := tr.BeginTrace("rpc", "client", 1)
	pctx := parent.Context()
	if pctx.Trace == 0 || pctx.Trace != pctx.Span {
		t.Fatalf("BeginTrace context %+v: trace id must be the root span id", pctx)
	}
	if pctx.Span>>48 != 7 {
		t.Fatalf("span id %#x does not carry the id base", pctx.Span)
	}
	child := tr.BeginChild("handle", "server", 2, pctx)
	cctx := child.Context()
	if cctx.Trace != pctx.Trace {
		t.Fatalf("child trace %#x, want parent trace %#x", cctx.Trace, pctx.Trace)
	}
	if cctx.Span == pctx.Span {
		t.Fatal("child must get its own span id")
	}
	clock.Advance(time.Millisecond)
	child.End()
	clock.Advance(time.Millisecond)
	parent.End()

	doc := decodeTrace(t, tr)
	var sFlows, fFlows []uint64
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s":
			sFlows = append(sFlows, ev.ID)
		case "f":
			fFlows = append(fFlows, ev.ID)
		}
	}
	if len(sFlows) != 1 || len(fFlows) != 1 {
		t.Fatalf("flow events: %d starts, %d finishes, want 1 each", len(sFlows), len(fFlows))
	}
	if sFlows[0] != cctx.Span || fFlows[0] != cctx.Span {
		t.Fatalf("flow id %#x/%#x, want the child span id %#x", sFlows[0], fFlows[0], cctx.Span)
	}
}
