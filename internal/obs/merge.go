package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ProcessTrace is one process's contribution to a merged cluster trace: a
// span set plus the anchoring needed to place it on a shared timeline.
// EpochNS is the process's tracer epoch as Unix nanoseconds, already
// corrected onto the merging process's clock (add the estimated clock
// offset before building the ProcessTrace); span Starts are relative to
// that epoch, exactly as Tracer.Spans reports them.
type ProcessTrace struct {
	Name    string // process label ("worker", "shard0", ...)
	PID     int    // Chrome trace pid; must be unique across processes
	EpochNS int64
	Spans   []Span
	Threads map[int]string
	Inst    []Instant
}

// Instant is one exported zero-duration marker event for merging.
type Instant struct {
	Name string
	Cat  string
	TID  int
	At   time.Duration // relative to the process's epoch
}

// Instants returns a copy of the retained instant events in recording
// order, in the exported Instant shape.
func (t *Tracer) Instants() []Instant {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	insts := t.inst.ordered()
	t.mu.Unlock()
	out := make([]Instant, len(insts))
	for i, in := range insts {
		out[i] = Instant{Name: in.name, Cat: in.cat, TID: in.tid, At: in.at}
	}
	return out
}

// WriteMergedChromeTrace writes one Chrome trace spanning several
// processes. Every process's spans are rebased onto a shared timeline
// (zero = the earliest event across all processes, so the trace opens at
// t=0 regardless of absolute wall time), and parent links are resolved
// across the whole set — a child span in one process draws a flow arrow
// from its parent in another, which is the point of propagating trace
// context over the wire. Span-id spaces must be disjoint across processes
// (see Tracer.SetSpanIDBase) or links may resolve to the wrong span.
func WriteMergedChromeTrace(w io.Writer, procs []ProcessTrace) error {
	seen := make(map[int]bool, len(procs))
	for _, p := range procs {
		if seen[p.PID] {
			return fmt.Errorf("obs: merged trace: duplicate pid %d", p.PID)
		}
		seen[p.PID] = true
	}

	// The shared origin: the earliest absolute event time in the set.
	var t0 int64
	first := true
	for _, p := range procs {
		for _, sp := range p.Spans {
			at := p.EpochNS + int64(sp.Start)
			if first || at < t0 {
				t0, first = at, false
			}
		}
		for _, in := range p.Inst {
			at := p.EpochNS + int64(in.At)
			if first || at < t0 {
				t0, first = at, false
			}
		}
	}

	var events []traceEvent
	var placed []placedSpan
	for _, p := range procs {
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", PID: p.PID, TID: 0,
			Args: map[string]any{"name": p.Name},
		})
		events = append(events, threadNameEvents(p.PID, p.Threads)...)
		for _, sp := range p.Spans {
			ts := usOf(time.Duration(p.EpochNS + int64(sp.Start) - t0))
			placed = append(placed, placedSpan{span: sp, pid: p.PID, ts: ts})
			events = append(events, spanEvent(sp, p.PID, ts))
		}
		for _, in := range p.Inst {
			events = append(events, traceEvent{
				Name: in.Name, Cat: in.Cat, Ph: "i", PID: p.PID, TID: in.TID, S: "t",
				TS: usOf(time.Duration(p.EpochNS + int64(in.At) - t0)),
			})
		}
	}
	events = append(events, flowEvents(placed)...)
	if events == nil {
		events = []traceEvent{}
	}
	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": events})
}
