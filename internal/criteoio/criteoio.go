// Package criteoio reads the Criteo click-log TSV format — the actual
// on-disk format of the paper's Criteo Kaggle and Criteo Terabyte datasets
// (label \t 13 integer features \t 26 hexadecimal categorical features,
// tab-separated, empty fields allowed) — and turns it into training
// batches. Categorical values hash into each table's index range (the
// standard DLRM preprocessing when no vocabulary file is used); integer
// features get the log(x+1) transform the reference implementation applies.
// The synthetic generator (internal/data) stands in when the real data is
// unavailable; this package makes the rest of the system directly usable on
// the real thing.
package criteoio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/tensor"
)

// Schema describes the file layout and target table sizes.
type Schema struct {
	NumDense  int   // integer feature count (13 for Criteo)
	TableRows []int // hash range per categorical feature (26 for Criteo)
}

// CriteoSchema returns the standard 13+26 layout with the given hash range
// per table.
func CriteoSchema(tableRows []int) Schema {
	return Schema{NumDense: 13, TableRows: tableRows}
}

// Validate reports whether the schema is usable.
func (s Schema) Validate() error {
	if s.NumDense < 0 {
		return fmt.Errorf("criteoio: negative dense count %d", s.NumDense)
	}
	if len(s.TableRows) == 0 {
		return fmt.Errorf("criteoio: no categorical tables")
	}
	for i, r := range s.TableRows {
		if r <= 0 {
			return fmt.Errorf("criteoio: table %d has %d rows", i, r)
		}
	}
	return nil
}

// Reader streams batches from a Criteo TSV stream.
type Reader struct {
	schema  Schema
	scanner *bufio.Scanner
	line    int
}

// NewReader wraps an io.Reader producing Criteo TSV lines.
func NewReader(r io.Reader, schema Schema) (*Reader, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &Reader{schema: schema, scanner: sc}, nil
}

// ReadBatch reads up to size samples. It returns io.EOF (with a nil batch)
// when the stream is exhausted before any sample is read; a short final
// batch is returned without error.
func (r *Reader) ReadBatch(size int) (*data.Batch, error) {
	if size <= 0 {
		return nil, fmt.Errorf("criteoio: non-positive batch size %d", size)
	}
	s := r.schema
	b := &data.Batch{
		Dense:  tensor.New(size, s.NumDense),
		Sparse: make([][]int, len(s.TableRows)),
	}
	for t := range b.Sparse {
		b.Sparse[t] = make([]int, 0, size)
	}
	n := 0
	for n < size && r.scanner.Scan() {
		r.line++
		if err := r.parseLine(r.scanner.Text(), b, n); err != nil {
			return nil, err
		}
		n++
	}
	if err := r.scanner.Err(); err != nil {
		return nil, fmt.Errorf("criteoio: line %d: %w", r.line, err)
	}
	if n == 0 {
		return nil, io.EOF
	}
	// Shrink to the actual sample count.
	if n < size {
		dense := tensor.New(n, s.NumDense)
		copy(dense.Data, b.Dense.Data[:n*s.NumDense])
		b.Dense = dense
	}
	b.Offsets = make([]int, n)
	for i := range b.Offsets {
		b.Offsets[i] = i
	}
	b.Labels = b.Labels[:n]
	return b, nil
}

// parseLine fills sample row of the batch from one TSV line.
func (r *Reader) parseLine(line string, b *data.Batch, row int) error {
	s := r.schema
	fields := strings.Split(line, "\t")
	want := 1 + s.NumDense + len(s.TableRows)
	if len(fields) != want {
		return fmt.Errorf("criteoio: line %d has %d fields, want %d", r.line, len(fields), want)
	}
	// Label.
	switch strings.TrimSpace(fields[0]) {
	case "0", "":
		b.Labels = append(b.Labels, 0)
	case "1":
		b.Labels = append(b.Labels, 1)
	default:
		return fmt.Errorf("criteoio: line %d has label %q", r.line, fields[0])
	}
	// Dense: log(x+1) on non-negative ints; empty/negative → 0 (the DLRM
	// reference maps missing and negative values to 0).
	for f := 0; f < s.NumDense; f++ {
		raw := strings.TrimSpace(fields[1+f])
		var v float64
		if raw != "" {
			x, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return fmt.Errorf("criteoio: line %d dense field %d: %w", r.line, f, err)
			}
			if x > 0 {
				v = math.Log(float64(x) + 1)
			}
		}
		b.Dense.Set(row, f, float32(v))
	}
	// Categorical: hex string hashed into the table range; empty → slot 0.
	for t := range s.TableRows {
		raw := strings.TrimSpace(fields[1+s.NumDense+t])
		idx := 0
		if raw != "" {
			idx = int(hashString(raw) % uint64(s.TableRows[t]))
		}
		b.Sparse[t] = append(b.Sparse[t], idx)
	}
	return nil
}

// hashString is FNV-1a, the usual cheap categorical hasher.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// CountAccesses streams the whole input once and tallies per-table access
// counts — the profiling pass index reordering and FAE need on real data.
func CountAccesses(r io.Reader, schema Schema, batchSize int) ([][]int64, int, error) {
	rd, err := NewReader(r, schema)
	if err != nil {
		return nil, 0, err
	}
	counts := make([][]int64, len(schema.TableRows))
	for t, rows := range schema.TableRows {
		counts[t] = make([]int64, rows)
	}
	samples := 0
	for {
		b, err := rd.ReadBatch(batchSize)
		if errors.Is(err, io.EOF) {
			return counts, samples, nil
		}
		if err != nil {
			return nil, samples, err
		}
		samples += b.Size()
		for t := range b.Sparse {
			for _, idx := range b.Sparse[t] {
				counts[t][idx]++
			}
		}
	}
}
