package criteoio

import (
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/dlrm"
	"repro/internal/tt"
)

// tinySchema: 2 dense + 3 categorical features.
func tinySchema() Schema {
	return Schema{NumDense: 2, TableRows: []int{10, 100, 1000}}
}

// line builds one TSV record for the tiny schema.
func line(label string, dense []string, cats []string) string {
	fields := append([]string{label}, dense...)
	fields = append(fields, cats...)
	return strings.Join(fields, "\t")
}

func TestSchemaValidate(t *testing.T) {
	if err := tinySchema().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Schema{NumDense: -1, TableRows: []int{1}}).Validate() == nil {
		t.Fatal("negative dense accepted")
	}
	if (Schema{NumDense: 1}).Validate() == nil {
		t.Fatal("no tables accepted")
	}
	if (Schema{NumDense: 1, TableRows: []int{0}}).Validate() == nil {
		t.Fatal("zero-row table accepted")
	}
}

func TestReadBatchBasics(t *testing.T) {
	input := strings.Join([]string{
		line("1", []string{"3", "0"}, []string{"a1b2", "ffee", "0001"}),
		line("0", []string{"", "7"}, []string{"", "ffee", "beef"}),
	}, "\n")
	r, err := NewReader(strings.NewReader(input), tinySchema())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ReadBatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 2 {
		t.Fatalf("batch size %d", b.Size())
	}
	if b.Labels[0] != 1 || b.Labels[1] != 0 {
		t.Fatalf("labels %v", b.Labels)
	}
	// log(3+1) transform; empty and 0 both map to 0.
	if math.Abs(float64(b.Dense.At(0, 0))-math.Log(4)) > 1e-6 {
		t.Fatalf("dense[0][0] = %v", b.Dense.At(0, 0))
	}
	if b.Dense.At(0, 1) != 0 || b.Dense.At(1, 0) != 0 {
		t.Fatal("zero/empty dense not mapped to 0")
	}
	// Hashing: in range, deterministic, equal values collide on purpose.
	for tt2, col := range b.Sparse {
		for _, idx := range col {
			if idx < 0 || idx >= tinySchema().TableRows[tt2] {
				t.Fatalf("table %d index %d out of range", tt2, idx)
			}
		}
	}
	if b.Sparse[1][0] != b.Sparse[1][1] {
		t.Fatal("identical categorical values must hash identically")
	}
	// Empty categorical maps to 0.
	if b.Sparse[0][1] != 0 {
		t.Fatalf("empty categorical mapped to %d", b.Sparse[0][1])
	}
	// Offsets are the single-valued layout.
	if b.Offsets[0] != 0 || b.Offsets[1] != 1 {
		t.Fatalf("offsets %v", b.Offsets)
	}
}

func TestReadBatchEOFAndShortFinal(t *testing.T) {
	input := line("1", []string{"1", "1"}, []string{"x", "y", "z"})
	r, _ := NewReader(strings.NewReader(input), tinySchema())
	b, err := r.ReadBatch(5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 1 || b.Dense.Rows != 1 {
		t.Fatalf("short batch size %d rows %d", b.Size(), b.Dense.Rows)
	}
	if _, err := r.ReadBatch(5); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadBatchErrors(t *testing.T) {
	cases := []string{
		"1\t2", // too few fields
		line("7", []string{"1", "1"}, []string{"a", "b", "c"}), // bad label
		line("1", []string{"x", "1"}, []string{"a", "b", "c"}), // bad dense
	}
	for _, input := range cases {
		r, _ := NewReader(strings.NewReader(input), tinySchema())
		if _, err := r.ReadBatch(4); err == nil {
			t.Fatalf("malformed input accepted: %q", input)
		}
	}
	r, _ := NewReader(strings.NewReader(""), tinySchema())
	if _, err := r.ReadBatch(0); err == nil {
		t.Fatal("zero batch size accepted")
	}
}

func TestNegativeDenseClampsToZero(t *testing.T) {
	input := line("0", []string{"-5", "2"}, []string{"a", "b", "c"})
	r, _ := NewReader(strings.NewReader(input), tinySchema())
	b, err := r.ReadBatch(1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dense.At(0, 0) != 0 {
		t.Fatalf("negative dense %v not clamped", b.Dense.At(0, 0))
	}
}

func TestCountAccesses(t *testing.T) {
	var lines []string
	for i := 0; i < 25; i++ {
		lines = append(lines, line("0", []string{"1", "1"}, []string{"hot", "hot", "hot"}))
	}
	lines = append(lines, line("1", []string{"1", "1"}, []string{"cold", "cold", "cold"}))
	counts, samples, err := CountAccesses(strings.NewReader(strings.Join(lines, "\n")), tinySchema(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if samples != 26 {
		t.Fatalf("samples = %d", samples)
	}
	for tt2 := range counts {
		var total int64
		var max int64
		for _, c := range counts[tt2] {
			total += c
			if c > max {
				max = c
			}
		}
		if total != 26 {
			t.Fatalf("table %d counted %d accesses", tt2, total)
		}
		if max < 25 {
			t.Fatalf("table %d hot row count %d", tt2, max)
		}
	}
}

// TestBatchesTrainModel: real-format data flows straight into the DLRM.
func TestBatchesTrainModel(t *testing.T) {
	schema := tinySchema()
	var lines []string
	cats := []string{"aa", "bb", "cc", "dd"}
	for i := 0; i < 64; i++ {
		label := "0"
		if i%3 == 0 {
			label = "1"
		}
		lines = append(lines, line(label,
			[]string{"1", "2"},
			[]string{cats[i%4], cats[(i+1)%4], cats[(i+2)%4]}))
	}
	r, _ := NewReader(strings.NewReader(strings.Join(lines, "\n")), schema)

	tables, _, err := dlrm.BuildTables(schema.TableRows, dlrm.TableSpec{Dim: 8, Rank: 4, TTThreshold: 500, Opts: tt.EffOptions(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dlrm.NewModel(dlrm.Config{
		NumDense: 2, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 0.5, Seed: 2,
	}, tables)
	if err != nil {
		t.Fatal(err)
	}
	for {
		b, err := r.ReadBatch(16)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		m.TrainStep(b)
	}
}
