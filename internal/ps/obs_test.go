package ps

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/faults"
	"repro/internal/obs"
)

// TestStatsRegistryEquivalence runs a pipelined train under a fixed
// fault-injection schedule with a registry attached and checks that the
// Stats() struct and the registry snapshot are two views of the same
// instruments — field by field, including the fault/retry counters.
func TestStatsRegistryEquivalence(t *testing.T) {
	spec := psSpec()
	d, err := data.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	inj := faults.NewSeeded(faults.Config{Seed: 99,
		GatherFailProb: 0.2, ApplyFailProb: 0.2,
		StallProb: 0.1, StallFor: 100 * time.Microsecond})
	p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4, Lookahead: 4,
		Faults: inj, Retry: fastRetry(), Metrics: reg}, allHostLocs(spec))
	if err != nil {
		t.Fatal(err)
	}
	mustTrain(t, p, d, 0, 50, 64)

	st := p.Stats()
	if st.InjectedFaults == 0 || st.Retries == 0 || st.StallTime == 0 {
		t.Fatalf("fault schedule produced no fault activity, test has no power: %+v", st)
	}
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("cache saw no traffic, test has no power: %+v", st)
	}
	if st.LookaheadWindows == 0 || st.LookaheadPinnedRows == 0 || st.PrefetchWait == 0 {
		t.Fatalf("lookahead instruments saw no traffic, test has no power: %+v", st)
	}

	snap := reg.Snapshot()
	want := map[string]int64{
		"ps_steps":            int64(st.Steps),
		"ps_bytes_prefetched": st.BytesPrefetched,
		"ps_bytes_pushed":     st.BytesPushed,
		"ps_cache_syncs":      st.CacheSyncs,
		"ps_cache_hits":       st.CacheHits,
		"ps_cache_misses":     st.CacheMisses,
		"ps_cache_evictions":  st.CacheEvictions,
		"ps_gather_ns":        int64(st.GatherTime),
		"ps_apply_ns":         int64(st.ApplyTime),
		"ps_train_ns":         int64(st.TrainTime),
		"ps_adapter_ns":       int64(st.AdapterTime),
		"ps_injected_faults":  st.InjectedFaults,
		"ps_retries":          st.Retries,
		"ps_backoff_ns":       int64(st.BackoffTime),
		"ps_stall_ns":         int64(st.StallTime),
		"ps_checkpoints":      st.Checkpoints,

		"ps_lookahead_windows":     st.LookaheadWindows,
		"ps_lookahead_pinned_rows": st.LookaheadPinnedRows,
		"ps_prefetch_wait_ns":      int64(st.PrefetchWait),
	}
	for name, v := range want {
		if got := snap.Counter(name); got != v {
			t.Errorf("registry %s = %d, Stats() says %d", name, got, v)
		}
	}
	if got, ok := snap.Gauges["ps_cache_hit_rate"]; !ok || got != st.CacheHitRate {
		t.Errorf("registry ps_cache_hit_rate = %v (present=%v), Stats() says %v", got, ok, st.CacheHitRate)
	}
}

// TestCheckpointMetrics checks that periodic checkpoints record write
// duration and bytes through the registry.
func TestCheckpointMetrics(t *testing.T) {
	spec := psSpec()
	d, err := data.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	path := t.TempDir() + "/ps.ckpt"
	p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 2, Seed: 4,
		Checkpoint: CheckpointConfig{Path: path, Every: 5}, Metrics: reg}, allHostLocs(spec))
	if err != nil {
		t.Fatal(err)
	}
	mustTrain(t, p, d, 0, 10, 32)
	snap := reg.Snapshot()
	if n := snap.Counter("ps_checkpoints"); n != 2 {
		t.Fatalf("ps_checkpoints = %d want 2", n)
	}
	if snap.Counter("ps_checkpoint_bytes") == 0 || snap.Counter("ps_checkpoint_write_ns") == 0 {
		t.Fatalf("checkpoint write metrics not recorded: %+v", snap.Counters)
	}
}

// TestTraceExportShowsStageOverlap runs a pipelined train with a tracer and
// checks (a) the gather/train/apply spans land on their distinct stage
// threads, and (b) the Chrome export is valid trace-event JSON carrying
// those spans plus the thread-name metadata.
func TestTraceExportShowsStageOverlap(t *testing.T) {
	spec := psSpec()
	d, err := data.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(nil)
	p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4, Trace: tr},
		allHostLocs(spec))
	if err != nil {
		t.Fatal(err)
	}
	mustTrain(t, p, d, 0, 20, 32)

	tidOf := map[string]int{"gather": tidPrefetch, "train": tidWorker, "push": tidWorker, "apply": tidApply}
	seen := map[string]int{}
	for _, sp := range tr.Spans() {
		want, ok := tidOf[sp.Name]
		if !ok {
			t.Fatalf("unexpected span %q", sp.Name)
		}
		if sp.TID != want {
			t.Fatalf("span %q on tid %d want %d", sp.Name, sp.TID, want)
		}
		seen[sp.Name]++
	}
	for _, name := range []string{"gather", "train", "apply"} {
		if seen[name] != 20 {
			t.Fatalf("saw %d %q spans want 20 (spans: %v)", seen[name], name, seen)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TID  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	threadNames := 0
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
		if ev.Ph == "M" && ev.Name == "thread_name" {
			threadNames++
		}
	}
	if phases["X"] == 0 {
		t.Fatal("export has no complete-span (X) events")
	}
	if threadNames != 3 {
		t.Fatalf("export has %d thread_name records want 3", threadNames)
	}
}
