package ps

import (
	"repro/internal/checkpoint"
	"repro/internal/dlrm"
	"repro/internal/obs"
)

// resolveTable maps the pipeline's parameter-server adapters to the host
// bags they front, so the checkpoint package serializes the actual
// parameters instead of rejecting the wrapper type. Device tables pass
// through unchanged. A remote-store adapter resolves to nil — the rows
// live on a PS shard, which checkpoints them itself (the worker writes a
// skip marker; see the distps coordinated-checkpoint protocol).
//
//elrec:locked hostMu callers (Save/LoadCheckpoint) hold every host-table lock across the call
func (p *Pipeline) resolveTable(i int, t dlrm.Table) dlrm.Table {
	if ad, ok := t.(*hostAdapter); ok {
		if bag := p.hostBags[ad.slot]; bag != nil {
			return bag
		}
		return nil // remote slot: typed-nil bag must not leak as a non-nil interface
	}
	return t
}

// SaveCheckpoint atomically persists the full training state — MLP
// parameters, device tables (with optimizer state), host tables and the
// iteration counter nextIter — to path via write-temp-fsync-rename.
//
// It must be called at a drain point: no batch in flight and every pushed
// gradient applied. Train's periodic checkpoints hold that invariant by
// waiting on the last push's done channel; external callers get it for
// free between Train calls (Train always drains before returning). The
// host tables are read under their locks, so a concurrent pre-fetcher
// (which only reads) cannot tear the snapshot.
func (p *Pipeline) SaveCheckpoint(path string, nextIter int) error {
	for h := range p.hostMu {
		p.hostMu[h].RLock()
	}
	defer func() {
		for h := range p.hostMu {
			p.hostMu[h].RUnlock()
		}
	}()
	start := p.clock.Now()
	n, err := checkpoint.SaveTrainingFile(path, p.model, p.resolveTable, checkpoint.TrainState{NextIter: nextIter})
	p.m.checkpointWriteNS.Add(int64(obs.Since(p.clock, start)))
	if err != nil {
		return err
	}
	p.m.checkpointBytes.Add(n)
	return nil
}

// LoadCheckpoint restores training state saved by SaveCheckpoint into this
// pipeline (which must have the same architecture and placement) and
// returns the next iteration to train. The embedding caches start empty
// after a restore; that is exact, not approximate — at a drain point every
// cached row equals its host copy, so resumed training is bit-identical to
// an uninterrupted run.
func (p *Pipeline) LoadCheckpoint(path string) (int, error) {
	for h := range p.hostMu {
		p.hostMu[h].Lock()
	}
	defer func() {
		for h := range p.hostMu {
			p.hostMu[h].Unlock()
		}
	}()
	st, err := checkpoint.LoadTrainingFile(path, p.model, p.resolveTable)
	if err != nil {
		return 0, err
	}
	return st.NextIter, nil
}
