package ps

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/faults"
	"repro/internal/tensor"
	"repro/internal/tt"
)

// fastRetry is a retry policy whose backoff completes instantly; tests
// record the requested delays instead of sleeping them.
func fastRetry() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond,
		Sleep: func(time.Duration) {}}
}

// assertParamsEqual fails unless the two pipelines hold bit-identical host
// tables and MLP parameters.
func assertParamsEqual(t *testing.T, want, got *Pipeline, label string) {
	t.Helper()
	if want.NumHostTables() != got.NumHostTables() {
		t.Fatalf("%s: host table count %d vs %d", label, want.NumHostTables(), got.NumHostTables())
	}
	for h := 0; h < want.NumHostTables(); h++ {
		if d := want.HostBag(h).Weights.MaxAbsDiff(got.HostBag(h).Weights); d != 0 {
			t.Fatalf("%s: host table %d differs by %v", label, h, d)
		}
	}
	wp, gp := want.Model().MLPParams(), got.Model().MLPParams()
	for i := range wp {
		if d := wp[i].Value.MaxAbsDiff(gp[i].Value); d != 0 {
			t.Fatalf("%s: MLP param %d (%s) differs by %v", label, i, wp[i].Name, d)
		}
	}
}

// TestFaultInjectionBitExact is the acceptance test for the transient-fault
// path: seeded gather/apply faults and slow-server stalls are retried with
// backoff and the run converges bit-exactly to a fault-free run, at both
// queue depths.
func TestFaultInjectionBitExact(t *testing.T) {
	spec := psSpec()
	d, err := data.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	const steps, batch = 50, 64
	run := func(depth int, inj faults.Injector) *Pipeline {
		p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: depth, Seed: 4,
			Faults: inj, Retry: fastRetry()}, allHostLocs(spec))
		if err != nil {
			t.Fatal(err)
		}
		mustTrain(t, p, d, 0, steps, batch)
		return p
	}
	clean := run(4, nil)
	for _, depth := range []int{1, 4} {
		inj := faults.NewSeeded(faults.Config{Seed: 99,
			GatherFailProb: 0.2, ApplyFailProb: 0.2,
			StallProb: 0.1, StallFor: 100 * time.Microsecond})
		faulty := run(depth, inj)
		assertParamsEqual(t, clean, faulty, "faulted run")
		st := faulty.Stats()
		if inj.Injected() == 0 || st.InjectedFaults == 0 {
			t.Fatalf("depth %d: no faults injected (stats %+v); test has no power", depth, st)
		}
		if st.Retries == 0 || st.BackoffTime == 0 {
			t.Fatalf("depth %d: faults injected but no retries recorded: %+v", depth, st)
		}
		if st.StallTime == 0 {
			t.Fatalf("depth %d: stall probability 0.1 over %d iters never stalled", depth, steps)
		}
		if int64(inj.Injected()) != st.InjectedFaults {
			t.Fatalf("depth %d: injector counted %d faults, stats %d", depth, inj.Injected(), st.InjectedFaults)
		}
	}
}

// TestGatherRetriesExhausted checks that a persistent gather fault turns
// into an ErrGatherFailed after MaxRetries, that the result remains
// resumable (the failed batch never reached the worker), and that completed
// parameters match a clean run of the completed prefix.
func TestGatherRetriesExhausted(t *testing.T) {
	spec := psSpec()
	d, _ := data.New(spec)
	inj := faults.NewSeeded(faults.Config{Seed: 1, GatherFailProb: 1.0})
	for _, depth := range []int{1, 3} {
		p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: depth, Seed: 4,
			Faults: inj, Retry: fastRetry()}, allHostLocs(spec))
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Train(context.Background(), d, 0, 20, 32)
		if !errors.Is(err, ErrGatherFailed) {
			t.Fatalf("depth %d: err = %v, want ErrGatherFailed", depth, err)
		}
		if !faults.IsInjected(err) {
			t.Fatalf("depth %d: exhausted gather error should still carry the injected sentinel: %v", depth, err)
		}
		if !res.Resumable || res.Completed != 0 || res.NextIter != 0 {
			t.Fatalf("depth %d: gather failure at iter 0 should be resumable at 0: %+v", depth, res)
		}
	}
}

// TestApplyRetriesExhaustedNotResumable checks the one genuinely fatal
// transient path: if a gradient push cannot be applied even after retries,
// the host tables no longer reflect every trained batch, so the result must
// say "restore from checkpoint".
func TestApplyRetriesExhaustedNotResumable(t *testing.T) {
	spec := psSpec()
	d, _ := data.New(spec)
	// Fail every apply attempt at iter >= 5 by exhausting MaxFaults budget
	// precisely: apply attempts 4 per iter (1 + 3 retries).
	inj := faults.NewSeeded(faults.Config{Seed: 1, ApplyFailProb: 1.0})
	p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 2, Seed: 4,
		Faults: inj, Retry: fastRetry()}, allHostLocs(spec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Train(context.Background(), d, 0, 10, 32)
	if !errors.Is(err, ErrApplyFailed) {
		t.Fatalf("err = %v, want ErrApplyFailed", err)
	}
	if res.Resumable || res.NextIter != -1 {
		t.Fatalf("exhausted apply retries must not be resumable: %+v", res)
	}
}

// onceWorkerFault injects exactly one worker panic at iteration at, then
// behaves like Nop — the "worker crashed once, restart it" scenario.
type onceWorkerFault struct {
	at    int
	mu    sync.Mutex
	fired bool
}

func (o *onceWorkerFault) Fault(op faults.Op, iter, attempt int) error {
	if op != faults.OpWorker || iter != o.at {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.fired {
		return nil
	}
	o.fired = true
	return &faults.WorkerFault{Iter: iter}
}

// TestWorkerFaultDrainsAndResumes injects a worker panic mid-run: Train
// must surface ErrWorkerFault (not deadlock), the drain must leave the
// parameters consistent at the reported NextIter, and resuming from there
// must converge bit-exactly to an uninterrupted run.
func TestWorkerFaultDrainsAndResumes(t *testing.T) {
	spec := psSpec()
	d, _ := data.New(spec)
	const steps, batch, faultAt = 40, 32, 17
	clean, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4}, allHostLocs(spec))
	if err != nil {
		t.Fatal(err)
	}
	mustTrain(t, clean, d, 0, steps, batch)

	p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4,
		Faults: &onceWorkerFault{at: faultAt}, Retry: fastRetry()}, allHostLocs(spec))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var res *TrainResult
	var terr error
	go func() {
		defer close(done)
		res, terr = p.Train(context.Background(), d, 0, steps, batch)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker fault deadlocked the pipeline")
	}
	if !errors.Is(terr, ErrWorkerFault) || !faults.IsInjected(terr) {
		t.Fatalf("err = %v, want ErrWorkerFault wrapping the injected sentinel", terr)
	}
	if !res.Resumable || res.Completed != faultAt || res.NextIter != faultAt {
		t.Fatalf("worker fault at %d: %+v", faultAt, res)
	}
	// Resume the same pipeline where it left off; the fault fired once.
	mustTrain(t, p, d, res.NextIter, steps-res.Completed, batch)
	assertParamsEqual(t, clean, p, "resume after worker fault")
}

// cancelAtIter cancels ctx the moment the pre-fetcher asks for iteration
// `at`, which lands the cancellation while at-1 earlier batches are still in
// flight through the queues.
type cancelAtIter struct {
	inner  BatchSource
	at     int
	cancel context.CancelFunc
}

func (c *cancelAtIter) Batch(iter, size int) *data.Batch {
	if iter == c.at {
		c.cancel()
	}
	return c.inner.Batch(iter, size)
}

// TestPipelineShutdownMidTraining is the shutdown satellite: cancel at a
// set of staggered steps with QueueDepth > 1 and assert (a) no goroutine
// leak, (b) no deadlock, (c) the host tables are exactly consistent with
// the returned resume iteration, by comparing against a clean run truncated
// to Completed steps.
func TestPipelineShutdownMidTraining(t *testing.T) {
	spec := psSpec()
	d, _ := data.New(spec)
	const steps, batch = 40, 32
	base := runtime.NumGoroutine()
	for _, cancelAt := range []int{3, 7, 13, 26} {
		ctx, cancel := context.WithCancel(context.Background())
		src := &cancelAtIter{inner: d, at: cancelAt, cancel: cancel}
		p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4}, allHostLocs(spec))
		if err != nil {
			t.Fatal(err)
		}
		type out struct {
			res *TrainResult
			err error
		}
		ch := make(chan out, 1)
		go func() {
			res, err := p.Train(ctx, src, 0, steps, batch)
			ch <- out{res, err}
		}()
		var o out
		select {
		case o = <-ch:
		case <-time.After(30 * time.Second):
			t.Fatalf("cancel at %d: Train deadlocked", cancelAt)
		}
		cancel()
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("cancel at %d: err = %v, want context.Canceled", cancelAt, o.err)
		}
		if !o.res.Resumable || o.res.NextIter != o.res.Completed {
			t.Fatalf("cancel at %d: inconsistent result %+v", cancelAt, o.res)
		}
		if o.res.Completed >= steps {
			t.Fatalf("cancel at %d: run was not actually interrupted (%d steps)", cancelAt, o.res.Completed)
		}
		// Consistency with the resume iteration: a clean sequential run of
		// exactly Completed steps must match bit-for-bit.
		ref, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 1, Seed: 4}, allHostLocs(spec))
		if err != nil {
			t.Fatal(err)
		}
		if o.res.Completed > 0 {
			mustTrain(t, ref, d, 0, o.res.Completed, batch)
		}
		assertParamsEqual(t, ref, p, "cancelled pipeline vs truncated clean run")
		// Resuming the cancelled pipeline completes the original schedule.
		full, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4}, allHostLocs(spec))
		if err != nil {
			t.Fatal(err)
		}
		mustTrain(t, full, d, 0, steps, batch)
		mustTrain(t, p, d, o.res.NextIter, steps-o.res.Completed, batch)
		assertParamsEqual(t, full, p, "cancelled-then-resumed vs uninterrupted")
	}
	// Goroutine leak check: allow the runtime a moment to retire workers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after shutdowns", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestKillAndResumeBitExact is the crash-recovery acceptance test: train
// with periodic checkpoints, abandon the pipeline mid-run (the process
// "dies" — its in-memory parameters are lost), rebuild from scratch, resume
// from the checkpoint file, and verify bit-exact equivalence with an
// uninterrupted run. Uses the Figure 16 mixed placement so the checkpoint
// carries a device TT table alongside the host tables.
func TestKillAndResumeBitExact(t *testing.T) {
	spec := psSpec()
	d, _ := data.New(spec)
	const steps, batch, every = 40, 32, 10
	ckpt := filepath.Join(t.TempDir(), "train.ckpt")

	locs := func() []TableLoc {
		shape, err := tt.NewShape(spec.TableRows[0], 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		dev := tt.NewTable(shape, tensor.NewRNG(2), 0.05)
		// The fused TT update is hogwild-style by default; bit-exact
		// comparison needs the deterministic single-threaded path.
		dev.Deterministic = true
		return []TableLoc{{Device: dev}, {HostRows: spec.TableRows[1]}}
	}

	clean, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4}, locs())
	if err != nil {
		t.Fatal(err)
	}
	mustTrain(t, clean, d, 0, steps, batch)

	// Run A: checkpoint every 10 steps, "killed" at step 23 via cancel. Its
	// in-memory state is discarded; only the checkpoint file survives.
	ctx, cancel := context.WithCancel(context.Background())
	src := &cancelAtIter{inner: d, at: 23, cancel: cancel}
	a, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4,
		Checkpoint: CheckpointConfig{Path: ckpt, Every: every}}, locs())
	if err != nil {
		t.Fatal(err)
	}
	_, terr := a.Train(ctx, src, 0, steps, batch)
	cancel()
	if !errors.Is(terr, context.Canceled) {
		t.Fatalf("kill run: err = %v", terr)
	}
	if st := a.Stats(); st.Checkpoints == 0 {
		t.Fatal("kill run wrote no checkpoints; test has no power")
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	if _, err := os.Stat(ckpt + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp checkpoint file left behind: %v", err)
	}

	// Run B: fresh pipeline (different seed so the initial state is NOT the
	// same — everything must come from the file), resume and finish.
	b, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 777}, locs())
	if err != nil {
		t.Fatal(err)
	}
	next, err := b.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if next <= 0 || next >= 23 || next%every != 0 {
		t.Fatalf("resume iteration %d, want a multiple of %d below the kill step", next, every)
	}
	mustTrain(t, b, d, next, steps-next, batch)
	assertParamsEqual(t, clean, b, "kill-and-resume vs uninterrupted")
}

// TestCheckpointFailureSurfaces checks that an unwritable checkpoint path
// becomes a typed ErrCheckpointFailed instead of a panic or a silent skip.
func TestCheckpointFailureSurfaces(t *testing.T) {
	spec := psSpec()
	d, _ := data.New(spec)
	bad := filepath.Join(t.TempDir(), "no-such-dir", "train.ckpt")
	for _, depth := range []int{1, 3} {
		p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: depth, Seed: 4,
			Checkpoint: CheckpointConfig{Path: bad, Every: 2}}, allHostLocs(spec))
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Train(context.Background(), d, 0, 10, 32)
		if !errors.Is(err, ErrCheckpointFailed) {
			t.Fatalf("depth %d: err = %v, want ErrCheckpointFailed", depth, err)
		}
		if !res.Resumable {
			t.Fatalf("depth %d: checkpoint write failure leaves memory consistent; must stay resumable: %+v", depth, res)
		}
	}
}

// TestStatsSafeDuringTraining hammers Stats() while Train runs; under
// `go test -race` this is the regression test for the Stats data race.
func TestStatsSafeDuringTraining(t *testing.T) {
	spec := psSpec()
	d, _ := data.New(spec)
	p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4}, allHostLocs(spec))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.Stats()
			}
		}
	}()
	mustTrain(t, p, d, 0, 40, 32)
	close(stop)
	wg.Wait()
	if st := p.Stats(); st.Steps != 40 {
		t.Fatalf("Steps = %d", st.Steps)
	}
}
