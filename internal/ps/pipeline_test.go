package ps

import (
	"context"
	"errors"
	"testing"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/tt"
)

// mustTrain runs Train with a background context and fails the test on any
// error, returning the loss curve.
func mustTrain(t *testing.T, p *Pipeline, d BatchSource, start, steps, batch int) *metrics.LossCurve {
	t.Helper()
	res, err := p.Train(context.Background(), d, start, steps, batch)
	if err != nil {
		t.Fatalf("Train(%d, %d): %v", start, steps, err)
	}
	if res.Completed != steps || res.NextIter != start+steps || !res.Resumable {
		t.Fatalf("Train(%d, %d) result inconsistent: %+v", start, steps, res)
	}
	return res.Curve
}

func psSpec() data.Spec {
	return data.Spec{
		Name: "ps-test", NumDense: 3, TableRows: []int{400, 120},
		ZipfS: 1.2, ZipfV: 2, GroupSize: 16, ActiveGroups: 4, Locality: 0.8,
		Samples: 1 << 20, Seed: 21,
	}
}

func psModelCfg() dlrm.Config {
	return dlrm.Config{
		NumDense:    3,
		EmbDim:      8,
		BottomSizes: []int{12},
		TopSizes:    []int{12},
		LR:          0.5,
		Seed:        9,
	}
}

func allHostLocs(spec data.Spec) []TableLoc {
	locs := make([]TableLoc, len(spec.TableRows))
	for i, r := range spec.TableRows {
		locs[i] = TableLoc{HostRows: r}
	}
	return locs
}

func TestNewPipelineValidation(t *testing.T) {
	spec := psSpec()
	check := func(name string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s accepted", name)
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("%s: error %v does not wrap ErrInvalidConfig", name, err)
		}
	}
	_, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 0}, allHostLocs(spec))
	check("zero queue depth", err)
	_, err = NewPipeline(Config{Model: psModelCfg(), QueueDepth: 1}, nil)
	check("no tables", err)
	_, err = NewPipeline(Config{Model: psModelCfg(), QueueDepth: 1}, []TableLoc{{}})
	check("unplaced table", err)
	shape, _ := tt.NewShape(100, 8, 4)
	dev := tt.NewTable(shape, tensor.NewRNG(1), 0)
	_, err = NewPipeline(Config{Model: psModelCfg(), QueueDepth: 1},
		[]TableLoc{{Device: dev, HostRows: 5}, {HostRows: 10}})
	check("double placement", err)
	_, err = NewPipeline(Config{Model: psModelCfg(), QueueDepth: 1, Checkpoint: CheckpointConfig{Every: 5}}, allHostLocs(spec))
	check("checkpoint interval without path", err)
}

// TestPipelineMatchesSequentialExactly is the central consistency property
// (§V-B): with the embedding cache resolving RAW conflicts, pipelined
// training (queue depth 4) must produce bit-identical parameters to
// sequential training (queue depth 1).
func TestPipelineMatchesSequentialExactly(t *testing.T) {
	spec := psSpec()
	d, err := data.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func(depth int) *Pipeline {
		p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: depth, Seed: 4}, allHostLocs(spec))
		if err != nil {
			t.Fatal(err)
		}
		mustTrain(t, p, d, 0, 60, 64)
		return p
	}
	seq := run(1)
	pipe := run(4)

	// Host tables bit-equal.
	for h := 0; h < seq.NumHostTables(); h++ {
		if d := seq.HostBag(h).Weights.MaxAbsDiff(pipe.HostBag(h).Weights); d != 0 {
			t.Fatalf("host table %d differs by %v between sequential and pipelined", h, d)
		}
	}
	// MLP parameters bit-equal.
	sp, pp := seq.Model().MLPParams(), pipe.Model().MLPParams()
	for i := range sp {
		if d := sp[i].Value.MaxAbsDiff(pp[i].Value); d != 0 {
			t.Fatalf("MLP param %d differs by %v", i, d)
		}
	}
	// The pipelined run must actually have exercised the RAW path.
	if hits := pipe.Stats().CacheHits; hits == 0 {
		t.Fatal("pipelined run never hit the embedding cache; test has no power")
	}
}

func TestPipelineCacheActuallyNeeded(t *testing.T) {
	// The same workload, but with the cache sabotaged (lifecycle so large
	// nothing evicts is fine; instead verify staleness exists by counting
	// hits): consecutive batches share hot rows, so pre-fetching without
	// patching would read stale values. We assert overlap exists.
	spec := psSpec()
	d, _ := data.New(spec)
	p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4}, allHostLocs(spec))
	if err != nil {
		t.Fatal(err)
	}
	mustTrain(t, p, d, 0, 30, 64)
	st := p.Stats()
	if st.CacheHits == 0 {
		t.Fatal("no overlapping rows between in-flight batches; RAW conflict never arises")
	}
	if st.Steps != 30 {
		t.Fatalf("Steps = %d", st.Steps)
	}
	if st.BytesPrefetched == 0 || st.BytesPushed == 0 {
		t.Fatalf("transfer accounting empty: %+v", st)
	}
}

func TestPipelineWithDeviceTTTable(t *testing.T) {
	// Mixed placement: table 0 as Eff-TT on device, table 1 on host
	// (the Figure 16 configuration).
	spec := psSpec()
	d, _ := data.New(spec)
	shape, err := tt.NewShape(spec.TableRows[0], 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	dev := tt.NewTable(shape, tensor.NewRNG(2), 0.05)
	locs := []TableLoc{{Device: dev}, {HostRows: spec.TableRows[1]}}
	p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4}, locs)
	if err != nil {
		t.Fatal(err)
	}
	curve := mustTrain(t, p, d, 0, 120, 64)
	if len(curve.Losses) != 120 {
		t.Fatalf("curve has %d points", len(curve.Losses))
	}
	early := curve.Smoothed(10)[9]
	late := curve.Final(10)
	if late >= early {
		t.Fatalf("mixed-placement pipeline did not reduce loss: %v -> %v", early, late)
	}
	if p.NumHostTables() != 1 {
		t.Fatalf("NumHostTables = %d", p.NumHostTables())
	}
}

func TestPipelineResumesAcrossTrainCalls(t *testing.T) {
	spec := psSpec()
	d, _ := data.New(spec)
	p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 2, Seed: 4}, allHostLocs(spec))
	if err != nil {
		t.Fatal(err)
	}
	mustTrain(t, p, d, 0, 10, 32)
	mustTrain(t, p, d, 10, 10, 32)
	if st := p.Stats(); st.Steps != 20 {
		t.Fatalf("Steps = %d want 20", st.Steps)
	}
}

func TestHostAdapterInferenceOutsideStep(t *testing.T) {
	// Lookup outside a pipeline step serves the host table synchronously
	// (the evaluation path); Update outside a step must still panic.
	spec := psSpec()
	p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 1, Seed: 4}, allHostLocs(spec))
	if err != nil {
		t.Fatal(err)
	}
	out := p.adapters[0].Lookup([]int{1, 1, 3}, []int{0, 2})
	want := p.HostBag(0).Lookup([]int{1, 1, 3}, []int{0, 2})
	if out.MaxAbsDiff(want) != 0 {
		t.Fatal("inference lookup disagrees with host table")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("adapter update outside pipeline step did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrAdapterMisuse) {
			t.Fatalf("recovered %v; want error wrapping ErrAdapterMisuse", r)
		}
	}()
	p.adapters[0].Update([]int{1}, []int{0}, tensor.New(1, 8), 0.1)
}

func TestHostAdapterAccessors(t *testing.T) {
	spec := psSpec()
	p, _ := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 1, Seed: 4}, allHostLocs(spec))
	ad := p.adapters[0]
	if ad.NumRows() != spec.TableRows[0] || ad.Dim() != 8 {
		t.Fatalf("adapter accessors %d, %d", ad.NumRows(), ad.Dim())
	}
	if ad.FootprintBytes() != int64(spec.TableRows[0])*8*4 {
		t.Fatalf("adapter footprint %d", ad.FootprintBytes())
	}
}

func TestPipelineAllDeviceTables(t *testing.T) {
	// No host tables: the pipeline degrades to a plain training loop with
	// empty gather/apply stages.
	spec := psSpec()
	d, _ := data.New(spec)
	locs := make([]TableLoc, len(spec.TableRows))
	for i, r := range spec.TableRows {
		shape, err := tt.NewShape(r, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		locs[i] = TableLoc{Device: tt.NewTable(shape, tensor.NewRNG(uint64(i)+1), 0.05)}
	}
	p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4}, locs)
	if err != nil {
		t.Fatal(err)
	}
	curve := mustTrain(t, p, d, 0, 10, 32)
	if len(curve.Losses) != 10 {
		t.Fatalf("trained %d steps", len(curve.Losses))
	}
	st := p.Stats()
	if st.BytesPrefetched != 0 || st.BytesPushed != 0 {
		t.Fatalf("device-only pipeline moved bytes: %+v", st)
	}
	if p.NumHostTables() != 0 {
		t.Fatalf("NumHostTables = %d", p.NumHostTables())
	}
}

// TestPipelineLookaheadWithDeviceTTBitExact runs the Figure 16 mixed
// placement with lookahead planning: the device table's prefix-cache
// protection set is driven by the window plans, and training must stay
// bit-exact with the non-lookahead schedule (protection changes slot
// recycling, never values; host-side pinning changes gather sources, never
// values).
func TestPipelineLookaheadWithDeviceTTBitExact(t *testing.T) {
	spec := psSpec()
	d, _ := data.New(spec)
	run := func(lookahead int) (*Pipeline, []float64) {
		shape, err := tt.NewShape(spec.TableRows[0], 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		dev := tt.NewTable(shape, tensor.NewRNG(2), 0.05)
		locs := []TableLoc{{Device: dev}, {HostRows: spec.TableRows[1]}}
		p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: 4, Seed: 4, Lookahead: lookahead}, locs)
		if err != nil {
			t.Fatal(err)
		}
		return p, mustTrain(t, p, d, 0, 120, 64).Losses
	}
	base, baseLoss := run(0)
	la, laLoss := run(6)
	for i := range baseLoss {
		if baseLoss[i] != laLoss[i] {
			t.Fatalf("loss diverges at step %d: %v vs %v", i, baseLoss[i], laLoss[i])
		}
	}
	if diff := base.HostBag(0).Weights.MaxAbsDiff(la.HostBag(0).Weights); diff != 0 {
		t.Fatalf("host table differs by %v", diff)
	}
	if st := la.Stats(); st.LookaheadWindows == 0 {
		t.Fatalf("lookahead never advanced: %+v", st)
	}
}

// TestNewPipelineLookaheadValidation: negative knobs are config errors.
func TestNewPipelineLookaheadValidation(t *testing.T) {
	spec := psSpec()
	for _, cfg := range []Config{
		{Model: psModelCfg(), QueueDepth: 1, Lookahead: -1},
		{Model: psModelCfg(), QueueDepth: 1, LookaheadBudget: -1},
	} {
		if _, err := NewPipeline(cfg, allHostLocs(spec)); !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("config %+v: got %v, want ErrInvalidConfig", cfg, err)
		}
	}
}
