package ps

import (
	"testing"
)

func rowsOf(vals ...float32) [][]float32 {
	out := make([][]float32, len(vals))
	for i, v := range vals {
		out[i] = []float32{v, v}
	}
	return out
}

func TestCachePublishLookup(t *testing.T) {
	c := NewCache(2, 3)
	c.Publish([]int{7}, rowsOf(1.5))
	got, ok := c.Lookup(7)
	if !ok || got[0] != 1.5 || got[1] != 1.5 {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	if _, ok := c.Lookup(8); ok {
		t.Fatal("absent row found")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheSyncPatchesOnlyCached(t *testing.T) {
	c := NewCache(2, 3)
	c.Publish([]int{5}, rowsOf(9))
	vals := rowsOf(1, 2)
	patched := c.Sync([]int{5, 6}, vals)
	if patched != 1 {
		t.Fatalf("patched %d rows want 1", patched)
	}
	if vals[0][0] != 9 {
		t.Fatal("cached row not patched")
	}
	if vals[1][0] != 2 {
		t.Fatal("uncached row modified")
	}
	st := c.Stats()
	if st.Syncs != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats syncs=%d hits=%d misses=%d", st.Syncs, st.Hits, st.Misses)
	}
}

func TestCacheTickEvicts(t *testing.T) {
	c := NewCache(2, 2)
	c.Publish([]int{1}, rowsOf(1))
	c.Tick()
	if c.Len() != 1 {
		t.Fatal("evicted too early")
	}
	c.Tick()
	if c.Len() != 0 {
		t.Fatal("not evicted at LC=0")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d", ev)
	}
}

func TestCachePublishResetsLC(t *testing.T) {
	c := NewCache(2, 2)
	c.Publish([]int{1}, rowsOf(1))
	c.Tick()
	c.Publish([]int{1}, rowsOf(5)) // re-train: LC reset
	c.Tick()
	if c.Len() != 1 {
		t.Fatal("re-published row evicted prematurely")
	}
	got, _ := c.Lookup(1)
	if got[0] != 5 {
		t.Fatal("re-publish did not overwrite value")
	}
}

func TestCacheDecrementTargeted(t *testing.T) {
	c := NewCache(2, 1)
	c.Publish([]int{1, 2}, rowsOf(1, 2))
	c.Decrement([]int{1, 99}) // 99 absent: no-op
	if _, ok := c.Lookup(1); ok {
		t.Fatal("row 1 should be evicted")
	}
	if _, ok := c.Lookup(2); !ok {
		t.Fatal("row 2 should remain")
	}
}

func TestCacheValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(0, 1) },
		func() { NewCache(2, 0) },
		func() { NewCache(2, 1).Sync([]int{1}, nil) },
		func() { NewCache(2, 1).Publish([]int{1}, [][]float32{{1}}) }, // wrong dim
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid cache call did not panic")
				}
			}()
			f()
		}()
	}
}
