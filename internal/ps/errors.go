package ps

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/faults"
)

// Typed errors of the pipeline trainer. Callers distinguish the failing
// stage with errors.Is; the concrete cause (an injected fault, a recovered
// panic, an I/O error from a checkpoint write) stays on the wrap chain.
var (
	// ErrInvalidConfig reports a malformed pipeline configuration or table
	// placement.
	ErrInvalidConfig = errors.New("ps: invalid config")

	// ErrGatherFailed reports a parameter-server gather that failed after
	// exhausting its retries. Training state is consistent: the failed
	// batch never reached the worker.
	ErrGatherFailed = errors.New("ps: gather failed")

	// ErrApplyFailed reports a gradient apply that failed after exhausting
	// its retries. The worker has already trained on batches whose host
	// updates were lost, so state is NOT resumable in place — restore from
	// a checkpoint.
	ErrApplyFailed = errors.New("ps: apply failed")

	// ErrWorkerFault reports a worker-side failure (a recovered panic)
	// during a training step.
	ErrWorkerFault = errors.New("ps: worker fault")

	// ErrAdapterMisuse reports a host-table adapter invariant violation:
	// an update outside a pipeline step, or a step that never delivered
	// the adapter its gradient.
	ErrAdapterMisuse = errors.New("ps: host adapter misuse")

	// ErrCheckpointFailed reports a periodic checkpoint write failure.
	ErrCheckpointFailed = errors.New("ps: checkpoint failed")

	// ErrPipelineFault reports a panic recovered at the root of a pipeline
	// goroutine — outside the per-operation recover boundaries of
	// gatherBatch/applyPush/trainOne. State is not resumable in place.
	ErrPipelineFault = errors.New("ps: pipeline goroutine fault")

	// ErrStoreUnavailable reports that a host table's backing store (e.g. a
	// remote parameter-server shard) could not serve a synchronous lookup
	// outside a pipeline step.
	ErrStoreUnavailable = errors.New("ps: host store unavailable")

	// ErrLookaheadMiss reports a broken lookahead invariant: a batch asked
	// the cache for a row the window plan pinned, but the entry was absent.
	// The plan only pins rows published by an earlier batch of the same
	// window and SyncWindow never evicts an entry before its promised use,
	// so this indicates a planner or cache bug, not a recoverable condition.
	ErrLookaheadMiss = errors.New("ps: lookahead pinned row missing from cache")
)

// PanicError carries a panic recovered in a pipeline goroutine, converted
// to an error so a worker or server fault surfaces from Train instead of
// deadlocking the queues.
type PanicError struct {
	Value any    // the recovered value
	Stack []byte // stack at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("ps: recovered panic: %v", e.Value)
}

// Unwrap exposes the panic value's error chain when the panic carried an
// error (the adapter invariants panic with typed errors).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// recoveredErr converts a recovered panic value into an error. Injected
// faults travel as panics through the worker path on purpose (to exercise
// this machinery) and come back out as themselves; anything else is wrapped
// in a PanicError with the stack preserved.
func recoveredErr(r any) error {
	if err, ok := r.(error); ok && errors.Is(err, faults.ErrInjected) {
		return err
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}
