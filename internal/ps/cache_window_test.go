package ps

import (
	"errors"
	"testing"
)

// syncWin drives SyncWindow with per-call literal slices; out receives the
// patched rows.
func syncWin(t *testing.T, c *Cache, applied, iter int, ids []int, out [][]float32, fresh []bool, next []int32) int {
	t.Helper()
	patched, err := c.SyncWindow(applied, iter, ids, out, fresh, next)
	if err != nil {
		t.Fatalf("SyncWindow(applied=%d, iter=%d): %v", applied, iter, err)
	}
	return patched
}

// TestCacheSyncWindowServesPinned: a row published with a future next-use
// hint is served to a batch that skipped the host gather (fresh=false), and
// serving adopts the batch's own hint for the entry.
func TestCacheSyncWindowServesPinned(t *testing.T) {
	c := NewCache(2, 4)
	c.PublishWindow([]int{7}, rowsOf(42), 0, []int32{3})

	out := rowsOf(0)
	patched := syncWin(t, c, 0, 3, []int{7}, out, []bool{false}, []int32{-1})
	if patched != 1 || out[0][0] != 42 {
		t.Fatalf("pinned serve: patched=%d value=%v, want 1 row of 42s", patched, out[0])
	}
}

// TestCacheSyncWindowMissIsError: a pinned row with no cache entry is an
// invariant violation surfaced as ErrLookaheadMiss, not a silent zero row.
func TestCacheSyncWindowMissIsError(t *testing.T) {
	c := NewCache(2, 4)
	_, err := c.SyncWindow(0, 5, []int{9}, rowsOf(0), []bool{false}, []int32{-1})
	if !errors.Is(err, ErrLookaheadMiss) {
		t.Fatalf("got %v, want ErrLookaheadMiss", err)
	}
	// A fresh row's absence is an ordinary miss, not an error.
	if _, err := c.SyncWindow(0, 5, []int{9}, rowsOf(0), []bool{true}, []int32{-1}); err != nil {
		t.Fatalf("fresh miss errored: %v", err)
	}
}

// TestCacheSyncWindowOracleEviction is the Belady-style sweep table: an
// entry is evicted exactly when its push is host-visible AND the plan
// promises no use after the batch being served. Farthest-future entries
// survive; no-future entries go as under plain push visibility.
func TestCacheSyncWindowOracleEviction(t *testing.T) {
	cases := []struct {
		name        string
		push        int   // entry's gradient-push iteration
		nextUse     int32 // entry's retention hint
		applied     int   // host-visible pushes at sync time
		iter        int   // batch being served
		wantEvicted bool
	}{
		{"push not visible: retained regardless of hint", 5, -1, 5, 9, false},
		{"visible, no future use: evicted (SyncAt rule)", 5, -1, 6, 9, true},
		{"visible, next use is this batch: served then evicted", 5, 9, 6, 9, true},
		{"visible, next use in the future: retained", 5, 12, 6, 9, false},
		{"visible, farthest next use: retained", 5, 100, 6, 9, false},
		{"visible, hint already behind the batch: evicted", 5, 8, 6, 9, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCache(2, 4)
			c.PublishWindow([]int{1}, rowsOf(11), tc.push, []int32{tc.nextUse})
			// Sync an unrelated fresh row so the sweep runs without serving
			// (and thus rewriting the hint of) row 1.
			syncWin(t, c, tc.applied, tc.iter, []int{2}, rowsOf(0), []bool{true}, []int32{-1})
			if _, ok := c.Lookup(1); ok == tc.wantEvicted {
				t.Fatalf("entry present=%v, want evicted=%v", ok, tc.wantEvicted)
			}
		})
	}
}

// TestCacheSyncWindowEdgeExpiry covers the window boundary: a pin whose last
// reference is the window's final batch is served there with a -1 hint and
// swept in the same call — the entry expires exactly at the window edge,
// leaving nothing for the next window (whose plan gathers the row fresh).
func TestCacheSyncWindowEdgeExpiry(t *testing.T) {
	const edge = 7
	c := NewCache(2, 4)
	c.PublishWindow([]int{3}, rowsOf(30), 4, []int32{edge})

	// Before the edge, host visibility alone must not evict the pin.
	syncWin(t, c, 6, 6, []int{8}, rowsOf(0), []bool{true}, []int32{-1})
	if _, ok := c.Lookup(3); !ok {
		t.Fatal("pinned entry evicted before its promised use")
	}

	// The edge batch serves the pin (fresh=false) and hints -1: no further
	// in-window use, so the same call's sweep drops the entry.
	out := rowsOf(0)
	patched := syncWin(t, c, 6, edge, []int{3}, out, []bool{false}, []int32{-1})
	if patched != 1 || out[0][0] != 30 {
		t.Fatalf("edge serve: patched=%d value=%v, want 1 row of 30s", patched, out[0])
	}
	if _, ok := c.Lookup(3); ok {
		t.Fatal("entry survived past the window edge with no future reference")
	}
}

// TestCacheSyncWindowChainedPromises: serving a pinned row with a further
// future hint re-arms its protection — a row used in three batches of one
// window rides the cache through all of them on one gather.
func TestCacheSyncWindowChainedPromises(t *testing.T) {
	c := NewCache(2, 4)
	c.PublishWindow([]int{5}, rowsOf(50), 0, []int32{2})

	// Batch 2 serves the pin and promises batch 4.
	syncWin(t, c, 1, 2, []int{5}, rowsOf(0), []bool{false}, []int32{4})
	if _, ok := c.Lookup(5); !ok {
		t.Fatal("re-armed pin evicted")
	}
	// Batch 3 does not use the row; the sweep must still honor the new hint.
	syncWin(t, c, 1, 3, []int{6}, rowsOf(0), []bool{true}, []int32{-1})
	if _, ok := c.Lookup(5); !ok {
		t.Fatal("re-armed pin evicted by an intervening batch")
	}
	// Batch 4 consumes the final promise.
	out := rowsOf(0)
	if p := syncWin(t, c, 1, 4, []int{5}, out, []bool{false}, []int32{-1}); p != 1 || out[0][0] != 50 {
		t.Fatalf("final serve: patched=%d value=%v, want 1 row of 50s", p, out[0])
	}
}

// TestCachePublishWindowValidation: mismatched id/row/hint lengths panic
// like the other publish paths.
func TestCachePublishWindowValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(2, 1).PublishWindow([]int{1}, rowsOf(1), 0, nil) },
		func() { NewCache(2, 1).PublishWindow([]int{1}, nil, 0, []int32{-1}) },
		func() { NewCache(2, 1).PublishWindow([]int{1}, [][]float32{{1}}, 0, []int32{-1}) }, // wrong dim
		func() { NewCache(2, 1).SyncWindow(0, 0, []int{1}, rowsOf(0), nil, []int32{-1}) },   //nolint:errcheck
		func() { NewCache(2, 1).SyncWindow(0, 0, []int{1}, rowsOf(0), []bool{true}, nil) },  //nolint:errcheck
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid window call did not panic")
				}
			}()
			f()
		}()
	}
}

// TestCachePublishAtClearsHint: republishing a row through a non-lookahead
// path resets its retention hint, so stale promises from an earlier window
// cannot outlive a mode switch.
func TestCachePublishAtClearsHint(t *testing.T) {
	c := NewCache(2, 4)
	c.PublishWindow([]int{1}, rowsOf(10), 0, []int32{50})
	c.PublishAt([]int{1}, rowsOf(11), 1)
	// Push visible, hint cleared: plain sweep evicts.
	syncWin(t, c, 2, 0, []int{2}, rowsOf(0), []bool{true}, []int32{-1})
	if _, ok := c.Lookup(1); ok {
		t.Fatal("PublishAt left a stale lookahead hint protecting the entry")
	}
}
