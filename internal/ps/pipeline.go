package ps

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/embedding"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Logical trace-thread ids for the three pipeline stages (Figure 9). The
// exported Chrome trace shows each stage on its own track, so the
// gather/train/apply overlap is visible at a glance.
const (
	tidPrefetch = 1
	tidWorker   = 2
	tidApply    = 3
)

// BatchSource produces training batches; data.Dataset satisfies it, and the
// core package wraps it with the index-reordering bijection.
type BatchSource interface {
	Batch(iter, size int) *data.Batch
}

// TableLoc places one embedding table: resident on the device (Device
// non-nil — typically an Eff-TT table in HBM), in local host memory
// (HostRows > 0 — served by the in-process parameter server), or behind a
// custom HostStore (Store non-nil — e.g. a distps remote-shard client; the
// pipeline drives it through the same gather/push machinery).
type TableLoc struct {
	Device   dlrm.Table
	HostRows int
	Store    HostStore
}

// RetryPolicy bounds how transient gather/apply faults are retried: capped
// exponential backoff starting at BaseDelay, doubling per attempt up to
// MaxDelay, for at most MaxRetries retries after the first attempt.
type RetryPolicy struct {
	MaxRetries int
	BaseDelay  time.Duration
	MaxDelay   time.Duration

	// Sleep overrides the backoff sleep; tests install a recorder so a
	// heavily faulted run still finishes in microseconds. Nil uses a real
	// timer.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the production policy: 3 retries, 1ms→50ms backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

// withDefaults fills zero fields.
func (r RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if r.MaxRetries <= 0 {
		r.MaxRetries = d.MaxRetries
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = d.BaseDelay
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = d.MaxDelay
	}
	return r
}

// delay is the backoff before retry `attempt` (0-based), capped at MaxDelay.
func (r RetryPolicy) delay(attempt int) time.Duration {
	if attempt > 30 {
		return r.MaxDelay
	}
	d := r.BaseDelay << uint(attempt)
	if d <= 0 || d > r.MaxDelay {
		d = r.MaxDelay
	}
	return d
}

// CheckpointConfig enables periodic atomic checkpoints during Train: the
// full training state (MLP, device tables, host tables, optimizer state,
// iteration counter) is written to Path via write-temp-then-rename whenever
// the completed iteration count is a multiple of Every. Zero values disable
// checkpointing.
type CheckpointConfig struct {
	Path  string
	Every int

	// Coordinate, when set, runs at the checkpoint drain barrier immediately
	// before the local state file is written. The distributed trainer uses it
	// to commit every remote shard's checkpoint at the same version first, so
	// the local file's existence implies the remote versions are durable (the
	// local write is the commit point). An error aborts the checkpoint; the
	// local file keeps its previous version.
	Coordinate func(nextIter int) error
}

// Config configures a pipeline trainer.
type Config struct {
	Model dlrm.Config
	// QueueDepth is the capacity of the pre-fetch and gradient queues.
	// Depth 1 degrades the pipeline to sequential execution (the EL-Rec
	// (Sequential) baseline of Figure 16).
	QueueDepth int
	Seed       uint64

	// Faults injects deterministic failures into the gather/apply/worker
	// paths; nil (production) injects nothing.
	Faults faults.Injector

	// Retry bounds transient-fault retries; zero fields take defaults.
	Retry RetryPolicy

	// Checkpoint enables periodic crash-consistent checkpoints.
	Checkpoint CheckpointConfig

	// Metrics, when non-nil, exposes the pipeline's counters under ps_*
	// names (the pipeline owns the instruments; the registry adopts them,
	// so Stats() and a /metrics snapshot read the same values). Nil skips
	// registration; Stats() works either way.
	Metrics *obs.Registry

	// Trace, when non-nil, records gather/train/apply/push/checkpoint
	// stage spans plus stall/backoff intervals and retry markers for
	// Chrome trace export. Nil disables tracing at near-zero cost.
	Trace *obs.Tracer

	// Clock supplies timestamps for all stage timing; nil uses the system
	// clock. Tests inject a manual clock to make timing deterministic.
	Clock obs.Clock
}

// Stats aggregates pipeline counters for the experiment harness: the byte
// counts become simulated PCIe time under the hw model.
type Stats struct {
	Steps           int
	BytesPrefetched int64 // host → device embedding rows
	BytesPushed     int64 // device → host gradients
	CacheSyncs      int64
	CacheHits       int64
	CacheMisses     int64
	CacheEvictions  int64

	// Wall-time split for the hw cost model: GatherTime and ApplyTime are
	// host-side parameter-server work, TrainTime is worker-side compute,
	// and AdapterTime is the share of TrainTime spent pooling and
	// aggregating host-table rows (CPU-side work in the PS architecture).
	GatherTime  time.Duration
	ApplyTime   time.Duration
	TrainTime   time.Duration
	AdapterTime time.Duration

	// Fault-tolerance counters: transient faults injected into this run,
	// retries performed, time spent in retry backoff and in injected
	// slow-server stalls, and checkpoints written.
	InjectedFaults int64
	Retries        int64
	BackoffTime    time.Duration
	StallTime      time.Duration
	Checkpoints    int64
}

// TrainResult is what Train hands back, on success and on failure alike: a
// (possibly partial) loss curve and where a resumed run should pick up.
type TrainResult struct {
	Curve *metrics.LossCurve
	// Completed counts fully trained iterations in this call.
	Completed int
	// NextIter is the first iteration NOT reflected in the trained
	// parameters — pass it as startIter to continue, or persist it in a
	// checkpoint. It is -1 when Resumable is false.
	NextIter int
	// Resumable reports whether the in-memory parameters are consistent
	// (every trained batch fully applied to host tables). Cancellation,
	// gather failures and injected worker faults drain cleanly and stay
	// resumable; an exhausted apply retry or a mid-step panic does not —
	// restore from a checkpoint instead.
	Resumable bool
}

// hostBatch is one pre-fetch queue element: the training batch plus the
// gathered unique host-table rows.
type hostBatch struct {
	iter  int
	batch *data.Batch
	rows  []hostRows // one per host table, in host-table order
	// gathered is a lower bound on the number of gradient pushes that were
	// visible in the host tables when the rows were read; the cache uses it
	// to decide which published entries the gathered values already cover.
	gathered int64
}

// hostRows carries the unique rows of one host table for one batch.
type hostRows struct {
	uniq    []int
	inverse []int
	values  *tensor.Matrix // len(uniq) × dim
}

// gradPush is one gradient queue element.
type gradPush struct {
	iter  int
	rows  []gradRows
	donec chan struct{} // closed once handled (used for drain barriers)
}

type gradRows struct {
	uniq  []int
	grads *tensor.Matrix // aggregated per unique row
}

// Pipeline trains a DLRM whose embedding layer is split between device
// tables and host-memory tables behind a parameter server, overlapping the
// server-side gather/update with worker compute (Figure 9).
type Pipeline struct {
	cfg    Config
	retry  RetryPolicy
	model  *dlrm.Model
	caches []*Cache

	hostBags []*embedding.Bag // local parameter-server state; guarded by hostMu (per-table); nil entry = remote store
	hostMu   []sync.RWMutex
	hostIdx  []int // host table order -> model table position
	stores   []HostStore
	adapters []*hostAdapter

	// applied counts gradient pushes fully scattered into the host tables.
	// The gather side reads it before touching any table, so it is a safe
	// lower bound on host freshness (see hostBatch.gathered).
	applied atomic.Int64
	// trained counts batches fully trained on this pipeline; it is the
	// ordinal (push tag) of the batch currently in the worker, in the same
	// counting space as applied, which keeps cache-entry expiry consistent
	// across Train calls and checkpoint restores.
	trained atomic.Int64

	clock  obs.Clock   // timestamp source for all stage timing; never nil
	tracer *obs.Tracer // stage-span recorder; nil disables tracing

	// m holds the pipeline-owned instruments behind Stats(). Counter
	// updates are atomic, so writers on three goroutines need no lock and
	// Stats() is safe to call while Train runs.
	m pipelineMetrics
}

// pipelineMetrics are the instruments behind Stats(), owned by the pipeline
// and (when Config.Metrics is set) adopted by the registry under the ps_*
// names in registerMetrics. Durations accumulate as nanoseconds.
type pipelineMetrics struct {
	steps           obs.Counter
	bytesPrefetched obs.Counter
	bytesPushed     obs.Counter

	gatherNS  obs.Counter
	applyNS   obs.Counter
	trainNS   obs.Counter
	adapterNS obs.Counter

	injectedFaults obs.Counter
	retries        obs.Counter
	backoffNS      obs.Counter
	stallNS        obs.Counter

	checkpoints       obs.Counter
	checkpointWriteNS obs.Counter
	checkpointBytes   obs.Counter

	cacheSyncs     obs.Counter
	cacheHits      obs.Counter
	cacheMisses    obs.Counter
	cacheEvictions obs.Counter
}

// registerMetrics adopts the pipeline's instruments into r (no-op when r is
// nil), so a /metrics snapshot and Stats() read identical values without
// double counting.
func (p *Pipeline) registerMetrics(r *obs.Registry) {
	r.RegisterCounter("ps_steps", &p.m.steps)
	r.RegisterCounter("ps_bytes_prefetched", &p.m.bytesPrefetched)
	r.RegisterCounter("ps_bytes_pushed", &p.m.bytesPushed)
	r.RegisterCounter("ps_gather_ns", &p.m.gatherNS)
	r.RegisterCounter("ps_apply_ns", &p.m.applyNS)
	r.RegisterCounter("ps_train_ns", &p.m.trainNS)
	r.RegisterCounter("ps_adapter_ns", &p.m.adapterNS)
	r.RegisterCounter("ps_injected_faults", &p.m.injectedFaults)
	r.RegisterCounter("ps_retries", &p.m.retries)
	r.RegisterCounter("ps_backoff_ns", &p.m.backoffNS)
	r.RegisterCounter("ps_stall_ns", &p.m.stallNS)
	r.RegisterCounter("ps_checkpoints", &p.m.checkpoints)
	r.RegisterCounter("ps_checkpoint_write_ns", &p.m.checkpointWriteNS)
	r.RegisterCounter("ps_checkpoint_bytes", &p.m.checkpointBytes)
	r.RegisterCounter("ps_cache_syncs", &p.m.cacheSyncs)
	r.RegisterCounter("ps_cache_hits", &p.m.cacheHits)
	r.RegisterCounter("ps_cache_misses", &p.m.cacheMisses)
	r.RegisterCounter("ps_cache_evictions", &p.m.cacheEvictions)
}

// NewPipeline builds the trainer. locs must list every embedding table in
// dataset order.
//
//elrec:locked hostMu construction: the pipeline is unpublished until NewPipeline returns
func NewPipeline(cfg Config, locs []TableLoc) (*Pipeline, error) {
	if cfg.QueueDepth <= 0 {
		return nil, fmt.Errorf("%w: queue depth %d must be positive", ErrInvalidConfig, cfg.QueueDepth)
	}
	if cfg.Model.EmbDim <= 0 {
		return nil, fmt.Errorf("%w: embedding dim %d must be positive", ErrInvalidConfig, cfg.Model.EmbDim)
	}
	if len(locs) == 0 {
		return nil, fmt.Errorf("%w: no tables", ErrInvalidConfig)
	}
	if cfg.Checkpoint.Every < 0 || (cfg.Checkpoint.Every > 0 && cfg.Checkpoint.Path == "") {
		return nil, fmt.Errorf("%w: checkpoint interval %d without a path", ErrInvalidConfig, cfg.Checkpoint.Every)
	}
	p := &Pipeline{cfg: cfg, retry: cfg.Retry.withDefaults(), clock: obs.OrSystem(cfg.Clock), tracer: cfg.Trace}
	p.registerMetrics(cfg.Metrics)
	tables := make([]dlrm.Table, len(locs))
	for i, loc := range locs {
		placements := 0
		for _, set := range []bool{loc.Device != nil, loc.HostRows > 0, loc.Store != nil} {
			if set {
				placements++
			}
		}
		if placements > 1 {
			return nil, fmt.Errorf("%w: table %d has more than one placement", ErrInvalidConfig, i)
		}
		switch {
		case loc.Device != nil:
			tables[i] = loc.Device
		case loc.HostRows > 0 || loc.Store != nil:
			slot := len(p.stores)
			var store HostStore
			var bag *embedding.Bag
			if loc.Store != nil {
				if loc.Store.Dim() != cfg.Model.EmbDim {
					return nil, fmt.Errorf("%w: table %d store dim %d, model dim %d", ErrInvalidConfig, i, loc.Store.Dim(), cfg.Model.EmbDim)
				}
				store = loc.Store
			} else {
				bag = embedding.NewBag(loc.HostRows, cfg.Model.EmbDim, tensor.NewRNG(cfg.Seed+uint64(i)*104729))
				store = &localStore{p: p, slot: slot, rows: loc.HostRows, dim: cfg.Model.EmbDim}
			}
			cache := NewCache(cfg.Model.EmbDim, 2*cfg.QueueDepth+2)
			cache.attachCounters(&p.m.cacheSyncs, &p.m.cacheHits, &p.m.cacheMisses, &p.m.cacheEvictions)
			ad := &hostAdapter{pipeline: p, slot: slot, rows: store.NumRows(), dim: cfg.Model.EmbDim, lr: cfg.Model.LR}
			p.hostBags = append(p.hostBags, bag)
			p.stores = append(p.stores, store)
			p.caches = append(p.caches, cache)
			p.hostIdx = append(p.hostIdx, i)
			p.adapters = append(p.adapters, ad)
			tables[i] = ad
		default:
			return nil, fmt.Errorf("%w: table %d has no placement", ErrInvalidConfig, i)
		}
	}
	p.hostMu = make([]sync.RWMutex, len(p.hostBags))
	model, err := dlrm.NewModel(cfg.Model, tables)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	p.model = model
	return p, nil
}

// Model exposes the underlying model (for evaluation).
func (p *Pipeline) Model() *dlrm.Model { return p.model }

// Stats returns a snapshot of the accumulated counters (cache counters
// summed over tables). Safe to call concurrently with Train: each counter
// is read atomically, though the set is not a global atomic cut.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Steps:           int(p.m.steps.Value()),
		BytesPrefetched: p.m.bytesPrefetched.Value(),
		BytesPushed:     p.m.bytesPushed.Value(),
		CacheSyncs:      p.m.cacheSyncs.Value(),
		CacheHits:       p.m.cacheHits.Value(),
		CacheMisses:     p.m.cacheMisses.Value(),
		CacheEvictions:  p.m.cacheEvictions.Value(),
		GatherTime:      time.Duration(p.m.gatherNS.Value()),
		ApplyTime:       time.Duration(p.m.applyNS.Value()),
		TrainTime:       time.Duration(p.m.trainNS.Value()),
		AdapterTime:     time.Duration(p.m.adapterNS.Value()),
		InjectedFaults:  p.m.injectedFaults.Value(),
		Retries:         p.m.retries.Value(),
		BackoffTime:     time.Duration(p.m.backoffNS.Value()),
		StallTime:       time.Duration(p.m.stallNS.Value()),
		Checkpoints:     p.m.checkpoints.Value(),
	}
}

// NumHostTables returns how many tables live in host memory.
//
//elrec:locked hostMu placement is immutable after NewPipeline; only the slice length is read
func (p *Pipeline) NumHostTables() int { return len(p.hostBags) }

// HostBag exposes host table i (for tests and post-training inspection).
//
//elrec:locked hostMu caller synchronizes: test/evaluation hook, never raced against Train
func (p *Pipeline) HostBag(i int) *embedding.Bag { return p.hostBags[i] }

// tidForOp maps a fault-injection site to the trace thread of the pipeline
// stage it runs on.
func tidForOp(op faults.Op) int {
	switch op {
	case faults.OpGather:
		return tidPrefetch
	case faults.OpApply:
		return tidApply
	}
	return tidWorker
}

// injectFault consults the configured injector for one attempt. Stalls are
// served in place (the operation proceeds after the delay); transient
// faults are counted and returned for the retry loop.
func (p *Pipeline) injectFault(op faults.Op, iter, attempt int) error {
	if p.cfg.Faults == nil {
		return nil
	}
	err := p.cfg.Faults.Fault(op, iter, attempt)
	if err == nil {
		return nil
	}
	var stall *faults.Stall
	if errors.As(err, &stall) {
		p.m.stallNS.Add(int64(stall.D))
		sp := p.tracer.Begin("stall", "fault", tidForOp(op))
		p.sleep(stall.D)
		sp.End()
		return nil
	}
	p.m.injectedFaults.Inc()
	p.tracer.Instant("fault", "fault", tidForOp(op))
	return err
}

// sleep waits for d via the retry policy's hook (or a real sleep).
func (p *Pipeline) sleep(d time.Duration) {
	if p.retry.Sleep != nil {
		p.retry.Sleep(d)
		return
	}
	time.Sleep(d)
}

// backoff records and serves the delay before retry `attempt`, traced as a
// backoff span on stage thread tid. A non-nil ctx aborts the wait on
// cancellation (used on the gather side; the apply side passes nil because
// pending gradients must land even during a cancelled drain).
func (p *Pipeline) backoff(ctx context.Context, tid, attempt int) error {
	d := p.retry.delay(attempt)
	p.m.retries.Inc()
	p.m.backoffNS.Add(int64(d))
	p.tracer.Instant("retry", "fault", tid)
	sp := p.tracer.Begin("backoff", "fault", tid)
	defer sp.End()
	if p.retry.Sleep != nil {
		p.retry.Sleep(d)
	} else if ctx == nil {
		time.Sleep(d)
	} else {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// gather assembles the pre-fetch payload for one batch: the unique rows of
// every host table, read from its store (the server-side embedding lookup
// of the PS architecture — an in-process bag under a lock, or a remote
// shard fan-out).
func (p *Pipeline) gather(iter int, b *data.Batch) (*hostBatch, error) {
	start := p.clock.Now()
	sp := p.tracer.Begin("gather", "ps", tidPrefetch)
	defer func() {
		sp.End()
		p.m.gatherNS.Add(int64(obs.Since(p.clock, start)))
	}()
	hb := &hostBatch{iter: iter, batch: b, rows: make([]hostRows, len(p.stores)), gathered: p.applied.Load()}
	for h, pos := range p.hostIdx {
		uniq, inverse := embedding.Unique(b.Sparse[pos])
		values, err := p.stores[h].GatherRows(uniq)
		if err != nil {
			return nil, fmt.Errorf("host table %d: %w", h, err)
		}
		hb.rows[h] = hostRows{uniq: uniq, inverse: inverse, values: values}
	}
	return hb, nil
}

// gatherBatch is the fault-tolerant gather: it generates the batch, retries
// injected transient faults with capped backoff, and converts panics from
// the data or embedding layers into errors so a faulty pre-fetcher cannot
// wedge the pipeline.
func (p *Pipeline) gatherBatch(ctx context.Context, d BatchSource, iter, batchSize int) (hb *hostBatch, err error) {
	defer func() {
		if r := recover(); r != nil {
			hb, err = nil, fmt.Errorf("%w: iter %d: %w", ErrGatherFailed, iter, recoveredErr(r))
		}
	}()
	b := d.Batch(iter, batchSize)
	for attempt := 0; ; attempt++ {
		ferr := p.injectFault(faults.OpGather, iter, attempt)
		if ferr == nil {
			hb, gerr := p.gather(iter, b)
			if gerr == nil {
				return hb, nil
			}
			// A failed store gather is retryable in place: reads have no
			// side effects, so the same attempt loop that absorbs injected
			// faults also rides out transient remote-store outages.
			ferr = gerr
		}
		if attempt >= p.retry.MaxRetries {
			return nil, fmt.Errorf("%w: iter %d after %d attempts: %w", ErrGatherFailed, iter, attempt+1, ferr)
		}
		if berr := p.backoff(ctx, tidPrefetch, attempt); berr != nil {
			return nil, fmt.Errorf("%w: iter %d: %w", ErrGatherFailed, iter, berr)
		}
	}
}

// apply is the server side of the gradient queue: scatter −lr·grad into the
// host tables, then advance the applied-push counter that retires cache
// entries (their life cycle ends once the host copy is provably visible to
// gathers).
func (p *Pipeline) apply(g *gradPush) error {
	start := p.clock.Now()
	sp := p.tracer.Begin("apply", "ps", tidApply)
	defer func() {
		sp.End()
		p.m.applyNS.Add(int64(obs.Since(p.clock, start)))
	}()
	for h, gr := range g.rows {
		if len(gr.uniq) == 0 {
			continue
		}
		delta := gr.grads.Clone()
		tensor.Scale(-p.cfg.Model.LR, delta.Data)
		if err := p.stores[h].ApplyDelta(gr.uniq, delta); err != nil {
			// The push may have landed on some tables (or shards) but not
			// others; the caller reports training state as torn rather than
			// re-applying (a blind retry would double-count whatever did
			// land — the store's own transport retries are deduplicated,
			// this level's are not).
			return fmt.Errorf("host table %d: %w", h, err)
		}
	}
	// Incremented only after every table absorbed the push, so a gather that
	// reads the counter first can never overstate host freshness.
	p.applied.Add(1)
	return nil
}

// applyPush is the fault-tolerant apply: transient faults retry with
// backoff (never aborted by cancellation — a cancelled drain still has to
// land every pending gradient), panics become errors, and g.donec is
// always closed so drain barriers cannot hang.
func (p *Pipeline) applyPush(g *gradPush) (err error) {
	defer close(g.donec)
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: iter %d: %w", ErrApplyFailed, g.iter, recoveredErr(r))
		}
	}()
	for attempt := 0; ; attempt++ {
		ferr := p.injectFault(faults.OpApply, g.iter, attempt)
		if ferr == nil {
			if aerr := p.apply(g); aerr != nil {
				return fmt.Errorf("%w: iter %d: %w", ErrApplyFailed, g.iter, aerr)
			}
			return nil
		}
		if attempt >= p.retry.MaxRetries {
			return fmt.Errorf("%w: iter %d after %d attempts: %w", ErrApplyFailed, g.iter, attempt+1, ferr)
		}
		p.backoff(nil, tidApply, attempt)
	}
}

// trainOne runs the worker side for one pre-fetched batch: cache-sync the
// pre-fetched rows (Step 1 of Figure 9), run forward/backward (the adapters
// capture host-table gradients), and return the gradient push. Panics —
// injected worker faults and genuine model faults alike — are converted to
// errors so a crashing worker cannot deadlock the queues.
func (p *Pipeline) trainOne(hb *hostBatch) (loss float32, push *gradPush, err error) {
	defer func() {
		if r := recover(); r != nil {
			loss, push = 0, nil
			err = fmt.Errorf("%w: iter %d: %w", ErrWorkerFault, hb.iter, recoveredErr(r))
		}
		if err != nil {
			for _, ad := range p.adapters {
				ad.current, ad.pending = nil, nil
			}
		}
	}()
	if p.cfg.Faults != nil {
		if ferr := p.cfg.Faults.Fault(faults.OpWorker, hb.iter, 0); ferr != nil {
			p.m.injectedFaults.Inc()
			p.tracer.Instant("fault", "fault", tidWorker)
			// Injected worker faults travel as panics on purpose: they are
			// raised here, before any model state is touched, and exercise
			// the same recover path that protects the queues from a real
			// worker crash.
			//elrec:invariant injected fault: deliberately exercises trainOne's recover boundary
			panic(ferr)
		}
	}
	start := p.clock.Now()
	sp := p.tracer.Begin("train", "ps", tidWorker)
	defer func() {
		sp.End()
		p.m.trainNS.Add(int64(obs.Since(p.clock, start)))
	}()
	var prefetched int64
	for h := range hb.rows {
		rows := make([][]float32, len(hb.rows[h].uniq))
		for i := range rows {
			rows[i] = hb.rows[h].values.Row(i)
		}
		p.caches[h].SyncAt(int(hb.gathered), hb.rows[h].uniq, rows)
		prefetched += int64(len(rows)) * int64(p.cfg.Model.EmbDim) * 4
	}
	p.m.bytesPrefetched.Add(prefetched)
	for h, ad := range p.adapters {
		ad.current = &hb.rows[h]
		ad.pending = nil
	}
	loss = p.model.TrainStep(hb.batch)
	push = &gradPush{iter: hb.iter, rows: make([]gradRows, len(p.adapters)), donec: make(chan struct{})}
	var pushed int64
	for h, ad := range p.adapters {
		if ad.pending == nil {
			return 0, nil, fmt.Errorf("%w: host table %d did not receive an update at iter %d", ErrAdapterMisuse, h, hb.iter)
		}
		push.rows[h] = *ad.pending
		pushed += int64(len(ad.pending.uniq)) * int64(p.cfg.Model.EmbDim) * 4
		ad.current, ad.pending = nil, nil
	}
	p.m.bytesPushed.Add(pushed)
	p.trained.Add(1)
	return loss, push, nil
}

// checkpointDue reports whether a periodic checkpoint fires at nextIter.
func (p *Pipeline) checkpointDue(nextIter int) bool {
	return p.cfg.Checkpoint.Path != "" && p.cfg.Checkpoint.Every > 0 &&
		nextIter > 0 && nextIter%p.cfg.Checkpoint.Every == 0
}

// writeCheckpoint persists the training state at nextIter and counts it.
// Callers must hold the drain invariant: no batch in flight, every pushed
// gradient applied.
func (p *Pipeline) writeCheckpoint(nextIter int) error {
	sp := p.tracer.Begin("checkpoint", "ps", tidWorker)
	err := error(nil)
	if p.cfg.Checkpoint.Coordinate != nil {
		err = p.cfg.Checkpoint.Coordinate(nextIter)
	}
	if err == nil {
		err = p.SaveCheckpoint(p.cfg.Checkpoint.Path, nextIter)
	}
	sp.End()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrCheckpointFailed, err)
	}
	p.m.checkpoints.Inc()
	return nil
}

// failSlot records the first failure observed by any pipeline goroutine.
type failSlot struct {
	mu        sync.Mutex
	err       error // guarded by mu
	resumable bool  // guarded by mu
}

func (f *failSlot) set(err error, resumable bool) {
	f.mu.Lock()
	if f.err == nil {
		f.err, f.resumable = err, resumable
	}
	f.mu.Unlock()
}

func (f *failSlot) get() (error, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err, f.resumable
}

// spawn starts one named pipeline stage on a new goroutine, registered on
// wg. Every goroutine in this package must be born here — the gospawn
// analyzer rejects bare go statements — so that a panic escaping a stage's
// own recover boundaries is converted into a recorded, non-resumable
// failure instead of killing the process and stranding the queues. fn's
// own defers (queue closes, drain barriers) run before the recovery, so
// cleanup survives even a panicking stage.
func (p *Pipeline) spawn(wg *sync.WaitGroup, fail *failSlot, stage string, fn func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				fail.set(fmt.Errorf("%w: %s: %w", ErrPipelineFault, stage, recoveredErr(r)), false)
			}
		}()
		fn()
	}()
}

// Train runs steps batches of the given size from the dataset through the
// pipeline and returns the loss curve. With QueueDepth > 1 a pre-fetch
// goroutine keeps the queue full and a server goroutine drains the gradient
// queue concurrently with worker compute; with QueueDepth == 1 the pipeline
// degrades to strictly sequential gather → train → apply on one thread (the
// EL-Rec (Sequential) baseline — the worker waits for the server each step,
// exactly as §VI-C describes). Both schedules produce bit-identical
// parameters: the embedding cache guarantees the worker always computes on
// up-to-date rows.
//
// Cancellation and faults drain gracefully: the pre-fetcher stops, the
// in-flight batch finishes, every pushed gradient is applied, and the
// returned TrainResult carries the partial loss curve plus the next
// resumable iteration. Transient gather/apply faults (from cfg.Faults)
// retry under cfg.Retry before becoming errors; worker panics surface as
// ErrWorkerFault instead of deadlocking the queues. When cfg.Checkpoint is
// set, the full training state is atomically persisted every Every steps at
// a drain barrier.
func (p *Pipeline) Train(ctx context.Context, d BatchSource, startIter, steps, batchSize int) (*TrainResult, error) {
	if ctx == nil {
		ctx = context.Background() //elrec:rootctx nil-ctx compatibility default for direct Pipeline embedders
	}
	p.tracer.SetThreadName(tidPrefetch, "prefetch")
	p.tracer.SetThreadName(tidWorker, "worker")
	p.tracer.SetThreadName(tidApply, "apply")
	curve := &metrics.LossCurve{}
	res := &TrainResult{Curve: curve, NextIter: startIter, Resumable: true}
	fail := func(res *TrainResult, err error, resumable bool) (*TrainResult, error) {
		res.Resumable = resumable
		if !resumable {
			res.NextIter = -1
		}
		return res, err
	}

	if p.cfg.QueueDepth == 1 {
		for it := 0; it < steps; it++ {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			iter := startIter + it
			hb, err := p.gatherBatch(ctx, d, iter, batchSize)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return res, cerr
				}
				return res, err
			}
			loss, push, err := p.trainOne(hb)
			if err != nil {
				return fail(res, err, faults.IsInjected(err))
			}
			curve.Add(iter, float64(loss))
			if err := p.applyPush(push); err != nil {
				return fail(res, err, false)
			}
			p.m.steps.Inc()
			res.Completed++
			res.NextIter = iter + 1
			if p.checkpointDue(res.NextIter) {
				if err := p.writeCheckpoint(res.NextIter); err != nil {
					return res, err
				}
			}
		}
		return res, nil
	}

	prefetchQ := make(chan *hostBatch, p.cfg.QueueDepth)
	gradQ := make(chan *gradPush, p.cfg.QueueDepth)
	stop := make(chan struct{})
	var async failSlot
	var wg sync.WaitGroup

	p.spawn(&wg, &async, "prefetch", func() { // pre-fetcher (server pull side)
		defer close(prefetchQ)
		for it := 0; it < steps; it++ {
			if ctx.Err() != nil {
				return
			}
			hb, err := p.gatherBatch(ctx, d, startIter+it, batchSize)
			if err != nil {
				// A gather failure leaves state consistent (the batch never
				// reached the worker); pure cancellation is reported by
				// Train itself.
				if ctx.Err() == nil {
					async.set(err, true)
				}
				return
			}
			select {
			case prefetchQ <- hb:
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	})

	p.spawn(&wg, &async, "apply", func() { // server apply side: drains even after cancel or failure
		broken := false
		for g := range gradQ {
			if broken {
				close(g.donec)
				continue
			}
			if err := p.applyPush(g); err != nil {
				async.set(err, false)
				broken = true
			}
		}
	})

worker:
	for {
		if err, _ := async.get(); err != nil {
			break
		}
		if ctx.Err() != nil {
			break
		}
		var hb *hostBatch
		var ok bool
		select {
		case hb, ok = <-prefetchQ:
		case <-ctx.Done():
			break worker
		}
		if !ok { // pre-fetcher finished (all steps gathered) or aborted
			break
		}
		loss, push, err := p.trainOne(hb)
		if err != nil {
			async.set(err, faults.IsInjected(err))
			break
		}
		curve.Add(hb.iter, float64(loss))
		psp := p.tracer.Begin("push", "ps", tidWorker)
		gradQ <- push
		psp.End()
		p.m.steps.Inc()
		res.Completed++
		res.NextIter = hb.iter + 1
		if p.checkpointDue(res.NextIter) {
			// Drain barrier: the gradient queue is FIFO and the server
			// closes donec in order, so once this push has landed every
			// earlier one has too, and host tables exactly reflect
			// NextIter iterations of training.
			<-push.donec
			if ferr, _ := async.get(); ferr != nil {
				break
			}
			if cerr := p.writeCheckpoint(res.NextIter); cerr != nil {
				async.set(cerr, true)
				break
			}
		}
	}

	// Graceful drain: stop the pre-fetcher, close the gradient queue after
	// the last push, and wait until the server has applied everything.
	close(stop)
	close(gradQ)
	wg.Wait()

	if err, resumable := async.get(); err != nil {
		return fail(res, err, resumable)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// hostAdapter exposes one host-memory table to the model as a dlrm.Table.
// Lookup pools the pre-fetched (cache-synced) unique rows; Update aggregates
// the pooled gradient per unique row, publishes the post-update values to
// the embedding cache, and leaves the gradient for the pipeline to push.
type hostAdapter struct {
	pipeline *Pipeline
	slot     int
	rows     int
	dim      int
	lr       float32

	current *hostRows
	pending *gradRows
}

var _ dlrm.Table = (*hostAdapter)(nil)

// Lookup pools the current pre-fetched rows into per-sample embeddings.
// Outside a pipeline step (inference/evaluation) it reads the host table
// directly under its lock — the synchronous path a serving system would
// take.
func (a *hostAdapter) Lookup(indices, offsets []int) *tensor.Matrix {
	cur := a.current
	if cur == nil {
		uniq, inverse := embedding.Unique(indices)
		values, err := a.pipeline.stores[a.slot].GatherRows(uniq)
		if err != nil {
			// Lookup is a dlrm.Table method and cannot return an error; an
			// unreachable remote store outside a pipeline step surfaces as a
			// typed panic exactly like the adapter-misuse invariant.
			//elrec:invariant typed ErrStoreUnavailable panic: synchronous lookups have no error channel; pipeline steps never take this path
			panic(fmt.Errorf("%w: host table %d: %w", ErrStoreUnavailable, a.slot, err))
		}
		cur = &hostRows{uniq: uniq, inverse: inverse, values: values}
	} else {
		start := a.pipeline.clock.Now()
		defer func() {
			a.pipeline.m.adapterNS.Add(int64(obs.Since(a.pipeline.clock, start)))
		}()
	}
	out := tensor.New(len(offsets), a.dim)
	for s := range offsets {
		start := offsets[s]
		end := len(indices)
		if s+1 < len(offsets) {
			end = offsets[s+1]
		}
		row := out.Row(s)
		for pos := start; pos < end; pos++ {
			tensor.AddTo(row, cur.values.Row(cur.inverse[pos]))
		}
	}
	return out
}

// Update aggregates dOut per unique row, publishes updated values to the
// cache, and stages the gradient push. Outside a pipeline step it panics
// with a typed error; the pipeline's recover machinery converts that into
// an ErrAdapterMisuse-wrapped failure instead of a crash.
func (a *hostAdapter) Update(indices, offsets []int, dOut *tensor.Matrix, lr float32) {
	cur := a.current
	if cur == nil {
		//elrec:invariant typed ErrAdapterMisuse panic: the pipeline recover boundary converts it to an error
		panic(fmt.Errorf("%w: host table %d updated outside a pipeline step", ErrAdapterMisuse, a.slot))
	}
	start := a.pipeline.clock.Now()
	defer func() {
		a.pipeline.m.adapterNS.Add(int64(obs.Since(a.pipeline.clock, start)))
	}()
	grads := tensor.New(len(cur.uniq), a.dim)
	for s := range offsets {
		start := offsets[s]
		end := len(indices)
		if s+1 < len(offsets) {
			end = offsets[s+1]
		}
		for pos := start; pos < end; pos++ {
			tensor.AddTo(grads.Row(cur.inverse[pos]), dOut.Row(s))
		}
	}
	// Publish post-update values: value − lr·grad (the worker's view of the
	// row after this batch; the server applies the same delta to the host).
	updated := make([][]float32, len(cur.uniq))
	for i := range cur.uniq {
		row := make([]float32, a.dim)
		copy(row, cur.values.Row(i))
		tensor.Axpy(-lr, grads.Row(i), row)
		updated[i] = row
	}
	a.pipeline.caches[a.slot].PublishAt(cur.uniq, updated, int(a.pipeline.trained.Load()))
	a.pending = &gradRows{uniq: cur.uniq, grads: grads}
}

// NumRows returns the host table's row count.
func (a *hostAdapter) NumRows() int { return a.rows }

// Dim returns the embedding dimension.
func (a *hostAdapter) Dim() int { return a.dim }

// FootprintBytes reports the host-side storage (it does not occupy HBM).
func (a *hostAdapter) FootprintBytes() int64 { return int64(a.rows) * int64(a.dim) * 4 }
