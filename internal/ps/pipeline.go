package ps

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/embedding"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Logical trace-thread ids for the three pipeline stages (Figure 9). The
// exported Chrome trace shows each stage on its own track, so the
// gather/train/apply overlap is visible at a glance.
const (
	tidPrefetch = 1
	tidWorker   = 2
	tidApply    = 3
)

// BatchSource produces training batches; data.Dataset satisfies it, and the
// core package wraps it with the index-reordering bijection. Sources that
// additionally implement data.SparseSource let the lookahead planner read
// per-table index streams without materializing full batches.
type BatchSource interface {
	Batch(iter, size int) *data.Batch
}

// prefixProtector is implemented by device tables (tt.Table) whose internal
// caches can shield the rows recurring in a lookahead window from eviction.
type prefixProtector interface {
	ProtectPrefixes(ids []int)
}

// TableLoc places one embedding table: resident on the device (Device
// non-nil — typically an Eff-TT table in HBM), in local host memory
// (HostRows > 0 — served by the in-process parameter server), or behind a
// custom HostStore (Store non-nil — e.g. a distps remote-shard client; the
// pipeline drives it through the same gather/push machinery).
type TableLoc struct {
	Device   dlrm.Table
	HostRows int
	Store    HostStore
}

// RetryPolicy bounds how transient gather/apply faults are retried: capped
// exponential backoff starting at BaseDelay, doubling per attempt up to
// MaxDelay, for at most MaxRetries retries after the first attempt.
type RetryPolicy struct {
	MaxRetries int
	BaseDelay  time.Duration
	MaxDelay   time.Duration

	// Sleep overrides the backoff sleep; tests install a recorder so a
	// heavily faulted run still finishes in microseconds. Nil uses a real
	// timer.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the production policy: 3 retries, 1ms→50ms backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

// withDefaults fills zero fields.
func (r RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if r.MaxRetries <= 0 {
		r.MaxRetries = d.MaxRetries
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = d.BaseDelay
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = d.MaxDelay
	}
	return r
}

// delay is the backoff before retry `attempt` (0-based), capped at MaxDelay.
func (r RetryPolicy) delay(attempt int) time.Duration {
	if attempt > 30 {
		return r.MaxDelay
	}
	d := r.BaseDelay << uint(attempt)
	if d <= 0 || d > r.MaxDelay {
		d = r.MaxDelay
	}
	return d
}

// CheckpointConfig enables periodic atomic checkpoints during Train: the
// full training state (MLP, device tables, host tables, optimizer state,
// iteration counter) is written to Path via write-temp-then-rename whenever
// the completed iteration count is a multiple of Every. Zero values disable
// checkpointing.
type CheckpointConfig struct {
	Path  string
	Every int

	// Coordinate, when set, runs at the checkpoint drain barrier immediately
	// before the local state file is written. The distributed trainer uses it
	// to commit every remote shard's checkpoint at the same version first, so
	// the local file's existence implies the remote versions are durable (the
	// local write is the commit point). An error aborts the checkpoint; the
	// local file keeps its previous version.
	Coordinate func(nextIter int) error
}

// Config configures a pipeline trainer.
type Config struct {
	Model dlrm.Config
	// QueueDepth is the capacity of the pre-fetch and gradient queues.
	// Depth 1 degrades the pipeline to sequential execution (the EL-Rec
	// (Sequential) baseline of Figure 16).
	QueueDepth int
	Seed       uint64

	// Lookahead is the data-pipeline window size in batches: the pre-fetcher
	// plans the exact sparse access set of the next Lookahead batches
	// (data.Lookahead) and uses it for oracle cache admission — rows reused
	// within the window are gathered once and served from the pinned working
	// set, rows with no future reference expire Belady-style, and TT device
	// tables protect recurring rows' prefix-cache slots. 0 or 1 disables the
	// lookahead (the reactive LC baseline). Training is bit-exact for every
	// setting.
	Lookahead int

	// LookaheadBudget caps simultaneously pinned rows per host table within
	// a window (0 = unlimited); on overflow the plan evicts the pin with the
	// farthest next use.
	LookaheadBudget int

	// Faults injects deterministic failures into the gather/apply/worker
	// paths; nil (production) injects nothing.
	Faults faults.Injector

	// Retry bounds transient-fault retries; zero fields take defaults.
	Retry RetryPolicy

	// Checkpoint enables periodic crash-consistent checkpoints.
	Checkpoint CheckpointConfig

	// Metrics, when non-nil, exposes the pipeline's counters under ps_*
	// names (the pipeline owns the instruments; the registry adopts them,
	// so Stats() and a /metrics snapshot read the same values). Nil skips
	// registration; Stats() works either way.
	Metrics *obs.Registry

	// Trace, when non-nil, records gather/train/apply/push/checkpoint
	// stage spans plus stall/backoff intervals and retry markers for
	// Chrome trace export. Nil disables tracing at near-zero cost.
	Trace *obs.Tracer

	// Clock supplies timestamps for all stage timing; nil uses the system
	// clock. Tests inject a manual clock to make timing deterministic.
	Clock obs.Clock
}

// Stats aggregates pipeline counters for the experiment harness: the byte
// counts become simulated PCIe time under the hw model.
type Stats struct {
	Steps           int
	BytesPrefetched int64 // host → device embedding rows
	BytesPushed     int64 // device → host gradients
	CacheSyncs      int64
	CacheHits       int64
	CacheMisses     int64
	CacheEvictions  int64

	// CacheHitRate is CacheHits/(CacheHits+CacheMisses), 0 when there were
	// no lookups. Stats() also publishes it as the ps_cache_hit_rate gauge.
	CacheHitRate float64

	// Lookahead counters: windows planned, rows served from the pinned
	// working set instead of being re-gathered, and the time the worker
	// spent waiting for pre-fetched batches (the pipeline's prefetch stall).
	LookaheadWindows    int64
	LookaheadPinnedRows int64
	PrefetchWait        time.Duration

	// Wall-time split for the hw cost model: GatherTime and ApplyTime are
	// host-side parameter-server work, TrainTime is worker-side compute,
	// and AdapterTime is the share of TrainTime spent pooling and
	// aggregating host-table rows (CPU-side work in the PS architecture).
	GatherTime  time.Duration
	ApplyTime   time.Duration
	TrainTime   time.Duration
	AdapterTime time.Duration

	// Fault-tolerance counters: transient faults injected into this run,
	// retries performed, time spent in retry backoff and in injected
	// slow-server stalls, and checkpoints written.
	InjectedFaults int64
	Retries        int64
	BackoffTime    time.Duration
	StallTime      time.Duration
	Checkpoints    int64
}

// TrainResult is what Train hands back, on success and on failure alike: a
// (possibly partial) loss curve and where a resumed run should pick up.
type TrainResult struct {
	Curve *metrics.LossCurve
	// Completed counts fully trained iterations in this call.
	Completed int
	// NextIter is the first iteration NOT reflected in the trained
	// parameters — pass it as startIter to continue, or persist it in a
	// checkpoint. It is -1 when Resumable is false.
	NextIter int
	// Resumable reports whether the in-memory parameters are consistent
	// (every trained batch fully applied to host tables). Cancellation,
	// gather failures and injected worker faults drain cleanly and stay
	// resumable; an exhausted apply retry or a mid-step panic does not —
	// restore from a checkpoint instead.
	Resumable bool
}

// hostBatch is one pre-fetch queue element: the training batch plus the
// gathered unique host-table rows.
type hostBatch struct {
	iter  int
	batch *data.Batch
	rows  []hostRows // one per host table, in host-table order
	// gathered is a lower bound on the number of gradient pushes that were
	// visible in the host tables when the rows were read; the cache uses it
	// to decide which published entries the gathered values already cover.
	gathered int64
	// plan is the lookahead window plan this batch was gathered under (nil
	// outside lookahead mode). planLast marks the window's final batch: its
	// gradient push carries the plan so the apply stage can release it once
	// no consumer can still reference the plan's slices.
	plan     *data.WindowPlan
	planLast bool
}

// hostRows carries the unique rows of one host table for one batch. Under
// lookahead, fresh/nextUse alias the window plan's access arrays (valid
// until the plan is released): fresh[i] marks rows gathered from the store
// (the remaining rows are served from the cache's pinned working set, left
// zero in values until SyncWindow fills them), and nextUse[i] is the cache
// retention hint forwarded to PublishWindow. freshN counts fresh rows.
type hostRows struct {
	uniq    []int
	inverse []int
	values  *tensor.Matrix // len(uniq) × dim
	fresh   []bool         // nil outside lookahead mode
	nextUse []int32        // nil outside lookahead mode
	freshN  int
}

// gradPush is one gradient queue element.
type gradPush struct {
	iter  int
	rows  []gradRows
	donec chan struct{}    // closed once handled (used for drain barriers)
	plan  *data.WindowPlan // non-nil on a window's last push: released after apply
}

type gradRows struct {
	uniq  []int
	grads *tensor.Matrix // aggregated per unique row
}

// Pipeline trains a DLRM whose embedding layer is split between device
// tables and host-memory tables behind a parameter server, overlapping the
// server-side gather/update with worker compute (Figure 9).
type Pipeline struct {
	cfg    Config
	retry  RetryPolicy
	model  *dlrm.Model
	caches []*Cache

	hostBags []*embedding.Bag // local parameter-server state; guarded by hostMu (per-table); nil entry = remote store
	hostMu   []sync.RWMutex
	hostIdx  []int // host table order -> model table position
	stores   []HostStore
	adapters []*hostAdapter

	// Device tables that accept lookahead protection sets (tt.Table), with
	// their dataset positions and row counts for the window planner.
	protectors  []prefixProtector
	protectPos  []int
	protectRows []int

	// applied counts gradient pushes fully scattered into the host tables.
	// The gather side reads it before touching any table, so it is a safe
	// lower bound on host freshness (see hostBatch.gathered).
	applied atomic.Int64
	// trained counts batches fully trained on this pipeline; it is the
	// ordinal (push tag) of the batch currently in the worker, in the same
	// counting space as applied, which keeps cache-entry expiry consistent
	// across Train calls and checkpoint restores.
	trained atomic.Int64

	clock  obs.Clock   // timestamp source for all stage timing; never nil
	tracer *obs.Tracer // stage-span recorder; nil disables tracing

	// m holds the pipeline-owned instruments behind Stats(). Counter
	// updates are atomic, so writers on three goroutines need no lock and
	// Stats() is safe to call while Train runs.
	m pipelineMetrics
}

// pipelineMetrics are the instruments behind Stats(), owned by the pipeline
// and (when Config.Metrics is set) adopted by the registry under the ps_*
// names in registerMetrics. Durations accumulate as nanoseconds.
type pipelineMetrics struct {
	steps           obs.Counter
	bytesPrefetched obs.Counter
	bytesPushed     obs.Counter

	gatherNS  obs.Counter
	applyNS   obs.Counter
	trainNS   obs.Counter
	adapterNS obs.Counter

	injectedFaults obs.Counter
	retries        obs.Counter
	backoffNS      obs.Counter
	stallNS        obs.Counter

	checkpoints       obs.Counter
	checkpointWriteNS obs.Counter
	checkpointBytes   obs.Counter

	cacheSyncs     obs.Counter
	cacheHits      obs.Counter
	cacheMisses    obs.Counter
	cacheEvictions obs.Counter

	lookaheadWindows obs.Counter
	lookaheadPinned  obs.Counter
	prefetchWaitNS   obs.Counter

	// cacheHitRate is registry-owned (gauges are derived, not accumulated);
	// nil when no registry is attached. Stats() recomputes and sets it.
	cacheHitRate *obs.Gauge
}

// registerMetrics adopts the pipeline's instruments into r (no-op when r is
// nil), so a /metrics snapshot and Stats() read identical values without
// double counting.
func (p *Pipeline) registerMetrics(r *obs.Registry) {
	r.RegisterCounter("ps_steps", &p.m.steps)
	r.RegisterCounter("ps_bytes_prefetched", &p.m.bytesPrefetched)
	r.RegisterCounter("ps_bytes_pushed", &p.m.bytesPushed)
	r.RegisterCounter("ps_gather_ns", &p.m.gatherNS)
	r.RegisterCounter("ps_apply_ns", &p.m.applyNS)
	r.RegisterCounter("ps_train_ns", &p.m.trainNS)
	r.RegisterCounter("ps_adapter_ns", &p.m.adapterNS)
	r.RegisterCounter("ps_injected_faults", &p.m.injectedFaults)
	r.RegisterCounter("ps_retries", &p.m.retries)
	r.RegisterCounter("ps_backoff_ns", &p.m.backoffNS)
	r.RegisterCounter("ps_stall_ns", &p.m.stallNS)
	r.RegisterCounter("ps_checkpoints", &p.m.checkpoints)
	r.RegisterCounter("ps_checkpoint_write_ns", &p.m.checkpointWriteNS)
	r.RegisterCounter("ps_checkpoint_bytes", &p.m.checkpointBytes)
	r.RegisterCounter("ps_cache_syncs", &p.m.cacheSyncs)
	r.RegisterCounter("ps_cache_hits", &p.m.cacheHits)
	r.RegisterCounter("ps_cache_misses", &p.m.cacheMisses)
	r.RegisterCounter("ps_cache_evictions", &p.m.cacheEvictions)
	r.RegisterCounter("ps_lookahead_windows", &p.m.lookaheadWindows)
	r.RegisterCounter("ps_lookahead_pinned_rows", &p.m.lookaheadPinned)
	r.RegisterCounter("ps_prefetch_wait_ns", &p.m.prefetchWaitNS)
	p.m.cacheHitRate = r.Gauge("ps_cache_hit_rate")
}

// NewPipeline builds the trainer. locs must list every embedding table in
// dataset order.
//
//elrec:locked hostMu construction: the pipeline is unpublished until NewPipeline returns
func NewPipeline(cfg Config, locs []TableLoc) (*Pipeline, error) {
	if cfg.QueueDepth <= 0 {
		return nil, fmt.Errorf("%w: queue depth %d must be positive", ErrInvalidConfig, cfg.QueueDepth)
	}
	if cfg.Model.EmbDim <= 0 {
		return nil, fmt.Errorf("%w: embedding dim %d must be positive", ErrInvalidConfig, cfg.Model.EmbDim)
	}
	if len(locs) == 0 {
		return nil, fmt.Errorf("%w: no tables", ErrInvalidConfig)
	}
	if cfg.Checkpoint.Every < 0 || (cfg.Checkpoint.Every > 0 && cfg.Checkpoint.Path == "") {
		return nil, fmt.Errorf("%w: checkpoint interval %d without a path", ErrInvalidConfig, cfg.Checkpoint.Every)
	}
	if cfg.Lookahead < 0 || cfg.LookaheadBudget < 0 {
		return nil, fmt.Errorf("%w: lookahead window %d / budget %d must be non-negative", ErrInvalidConfig, cfg.Lookahead, cfg.LookaheadBudget)
	}
	p := &Pipeline{cfg: cfg, retry: cfg.Retry.withDefaults(), clock: obs.OrSystem(cfg.Clock), tracer: cfg.Trace}
	p.registerMetrics(cfg.Metrics)
	tables := make([]dlrm.Table, len(locs))
	for i, loc := range locs {
		placements := 0
		for _, set := range []bool{loc.Device != nil, loc.HostRows > 0, loc.Store != nil} {
			if set {
				placements++
			}
		}
		if placements > 1 {
			return nil, fmt.Errorf("%w: table %d has more than one placement", ErrInvalidConfig, i)
		}
		switch {
		case loc.Device != nil:
			tables[i] = loc.Device
			if prot, ok := loc.Device.(prefixProtector); ok {
				p.protectors = append(p.protectors, prot)
				p.protectPos = append(p.protectPos, i)
				p.protectRows = append(p.protectRows, loc.Device.NumRows())
			}
		case loc.HostRows > 0 || loc.Store != nil:
			slot := len(p.stores)
			var store HostStore
			var bag *embedding.Bag
			if loc.Store != nil {
				if loc.Store.Dim() != cfg.Model.EmbDim {
					return nil, fmt.Errorf("%w: table %d store dim %d, model dim %d", ErrInvalidConfig, i, loc.Store.Dim(), cfg.Model.EmbDim)
				}
				store = loc.Store
			} else {
				bag = embedding.NewBag(loc.HostRows, cfg.Model.EmbDim, tensor.NewRNG(cfg.Seed+uint64(i)*104729))
				store = &localStore{p: p, slot: slot, rows: loc.HostRows, dim: cfg.Model.EmbDim}
			}
			cache := NewCache(cfg.Model.EmbDim, 2*cfg.QueueDepth+2)
			cache.attachCounters(&p.m.cacheSyncs, &p.m.cacheHits, &p.m.cacheMisses, &p.m.cacheEvictions)
			ad := &hostAdapter{pipeline: p, slot: slot, rows: store.NumRows(), dim: cfg.Model.EmbDim, lr: cfg.Model.LR}
			p.hostBags = append(p.hostBags, bag)
			p.stores = append(p.stores, store)
			p.caches = append(p.caches, cache)
			p.hostIdx = append(p.hostIdx, i)
			p.adapters = append(p.adapters, ad)
			tables[i] = ad
		default:
			return nil, fmt.Errorf("%w: table %d has no placement", ErrInvalidConfig, i)
		}
	}
	p.hostMu = make([]sync.RWMutex, len(p.hostBags))
	model, err := dlrm.NewModel(cfg.Model, tables)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	p.model = model
	return p, nil
}

// Model exposes the underlying model (for evaluation).
func (p *Pipeline) Model() *dlrm.Model { return p.model }

// Stats returns a snapshot of the accumulated counters (cache counters
// summed over tables). Safe to call concurrently with Train: each counter
// is read atomically, though the set is not a global atomic cut.
func (p *Pipeline) Stats() Stats {
	s := Stats{
		Steps:               int(p.m.steps.Value()),
		BytesPrefetched:     p.m.bytesPrefetched.Value(),
		BytesPushed:         p.m.bytesPushed.Value(),
		CacheSyncs:          p.m.cacheSyncs.Value(),
		CacheHits:           p.m.cacheHits.Value(),
		CacheMisses:         p.m.cacheMisses.Value(),
		CacheEvictions:      p.m.cacheEvictions.Value(),
		LookaheadWindows:    p.m.lookaheadWindows.Value(),
		LookaheadPinnedRows: p.m.lookaheadPinned.Value(),
		PrefetchWait:        time.Duration(p.m.prefetchWaitNS.Value()),
		GatherTime:          time.Duration(p.m.gatherNS.Value()),
		ApplyTime:           time.Duration(p.m.applyNS.Value()),
		TrainTime:           time.Duration(p.m.trainNS.Value()),
		AdapterTime:         time.Duration(p.m.adapterNS.Value()),
		InjectedFaults:      p.m.injectedFaults.Value(),
		Retries:             p.m.retries.Value(),
		BackoffTime:         time.Duration(p.m.backoffNS.Value()),
		StallTime:           time.Duration(p.m.stallNS.Value()),
		Checkpoints:         p.m.checkpoints.Value(),
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	p.m.cacheHitRate.Set(s.CacheHitRate)
	return s
}

// NumHostTables returns how many tables live in host memory.
//
//elrec:locked hostMu placement is immutable after NewPipeline; only the slice length is read
func (p *Pipeline) NumHostTables() int { return len(p.hostBags) }

// HostBag exposes host table i (for tests and post-training inspection).
//
//elrec:locked hostMu caller synchronizes: test/evaluation hook, never raced against Train
func (p *Pipeline) HostBag(i int) *embedding.Bag { return p.hostBags[i] }

// tidForOp maps a fault-injection site to the trace thread of the pipeline
// stage it runs on.
func tidForOp(op faults.Op) int {
	switch op {
	case faults.OpGather:
		return tidPrefetch
	case faults.OpApply:
		return tidApply
	}
	return tidWorker
}

// injectFault consults the configured injector for one attempt. Stalls are
// served in place (the operation proceeds after the delay); transient
// faults are counted and returned for the retry loop.
func (p *Pipeline) injectFault(op faults.Op, iter, attempt int) error {
	if p.cfg.Faults == nil {
		return nil
	}
	err := p.cfg.Faults.Fault(op, iter, attempt)
	if err == nil {
		return nil
	}
	var stall *faults.Stall
	if errors.As(err, &stall) {
		p.m.stallNS.Add(int64(stall.D))
		sp := p.tracer.Begin("stall", "fault", tidForOp(op))
		p.sleep(stall.D)
		sp.End()
		return nil
	}
	p.m.injectedFaults.Inc()
	p.tracer.Instant("fault", "fault", tidForOp(op))
	return err
}

// sleep waits for d via the retry policy's hook (or a real sleep).
func (p *Pipeline) sleep(d time.Duration) {
	if p.retry.Sleep != nil {
		p.retry.Sleep(d)
		return
	}
	time.Sleep(d)
}

// backoff records and serves the delay before retry `attempt`, traced as a
// backoff span on stage thread tid. A non-nil ctx aborts the wait on
// cancellation (used on the gather side; the apply side passes nil because
// pending gradients must land even during a cancelled drain).
func (p *Pipeline) backoff(ctx context.Context, tid, attempt int) error {
	d := p.retry.delay(attempt)
	p.m.retries.Inc()
	p.m.backoffNS.Add(int64(d))
	p.tracer.Instant("retry", "fault", tid)
	sp := p.tracer.Begin("backoff", "fault", tid)
	defer sp.End()
	if p.retry.Sleep != nil {
		p.retry.Sleep(d)
	} else if ctx == nil {
		time.Sleep(d)
	} else {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// gather assembles the pre-fetch payload for one batch: the unique rows of
// every host table, read from its store (the server-side embedding lookup
// of the PS architecture — an in-process bag under a lock, or a remote
// shard fan-out).
func (p *Pipeline) gather(iter int, b *data.Batch) (*hostBatch, error) {
	start := p.clock.Now()
	sp := p.tracer.Begin("gather", "ps", tidPrefetch)
	defer func() {
		sp.End()
		p.m.gatherNS.Add(int64(obs.Since(p.clock, start)))
	}()
	hb := &hostBatch{iter: iter, batch: b, rows: make([]hostRows, len(p.stores)), gathered: p.applied.Load()}
	for h, pos := range p.hostIdx {
		uniq, inverse := embedding.Unique(b.Sparse[pos])
		values, err := p.stores[h].GatherRows(uniq)
		if err != nil {
			return nil, fmt.Errorf("host table %d: %w", h, err)
		}
		hb.rows[h] = hostRows{uniq: uniq, inverse: inverse, values: values}
	}
	return hb, nil
}

// gatherWindow is gather under a lookahead plan: the batch's uniq/inverse
// come from the plan, and only the rows whose first in-window use this is
// (acc.FreshIDs) are read from the store — the cross-batch dedup. Pinned
// rows' slots stay zero here; SyncWindow fills them from the cache on the
// worker, where their presence is guaranteed.
func (p *Pipeline) gatherWindow(iter int, b *data.Batch, plan *data.WindowPlan) (*hostBatch, error) {
	start := p.clock.Now()
	sp := p.tracer.Begin("gather", "ps", tidPrefetch)
	defer func() {
		sp.End()
		p.m.gatherNS.Add(int64(obs.Since(p.clock, start)))
	}()
	hb := &hostBatch{iter: iter, batch: b, rows: make([]hostRows, len(p.stores)), gathered: p.applied.Load(), plan: plan}
	for h := range p.hostIdx {
		acc := plan.Access(h, iter)
		values := tensor.New(len(acc.Uniq), p.cfg.Model.EmbDim)
		if len(acc.FreshIDs) > 0 {
			freshVals, err := p.stores[h].GatherRows(acc.FreshIDs)
			if err != nil {
				return nil, fmt.Errorf("host table %d: %w", h, err)
			}
			for k, pos := range acc.FreshPos {
				copy(values.Row(pos), freshVals.Row(k))
			}
		}
		hb.rows[h] = hostRows{
			uniq: acc.Uniq, inverse: acc.Inverse, values: values,
			fresh: acc.Fresh, nextUse: acc.NextUse, freshN: len(acc.FreshIDs),
		}
	}
	return hb, nil
}

// gatherBatch is the fault-tolerant gather: it generates the batch, retries
// injected transient faults with capped backoff, and converts panics from
// the data or embedding layers into errors so a faulty pre-fetcher cannot
// wedge the pipeline.
func (p *Pipeline) gatherBatch(ctx context.Context, d BatchSource, iter, batchSize int, plan *data.WindowPlan) (hb *hostBatch, err error) {
	defer func() {
		if r := recover(); r != nil {
			hb, err = nil, fmt.Errorf("%w: iter %d: %w", ErrGatherFailed, iter, recoveredErr(r))
		}
	}()
	var b *data.Batch
	if plan != nil {
		b = plan.BatchAt(iter) // non-nil only when the planner cached full batches
	}
	if b == nil {
		b = d.Batch(iter, batchSize)
	}
	for attempt := 0; ; attempt++ {
		ferr := p.injectFault(faults.OpGather, iter, attempt)
		if ferr == nil {
			var hb *hostBatch
			var gerr error
			if plan != nil {
				hb, gerr = p.gatherWindow(iter, b, plan)
			} else {
				hb, gerr = p.gather(iter, b)
			}
			if gerr == nil {
				return hb, nil
			}
			// A failed store gather is retryable in place: reads have no
			// side effects, so the same attempt loop that absorbs injected
			// faults also rides out transient remote-store outages.
			ferr = gerr
		}
		if attempt >= p.retry.MaxRetries {
			return nil, fmt.Errorf("%w: iter %d after %d attempts: %w", ErrGatherFailed, iter, attempt+1, ferr)
		}
		if berr := p.backoff(ctx, tidPrefetch, attempt); berr != nil {
			return nil, fmt.Errorf("%w: iter %d: %w", ErrGatherFailed, iter, berr)
		}
	}
}

// apply is the server side of the gradient queue: scatter −lr·grad into the
// host tables, then advance the applied-push counter that retires cache
// entries (their life cycle ends once the host copy is provably visible to
// gathers).
func (p *Pipeline) apply(g *gradPush) error {
	start := p.clock.Now()
	sp := p.tracer.Begin("apply", "ps", tidApply)
	defer func() {
		sp.End()
		p.m.applyNS.Add(int64(obs.Since(p.clock, start)))
	}()
	for h, gr := range g.rows {
		if len(gr.uniq) == 0 {
			continue
		}
		delta := gr.grads.Clone()
		tensor.Scale(-p.cfg.Model.LR, delta.Data)
		if err := p.stores[h].ApplyDelta(gr.uniq, delta); err != nil {
			// The push may have landed on some tables (or shards) but not
			// others; the caller reports training state as torn rather than
			// re-applying (a blind retry would double-count whatever did
			// land — the store's own transport retries are deduplicated,
			// this level's are not).
			return fmt.Errorf("host table %d: %w", h, err)
		}
	}
	// Incremented only after every table absorbed the push, so a gather that
	// reads the counter first can never overstate host freshness.
	p.applied.Add(1)
	return nil
}

// applyPush is the fault-tolerant apply: transient faults retry with
// backoff (never aborted by cancellation — a cancelled drain still has to
// land every pending gradient), panics become errors, and g.donec is
// always closed so drain barriers cannot hang.
func (p *Pipeline) applyPush(g *gradPush) (err error) {
	defer close(g.donec)
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: iter %d: %w", ErrApplyFailed, g.iter, recoveredErr(r))
		}
	}()
	for attempt := 0; ; attempt++ {
		ferr := p.injectFault(faults.OpApply, g.iter, attempt)
		if ferr == nil {
			if aerr := p.apply(g); aerr != nil {
				return fmt.Errorf("%w: iter %d: %w", ErrApplyFailed, g.iter, aerr)
			}
			// The gradient queue is FIFO, so when a window's last push has
			// been applied no earlier consumer can still hold the plan's
			// slices: it is safe to recycle the plan for a future window.
			g.plan.Release()
			return nil
		}
		if attempt >= p.retry.MaxRetries {
			return fmt.Errorf("%w: iter %d after %d attempts: %w", ErrApplyFailed, g.iter, attempt+1, ferr)
		}
		p.backoff(nil, tidApply, attempt)
	}
}

// trainOne runs the worker side for one pre-fetched batch: cache-sync the
// pre-fetched rows (Step 1 of Figure 9), run forward/backward (the adapters
// capture host-table gradients), and return the gradient push. Panics —
// injected worker faults and genuine model faults alike — are converted to
// errors so a crashing worker cannot deadlock the queues.
func (p *Pipeline) trainOne(hb *hostBatch) (loss float32, push *gradPush, err error) {
	defer func() {
		if r := recover(); r != nil {
			loss, push = 0, nil
			err = fmt.Errorf("%w: iter %d: %w", ErrWorkerFault, hb.iter, recoveredErr(r))
		}
		if err != nil {
			for _, ad := range p.adapters {
				ad.current, ad.pending = nil, nil
			}
		}
	}()
	if p.cfg.Faults != nil {
		if ferr := p.cfg.Faults.Fault(faults.OpWorker, hb.iter, 0); ferr != nil {
			p.m.injectedFaults.Inc()
			p.tracer.Instant("fault", "fault", tidWorker)
			// Injected worker faults travel as panics on purpose: they are
			// raised here, before any model state is touched, and exercise
			// the same recover path that protects the queues from a real
			// worker crash.
			//elrec:invariant injected fault: deliberately exercises trainOne's recover boundary
			panic(ferr)
		}
	}
	start := p.clock.Now()
	sp := p.tracer.Begin("train", "ps", tidWorker)
	defer func() {
		sp.End()
		p.m.trainNS.Add(int64(obs.Since(p.clock, start)))
	}()
	var prefetched, pinned int64
	for h := range hb.rows {
		hr := &hb.rows[h]
		rows := make([][]float32, len(hr.uniq))
		for i := range rows {
			rows[i] = hr.values.Row(i)
		}
		if hr.fresh != nil {
			if _, serr := p.caches[h].SyncWindow(int(hb.gathered), hb.iter, hr.uniq, rows, hr.fresh, hr.nextUse); serr != nil {
				return 0, nil, fmt.Errorf("%w: iter %d: %w", ErrWorkerFault, hb.iter, serr)
			}
			// Only fresh rows crossed the host→device link; pinned rows were
			// deduplicated across batches and served from the cache.
			prefetched += int64(hr.freshN) * int64(p.cfg.Model.EmbDim) * 4
			pinned += int64(len(hr.uniq) - hr.freshN)
		} else {
			p.caches[h].SyncAt(int(hb.gathered), hr.uniq, rows)
			prefetched += int64(len(rows)) * int64(p.cfg.Model.EmbDim) * 4
		}
	}
	p.m.bytesPrefetched.Add(prefetched)
	p.m.lookaheadPinned.Add(pinned)
	for h, ad := range p.adapters {
		ad.current = &hb.rows[h]
		ad.pending = nil
	}
	loss = p.model.TrainStep(hb.batch)
	push = &gradPush{iter: hb.iter, rows: make([]gradRows, len(p.adapters)), donec: make(chan struct{})}
	if hb.planLast {
		push.plan = hb.plan
	}
	var pushed int64
	for h, ad := range p.adapters {
		if ad.pending == nil {
			return 0, nil, fmt.Errorf("%w: host table %d did not receive an update at iter %d", ErrAdapterMisuse, h, hb.iter)
		}
		push.rows[h] = *ad.pending
		pushed += int64(len(ad.pending.uniq)) * int64(p.cfg.Model.EmbDim) * 4
		ad.current, ad.pending = nil, nil
	}
	p.m.bytesPushed.Add(pushed)
	p.trained.Add(1)
	return loss, push, nil
}

// checkpointDue reports whether a periodic checkpoint fires at nextIter.
func (p *Pipeline) checkpointDue(nextIter int) bool {
	return p.cfg.Checkpoint.Path != "" && p.cfg.Checkpoint.Every > 0 &&
		nextIter > 0 && nextIter%p.cfg.Checkpoint.Every == 0
}

// writeCheckpoint persists the training state at nextIter and counts it.
// Callers must hold the drain invariant: no batch in flight, every pushed
// gradient applied.
func (p *Pipeline) writeCheckpoint(nextIter int) error {
	sp := p.tracer.Begin("checkpoint", "ps", tidWorker)
	err := error(nil)
	if p.cfg.Checkpoint.Coordinate != nil {
		err = p.cfg.Checkpoint.Coordinate(nextIter)
	}
	if err == nil {
		err = p.SaveCheckpoint(p.cfg.Checkpoint.Path, nextIter)
	}
	sp.End()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrCheckpointFailed, err)
	}
	p.m.checkpoints.Inc()
	return nil
}

// newLookahead builds the per-Train window planner, or nil when lookahead
// is disabled or there is nothing to plan. The planner is per Train call:
// windows are aligned to startIter and plan storage is recycled through the
// window pool for the duration of the run.
func (p *Pipeline) newLookahead(d BatchSource, batchSize int) (*data.Lookahead, error) {
	if p.cfg.Lookahead <= 1 || (len(p.stores) == 0 && len(p.protectors) == 0) {
		return nil, nil
	}
	cfg := data.LookaheadConfig{
		Window: p.cfg.Lookahead,
		Batch:  batchSize,
		Budget: p.cfg.LookaheadBudget,
	}
	for h, pos := range p.hostIdx {
		cfg.Tables = append(cfg.Tables, pos)
		cfg.Rows = append(cfg.Rows, p.stores[h].NumRows())
	}
	cfg.DeviceTables = append(cfg.DeviceTables, p.protectPos...)
	cfg.DeviceRows = append(cfg.DeviceRows, p.protectRows...)
	la, err := data.NewLookahead(d, cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	return la, nil
}

// nextWindow returns the size of the next planning window given the
// previous one (0 for the first window of a Train call). Windows start
// only at iteration 1 — batch 0 rides the plain LC-cache path so the
// pre-fetcher can hand it to the worker immediately and plan the first
// window during that step's compute. The first window is clipped near the
// queue depth and subsequent windows double up to the configured size:
// planning a full window on a cold pipeline stalls the worker behind
// Window×Tables index-stream generation, while the ramp lets full-window
// planning overlap with training once the prefetch queue has filled. The
// schedule depends only on configuration, never on timing, so ramped runs
// stay bit-exact.
func (p *Pipeline) nextWindow(prev int) int {
	n := 2 * prev
	if prev == 0 {
		n = p.cfg.QueueDepth
		if n < 2 {
			n = 2
		}
	}
	if n > p.cfg.Lookahead {
		n = p.cfg.Lookahead
	}
	return n
}

// advanceWindow plans an n-batch window starting at iter (truncated to the
// remaining steps), counts it, and installs each device table's protection
// set — the window's recurring rows, shielded from device-cache recycling.
func (p *Pipeline) advanceWindow(la *data.Lookahead, iter, n, remaining int) *data.WindowPlan {
	if remaining < n {
		n = remaining
	}
	plan := la.Advance(iter, n)
	p.m.lookaheadWindows.Inc()
	for k, prot := range p.protectors {
		prot.ProtectPrefixes(plan.Device[k].IDs)
	}
	return plan
}

// clearProtection drops the device tables' lookahead protection sets so a
// finished run's last window cannot pin device-cache slots indefinitely.
func (p *Pipeline) clearProtection() {
	for _, prot := range p.protectors {
		prot.ProtectPrefixes(nil)
	}
}

// failSlot records the first failure observed by any pipeline goroutine.
type failSlot struct {
	mu        sync.Mutex
	err       error // guarded by mu
	resumable bool  // guarded by mu
}

func (f *failSlot) set(err error, resumable bool) {
	f.mu.Lock()
	if f.err == nil {
		f.err, f.resumable = err, resumable
	}
	f.mu.Unlock()
}

func (f *failSlot) get() (error, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err, f.resumable
}

// spawn starts one named pipeline stage on a new goroutine, registered on
// wg. Every goroutine in this package must be born here — the gospawn
// analyzer rejects bare go statements — so that a panic escaping a stage's
// own recover boundaries is converted into a recorded, non-resumable
// failure instead of killing the process and stranding the queues. fn's
// own defers (queue closes, drain barriers) run before the recovery, so
// cleanup survives even a panicking stage.
func (p *Pipeline) spawn(wg *sync.WaitGroup, fail *failSlot, stage string, fn func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				fail.set(fmt.Errorf("%w: %s: %w", ErrPipelineFault, stage, recoveredErr(r)), false)
			}
		}()
		fn()
	}()
}

// Train runs steps batches of the given size from the dataset through the
// pipeline and returns the loss curve. With QueueDepth > 1 a pre-fetch
// goroutine keeps the queue full and a server goroutine drains the gradient
// queue concurrently with worker compute; with QueueDepth == 1 the pipeline
// degrades to strictly sequential gather → train → apply on one thread (the
// EL-Rec (Sequential) baseline — the worker waits for the server each step,
// exactly as §VI-C describes). Both schedules produce bit-identical
// parameters: the embedding cache guarantees the worker always computes on
// up-to-date rows.
//
// Cancellation and faults drain gracefully: the pre-fetcher stops, the
// in-flight batch finishes, every pushed gradient is applied, and the
// returned TrainResult carries the partial loss curve plus the next
// resumable iteration. Transient gather/apply faults (from cfg.Faults)
// retry under cfg.Retry before becoming errors; worker panics surface as
// ErrWorkerFault instead of deadlocking the queues. When cfg.Checkpoint is
// set, the full training state is atomically persisted every Every steps at
// a drain barrier.
func (p *Pipeline) Train(ctx context.Context, d BatchSource, startIter, steps, batchSize int) (*TrainResult, error) {
	if ctx == nil {
		ctx = context.Background() //elrec:rootctx nil-ctx compatibility default for direct Pipeline embedders
	}
	p.tracer.SetThreadName(tidPrefetch, "prefetch")
	p.tracer.SetThreadName(tidWorker, "worker")
	p.tracer.SetThreadName(tidApply, "apply")
	curve := &metrics.LossCurve{}
	res := &TrainResult{Curve: curve, NextIter: startIter, Resumable: true}
	fail := func(res *TrainResult, err error, resumable bool) (*TrainResult, error) {
		res.Resumable = resumable
		if !resumable {
			res.NextIter = -1
		}
		return res, err
	}

	la, lerr := p.newLookahead(d, batchSize)
	if lerr != nil {
		return fail(res, lerr, true)
	}
	if la != nil {
		defer p.clearProtection()
	}

	if p.cfg.QueueDepth == 1 {
		var plan *data.WindowPlan
		nextAdvance, winSize := 1, 0 // batch 0 is unplanned: see nextWindow
		for it := 0; it < steps; it++ {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			iter := startIter + it
			if la != nil && it == nextAdvance {
				winSize = p.nextWindow(winSize)
				plan = p.advanceWindow(la, iter, winSize, steps-it)
				nextAdvance = it + plan.N
			}
			// In the sequential schedule the worker waits out the entire
			// gather: record it as prefetch stall so depth-1 runs expose the
			// same lookahead win the pipelined queue wait does.
			waitStart := p.clock.Now()
			hb, err := p.gatherBatch(ctx, d, iter, batchSize, plan)
			p.m.prefetchWaitNS.Add(int64(obs.Since(p.clock, waitStart)))
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return res, cerr
				}
				return res, err
			}
			hb.planLast = plan != nil && iter-plan.Start == plan.N-1
			loss, push, err := p.trainOne(hb)
			if err != nil {
				return fail(res, err, faults.IsInjected(err))
			}
			curve.Add(iter, float64(loss))
			if err := p.applyPush(push); err != nil {
				return fail(res, err, false)
			}
			p.m.steps.Inc()
			res.Completed++
			res.NextIter = iter + 1
			if p.checkpointDue(res.NextIter) {
				if err := p.writeCheckpoint(res.NextIter); err != nil {
					return res, err
				}
			}
		}
		return res, nil
	}

	prefetchQ := make(chan *hostBatch, p.cfg.QueueDepth)
	gradQ := make(chan *gradPush, p.cfg.QueueDepth)
	stop := make(chan struct{})
	var async failSlot
	var wg sync.WaitGroup

	p.spawn(&wg, &async, "prefetch", func() { // pre-fetcher (server pull side)
		defer close(prefetchQ)
		var plan *data.WindowPlan
		nextAdvance, winSize := 1, 0 // batch 0 is unplanned: see nextWindow
		for it := 0; it < steps; it++ {
			if ctx.Err() != nil {
				return
			}
			if la != nil && it == nextAdvance {
				winSize = p.nextWindow(winSize)
				plan = p.advanceWindow(la, startIter+it, winSize, steps-it)
				nextAdvance = it + plan.N
			}
			hb, err := p.gatherBatch(ctx, d, startIter+it, batchSize, plan)
			if err != nil {
				// A gather failure leaves state consistent (the batch never
				// reached the worker); pure cancellation is reported by
				// Train itself.
				if ctx.Err() == nil {
					async.set(err, true)
				}
				return
			}
			hb.planLast = plan != nil && hb.iter-plan.Start == plan.N-1
			select {
			case prefetchQ <- hb:
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	})

	p.spawn(&wg, &async, "apply", func() { // server apply side: drains even after cancel or failure
		broken := false
		for g := range gradQ {
			if broken {
				close(g.donec)
				continue
			}
			if err := p.applyPush(g); err != nil {
				async.set(err, false)
				broken = true
			}
		}
	})

worker:
	for {
		if err, _ := async.get(); err != nil {
			break
		}
		if ctx.Err() != nil {
			break
		}
		var hb *hostBatch
		var ok bool
		waitStart := p.clock.Now()
		select {
		case hb, ok = <-prefetchQ:
		case <-ctx.Done():
			break worker
		}
		p.m.prefetchWaitNS.Add(int64(obs.Since(p.clock, waitStart)))
		if !ok { // pre-fetcher finished (all steps gathered) or aborted
			break
		}
		loss, push, err := p.trainOne(hb)
		if err != nil {
			async.set(err, faults.IsInjected(err))
			break
		}
		curve.Add(hb.iter, float64(loss))
		psp := p.tracer.Begin("push", "ps", tidWorker)
		gradQ <- push
		psp.End()
		p.m.steps.Inc()
		res.Completed++
		res.NextIter = hb.iter + 1
		if p.checkpointDue(res.NextIter) {
			// Drain barrier: the gradient queue is FIFO and the server
			// closes donec in order, so once this push has landed every
			// earlier one has too, and host tables exactly reflect
			// NextIter iterations of training.
			<-push.donec
			if ferr, _ := async.get(); ferr != nil {
				break
			}
			if cerr := p.writeCheckpoint(res.NextIter); cerr != nil {
				async.set(cerr, true)
				break
			}
		}
	}

	// Graceful drain: stop the pre-fetcher, close the gradient queue after
	// the last push, and wait until the server has applied everything.
	close(stop)
	close(gradQ)
	wg.Wait()

	if err, resumable := async.get(); err != nil {
		return fail(res, err, resumable)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// hostAdapter exposes one host-memory table to the model as a dlrm.Table.
// Lookup pools the pre-fetched (cache-synced) unique rows; Update aggregates
// the pooled gradient per unique row, publishes the post-update values to
// the embedding cache, and leaves the gradient for the pipeline to push.
type hostAdapter struct {
	pipeline *Pipeline
	slot     int
	rows     int
	dim      int
	lr       float32

	current *hostRows
	pending *gradRows
}

var _ dlrm.Table = (*hostAdapter)(nil)

// Lookup pools the current pre-fetched rows into per-sample embeddings.
// Outside a pipeline step (inference/evaluation) it reads the host table
// directly under its lock — the synchronous path a serving system would
// take.
func (a *hostAdapter) Lookup(indices, offsets []int) *tensor.Matrix {
	cur := a.current
	if cur == nil {
		uniq, inverse := embedding.Unique(indices)
		values, err := a.pipeline.stores[a.slot].GatherRows(uniq)
		if err != nil {
			// Lookup is a dlrm.Table method and cannot return an error; an
			// unreachable remote store outside a pipeline step surfaces as a
			// typed panic exactly like the adapter-misuse invariant.
			//elrec:invariant typed ErrStoreUnavailable panic: synchronous lookups have no error channel; pipeline steps never take this path
			panic(fmt.Errorf("%w: host table %d: %w", ErrStoreUnavailable, a.slot, err))
		}
		cur = &hostRows{uniq: uniq, inverse: inverse, values: values}
	} else {
		start := a.pipeline.clock.Now()
		defer func() {
			a.pipeline.m.adapterNS.Add(int64(obs.Since(a.pipeline.clock, start)))
		}()
	}
	out := tensor.New(len(offsets), a.dim)
	for s := range offsets {
		start := offsets[s]
		end := len(indices)
		if s+1 < len(offsets) {
			end = offsets[s+1]
		}
		row := out.Row(s)
		for pos := start; pos < end; pos++ {
			tensor.AddTo(row, cur.values.Row(cur.inverse[pos]))
		}
	}
	return out
}

// Update aggregates dOut per unique row, publishes updated values to the
// cache, and stages the gradient push. Outside a pipeline step it panics
// with a typed error; the pipeline's recover machinery converts that into
// an ErrAdapterMisuse-wrapped failure instead of a crash.
func (a *hostAdapter) Update(indices, offsets []int, dOut *tensor.Matrix, lr float32) {
	cur := a.current
	if cur == nil {
		//elrec:invariant typed ErrAdapterMisuse panic: the pipeline recover boundary converts it to an error
		panic(fmt.Errorf("%w: host table %d updated outside a pipeline step", ErrAdapterMisuse, a.slot))
	}
	start := a.pipeline.clock.Now()
	defer func() {
		a.pipeline.m.adapterNS.Add(int64(obs.Since(a.pipeline.clock, start)))
	}()
	grads := tensor.New(len(cur.uniq), a.dim)
	for s := range offsets {
		start := offsets[s]
		end := len(indices)
		if s+1 < len(offsets) {
			end = offsets[s+1]
		}
		for pos := start; pos < end; pos++ {
			tensor.AddTo(grads.Row(cur.inverse[pos]), dOut.Row(s))
		}
	}
	// Publish post-update values: value − lr·grad (the worker's view of the
	// row after this batch; the server applies the same delta to the host).
	updated := make([][]float32, len(cur.uniq))
	for i := range cur.uniq {
		row := make([]float32, a.dim)
		copy(row, cur.values.Row(i))
		tensor.Axpy(-lr, grads.Row(i), row)
		updated[i] = row
	}
	if cur.nextUse != nil {
		a.pipeline.caches[a.slot].PublishWindow(cur.uniq, updated, int(a.pipeline.trained.Load()), cur.nextUse)
	} else {
		a.pipeline.caches[a.slot].PublishAt(cur.uniq, updated, int(a.pipeline.trained.Load()))
	}
	a.pending = &gradRows{uniq: cur.uniq, grads: grads}
}

// NumRows returns the host table's row count.
func (a *hostAdapter) NumRows() int { return a.rows }

// Dim returns the embedding dimension.
func (a *hostAdapter) Dim() int { return a.dim }

// FootprintBytes reports the host-side storage (it does not occupy HBM).
func (a *hostAdapter) FootprintBytes() int64 { return int64(a.rows) * int64(a.dim) * 4 }
