package ps

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// BatchSource produces training batches; data.Dataset satisfies it, and the
// core package wraps it with the index-reordering bijection.
type BatchSource interface {
	Batch(iter, size int) *data.Batch
}

// TableLoc places one embedding table: either resident on the device
// (Device non-nil — typically an Eff-TT table in HBM) or in host memory
// (HostRows > 0 — served by the parameter server through the pipeline).
type TableLoc struct {
	Device   dlrm.Table
	HostRows int
}

// Config configures a pipeline trainer.
type Config struct {
	Model dlrm.Config
	// QueueDepth is the capacity of the pre-fetch and gradient queues.
	// Depth 1 degrades the pipeline to sequential execution (the EL-Rec
	// (Sequential) baseline of Figure 16).
	QueueDepth int
	Seed       uint64
}

// Stats aggregates pipeline counters for the experiment harness: the byte
// counts become simulated PCIe time under the hw model.
type Stats struct {
	Steps           int
	BytesPrefetched int64 // host → device embedding rows
	BytesPushed     int64 // device → host gradients
	CacheSyncs      int64
	CacheHits       int64
	CacheEvictions  int64

	// Wall-time split for the hw cost model: GatherTime and ApplyTime are
	// host-side parameter-server work, TrainTime is worker-side compute,
	// and AdapterTime is the share of TrainTime spent pooling and
	// aggregating host-table rows (CPU-side work in the PS architecture).
	GatherTime  time.Duration
	ApplyTime   time.Duration
	TrainTime   time.Duration
	AdapterTime time.Duration
}

// hostBatch is one pre-fetch queue element: the training batch plus the
// gathered unique host-table rows.
type hostBatch struct {
	iter  int
	batch *data.Batch
	rows  []hostRows // one per host table, in host-table order
}

// hostRows carries the unique rows of one host table for one batch.
type hostRows struct {
	uniq    []int
	inverse []int
	values  *tensor.Matrix // len(uniq) × dim
}

// gradPush is one gradient queue element.
type gradPush struct {
	iter  int
	rows  []gradRows
	donec chan struct{} // closed once applied (used for drain/shutdown)
}

type gradRows struct {
	uniq  []int
	grads *tensor.Matrix // aggregated per unique row
}

// Pipeline trains a DLRM whose embedding layer is split between device
// tables and host-memory tables behind a parameter server, overlapping the
// server-side gather/update with worker-side compute (Figure 9).
type Pipeline struct {
	cfg    Config
	model  *dlrm.Model
	caches []*Cache

	hostBags []*embedding.Bag // parameter-server state
	hostMu   []sync.RWMutex   // guards each host bag
	hostIdx  []int            // host table order -> model table position
	adapters []*hostAdapter

	stats   Stats
	statsMu sync.Mutex // guards gather/apply times written from goroutines
}

// addGatherTime and addApplyTime accumulate host-side durations from the
// pre-fetcher and server goroutines.
func (p *Pipeline) addGatherTime(d time.Duration) {
	p.statsMu.Lock()
	p.stats.GatherTime += d
	p.statsMu.Unlock()
}

func (p *Pipeline) addApplyTime(d time.Duration) {
	p.statsMu.Lock()
	p.stats.ApplyTime += d
	p.statsMu.Unlock()
}

// NewPipeline builds the trainer. locs must list every embedding table in
// dataset order.
func NewPipeline(cfg Config, locs []TableLoc) (*Pipeline, error) {
	if cfg.QueueDepth <= 0 {
		return nil, fmt.Errorf("ps: queue depth %d must be positive", cfg.QueueDepth)
	}
	if len(locs) == 0 {
		return nil, fmt.Errorf("ps: no tables")
	}
	p := &Pipeline{cfg: cfg}
	tables := make([]dlrm.Table, len(locs))
	for i, loc := range locs {
		switch {
		case loc.Device != nil && loc.HostRows > 0:
			return nil, fmt.Errorf("ps: table %d placed on both device and host", i)
		case loc.Device != nil:
			tables[i] = loc.Device
		case loc.HostRows > 0:
			bag := embedding.NewBag(loc.HostRows, cfg.Model.EmbDim, tensor.NewRNG(cfg.Seed+uint64(i)*104729))
			cache := NewCache(cfg.Model.EmbDim, 2*cfg.QueueDepth+2)
			ad := &hostAdapter{pipeline: p, slot: len(p.hostBags), rows: loc.HostRows, dim: cfg.Model.EmbDim, lr: cfg.Model.LR}
			p.hostBags = append(p.hostBags, bag)
			p.caches = append(p.caches, cache)
			p.hostIdx = append(p.hostIdx, i)
			p.adapters = append(p.adapters, ad)
			tables[i] = ad
		default:
			return nil, fmt.Errorf("ps: table %d has no placement", i)
		}
	}
	p.hostMu = make([]sync.RWMutex, len(p.hostBags))
	model, err := dlrm.NewModel(cfg.Model, tables)
	if err != nil {
		return nil, err
	}
	p.model = model
	return p, nil
}

// Model exposes the underlying model (for evaluation).
func (p *Pipeline) Model() *dlrm.Model { return p.model }

// Stats returns accumulated counters (cache counters summed over tables).
func (p *Pipeline) Stats() Stats {
	s := p.stats
	for _, c := range p.caches {
		syncs, hits, ev := c.Stats()
		s.CacheSyncs += syncs
		s.CacheHits += hits
		s.CacheEvictions += ev
	}
	return s
}

// NumHostTables returns how many tables live in host memory.
func (p *Pipeline) NumHostTables() int { return len(p.hostBags) }

// HostBag exposes host table i (for tests).
func (p *Pipeline) HostBag(i int) *embedding.Bag { return p.hostBags[i] }

// gather assembles the pre-fetch payload for one batch: the unique rows of
// every host table, read under the table lock (the server-side embedding
// lookup of the PS architecture).
func (p *Pipeline) gather(iter int, b *data.Batch) *hostBatch {
	start := time.Now()
	defer func() { p.addGatherTime(time.Since(start)) }()
	hb := &hostBatch{iter: iter, batch: b, rows: make([]hostRows, len(p.hostBags))}
	for h, pos := range p.hostIdx {
		uniq, inverse := embedding.Unique(b.Sparse[pos])
		p.hostMu[h].RLock()
		values := p.hostBags[h].GatherRows(uniq)
		p.hostMu[h].RUnlock()
		hb.rows[h] = hostRows{uniq: uniq, inverse: inverse, values: values}
	}
	return hb
}

// apply is the server side of the gradient queue: scatter −lr·grad into the
// host tables, then decrement the cache life cycles.
func (p *Pipeline) apply(g *gradPush) {
	start := time.Now()
	defer func() { p.addApplyTime(time.Since(start)) }()
	for h, gr := range g.rows {
		if len(gr.uniq) == 0 {
			continue
		}
		delta := gr.grads.Clone()
		tensor.Scale(-p.cfg.Model.LR, delta.Data)
		p.hostMu[h].Lock()
		p.hostBags[h].ScatterAdd(gr.uniq, delta)
		p.hostMu[h].Unlock()
	}
	for _, c := range p.caches {
		c.Tick()
	}
	close(g.donec)
}

// trainOne runs the worker side for one pre-fetched batch: cache-sync the
// pre-fetched rows (Step 1 of Figure 9), run forward/backward (the adapters
// capture host-table gradients), and return the gradient push.
func (p *Pipeline) trainOne(hb *hostBatch) (float32, *gradPush) {
	start := time.Now()
	defer func() { p.stats.TrainTime += time.Since(start) }()
	for h := range hb.rows {
		rows := make([][]float32, len(hb.rows[h].uniq))
		for i := range rows {
			rows[i] = hb.rows[h].values.Row(i)
		}
		p.caches[h].Sync(hb.rows[h].uniq, rows)
		p.stats.BytesPrefetched += int64(len(rows)) * int64(p.cfg.Model.EmbDim) * 4
	}
	for h, ad := range p.adapters {
		ad.current = &hb.rows[h]
		ad.pending = nil
	}
	loss := p.model.TrainStep(hb.batch)
	push := &gradPush{iter: hb.iter, rows: make([]gradRows, len(p.adapters)), donec: make(chan struct{})}
	for h, ad := range p.adapters {
		if ad.pending == nil {
			panic("ps: host adapter did not receive an update")
		}
		push.rows[h] = *ad.pending
		p.stats.BytesPushed += int64(len(ad.pending.uniq)) * int64(p.cfg.Model.EmbDim) * 4
		ad.current, ad.pending = nil, nil
	}
	return loss, push
}

// Train runs steps batches of the given size from the dataset through the
// pipeline and returns the loss curve. With QueueDepth > 1 a pre-fetch
// goroutine keeps the queue full and a server goroutine drains the gradient
// queue concurrently with worker compute; with QueueDepth == 1 the pipeline
// degrades to strictly sequential gather → train → apply on one thread (the
// EL-Rec (Sequential) baseline — the worker waits for the server each step,
// exactly as §VI-C describes). Both schedules produce bit-identical
// parameters: the embedding cache guarantees the worker always computes on
// up-to-date rows.
func (p *Pipeline) Train(d BatchSource, startIter, steps, batchSize int) *metrics.LossCurve {
	if p.cfg.QueueDepth == 1 {
		curve := &metrics.LossCurve{}
		for it := 0; it < steps; it++ {
			hb := p.gather(startIter+it, d.Batch(startIter+it, batchSize))
			loss, push := p.trainOne(hb)
			curve.Add(hb.iter, float64(loss))
			p.apply(push)
			p.stats.Steps++
		}
		return curve
	}
	prefetchQ := make(chan *hostBatch, p.cfg.QueueDepth)
	gradQ := make(chan *gradPush, p.cfg.QueueDepth)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // pre-fetcher (server pull side)
		defer wg.Done()
		defer close(prefetchQ)
		for it := 0; it < steps; it++ {
			prefetchQ <- p.gather(startIter+it, d.Batch(startIter+it, batchSize))
		}
	}()
	go func() { // server apply side
		defer wg.Done()
		for g := range gradQ {
			p.apply(g)
		}
	}()

	curve := &metrics.LossCurve{}
	for hb := range prefetchQ {
		loss, push := p.trainOne(hb)
		curve.Add(hb.iter, float64(loss))
		gradQ <- push
		p.stats.Steps++
	}
	close(gradQ)
	wg.Wait()
	return curve
}

// hostAdapter exposes one host-memory table to the model as a dlrm.Table.
// Lookup pools the pre-fetched (cache-synced) unique rows; Update aggregates
// the pooled gradient per unique row, publishes the post-update values to
// the embedding cache, and leaves the gradient for the pipeline to push.
type hostAdapter struct {
	pipeline *Pipeline
	slot     int
	rows     int
	dim      int
	lr       float32

	current *hostRows
	pending *gradRows
}

var _ dlrm.Table = (*hostAdapter)(nil)

// Lookup pools the current pre-fetched rows into per-sample embeddings.
// Outside a pipeline step (inference/evaluation) it reads the host table
// directly under its lock — the synchronous path a serving system would
// take.
func (a *hostAdapter) Lookup(indices, offsets []int) *tensor.Matrix {
	cur := a.current
	if cur == nil {
		uniq, inverse := embedding.Unique(indices)
		a.pipeline.hostMu[a.slot].RLock()
		values := a.pipeline.hostBags[a.slot].GatherRows(uniq)
		a.pipeline.hostMu[a.slot].RUnlock()
		cur = &hostRows{uniq: uniq, inverse: inverse, values: values}
	} else {
		start := time.Now()
		defer func() { a.pipeline.stats.AdapterTime += time.Since(start) }()
	}
	out := tensor.New(len(offsets), a.dim)
	for s := range offsets {
		start := offsets[s]
		end := len(indices)
		if s+1 < len(offsets) {
			end = offsets[s+1]
		}
		row := out.Row(s)
		for pos := start; pos < end; pos++ {
			tensor.AddTo(row, cur.values.Row(cur.inverse[pos]))
		}
	}
	return out
}

// Update aggregates dOut per unique row, publishes updated values to the
// cache, and stages the gradient push.
func (a *hostAdapter) Update(indices, offsets []int, dOut *tensor.Matrix, lr float32) {
	cur := a.current
	if cur == nil {
		panic("ps: host table update outside a pipeline step")
	}
	start := time.Now()
	defer func() { a.pipeline.stats.AdapterTime += time.Since(start) }()
	grads := tensor.New(len(cur.uniq), a.dim)
	for s := range offsets {
		start := offsets[s]
		end := len(indices)
		if s+1 < len(offsets) {
			end = offsets[s+1]
		}
		for pos := start; pos < end; pos++ {
			tensor.AddTo(grads.Row(cur.inverse[pos]), dOut.Row(s))
		}
	}
	// Publish post-update values: value − lr·grad (the worker's view of the
	// row after this batch; the server applies the same delta to the host).
	updated := make([][]float32, len(cur.uniq))
	for i := range cur.uniq {
		row := make([]float32, a.dim)
		copy(row, cur.values.Row(i))
		tensor.Axpy(-lr, grads.Row(i), row)
		updated[i] = row
	}
	a.pipeline.caches[a.slot].Publish(cur.uniq, updated)
	a.pending = &gradRows{uniq: cur.uniq, grads: grads}
}

// NumRows returns the host table's row count.
func (a *hostAdapter) NumRows() int { return a.rows }

// Dim returns the embedding dimension.
func (a *hostAdapter) Dim() int { return a.dim }

// FootprintBytes reports the host-side storage (it does not occupy HBM).
func (a *hostAdapter) FootprintBytes() int64 { return int64(a.rows) * int64(a.dim) * 4 }
