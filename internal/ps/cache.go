// Package ps implements the paper's TT-based pipeline training system (§V):
// a parameter-server architecture where host memory holds the embedding
// tables that do not fit on the device, a pre-fetch queue and a gradient
// queue overlap server-side work with worker-side compute, and a worker-side
// embedding cache with life-cycle (LC) management resolves the
// read-after-write conflict that pre-fetching introduces (Figure 10).
package ps

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Cache is the GPU-side embedding cache of §V-B. It keeps the most recent
// worker-side value of every embedding row that still has gradient pushes in
// flight, so pre-fetched (possibly stale) rows can be patched before use.
//
// Entries expire in one of two ways. The paper's formulation is a life
// cycle (LC) counter: publishing (after training a batch) sets LC to the
// request-queue capacity; each gradient application decrements it
// (Tick/Decrement); at zero the row is evicted. The pipeline instead uses
// push visibility (PublishAt/SyncAt): an entry is dropped exactly when a
// gathered batch proves the host copy has absorbed the entry's update,
// which — unlike the countdown — does not depend on how the server and
// worker goroutines happen to interleave, and is what makes pipelined
// training bit-exact under drain barriers, faults and checkpoint resume.
type Cache struct {
	dim      int
	capacity int // LC value assigned on publish (max queue length)

	mu      sync.Mutex
	entries map[int]*cacheEntry // guarded by mu

	// statistics
	syncs, hits, misses, evictions int64 // guarded by mu

	// shared mirrors the local statistics into pipeline-owned aggregate
	// counters (summed across all caches of one pipeline); each field is a
	// nil-safe obs instrument, so a standalone cache pays only nil checks.
	shared struct {
		syncs, hits, misses, evictions *obs.Counter
	}
}

// attachCounters mirrors this cache's statistics into externally owned
// aggregate counters (nil counters are no-ops). The pipeline attaches the
// same four instruments to every one of its caches, so the registry view is
// the cross-table sum — exactly what Stats() reports.
func (c *Cache) attachCounters(syncs, hits, misses, evictions *obs.Counter) {
	c.mu.Lock()
	c.shared.syncs, c.shared.hits, c.shared.misses, c.shared.evictions = syncs, hits, misses, evictions
	c.mu.Unlock()
}

type cacheEntry struct {
	value []float32
	lc    int
	// push is the iteration whose gradient push produced value (see
	// PublishAt); entries published through plain Publish never expire by
	// push visibility.
	push int
	// nextUse is the absolute iteration of the entry's next planned
	// in-window use under lookahead (PublishWindow/SyncWindow): the entry
	// is protected from push-visibility eviction until that iteration has
	// been served. -1 (the value every non-lookahead path stores) means no
	// protection.
	nextUse int32
}

// NewCache builds a cache for rows of the given dimension. lifecycle is the
// LC value assigned on publish, used only by the countdown expiry path
// (Tick/Decrement); the paper sets it to the request-queue length. The
// pipeline's push-visibility path (SyncAt) ignores it and instead evicts a
// row the moment a gathered batch shows the host has caught up.
func NewCache(dim, lifecycle int) *Cache {
	if dim <= 0 || lifecycle <= 0 {
		//elrec:invariant cache wiring: dim and lifecycle are fixed by NewPipeline
		panic(fmt.Sprintf("ps: invalid cache dim=%d lifecycle=%d", dim, lifecycle))
	}
	return &Cache{dim: dim, capacity: lifecycle, entries: make(map[int]*cacheEntry)}
}

// Sync patches pre-fetched rows in place: values row i (for index ids[i]) is
// replaced by the cached copy when present (the Emb2 case of Figure 10(b)).
// Returns the number of patched rows.
func (c *Cache) Sync(ids []int, values [][]float32) int {
	if len(ids) != len(values) {
		//elrec:invariant ids and rows are built pairwise by the gather/update paths
		panic(fmt.Sprintf("ps: Sync %d ids vs %d rows", len(ids), len(values)))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	patched := 0
	for i, id := range ids {
		if e, ok := c.entries[id]; ok {
			copy(values[i], e.value)
			patched++
			c.hits++
		} else {
			c.misses++
		}
	}
	c.syncs++
	c.mirrorSync(patched, len(ids)-patched)
	return patched
}

// mirrorSync forwards one sync's hit/miss split to the shared aggregate
// counters. Callers hold mu (the shared pointers are written under it).
func (c *Cache) mirrorSync(hits, misses int) {
	c.shared.syncs.Inc()
	c.shared.hits.Add(int64(hits))
	c.shared.misses.Add(int64(misses))
}

// Publish stores the post-update values of the rows just trained, assigning
// a fresh LC. Existing entries are overwritten and their LC reset.
func (c *Cache) Publish(ids []int, values [][]float32) {
	c.PublishAt(ids, values, neverVisible)
}

// neverVisible marks entries published without a push iteration: they only
// expire through the LC counter (Tick/Decrement), never through push
// visibility.
const neverVisible = int(^uint(0) >> 1) // max int

// PublishAt stores the post-update values of the rows trained at iteration
// pushIter — the iteration whose gradient push will make the host copy catch
// up with the cached value. Existing entries are overwritten, their LC reset
// and their push tag advanced.
func (c *Cache) PublishAt(ids []int, values [][]float32, pushIter int) {
	if len(ids) != len(values) {
		//elrec:invariant ids and rows are built pairwise by the gather/update paths
		panic(fmt.Sprintf("ps: Publish %d ids vs %d rows", len(ids), len(values)))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, id := range ids {
		if len(values[i]) != c.dim {
			//elrec:invariant ids and rows are built pairwise by the gather/update paths
			panic(fmt.Sprintf("ps: Publish row %d has dim %d want %d", i, len(values[i]), c.dim))
		}
		e, ok := c.entries[id]
		if !ok {
			e = &cacheEntry{value: make([]float32, c.dim)}
			c.entries[id] = e
		}
		copy(e.value, values[i])
		e.lc = c.capacity
		e.push = pushIter
		e.nextUse = -1
	}
}

// PublishWindow is PublishAt with per-row retention hints from a lookahead
// plan: nextUse[i] is the absolute iteration of the row's next planned
// in-window use (-1 when there is none). Entries with a future next use
// survive push-visibility eviction until SyncWindow has served that use, so
// pinned rows are guaranteed present when their batch skips the host
// gather.
func (c *Cache) PublishWindow(ids []int, values [][]float32, pushIter int, nextUse []int32) {
	if len(ids) != len(values) || len(ids) != len(nextUse) {
		//elrec:invariant ids, rows and hints are built pairwise by the lookahead plan
		panic(fmt.Sprintf("ps: PublishWindow %d ids vs %d rows vs %d hints", len(ids), len(values), len(nextUse)))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, id := range ids {
		if len(values[i]) != c.dim {
			//elrec:invariant ids and rows are built pairwise by the gather/update paths
			panic(fmt.Sprintf("ps: Publish row %d has dim %d want %d", i, len(values[i]), c.dim))
		}
		e, ok := c.entries[id]
		if !ok {
			//elrec:coldpath entry storage is reused across publishes of the same row
			e = &cacheEntry{value: make([]float32, c.dim)}
			c.entries[id] = e
		}
		copy(e.value, values[i])
		e.lc = c.capacity
		e.push = pushIter
		e.nextUse = nextUse[i]
	}
}

// SyncAt is the schedule-independent variant of Sync the pipeline uses.
// applied is the number of gradient pushes that were already visible in the
// host tables when this batch was gathered: pushes 0..applied-1 are
// reflected in values, so every cache entry whose push tag is below applied
// is redundant — the gathered row carries the identical bits — and is
// evicted; the remaining entries hold updates the gathered rows are missing
// and patch them in place.
//
// Unlike a raw LC countdown, whose eviction point shifts with the relative
// timing of the server and worker goroutines (a checkpoint drain barrier,
// a stalled server, or an aborted batch all shift it), push visibility is a
// pure function of the gather order, so any schedule — pipelined,
// sequential, barrier-interrupted or resumed from a checkpoint — syncs
// bit-identical values.
func (c *Cache) SyncAt(applied int, ids []int, values [][]float32) int {
	if len(ids) != len(values) {
		//elrec:invariant ids and rows are built pairwise by the gather/update paths
		panic(fmt.Sprintf("ps: Sync %d ids vs %d rows", len(ids), len(values)))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	evicted := 0
	for id, e := range c.entries {
		if e.push < applied {
			delete(c.entries, id)
			c.evictions++
			evicted++
		}
	}
	patched := 0
	for i, id := range ids {
		if e, ok := c.entries[id]; ok {
			copy(values[i], e.value)
			patched++
			c.hits++
		} else {
			c.misses++
		}
	}
	c.syncs++
	c.mirrorSync(patched, len(ids)-patched)
	c.shared.evictions.Add(int64(evicted))
	return patched
}

// SyncWindow is the lookahead-plan variant of SyncAt, serving batch iter
// whose access pattern was planned by data.Lookahead. Rows with fresh[i]
// true were gathered from the host store and are patched from live entries
// exactly as SyncAt would (the read-after-write fix of Figure 10); rows
// with fresh[i] false were skipped by the gather and are served wholly from
// the pinned working set — their entries are guaranteed present because the
// plan only pins rows published earlier in the window and the sweep below
// never evicts an entry before its promised use. Served entries adopt
// nextUse[i] as their new retention hint.
//
// The eviction sweep is SyncAt's push-visibility rule restricted by the
// oracle: an entry is dropped when the host has absorbed its update AND the
// plan promises no further use at or before the batch being served. A
// pinned row whose last reference is the window's final batch therefore
// expires exactly at the window edge, and rows with no future reference
// expire as in SyncAt — Belady's "farthest (or no) next use" applied with
// an exact future access set.
//
// The serve loop runs before the sweep: entries whose hint pointed at this
// batch are refreshed (or released) by serving, never evicted unserved.
//
//elrec:hotpath lookahead oracle admission: serving and sweeping must not allocate at steady state
func (c *Cache) SyncWindow(applied, iter int, ids []int, values [][]float32, fresh []bool, nextUse []int32) (int, error) {
	if len(ids) != len(values) || len(ids) != len(fresh) || len(ids) != len(nextUse) {
		//elrec:invariant ids, rows and hints are built pairwise by the lookahead plan
		panic(fmt.Sprintf("ps: SyncWindow %d ids vs %d rows vs %d/%d hints", len(ids), len(values), len(fresh), len(nextUse)))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	patched := 0
	for i, id := range ids {
		e, ok := c.entries[id]
		if !ok {
			if !fresh[i] {
				//elrec:coldpath broken-invariant error construction
				return patched, fmt.Errorf("%w: row %d pinned for iteration %d has no cache entry", ErrLookaheadMiss, id, iter)
			}
			c.misses++
			continue
		}
		copy(values[i], e.value)
		e.nextUse = nextUse[i]
		patched++
		c.hits++
	}
	evicted := 0
	for id, e := range c.entries {
		if e.push < applied && (e.nextUse < 0 || int(e.nextUse) <= iter) {
			delete(c.entries, id)
			c.evictions++
			evicted++
		}
	}
	c.syncs++
	c.mirrorSync(patched, len(ids)-patched)
	c.shared.evictions.Add(int64(evicted))
	return patched, nil
}

// Tick lowers the LC of every cached row by one, evicting rows that reach
// zero. Called once per gradient-queue pull applied by the server.
func (c *Cache) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, e := range c.entries {
		e.lc--
		if e.lc <= 0 {
			delete(c.entries, id)
			c.evictions++
			c.shared.evictions.Inc()
		}
	}
}

// Decrement lowers the LC of every listed row that is cached, evicting rows
// that reach zero (the paper's per-batch formulation, kept for targeted
// eviction policies).
func (c *Cache) Decrement(ids []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		e, ok := c.entries[id]
		if !ok {
			continue
		}
		e.lc--
		if e.lc <= 0 {
			delete(c.entries, id)
			c.evictions++
			c.shared.evictions.Inc()
		}
	}
}

// Len returns the number of cached rows.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Lookup returns a copy of the cached row and whether it was present.
func (c *Cache) Lookup(id int) ([]float32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	out := make([]float32, c.dim)
	copy(out, e.value)
	return out, true
}

// CacheStats is one cache's counter snapshot: sync calls, patched rows
// (hits), unpatched rows (misses) and evicted entries.
type CacheStats struct {
	Syncs, Hits, Misses, Evictions int64
}

// Stats returns a consistent snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Syncs: c.syncs, Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
