// Package ps implements the paper's TT-based pipeline training system (§V):
// a parameter-server architecture where host memory holds the embedding
// tables that do not fit on the device, a pre-fetch queue and a gradient
// queue overlap server-side work with worker-side compute, and a worker-side
// embedding cache with life-cycle (LC) management resolves the
// read-after-write conflict that pre-fetching introduces (Figure 10).
package ps

import (
	"fmt"
	"sync"
)

// Cache is the GPU-side embedding cache of §V-B. It keeps the most recent
// worker-side value of every embedding row that still has gradient pushes in
// flight, so pre-fetched (possibly stale) rows can be patched before use.
// Every entry carries a life cycle (LC) counter: publishing (after training
// a batch) sets LC to the request-queue capacity; each gradient application
// mentioning the row decrements it; at zero the row is evicted — by then the
// host copy has absorbed the update.
type Cache struct {
	dim      int
	capacity int // LC value assigned on publish (max queue length)

	mu      sync.Mutex
	entries map[int]*cacheEntry

	// statistics
	syncs, hits, evictions int64
}

type cacheEntry struct {
	value []float32
	lc    int
}

// NewCache builds a cache for rows of the given dimension. lifecycle is the
// LC value assigned on publish. The paper sets it to the request-queue
// length and decrements per pull; our pipeline uses the conservative bound
// 2·depth+2 with one global decrement per applied batch, which provably
// guarantees that no row is evicted before every pre-fetched batch that
// could have read its stale host copy has been cache-synced (see
// Pipeline.Train).
func NewCache(dim, lifecycle int) *Cache {
	if dim <= 0 || lifecycle <= 0 {
		panic(fmt.Sprintf("ps: invalid cache dim=%d lifecycle=%d", dim, lifecycle))
	}
	return &Cache{dim: dim, capacity: lifecycle, entries: make(map[int]*cacheEntry)}
}

// Sync patches pre-fetched rows in place: values row i (for index ids[i]) is
// replaced by the cached copy when present (the Emb2 case of Figure 10(b)).
// Returns the number of patched rows.
func (c *Cache) Sync(ids []int, values [][]float32) int {
	if len(ids) != len(values) {
		panic(fmt.Sprintf("ps: Sync %d ids vs %d rows", len(ids), len(values)))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	patched := 0
	for i, id := range ids {
		if e, ok := c.entries[id]; ok {
			copy(values[i], e.value)
			patched++
			c.hits++
		}
	}
	c.syncs++
	return patched
}

// Publish stores the post-update values of the rows just trained, assigning
// a fresh LC. Existing entries are overwritten and their LC reset.
func (c *Cache) Publish(ids []int, values [][]float32) {
	if len(ids) != len(values) {
		panic(fmt.Sprintf("ps: Publish %d ids vs %d rows", len(ids), len(values)))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, id := range ids {
		if len(values[i]) != c.dim {
			panic(fmt.Sprintf("ps: Publish row %d has dim %d want %d", i, len(values[i]), c.dim))
		}
		e, ok := c.entries[id]
		if !ok {
			e = &cacheEntry{value: make([]float32, c.dim)}
			c.entries[id] = e
		}
		copy(e.value, values[i])
		e.lc = c.capacity
	}
}

// Tick lowers the LC of every cached row by one, evicting rows that reach
// zero. Called once per gradient-queue pull applied by the server.
func (c *Cache) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, e := range c.entries {
		e.lc--
		if e.lc <= 0 {
			delete(c.entries, id)
			c.evictions++
		}
	}
}

// Decrement lowers the LC of every listed row that is cached, evicting rows
// that reach zero (the paper's per-batch formulation, kept for targeted
// eviction policies).
func (c *Cache) Decrement(ids []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		e, ok := c.entries[id]
		if !ok {
			continue
		}
		e.lc--
		if e.lc <= 0 {
			delete(c.entries, id)
			c.evictions++
		}
	}
}

// Len returns the number of cached rows.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Lookup returns a copy of the cached row and whether it was present.
func (c *Cache) Lookup(id int) ([]float32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	out := make([]float32, c.dim)
	copy(out, e.value)
	return out, true
}

// Stats returns (sync calls, patched rows, evictions).
func (c *Cache) Stats() (syncs, hits, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncs, c.hits, c.evictions
}
