package ps

import (
	"testing"

	"repro/internal/data"
)

// TestPipelineEquivalenceSparseTables stresses the embedding cache with
// sparse large tables (many evictions between reuses) and checks exact
// pipelined/sequential equivalence.
func TestPipelineEquivalenceSparseTables(t *testing.T) {
	spec := data.Spec{
		Name: "ps-sparse", NumDense: 3, TableRows: []int{4000, 2500},
		ZipfS: 1.2, ZipfV: 2, GroupSize: 16, ActiveGroups: 4, Locality: 0.8,
		Samples: 1 << 20, Seed: 77,
	}
	d, _ := data.New(spec)
	run := func(depth int) *Pipeline {
		p, err := NewPipeline(Config{Model: psModelCfg(), QueueDepth: depth, Seed: 4}, allHostLocs(spec))
		if err != nil {
			t.Fatal(err)
		}
		mustTrain(t, p, d, 0, 200, 32)
		return p
	}
	seq := run(1)
	pipe := run(4)
	t.Logf("pipe stats: %+v", pipe.Stats())
	for h := 0; h < seq.NumHostTables(); h++ {
		if diff := seq.HostBag(h).Weights.MaxAbsDiff(pipe.HostBag(h).Weights); diff != 0 {
			t.Fatalf("host table %d differs by %v", h, diff)
		}
	}
	sp, pp := seq.Model().MLPParams(), pipe.Model().MLPParams()
	for i := range sp {
		if diff := sp[i].Value.MaxAbsDiff(pp[i].Value); diff != 0 {
			t.Fatalf("MLP param %d differs by %v", i, diff)
		}
	}
}
