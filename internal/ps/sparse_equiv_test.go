package ps

import (
	"testing"

	"repro/internal/data"
	"repro/internal/metrics"
)

// sparseSpec stresses the embedding cache: sparse large tables mean many
// evictions between reuses.
func sparseSpec() data.Spec {
	return data.Spec{
		Name: "ps-sparse", NumDense: 3, TableRows: []int{4000, 2500},
		ZipfS: 1.2, ZipfV: 2, GroupSize: 16, ActiveGroups: 4, Locality: 0.8,
		Samples: 1 << 20, Seed: 77,
	}
}

// TestPipelineEquivalenceSparseTables checks exact equivalence of every
// schedule the pipeline supports: sequential vs pipelined, with and without
// lookahead planning, at several window sizes. Lookahead changes WHERE a
// batch's rows come from (host gather vs pinned cache entries) but never
// their values, so weights, MLP params and the loss curve must be
// bit-identical across all variants.
func TestPipelineEquivalenceSparseTables(t *testing.T) {
	spec := sparseSpec()
	d, _ := data.New(spec)
	run := func(depth, lookahead int) (*Pipeline, *metrics.LossCurve) {
		p, err := NewPipeline(Config{
			Model: psModelCfg(), QueueDepth: depth, Seed: 4, Lookahead: lookahead,
		}, allHostLocs(spec))
		if err != nil {
			t.Fatal(err)
		}
		return p, mustTrain(t, p, d, 0, 200, 32)
	}
	ref, refCurve := run(1, 0)

	cases := []struct {
		name             string
		depth, lookahead int
	}{
		{"pipelined", 4, 0},
		{"seq+lookahead", 1, 8},
		{"pipelined+lookahead", 4, 8},
		{"pipelined+short-window", 4, 3},
		{"pipelined+window-beyond-depth", 2, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, curve := run(tc.depth, tc.lookahead)
			t.Logf("stats: %+v", p.Stats())
			for h := 0; h < ref.NumHostTables(); h++ {
				if diff := ref.HostBag(h).Weights.MaxAbsDiff(p.HostBag(h).Weights); diff != 0 {
					t.Fatalf("host table %d differs by %v", h, diff)
				}
			}
			sp, pp := ref.Model().MLPParams(), p.Model().MLPParams()
			for i := range sp {
				if diff := sp[i].Value.MaxAbsDiff(pp[i].Value); diff != 0 {
					t.Fatalf("MLP param %d differs by %v", i, diff)
				}
			}
			if len(curve.Losses) != len(refCurve.Losses) {
				t.Fatalf("loss curve length %d vs %d", len(curve.Losses), len(refCurve.Losses))
			}
			for i := range curve.Losses {
				if curve.Losses[i] != refCurve.Losses[i] {
					t.Fatalf("loss at step %d: %v vs %v", i, curve.Losses[i], refCurve.Losses[i])
				}
			}
		})
	}
}

// TestPipelineLookaheadBudgetBitExact: a constrained pin budget changes only
// the gather schedule (evicted pins re-gather), never trained values.
func TestPipelineLookaheadBudgetBitExact(t *testing.T) {
	spec := sparseSpec()
	d, _ := data.New(spec)
	run := func(budget int) *Pipeline {
		p, err := NewPipeline(Config{
			Model: psModelCfg(), QueueDepth: 4, Seed: 4,
			Lookahead: 8, LookaheadBudget: budget,
		}, allHostLocs(spec))
		if err != nil {
			t.Fatal(err)
		}
		mustTrain(t, p, d, 0, 120, 32)
		return p
	}
	free := run(0)
	tight := run(5) // far below the window working set: constant eviction
	for h := 0; h < free.NumHostTables(); h++ {
		if diff := free.HostBag(h).Weights.MaxAbsDiff(tight.HostBag(h).Weights); diff != 0 {
			t.Fatalf("host table %d differs by %v under a tight pin budget", h, diff)
		}
	}
	fs, ts := free.Stats(), tight.Stats()
	if ts.LookaheadPinnedRows >= fs.LookaheadPinnedRows {
		t.Fatalf("tight budget pinned %d rows, unlimited pinned %d — budget not enforced",
			ts.LookaheadPinnedRows, fs.LookaheadPinnedRows)
	}
}

// TestPipelineLookaheadStats: with lookahead on, the oracle must beat the
// plain LC cache — higher hit rate, fewer bytes gathered — and the lookahead
// instruments must move.
func TestPipelineLookaheadStats(t *testing.T) {
	spec := sparseSpec()
	d, _ := data.New(spec)
	run := func(lookahead int) Stats {
		p, err := NewPipeline(Config{
			Model: psModelCfg(), QueueDepth: 4, Seed: 4, Lookahead: lookahead,
		}, allHostLocs(spec))
		if err != nil {
			t.Fatal(err)
		}
		mustTrain(t, p, d, 0, 200, 32)
		return p.Stats()
	}
	base := run(0)
	la := run(12)
	t.Logf("baseline: hit-rate=%.4f prefetched=%d", base.CacheHitRate, base.BytesPrefetched)
	t.Logf("lookahead: hit-rate=%.4f prefetched=%d pinned=%d windows=%d",
		la.CacheHitRate, la.BytesPrefetched, la.LookaheadPinnedRows, la.LookaheadWindows)
	if la.LookaheadWindows == 0 || la.LookaheadPinnedRows == 0 {
		t.Fatalf("lookahead instruments did not move: %+v", la)
	}
	if base.LookaheadWindows != 0 || base.LookaheadPinnedRows != 0 {
		t.Fatalf("baseline run counted lookahead activity: %+v", base)
	}
	if la.CacheHitRate <= base.CacheHitRate {
		t.Fatalf("lookahead hit rate %.4f not above baseline %.4f", la.CacheHitRate, base.CacheHitRate)
	}
	if la.BytesPrefetched >= base.BytesPrefetched {
		t.Fatalf("lookahead gathered %d bytes, baseline %d — dedup saved nothing",
			la.BytesPrefetched, base.BytesPrefetched)
	}
}
