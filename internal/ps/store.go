package ps

import (
	"repro/internal/tensor"
)

// HostStore is the pluggable backing store for one host-placed embedding
// table: the parameter-server side of the pipeline's gather/push contract.
// The default implementation is an in-process bag under a lock (the
// single-machine mode); internal/distps provides a remote implementation
// that consistent-hash shards the rows across PS shard servers over TCP.
//
// Semantics the pipeline relies on:
//
//   - GatherRows returns a fresh len(uniq)×Dim matrix holding the current
//     value of each requested row. It may be called concurrently with
//     ApplyDelta; the store serializes internally.
//   - ApplyDelta adds delta (len(uniq)×Dim, already scaled by −lr) into the
//     addressed rows and must be fully applied — and visible to any
//     subsequent GatherRows — before it returns. The pipeline's freshness
//     accounting (hostBatch.gathered vs the applied counter) depends on
//     this happens-before edge.
//   - ApplyDelta must be idempotent-safe at the transport level: if it
//     returns an error the pipeline treats training state as torn
//     (ErrApplyFailed, restore from checkpoint) rather than retrying, so
//     any internal retries must deduplicate their own replays.
type HostStore interface {
	GatherRows(uniq []int) (*tensor.Matrix, error)
	ApplyDelta(uniq []int, delta *tensor.Matrix) error
	NumRows() int
	Dim() int
}

// localStore serves one host table from process memory: the bag lives in
// pipeline.hostBags[slot] and is guarded by pipeline.hostMu[slot]. This is
// the store NewPipeline builds for a TableLoc with HostRows set.
type localStore struct {
	p    *Pipeline
	slot int
	rows int
	dim  int
}

var _ HostStore = (*localStore)(nil)

// GatherRows reads the requested rows under the table's read lock.
func (s *localStore) GatherRows(uniq []int) (*tensor.Matrix, error) {
	s.p.hostMu[s.slot].RLock()
	values := s.p.hostBags[s.slot].GatherRows(uniq)
	s.p.hostMu[s.slot].RUnlock()
	return values, nil
}

// ApplyDelta scatters the pre-scaled delta into the table under its write
// lock.
func (s *localStore) ApplyDelta(uniq []int, delta *tensor.Matrix) error {
	s.p.hostMu[s.slot].Lock()
	s.p.hostBags[s.slot].ScatterAdd(uniq, delta)
	s.p.hostMu[s.slot].Unlock()
	return nil
}

// NumRows returns the table's row count.
func (s *localStore) NumRows() int { return s.rows }

// Dim returns the embedding dimension.
func (s *localStore) Dim() int { return s.dim }
