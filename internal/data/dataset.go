package data

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Dataset is a deterministic synthetic dataset: Batch(i, size) always
// produces the same batch for the same spec, independent of generation
// order, so every training system in a comparison sees identical data.
type Dataset struct {
	Spec Spec
	// scatter[t] maps "ordered" positions (where hidden groups are
	// contiguous) to actual row ids, one permutation per table.
	scatter [][]int32
	// groups[t] is the number of hidden groups of table t.
	groups []int
}

// New builds a Dataset from a validated spec.
func New(spec Spec) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	d := &Dataset{Spec: spec}
	d.scatter = make([][]int32, spec.NumTables())
	d.groups = make([]int, spec.NumTables())
	for t, rows := range spec.TableRows {
		g := rows / spec.GroupSize
		if g < 1 {
			g = 1
		}
		d.groups[t] = g
		perm := make([]int32, rows)
		for i := range perm {
			perm[i] = int32(i)
		}
		r := rand.New(rand.NewSource(int64(mix(spec.Seed, uint64(t), 0x5CA77E2)))) //nolint:gosec // deterministic synthetic data
		r.Shuffle(rows, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		d.scatter[t] = perm
	}
	return d, nil
}

// Batch holds one training batch. With the default single-valued schema
// (Criteo/Avazu) sample s's bag in table t is the one index Sparse[t][s];
// with Spec.MultiHot = K each sample owns K consecutive indices and
// Offsets[s] = s·K. Offsets is shared across tables.
type Batch struct {
	Dense   *tensor.Matrix // batch × NumDense
	Sparse  [][]int        // per table: batch·K indices
	Offsets []int          // bag starts: s·K
	Labels  []float32
}

// Size returns the number of samples in the batch.
func (b *Batch) Size() int { return len(b.Labels) }

// Batch deterministically generates batch number iter with the given size.
func (d *Dataset) Batch(iter, size int) *Batch {
	if size <= 0 {
		//elrec:invariant batch size is validated at every config entry point
		panic("data: non-positive batch size")
	}
	spec := d.Spec
	bag := spec.BagSize()
	b := &Batch{
		Dense:   tensor.New(size, spec.NumDense),
		Sparse:  make([][]int, spec.NumTables()),
		Offsets: make([]int, size),
		Labels:  make([]float32, size),
	}
	for s := range b.Offsets {
		b.Offsets[s] = s * bag
	}

	r := rand.New(rand.NewSource(int64(mix(spec.Seed, uint64(iter), 0xBA7C4)))) //nolint:gosec // deterministic synthetic data

	for t := range b.Sparse {
		b.Sparse[t] = d.BatchIndices(iter, size, t)
	}

	// Dense features: standard normal.
	for i := range b.Dense.Data {
		b.Dense.Data[i] = float32(r.NormFloat64())
	}

	// Labels from the hidden model: a matrix-factorization-style pairwise
	// term (which the DLRM dot interaction can express exactly), a small
	// additive per-index effect, and a linear dense term. Multi-hot bags
	// contribute the mean of their indices' hidden factors.
	var hsum, hvec, hbag [latentDim]float64
	for s := 0; s < size; s++ {
		logit := hiddenBias
		for k := range hsum {
			hsum[k] = 0
		}
		var norms float64
		for t := range b.Sparse {
			for k := range hbag {
				hbag[k] = 0
			}
			var eff float64
			for q := 0; q < bag; q++ {
				idx := b.Sparse[t][s*bag+q]
				eff += indexEffect(spec.Seed, t, idx)
				indexVector(spec.Seed, t, idx, &hvec)
				for k, v := range hvec {
					hbag[k] += v
				}
			}
			logit += eff / float64(bag)
			for k := range hbag {
				v := hbag[k] / float64(bag)
				hsum[k] += v
				norms += v * v
			}
		}
		// Σ_{t<t'} ⟨h_t, h_t'⟩ = (‖Σh‖² − Σ‖h‖²)/2.
		var sumsq float64
		for _, v := range hsum {
			sumsq += v * v
		}
		logit += pairScale * (sumsq - norms) / 2
		for f := 0; f < spec.NumDense; f++ {
			logit += denseWeight(spec.Seed, f) * float64(b.Dense.At(s, f))
		}
		p := 1 / (1 + math.Exp(-logit))
		if r.Float64() < p {
			b.Labels[s] = 1
		}
	}
	return b
}

// BatchIndices deterministically generates only table t's indices of batch
// iter (size·BagSize of them) — each (iter, table) pair has its own RNG
// stream, so per-table statistics (access counts, unique-index counts)
// never pay for the other 25 tables. Batch composes these same streams, so
// BatchIndices(i, n, t) equals Batch(i, n).Sparse[t].
//
// The batch concentrates on ActiveGroups hot groups with probability
// Locality and falls back to the global Zipf distribution otherwise.
func (d *Dataset) BatchIndices(iter, size, t int) []int {
	spec := d.Spec
	size *= spec.BagSize()
	r := rand.New(rand.NewSource(int64(mix(spec.Seed, uint64(iter), 0x7AB1E0+uint64(t))))) //nolint:gosec // deterministic synthetic data
	rows := spec.TableRows[t]
	g := d.groups[t]
	groupZipf := rand.NewZipf(r, spec.ZipfS, spec.ZipfV, uint64(g-1))

	active := make([]int, spec.ActiveGroups)
	for i := range active {
		active[i] = int(groupZipf.Uint64())
	}

	out := make([]int, size)
	for s := 0; s < size; s++ {
		var grp int
		if r.Float64() < spec.Locality {
			grp = active[r.Intn(len(active))]
		} else {
			grp = int(groupZipf.Uint64())
		}
		lo := grp * spec.GroupSize
		span := spec.GroupSize
		if lo >= rows {
			lo, span = 0, minInt(spec.GroupSize, rows)
		} else if lo+span > rows {
			span = rows - lo
		}
		// Intra-group skew: a fresh small Zipf is cheap (span ≤ GroupSize).
		off := int(sampleZipfSmall(r, spec.ZipfS, span))
		ordered := lo + off
		out[s] = int(d.scatter[t][ordered])
	}
	return out
}

// sampleZipfSmall draws from P(k) ∝ (1+k)^−s over [0, n) using inverse
// transform on the (short) cumulative table — avoids allocating a
// rand.Zipf per group.
func sampleZipfSmall(r *rand.Rand, s float64, n int) int {
	if n <= 1 {
		return 0
	}
	// Continuous Pareto-like inversion: k = floor((u^(−1/(s−1)) − 1)),
	// rejected when ≥ n. The loop terminates quickly: mass concentrates
	// near 0.
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		k := int(math.Pow(u, -1/(s-1)) - 1)
		if k >= 0 && k < n {
			return k
		}
		// Fall back to uniform tail occasionally to guarantee progress.
		if r.Float64() < 0.1 {
			return r.Intn(n)
		}
	}
}

// hiddenBias centers label prevalence near a CTR-like rate.
const hiddenBias = -1.0

// latentDim is the dimensionality of hidden per-index vectors driving the
// pairwise label signal.
const latentDim = 4

// pairScale weighs the pairwise interaction term in the logit. With 0-mean
// unit-ish latent vectors it keeps the logit in a learnable range.
const pairScale = 1.5

// indexEffect is the hidden additive contribution of (table, index) to the
// logit, a deterministic pseudo-random value in [-0.6, 0.6].
func indexEffect(seed uint64, table, idx int) float64 {
	h := mix(seed, uint64(table)<<32|uint64(uint32(idx)), 0xEFFEC7)
	return (float64(h>>11)/(1<<53) - 0.5) * 1.2
}

// indexVector fills dst with the hidden latent vector of (table, index),
// entries in [-1, 1].
func indexVector(seed uint64, table, idx int, dst *[latentDim]float64) {
	for k := range dst {
		h := mix(seed, uint64(table)<<40|uint64(uint32(idx)), 0x1A7E47+uint64(k)*0x9E37)
		dst[k] = float64(h>>11)/(1<<52) - 1
	}
}

// denseWeight is the hidden weight of dense feature f in [-0.3, 0.3].
func denseWeight(seed uint64, f int) float64 {
	h := mix(seed, uint64(f), 0xDE45E)
	return (float64(h>>11)/(1<<53) - 0.5) * 0.6
}

// mix is a splitmix64-style hash combiner.
func mix(a, b, c uint64) uint64 {
	z := a ^ (b * 0x9e3779b97f4a7c15) ^ (c * 0xbf58476d1ce4e5b9)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
