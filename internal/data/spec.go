// Package data generates the synthetic click-through-rate datasets the
// experiments run on. The real Criteo Terabyte / Criteo Kaggle / Avazu data
// cannot ship with the repository, so the generator reproduces the two
// statistical properties the paper's optimizations exploit (§II-C):
//
//  1. power-law ("Zipf") access skew over embedding rows — a small fraction
//     of rows receives most accesses (Figure 4a);
//  2. heavy intra-batch index repetition — the unique-index count per batch
//     is far below the batch size (Figure 4b);
//
// plus a third property the index reordering mines: co-occurrence community
// structure. Each table's rows are partitioned into hidden groups scattered
// across the id space; samples inside one batch concentrate on a few active
// groups (user behaviour drifting over time, §IV-A). Labels come from a
// hidden per-index effect model so CTR accuracy is learnable.
package data

import "fmt"

// Spec describes one synthetic dataset.
type Spec struct {
	Name      string
	NumDense  int   // dense (numerical) features per sample
	TableRows []int // cardinality of each categorical feature
	// ZipfS / ZipfV parameterize the group-level and intra-group Zipf
	// distributions (P(k) ∝ (V+k)^−S).
	ZipfS float64
	ZipfV float64
	// GroupSize is the hidden community size within each table.
	GroupSize int
	// ActiveGroups is how many groups a batch concentrates on; Locality is
	// the probability a sample draws from the active set rather than the
	// global distribution.
	ActiveGroups int
	Locality     float64
	// MultiHot is the number of indices each sample draws per table
	// (0 or 1 = single-valued, the Criteo/Avazu schema; >1 exercises
	// multi-hot bags like production DLRM workloads).
	MultiHot int
	// Samples is the nominal dataset size (epoch accounting).
	Samples int
	Seed    uint64
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.NumDense < 0 || len(s.TableRows) == 0 {
		return fmt.Errorf("data: spec %q needs tables and non-negative dense count", s.Name)
	}
	for i, r := range s.TableRows {
		if r <= 0 {
			return fmt.Errorf("data: spec %q table %d has %d rows", s.Name, i, r)
		}
	}
	if s.ZipfS <= 1 {
		return fmt.Errorf("data: spec %q ZipfS must be > 1, got %v", s.Name, s.ZipfS)
	}
	if s.ZipfV < 1 {
		return fmt.Errorf("data: spec %q ZipfV must be >= 1, got %v", s.Name, s.ZipfV)
	}
	if s.GroupSize <= 0 || s.ActiveGroups <= 0 {
		return fmt.Errorf("data: spec %q needs positive GroupSize/ActiveGroups", s.Name)
	}
	if s.Locality < 0 || s.Locality > 1 {
		return fmt.Errorf("data: spec %q locality %v outside [0,1]", s.Name, s.Locality)
	}
	if s.MultiHot < 0 {
		return fmt.Errorf("data: spec %q negative MultiHot %d", s.Name, s.MultiHot)
	}
	return nil
}

// BagSize returns the indices drawn per sample per table (≥1).
func (s Spec) BagSize() int {
	if s.MultiHot < 1 {
		return 1
	}
	return s.MultiHot
}

// NumTables returns the categorical feature count.
func (s Spec) NumTables() int { return len(s.TableRows) }

// TotalRows returns the summed cardinality across tables.
func (s Spec) TotalRows() int {
	t := 0
	for _, r := range s.TableRows {
		t += r
	}
	return t
}

// EmbeddingBytes returns the uncompressed embedding footprint at the given
// dimension (Table II's last column).
func (s Spec) EmbeddingBytes(dim int) int64 {
	return int64(s.TotalRows()) * int64(dim) * 4
}

// scaleRows shrinks base cardinalities by factor, with a floor.
func scaleRows(base []int, factor float64) []int {
	out := make([]int, len(base))
	for i, b := range base {
		r := int(float64(b) * factor)
		if r < 4 {
			r = 4
		}
		out[i] = r
	}
	return out
}

// AvazuSpec returns an Avazu-like dataset: 1 dense and 20 categorical
// features, two of them very large (the real dataset's device_ip/device_id
// columns), at the given cardinality scale (1.0 ≈ the real dataset).
func AvazuSpec(scale float64) Spec {
	base := []int{
		240, 7, 7, 4737, 7745, 26, 8552, 559, 36,
		2_686_408, 6_729_486, 8251, 5, 4, 2626, 8, 9, 435, 4, 68,
	}
	return Spec{
		Name:         "avazu",
		NumDense:     1,
		TableRows:    scaleRows(base, scale),
		ZipfS:        1.2,
		ZipfV:        2,
		GroupSize:    64,
		ActiveGroups: 8,
		Locality:     0.8,
		Samples:      40_428_967,
		Seed:         0xA7A2,
	}
}

// KaggleSpec returns a Criteo-Kaggle-like dataset: 13 dense and 26
// categorical features.
func KaggleSpec(scale float64) Spec {
	base := []int{
		1460, 583, 10_131_227, 2_202_608, 305, 24, 12517, 633, 3,
		93145, 5683, 8_351_593, 3194, 27, 14992, 5_461_306, 10,
		5652, 2173, 4, 7_046_547, 18, 15, 286_181, 105, 142_572,
	}
	return Spec{
		Name:         "kaggle",
		NumDense:     13,
		TableRows:    scaleRows(base, scale),
		ZipfS:        1.15,
		ZipfV:        2,
		GroupSize:    64,
		ActiveGroups: 8,
		Locality:     0.8,
		Samples:      45_840_617,
		Seed:         0xCA66,
	}
}

// TerabyteSpec returns a Criteo-Terabyte-like dataset: same schema as
// Kaggle with the cardinalities of the largest public DLRM dataset
// (~115M total rows at scale 1, the paper's 59.2 GB at dim 128).
func TerabyteSpec(scale float64) Spec {
	base := []int{
		39_884_406, 33_823, 17_139, 7339, 20_046, 4, 7105, 1382, 63,
		25_641_295, 582_469, 245_828, 11, 2209, 10_667, 104, 4, 968,
		15, 20_165_896, 12_675_940, 15_156_453, 302_516, 12_022, 97, 35,
	}
	return Spec{
		Name:         "terabyte",
		NumDense:     13,
		TableRows:    scaleRows(base, scale),
		ZipfS:        1.1,
		ZipfV:        2,
		GroupSize:    64,
		ActiveGroups: 8,
		Locality:     0.8,
		Samples:      4_373_472_329,
		Seed:         0x7E7A,
	}
}

// SpecByName returns the preset with the given name at the given scale.
func SpecByName(name string, scale float64) (Spec, error) {
	switch name {
	case "avazu":
		return AvazuSpec(scale), nil
	case "kaggle":
		return KaggleSpec(scale), nil
	case "terabyte":
		return TerabyteSpec(scale), nil
	}
	return Spec{}, fmt.Errorf("data: unknown dataset %q (want avazu, kaggle or terabyte)", name)
}
