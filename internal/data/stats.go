package data

import (
	"sort"

	"repro/internal/embedding"
)

// AccessCounts tallies how often each row of table t is accessed over the
// given number of batches — the "global information" of §IV-A, and the
// input to frequency-based index ordering.
func (d *Dataset) AccessCounts(table, batches, batchSize int) []int64 {
	counts := make([]int64, d.Spec.TableRows[table])
	for it := 0; it < batches; it++ {
		for _, idx := range d.BatchIndices(it, batchSize, table) {
			counts[idx]++
		}
	}
	return counts
}

// CumulativeAccessCurve reproduces Figure 4(a): for each fraction p in
// points (ascending, in (0,1]), the fraction of all accesses covered by the
// most popular p of rows.
func CumulativeAccessCurve(counts []int64, points []float64) []float64 {
	sorted := append([]int64(nil), counts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var total float64
	for _, c := range sorted {
		total += float64(c)
	}
	out := make([]float64, len(points))
	if total == 0 {
		return out
	}
	var running float64
	next := 0
	for i, c := range sorted {
		running += float64(c)
		frac := float64(i+1) / float64(len(sorted))
		for next < len(points) && frac >= points[next] {
			out[next] = running / total
			next++
		}
		if next == len(points) {
			break
		}
	}
	for ; next < len(points); next++ {
		out[next] = 1
	}
	return out
}

// AvgUniquePerBatch reproduces one point of Figure 4(b): the average number
// of unique indices per batch for table t at the given batch size.
func (d *Dataset) AvgUniquePerBatch(table, batches, batchSize int) float64 {
	var total int
	for it := 0; it < batches; it++ {
		uniq, _ := embedding.Unique(d.BatchIndices(it, batchSize, table))
		total += len(uniq)
	}
	return float64(total) / float64(batches)
}

// AvgUniqueAllTables averages the per-batch unique-index count over every
// table (the statistic the paper plots per dataset).
func (d *Dataset) AvgUniqueAllTables(batches, batchSize int) float64 {
	var total float64
	for t := range d.Spec.TableRows {
		total += d.AvgUniquePerBatch(t, batches, batchSize)
	}
	return total / float64(d.Spec.NumTables())
}

// LabelRate returns the positive-label fraction over the given batches,
// used to sanity-check the hidden CTR model.
func (d *Dataset) LabelRate(batches, batchSize int) float64 {
	var pos, n float64
	for it := 0; it < batches; it++ {
		b := d.Batch(it, batchSize)
		for _, l := range b.Labels {
			pos += float64(l)
			n++
		}
	}
	return pos / n
}
