package data

import (
	"runtime/debug"
	"testing"

	"repro/internal/embedding"
)

// lookaheadTestSpec is a small multi-table spec with enough reuse (tight
// id space, high locality) that windows exercise pinning, next-use linking,
// and Belady eviction on real Zipf-skewed streams.
func lookaheadTestSpec() Spec {
	return Spec{
		Name:         "lookahead-test",
		NumDense:     4,
		TableRows:    []int{500, 120, 2000},
		ZipfS:        1.2,
		ZipfV:        1.5,
		GroupSize:    16,
		ActiveGroups: 4,
		Locality:     0.8,
		Samples:      1 << 20,
		Seed:         991,
	}
}

// fixedSource is a canned SparseSource over explicit per-batch id streams:
// ids[iter][table]. It allocates nothing per call, which also makes it the
// subject of the steady-state allocation test.
type fixedSource struct {
	ids [][][]int
}

func (f *fixedSource) BatchIndices(iter, size, table int) []int {
	return f.ids[iter][table]
}

// planOver builds a planner over a fixedSource covering every table in ids
// with the given per-table row bound and pin budget, and plans one full
// window from iteration 0.
func planOver(t *testing.T, ids [][][]int, rows, budget int) *WindowPlan {
	t.Helper()
	nt := len(ids[0])
	cfg := LookaheadConfig{Window: len(ids), Batch: 1, Budget: budget}
	for ti := 0; ti < nt; ti++ {
		cfg.Tables = append(cfg.Tables, ti)
		cfg.Rows = append(cfg.Rows, rows)
	}
	la, err := NewLookahead(&fixedSource{ids: ids}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return la.Advance(0, len(ids))
}

// TestLookaheadPlanEquivalence checks every field of a planned window
// against a brute-force reference computed directly from the dataset's
// batches: Uniq/Inverse must equal embedding.Unique of the index stream,
// Fresh must mark exactly the first in-window use of each row (unlimited
// budget), NextUse must link to the next batch using the row, and
// FreshIDs/FreshPos must be the Fresh subset in order.
func TestLookaheadPlanEquivalence(t *testing.T) {
	d, err := New(lookaheadTestSpec())
	if err != nil {
		t.Fatal(err)
	}
	const (
		window = 6
		batch  = 32
		start  = 3 // windows need not start at iteration 0
	)
	spec := d.Spec
	la, err := NewLookahead(d, LookaheadConfig{
		Window: window,
		Batch:  batch,
		Tables: []int{0, 1, 2},
		Rows:   spec.TableRows,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := la.Advance(start, window)
	if plan.Start != start || plan.N != window {
		t.Fatalf("plan covers [%d,%d), want [%d,%d)", plan.Start, plan.Start+plan.N, start, start+window)
	}

	for ti := range spec.TableRows {
		streams := make([][]int, window)
		for j := 0; j < window; j++ {
			streams[j] = d.BatchIndices(start+j, batch, ti)
		}
		seen := map[int]bool{}
		for j := 0; j < window; j++ {
			acc := plan.Access(ti, start+j)
			uniq, inverse := embedding.Unique(streams[j])
			if !equalInts(acc.Uniq, uniq) || !equalInts(acc.Inverse, inverse) {
				t.Fatalf("table %d iter %d: Uniq/Inverse disagree with embedding.Unique", ti, start+j)
			}
			var wantFreshIDs, wantFreshPos []int
			for i, id := range uniq {
				wantFresh := !seen[id]
				seen[id] = true
				if acc.Fresh[i] != wantFresh {
					t.Fatalf("table %d iter %d row %d: Fresh=%v, want %v (first window use)",
						ti, start+j, id, acc.Fresh[i], wantFresh)
				}
				wantNext := int32(-1)
				for k := j + 1; k < window; k++ {
					if containsInt(streams[k], id) {
						wantNext = int32(start + k)
						break
					}
				}
				if acc.NextUse[i] != wantNext {
					t.Fatalf("table %d iter %d row %d: NextUse=%d, want %d",
						ti, start+j, id, acc.NextUse[i], wantNext)
				}
				if wantFresh {
					wantFreshIDs = append(wantFreshIDs, id)
					wantFreshPos = append(wantFreshPos, i)
				}
			}
			if !equalInts(acc.FreshIDs, wantFreshIDs) || !equalInts(acc.FreshPos, wantFreshPos) {
				t.Fatalf("table %d iter %d: FreshIDs/FreshPos disagree with Fresh flags", ti, start+j)
			}
		}
	}

	// A second window starting where the first ended: rows carried over from
	// the previous window must gather fresh again (pinning is per window).
	plan2 := la.Advance(start+window, window)
	for ti := range spec.TableRows {
		acc := plan2.Access(ti, start+window)
		for i := range acc.Uniq {
			if !acc.Fresh[i] {
				t.Fatalf("table %d: first batch of a new window served row %d from a stale pin", ti, acc.Uniq[i])
			}
		}
	}
	plan.Release()
	plan2.Release()
}

// TestLookaheadBeladyEviction is the table-driven oracle-eviction test: when
// the pin budget overflows, the planner must drop the pin whose next use is
// farthest in the future (or rewrite nothing when capacity suffices), and
// the victim's later accesses must come back as fresh gathers.
func TestLookaheadBeladyEviction(t *testing.T) {
	cases := []struct {
		name   string
		ids    [][]int // batch → stream of one table
		budget int
		// wantFresh[j] lists the expected Fresh flags of batch j's uniq rows.
		wantFresh [][]bool
		// wantNext[j] lists the expected (post-rewrite) NextUse values.
		wantNext [][]int32
	}{
		{
			// Row 1 next used at iter 1 (near), row 2 at iter 3 (far). With
			// budget 1 the batch-0 pin of row 2 is Belady's victim: its
			// NextUse is rewritten to -1 and iter 3 gathers it fresh.
			name:      "farthest-next-use evicted",
			ids:       [][]int{{1, 2}, {1}, {}, {2}},
			budget:    1,
			wantFresh: [][]bool{{true, true}, {false}, {}, {true}},
			wantNext:  [][]int32{{1, -1}, {-1}, {}, {-1}},
		},
		{
			// Same streams, budget 2: both pins fit, nothing is evicted.
			name:      "no eviction under budget",
			ids:       [][]int{{1, 2}, {1}, {}, {2}},
			budget:    2,
			wantFresh: [][]bool{{true, true}, {false}, {}, {false}},
			wantNext:  [][]int32{{1, 3}, {-1}, {}, {-1}},
		},
		{
			// Unlimited budget (0): every reuse is served from the pin set.
			name:      "unlimited budget pins everything",
			ids:       [][]int{{1, 2, 3}, {3, 1}, {2}},
			budget:    0,
			wantFresh: [][]bool{{true, true, true}, {false, false}, {false}},
			wantNext:  [][]int32{{1, 2, 1}, {-1, -1}, {-1}},
		},
		{
			// A row with NO future use never pins, so it cannot displace a
			// row that does recur.
			name:      "no-future-use row takes no budget",
			ids:       [][]int{{7, 8}, {8}},
			budget:    1,
			wantFresh: [][]bool{{true, true}, {false}},
			wantNext:  [][]int32{{-1, 1}, {-1}},
		},
		{
			// Tie on next use: eviction is deterministic (first-listed max),
			// and exactly one of the two promises survives.
			name:      "deterministic tie break",
			ids:       [][]int{{4, 5}, {4, 5}},
			budget:    1,
			wantFresh: [][]bool{{true, true}, {true, false}},
			wantNext:  [][]int32{{-1, 1}, {-1, -1}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ids := make([][][]int, len(tc.ids))
			for j := range tc.ids {
				ids[j] = [][]int{tc.ids[j]}
			}
			plan := planOver(t, ids, 16, tc.budget)
			defer plan.Release()
			for j := range tc.ids {
				acc := plan.Access(0, j)
				if len(acc.Fresh) != len(tc.wantFresh[j]) {
					t.Fatalf("iter %d: %d uniq rows, want %d", j, len(acc.Fresh), len(tc.wantFresh[j]))
				}
				for i := range acc.Fresh {
					if acc.Fresh[i] != tc.wantFresh[j][i] {
						t.Errorf("iter %d slot %d (row %d): Fresh=%v, want %v",
							j, i, acc.Uniq[i], acc.Fresh[i], tc.wantFresh[j][i])
					}
					if acc.NextUse[i] != tc.wantNext[j][i] {
						t.Errorf("iter %d slot %d (row %d): NextUse=%d, want %d",
							j, i, acc.Uniq[i], acc.NextUse[i], tc.wantNext[j][i])
					}
				}
			}
		})
	}
}

// TestLookaheadWindowBoundary pins the window-edge contract: a row whose
// last reference is the final batch of the window carries NextUse=-1 there
// (its cache entry may expire with ordinary push-visibility), and the same
// row in the next window is planned as a fresh gather — no promise crosses
// the boundary.
func TestLookaheadWindowBoundary(t *testing.T) {
	// Row 9 is used in every batch of both windows; row 3 only at the edges.
	// Batches 3-5 back the second window.
	ids := [][][]int{
		{{9, 3}}, {{9}}, {{9, 3}},
		{{9, 3}}, {{9}}, {{9, 3}},
	}
	la, err := NewLookahead(&fixedSource{ids: ids}, LookaheadConfig{
		Window: 3, Batch: 1, Tables: []int{0}, Rows: []int{16},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := la.Advance(0, 3)
	edge := plan.Access(0, 2)
	for i, id := range edge.Uniq {
		if edge.NextUse[i] != -1 {
			t.Errorf("window-edge access of row %d promises NextUse=%d, want -1", id, edge.NextUse[i])
		}
	}
	// Both rows were pinned by earlier batches; their last references land
	// exactly on the window edge and are served from the pin set.
	if edge.Fresh[0] || edge.Fresh[1] {
		t.Errorf("edge batch: Fresh=%v, want both rows served from pins", edge.Fresh)
	}
	plan.Release()

	// Next window reuses the same streams: everything in its first batch is
	// fresh even though the previous window pinned row 9 throughout.
	plan2 := la.Advance(3, 3)
	first := plan2.Access(0, 3)
	for i, id := range first.Uniq {
		if !first.Fresh[i] {
			t.Errorf("row %d carried a pin across the window boundary", id)
		}
	}
	plan2.Release()
}

// TestLookaheadShortWindow covers the tail of a run: Advance with n smaller
// than the configured window plans only the remaining batches.
func TestLookaheadShortWindow(t *testing.T) {
	ids := [][][]int{{{1, 2}}, {{2}}, {{1}}, {{2}}}
	la, err := NewLookahead(&fixedSource{ids: ids}, LookaheadConfig{
		Window: 4, Batch: 1, Tables: []int{0}, Rows: []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := la.Advance(0, 2) // only batches 0 and 1 remain
	if plan.N != 2 {
		t.Fatalf("plan.N = %d, want 2", plan.N)
	}
	acc := plan.Access(0, 0)
	// Row 1's next use (iter 2) is outside the short window: no promise.
	if acc.NextUse[0] != -1 {
		t.Errorf("row 1 NextUse=%d, want -1 (next use beyond plan)", acc.NextUse[0])
	}
	if acc.NextUse[1] != 1 {
		t.Errorf("row 2 NextUse=%d, want 1", acc.NextUse[1])
	}
	plan.Release()
}

// TestLookaheadDeviceWindow checks protection-set collection: ids occurring
// in more than one batch of the window are collected exactly once; ids
// repeated only within a single batch are not.
func TestLookaheadDeviceWindow(t *testing.T) {
	ids := [][][]int{
		{{5, 5, 1, 2}}, // 5 repeats within the batch only
		{{2, 3}},
		{{3, 2, 6}},
	}
	la, err := NewLookahead(&fixedSource{ids: ids}, LookaheadConfig{
		Window: 3, Batch: 1,
		DeviceTables: []int{0}, DeviceRows: []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := la.Advance(0, 3)
	got := map[int]int{}
	for _, id := range plan.Device[0].IDs {
		got[id]++
	}
	for _, id := range []int{2, 3} {
		if got[id] != 1 {
			t.Errorf("cross-batch id %d collected %d times, want 1", id, got[id])
		}
	}
	for _, id := range []int{1, 5, 6} {
		if got[id] != 0 {
			t.Errorf("single-batch id %d collected %d times, want 0", id, got[id])
		}
	}
	plan.Release()
}

// TestLookaheadFallbackSource exercises the full-batch fallback: a source
// without BatchIndices gets its batches generated at plan time, cached on
// the plan, and the planned access sets match the cached batches.
func TestLookaheadFallbackSource(t *testing.T) {
	d, err := New(lookaheadTestSpec())
	if err != nil {
		t.Fatal(err)
	}
	la, err := NewLookahead(batchOnly{d}, LookaheadConfig{
		Window: 3, Batch: 8, Tables: []int{1}, Rows: []int{d.Spec.TableRows[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := la.Advance(0, 3)
	for j := 0; j < 3; j++ {
		b := plan.BatchAt(j)
		if b == nil {
			t.Fatalf("fallback plan cached no batch for iter %d", j)
		}
		uniq, _ := embedding.Unique(b.Sparse[1])
		if !equalInts(plan.Access(0, j).Uniq, uniq) {
			t.Fatalf("iter %d: plan Uniq disagrees with cached batch", j)
		}
	}
	plan.Release()
}

// batchOnly hides Dataset.BatchIndices so only the fallback interface shows.
type batchOnly struct{ d *Dataset }

func (b batchOnly) Batch(iter, size int) *Batch { return b.d.Batch(iter, size) }

// TestLookaheadConfigValidation covers NewLookahead's error paths.
func TestLookaheadConfigValidation(t *testing.T) {
	src := &fixedSource{ids: [][][]int{{{0}}, {{0}}}}
	bad := []LookaheadConfig{
		{Window: 1, Batch: 1},                                          // window too small
		{Window: 2, Batch: 0},                                          // no batch size
		{Window: 2, Batch: 1, Tables: []int{0}},                        // rows missing
		{Window: 2, Batch: 1, Tables: []int{0}, Rows: []int{0}},        // non-positive rows
		{Window: 2, Batch: 1, DeviceTables: []int{0}},                  // device rows missing
		{Window: 2, Batch: 1, DeviceTables: []int{0}, DeviceRows: nil}, // device rows missing
	}
	for i, cfg := range bad {
		if _, err := NewLookahead(src, cfg); err == nil {
			t.Errorf("config %d: expected an error", i)
		}
	}
	if _, err := NewLookahead(struct{}{}, LookaheadConfig{Window: 2, Batch: 1}); err == nil {
		t.Error("expected an error for a source with neither interface")
	}
}

// TestLookaheadZeroAllocSteadyState enforces the hot-path contract checked
// statically by the hotalloc analyzer: once plan storage has grown to the
// working set, Advance+Release over a non-allocating source performs zero
// heap allocations per window.
func TestLookaheadZeroAllocSteadyState(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	d, err := New(lookaheadTestSpec())
	if err != nil {
		t.Fatal(err)
	}
	const (
		window = 4
		batch  = 16
		rounds = 6
	)
	// Freeze the dataset's streams into a canned source: index generation is
	// the dataset's cost, not the planner's.
	ids := make([][][]int, window*rounds)
	for j := range ids {
		ids[j] = make([][]int, len(d.Spec.TableRows))
		for ti := range ids[j] {
			ids[j][ti] = d.BatchIndices(j, batch, ti)
		}
	}
	la, err := NewLookahead(&fixedSource{ids: ids}, LookaheadConfig{
		Window: window,
		Batch:  batch,
		Tables: []int{0, 1},
		Rows:   []int{d.Spec.TableRows[0], d.Spec.TableRows[1]},
		Budget: 64,
		// Third table doubles as the device table to cover planDevice too.
		DeviceTables: []int{2},
		DeviceRows:   []int{d.Spec.TableRows[2]},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warmup over every window position grows uniq/pin/protection storage to
	// the full working set.
	for r := 0; r < 2; r++ {
		for j := 0; j+window <= len(ids); j += window {
			la.Advance(j, window).Release()
		}
	}
	pos := 0
	allocs := testing.AllocsPerRun(rounds*2, func() {
		la.Advance(pos, window).Release()
		pos += window
		if pos+window > len(ids) {
			pos = 0
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Advance allocated %v times per window, want 0", allocs)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
