package data

import (
	"math"
	"testing"

	"repro/internal/embedding"
)

func smallSpec() Spec {
	return Spec{
		Name:         "test",
		NumDense:     3,
		TableRows:    []int{500, 64, 1000},
		ZipfS:        1.2,
		ZipfV:        2,
		GroupSize:    32,
		ActiveGroups: 4,
		Locality:     0.8,
		Samples:      100000,
		Seed:         7,
	}
}

func TestSpecValidate(t *testing.T) {
	good := smallSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Spec){
		func(s *Spec) { s.TableRows = nil },
		func(s *Spec) { s.TableRows = []int{0} },
		func(s *Spec) { s.NumDense = -1 },
		func(s *Spec) { s.ZipfS = 1.0 },
		func(s *Spec) { s.ZipfV = 0.5 },
		func(s *Spec) { s.GroupSize = 0 },
		func(s *Spec) { s.ActiveGroups = 0 },
		func(s *Spec) { s.Locality = 1.5 },
	}
	for i, mutate := range cases {
		s := smallSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
}

func TestPresetSpecsValid(t *testing.T) {
	for _, name := range []string{"avazu", "kaggle", "terabyte"} {
		s, err := SpecByName(name, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := New(s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := SpecByName("bogus", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPresetSchemas(t *testing.T) {
	a := AvazuSpec(1)
	if a.NumDense != 1 || a.NumTables() != 20 {
		t.Fatalf("avazu schema %d dense %d tables", a.NumDense, a.NumTables())
	}
	k := KaggleSpec(1)
	if k.NumDense != 13 || k.NumTables() != 26 {
		t.Fatalf("kaggle schema %d dense %d tables", k.NumDense, k.NumTables())
	}
	tb := TerabyteSpec(1)
	if tb.NumDense != 13 || tb.NumTables() != 26 {
		t.Fatalf("terabyte schema %d dense %d tables", tb.NumDense, tb.NumTables())
	}
	// Terabyte footprint at dim 128 should be in the paper's ~59 GB regime.
	gb := float64(tb.EmbeddingBytes(128)) / 1e9
	if gb < 45 || gb > 75 {
		t.Fatalf("terabyte embedding footprint %.1f GB, want ≈59", gb)
	}
}

func TestBatchDeterminism(t *testing.T) {
	d, err := New(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	a := d.Batch(5, 64)
	b := d.Batch(5, 64)
	if a.Dense.MaxAbsDiff(b.Dense) != 0 {
		t.Fatal("dense features not deterministic")
	}
	for tt := range a.Sparse {
		for s := range a.Sparse[tt] {
			if a.Sparse[tt][s] != b.Sparse[tt][s] {
				t.Fatal("sparse indices not deterministic")
			}
		}
	}
	for s := range a.Labels {
		if a.Labels[s] != b.Labels[s] {
			t.Fatal("labels not deterministic")
		}
	}
	// Different iteration numbers give different batches.
	c := d.Batch(6, 64)
	same := true
	for tt := range a.Sparse {
		for s := range a.Sparse[tt] {
			if a.Sparse[tt][s] != c.Sparse[tt][s] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("consecutive batches identical")
	}
}

func TestBatchShapeAndRanges(t *testing.T) {
	spec := smallSpec()
	d, _ := New(spec)
	b := d.Batch(0, 32)
	if b.Size() != 32 {
		t.Fatalf("batch size %d", b.Size())
	}
	if b.Dense.Rows != 32 || b.Dense.Cols != spec.NumDense {
		t.Fatalf("dense shape %dx%d", b.Dense.Rows, b.Dense.Cols)
	}
	if len(b.Sparse) != spec.NumTables() {
		t.Fatalf("%d sparse tables", len(b.Sparse))
	}
	for tt, col := range b.Sparse {
		if len(col) != 32 {
			t.Fatalf("table %d has %d indices", tt, len(col))
		}
		for _, idx := range col {
			if idx < 0 || idx >= spec.TableRows[tt] {
				t.Fatalf("table %d index %d out of range", tt, idx)
			}
		}
	}
	for s, o := range b.Offsets {
		if o != s {
			t.Fatalf("offsets not identity: %v", b.Offsets[:8])
		}
	}
	for _, l := range b.Labels {
		if l != 0 && l != 1 {
			t.Fatalf("label %v not binary", l)
		}
	}
}

func TestBatchSizePanics(t *testing.T) {
	d, _ := New(smallSpec())
	defer func() {
		if recover() == nil {
			t.Fatal("Batch(0,0) did not panic")
		}
	}()
	d.Batch(0, 0)
}

func TestAccessSkewPowerLaw(t *testing.T) {
	// Figure 4(a): a small fraction of rows covers most accesses.
	d, _ := New(smallSpec())
	counts := d.AccessCounts(2, 50, 256) // table 2 (1000 rows)
	curve := CumulativeAccessCurve(counts, []float64{0.05, 0.25, 1.0})
	if curve[0] < 0.3 {
		t.Fatalf("top 5%% of rows cover only %.2f of accesses, want skew", curve[0])
	}
	if curve[1] <= curve[0] || curve[2] < 0.999 {
		t.Fatalf("curve not monotone to 1: %v", curve)
	}
}

func TestUniquePerBatchGap(t *testing.T) {
	// Figure 4(b): unique indices ≪ batch size.
	d, _ := New(smallSpec())
	avg := d.AvgUniquePerBatch(0, 20, 512)
	if avg >= 512 {
		t.Fatalf("avg unique %v not below batch size", avg)
	}
	if avg < 1 {
		t.Fatalf("degenerate unique count %v", avg)
	}
	// Unique count must grow sublinearly with batch size.
	avg2 := d.AvgUniquePerBatch(0, 20, 1024)
	if avg2 >= 2*avg {
		t.Fatalf("unique count grew linearly: %v -> %v", avg, avg2)
	}
	all := d.AvgUniqueAllTables(5, 256)
	if all <= 0 || all >= 256 {
		t.Fatalf("AvgUniqueAllTables = %v", all)
	}
}

func TestCumulativeAccessCurveEdgeCases(t *testing.T) {
	if got := CumulativeAccessCurve([]int64{0, 0}, []float64{0.5, 1}); got[0] != 0 || got[1] != 0 {
		t.Fatalf("zero counts curve %v", got)
	}
	got := CumulativeAccessCurve([]int64{10}, []float64{1})
	if got[0] != 1 {
		t.Fatalf("single row curve %v", got)
	}
}

func TestLabelRateReasonable(t *testing.T) {
	d, _ := New(smallSpec())
	rate := d.LabelRate(20, 256)
	if rate < 0.05 || rate > 0.8 {
		t.Fatalf("label rate %v outside a learnable CTR range", rate)
	}
}

func TestLabelsCorrelateWithHiddenModel(t *testing.T) {
	// Indices with positive hidden effect should have higher empirical CTR
	// than those with negative effect, so models can learn the task.
	spec := smallSpec()
	d, _ := New(spec)
	var posSum, posN, negSum, negN float64
	for it := 0; it < 80; it++ {
		b := d.Batch(it, 256)
		for s := 0; s < b.Size(); s++ {
			eff := indexEffect(spec.Seed, 0, b.Sparse[0][s])
			if eff > 0.2 {
				posSum += float64(b.Labels[s])
				posN++
			} else if eff < -0.2 {
				negSum += float64(b.Labels[s])
				negN++
			}
		}
	}
	if posN == 0 || negN == 0 {
		t.Skip("not enough extreme-effect samples")
	}
	if posSum/posN <= negSum/negN {
		t.Fatalf("labels uncorrelated with hidden effects: %v vs %v", posSum/posN, negSum/negN)
	}
}

func TestGroupLocalityInBatches(t *testing.T) {
	// Samples within one batch should share hidden groups far more often
	// than across random batches — the property index reordering exploits.
	spec := smallSpec()
	d, _ := New(spec)
	groupOf := make(map[int]int) // actual id -> hidden group (table 0)
	for ordered, actual := range d.scatter[0] {
		groupOf[int(actual)] = ordered / spec.GroupSize
	}
	intra := map[int]int{}
	b := d.Batch(0, 256)
	for _, idx := range b.Sparse[0] {
		intra[groupOf[idx]]++
	}
	// With 4 active groups and locality 0.8, the top-4 groups should cover
	// well over half the batch.
	top := topKSum(intra, 4)
	if float64(top) < 0.5*256 {
		t.Fatalf("top-4 groups cover %d/256 samples; locality too weak", top)
	}
}

func topKSum(m map[int]int, k int) int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	// Simple selection for tiny slices.
	sum := 0
	for i := 0; i < k && len(vals) > 0; i++ {
		best := 0
		for j, v := range vals {
			if v > vals[best] {
				best = j
			}
		}
		sum += vals[best]
		vals = append(vals[:best], vals[best+1:]...)
	}
	return sum
}

func TestDenseFeaturesStandardized(t *testing.T) {
	d, _ := New(smallSpec())
	var sum, sumsq, n float64
	for it := 0; it < 10; it++ {
		b := d.Batch(it, 128)
		for _, v := range b.Dense.Data {
			sum += float64(v)
			sumsq += float64(v) * float64(v)
			n++
		}
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean) > 0.1 || math.Abs(std-1) > 0.15 {
		t.Fatalf("dense features mean %v std %v, want ≈N(0,1)", mean, std)
	}
}

func TestUniqueHelperAgreement(t *testing.T) {
	// AvgUniquePerBatch over a single batch must equal a direct computation.
	d, _ := New(smallSpec())
	got := d.AvgUniquePerBatch(1, 1, 100)
	b0 := d.Batch(0, 100)
	uniq0, _ := embedding.Unique(b0.Sparse[1])
	if got != float64(len(uniq0)) {
		t.Fatalf("AvgUniquePerBatch over 1 batch = %v want %d", got, len(uniq0))
	}
}

func TestBatchIndicesMatchesBatch(t *testing.T) {
	d, _ := New(smallSpec())
	b := d.Batch(7, 64)
	for tt := range b.Sparse {
		got := d.BatchIndices(7, 64, tt)
		for s := range got {
			if got[s] != b.Sparse[tt][s] {
				t.Fatalf("table %d sample %d: BatchIndices %d != Batch %d", tt, s, got[s], b.Sparse[tt][s])
			}
		}
	}
}

func TestMultiHotBatches(t *testing.T) {
	spec := smallSpec()
	spec.MultiHot = 3
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.BagSize() != 3 {
		t.Fatalf("BagSize = %d", spec.BagSize())
	}
	d, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	b := d.Batch(0, 16)
	if b.Size() != 16 {
		t.Fatalf("batch size %d", b.Size())
	}
	for tt, col := range b.Sparse {
		if len(col) != 16*3 {
			t.Fatalf("table %d has %d indices, want 48", tt, len(col))
		}
	}
	for s, o := range b.Offsets {
		if o != s*3 {
			t.Fatalf("offsets[%d] = %d want %d", s, o, s*3)
		}
	}
	// BatchIndices agrees with Batch under multi-hot too.
	got := d.BatchIndices(0, 16, 1)
	for i := range got {
		if got[i] != b.Sparse[1][i] {
			t.Fatal("multi-hot BatchIndices disagrees with Batch")
		}
	}
	// Labels remain binary and learnable-ish.
	if rate := d.LabelRate(10, 128); rate < 0.02 || rate > 0.9 {
		t.Fatalf("multi-hot label rate %v", rate)
	}
	if spec.MultiHot = -1; spec.Validate() == nil {
		t.Fatal("negative MultiHot accepted")
	}
}
