package distps

import (
	"context"
	"fmt"
	"hash/fnv"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/embedding"
	"repro/internal/ps"
	"repro/internal/tensor"
	"repro/internal/tt"
)

// Scenario is the shared description of one distributed training run: the
// dataset, the model towers, and the placement split. Every participant —
// PS shards, workers, and the single-process reference — derives its
// configuration from the same Scenario, which is what makes the
// distributed run bit-comparable to the reference: identical seeds flow to
// identical table constructors on every side.
//
// Placement rule (mirroring the paper's hybrid layout): tables with at
// least TTThreshold rows are TT-compressed and live on the device; the
// rest are the "overflow" host tables, sharded across the PS by the
// consistent-hash ring.
type Scenario struct {
	Spec  data.Spec
	Model dlrm.Config

	Rank        int
	TTThreshold int

	// Seed drives host-table initialization (shards and the reference both
	// derive table i's RNG as Seed + i*104729) and the TT table seeds.
	Seed uint64

	QueueDepth int
}

// NewScenario builds a Scenario from a dataset preset name, mirroring the
// flag surface of the elrec-ps and elrec-worker binaries so both derive
// identical configurations from identical flags.
func NewScenario(dataset string, scale float64, dim, rank, ttThreshold int, lr float64, queueDepth int) (Scenario, error) {
	var spec data.Spec
	switch dataset {
	case "avazu":
		spec = data.AvazuSpec(scale)
	case "kaggle":
		spec = data.KaggleSpec(scale)
	case "terabyte":
		spec = data.TerabyteSpec(scale)
	default:
		return Scenario{}, fmt.Errorf("%w: unknown dataset %q (want avazu, kaggle or terabyte)", ErrBadRequest, dataset)
	}
	model := dlrm.DefaultConfig(spec.NumDense, dim)
	model.LR = float32(lr)
	model.Seed = spec.Seed + 1
	if queueDepth <= 0 {
		queueDepth = 4
	}
	return Scenario{Spec: spec, Model: model, Rank: rank, TTThreshold: ttThreshold,
		Seed: spec.Seed, QueueDepth: queueDepth}, nil
}

// useTT reports whether a table of the given cardinality is TT-compressed
// on the device (the BuildTables rule).
func (sc Scenario) useTT(rows int) bool {
	return sc.TTThreshold >= 0 && rows >= sc.TTThreshold
}

// HostSpecs lists the host-placed (sharded) tables, in model order.
func (sc Scenario) HostSpecs() []TableSpec {
	var out []TableSpec
	for i, rows := range sc.Spec.TableRows {
		if !sc.useTT(rows) {
			out = append(out, TableSpec{Index: i, Rows: rows})
		}
	}
	return out
}

func (sc Scenario) ttSpec() dlrm.TableSpec {
	return dlrm.TableSpec{Dim: sc.Model.EmbDim, Rank: sc.Rank, TTThreshold: sc.TTThreshold,
		Opts: tt.EffOptions(), Seed: sc.Seed}
}

// tableLocs builds the pipeline placement. stores == nil places host
// tables in local memory (the single-process reference); otherwise each
// host table is backed by the store the callback returns.
func (sc Scenario) tableLocs(stores func(TableSpec) ps.HostStore) ([]ps.TableLoc, error) {
	tables, _, err := dlrm.BuildTables(sc.Spec.TableRows, sc.ttSpec())
	if err != nil {
		return nil, err
	}
	locs := make([]ps.TableLoc, len(sc.Spec.TableRows))
	for i, rows := range sc.Spec.TableRows {
		switch {
		case sc.useTT(rows):
			locs[i] = ps.TableLoc{Device: tables[i]}
		case stores != nil:
			locs[i] = ps.TableLoc{Store: stores(TableSpec{Index: i, Rows: rows})}
		default:
			locs[i] = ps.TableLoc{HostRows: rows}
		}
	}
	return locs, nil
}

// ReferenceLocs places every host table in local process memory — the
// single-process reference the distributed run must match bit-exactly.
func (sc Scenario) ReferenceLocs() ([]ps.TableLoc, error) {
	return sc.tableLocs(nil)
}

// RemoteLocs places every host table behind the shard-set client. ctx
// bounds every RPC the resulting stores issue (see Client.Store).
func (sc Scenario) RemoteLocs(ctx context.Context, c *Client) ([]ps.TableLoc, error) {
	return sc.tableLocs(func(spec TableSpec) ps.HostStore { return c.Store(ctx, spec) })
}

// PipelineConfig is the ps.Config skeleton both modes share.
func (sc Scenario) PipelineConfig() ps.Config {
	return ps.Config{Model: sc.Model, QueueDepth: sc.QueueDepth, Seed: sc.Seed}
}

// ShardConfig derives shard id's configuration.
func (sc Scenario) ShardConfig(id, numShards int, dir string) ShardConfig {
	return ShardConfig{ID: id, NumShards: numShards, Dim: sc.Model.EmbDim, Seed: sc.Seed,
		Tables: sc.HostSpecs(), Dir: dir}
}

// ClientConfig derives a worker's client configuration.
func (sc Scenario) ClientConfig(workerID uint64, shards []string) ClientConfig {
	return ClientConfig{WorkerID: workerID, Shards: shards, Dim: sc.Model.EmbDim,
		Seed: sc.Seed, Tables: sc.HostSpecs()}
}

// --- state fingerprinting --------------------------------------------------

// GatherFullTable reads every row of one host table through a store — the
// observer path for comparing a sharded run against a reference.
func GatherFullTable(store ps.HostStore, spec TableSpec) (*tensor.Matrix, error) {
	rows := make([]int, spec.Rows)
	for i := range rows {
		rows[i] = i
	}
	return store.GatherRows(rows)
}

// HashState returns a stable FNV-1a/64 fingerprint of the full training
// state of p: MLP parameters, device tables, and the supplied host-table
// contents (one matrix per HostSpecs entry, in order). Both the worker
// (host values gathered from the shards) and the reference (host values
// read from local bags) hash through the same checkpoint serialization, so
// equal fingerprints mean bit-identical parameters.
func HashState(p *ps.Pipeline, host []TableSpec, hostValues []*tensor.Matrix) (uint64, error) {
	if len(host) != len(hostValues) {
		return 0, fmt.Errorf("%w: %d host specs, %d value matrices", ErrBadRequest, len(host), len(hostValues))
	}
	slot := make(map[int]int, len(host))
	for h, spec := range host {
		if hostValues[h] == nil || hostValues[h].Rows != spec.Rows {
			return 0, fmt.Errorf("%w: host table %d values missing or mis-shaped", ErrBadRequest, spec.Index)
		}
		slot[spec.Index] = h
	}
	resolve := func(i int, t dlrm.Table) dlrm.Table {
		h, ok := slot[i]
		if !ok {
			return t
		}
		m := hostValues[h]
		bag := embedding.NewBag(m.Rows, m.Cols, tensor.NewRNG(1))
		copy(bag.Weights.Data, m.Data)
		return bag
	}
	hash := fnv.New64a()
	if err := checkpoint.SaveTraining(hash, p.Model(), resolve, checkpoint.TrainState{}); err != nil {
		return 0, err
	}
	return hash.Sum64(), nil
}
