package distps

import "testing"

func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(3), NewRing(3)
	for table := 0; table < 4; table++ {
		for row := 0; row < 500; row++ {
			if a.Owner(table, row) != b.Owner(table, row) {
				t.Fatalf("ring owners diverge at (%d, %d)", table, row)
			}
		}
	}
}

func TestRingCoversAllShards(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		r := NewRing(n)
		if r.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", r.Shards(), n)
		}
		counts := make([]int, n)
		const rows = 2000
		for row := 0; row < rows; row++ {
			o := r.Owner(0, row)
			if o < 0 || o >= n {
				t.Fatalf("owner %d out of range [0, %d)", o, n)
			}
			counts[o]++
		}
		for s, c := range counts {
			if c == 0 {
				t.Errorf("n=%d: shard %d owns no rows of a %d-row table", n, s, rows)
			}
		}
	}
}

// TestRingRebalanceBound checks the consistent-hashing property: going from
// n to n+1 shards moves roughly 1/(n+1) of the keys, not most of them.
func TestRingRebalanceBound(t *testing.T) {
	const rows = 4000
	r3, r4 := NewRing(3), NewRing(4)
	moved := 0
	for row := 0; row < rows; row++ {
		if r3.Owner(1, row) != r4.Owner(1, row) {
			moved++
		}
	}
	// Expected ≈ 25%; modulo hashing (row % n) would move ≈ 75%.
	if frac := float64(moved) / rows; frac > 0.5 {
		t.Fatalf("3→4 shards moved %.0f%% of rows; consistent hashing should move ~25%%", frac*100)
	}
}

func TestRingTablesHashIndependently(t *testing.T) {
	r := NewRing(4)
	same := 0
	const rows = 1000
	for row := 0; row < rows; row++ {
		if r.Owner(0, row) == r.Owner(1, row) {
			same++
		}
	}
	// Independent placement agrees ~1/n of the time; identical placement
	// (table index ignored) would agree always.
	if same == rows {
		t.Fatal("tables 0 and 1 place identically; table index is not hashed")
	}
}
