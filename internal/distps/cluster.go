package distps

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Cluster view: the worker-side aggregation layer over the msgStats RPC.
// One scrape of the worker's debug endpoint answers for the whole cluster
// — merged per-shard metrics at /cluster, and a single offset-corrected
// Chrome trace spanning the worker and every shard at /cluster/trace.

// ShardView is one shard's slice of the merged cluster view. A shard that
// could not be reached still appears, with Err set, so a partially dead
// cluster produces a partial view instead of none.
type ShardView struct {
	Shard         int          `json:"shard"`
	Err           string       `json:"err,omitempty"`
	ClockOffsetNS int64        `json:"clock_offset_ns"` // shard clock − worker clock
	Metrics       obs.Snapshot `json:"metrics"`
	Spans         int          `json:"spans"`
	Dropped       int64        `json:"dropped"`
}

// WorkerView is the worker's own slice of the cluster view.
type WorkerView struct {
	Metrics obs.Snapshot `json:"metrics"`
	Spans   int          `json:"spans"`
	Dropped int64        `json:"dropped"`
}

// ClusterView is the merged cluster snapshot served at /cluster.
type ClusterView struct {
	Worker WorkerView  `json:"worker"`
	Shards []ShardView `json:"shards"`
}

// ClusterStats fetches every shard's observability snapshot over msgStats
// and merges it with the worker's own registry and tracer. Per-shard
// failures are recorded in the view, not returned: the cluster view must
// stay useful exactly when part of the cluster is down.
func ClusterStats(ctx context.Context, c *Client, reg *obs.Registry, tr *obs.Tracer) ClusterView {
	view := ClusterView{
		Worker: WorkerView{Metrics: reg.Snapshot(), Spans: len(tr.Spans()), Dropped: tr.Dropped()},
	}
	for i := range c.conns {
		sv := ShardView{Shard: i, ClockOffsetNS: c.ShardOffset(i)}
		st, err := c.Stats(ctx, i, 0)
		if err != nil {
			sv.Err = err.Error()
		} else {
			sv.Metrics = st.Metrics
			sv.Spans = len(st.Spans)
			sv.Dropped = st.Dropped
		}
		view.Shards = append(view.Shards, sv)
	}
	return view
}

// WriteClusterTrace fetches every shard's recent spans and writes one
// merged Chrome trace: the worker's own timeline as pid 1, shard i as
// pid 2+i, with each shard's epoch shifted by the heartbeat-estimated
// clock offset so all timelines sit on the worker's clock. workerEpochNS
// is the worker tracer's epoch on the worker's wall clock (pass
// tr.Epoch().UnixNano() measured by the same clock the client uses).
// Unreachable shards are skipped; the worker's timeline always appears.
func WriteClusterTrace(ctx context.Context, w io.Writer, c *Client, tr *obs.Tracer, workerEpochNS int64) error {
	procs := []obs.ProcessTrace{{
		Name:    "worker",
		PID:     1,
		EpochNS: workerEpochNS,
		Spans:   tr.Spans(),
		Threads: tr.Threads(),
		Inst:    tr.Instants(),
	}}
	for i := range c.conns {
		st, err := c.Stats(ctx, i, 0)
		if err != nil {
			c.log.Warn("distps: cluster trace: shard unreachable", "shard", i, "err", err)
			continue
		}
		procs = append(procs, obs.ProcessTrace{
			Name: fmt.Sprintf("shard%d", st.ShardID),
			PID:  2 + i,
			// Subtracting the offset (shard − worker) moves the shard's
			// epoch onto the worker's clock.
			EpochNS: st.EpochUnixNanos - c.ShardOffset(i),
			Spans:   st.Spans,
			Threads: st.Threads,
		})
	}
	return obs.WriteMergedChromeTrace(w, procs)
}

// ClusterHandlers returns the worker's cluster-view debug routes, for
// mounting via obs.ServeWith:
//
//	/cluster        merged per-shard metrics + worker metrics (JSON)
//	/cluster/trace  offset-corrected merged Chrome trace (JSON)
//	/healthz        process liveness (always 200 once serving)
//	/readyz         200 while the worker holds the lease and trains
//
// The scrape timeout bounds how long a dead shard can stall a request.
//
//elrec:rootctx handler factory: blocking happens inside the returned handlers, each bounded by r.Context() plus scrapeTimeout
func ClusterHandlers(w *Worker, reg *obs.Registry, tr *obs.Tracer, scrapeTimeout time.Duration) map[string]http.HandlerFunc {
	if scrapeTimeout <= 0 {
		scrapeTimeout = 5 * time.Second
	}
	c := w.Client()
	return map[string]http.HandlerFunc{
		"/cluster": func(rw http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), scrapeTimeout)
			defer cancel()
			rw.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(rw)
			enc.SetIndent("", "  ")
			// The connection is gone on encode failure; nothing to report to.
			_ = enc.Encode(ClusterStats(ctx, c, reg, tr))
		},
		"/cluster/trace": func(rw http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), scrapeTimeout)
			defer cancel()
			rw.Header().Set("Content-Type", "application/json")
			rw.Header().Set("Content-Disposition", `attachment; filename="elrec-cluster-trace.json"`)
			_ = WriteClusterTrace(ctx, rw, c, tr, tr.Epoch().UnixNano())
		},
		"/healthz": healthzHandler,
		"/readyz": func(rw http.ResponseWriter, r *http.Request) {
			writeReady(rw, w.Active())
		},
	}
}

// ShardHandlers returns a PS shard's health routes for obs.ServeWith:
// /healthz is process liveness, /readyz reflects restore/drain state (an
// unrestored shard answers 503 until the trainer restores it).
func ShardHandlers(s *Shard) map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"/healthz": healthzHandler,
		"/readyz": func(rw http.ResponseWriter, r *http.Request) {
			writeReady(rw, s.Ready())
		},
	}
}

func healthzHandler(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(rw, "ok")
}

func writeReady(rw http.ResponseWriter, ready bool) {
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ready {
		rw.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(rw, "not ready")
		return
	}
	fmt.Fprintln(rw, "ready")
}
