package distps

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Message payload formats. Every payload is a flat little-endian record
// built with the enc/dec cursors below; the frame layer (wire.go) already
// guarantees integrity (checksum) and bounds (max payload), so decoders
// here only validate structure. A structural mismatch wraps ErrBadFrame:
// it means wire-version skew or a corrupted peer, and the connection is
// not trustworthy afterwards.

// TableSpec identifies one host-placed (overflow) embedding table by its
// model position and cardinality. Workers and shards must agree on the
// exact spec list — it determines both row ownership (the consistent-hash
// key space) and the deterministic initialization stream.
type TableSpec struct {
	Index int // model table position (drives the init RNG seed)
	Rows  int
}

// sanityCap bounds decoded element counts so a structurally corrupt count
// cannot drive a huge allocation before the payload-length check catches it.
const sanityCap = 1 << 28

// --- cursor helpers --------------------------------------------------------

type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) bool(v bool)  { e.u8(map[bool]uint8{false: 0, true: 1}[v]) }
func (e *enc) u32(v uint32) { e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (e *enc) u64(v uint64) {
	e.u32(uint32(v))
	e.u32(uint32(v >> 32))
}
func (e *enc) i64(v int64) { e.u64(uint64(v)) }
func (e *enc) f32s(v []float32) {
	for _, f := range v {
		e.u32(math.Float32bits(f))
	}
}
func (e *enc) ints(v []int) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u64(uint64(int64(x)))
	}
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated payload record", ErrBadFrame)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (d *dec) u64() uint64 {
	lo := d.u32()
	hi := d.u32()
	return uint64(lo) | uint64(hi)<<32
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) count() int {
	n := int(d.u32())
	if n < 0 || n > sanityCap {
		if d.err == nil {
			d.err = fmt.Errorf("%w: element count %d out of range", ErrBadFrame, n)
		}
		return 0
	}
	return n
}

func (d *dec) f32s(n int) []float32 {
	if d.err != nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(d.u32())
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *dec) ints() []int {
	n := d.count()
	if d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(d.u64()))
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *dec) str() string {
	n := d.count()
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// done returns the accumulated decode error, also rejecting trailing bytes.
func (d *dec) done() error {
	if d.err == nil && d.off != len(d.buf) {
		d.err = fmt.Errorf("%w: %d trailing payload bytes", ErrBadFrame, len(d.buf)-d.off)
	}
	return d.err
}

// --- hello -----------------------------------------------------------------

// helloMsg opens a connection: it carries the worker's identity, its lease
// epoch (0 for a read-only observer), and the full table spec so the shard
// can reject a mis-configured peer before any data flows.
type helloMsg struct {
	WorkerID uint64
	Epoch    uint64
	Seed     uint64
	Dim      int
	Tables   []TableSpec
}

func (m helloMsg) encode() []byte {
	var e enc
	e.u64(m.WorkerID)
	e.u64(m.Epoch)
	e.u64(m.Seed)
	e.u32(uint32(m.Dim))
	e.u32(uint32(len(m.Tables)))
	for _, t := range m.Tables {
		e.u32(uint32(t.Index))
		e.u64(uint64(t.Rows))
	}
	return e.buf
}

func decodeHello(b []byte) (helloMsg, error) {
	d := dec{buf: b}
	m := helloMsg{WorkerID: d.u64(), Epoch: d.u64(), Seed: d.u64(), Dim: int(d.u32())}
	n := d.count()
	if d.err == nil {
		m.Tables = make([]TableSpec, n)
		for i := range m.Tables {
			m.Tables[i] = TableSpec{Index: int(d.u32()), Rows: int(int64(d.u64()))}
		}
	}
	return m, d.done()
}

type helloAck struct {
	ShardID   int
	NumShards int
	Version   int64 // latest durable checkpoint version
	Restored  bool
	Epoch     uint64 // highest lease epoch the shard has seen
}

func (m helloAck) encode() []byte {
	var e enc
	e.u32(uint32(m.ShardID))
	e.u32(uint32(m.NumShards))
	e.i64(m.Version)
	e.bool(m.Restored)
	e.u64(m.Epoch)
	return e.buf
}

func decodeHelloAck(b []byte) (helloAck, error) {
	d := dec{buf: b}
	m := helloAck{ShardID: int(d.u32()), NumShards: int(d.u32()), Version: d.i64(),
		Restored: d.bool(), Epoch: d.u64()}
	return m, d.done()
}

// --- gather / rows ---------------------------------------------------------

// gatherMsg requests the current values of the listed rows of one table.
// Gathers carry no epoch and are never fenced: a stale reader corrupts
// nothing (its pushes are fenced), and leaving reads open lets observers
// hash final state without holding the trainer lease.
type gatherMsg struct {
	Table int
	Rows  []int
}

func (m gatherMsg) encode() []byte {
	var e enc
	e.u32(uint32(m.Table))
	e.ints(m.Rows)
	return e.buf
}

func decodeGather(b []byte) (gatherMsg, error) {
	d := dec{buf: b}
	m := gatherMsg{Table: int(d.u32()), Rows: d.ints()}
	return m, d.done()
}

type rowsMsg struct {
	Dim    int
	Values []float32 // len(request rows) × Dim, row-major
}

func (m rowsMsg) encode() []byte {
	var e enc
	e.u32(uint32(m.Dim))
	e.u32(uint32(len(m.Values)))
	e.f32s(m.Values)
	return e.buf
}

func decodeRows(b []byte) (rowsMsg, error) {
	d := dec{buf: b}
	m := rowsMsg{Dim: int(d.u32())}
	m.Values = d.f32s(d.count())
	return m, d.done()
}

// --- push ------------------------------------------------------------------

// pushMsg applies a pre-scaled gradient delta to the listed rows. Seq is
// the worker's monotone push sequence number: the shard applies a push
// exactly once (Seq greater than the last applied for that worker) and
// acks duplicates without reapplying, which is what makes transport-level
// retries safe.
type pushMsg struct {
	Epoch uint64
	Seq   uint64
	Table int
	Rows  []int
	Dim   int
	Delta []float32 // len(Rows) × Dim
}

func (m pushMsg) encode() []byte {
	var e enc
	e.u64(m.Epoch)
	e.u64(m.Seq)
	e.u32(uint32(m.Table))
	e.ints(m.Rows)
	e.u32(uint32(m.Dim))
	e.f32s(m.Delta)
	return e.buf
}

func decodePush(b []byte) (pushMsg, error) {
	d := dec{buf: b}
	m := pushMsg{Epoch: d.u64(), Seq: d.u64(), Table: int(d.u32()), Rows: d.ints(), Dim: int(d.u32())}
	m.Delta = d.f32s(len(m.Rows) * m.Dim)
	return m, d.done()
}

type pushAck struct {
	Applied bool // false: duplicate, already applied earlier
}

func (m pushAck) encode() []byte {
	var e enc
	e.bool(m.Applied)
	return e.buf
}

func decodePushAck(b []byte) (pushAck, error) {
	d := dec{buf: b}
	m := pushAck{Applied: d.bool()}
	return m, d.done()
}

// --- checkpoint / restore --------------------------------------------------

type versionMsg struct {
	Epoch   uint64
	Version int64
}

func (m versionMsg) encode() []byte {
	var e enc
	e.u64(m.Epoch)
	e.i64(m.Version)
	return e.buf
}

func decodeVersion(b []byte) (versionMsg, error) {
	d := dec{buf: b}
	m := versionMsg{Epoch: d.u64(), Version: d.i64()}
	return m, d.done()
}

type versionAck struct {
	Version int64
}

func (m versionAck) encode() []byte {
	var e enc
	e.i64(m.Version)
	return e.buf
}

func decodeVersionAck(b []byte) (versionAck, error) {
	d := dec{buf: b}
	m := versionAck{Version: d.i64()}
	return m, d.done()
}

// --- heartbeat -------------------------------------------------------------

// heartbeatMsg carries the sender's wall-clock send instant so the ack can
// be used for NTP-style clock-offset estimation: the client combines its
// own send/receive instants with the shard's NowUnixNanos to place the
// shard's timeline on the worker's clock when merging traces.
type heartbeatMsg struct {
	WorkerID      uint64
	SendUnixNanos int64
}

func (m heartbeatMsg) encode() []byte {
	var e enc
	e.u64(m.WorkerID)
	e.i64(m.SendUnixNanos)
	return e.buf
}

func decodeHeartbeat(b []byte) (heartbeatMsg, error) {
	d := dec{buf: b}
	m := heartbeatMsg{WorkerID: d.u64(), SendUnixNanos: d.i64()}
	return m, d.done()
}

type heartbeatAck struct {
	Version      int64
	Restored     bool
	Draining     bool
	Epoch        uint64
	NowUnixNanos int64 // shard wall clock when the ack was built
}

func (m heartbeatAck) encode() []byte {
	var e enc
	e.i64(m.Version)
	e.bool(m.Restored)
	e.bool(m.Draining)
	e.u64(m.Epoch)
	e.i64(m.NowUnixNanos)
	return e.buf
}

func decodeHeartbeatAck(b []byte) (heartbeatAck, error) {
	d := dec{buf: b}
	m := heartbeatAck{Version: d.i64(), Restored: d.bool(), Draining: d.bool(), Epoch: d.u64(),
		NowUnixNanos: d.i64()}
	return m, d.done()
}

// --- stats -----------------------------------------------------------------

// statsMsg asks a shard for its observability state: metrics snapshot plus
// up to MaxSpans most-recent completed spans. Stats is read-only and never
// fenced or gated on restore, so a recovering or draining shard can still
// be inspected — exactly when inspection matters most.
type statsMsg struct {
	MaxSpans int
}

func (m statsMsg) encode() []byte {
	var e enc
	e.u32(uint32(m.MaxSpans))
	return e.buf
}

func decodeStats(b []byte) (statsMsg, error) {
	d := dec{buf: b}
	m := statsMsg{MaxSpans: int(d.u32())}
	return m, d.done()
}

// statsAck is a shard's observability snapshot. MetricsJSON is the shard
// registry's Snapshot in its canonical sorted-JSON form (the same bytes
// the shard's own /metrics endpoint serves); spans are relative to
// EpochUnixNanos on the shard's clock, and NowUnixNanos lets the caller
// sanity-check offset estimates. Threads maps span TIDs to lane names.
type statsAck struct {
	ShardID        int
	NowUnixNanos   int64
	EpochUnixNanos int64
	Dropped        int64
	MetricsJSON    string
	Threads        map[int]string
	Spans          []spanRec
}

// spanRec is the wire form of one obs.Span.
type spanRec struct {
	Name   string
	Cat    string
	TID    int
	Start  int64 // nanoseconds from the shard tracer's epoch
	Dur    int64
	Trace  uint64
	ID     uint64
	Parent uint64
}

func (m statsAck) encode() []byte {
	var e enc
	e.u32(uint32(m.ShardID))
	e.i64(m.NowUnixNanos)
	e.i64(m.EpochUnixNanos)
	e.i64(m.Dropped)
	e.str(m.MetricsJSON)
	tids := make([]int, 0, len(m.Threads))
	//elrec:orderless keys are sorted immediately below
	for tid := range m.Threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	e.u32(uint32(len(tids)))
	for _, tid := range tids {
		e.u32(uint32(tid))
		e.str(m.Threads[tid])
	}
	e.u32(uint32(len(m.Spans)))
	for _, s := range m.Spans {
		e.str(s.Name)
		e.str(s.Cat)
		e.u32(uint32(s.TID))
		e.i64(s.Start)
		e.i64(s.Dur)
		e.u64(s.Trace)
		e.u64(s.ID)
		e.u64(s.Parent)
	}
	return e.buf
}

func decodeStatsAck(b []byte) (statsAck, error) {
	d := dec{buf: b}
	m := statsAck{ShardID: int(d.u32()), NowUnixNanos: d.i64(), EpochUnixNanos: d.i64(),
		Dropped: d.i64(), MetricsJSON: d.str()}
	nThreads := d.count()
	if d.err == nil && nThreads > 0 {
		m.Threads = make(map[int]string, nThreads)
		for i := 0; i < nThreads; i++ {
			tid := int(d.u32())
			m.Threads[tid] = d.str()
		}
	}
	nSpans := d.count()
	if d.err == nil {
		m.Spans = make([]spanRec, nSpans)
		for i := range m.Spans {
			m.Spans[i] = spanRec{Name: d.str(), Cat: d.str(), TID: int(d.u32()),
				Start: d.i64(), Dur: d.i64(), Trace: d.u64(), ID: d.u64(), Parent: d.u64()}
		}
	}
	return m, d.done()
}

// --- lease -----------------------------------------------------------------

// leaseMsg acquires or renews the trainer lease on the lease-authority
// shard (shard 0). Acquire succeeds when the lease is free, expired, or
// already held by this worker, and always grants a fresh (higher) epoch;
// renew extends an unexpired lease this worker holds without changing the
// epoch.
type leaseMsg struct {
	WorkerID uint64
	Renew    bool
	Epoch    uint64 // current epoch, for renew
	TTLMS    uint64
}

func (m leaseMsg) encode() []byte {
	var e enc
	e.u64(m.WorkerID)
	e.bool(m.Renew)
	e.u64(m.Epoch)
	e.u64(m.TTLMS)
	return e.buf
}

func decodeLease(b []byte) (leaseMsg, error) {
	d := dec{buf: b}
	m := leaseMsg{WorkerID: d.u64(), Renew: d.bool(), Epoch: d.u64(), TTLMS: d.u64()}
	return m, d.done()
}

type leaseAck struct {
	Epoch uint64
}

func (m leaseAck) encode() []byte {
	var e enc
	e.u64(m.Epoch)
	return e.buf
}

func decodeLeaseAck(b []byte) (leaseAck, error) {
	d := dec{buf: b}
	m := leaseAck{Epoch: d.u64()}
	return m, d.done()
}

// --- error -----------------------------------------------------------------

// Error codes carried by msgError frames, mapped 1:1 to the package's
// sentinel errors so a typed error survives the wire round trip.
const (
	codeFenced       = uint8(1)
	codeLeaseHeld    = uint8(2)
	codeNotRestored  = uint8(3)
	codeNoCheckpoint = uint8(4)
	codeSpecMismatch = uint8(5)
	codeDraining     = uint8(6)
	codeBadRequest   = uint8(7)
	codeInternal     = uint8(8)
)

type errMsg struct {
	Code uint8
	Msg  string
}

func (m errMsg) encode() []byte {
	var e enc
	e.u8(m.Code)
	e.str(m.Msg)
	return e.buf
}

func decodeErr(b []byte) (errMsg, error) {
	d := dec{buf: b}
	m := errMsg{Code: d.u8(), Msg: d.str()}
	return m, d.done()
}

// sentinelFor maps a wire error code back to the package sentinel.
func sentinelFor(code uint8) error {
	switch code {
	case codeFenced:
		return ErrFenced
	case codeLeaseHeld:
		return ErrLeaseHeld
	case codeNotRestored:
		return ErrNotRestored
	case codeNoCheckpoint:
		return ErrNoCheckpoint
	case codeSpecMismatch:
		return ErrSpecMismatch
	case codeDraining:
		return ErrDraining
	case codeBadRequest:
		return ErrBadRequest
	}
	return ErrInternal
}

// codeFor maps a shard-side sentinel to its wire code.
func codeFor(err error) uint8 {
	switch {
	case errors.Is(err, ErrFenced):
		return codeFenced
	case errors.Is(err, ErrLeaseHeld):
		return codeLeaseHeld
	case errors.Is(err, ErrNotRestored):
		return codeNotRestored
	case errors.Is(err, ErrNoCheckpoint):
		return codeNoCheckpoint
	case errors.Is(err, ErrSpecMismatch):
		return codeSpecMismatch
	case errors.Is(err, ErrDraining):
		return codeDraining
	case errors.Is(err, ErrBadRequest):
		return codeBadRequest
	}
	return codeInternal
}

// msgName names a message type for error text.
func msgName(t uint8) string {
	//elrec:wireswitch all
	switch t {
	case msgHello, msgHelloAck:
		return "hello"
	case msgGather, msgRows:
		return "gather"
	case msgPush, msgPushAck:
		return "push"
	case msgCheckpoint, msgCheckpointAck:
		return "checkpoint"
	case msgRestore, msgRestoreAck:
		return "restore"
	case msgHeartbeat, msgHeartbeatAck:
		return "heartbeat"
	case msgLease, msgLeaseAck:
		return "lease"
	case msgStats, msgStatsAck:
		return "stats"
	case msgError:
		return "error"
	}
	return fmt.Sprintf("type-%d", t)
}
