// Package distps takes the parameter server over the wire: the overflow
// (host-placed) embedding tables are consistent-hash sharded across N
// shard servers, and the pipeline trainer's gather/push traffic rides a
// compact length-prefixed binary frame protocol over stdlib TCP.
//
// The package provides four layers:
//
//   - wire.go/msg.go — the frame codec and message formats;
//   - server.go      — the Shard: owned-row storage, idempotent mutating
//     RPCs, epoch fencing, durable versioned checkpoints, lease authority;
//   - client.go      — the Client: per-call deadlines, capped-backoff
//     retries with stable request ids, heartbeat liveness, and a
//     ps.HostStore adapter that plugs shards into the pipeline trainer;
//   - worker.go      — the trainer driver: lease-gated active/standby
//     workers, coordinated checkpoints and crash-consistent recovery
//     (kill a shard or the primary; training resumes bit-exact).
//
// See DESIGN.md §14 for the wire format, shard map and recovery state
// machine.
package distps

import "errors"

// Typed errors; callers branch with errors.Is.
var (
	// ErrBadFrame reports a malformed frame: wrong magic, oversized
	// payload, checksum mismatch, or a truncated read mid-frame.
	ErrBadFrame = errors.New("distps: bad frame")

	// ErrRPCFailed reports an RPC that failed after exhausting its
	// retries (connection refused, deadline exceeded, connection killed
	// mid-exchange).
	ErrRPCFailed = errors.New("distps: rpc failed")

	// ErrFenced reports a mutating RPC rejected because its lease epoch is
	// older than one the shard has already seen — the caller lost the
	// trainer lease and must stand down (its state may be stale).
	ErrFenced = errors.New("distps: fenced: stale lease epoch")

	// ErrLeaseHeld reports a lease acquisition denied because another
	// worker holds an unexpired trainer lease.
	ErrLeaseHeld = errors.New("distps: trainer lease held by another worker")

	// ErrNotRestored reports a data RPC against a shard that has not yet
	// materialized its tables (no Restore received since it started).
	ErrNotRestored = errors.New("distps: shard not restored")

	// ErrNoCheckpoint reports a Restore for a version the shard has no
	// durable checkpoint file for.
	ErrNoCheckpoint = errors.New("distps: no checkpoint for requested version")

	// ErrSpecMismatch reports a Hello whose table spec disagrees with the
	// state the shard already holds.
	ErrSpecMismatch = errors.New("distps: worker/shard spec mismatch")

	// ErrDraining reports an RPC rejected because the shard is shutting
	// down gracefully.
	ErrDraining = errors.New("distps: shard draining")

	// ErrBadRequest reports a structurally invalid request (unknown table,
	// row not owned by the shard, shape mismatch).
	ErrBadRequest = errors.New("distps: bad request")

	// ErrInternal reports a recovered panic or invariant violation inside
	// the transport machinery.
	ErrInternal = errors.New("distps: internal fault")
)
