package distps

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// spawn starts fn on a new goroutine. The gospawn analyzer requires every
// goroutine in this package to be born inside a function literally named
// spawn, so ownership stays auditable at one choke point.
func spawn(fn func()) { go fn() }

// shardTable holds this shard's slice of one overflow embedding table: the
// rows the consistent-hash ring assigns to the shard, packed densely.
//
// Initialization is bit-exact with the single-process reference: NewBag
// fills its rows×dim matrix from one sequential RNG stream, so the shard
// streams the same generator row by row and keeps only the rows it owns —
// every participant derives identical values without ever materializing
// the full table.
type shardTable struct {
	spec  TableSpec
	dim   int
	slots map[int]int // global row -> local slot
	rows  []int       // local slot -> global row, ascending
	data  []float32   // len(rows) × dim, row-major
}

// newShardTable builds the shard-local slice of table spec for shardID.
func newShardTable(spec TableSpec, dim int, seed uint64, ring *Ring, shardID int) *shardTable {
	t := &shardTable{spec: spec, dim: dim, slots: make(map[int]int)}
	rng := tensor.NewRNG(seed + uint64(spec.Index)*104729)
	scale := float32(math.Sqrt(1 / float64(spec.Rows)))
	row := make([]float32, dim)
	for r := 0; r < spec.Rows; r++ {
		rng.FillUniform(row, scale)
		if ring.Owner(spec.Index, r) != shardID {
			continue
		}
		t.slots[r] = len(t.rows)
		t.rows = append(t.rows, r)
		t.data = append(t.data, row...)
	}
	return t
}

// gatherValues copies the requested rows (which must all be owned) into a
// fresh buffer, len(rows)×dim.
func (t *shardTable) gatherValues(rows []int) ([]float32, error) {
	out := make([]float32, len(rows)*t.dim)
	for i, r := range rows {
		slot, ok := t.slots[r]
		if !ok {
			return nil, fmt.Errorf("%w: table %d row %d not owned by this shard", ErrBadRequest, t.spec.Index, r)
		}
		copy(out[i*t.dim:(i+1)*t.dim], t.data[slot*t.dim:(slot+1)*t.dim])
	}
	return out, nil
}

// applyDelta adds delta (len(rows)×dim) into the owned rows. Ownership is
// validated for every row before any element is touched, so a bad request
// cannot leave a half-applied push behind.
func (t *shardTable) applyDelta(rows []int, delta []float32) error {
	if len(delta) != len(rows)*t.dim {
		return fmt.Errorf("%w: table %d delta has %d values for %d rows × dim %d", ErrBadRequest, t.spec.Index, len(delta), len(rows), t.dim)
	}
	for _, r := range rows {
		if _, ok := t.slots[r]; !ok {
			return fmt.Errorf("%w: table %d row %d not owned by this shard", ErrBadRequest, t.spec.Index, r)
		}
	}
	for i, r := range rows {
		slot := t.slots[r]
		dst := t.data[slot*t.dim : (slot+1)*t.dim]
		src := delta[i*t.dim : (i+1)*t.dim]
		for j := range dst {
			dst[j] += src[j]
		}
	}
	return nil
}

// ShardConfig configures one PS shard server.
type ShardConfig struct {
	ID        int // this shard's index in [0, NumShards)
	NumShards int

	// Dim, Seed and Tables define the overflow-table universe; every
	// worker's Hello must match them exactly.
	Dim    int
	Seed   uint64
	Tables []TableSpec

	// Dir holds the shard's durable state: versioned checkpoint files and
	// the fencing-epoch file.
	Dir string

	// Retain bounds how many checkpoint versions are kept (default 3; the
	// coordinated-checkpoint protocol needs at least 2).
	Retain int

	// LeaseTTL is the default trainer-lease duration when a lease request
	// carries none (default 3s).
	LeaseTTL time.Duration

	// IdleTimeout closes connections with no traffic (default 2m);
	// heartbeats keep live clients under it.
	IdleTimeout time.Duration

	// DrainTimeout bounds how long Close waits for in-flight requests
	// before force-closing connections (default 5s).
	DrainTimeout time.Duration

	// MaxPayload caps a single frame's payload (default DefaultMaxPayload).
	MaxPayload int

	Clock   obs.Clock     // drives lease/liveness decisions; nil = system
	Metrics *obs.Registry // per-shard distps_shard<ID>_* and distps_srv_* instruments; nil = off
	Trace   *obs.Tracer   // handler spans + the msgStats span export; nil = off
	Log     *obs.Logger   // nil = silent
}

// leaseState is the trainer lease granted by the lease-authority shard.
type leaseState struct {
	holder uint64
	epoch  uint64
	expiry time.Time
}

// shardMetrics are the per-shard instruments (nil instruments no-op).
type shardMetrics struct {
	requests      *obs.Counter
	errors        *obs.Counter
	gathers       *obs.Counter
	pushesApplied *obs.Counter
	pushesDeduped *obs.Counter
	fenced        *obs.Counter
	checkpoints   *obs.Counter
	restores      *obs.Counter
	version       *obs.Gauge
	epoch         *obs.Gauge
	draining      *obs.Gauge
	conns         *obs.Gauge

	// Server-side RPC telemetry. The distps_srv_* names carry no shard
	// prefix: each shard owns its registry, and the cluster view keys the
	// merged table by shard, so the names stay comparable across shards.
	srvNS    map[uint8]*obs.Histogram // per request type, distps_srv_<name>_ns
	bytesIn  *obs.Counter             // distps_srv_bytes_in (frames received, header+payload)
	bytesOut *obs.Counter             // distps_srv_bytes_out (frames sent)
	inflight *obs.Gauge               // distps_srv_inflight (requests between decode and flush)
}

// Shard is one PS shard server: it owns the consistent-hash slice of every
// overflow table, applies pushes exactly once, fences stale lease epochs,
// writes versioned durable checkpoints, and (as shard 0) grants the
// trainer lease.
type Shard struct {
	cfg   ShardConfig
	ring  *Ring
	clock obs.Clock
	log   *obs.Logger
	m     shardMetrics

	mu       sync.Mutex
	tables   map[int]*shardTable     // guarded by mu; key = model table index
	restored bool                    // guarded by mu; false after a restart until Restore
	version  int64                   // guarded by mu; latest durable checkpoint version
	maxEpoch uint64                  // guarded by mu; highest lease epoch seen (fencing)
	lastSeq  map[uint64]uint64       // guarded by mu; per-epoch last applied push seq (dedup)
	lease    leaseState              // guarded by mu
	draining bool                    // guarded by mu
	conns    map[net.Conn]*connEntry // guarded by mu
	ln       net.Listener            // guarded by mu

	trace    *obs.Tracer
	connSeq  atomic.Int64 // trace lane allocator for connections
	inflight atomic.Int64

	wg sync.WaitGroup
}

// connEntry tracks one accepted connection for the drain protocol.
type connEntry struct {
	busy atomic.Bool // request in flight (between decode and response flush)
	tid  int         // trace lane for this connection's handler spans
}

// NewShard builds the shard, materializes its owned rows, and establishes
// durable state: a fresh shard (empty Dir) writes checkpoint version 0 and
// serves immediately; a restarted shard (checkpoint files present) refuses
// data RPCs with ErrNotRestored until the trainer tells it which version
// to reload — its in-memory init values are stale by definition.
func NewShard(cfg ShardConfig) (*Shard, error) {
	if cfg.NumShards < 1 || cfg.ID < 0 || cfg.ID >= cfg.NumShards {
		return nil, fmt.Errorf("%w: shard id %d of %d", ErrBadRequest, cfg.ID, cfg.NumShards)
	}
	if cfg.Dim <= 0 || len(cfg.Tables) == 0 {
		return nil, fmt.Errorf("%w: shard needs a positive dim and at least one table", ErrBadRequest)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("%w: shard needs a durable state directory", ErrBadRequest)
	}
	if cfg.Retain < 2 {
		cfg.Retain = 3
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 3 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Shard{
		cfg:     cfg,
		ring:    NewRing(cfg.NumShards),
		clock:   obs.OrSystem(cfg.Clock),
		log:     cfg.Log,
		trace:   cfg.Trace,
		tables:  make(map[int]*shardTable),
		lastSeq: make(map[uint64]uint64),
		conns:   make(map[net.Conn]*connEntry),
	}
	prefix := fmt.Sprintf("distps_shard%d_", cfg.ID)
	r := cfg.Metrics
	s.m = shardMetrics{
		requests:      r.Counter(prefix + "requests"),
		errors:        r.Counter(prefix + "errors"),
		gathers:       r.Counter(prefix + "gathers"),
		pushesApplied: r.Counter(prefix + "pushes_applied"),
		pushesDeduped: r.Counter(prefix + "pushes_deduped"),
		fenced:        r.Counter(prefix + "fenced"),
		checkpoints:   r.Counter(prefix + "checkpoints"),
		restores:      r.Counter(prefix + "restores"),
		version:       r.Gauge(prefix + "version"),
		epoch:         r.Gauge(prefix + "epoch"),
		draining:      r.Gauge(prefix + "draining"),
		conns:         r.Gauge(prefix + "conns"),
		srvNS: map[uint8]*obs.Histogram{
			msgHello:      r.Histogram("distps_srv_hello_ns"),
			msgGather:     r.Histogram("distps_srv_gather_ns"),
			msgPush:       r.Histogram("distps_srv_push_ns"),
			msgCheckpoint: r.Histogram("distps_srv_checkpoint_ns"),
			msgRestore:    r.Histogram("distps_srv_restore_ns"),
			msgHeartbeat:  r.Histogram("distps_srv_heartbeat_ns"),
			msgLease:      r.Histogram("distps_srv_lease_ns"),
			msgStats:      r.Histogram("distps_srv_stats_ns"),
		},
		bytesIn:  r.Counter("distps_srv_bytes_in"),
		bytesOut: r.Counter("distps_srv_bytes_out"),
		inflight: r.Gauge("distps_srv_inflight"),
	}
	for _, spec := range cfg.Tables {
		if spec.Rows <= 0 {
			return nil, fmt.Errorf("%w: table %d has %d rows", ErrBadRequest, spec.Index, spec.Rows)
		}
		if _, dup := s.tables[spec.Index]; dup {
			return nil, fmt.Errorf("%w: duplicate table index %d", ErrBadRequest, spec.Index)
		}
		s.tables[spec.Index] = newShardTable(spec, cfg.Dim, cfg.Seed, s.ring, cfg.ID)
	}
	if err := s.loadEpochFile(); err != nil {
		return nil, err
	}
	versions := s.listVersions()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(versions) == 0 {
		// First boot: make version 0 (the deterministic init state) durable
		// before serving, so a later restart always has something to restore.
		if err := s.writeCheckpointLocked(0); err != nil {
			return nil, err
		}
		s.restored = true
	} else {
		s.version = versions[len(versions)-1]
		s.restored = false
	}
	s.m.version.Set(float64(s.version))
	s.m.epoch.Set(float64(s.maxEpoch))
	return s, nil
}

// Restored reports whether the shard is serving data RPCs (true after
// first boot or a successful Restore).
func (s *Shard) Restored() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restored
}

// Version returns the latest durable checkpoint version.
func (s *Shard) Version() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// MaxEpoch returns the highest lease epoch the shard has seen.
func (s *Shard) MaxEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxEpoch
}

// Ready reports whether the shard is serving data RPCs: restored and not
// draining. The /readyz endpoint exposes it.
func (s *Shard) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restored && !s.draining
}

// OwnedRows returns how many rows of table index this shard owns (tests
// use it to assert the ring actually spread the tables).
func (s *Shard) OwnedRows(index int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[index]
	if !ok {
		return 0
	}
	return len(t.rows)
}

// --- durable state ---------------------------------------------------------

// Shard checkpoint file layout (little-endian, via the msg.go cursors):
// magic, format version, identity (shard id, shard count, dim, seed),
// checkpoint version, the per-epoch push-dedup watermarks, then every table's
// owned rows. The owned-row id list is not stored: it is recomputed from
// the ring at load and validated by count, so the file cannot disagree
// with the placement function.
const (
	shardCkptMagic = uint32(0xE17DC4B7)
	shardCkptVer   = uint8(1)
)

func (s *Shard) ckptPath(v int64) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("shard-%d.v%d.ckpt", s.cfg.ID, v))
}

func (s *Shard) epochPath() string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("shard-%d.epoch", s.cfg.ID))
}

// listVersions returns the checkpoint versions present in Dir, ascending.
func (s *Shard) listVersions() []int64 {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return nil
	}
	prefix := fmt.Sprintf("shard-%d.v", s.cfg.ID)
	var out []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		v, err := strconv.ParseInt(name[len(prefix):len(name)-len(".ckpt")], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// loadEpochFile restores the fencing watermark; without it a restarted
// shard would accept pushes from a worker that was fenced off before the
// crash.
//
//elrec:locked mu construction: the shard is unpublished until NewShard returns
func (s *Shard) loadEpochFile() error {
	b, err := os.ReadFile(s.epochPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(b) != 8 {
		return fmt.Errorf("%w: epoch file has %d bytes", checkpoint.ErrCorruptCheckpoint, len(b))
	}
	d := dec{buf: b}
	s.maxEpoch = d.u64()
	return d.done()
}

// persistEpochLocked makes the fencing watermark durable.
//
//elrec:locked mu callers hold s.mu (lease/push handlers) or own the unpublished shard
func (s *Shard) persistEpochLocked() error {
	var e enc
	e.u64(s.maxEpoch)
	_, err := checkpoint.WriteFileAtomic(s.epochPath(), func(w io.Writer) error {
		_, werr := w.Write(e.buf)
		return werr
	})
	if err != nil {
		return fmt.Errorf("%w: persisting epoch: %w", ErrInternal, err)
	}
	s.m.epoch.Set(float64(s.maxEpoch))
	return nil
}

// writeCheckpointLocked makes the current state durable as version v and
// prunes old versions beyond Retain. The worker is at a drain barrier when
// it coordinates a checkpoint, so nothing contends.
//
//elrec:locked mu the checkpoint handler holds s.mu; first boot owns the unpublished shard
func (s *Shard) writeCheckpointLocked(v int64) error {
	var e enc
	e.u32(shardCkptMagic)
	e.u8(shardCkptVer)
	e.u32(uint32(s.cfg.ID))
	e.u32(uint32(s.cfg.NumShards))
	e.u32(uint32(s.cfg.Dim))
	e.u64(s.cfg.Seed)
	e.i64(v)
	e.u32(uint32(len(s.lastSeq)))
	epochs := make([]uint64, 0, len(s.lastSeq))
	for ep := range s.lastSeq {
		epochs = append(epochs, ep)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, ep := range epochs {
		e.u64(ep)
		e.u64(s.lastSeq[ep])
	}
	e.u32(uint32(len(s.cfg.Tables)))
	for _, spec := range s.cfg.Tables {
		t := s.tables[spec.Index]
		e.u32(uint32(spec.Index))
		e.u64(uint64(spec.Rows))
		e.u32(uint32(len(t.rows)))
		e.f32s(t.data)
	}
	_, err := checkpoint.WriteFileAtomic(s.ckptPath(v), func(w io.Writer) error {
		_, werr := w.Write(e.buf)
		return werr
	})
	if err != nil {
		return fmt.Errorf("%w: writing shard checkpoint v%d: %w", ErrInternal, v, err)
	}
	s.version = v
	s.m.version.Set(float64(v))
	s.m.checkpoints.Inc()
	if versions := s.listVersions(); len(versions) > s.cfg.Retain {
		for _, old := range versions[:len(versions)-s.cfg.Retain] {
			if rerr := os.Remove(s.ckptPath(old)); rerr != nil {
				s.log.Warn("distps: pruning old checkpoint", "shard", s.cfg.ID, "version", old, "err", rerr)
			}
		}
	}
	return nil
}

// restoreLocked reloads durable version v.
//
//elrec:locked mu the restore handler holds s.mu across the reload
func (s *Shard) restoreLocked(v int64) error {
	b, err := os.ReadFile(s.ckptPath(v))
	if os.IsNotExist(err) {
		return fmt.Errorf("%w: shard %d version %d", ErrNoCheckpoint, s.cfg.ID, v)
	}
	if err != nil {
		return fmt.Errorf("%w: %w", ErrInternal, err)
	}
	corrupt := func(err error) error {
		return fmt.Errorf("%w: shard checkpoint v%d: %w", checkpoint.ErrCorruptCheckpoint, v, err)
	}
	d := dec{buf: b}
	if m := d.u32(); m != shardCkptMagic && d.err == nil {
		return corrupt(fmt.Errorf("bad magic %#x", m))
	}
	if fv := d.u8(); fv != shardCkptVer && d.err == nil {
		return corrupt(fmt.Errorf("format version %d", fv))
	}
	id, n, dim := int(d.u32()), int(d.u32()), int(d.u32())
	seed := d.u64()
	fileV := d.i64()
	if d.err == nil && (id != s.cfg.ID || n != s.cfg.NumShards || dim != s.cfg.Dim || seed != s.cfg.Seed || fileV != v) {
		return fmt.Errorf("%w: checkpoint identity (shard %d/%d dim %d seed %d v%d) does not match this shard", ErrSpecMismatch, id, n, dim, seed, fileV)
	}
	nw := int(d.u32())
	lastSeq := make(map[uint64]uint64, nw)
	for i := 0; i < nw && d.err == nil; i++ {
		w := d.u64()
		lastSeq[w] = d.u64()
	}
	nt := int(d.u32())
	if d.err == nil && nt != len(s.cfg.Tables) {
		return corrupt(fmt.Errorf("%d tables, want %d", nt, len(s.cfg.Tables)))
	}
	fresh := make(map[int]*shardTable, nt)
	for i := 0; i < nt && d.err == nil; i++ {
		idx := int(d.u32())
		rows := int(int64(d.u64()))
		owned := int(d.u32())
		spec, ok := s.tables[idx]
		if !ok || spec.spec.Rows != rows {
			return fmt.Errorf("%w: checkpoint table %d (%d rows) unknown to this shard", ErrSpecMismatch, idx, rows)
		}
		if owned != len(spec.rows) {
			return corrupt(fmt.Errorf("table %d has %d owned rows, ring says %d", idx, owned, len(spec.rows)))
		}
		data := d.f32s(owned * s.cfg.Dim)
		if d.err != nil {
			break
		}
		fresh[idx] = &shardTable{spec: spec.spec, dim: s.cfg.Dim, slots: spec.slots, rows: spec.rows, data: data}
	}
	if err := d.done(); err != nil {
		return corrupt(err)
	}
	for idx, t := range fresh {
		s.tables[idx] = t
	}
	s.lastSeq = lastSeq
	s.version = v
	s.restored = true
	s.m.version.Set(float64(v))
	s.m.restores.Inc()
	return nil
}

// --- fencing and leases ----------------------------------------------------

// learnEpochLocked raises (and persists) the fencing watermark.
//
//elrec:locked mu push/lease handlers hold s.mu
func (s *Shard) learnEpochLocked(e uint64) error {
	if e <= s.maxEpoch {
		return nil
	}
	s.maxEpoch = e
	return s.persistEpochLocked()
}

// fenceLocked rejects epochs below the watermark.
//
//elrec:locked mu push/checkpoint/restore handlers hold s.mu
func (s *Shard) fenceLocked(e uint64) error {
	if e < s.maxEpoch {
		s.m.fenced.Inc()
		return fmt.Errorf("%w: epoch %d, shard has seen %d", ErrFenced, e, s.maxEpoch)
	}
	return nil
}

// --- RPC handlers ----------------------------------------------------------

func (s *Shard) hello(m helloMsg) (helloAck, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.Dim != s.cfg.Dim || m.Seed != s.cfg.Seed || len(m.Tables) != len(s.cfg.Tables) {
		return helloAck{}, fmt.Errorf("%w: worker (dim %d seed %d %d tables) vs shard (dim %d seed %d %d tables)",
			ErrSpecMismatch, m.Dim, m.Seed, len(m.Tables), s.cfg.Dim, s.cfg.Seed, len(s.cfg.Tables))
	}
	for i, t := range m.Tables {
		if t != s.cfg.Tables[i] {
			return helloAck{}, fmt.Errorf("%w: table %d is %+v on the worker, %+v on the shard", ErrSpecMismatch, i, t, s.cfg.Tables[i])
		}
	}
	if err := s.learnEpochLocked(m.Epoch); err != nil {
		return helloAck{}, err
	}
	return helloAck{ShardID: s.cfg.ID, NumShards: s.cfg.NumShards, Version: s.version, Restored: s.restored, Epoch: s.maxEpoch}, nil
}

func (s *Shard) gather(m gatherMsg) (rowsMsg, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return rowsMsg{}, ErrDraining
	}
	if !s.restored {
		return rowsMsg{}, ErrNotRestored
	}
	t, ok := s.tables[m.Table]
	if !ok {
		return rowsMsg{}, fmt.Errorf("%w: unknown table %d", ErrBadRequest, m.Table)
	}
	values, err := t.gatherValues(m.Rows)
	if err != nil {
		return rowsMsg{}, err
	}
	s.m.gathers.Inc()
	return rowsMsg{Dim: s.cfg.Dim, Values: values}, nil
}

func (s *Shard) push(m pushMsg) (pushAck, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return pushAck{}, ErrDraining
	}
	if !s.restored {
		return pushAck{}, ErrNotRestored
	}
	if err := s.learnEpochLocked(m.Epoch); err != nil {
		return pushAck{}, err
	}
	if err := s.fenceLocked(m.Epoch); err != nil {
		return pushAck{}, err
	}
	if m.Dim != s.cfg.Dim {
		return pushAck{}, fmt.Errorf("%w: push dim %d, shard dim %d", ErrBadRequest, m.Dim, s.cfg.Dim)
	}
	t, ok := s.tables[m.Table]
	if !ok {
		return pushAck{}, fmt.Errorf("%w: unknown table %d", ErrBadRequest, m.Table)
	}
	// Dedup is keyed by lease epoch: the lease guarantees a single writer
	// per epoch, and that writer allocates seqs from one atomic counter, so
	// within an epoch seqs arrive strictly increasing and any replay — a
	// transport retry or a duplicated frame — is an exact duplicate of an
	// already-applied seq.
	if m.Seq <= s.lastSeq[m.Epoch] {
		s.m.pushesDeduped.Inc()
		return pushAck{Applied: false}, nil
	}
	if err := t.applyDelta(m.Rows, m.Delta); err != nil {
		return pushAck{}, err
	}
	s.lastSeq[m.Epoch] = m.Seq
	s.m.pushesApplied.Inc()
	return pushAck{Applied: true}, nil
}

func (s *Shard) checkpointRPC(m versionMsg) (versionAck, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return versionAck{}, ErrDraining
	}
	if !s.restored {
		return versionAck{}, ErrNotRestored
	}
	if err := s.learnEpochLocked(m.Epoch); err != nil {
		return versionAck{}, err
	}
	if err := s.fenceLocked(m.Epoch); err != nil {
		return versionAck{}, err
	}
	if err := s.writeCheckpointLocked(m.Version); err != nil {
		return versionAck{}, err
	}
	return versionAck{Version: m.Version}, nil
}

func (s *Shard) restoreRPC(m versionMsg) (versionAck, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return versionAck{}, ErrDraining
	}
	if err := s.learnEpochLocked(m.Epoch); err != nil {
		return versionAck{}, err
	}
	if err := s.fenceLocked(m.Epoch); err != nil {
		return versionAck{}, err
	}
	if err := s.restoreLocked(m.Version); err != nil {
		return versionAck{}, err
	}
	return versionAck{Version: m.Version}, nil
}

func (s *Shard) heartbeat(heartbeatMsg) (heartbeatAck, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return heartbeatAck{Version: s.version, Restored: s.restored, Draining: s.draining,
		Epoch: s.maxEpoch, NowUnixNanos: s.clock.Now().UnixNano()}, nil
}

// statsRPC exports the shard's observability state. It deliberately takes
// no shard lock and skips every gate (restore, drain, fencing): stats must
// stay readable exactly when the shard is unhealthy, and it only reads
// self-locking structures (registry, tracer) plus immutable config.
func (s *Shard) statsRPC(m statsMsg) (statsAck, error) {
	metricsJSON, err := json.Marshal(s.cfg.Metrics.Snapshot())
	if err != nil {
		return statsAck{}, fmt.Errorf("%w: encoding metrics snapshot: %w", ErrInternal, err)
	}
	spans := s.trace.Spans()
	if m.MaxSpans > 0 && len(spans) > m.MaxSpans {
		spans = spans[len(spans)-m.MaxSpans:] // most recent window
	}
	recs := make([]spanRec, len(spans))
	for i, sp := range spans {
		recs[i] = spanRec{Name: sp.Name, Cat: sp.Cat, TID: sp.TID,
			Start: int64(sp.Start), Dur: int64(sp.Dur),
			Trace: sp.Trace, ID: sp.ID, Parent: sp.Parent}
	}
	return statsAck{
		ShardID:        s.cfg.ID,
		NowUnixNanos:   s.clock.Now().UnixNano(),
		EpochUnixNanos: s.trace.Epoch().UnixNano(),
		Dropped:        s.trace.Dropped(),
		MetricsJSON:    string(metricsJSON),
		Threads:        s.trace.Threads(),
		Spans:          recs,
	}, nil
}

func (s *Shard) leaseRPC(m leaseMsg) (leaseAck, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	ttl := time.Duration(m.TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = s.cfg.LeaseTTL
	}
	if m.Renew {
		if s.lease.holder != m.WorkerID || s.lease.epoch != m.Epoch || !now.Before(s.lease.expiry) {
			return leaseAck{}, fmt.Errorf("%w: renew by worker %d epoch %d (lease: worker %d epoch %d)",
				ErrLeaseHeld, m.WorkerID, m.Epoch, s.lease.holder, s.lease.epoch)
		}
		s.lease.expiry = now.Add(ttl)
		return leaseAck{Epoch: s.lease.epoch}, nil
	}
	if s.lease.holder != 0 && s.lease.holder != m.WorkerID && now.Before(s.lease.expiry) {
		return leaseAck{}, fmt.Errorf("%w: worker %d holds the lease", ErrLeaseHeld, s.lease.holder)
	}
	// Every acquisition — including re-acquisition by the same worker —
	// bumps the fencing epoch: the new holder must out-fence any of its own
	// stale traffic still in flight from before the recovery.
	s.maxEpoch++
	if err := s.persistEpochLocked(); err != nil {
		s.maxEpoch--
		return leaseAck{}, err
	}
	s.lease = leaseState{holder: m.WorkerID, epoch: s.maxEpoch, expiry: now.Add(ttl)}
	return leaseAck{Epoch: s.lease.epoch}, nil
}

// --- connection handling ---------------------------------------------------

// Serve accepts connections on ln until Close. It blocks; run it via
// spawn/goroutine in callers.
func (s *Shard) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrDraining
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		ce := &connEntry{tid: 100 + int(s.connSeq.Add(1))}
		s.trace.SetThreadName(ce.tid, fmt.Sprintf("conn%d", ce.tid-100))
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = ce
		s.m.conns.Set(float64(len(s.conns)))
		s.mu.Unlock()
		s.wg.Add(1)
		spawn(func() {
			defer s.wg.Done()
			s.handleConn(c, ce)
		})
	}
}

// handleConn serves one connection: read a frame, dispatch, write the
// response. Any transport error (including an idle timeout) closes the
// connection; the client reconnects and retries.
func (s *Shard) handleConn(c net.Conn, ce *connEntry) {
	defer func() {
		if r := recover(); r != nil {
			s.log.Error("distps: connection handler panic", "shard", s.cfg.ID, "panic", fmt.Sprint(r))
		}
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.m.conns.Set(float64(len(s.conns)))
		s.mu.Unlock()
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		// Socket deadlines are kernel wall time by nature; the injected
		// obs.Clock drives only lease and liveness decisions.
		//elrec:wallclock socket idle deadline is enforced by the kernel against wall time
		c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		f, err := ReadFrame(br, s.cfg.MaxPayload)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.log.Debug("distps: read frame", "shard", s.cfg.ID, "err", err)
			}
			return
		}
		s.m.bytesIn.Add(int64(headerSize + len(f.Payload)))
		ce.busy.Store(true)
		rtype, payload := s.dispatch(f, ce.tid)
		// The response echoes the request's trace context so the client can
		// associate it without extra bookkeeping.
		werr := WriteFrame(bw, Frame{Type: rtype, ReqID: f.ReqID, Trace: f.Trace, Span: f.Span, Payload: payload})
		if werr == nil {
			werr = bw.Flush()
		}
		s.m.bytesOut.Add(int64(headerSize + len(payload)))
		ce.busy.Store(false)
		if werr != nil {
			return
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return // graceful drain: the in-flight request was answered
		}
	}
}

// dispatch decodes and executes one request, mapping handler errors to
// msgError responses. Every request runs under a handle:<type> span linked
// to the caller's trace context from the frame header, and its service
// time lands in the per-type distps_srv_<name>_ns histogram.
func (s *Shard) dispatch(f Frame, tid int) (uint8, []byte) {
	s.m.requests.Inc()
	s.m.inflight.Set(float64(s.inflight.Add(1)))
	sp := s.trace.BeginChild("handle:"+msgName(f.Type), "rpc", tid,
		obs.TraceContext{Trace: f.Trace, Span: f.Span})
	start := s.clock.Now()
	payload, rtype, err := s.handle(f)
	s.m.srvNS[f.Type].Observe(float64(s.clock.Now().Sub(start)))
	sp.End()
	s.m.inflight.Set(float64(s.inflight.Add(-1)))
	if err != nil {
		s.m.errors.Inc()
		return msgError, errMsg{Code: codeFor(err), Msg: err.Error()}.encode()
	}
	return rtype, payload
}

func (s *Shard) handle(f Frame) ([]byte, uint8, error) {
	bad := func(err error) ([]byte, uint8, error) {
		return nil, 0, fmt.Errorf("%w: %s: %w", ErrBadRequest, msgName(f.Type), err)
	}
	//elrec:wireswitch requests
	switch f.Type {
	case msgHello:
		m, err := decodeHello(f.Payload)
		if err != nil {
			return bad(err)
		}
		ack, err := s.hello(m)
		if err != nil {
			return nil, 0, err
		}
		return ack.encode(), msgHelloAck, nil
	case msgGather:
		m, err := decodeGather(f.Payload)
		if err != nil {
			return bad(err)
		}
		ack, err := s.gather(m)
		if err != nil {
			return nil, 0, err
		}
		return ack.encode(), msgRows, nil
	case msgPush:
		m, err := decodePush(f.Payload)
		if err != nil {
			return bad(err)
		}
		ack, err := s.push(m)
		if err != nil {
			return nil, 0, err
		}
		return ack.encode(), msgPushAck, nil
	case msgCheckpoint:
		m, err := decodeVersion(f.Payload)
		if err != nil {
			return bad(err)
		}
		ack, err := s.checkpointRPC(m)
		if err != nil {
			return nil, 0, err
		}
		return ack.encode(), msgCheckpointAck, nil
	case msgRestore:
		m, err := decodeVersion(f.Payload)
		if err != nil {
			return bad(err)
		}
		ack, err := s.restoreRPC(m)
		if err != nil {
			return nil, 0, err
		}
		return ack.encode(), msgRestoreAck, nil
	case msgHeartbeat:
		m, err := decodeHeartbeat(f.Payload)
		if err != nil {
			return bad(err)
		}
		ack, err := s.heartbeat(m)
		if err != nil {
			return nil, 0, err
		}
		return ack.encode(), msgHeartbeatAck, nil
	case msgLease:
		m, err := decodeLease(f.Payload)
		if err != nil {
			return bad(err)
		}
		ack, err := s.leaseRPC(m)
		if err != nil {
			return nil, 0, err
		}
		return ack.encode(), msgLeaseAck, nil
	case msgStats:
		m, err := decodeStats(f.Payload)
		if err != nil {
			return bad(err)
		}
		ack, err := s.statsRPC(m)
		if err != nil {
			return nil, 0, err
		}
		return ack.encode(), msgStatsAck, nil
	}
	return nil, 0, fmt.Errorf("%w: unexpected message %s", ErrBadRequest, msgName(f.Type))
}

// Close drains the shard: new requests are rejected with ErrDraining, the
// listener stops, in-flight requests get DrainTimeout to finish (idle
// connections close immediately), then everything is force-closed. Safe to
// call more than once.
func (s *Shard) Close() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	s.m.draining.Set(1)
	ln := s.ln
	idle := make([]net.Conn, 0, len(s.conns))
	for c, ce := range s.conns {
		if !ce.busy.Load() {
			idle = append(idle, c)
		}
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range idle {
		c.Close()
	}
	done := make(chan struct{})
	spawn(func() {
		s.wg.Wait()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.mu.Lock()
		for c := range s.conns {
			//elrec:lockorder net.Conn.Close does not block
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return nil
}
