package distps

import "sort"

// ringVnodes is the number of virtual nodes per shard. 64 points per shard
// keeps the worst-case row imbalance small at the shard counts this package
// targets (single digits) while the ring stays tiny.
const ringVnodes = 64

// Ring is the consistent-hash map from (table, row) keys to shard ids. It
// is a pure function of the shard count, so every worker and every shard
// computes an identical ring without any coordination — there is no shard
// map to distribute, and an observer that knows only N can locate any row.
//
// Consistent hashing (rather than row % N) keeps the door open for
// elastic reshards: adding a shard moves ~1/N of the rows instead of
// nearly all of them.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash, ascending
}

type ringPoint struct {
	hash  uint64
	shard int
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds the ring for n shards (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	r := &Ring{shards: n, points: make([]ringPoint, 0, n*ringVnodes)}
	for s := 0; s < n; s++ {
		for v := 0; v < ringVnodes; v++ {
			// Salt the vnode key away from the row key space.
			h := mix64(0x5ead0000_00000000 ^ uint64(s)<<20 ^ uint64(v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on shard id so the ring is a total order and every
		// participant resolves an (astronomically unlikely) hash collision
		// the same way.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard that owns row `row` of model table `table`: the
// first ring point at or after the key's hash, wrapping around.
func (r *Ring) Owner(table, row int) int {
	h := mix64(mix64(uint64(table)+0x9e3779b97f4a7c15) ^ uint64(row))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
