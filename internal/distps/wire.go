package distps

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame layout (all little-endian):
//
//	offset size field
//	0      4    magic     0xE17D15F5
//	4      1    version   wire protocol version (2)
//	5      1    type      message type (msg* constants)
//	6      4    length    payload byte count
//	10     8    reqID     request id (responses echo the request's)
//	18     8    trace     trace id (0 = untraced; responses echo it)
//	26     8    span      caller span id (0 = untraced; responses echo it)
//	34     4    checksum  FNV-1a 32 of the payload
//	38     n    payload
//
// Version 2 grew the trace/span fields: every request carries the caller's
// trace context in the header so a shard-side handler span can link under
// the worker-side RPC span in a merged Chrome trace, and responses echo
// both ids back. Carrying them in the header (not the payload) keeps
// propagation uniform across all message types, including msgError.
//
// The checksum turns a corrupted-in-flight payload into a typed
// ErrBadFrame instead of a silent mis-decode; a truncated frame surfaces
// as ErrBadFrame via io.ErrUnexpectedEOF. Either way the connection is
// poisoned and the caller retries on a fresh one.
const (
	frameMagic  = uint32(0xE17D15F5)
	wireVersion = uint8(2)
	headerSize  = 38

	// DefaultMaxPayload bounds a single frame's payload; larger gathers
	// and pushes must be split by the caller (the client chunks by rows).
	DefaultMaxPayload = 64 << 20
)

// Message types. Requests are odd, their success responses follow at the
// next value; msgError answers any request. The wireexhaustive analyzer
// reads this block (and the odd-is-a-request convention) and requires
// every //elrec:wireswitch dispatch/decode switch to handle its role's
// full constant set — adding a type here without wiring both sides of the
// protocol fails lint.
//
//elrec:wiretypes
const (
	msgHello         = uint8(1)
	msgHelloAck      = uint8(2)
	msgGather        = uint8(3)
	msgRows          = uint8(4)
	msgPush          = uint8(5)
	msgPushAck       = uint8(6)
	msgCheckpoint    = uint8(7)
	msgCheckpointAck = uint8(8)
	msgRestore       = uint8(9)
	msgRestoreAck    = uint8(10)
	msgHeartbeat     = uint8(11)
	msgHeartbeatAck  = uint8(12)
	msgLease         = uint8(13)
	msgLeaseAck      = uint8(14)
	msgError         = uint8(15)
	msgStats         = uint8(17)
	msgStatsAck      = uint8(18)
)

// Frame is one decoded wire frame. Trace and Span carry the sender's
// trace context (zero when untraced); a response echoes the request's.
type Frame struct {
	Type    uint8
	ReqID   uint64
	Trace   uint64
	Span    uint64
	Payload []byte
}

// fnv1a32 is the payload checksum (FNV-1a, 32-bit).
func fnv1a32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

// WriteFrame encodes f to w in one Write call (the header and payload are
// assembled into a single buffer so a concurrent writer on another frame
// cannot interleave partial frames on the same connection — callers still
// serialize writers per connection, this just keeps the failure mode sane).
func WriteFrame(w io.Writer, f Frame) error {
	buf := make([]byte, headerSize+len(f.Payload))
	binary.LittleEndian.PutUint32(buf[0:], frameMagic)
	buf[4] = wireVersion
	buf[5] = f.Type
	binary.LittleEndian.PutUint32(buf[6:], uint32(len(f.Payload)))
	binary.LittleEndian.PutUint64(buf[10:], f.ReqID)
	binary.LittleEndian.PutUint64(buf[18:], f.Trace)
	binary.LittleEndian.PutUint64(buf[26:], f.Span)
	binary.LittleEndian.PutUint32(buf[34:], fnv1a32(f.Payload))
	copy(buf[headerSize:], f.Payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame decodes one frame from r, rejecting payloads above maxPayload
// (<= 0 uses DefaultMaxPayload). Truncation, bad magic, a wire-version
// skew and checksum mismatches all return errors wrapping ErrBadFrame.
func ReadFrame(r *bufio.Reader, maxPayload int) (Frame, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF // clean close between frames
		}
		return Frame{}, fmt.Errorf("%w: truncated header: %w", ErrBadFrame, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != frameMagic {
		return Frame{}, fmt.Errorf("%w: magic %#x", ErrBadFrame, m)
	}
	if v := hdr[4]; v != wireVersion {
		return Frame{}, fmt.Errorf("%w: wire version %d (want %d)", ErrBadFrame, v, wireVersion)
	}
	n := int(binary.LittleEndian.Uint32(hdr[6:]))
	if n > maxPayload {
		return Frame{}, fmt.Errorf("%w: payload %d exceeds cap %d", ErrBadFrame, n, maxPayload)
	}
	f := Frame{
		Type:    hdr[5],
		ReqID:   binary.LittleEndian.Uint64(hdr[10:]),
		Trace:   binary.LittleEndian.Uint64(hdr[18:]),
		Span:    binary.LittleEndian.Uint64(hdr[26:]),
		Payload: make([]byte, n),
	}
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return Frame{}, fmt.Errorf("%w: truncated payload: %w", ErrBadFrame, err)
	}
	if sum := binary.LittleEndian.Uint32(hdr[34:]); sum != fnv1a32(f.Payload) {
		return Frame{}, fmt.Errorf("%w: payload checksum mismatch", ErrBadFrame)
	}
	return f, nil
}

// ReadRawFrame reads one whole frame — header and payload — and returns
// its raw bytes without validating the checksum. The fault-injection
// socket proxy uses it to split a TCP stream into frames it can drop,
// duplicate, delay or truncate deterministically.
func ReadRawFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != frameMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrBadFrame, m)
	}
	n := int(binary.LittleEndian.Uint32(hdr[6:]))
	if n > DefaultMaxPayload {
		return nil, fmt.Errorf("%w: payload %d exceeds cap", ErrBadFrame, n)
	}
	buf := make([]byte, headerSize+n)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[headerSize:]); err != nil {
		return nil, err
	}
	return buf, nil
}
