package distps

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{1, 2, 3}, 1000)}
	var buf bytes.Buffer
	for i, p := range payloads {
		f := Frame{Type: uint8(i + 1), ReqID: uint64(100 + i), Payload: p,
			Trace: uint64(i) * 0x1000000000000001, Span: uint64(i) * 3}
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame(%d): %v", i, err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, p := range payloads {
		f, err := ReadFrame(br, 0)
		if err != nil {
			t.Fatalf("ReadFrame(%d): %v", i, err)
		}
		if f.Type != uint8(i+1) || f.ReqID != uint64(100+i) || !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame %d: got %+v, want payload %v", i, f, p)
		}
		if f.Trace != uint64(i)*0x1000000000000001 || f.Span != uint64(i)*3 {
			t.Fatalf("frame %d: trace context %#x/%#x did not survive the round trip", i, f.Trace, f.Span)
		}
	}
	if _, err := ReadFrame(br, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	encode := func(mutate func([]byte)) *bufio.Reader {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Frame{Type: msgGather, ReqID: 7, Payload: []byte("abcdef")}); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()
		mutate(b)
		return bufio.NewReader(bytes.NewReader(b))
	}
	cases := []struct {
		name   string
		mutate func([]byte)
	}{
		{"payload bit flip", func(b []byte) { b[headerSize] ^= 0x80 }},
		{"checksum flip", func(b []byte) { b[34] ^= 1 }},
		{"bad magic", func(b []byte) { b[0] = 0 }},
		{"wire version skew", func(b []byte) { b[4] = 99 }},
	}
	for _, tc := range cases {
		if _, err := ReadFrame(encode(tc.mutate), 0); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", tc.name, err)
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: msgPush, ReqID: 9, Payload: []byte("payload bytes")}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Every strict prefix must fail: a cut inside the header or the payload
	// is ErrBadFrame; zero bytes is a clean EOF between frames.
	for cut := 0; cut < len(whole); cut++ {
		_, err := ReadFrame(bufio.NewReader(bytes.NewReader(whole[:cut])), 0)
		if cut == 0 {
			if !errors.Is(err, io.EOF) || errors.Is(err, ErrBadFrame) {
				t.Fatalf("cut 0: err = %v, want clean io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("cut %d: err = %v, want ErrBadFrame", cut, err)
		}
	}
}

func TestFramePayloadCap(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: msgRows, Payload: make([]byte, 1024)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bufio.NewReader(&buf), 512); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized payload: err = %v, want ErrBadFrame", err)
	}
}

func TestReadRawFramePreservesBytes(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Type: msgHello, ReqID: 1, Payload: []byte("one")},
		{Type: msgGather, ReqID: 2, Payload: nil},
		{Type: msgPush, ReqID: 3, Payload: bytes.Repeat([]byte{9}, 300)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	whole := append([]byte(nil), buf.Bytes()...)
	br := bufio.NewReader(&buf)
	var rejoined []byte
	for range frames {
		raw, err := ReadRawFrame(br)
		if err != nil {
			t.Fatalf("ReadRawFrame: %v", err)
		}
		rejoined = append(rejoined, raw...)
	}
	if !bytes.Equal(rejoined, whole) {
		t.Fatal("raw frames do not reassemble the original byte stream")
	}
	if _, err := ReadRawFrame(br); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}
