package distps

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/ps"
	"repro/internal/tensor"
)

// maxRowsPerRPC chunks large gathers and pushes so a single frame stays
// far below the payload cap (65536 rows × dim 64 × 4B ≈ 16 MB).
const maxRowsPerRPC = 1 << 16

// Backoff bounds transport-level retries: capped exponential backoff
// starting at BaseDelay, doubling per attempt up to MaxDelay, for at most
// MaxRetries retries after the first attempt.
type Backoff struct {
	MaxRetries int
	BaseDelay  time.Duration
	MaxDelay   time.Duration

	// Sleep overrides the backoff wait; tests install a recorder driving an
	// obs.Manual clock so a heavily faulted run finishes in microseconds.
	Sleep func(time.Duration)
}

// DefaultBackoff is the production policy: 4 retries, 5ms→250ms.
func DefaultBackoff() Backoff {
	return Backoff{MaxRetries: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
}

func (b Backoff) withDefaults() Backoff {
	d := DefaultBackoff()
	if b.MaxRetries <= 0 {
		b.MaxRetries = d.MaxRetries
	}
	if b.BaseDelay <= 0 {
		b.BaseDelay = d.BaseDelay
	}
	if b.MaxDelay <= 0 {
		b.MaxDelay = d.MaxDelay
	}
	return b
}

// Delay returns the backoff before retry `attempt` (0-based), capped.
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt > 30 {
		return b.MaxDelay
	}
	d := b.BaseDelay << uint(attempt)
	if d <= 0 || d > b.MaxDelay {
		d = b.MaxDelay
	}
	return d
}

// sleep waits d or until ctx is cancelled, whichever comes first.
func (b Backoff) sleep(ctx context.Context, d time.Duration) error {
	if b.Sleep != nil {
		b.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ClientConfig configures a shard-set client.
type ClientConfig struct {
	WorkerID uint64
	Shards   []string // shard addresses, indexed by shard id

	// Dim, Seed and Tables must match every shard's ShardConfig; Hello
	// validates them on each new connection.
	Dim    int
	Seed   uint64
	Tables []TableSpec

	// Timeout is the per-RPC socket deadline (default 5s).
	Timeout time.Duration

	// LeaseTTL is requested on acquire/renew (default: shard's default).
	LeaseTTL time.Duration

	Retry      Backoff
	MaxPayload int

	Clock   obs.Clock     // drives latency measurement; nil = system
	Metrics *obs.Registry // distps_* client instruments; nil = off
	Trace   *obs.Tracer   // per-attempt RPC spans, propagated to shards; nil = off
	Log     *obs.Logger   // nil = silent
}

// clientMetrics are the client-side instruments (nil instruments no-op).
type clientMetrics struct {
	retries    *obs.Counter
	reconnects *obs.Counter
	hbMisses   *obs.Counter
	bytesIn    *obs.Counter             // distps_rpc_bytes_in (frames received, header+payload)
	bytesOut   *obs.Counter             // distps_rpc_bytes_out (frames sent)
	latency    map[uint8]*obs.Histogram // request type -> RPC latency (ns)
	up         []*obs.Gauge             // per shard: 1 = last heartbeat answered
	offset     []*obs.Gauge             // per shard: estimated clock offset (ns, shard - worker)
}

// shardConn is one lazily-dialed connection to one shard. A connection
// carries strictly serialized request/response exchanges; any transport
// error, id mismatch or unexpected frame poisons it, and the next exchange
// dials fresh (re-running the Hello spec check).
type shardConn struct {
	index int
	addr  string

	mu    sync.Mutex
	conn  net.Conn      // guarded by mu
	br    *bufio.Reader // guarded by mu
	reqID uint64        // guarded by mu
}

// Client talks to the full shard set: per-call deadlines, capped-backoff
// retries with idempotent request payloads, heartbeat liveness, and a
// ps.HostStore adapter per table that plugs the shards into the pipeline
// trainer.
type Client struct {
	cfg   ClientConfig
	retry Backoff
	ring  *Ring
	clock obs.Clock
	trace *obs.Tracer
	log   *obs.Logger
	m     clientMetrics

	// offsets[i] is the latest NTP-style estimate of shard i's wall clock
	// minus this process's, in nanoseconds, refreshed by every heartbeat.
	// The merged cluster trace subtracts it to place shard timelines on the
	// worker's clock.
	offsets []atomic.Int64

	epoch atomic.Uint64 // current lease epoch (fencing token)
	seq   atomic.Uint64 // push seq within the current epoch

	conns []*shardConn

	hbOnce sync.Once
	hbStop chan struct{}
	hbWG   sync.WaitGroup
}

// NewClient builds the client; connections are dialed on first use.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("%w: no shard addresses", ErrBadRequest)
	}
	if cfg.Dim <= 0 || len(cfg.Tables) == 0 {
		return nil, fmt.Errorf("%w: client needs a positive dim and at least one table", ErrBadRequest)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	c := &Client{
		cfg:     cfg,
		retry:   cfg.Retry.withDefaults(),
		ring:    NewRing(len(cfg.Shards)),
		clock:   obs.OrSystem(cfg.Clock),
		trace:   cfg.Trace,
		log:     cfg.Log,
		offsets: make([]atomic.Int64, len(cfg.Shards)),
		hbStop:  make(chan struct{}),
	}
	r := cfg.Metrics
	c.m = clientMetrics{
		retries:    r.Counter("distps_rpc_retries"),
		reconnects: r.Counter("distps_reconnects"),
		hbMisses:   r.Counter("distps_heartbeat_misses"),
		bytesIn:    r.Counter("distps_rpc_bytes_in"),
		bytesOut:   r.Counter("distps_rpc_bytes_out"),
		latency:    make(map[uint8]*obs.Histogram),
	}
	for _, typ := range []uint8{msgHello, msgGather, msgPush, msgCheckpoint, msgRestore, msgHeartbeat, msgLease, msgStats} {
		c.m.latency[typ] = r.Histogram("distps_rpc_" + msgName(typ) + "_ns")
	}
	for i, addr := range cfg.Shards {
		c.conns = append(c.conns, &shardConn{index: i, addr: addr})
		c.m.up = append(c.m.up, r.Gauge(fmt.Sprintf("distps_shard%d_up", i)))
		c.m.offset = append(c.m.offset, r.Gauge(fmt.Sprintf("distps_shard%d_clock_offset_ns", i)))
		c.trace.SetThreadName(rpcTID(i), fmt.Sprintf("rpc:shard%d", i))
	}
	return c, nil
}

// rpcTID is the trace lane for RPCs against one shard.
func rpcTID(shard int) int { return 10 + shard }

// ShardOffset returns the latest clock-offset estimate for one shard
// (shard wall clock minus this process's, nanoseconds; 0 until the first
// heartbeat lands).
func (c *Client) ShardOffset(shard int) int64 {
	return c.offsets[shard].Load()
}

// Ring exposes the row-placement function (shared with the shards).
func (c *Client) Ring() *Ring { return c.ring }

// Epoch returns the current lease epoch.
func (c *Client) Epoch() uint64 { return c.epoch.Load() }

// SetEpoch installs a lease epoch obtained elsewhere and resets the push
// seq space (seqs are monotone within an epoch).
func (c *Client) SetEpoch(e uint64) {
	c.epoch.Store(e)
	c.seq.Store(0)
}

// nextSeq allocates the next push sequence number.
func (c *Client) nextSeq() uint64 { return c.seq.Add(1) }

// --- transport -------------------------------------------------------------

// poisonLocked discards the connection so the next exchange dials fresh.
//
//elrec:locked mu callers (roundTrip and exchangeLocked's callers) hold sc.mu
func (sc *shardConn) poisonLocked() {
	if sc.conn != nil {
		sc.conn.Close()
		sc.conn = nil
		sc.br = nil
	}
}

// exchangeLocked performs one framed request/response on the live
// connection. Any failure poisons the connection.
//
//elrec:locked mu roundTrip holds sc.mu across dial + exchange
func (sc *shardConn) exchangeLocked(c *Client, typ uint8, payload []byte, tctx obs.TraceContext) (Frame, error) {
	sc.reqID++
	id := sc.reqID
	// Socket deadlines are kernel wall time by nature; the injected clock
	// drives only latency measurement and lease logic.
	//elrec:wallclock socket I/O deadline is enforced by the kernel against wall time
	if err := sc.conn.SetDeadline(time.Now().Add(c.cfg.Timeout)); err != nil {
		sc.poisonLocked()
		return Frame{}, err
	}
	if err := WriteFrame(sc.conn, Frame{Type: typ, ReqID: id, Trace: tctx.Trace, Span: tctx.Span, Payload: payload}); err != nil {
		sc.poisonLocked()
		return Frame{}, err
	}
	c.m.bytesOut.Add(int64(headerSize + len(payload)))
	f, err := ReadFrame(sc.br, c.cfg.MaxPayload)
	if err != nil {
		sc.poisonLocked()
		return Frame{}, err
	}
	c.m.bytesIn.Add(int64(headerSize + len(f.Payload)))
	if f.ReqID != id {
		// A stale or duplicated frame desynchronized the stream (e.g. the
		// fault proxy duplicated a response); nothing on this connection can
		// be trusted anymore.
		sc.poisonLocked()
		return Frame{}, fmt.Errorf("%w: response id %d for request %d", ErrBadFrame, f.ReqID, id)
	}
	return f, nil
}

// roundTrip runs one exchange, dialing (and re-validating the spec via
// Hello) if the connection is down.
func (sc *shardConn) roundTrip(c *Client, typ uint8, payload []byte, tctx obs.TraceContext) (Frame, error) {
	// sc.mu exists precisely to serialize this connection's dial and
	// request/response exchange: holding it across the socket I/O is the
	// invariant, not a bug. The I/O is deadline-bounded (dial timeout,
	// SetDeadline in exchangeLocked), so the hold time is capped.
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.conn == nil {
		//elrec:wallclock dial timeout is enforced by the kernel against wall time
		//elrec:lockorder per-connection mutex serializes deadline-bounded dial
		conn, err := net.DialTimeout("tcp", sc.addr, c.cfg.Timeout)
		if err != nil {
			return Frame{}, err
		}
		sc.conn = conn
		sc.br = bufio.NewReader(conn)
		c.m.reconnects.Inc()
		hello := helloMsg{WorkerID: c.cfg.WorkerID, Epoch: c.epoch.Load(), Seed: c.cfg.Seed,
			Dim: c.cfg.Dim, Tables: c.cfg.Tables}
		// The implicit re-dial Hello inherits the caller's trace context, so
		// a reconnect shows up in the trace as a handle:hello child of the
		// RPC that triggered it.
		//elrec:lockorder per-connection mutex serializes deadline-bounded exchange
		f, err := sc.exchangeLocked(c, msgHello, hello.encode(), tctx)
		if err != nil {
			return Frame{}, err
		}
		body, err := checkReply(f, msgHelloAck)
		if err != nil {
			return Frame{}, err
		}
		ack, err := decodeHelloAck(body)
		if err != nil {
			//elrec:lockorder net.Conn.Close does not block
			sc.poisonLocked()
			return Frame{}, err
		}
		if ack.ShardID != sc.index || ack.NumShards != len(c.cfg.Shards) {
			//elrec:lockorder net.Conn.Close does not block
			sc.poisonLocked()
			return Frame{}, fmt.Errorf("%w: dialed shard %d/%d, reached %d/%d",
				ErrSpecMismatch, sc.index, len(c.cfg.Shards), ack.ShardID, ack.NumShards)
		}
	}
	//elrec:lockorder per-connection mutex serializes deadline-bounded exchange
	return sc.exchangeLocked(c, typ, payload, tctx)
}

// checkReply unwraps a response frame: msgError becomes the matching typed
// sentinel, a wrong type is a protocol violation.
func checkReply(f Frame, want uint8) ([]byte, error) {
	if f.Type == msgError {
		em, derr := decodeErr(f.Payload)
		if derr != nil {
			return nil, derr
		}
		return nil, fmt.Errorf("%w (remote: %s)", sentinelFor(em.Code), em.Msg)
	}
	if f.Type != want {
		return nil, fmt.Errorf("%w: reply type %s, want %s", ErrBadFrame, msgName(f.Type), msgName(want))
	}
	return f.Payload, nil
}

// responseFor maps each request type to the response type that
// acknowledges it: the client-side half of the wire contract. Adding a
// frame type without extending this switch fails lint.
func responseFor(typ uint8) uint8 {
	//elrec:wireswitch requests
	switch typ {
	case msgHello:
		return msgHelloAck
	case msgGather:
		return msgRows
	case msgPush:
		return msgPushAck
	case msgCheckpoint:
		return msgCheckpointAck
	case msgRestore:
		return msgRestoreAck
	case msgHeartbeat:
		return msgHeartbeatAck
	case msgLease:
		return msgLeaseAck
	case msgStats:
		return msgStatsAck
	}
	return msgError
}

// retryable classifies errors: transport faults (connection, deadline,
// frame corruption) and a draining shard are worth retrying — the request
// payload is idempotent by construction. Typed application rejections are
// not: fencing, spec and lease conflicts need the caller's recovery logic,
// and an unrestored shard only becomes useful after an explicit Restore.
func retryable(err error) bool {
	switch {
	case errors.Is(err, ErrFenced),
		errors.Is(err, ErrSpecMismatch),
		errors.Is(err, ErrBadRequest),
		errors.Is(err, ErrLeaseHeld),
		errors.Is(err, ErrNoCheckpoint),
		errors.Is(err, ErrNotRestored):
		return false
	}
	return true
}

// call is the retrying RPC: the payload is reused verbatim across attempts
// (pushes carry their seq, so replays dedupe server-side). The expected
// response type is derived from the request type via responseFor. ctx
// cancellation aborts between attempts and during backoff; an in-flight
// socket exchange still runs to its own deadline.
func (c *Client) call(ctx context.Context, shard int, typ uint8, payload []byte) ([]byte, error) {
	sc := c.conns[shard]
	want := responseFor(typ)
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("shard %d %s: %w", shard, msgName(typ), err)
		}
		start := c.clock.Now()
		// One span per attempt, each rooting its own trace: a retried RPC
		// shows as separate worker-side slices, each flowing to its own
		// shard-side handler span.
		sp := c.trace.BeginTrace(msgName(typ), "rpc", rpcTID(shard))
		f, err := sc.roundTrip(c, typ, payload, sp.Context())
		sp.End()
		if err == nil {
			var body []byte
			body, err = checkReply(f, want)
			if err == nil {
				c.m.latency[typ].Observe(float64(obs.Since(c.clock, start)))
				return body, nil
			}
			if errors.Is(err, ErrBadFrame) {
				sc.mu.Lock()
				//elrec:lockorder net.Conn.Close does not block
				sc.poisonLocked()
				sc.mu.Unlock()
			}
		}
		last = err
		if !retryable(err) {
			return nil, fmt.Errorf("shard %d %s: %w", shard, msgName(typ), err)
		}
		if attempt >= c.retry.MaxRetries {
			return nil, fmt.Errorf("%w: shard %d %s after %d attempts: %w", ErrRPCFailed, shard, msgName(typ), attempt+1, last)
		}
		c.m.retries.Inc()
		if err := c.retry.sleep(ctx, c.retry.Delay(attempt)); err != nil {
			return nil, fmt.Errorf("shard %d %s: %w", shard, msgName(typ), err)
		}
	}
}

// --- RPC surface -----------------------------------------------------------

// HelloAll dials and validates every shard, returning their statuses.
func (c *Client) HelloAll(ctx context.Context) ([]ShardStatus, error) {
	hello := helloMsg{WorkerID: c.cfg.WorkerID, Epoch: c.epoch.Load(), Seed: c.cfg.Seed,
		Dim: c.cfg.Dim, Tables: c.cfg.Tables}
	out := make([]ShardStatus, len(c.conns))
	for i := range c.conns {
		body, err := c.call(ctx, i, msgHello, hello.encode())
		if err != nil {
			return nil, err
		}
		ack, err := decodeHelloAck(body)
		if err != nil {
			return nil, err
		}
		out[i] = ShardStatus{Version: ack.Version, Restored: ack.Restored, Epoch: ack.Epoch}
	}
	return out, nil
}

// Gather fetches the given rows of one table from one shard.
func (c *Client) Gather(ctx context.Context, shard, table int, rows []int) ([]float32, error) {
	out := make([]float32, 0, len(rows)*c.cfg.Dim)
	for off := 0; off < len(rows); off += maxRowsPerRPC {
		end := min(off+maxRowsPerRPC, len(rows))
		body, err := c.call(ctx, shard, msgGather, gatherMsg{Table: table, Rows: rows[off:end]}.encode())
		if err != nil {
			return nil, err
		}
		m, err := decodeRows(body)
		if err != nil {
			return nil, err
		}
		if m.Dim != c.cfg.Dim || len(m.Values) != (end-off)*c.cfg.Dim {
			return nil, fmt.Errorf("%w: gather returned %d values of dim %d for %d rows",
				ErrBadFrame, len(m.Values), m.Dim, end-off)
		}
		out = append(out, m.Values...)
	}
	return out, nil
}

// Push applies a pre-scaled delta to rows of one table on one shard. seq
// must come from nextSeq; the encoded payload is what makes retries
// idempotent.
func (c *Client) Push(ctx context.Context, shard int, seq uint64, table int, rows []int, delta []float32) error {
	m := pushMsg{Epoch: c.epoch.Load(), Seq: seq, Table: table, Rows: rows, Dim: c.cfg.Dim, Delta: delta}
	body, err := c.call(ctx, shard, msgPush, m.encode())
	if err != nil {
		return err
	}
	_, err = decodePushAck(body)
	return err
}

// CheckpointAll asks every shard to make version v durable. It is the
// remote half of the coordinated checkpoint: the worker's local state file
// is only written after every shard acked.
func (c *Client) CheckpointAll(ctx context.Context, v int64) error {
	m := versionMsg{Epoch: c.epoch.Load(), Version: v}
	for i := range c.conns {
		if _, err := c.call(ctx, i, msgCheckpoint, m.encode()); err != nil {
			return err
		}
	}
	return nil
}

// RestoreAll tells every shard to reload durable version v. Restoring the
// whole set — not just a restarted shard — rolls back any shard that
// applied pushes past the checkpoint before a crash tore the run.
func (c *Client) RestoreAll(ctx context.Context, v int64) error {
	m := versionMsg{Epoch: c.epoch.Load(), Version: v}
	for i := range c.conns {
		if _, err := c.call(ctx, i, msgRestore, m.encode()); err != nil {
			return err
		}
	}
	return nil
}

// ShardStatus is a shard's self-reported liveness state.
type ShardStatus struct {
	Version  int64
	Restored bool
	Draining bool
	Epoch    uint64
}

// Heartbeat probes one shard (single attempt, no retries — liveness wants
// the truth, not persistence). Each successful heartbeat doubles as an
// NTP-style clock-offset sample: with t0/t1 the local send/receive
// instants and ts the shard clock when the ack was built, the estimate is
// ts − (t0 + (t1−t0)/2), i.e. the shard clock minus the local clock
// assuming symmetric network delay. The midpoint is computed as
// t0 + (t1−t0)/2 — never (t0+t1)/2, which overflows int64 for the
// near-minimal UnixNanos a zeroed test clock reports.
func (c *Client) Heartbeat(ctx context.Context, shard int) (ShardStatus, error) {
	if err := ctx.Err(); err != nil {
		return ShardStatus{}, err
	}
	sc := c.conns[shard]
	sp := c.trace.BeginTrace("heartbeat", "rpc", rpcTID(shard))
	t0 := c.clock.Now()
	f, err := sc.roundTrip(c, msgHeartbeat,
		heartbeatMsg{WorkerID: c.cfg.WorkerID, SendUnixNanos: t0.UnixNano()}.encode(), sp.Context())
	t1 := c.clock.Now()
	sp.End()
	if err != nil {
		return ShardStatus{}, err
	}
	body, err := checkReply(f, msgHeartbeatAck)
	if err != nil {
		return ShardStatus{}, err
	}
	ack, err := decodeHeartbeatAck(body)
	if err != nil {
		return ShardStatus{}, err
	}
	t0n, t1n := t0.UnixNano(), t1.UnixNano()
	offset := ack.NowUnixNanos - (t0n + (t1n-t0n)/2)
	c.offsets[shard].Store(offset)
	c.m.offset[shard].Set(float64(offset))
	return ShardStatus{Version: ack.Version, Restored: ack.Restored, Draining: ack.Draining, Epoch: ack.Epoch}, nil
}

// Stats fetches one shard's observability snapshot: its metrics registry,
// thread table, and up to maxSpans most-recent completed spans (0 = all
// retained). Stats is served even by an unrestored or draining shard.
func (c *Client) Stats(ctx context.Context, shard, maxSpans int) (ShardStats, error) {
	body, err := c.call(ctx, shard, msgStats, statsMsg{MaxSpans: maxSpans}.encode())
	if err != nil {
		return ShardStats{}, err
	}
	ack, err := decodeStatsAck(body)
	if err != nil {
		return ShardStats{}, err
	}
	st := ShardStats{
		ShardID:        ack.ShardID,
		NowUnixNanos:   ack.NowUnixNanos,
		EpochUnixNanos: ack.EpochUnixNanos,
		Dropped:        ack.Dropped,
		Threads:        ack.Threads,
		Spans:          make([]obs.Span, len(ack.Spans)),
	}
	for i, r := range ack.Spans {
		st.Spans[i] = obs.Span{Name: r.Name, Cat: r.Cat, TID: r.TID,
			Start: time.Duration(r.Start), Dur: time.Duration(r.Dur),
			Trace: r.Trace, ID: r.ID, Parent: r.Parent}
	}
	if ack.MetricsJSON != "" {
		if err := json.Unmarshal([]byte(ack.MetricsJSON), &st.Metrics); err != nil {
			return ShardStats{}, fmt.Errorf("%w: shard %d metrics snapshot: %w", ErrBadFrame, shard, err)
		}
	}
	return st, nil
}

// ShardStats is one shard's decoded observability snapshot.
type ShardStats struct {
	ShardID        int
	NowUnixNanos   int64 // shard wall clock when the snapshot was built
	EpochUnixNanos int64 // shard tracer epoch (span Starts are relative to it)
	Dropped        int64 // span-ring overwrites on the shard
	Metrics        obs.Snapshot
	Threads        map[int]string
	Spans          []obs.Span
}

// AcquireLease acquires the trainer lease from the lease-authority shard
// (shard 0), installs the granted epoch, and returns it.
func (c *Client) AcquireLease(ctx context.Context) (uint64, error) {
	m := leaseMsg{WorkerID: c.cfg.WorkerID, TTLMS: uint64(c.cfg.LeaseTTL / time.Millisecond)}
	body, err := c.call(ctx, 0, msgLease, m.encode())
	if err != nil {
		return 0, err
	}
	ack, err := decodeLeaseAck(body)
	if err != nil {
		return 0, err
	}
	c.SetEpoch(ack.Epoch)
	return ack.Epoch, nil
}

// RenewLease extends the currently held lease.
func (c *Client) RenewLease(ctx context.Context) error {
	m := leaseMsg{WorkerID: c.cfg.WorkerID, Renew: true, Epoch: c.epoch.Load(),
		TTLMS: uint64(c.cfg.LeaseTTL / time.Millisecond)}
	body, err := c.call(ctx, 0, msgLease, m.encode())
	if err != nil {
		return err
	}
	_, err = decodeLeaseAck(body)
	return err
}

// StartHeartbeats probes every shard each interval, maintaining the
// distps_shard<i>_up gauges and the heartbeat-miss counter until ctx is
// cancelled or Close is called.
func (c *Client) StartHeartbeats(ctx context.Context, every time.Duration) {
	if ctx == nil {
		ctx = context.Background() //elrec:rootctx nil-ctx compatibility default, matching Worker.Run
	}
	if every <= 0 {
		every = time.Second
	}
	c.hbOnce.Do(func() {
		for i := range c.conns {
			shard := i
			c.hbWG.Add(1)
			spawn(func() {
				defer c.hbWG.Done()
				t := time.NewTicker(every)
				defer t.Stop()
				for {
					select {
					case <-c.hbStop:
						return
					case <-ctx.Done():
						return
					case <-t.C:
						if _, err := c.Heartbeat(ctx, shard); err != nil {
							c.m.hbMisses.Inc()
							c.m.up[shard].Set(0)
						} else {
							c.m.up[shard].Set(1)
						}
					}
				}
			})
		}
	})
}

// Close stops heartbeats and closes every connection.
func (c *Client) Close() error {
	c.hbOnce.Do(func() {}) // never started: keep the Once consumed
	select {
	case <-c.hbStop:
	default:
		close(c.hbStop)
	}
	c.hbWG.Wait()
	for _, sc := range c.conns {
		sc.mu.Lock()
		//elrec:lockorder net.Conn.Close does not block
		sc.poisonLocked()
		sc.mu.Unlock()
	}
	return nil
}

// --- ps.HostStore adapter --------------------------------------------------

// Store returns the pipeline-facing store for one of the client's tables.
// ctx bounds every RPC the store issues: ps.HostStore predates the
// cancellation contract (its methods take no context), so the store
// captures the training run's context at construction — a new store is
// built per run, alongside the pipeline it feeds.
func (c *Client) Store(ctx context.Context, spec TableSpec) ps.HostStore {
	if ctx == nil {
		ctx = context.Background() //elrec:rootctx nil-ctx compatibility default, matching Worker.Run
	}
	return &remoteStore{c: c, spec: spec, ctx: ctx}
}

// remoteStore implements ps.HostStore over the shard set: gathers fan out
// by ring ownership and reassemble in request order; deltas fan out with
// fresh seqs per message, so transport replays dedupe server-side and a
// completed ApplyDelta is fully visible to subsequent gathers (the shard
// applies under its state lock before acking).
type remoteStore struct {
	c    *Client
	spec TableSpec
	ctx  context.Context // the owning run's context (see Store)
}

var _ ps.HostStore = (*remoteStore)(nil)

// group splits row ids by owning shard, remembering each row's position in
// the original request.
func (s *remoteStore) group(uniq []int) (rows [][]int, pos [][]int) {
	n := len(s.c.conns)
	rows = make([][]int, n)
	pos = make([][]int, n)
	for i, r := range uniq {
		o := s.c.ring.Owner(s.spec.Index, r)
		rows[o] = append(rows[o], r)
		pos[o] = append(pos[o], i)
	}
	return rows, pos
}

// GatherRows fetches the current value of each requested row.
func (s *remoteStore) GatherRows(uniq []int) (*tensor.Matrix, error) {
	dim := s.c.cfg.Dim
	out := tensor.New(len(uniq), dim)
	rows, pos := s.group(uniq)
	for sh := range rows {
		if len(rows[sh]) == 0 {
			continue
		}
		values, err := s.c.Gather(s.ctx, sh, s.spec.Index, rows[sh])
		if err != nil {
			return nil, fmt.Errorf("table %d shard %d: %w", s.spec.Index, sh, err)
		}
		for j, p := range pos[sh] {
			copy(out.Row(p), values[j*dim:(j+1)*dim])
		}
	}
	return out, nil
}

// ApplyDelta scatters the pre-scaled delta across the owning shards.
func (s *remoteStore) ApplyDelta(uniq []int, delta *tensor.Matrix) error {
	dim := s.c.cfg.Dim
	rows, pos := s.group(uniq)
	for sh := range rows {
		if len(rows[sh]) == 0 {
			continue
		}
		for off := 0; off < len(rows[sh]); off += maxRowsPerRPC {
			end := min(off+maxRowsPerRPC, len(rows[sh]))
			sub := make([]float32, 0, (end-off)*dim)
			for _, p := range pos[sh][off:end] {
				sub = append(sub, delta.Row(p)...)
			}
			if err := s.c.Push(s.ctx, sh, s.c.nextSeq(), s.spec.Index, rows[sh][off:end], sub); err != nil {
				return fmt.Errorf("table %d shard %d: %w", s.spec.Index, sh, err)
			}
		}
	}
	return nil
}

// NumRows returns the table's total row count.
func (s *remoteStore) NumRows() int { return s.spec.Rows }

// Dim returns the embedding dimension.
func (s *remoteStore) Dim() int { return s.c.cfg.Dim }
