package distps

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// tracedShards boots n shards with per-shard registries and tracers whose
// span-id spaces are disjoint (shard i gets base (i+1)<<48, matching the
// binaries), plus a traced client over them.
func tracedShards(t *testing.T, sc Scenario, n int) ([]*Shard, *Client) {
	t.Helper()
	shards, addrs := startShards(t, sc, n, func(cfg *ShardConfig) {
		cfg.Trace = obs.NewTracer(nil)
		cfg.Trace.SetSpanIDBase(uint64(cfg.ID+1) << 48)
	})
	ccfg := sc.ClientConfig(1, addrs)
	ccfg.Timeout = 2 * time.Second
	ccfg.Retry = fastBackoff()
	ccfg.Metrics = obs.NewRegistry()
	ccfg.Trace = obs.NewTracer(nil)
	c, err := NewClient(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return shards, c
}

// TestStatsRPCRoundTrip exercises the msgStats exchange against a live
// shard: the ack must carry the shard's metrics snapshot (including the
// server-side per-type latency histograms fed by this very conversation),
// its span window with trace context intact, and its thread names.
func TestStatsRPCRoundTrip(t *testing.T) {
	sc := testScenario()
	_, c := tracedShards(t, sc, 1)
	ctx := context.Background()

	if _, err := c.HelloAll(ctx); err != nil {
		t.Fatalf("HelloAll: %v", err)
	}
	if _, err := c.Heartbeat(ctx, 0); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}

	st, err := c.Stats(ctx, 0, 0)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.ShardID != 0 {
		t.Fatalf("ShardID = %d, want 0", st.ShardID)
	}
	if st.NowUnixNanos == 0 || st.EpochUnixNanos == 0 {
		t.Fatalf("timestamps missing: now=%d epoch=%d", st.NowUnixNanos, st.EpochUnixNanos)
	}
	// The hello and heartbeat we just sent must show up in the shard's own
	// server-side telemetry.
	for _, h := range []string{"distps_srv_hello_ns", "distps_srv_heartbeat_ns"} {
		if got := st.Metrics.Histograms[h].Count; got == 0 {
			t.Fatalf("%s count = 0, want the RPCs this test sent", h)
		}
	}
	if st.Metrics.Counters["distps_srv_bytes_in"] == 0 || st.Metrics.Counters["distps_srv_bytes_out"] == 0 {
		t.Fatalf("server byte counters empty: %v", st.Metrics.Counters)
	}
	var sawHandler bool
	for _, sp := range st.Spans {
		if !strings.HasPrefix(sp.Name, "handle:") {
			continue
		}
		sawHandler = true
		if sp.ID>>48 != 1 {
			t.Fatalf("shard span id %#x does not carry the shard's id base", sp.ID)
		}
		if sp.Trace == 0 || sp.Parent == 0 {
			t.Fatalf("handler span lost its propagated trace context: %+v", sp)
		}
	}
	if !sawHandler {
		t.Fatal("no handler spans in the stats window")
	}
	if len(st.Threads) == 0 {
		t.Fatal("no thread names in the stats ack")
	}

	// A bounded window really bounds: ask for one span, get at most one,
	// and the shard reports what fell off.
	st1, err := c.Stats(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st1.Spans) > 1 {
		t.Fatalf("MaxSpans=1 returned %d spans", len(st1.Spans))
	}

	// Client-side satellites of the same conversation: byte counters and
	// the heartbeat-estimated clock offset gauge.
	snap := c.cfg.Metrics.Snapshot()
	if snap.Counters["distps_rpc_bytes_in"] == 0 || snap.Counters["distps_rpc_bytes_out"] == 0 {
		t.Fatalf("client byte counters empty: %v", snap.Counters)
	}
	if _, ok := snap.Gauges["distps_shard0_clock_offset_ns"]; !ok {
		t.Fatalf("clock offset gauge missing: %v", snap.Gauges)
	}
}

// TestClusterStatsKeepsDeadShardVisible: the merged view must degrade, not
// disappear, when a shard dies — the dead shard appears with Err set while
// the live one still reports metrics.
func TestClusterStatsKeepsDeadShardVisible(t *testing.T) {
	sc := testScenario()
	shards, c := tracedShards(t, sc, 2)
	ctx := context.Background()
	if _, err := c.HelloAll(ctx); err != nil {
		t.Fatal(err)
	}
	shards[1].Close()

	reg, tr := obs.NewRegistry(), obs.NewTracer(nil)
	view := ClusterStats(ctx, c, reg, tr)
	if len(view.Shards) != 2 {
		t.Fatalf("view has %d shards, want 2", len(view.Shards))
	}
	if view.Shards[0].Err != "" {
		t.Fatalf("live shard reports error: %q", view.Shards[0].Err)
	}
	if view.Shards[0].Metrics.Histograms["distps_srv_hello_ns"].Count == 0 {
		t.Fatal("live shard's metrics missing from the view")
	}
	if view.Shards[1].Err == "" {
		t.Fatal("dead shard must appear with Err set, not silently vanish")
	}
}

// TestClusterTraceFromLiveRun drives a real distributed training run and
// then asserts the acceptance-shaped property end to end: the merged
// cluster trace contains a worker-side gather span and a shard-side
// handle:gather span sharing a trace id, linked parent→child, with a flow
// event pair drawn between them.
func TestClusterTraceFromLiveRun(t *testing.T) {
	sc := testScenario()
	const steps, batch = 10, 16
	_, addrs := startShards(t, sc, 2, func(cfg *ShardConfig) {
		cfg.Trace = obs.NewTracer(nil)
		cfg.Trace.SetSpanIDBase(uint64(cfg.ID+1) << 48)
	})
	src := testDataset(t, sc)

	wcfg := testWorkerConfig(sc, 1, addrs)
	w, err := NewWorker(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	if _, err := w.Run(context.Background(), src, steps, batch); err != nil {
		t.Fatalf("Run: %v", err)
	}

	var buf bytes.Buffer
	epoch := wcfg.Trace.Epoch().UnixNano()
	if err := WriteClusterTrace(context.Background(), &buf, w.Client(), wcfg.Trace, epoch); err != nil {
		t.Fatalf("WriteClusterTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			ID   uint64         `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}

	// Index worker gather spans by span id, then find a shard handler span
	// whose parent is one of them with a matching trace id.
	workerGather := map[string]string{} // span id -> trace id (hex strings from Args)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.PID == 1 && ev.Name == "gather" {
			span, _ := ev.Args["span"].(string)
			trace, _ := ev.Args["trace"].(string)
			workerGather[span] = trace
		}
	}
	if len(workerGather) == 0 {
		t.Fatal("merged trace has no worker-side gather spans")
	}
	linked := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.PID < 2 || ev.Name != "handle:gather" {
			continue
		}
		parent, _ := ev.Args["parent"].(string)
		trace, _ := ev.Args["trace"].(string)
		if wantTrace, ok := workerGather[parent]; ok && wantTrace == trace {
			linked = true
			break
		}
	}
	if !linked {
		t.Fatal("no shard handle:gather span is parent-linked to a worker gather span with a shared trace id")
	}

	flows := map[uint64]int{} // flow id -> bitmask: 1 = start seen, 2 = finish seen
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s":
			flows[ev.ID] |= 1
		case "f":
			flows[ev.ID] |= 2
		}
	}
	paired := 0
	for _, mask := range flows {
		if mask == 3 {
			paired++
		}
	}
	if paired == 0 {
		t.Fatal("no paired s/f flow events in the merged trace")
	}
}

// TestClusterAndHealthHandlers checks the HTTP surface: /cluster serves
// the merged JSON view, /healthz answers 200, and /readyz reflects
// worker/shard readiness with 200 vs 503.
func TestClusterAndHealthHandlers(t *testing.T) {
	sc := testScenario()
	shards, _ := tracedShards(t, sc, 1)

	// Shard side: a fresh (first-boot) shard is restored → ready.
	sh := ShardHandlers(shards[0])
	for path, wantCode := range map[string]int{"/healthz": 200, "/readyz": 200} {
		rec := httptest.NewRecorder()
		sh[path](rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != wantCode {
			t.Fatalf("shard %s = %d, want %d", path, rec.Code, wantCode)
		}
	}
	// Drain the shard: /readyz must flip to 503 while /healthz stays 200.
	shards[0].Close()
	rec := httptest.NewRecorder()
	sh["/readyz"](rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("closed shard /readyz = %d, want 503", rec.Code)
	}

	// Worker side: boot a fresh shard set and a real worker, but don't run
	// it — /readyz is 503 outside Train, /cluster still serves a full view.
	_, addrs := startShards(t, sc, 2, func(cfg *ShardConfig) {
		cfg.Trace = obs.NewTracer(nil)
		cfg.Trace.SetSpanIDBase(uint64(cfg.ID+1) << 48)
	})
	wcfg := testWorkerConfig(sc, 2, addrs)
	w, err := NewWorker(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })

	wh := ClusterHandlers(w, wcfg.Metrics, wcfg.Trace, time.Second)
	rec = httptest.NewRecorder()
	wh["/healthz"](rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("worker /healthz = %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	wh["/readyz"](rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("idle worker /readyz = %d, want 503", rec.Code)
	}

	rec = httptest.NewRecorder()
	wh["/cluster"](rec, httptest.NewRequest("GET", "/cluster", nil))
	if rec.Code != 200 {
		t.Fatalf("/cluster = %d, want 200", rec.Code)
	}
	var view ClusterView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatalf("/cluster body is not a ClusterView: %v", err)
	}
	if len(view.Shards) != 2 {
		t.Fatalf("/cluster reports %d shards, want 2", len(view.Shards))
	}
	for _, sv := range view.Shards {
		if sv.Err != "" {
			t.Fatalf("shard %d unreachable through /cluster: %s", sv.Shard, sv.Err)
		}
	}

	rec = httptest.NewRecorder()
	wh["/cluster/trace"](rec, httptest.NewRequest("GET", "/cluster/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("/cluster/trace = %d, want 200", rec.Code)
	}
	var tdoc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tdoc); err != nil {
		t.Fatalf("/cluster/trace body is not a trace document: %v", err)
	}
}
