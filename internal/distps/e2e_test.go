package distps

import (
	"bufio"
	"context"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/ps"
	"repro/internal/tensor"
)

// referencePipeline is the single-process run every distributed test is
// compared against: same Scenario, host tables in local memory.
func referencePipeline(t *testing.T, sc Scenario) *ps.Pipeline {
	t.Helper()
	locs, err := sc.ReferenceLocs()
	if err != nil {
		t.Fatal(err)
	}
	p, err := ps.NewPipeline(sc.PipelineConfig(), locs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// referenceHash fingerprints a local-memory pipeline.
func referenceHash(t *testing.T, sc Scenario, p *ps.Pipeline) uint64 {
	t.Helper()
	specs := sc.HostSpecs()
	values := make([]*tensor.Matrix, len(specs))
	for h := range specs {
		values[h] = p.HostBag(h).Weights
	}
	h, err := HashState(p, specs, values)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// distributedHash fingerprints a remote-store pipeline by gathering every
// host row back from the shards through c.
func distributedHash(t *testing.T, sc Scenario, p *ps.Pipeline, c *Client) uint64 {
	t.Helper()
	specs := sc.HostSpecs()
	values := make([]*tensor.Matrix, len(specs))
	for h, spec := range specs {
		m, err := GatherFullTable(c.Store(context.Background(), spec), spec)
		if err != nil {
			t.Fatalf("gather table %d: %v", spec.Index, err)
		}
		values[h] = m
	}
	h, err := HashState(p, specs, values)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func testDataset(t *testing.T, sc Scenario) *data.Dataset {
	t.Helper()
	d, err := data.New(sc.Spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// bootShard starts one shard on addr ("127.0.0.1:0" for the first boot, the
// recorded address for a restart) and returns it with its resolved address.
func bootShard(t *testing.T, sc Scenario, id, n int, dir, addr string) (*Shard, string) {
	t.Helper()
	cfg := sc.ShardConfig(id, n, dir)
	cfg.DrainTimeout = 50 * time.Millisecond
	cfg.Metrics = obs.NewRegistry()
	// Tracing rides along on every e2e scenario: the bit-exactness
	// assertions double as proof that telemetry never perturbs training.
	cfg.Trace = obs.NewTracer(nil)
	cfg.Trace.SetSpanIDBase(uint64(id+1) << 48)
	s, err := NewShard(cfg)
	if err != nil {
		t.Fatalf("NewShard(%d): %v", id, err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %q: %v", addr, err)
	}
	serveShard(s, ln)
	return s, ln.Addr().String()
}

func instantSleep(time.Duration) {}

func testWorkerConfig(sc Scenario, id uint64, shards []string) WorkerConfig {
	return WorkerConfig{
		ID: id, Shards: shards, Scenario: sc,
		LeaseTTL:    time.Second,
		RPCTimeout:  2 * time.Second,
		StandbyPoll: 5 * time.Millisecond,
		Retry:       fastBackoff(),
		PipelineRetry: ps.RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond,
			MaxDelay: 2 * time.Millisecond, Sleep: instantSleep},
		Sleep:   instantSleep,
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTracer(nil),
	}
}

// TestDistributedMatchesReference is the fault-free baseline: one worker,
// two shards, and the final parameters must be bit-identical to the
// single-process pipeline (same scenario, host tables in local memory).
func TestDistributedMatchesReference(t *testing.T) {
	sc := testScenario()
	const steps, batch = 30, 16
	_, addrs := startShards(t, sc, 2, nil)
	src := testDataset(t, sc)

	w, err := NewWorker(testWorkerConfig(sc, 1, addrs))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	res, err := w.Run(context.Background(), src, steps, batch)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != steps || res.Recoveries != 0 {
		t.Fatalf("completed %d steps with %d recoveries, want %d and 0", res.Completed, res.Recoveries, steps)
	}

	ref := referencePipeline(t, sc)
	rres, err := ref.Train(context.Background(), src, 0, steps, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range rres.Curve.Losses {
		if res.Curve.Losses[i] != l {
			t.Fatalf("loss diverges at step %d: %v vs %v", i, res.Curve.Losses[i], l)
		}
	}
	if got, want := distributedHash(t, sc, w.Pipeline(), w.Client()), referenceHash(t, sc, ref); got != want {
		t.Fatalf("final parameters diverge: distributed %016x, reference %016x", got, want)
	}
}

// TestShardKillRecoverySameWorker kills and restarts shard 1 right after
// the coordinated checkpoint commits version 20 (the exact point
// AfterCheckpoint pins). The restarted shard refuses traffic until
// restored, so the worker's next gather fails; the recovery loop
// re-acquires the lease, rolls every shard back to version 20, and resumes
// — with a final state bit-identical to a run that never crashed.
func TestShardKillRecoverySameWorker(t *testing.T) {
	sc := testScenario()
	const steps, batch, every = 40, 16, 20
	dirs := []string{t.TempDir(), t.TempDir()}
	var mu sync.Mutex
	shards := make([]*Shard, 2)
	addrs := make([]string, 2)
	for i := range shards {
		shards[i], addrs[i] = bootShard(t, sc, i, 2, dirs[i], "127.0.0.1:0")
	}
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range shards {
			s.Close()
		}
	})

	cfg := testWorkerConfig(sc, 1, addrs)
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "worker.ckpt")
	cfg.CheckpointEvery = every
	killed := false
	cfg.AfterCheckpoint = func(v int64) {
		if v != every || killed {
			return
		}
		killed = true
		mu.Lock()
		defer mu.Unlock()
		shards[1].Close()
		shards[1], _ = bootShard(t, sc, 1, 2, dirs[1], addrs[1])
	}
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })

	src := testDataset(t, sc)
	res, err := w.Run(context.Background(), src, steps, batch)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !killed {
		t.Fatal("AfterCheckpoint hook never fired; no shard was killed")
	}
	if res.Recoveries == 0 {
		t.Fatal("worker finished without a recovery despite the shard kill")
	}
	if res.NextIter != steps {
		t.Fatalf("NextIter = %d, want %d", res.NextIter, steps)
	}

	ref := referencePipeline(t, sc)
	if _, err := ref.Train(context.Background(), src, 0, steps, batch); err != nil {
		t.Fatal(err)
	}
	if got, want := distributedHash(t, sc, w.Pipeline(), w.Client()), referenceHash(t, sc, ref); got != want {
		t.Fatalf("final parameters diverge after recovery: %016x vs %016x", got, want)
	}
}

// TestKillAndRejoinTwoWorkers is the acceptance scenario: two shards (one
// behind a fault proxy that drops frames), worker A trains to the version-40
// coordinated checkpoint, then shard 1 is killed and restarted and A itself
// dies (context cancelled). Worker B — a different identity sharing only
// the checkpoint file — waits out A's lease, fences A's epoch, rolls the
// cluster back to version 40 (rejoining the restarted shard), and finishes
// the run. The final parameters must be bit-identical to a single-process
// run that saw no proxy, no kill, and no handover.
func TestKillAndRejoinTwoWorkers(t *testing.T) {
	sc := testScenario()
	const steps, batch, every = 60, 16, 20
	dirs := []string{t.TempDir(), t.TempDir()}
	var mu sync.Mutex
	shards := make([]*Shard, 2)
	addrs := make([]string, 2)
	for i := range shards {
		shards[i], addrs[i] = bootShard(t, sc, i, 2, dirs[i], "127.0.0.1:0")
	}
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range shards {
			s.Close()
		}
	})

	// Shard 1 sits behind a deterministic fault proxy that drops a few
	// whole frames (requests or responses); the budget keeps the run
	// finite, and idempotent retries must absorb every drop.
	proxy, err := faults.NewProxy(addrs[1],
		func(r *bufio.Reader) ([]byte, error) { return ReadRawFrame(r) },
		faults.ProxyConfig{Seed: 42, DropProb: 0.02, MaxFaults: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	workerAddrs := []string{addrs[0], proxy.Addr()}

	ckpt := filepath.Join(t.TempDir(), "worker.ckpt")
	newCfg := func(id uint64) WorkerConfig {
		cfg := testWorkerConfig(sc, id, workerAddrs)
		cfg.CheckpointPath = ckpt
		cfg.CheckpointEvery = every
		cfg.LeaseTTL = 150 * time.Millisecond
		cfg.RPCTimeout = 500 * time.Millisecond
		cfg.Sleep = nil // standby polling must follow the real lease clock
		return cfg
	}

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	cfgA := newCfg(1)
	killed := false
	cfgA.AfterCheckpoint = func(v int64) {
		if v != 2*every || killed {
			return
		}
		killed = true
		mu.Lock()
		shards[1].Close()
		shards[1], _ = bootShard(t, sc, 1, 2, dirs[1], addrs[1])
		mu.Unlock()
		cancelA() // A dies with the shard commit done but the run unfinished
	}
	a, err := NewWorker(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	src := testDataset(t, sc)
	if _, err := a.Run(ctxA, src, steps, batch); err == nil {
		t.Fatal("worker A finished the whole run; it was supposed to die at version 40")
	}
	if !killed {
		t.Fatal("worker A never reached the version-40 checkpoint")
	}

	b, err := NewWorker(newCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	res, err := b.Run(context.Background(), src, steps, batch)
	if err != nil {
		t.Fatalf("worker B: %v", err)
	}
	if res.NextIter != steps {
		t.Fatalf("worker B NextIter = %d, want %d", res.NextIter, steps)
	}
	if res.Completed > steps-2*every {
		t.Fatalf("worker B trained %d steps; the version-40 checkpoint should leave at most %d", res.Completed, steps-2*every)
	}

	ref := referencePipeline(t, sc)
	if _, err := ref.Train(context.Background(), src, 0, steps, batch); err != nil {
		t.Fatal(err)
	}
	got := distributedHash(t, sc, b.Pipeline(), b.Client())
	want := referenceHash(t, sc, ref)
	if got != want {
		t.Fatalf("handover run diverges from reference: %016x vs %016x", got, want)
	}
	if proxy.Schedule().Injected() == 0 {
		t.Fatal("fault proxy injected nothing; the drop schedule never fired")
	}
}
