package distps

import (
	"errors"
	"reflect"
	"testing"
)

// codecs lists every message with a non-trivial payload, its encoder and a
// type-erased decoder, so round-trip and truncation checks cover the whole
// wire surface from one table.
func codecs() []struct {
	name   string
	msg    any
	bytes  []byte
	decode func([]byte) (any, error)
} {
	wrap := func(name string, m any, b []byte, d func([]byte) (any, error)) struct {
		name   string
		msg    any
		bytes  []byte
		decode func([]byte) (any, error)
	} {
		return struct {
			name   string
			msg    any
			bytes  []byte
			decode func([]byte) (any, error)
		}{name, m, b, d}
	}
	hello := helloMsg{WorkerID: 7, Epoch: 3, Seed: 99, Dim: 8,
		Tables: []TableSpec{{Index: 0, Rows: 96}, {Index: 2, Rows: 64}}}
	hAck := helloAck{ShardID: 1, NumShards: 2, Version: 40, Restored: true, Epoch: 5}
	gather := gatherMsg{Table: 2, Rows: []int{5, 1, 63}}
	rows := rowsMsg{Dim: 2, Values: []float32{1.5, -2.25, 0, 3e7}}
	push := pushMsg{Epoch: 4, Seq: 19, Table: 1, Rows: []int{0, 9}, Dim: 2, Delta: []float32{0.5, -1, 2, -4}}
	pAck := pushAck{Applied: true}
	ver := versionMsg{Epoch: 4, Version: -60}
	vAck := versionAck{Version: 60}
	hb := heartbeatMsg{WorkerID: 12}
	hbAck := heartbeatAck{Version: 20, Restored: true, Draining: true, Epoch: 9}
	lease := leaseMsg{WorkerID: 12, Renew: true, Epoch: 9, TTLMS: 3000}
	lAck := leaseAck{Epoch: 10}
	em := errMsg{Code: codeFenced, Msg: "stale epoch"}
	return []struct {
		name   string
		msg    any
		bytes  []byte
		decode func([]byte) (any, error)
	}{
		wrap("hello", hello, hello.encode(), func(b []byte) (any, error) { return decodeHello(b) }),
		wrap("helloAck", hAck, hAck.encode(), func(b []byte) (any, error) { return decodeHelloAck(b) }),
		wrap("gather", gather, gather.encode(), func(b []byte) (any, error) { return decodeGather(b) }),
		wrap("rows", rows, rows.encode(), func(b []byte) (any, error) { return decodeRows(b) }),
		wrap("push", push, push.encode(), func(b []byte) (any, error) { return decodePush(b) }),
		wrap("pushAck", pAck, pAck.encode(), func(b []byte) (any, error) { return decodePushAck(b) }),
		wrap("version", ver, ver.encode(), func(b []byte) (any, error) { return decodeVersion(b) }),
		wrap("versionAck", vAck, vAck.encode(), func(b []byte) (any, error) { return decodeVersionAck(b) }),
		wrap("heartbeat", hb, hb.encode(), func(b []byte) (any, error) { return decodeHeartbeat(b) }),
		wrap("heartbeatAck", hbAck, hbAck.encode(), func(b []byte) (any, error) { return decodeHeartbeatAck(b) }),
		wrap("lease", lease, lease.encode(), func(b []byte) (any, error) { return decodeLease(b) }),
		wrap("leaseAck", lAck, lAck.encode(), func(b []byte) (any, error) { return decodeLeaseAck(b) }),
		wrap("err", em, em.encode(), func(b []byte) (any, error) { return decodeErr(b) }),
	}
}

func TestMessageRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		got, err := c.decode(c.bytes)
		if err != nil {
			t.Errorf("%s: decode: %v", c.name, err)
			continue
		}
		if !reflect.DeepEqual(got, c.msg) {
			t.Errorf("%s: round trip: got %+v, want %+v", c.name, got, c.msg)
		}
	}
}

// TestMessageTruncation cuts every payload at every byte boundary: a strict
// prefix must never decode successfully (the layouts carry explicit counts,
// so any cut lands mid-record), and appended garbage must be rejected too.
func TestMessageTruncation(t *testing.T) {
	for _, c := range codecs() {
		for cut := 0; cut < len(c.bytes); cut++ {
			if _, err := c.decode(c.bytes[:cut]); !errors.Is(err, ErrBadFrame) {
				t.Errorf("%s cut at %d/%d: err = %v, want ErrBadFrame", c.name, cut, len(c.bytes), err)
			}
		}
		padded := append(append([]byte(nil), c.bytes...), 0xAA)
		if _, err := c.decode(padded); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s with trailing byte: err = %v, want ErrBadFrame", c.name, err)
		}
	}
}

func TestErrorCodeMapping(t *testing.T) {
	sentinels := []error{ErrFenced, ErrLeaseHeld, ErrNotRestored, ErrNoCheckpoint,
		ErrSpecMismatch, ErrDraining, ErrBadRequest, ErrInternal}
	for _, want := range sentinels {
		code := codeFor(want)
		if got := sentinelFor(code); !errors.Is(got, want) {
			t.Errorf("sentinel %v → code %d → %v", want, code, got)
		}
	}
	// Wrapped errors keep their code; unknown errors degrade to internal.
	if codeFor(errors.Join(ErrFenced, errors.New("ctx"))) != codeFenced {
		t.Error("wrapped ErrFenced lost its code")
	}
	if codeFor(errors.New("mystery")) != codeInternal {
		t.Error("unknown error should map to codeInternal")
	}
	if !errors.Is(sentinelFor(200), ErrInternal) {
		t.Error("unknown code should map to ErrInternal")
	}
}

func TestDecodeRejectsInsaneCounts(t *testing.T) {
	var e enc
	e.u32(uint32(2))       // table
	e.u32(uint32(1 << 30)) // row count far beyond sanityCap
	if _, err := decodeGather(e.buf); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("insane count: err = %v, want ErrBadFrame", err)
	}
}
