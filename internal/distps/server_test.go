package distps

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/embedding"
	"repro/internal/obs"
	"repro/internal/tensor"
)

func testSpec() data.Spec {
	return data.Spec{
		Name: "distps-test", NumDense: 3, TableRows: []int{96, 64, 256},
		ZipfS: 1.2, ZipfV: 2, GroupSize: 16, ActiveGroups: 4, Locality: 0.8,
		Samples: 1 << 20, Seed: 33,
	}
}

// testScenario places tables 0 and 1 (96 and 64 rows) on the parameter
// server and TT-compresses table 2 (256 rows ≥ threshold 200) on the device.
func testScenario() Scenario {
	return Scenario{
		Spec: testSpec(),
		Model: dlrm.Config{
			NumDense: 3, EmbDim: 8, BottomSizes: []int{12}, TopSizes: []int{12},
			LR: 0.5, Seed: 9,
		},
		Rank: 4, TTThreshold: 200, Seed: 33, QueueDepth: 4,
	}
}

// startShards boots n shards of sc on loopback listeners, returning the
// live shards and their addresses. mutate (optional) adjusts each config
// before boot. Shards are closed via t.Cleanup.
func startShards(t *testing.T, sc Scenario, n int, mutate func(*ShardConfig)) ([]*Shard, []string) {
	t.Helper()
	shards := make([]*Shard, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := sc.ShardConfig(i, n, t.TempDir())
		cfg.DrainTimeout = 50 * time.Millisecond
		cfg.Metrics = obs.NewRegistry()
		if mutate != nil {
			mutate(&cfg)
		}
		s, err := NewShard(cfg)
		if err != nil {
			t.Fatalf("NewShard(%d): %v", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveShard(s, ln)
		t.Cleanup(func() { s.Close() })
		shards[i] = s
		addrs[i] = ln.Addr().String()
	}
	return shards, addrs
}

// serveShard runs the accept loop on its own goroutine.
func serveShard(s *Shard, ln net.Listener) {
	spawn(func() { s.Serve(ln) })
}

// fastBackoff retries aggressively with instant sleeps so fault tests
// finish in milliseconds.
func fastBackoff() Backoff {
	return Backoff{MaxRetries: 6, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
		Sleep: func(time.Duration) {}}
}

func newTestClient(t *testing.T, sc Scenario, addrs []string, workerID uint64) *Client {
	t.Helper()
	cfg := sc.ClientConfig(workerID, addrs)
	cfg.Timeout = 2 * time.Second
	cfg.Retry = fastBackoff()
	cfg.Metrics = obs.NewRegistry()
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// referenceBag rebuilds host table spec's full init-time contents the way
// the single-process pipeline does.
func referenceBag(sc Scenario, spec TableSpec) *embedding.Bag {
	return embedding.NewBag(spec.Rows, sc.Model.EmbDim, tensor.NewRNG(sc.Seed+uint64(spec.Index)*104729))
}

func TestShardPartitionsEveryRowExactlyOnce(t *testing.T) {
	sc := testScenario()
	shards, _ := startShards(t, sc, 3, nil)
	for _, spec := range sc.HostSpecs() {
		total := 0
		for _, s := range shards {
			total += s.OwnedRows(spec.Index)
		}
		if total != spec.Rows {
			t.Errorf("table %d: shards own %d rows in total, want %d", spec.Index, total, spec.Rows)
		}
	}
}

func TestGatherMatchesReferenceInit(t *testing.T) {
	sc := testScenario()
	_, addrs := startShards(t, sc, 2, nil)
	c := newTestClient(t, sc, addrs, 1)
	if _, err := c.HelloAll(context.Background()); err != nil {
		t.Fatalf("HelloAll: %v", err)
	}
	for _, spec := range sc.HostSpecs() {
		got, err := GatherFullTable(c.Store(context.Background(), spec), spec)
		if err != nil {
			t.Fatalf("gather table %d: %v", spec.Index, err)
		}
		want := referenceBag(sc, spec).Weights
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("table %d shape: got %dx%d, want %dx%d", spec.Index, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("table %d value %d: shard init %v, reference %v", spec.Index, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestPushApplyAndDedup(t *testing.T) {
	sc := testScenario()
	shards, addrs := startShards(t, sc, 2, nil)
	c := newTestClient(t, sc, addrs, 1)
	if _, err := c.AcquireLease(context.Background()); err != nil {
		t.Fatalf("AcquireLease: %v", err)
	}
	spec := sc.HostSpecs()[0]
	store := c.Store(context.Background(), spec)
	rows := []int{0, 5, 17}
	before, err := store.GatherRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	delta := tensor.New(len(rows), sc.Model.EmbDim)
	for i := range delta.Data {
		delta.Data[i] = float32(i) * 0.25
	}
	if err := store.ApplyDelta(rows, delta); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	after, err := store.GatherRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range after.Data {
		if want := before.Data[i] + delta.Data[i]; after.Data[i] != want {
			t.Fatalf("value %d after push: %v, want %v", i, after.Data[i], want)
		}
	}

	// A byte-identical replay of an already-applied push (a transport retry)
	// must ack without reapplying.
	shard := c.ring.Owner(spec.Index, rows[0])
	seq := c.nextSeq()
	one := make([]float32, sc.Model.EmbDim)
	for j := range one {
		one[j] = 1
	}
	if err := c.Push(context.Background(), shard, seq, spec.Index, rows[:1], one); err != nil {
		t.Fatalf("push: %v", err)
	}
	applied, err := store.GatherRows(rows[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Push(context.Background(), shard, seq, spec.Index, rows[:1], one); err != nil {
		t.Fatalf("replayed push: %v", err)
	}
	replayed, err := store.GatherRows(rows[:1])
	if err != nil {
		t.Fatal(err)
	}
	for j := range replayed.Row(0) {
		if replayed.Row(0)[j] != applied.Row(0)[j] {
			t.Fatalf("dedup failed: row changed on replayed seq %d", seq)
		}
	}
	deduped := int64(0)
	for _, s := range shards {
		deduped += s.m.pushesDeduped.Value()
	}
	if deduped == 0 {
		t.Fatal("no push was deduplicated")
	}
}

func TestLeaseFencingRejectsStaleWorker(t *testing.T) {
	sc := testScenario()
	_, addrs := startShards(t, sc, 2, func(cfg *ShardConfig) {
		cfg.LeaseTTL = 50 * time.Millisecond
	})
	a := newTestClient(t, sc, addrs, 1)
	b := newTestClient(t, sc, addrs, 2)
	if _, err := a.AcquireLease(context.Background()); err != nil {
		t.Fatalf("A acquire: %v", err)
	}
	// While A's lease is live, B cannot take it.
	if _, err := b.AcquireLease(context.Background()); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("B acquire under A's lease: %v, want ErrLeaseHeld", err)
	}
	// After the TTL lapses B takes over with a higher epoch...
	time.Sleep(80 * time.Millisecond)
	epochB, err := b.AcquireLease(context.Background())
	if err != nil {
		t.Fatalf("B acquire after expiry: %v", err)
	}
	if epochB <= 0 || epochB <= a.Epoch() {
		t.Fatalf("B epoch %d does not out-fence A epoch %d", epochB, a.Epoch())
	}
	// HelloAll propagates the new epoch to every shard (what worker.Run does
	// right after acquiring); from then on A's traffic is fenced everywhere.
	if _, err := b.HelloAll(context.Background()); err != nil {
		t.Fatalf("B HelloAll: %v", err)
	}
	// ...and A's traffic is fenced everywhere once a shard learns of B: a
	// push with A's stale epoch is rejected, not applied.
	spec := sc.HostSpecs()[0]
	delta := tensor.New(1, sc.Model.EmbDim)
	if err := c0Push(a, spec, delta); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale push: %v, want ErrFenced", err)
	}
	// A's renewal fails too — it no longer holds the lease.
	if err := a.RenewLease(context.Background()); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("stale renew: %v, want ErrLeaseHeld", err)
	}
	// B, the rightful holder, still trains.
	if err := c0Push(b, spec, delta); err != nil {
		t.Fatalf("B push: %v", err)
	}
}

// c0Push pushes a one-row delta to row 0's owner through client c.
func c0Push(c *Client, spec TableSpec, delta *tensor.Matrix) error {
	shard := c.ring.Owner(spec.Index, 0)
	return c.Push(context.Background(), shard, c.nextSeq(), spec.Index, []int{0}, delta.Row(0))
}

func TestCheckpointRestoreRollsBack(t *testing.T) {
	sc := testScenario()
	_, addrs := startShards(t, sc, 2, nil)
	c := newTestClient(t, sc, addrs, 1)
	if _, err := c.AcquireLease(context.Background()); err != nil {
		t.Fatal(err)
	}
	spec := sc.HostSpecs()[0]
	store := c.Store(context.Background(), spec)
	rows := []int{3, 40}
	delta := tensor.New(len(rows), sc.Model.EmbDim)
	for i := range delta.Data {
		delta.Data[i] = 1
	}
	if err := store.ApplyDelta(rows, delta); err != nil {
		t.Fatal(err)
	}
	atCheckpoint, err := store.GatherRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckpointAll(context.Background(), 7); err != nil {
		t.Fatalf("CheckpointAll: %v", err)
	}
	if err := store.ApplyDelta(rows, delta); err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreAll(context.Background(), 7); err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	got, err := store.GatherRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if got.Data[i] != atCheckpoint.Data[i] {
			t.Fatalf("value %d after restore: %v, want checkpoint value %v", i, got.Data[i], atCheckpoint.Data[i])
		}
	}
	// Restoring a version nobody checkpointed is a typed failure.
	if err := c.RestoreAll(context.Background(), 99); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("RestoreAll(99): %v, want ErrNoCheckpoint", err)
	}
}

func TestRestartedShardRequiresRestore(t *testing.T) {
	sc := testScenario()
	dir := t.TempDir()
	cfg := sc.ShardConfig(0, 1, dir)
	cfg.DrainTimeout = 50 * time.Millisecond
	s1, err := NewShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Restored() {
		t.Fatal("a fresh shard must serve immediately (it wrote durable v0)")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveShard(s1, ln)
	addr := ln.Addr().String()

	c := newTestClient(t, sc, []string{addr}, 1)
	if _, err := c.AcquireLease(context.Background()); err != nil {
		t.Fatal(err)
	}
	spec := sc.HostSpecs()[0]
	store := c.Store(context.Background(), spec)
	delta := tensor.New(1, sc.Model.EmbDim)
	delta.Data[0] = 42
	if err := store.ApplyDelta([]int{0}, delta); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckpointAll(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	want, err := store.GatherRows([]int{0})
	if err != nil {
		t.Fatal(err)
	}

	// Kill and restart on the same address and directory.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := NewShard(cfg)
	if err != nil {
		t.Fatalf("restarting shard: %v", err)
	}
	t.Cleanup(func() { s2.Close() })
	if s2.Restored() {
		t.Fatal("a restarted shard must refuse data RPCs until restored")
	}
	if v := s2.Version(); v != 5 {
		t.Fatalf("restarted shard sees latest durable version %d, want 5", v)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	serveShard(s2, ln2)

	if _, err := store.GatherRows([]int{0}); !errors.Is(err, ErrNotRestored) {
		t.Fatalf("gather before restore: %v, want ErrNotRestored", err)
	}
	if err := c.RestoreAll(context.Background(), 5); err != nil {
		t.Fatalf("RestoreAll after restart: %v", err)
	}
	got, err := store.GatherRows([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("restored value %d: %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
	// The fencing watermark survived the restart via the epoch file.
	if s2.MaxEpoch() == 0 {
		t.Fatal("restarted shard forgot the fencing epoch")
	}
}

func TestHelloRejectsSpecMismatch(t *testing.T) {
	sc := testScenario()
	_, addrs := startShards(t, sc, 1, nil)
	bad := sc
	bad.Model.EmbDim = 16 // worker disagrees about the embedding dimension
	c := newTestClient(t, bad, addrs, 1)
	if _, err := c.HelloAll(context.Background()); !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("HelloAll with wrong dim: %v, want ErrSpecMismatch", err)
	}
}

func TestHeartbeatReportsLiveness(t *testing.T) {
	sc := testScenario()
	shards, addrs := startShards(t, sc, 1, nil)
	c := newTestClient(t, sc, addrs, 1)
	st, err := c.Heartbeat(context.Background(), 0)
	if err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if !st.Restored || st.Draining {
		t.Fatalf("heartbeat status %+v, want restored and not draining", st)
	}
	shards[0].Close()
	if _, err := c.Heartbeat(context.Background(), 0); err == nil {
		t.Fatal("heartbeat to a dead shard must fail")
	}
}

func TestDeadShardExhaustsRetries(t *testing.T) {
	sc := testScenario()
	// A listener that is closed immediately: every dial is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	c := newTestClient(t, sc, []string{addr}, 1)
	if _, err := c.HelloAll(context.Background()); !errors.Is(err, ErrRPCFailed) {
		t.Fatalf("HelloAll against a dead shard: %v, want ErrRPCFailed", err)
	}
	if got := c.m.retries.Value(); got != int64(fastBackoff().MaxRetries) {
		t.Fatalf("retry counter = %d, want %d", got, fastBackoff().MaxRetries)
	}
}

func TestShardRejectsForeignRows(t *testing.T) {
	sc := testScenario()
	shards, addrs := startShards(t, sc, 2, nil)
	c := newTestClient(t, sc, addrs, 1)
	if _, err := c.AcquireLease(context.Background()); err != nil {
		t.Fatal(err)
	}
	spec := sc.HostSpecs()[0]
	// Find a row shard 0 does not own and ask it anyway.
	foreign := -1
	for r := 0; r < spec.Rows; r++ {
		if c.ring.Owner(spec.Index, r) != 0 {
			foreign = r
			break
		}
	}
	if foreign < 0 {
		t.Skip("shard 0 owns every row at this seed")
	}
	if _, err := c.Gather(context.Background(), 0, spec.Index, []int{foreign}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("foreign gather: %v, want ErrBadRequest", err)
	}
	_ = shards
}

func TestBackoffDelayCaps(t *testing.T) {
	b := Backoff{MaxRetries: 10, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
	want := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond,
		250 * time.Millisecond, 250 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
	// Far-out attempts (including shift overflow territory) stay capped.
	for _, attempt := range []int{29, 31, 63, 1 << 20} {
		if got := b.Delay(attempt); got != b.MaxDelay {
			t.Errorf("Delay(%d) = %v, want cap %v", attempt, got, b.MaxDelay)
		}
	}
}

// TestRetryBackoffSequenceDeterministic records the exact waits of an
// exhausted retry loop through the Sleep hook.
func TestRetryBackoffSequenceDeterministic(t *testing.T) {
	sc := testScenario()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var slept []time.Duration
	cfg := sc.ClientConfig(1, []string{addr})
	cfg.Timeout = time.Second
	cfg.Retry = Backoff{MaxRetries: 5, BaseDelay: 2 * time.Millisecond, MaxDelay: 8 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.HelloAll(context.Background()); !errors.Is(err, ErrRPCFailed) {
		t.Fatalf("HelloAll: %v, want ErrRPCFailed", err)
	}
	want := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond}
	if fmt.Sprint(slept) != fmt.Sprint(want) {
		t.Fatalf("backoff sequence %v, want %v", slept, want)
	}
}
