package distps

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ps"
)

// WorkerConfig configures a trainer worker.
type WorkerConfig struct {
	// ID identifies this worker to the lease authority; must be nonzero
	// (zero is the "no holder" value).
	ID       uint64
	Shards   []string
	Scenario Scenario

	// CheckpointPath/CheckpointEvery enable coordinated checkpoints: every
	// Every iterations the shards commit the version first, then the local
	// file is written (the commit point).
	CheckpointPath  string
	CheckpointEvery int

	LeaseTTL       time.Duration // trainer lease duration (0: shard default)
	RenewEvery     time.Duration // lease renewal period (0: LeaseTTL/3, min 10ms)
	HeartbeatEvery time.Duration // shard liveness probes (0: disabled)
	StandbyPoll    time.Duration // wait between lease attempts (0: 100ms)

	RPCTimeout    time.Duration
	Retry         Backoff        // transport retries
	PipelineRetry ps.RetryPolicy // pipeline-level gather/apply retries

	// MaxRecoveries bounds consecutive failed recovery rounds before Run
	// gives up (0: 8). Waiting for the trainer lease does not count — a
	// standby worker blocks on the lease indefinitely by design.
	MaxRecoveries int

	// Sleep overrides recovery/standby waits (tests make them instant).
	Sleep func(time.Duration)

	Clock   obs.Clock
	Metrics *obs.Registry
	Trace   *obs.Tracer
	Log     *obs.Logger

	// AfterCheckpoint, when set, runs on the training goroutine right after
	// the shards committed version v, before the worker's local file is
	// written. Fault tests use it to kill and restart shards at an exactly
	// reproducible point in the protocol.
	AfterCheckpoint func(version int64)
}

// RunResult summarizes a Run: the loss curve of the final training round,
// total completed iterations across rounds, and how many recoveries the
// run needed.
type RunResult struct {
	Curve      *metrics.LossCurve
	Completed  int
	NextIter   int
	Recoveries int
}

type workerMetrics struct {
	steps      *obs.Counter
	recoveries *obs.Counter
	active     *obs.Gauge
	epoch      *obs.Gauge
}

// Worker drives distributed training: it acquires the trainer lease,
// restores every shard to the last coordinated checkpoint, and runs the
// ps.Pipeline with the shard set as the host-table backing store. Any
// failure — a dead shard, a torn push, a lost lease — sends it through the
// recovery loop: re-acquire the lease (bumping the fencing epoch), rebuild
// the pipeline, roll every shard back to the checkpoint, resume. Because
// the checkpoint is a drain-point snapshot and pushes are deduplicated,
// the recovered run is bit-identical to one that never failed.
type Worker struct {
	cfg      WorkerConfig
	client   *Client
	pipeline *ps.Pipeline // latest built; read after Run returns (or from hooks on the Run goroutine)
	m        workerMetrics
	active   atomic.Bool // true while holding the lease and training
}

// Active reports whether the worker currently holds the trainer lease and
// is inside a training round; /readyz exposes it.
func (w *Worker) Active() bool { return w.active.Load() }

// NewWorker validates cfg and builds the (lazily connecting) client.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == 0 {
		return nil, fmt.Errorf("%w: worker id must be nonzero", ErrBadRequest)
	}
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("%w: no shard addresses", ErrBadRequest)
	}
	if len(cfg.Scenario.HostSpecs()) == 0 {
		return nil, fmt.Errorf("%w: scenario places no tables on the parameter server", ErrBadRequest)
	}
	if cfg.CheckpointEvery < 0 || (cfg.CheckpointEvery > 0 && cfg.CheckpointPath == "") {
		return nil, fmt.Errorf("%w: checkpoint interval %d without a path", ErrBadRequest, cfg.CheckpointEvery)
	}
	if cfg.MaxRecoveries <= 0 {
		cfg.MaxRecoveries = 8
	}
	if cfg.StandbyPoll <= 0 {
		cfg.StandbyPoll = 100 * time.Millisecond
	}
	ccfg := cfg.Scenario.ClientConfig(cfg.ID, cfg.Shards)
	ccfg.Timeout = cfg.RPCTimeout
	ccfg.LeaseTTL = cfg.LeaseTTL
	ccfg.Retry = cfg.Retry
	ccfg.Clock = cfg.Clock
	ccfg.Metrics = cfg.Metrics
	ccfg.Trace = cfg.Trace
	ccfg.Log = cfg.Log
	client, err := NewClient(ccfg)
	if err != nil {
		return nil, err
	}
	w := &Worker{cfg: cfg, client: client}
	r := cfg.Metrics
	w.m = workerMetrics{
		steps:      r.Counter("distps_worker_steps"),
		recoveries: r.Counter("distps_worker_recoveries"),
		active:     r.Gauge("distps_worker_active"),
		epoch:      r.Gauge("distps_worker_epoch"),
	}
	return w, nil
}

// Client exposes the shard-set client (observers, tests).
func (w *Worker) Client() *Client { return w.client }

// Pipeline returns the most recently built pipeline. Valid once Run has
// returned; the final parameters live here.
func (w *Worker) Pipeline() *ps.Pipeline { return w.pipeline }

// Close releases the client.
func (w *Worker) Close() error { return w.client.Close() }

func (w *Worker) sleep(d time.Duration) {
	if w.cfg.Sleep != nil {
		w.cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}

// buildPipeline assembles a fresh trainer wired to the shard set. Each
// recovery round builds a new one: caches, adapters and queue state from a
// torn round must not leak into the restored run.
func (w *Worker) buildPipeline(ctx context.Context) (*ps.Pipeline, error) {
	locs, err := w.cfg.Scenario.RemoteLocs(ctx, w.client)
	if err != nil {
		return nil, err
	}
	pcfg := w.cfg.Scenario.PipelineConfig()
	pcfg.Retry = w.cfg.PipelineRetry
	pcfg.Metrics = w.cfg.Metrics
	pcfg.Trace = w.cfg.Trace
	pcfg.Clock = w.cfg.Clock
	if w.cfg.CheckpointEvery > 0 {
		pcfg.Checkpoint = ps.CheckpointConfig{
			Path:  w.cfg.CheckpointPath,
			Every: w.cfg.CheckpointEvery,
			Coordinate: func(nextIter int) error {
				if err := w.client.CheckpointAll(ctx, int64(nextIter)); err != nil {
					return err
				}
				if w.cfg.AfterCheckpoint != nil {
					w.cfg.AfterCheckpoint(int64(nextIter))
				}
				return nil
			},
		}
	}
	return ps.NewPipeline(pcfg, locs)
}

// startRenewal keeps the trainer lease alive while training runs. Renewal
// failures are only logged: if the lease is truly lost, epoch fencing on
// the shards is what protects the data, and the trainer finds out through
// its next fenced RPC.
func (w *Worker) startRenewal(ctx context.Context) func() {
	every := w.cfg.RenewEvery
	if every <= 0 {
		ttl := w.cfg.LeaseTTL
		if ttl <= 0 {
			ttl = 3 * time.Second
		}
		every = ttl / 3
		if every < 10*time.Millisecond {
			every = 10 * time.Millisecond
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	spawn(func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				if err := w.client.RenewLease(ctx); err != nil {
					w.cfg.Log.Warn("distps: lease renewal failed", "worker", w.cfg.ID, "err", err)
				}
			}
		}
	})
	return func() { close(stop); <-done }
}

// loadLocalVersion reads the worker's checkpoint into p, returning the
// next iteration (0 when no checkpoint exists yet).
func (w *Worker) loadLocalVersion(p *ps.Pipeline) (int, error) {
	if w.cfg.CheckpointPath == "" {
		return 0, nil
	}
	if _, err := os.Stat(w.cfg.CheckpointPath); err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	return p.LoadCheckpoint(w.cfg.CheckpointPath)
}

// Run trains `steps` total iterations of batch-size `batch` from src,
// riding out shard failures via the recovery loop. It returns when the
// global iteration count reaches steps, when ctx is cancelled (graceful:
// the in-flight batch drains), or when recovery stops making progress.
func (w *Worker) Run(ctx context.Context, src ps.BatchSource, steps, batch int) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background() //elrec:rootctx nil-ctx compatibility default for direct Worker embedders
	}
	if w.cfg.HeartbeatEvery > 0 {
		w.client.StartHeartbeats(ctx, w.cfg.HeartbeatEvery)
	}
	res := &RunResult{}
	recoveries := 0 // consecutive failed rounds; reset on progress
	for {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// Phase 1: become the trainer. A standby worker parks here until
		// the active worker's lease lapses.
		epoch, err := w.client.AcquireLease(ctx)
		if err != nil {
			if !errors.Is(err, ErrLeaseHeld) {
				w.cfg.Log.Warn("distps: lease acquisition failed", "worker", w.cfg.ID, "err", err)
			}
			w.sleep(w.cfg.StandbyPoll)
			continue
		}
		w.m.epoch.Set(float64(epoch))
		w.cfg.Log.Info("distps: trainer lease acquired", "worker", w.cfg.ID, "epoch", epoch)

		// Phase 2: converge the cluster onto the last coordinated
		// checkpoint — fresh pipeline, local state file, every shard
		// restored to the same version (rolling back any shard that ran
		// ahead before a crash tore the previous round).
		fail := func(stage string, err error) bool {
			recoveries++
			res.Recoveries++
			w.m.recoveries.Inc()
			w.cfg.Log.Warn("distps: recovery round failed", "worker", w.cfg.ID, "stage", stage, "attempt", recoveries, "err", err)
			return recoveries <= w.cfg.MaxRecoveries
		}
		if _, err := w.client.HelloAll(ctx); err != nil {
			if !fail("hello", err) {
				return res, err
			}
			w.sleep(w.cfg.Retry.Delay(recoveries))
			continue
		}
		p, err := w.buildPipeline(ctx)
		if err != nil {
			return res, err // configuration error; retrying cannot help
		}
		w.pipeline = p
		v, err := w.loadLocalVersion(p)
		if err != nil {
			return res, err // a corrupt local checkpoint needs the operator
		}
		if err := w.client.RestoreAll(ctx, int64(v)); err != nil {
			if errors.Is(err, ErrFenced) {
				w.cfg.Log.Info("distps: fenced during restore; standing down", "worker", w.cfg.ID)
				continue
			}
			if !fail("restore", err) {
				return res, err
			}
			w.sleep(w.cfg.Retry.Delay(recoveries))
			continue
		}
		res.NextIter = v
		if v >= steps {
			return res, nil // the checkpointed run already finished
		}

		// Phase 3: train.
		w.m.active.Set(1)
		w.active.Store(true)
		stopRenew := w.startRenewal(ctx)
		tres, terr := p.Train(ctx, src, v, steps-v, batch)
		stopRenew()
		w.active.Store(false)
		w.m.active.Set(0)
		w.m.steps.Add(int64(tres.Completed))
		res.Curve = tres.Curve
		res.Completed += tres.Completed
		res.NextIter = tres.NextIter
		if tres.Completed > 0 {
			recoveries = 0
		}
		if terr == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		if errors.Is(terr, ErrFenced) {
			// Another worker out-fenced us: stand down to the lease loop
			// without counting a recovery — the cluster is healthy.
			w.cfg.Log.Info("distps: fenced during training; standing down", "worker", w.cfg.ID)
			continue
		}
		if !fail("train", terr) {
			return res, terr
		}
		w.sleep(w.cfg.Retry.Delay(recoveries))
	}
}
