// Package serve provides batch inference over a trained DLRM: CTR scoring
// and top-k candidate ranking. A recommendation service holds one user
// context (dense features + the user-side categorical features) and scores
// many candidate items by swapping the item-side feature, in batches — the
// standard ranking-stage pattern (cf. DeepRecSys). Compressed Eff-TT tables
// make the scoring model small enough to replicate on every serving node.
package serve

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Typed errors for programmatic handling: a serving layer distinguishes bad
// requests (context/candidate problems, reported to the client) from bad
// deployments (configuration problems, reported to the operator). All
// errors returned by this package wrap one of these sentinels; match with
// errors.Is.
var (
	// ErrInvalidConfig marks a Ranker misconfiguration (bad item feature,
	// batch size or k).
	ErrInvalidConfig = errors.New("serve: invalid configuration")
	// ErrInvalidContext marks a request context that does not match the
	// model (wrong feature counts or out-of-range user features).
	ErrInvalidContext = errors.New("serve: invalid context")
	// ErrInvalidCandidate marks a candidate item id outside the item table.
	ErrInvalidCandidate = errors.New("serve: invalid candidate")
)

// Ranker scores candidates against a user context.
type Ranker struct {
	model *dlrm.Model
	// itemFeature is the categorical feature (table index) that identifies
	// the candidate item; all other features describe the user/context.
	itemFeature int
	// batch is the scoring batch size.
	batch int

	// met holds the serving instruments; the zero value (not attached) makes
	// every record path a no-op.
	met serveMetrics
}

// serveMetrics instruments the scoring path: request/error counts, the
// per-request latency distribution and the candidate-set size distribution.
type serveMetrics struct {
	attached bool
	clock    obs.Clock

	requests   *obs.Counter
	errors     *obs.Counter
	candidates *obs.Counter
	latencyNS  *obs.Histogram // per-Score latency, nanoseconds
	batchSize  *obs.Histogram // candidates per Score call
}

// AttachMetrics wires the ranker's instruments to reg under serve_* names,
// measuring latency against clock (nil: the system clock). A nil registry
// detaches, returning the ranker to the zero-cost path.
func (r *Ranker) AttachMetrics(reg *obs.Registry, clock obs.Clock) {
	r.met = serveMetrics{
		attached:   reg != nil,
		clock:      obs.OrSystem(clock),
		requests:   reg.Counter("serve_requests"),
		errors:     reg.Counter("serve_errors"),
		candidates: reg.Counter("serve_candidates"),
		latencyNS:  reg.Histogram("serve_score_latency_ns"),
		batchSize:  reg.Histogram("serve_batch_size"),
	}
}

// NewRanker wraps a trained model. itemFeature selects which sparse feature
// carries the candidate item id.
func NewRanker(model *dlrm.Model, itemFeature, batchSize int) (*Ranker, error) {
	if itemFeature < 0 || itemFeature >= len(model.Tables) {
		return nil, fmt.Errorf("%w: item feature %d outside %d tables", ErrInvalidConfig, itemFeature, len(model.Tables))
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("%w: non-positive batch size %d", ErrInvalidConfig, batchSize)
	}
	return &Ranker{model: model, itemFeature: itemFeature, batch: batchSize}, nil
}

// Context is one user/request context: dense features plus one categorical
// index per table (the item feature's value is ignored during ranking).
type Context struct {
	Dense  []float32
	Sparse []int
}

// validate checks the context against the model.
func (r *Ranker) validate(ctx Context) error {
	if len(ctx.Dense) != r.model.Cfg.NumDense {
		return fmt.Errorf("%w: %d dense features, model wants %d", ErrInvalidContext, len(ctx.Dense), r.model.Cfg.NumDense)
	}
	if len(ctx.Sparse) != len(r.model.Tables) {
		return fmt.Errorf("%w: %d sparse features, model wants %d", ErrInvalidContext, len(ctx.Sparse), len(r.model.Tables))
	}
	for t, idx := range ctx.Sparse {
		if t == r.itemFeature {
			continue
		}
		if idx < 0 || idx >= r.model.Tables[t].NumRows() {
			return fmt.Errorf("%w: feature %d index %d out of range", ErrInvalidContext, t, idx)
		}
	}
	return nil
}

// Score returns the CTR probability of each candidate item for the context,
// in candidate order.
func (r *Ranker) Score(ctx Context, candidates []int) (scores []float32, err error) {
	if r.met.attached {
		start := r.met.clock.Now()
		r.met.requests.Inc()
		r.met.candidates.Add(int64(len(candidates)))
		r.met.batchSize.Observe(float64(len(candidates)))
		defer func() {
			r.met.latencyNS.Observe(float64(obs.Since(r.met.clock, start)))
			if err != nil {
				r.met.errors.Inc()
			}
		}()
	}
	if err := r.validate(ctx); err != nil {
		return nil, err
	}
	itemRows := r.model.Tables[r.itemFeature].NumRows()
	for i, c := range candidates {
		if c < 0 || c >= itemRows {
			return nil, fmt.Errorf("%w: candidate %d: item %d outside item table of %d rows", ErrInvalidCandidate, i, c, itemRows)
		}
	}
	out := make([]float32, 0, len(candidates))
	for start := 0; start < len(candidates); start += r.batch {
		end := start + r.batch
		if end > len(candidates) {
			end = len(candidates)
		}
		out = append(out, r.model.Predict(r.buildBatch(ctx, candidates[start:end]))...)
	}
	return out, nil
}

// ScoreMany scores the same candidate set for a batch of request contexts
// (the ranking-stage pattern: one model replica serves many concurrent
// requests). Row i of the result holds Score(ctxs[i], candidates). On a bad
// context the error wraps ErrInvalidContext (or ErrInvalidCandidate) and
// names the offending batch index, so a serving layer can reject exactly
// the bad request instead of guessing which one failed.
func (r *Ranker) ScoreMany(ctxs []Context, candidates []int) ([][]float32, error) {
	out := make([][]float32, len(ctxs))
	for i, ctx := range ctxs {
		scores, err := r.Score(ctx, candidates)
		if err != nil {
			return nil, fmt.Errorf("batch context %d: %w", i, err)
		}
		out[i] = scores
	}
	return out, nil
}

// buildBatch replicates the context across rows, varying the item feature.
func (r *Ranker) buildBatch(ctx Context, candidates []int) *data.Batch {
	n := len(candidates)
	b := &data.Batch{
		Dense:   tensor.New(n, len(ctx.Dense)),
		Sparse:  make([][]int, len(ctx.Sparse)),
		Offsets: make([]int, n),
		Labels:  make([]float32, n),
	}
	for s := 0; s < n; s++ {
		copy(b.Dense.Row(s), ctx.Dense)
		b.Offsets[s] = s
	}
	for t := range ctx.Sparse {
		col := make([]int, n)
		for s := 0; s < n; s++ {
			if t == r.itemFeature {
				col[s] = candidates[s]
			} else {
				col[s] = ctx.Sparse[t]
			}
		}
		b.Sparse[t] = col
	}
	return b
}

// Scored pairs a candidate item with its predicted CTR.
type Scored struct {
	Item  int
	Score float32
}

// TopK returns the k highest-scoring candidates in descending score order
// (ties broken by lower item id). k larger than the candidate count returns
// all candidates ranked.
func (r *Ranker) TopK(ctx Context, candidates []int, k int) ([]Scored, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: non-positive k %d", ErrInvalidConfig, k)
	}
	scores, err := r.Score(ctx, candidates)
	if err != nil {
		return nil, err
	}
	h := &minHeap{}
	heap.Init(h)
	for i, c := range candidates {
		s := Scored{Item: c, Score: scores[i]}
		if h.Len() < k {
			heap.Push(h, s)
		} else if better(s, (*h)[0]) {
			(*h)[0] = s
			heap.Fix(h, 0)
		}
	}
	out := make([]Scored, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Scored)
	}
	return out, nil
}

// better reports whether a outranks b (higher score, then lower item id).
func better(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Item < b.Item
}

// minHeap keeps the current worst of the top-k at the root.
type minHeap []Scored

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return better(h[j], h[i]) }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Scored)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
