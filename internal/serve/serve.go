// Package serve provides batch inference over a trained DLRM: CTR scoring
// and top-k candidate ranking. A recommendation service holds one user
// context (dense features + the user-side categorical features) and scores
// many candidate items by swapping the item-side feature, in batches — the
// standard ranking-stage pattern (cf. DeepRecSys). Compressed Eff-TT tables
// make the scoring model small enough to replicate on every serving node.
package serve

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/obs"
)

// Typed errors for programmatic handling: a serving layer distinguishes bad
// requests (context/candidate problems, reported to the client) from bad
// deployments (configuration problems, reported to the operator). All
// errors returned by this package wrap one of these sentinels; match with
// errors.Is.
var (
	// ErrInvalidConfig marks a Ranker misconfiguration (bad item feature,
	// batch size or k).
	ErrInvalidConfig = errors.New("serve: invalid configuration")
	// ErrInvalidContext marks a request context that does not match the
	// model (wrong feature counts or out-of-range user features).
	ErrInvalidContext = errors.New("serve: invalid context")
	// ErrInvalidCandidate marks a candidate item id outside the item table.
	ErrInvalidCandidate = errors.New("serve: invalid candidate")
)

// Ranker scores candidates against a user context.
type Ranker struct {
	model *dlrm.Model
	// itemFeature is the categorical feature (table index) that identifies
	// the candidate item; all other features describe the user/context.
	itemFeature int
	// batch is the scoring batch size.
	batch int
	// batcher is the pooled batch scratch Score chunks through; reusing it
	// across chunks and calls is what makes the Ranker single-goroutine.
	batcher *Batcher

	// met holds the serving instruments; the zero value (not attached) makes
	// every record path a no-op.
	met serveMetrics
}

// serveMetrics instruments the scoring path: request/error counts, the
// per-request latency distribution and the candidate-set size distribution.
type serveMetrics struct {
	attached bool
	clock    obs.Clock

	requests   *obs.Counter
	errors     *obs.Counter
	candidates *obs.Counter
	latencyNS  *obs.Histogram // per-Score latency, nanoseconds
	batchSize  *obs.Histogram // candidates per Score call
}

// AttachMetrics wires the ranker's instruments to reg under serve_* names,
// measuring latency against clock (nil: the system clock). A nil registry
// detaches, returning the ranker to the zero-cost path.
func (r *Ranker) AttachMetrics(reg *obs.Registry, clock obs.Clock) {
	r.met = serveMetrics{
		attached:   reg != nil,
		clock:      obs.OrSystem(clock),
		requests:   reg.Counter("serve_requests"),
		errors:     reg.Counter("serve_errors"),
		candidates: reg.Counter("serve_candidates"),
		latencyNS:  reg.Histogram("serve_score_latency_ns"),
		batchSize:  reg.Histogram("serve_batch_size"),
	}
}

// NewRanker wraps a trained model. itemFeature selects which sparse feature
// carries the candidate item id.
func NewRanker(model *dlrm.Model, itemFeature, batchSize int) (*Ranker, error) {
	if itemFeature < 0 || itemFeature >= len(model.Tables) {
		return nil, fmt.Errorf("%w: item feature %d outside %d tables", ErrInvalidConfig, itemFeature, len(model.Tables))
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("%w: non-positive batch size %d", ErrInvalidConfig, batchSize)
	}
	r := &Ranker{model: model, itemFeature: itemFeature, batch: batchSize}
	r.batcher = r.NewBatcher()
	return r, nil
}

// Context is one user/request context: dense features plus one categorical
// index per table (the item feature's value is ignored during ranking).
type Context struct {
	Dense  []float32
	Sparse []int
}

// Validate checks the context against the model: dense width, sparse count,
// and every non-item categorical index in range. Exported so a serving front
// end can reject bad requests at admission, before they occupy a replica.
func (r *Ranker) Validate(ctx Context) error {
	if len(ctx.Dense) != r.model.Cfg.NumDense {
		return fmt.Errorf("%w: %d dense features, model wants %d", ErrInvalidContext, len(ctx.Dense), r.model.Cfg.NumDense)
	}
	if len(ctx.Sparse) != len(r.model.Tables) {
		return fmt.Errorf("%w: %d sparse features, model wants %d", ErrInvalidContext, len(ctx.Sparse), len(r.model.Tables))
	}
	for t, idx := range ctx.Sparse {
		if t == r.itemFeature {
			continue
		}
		if idx < 0 || idx >= r.model.Tables[t].NumRows() {
			return fmt.Errorf("%w: feature %d index %d out of range", ErrInvalidContext, t, idx)
		}
	}
	return nil
}

// ValidateCandidates checks every candidate id against the item table.
func (r *Ranker) ValidateCandidates(candidates []int) error {
	itemRows := r.model.Tables[r.itemFeature].NumRows()
	for i, c := range candidates {
		if c < 0 || c >= itemRows {
			return fmt.Errorf("%w: candidate %d: item %d outside item table of %d rows", ErrInvalidCandidate, i, c, itemRows)
		}
	}
	return nil
}

// Score returns the CTR probability of each candidate item for the context,
// in candidate order.
//
// serve_requests counts every call and serve_errors every rejection, but the
// traffic-volume instruments (serve_candidates, serve_batch_size) record only
// after validation passes, so rejected requests cannot inflate them.
func (r *Ranker) Score(ctx Context, candidates []int) (scores []float32, err error) {
	if r.met.attached {
		start := r.met.clock.Now()
		r.met.requests.Inc()
		defer func() {
			r.met.latencyNS.Observe(float64(obs.Since(r.met.clock, start)))
			if err != nil {
				r.met.errors.Inc()
			}
		}()
	}
	if err := r.Validate(ctx); err != nil {
		return nil, err
	}
	if err := r.ValidateCandidates(candidates); err != nil {
		return nil, err
	}
	if r.met.attached {
		r.met.candidates.Add(int64(len(candidates)))
		r.met.batchSize.Observe(float64(len(candidates)))
	}
	out := make([]float32, 0, len(candidates))
	for start := 0; start < len(candidates); start += r.batch {
		end := start + r.batch
		if end > len(candidates) {
			end = len(candidates)
		}
		out = append(out, r.model.Predict(r.batcher.Build(ctx, candidates[start:end]))...)
	}
	return out, nil
}

// ScoreMany scores the same candidate set for a batch of request contexts
// (the ranking-stage pattern: one model replica serves many concurrent
// requests). Row i of the result holds the scores for ctxs[i]; rows whose
// context is invalid are nil. The error list is nil when every row succeeds;
// otherwise errs[i] explains row i's failure (wrapping ErrInvalidContext and
// naming the batch index) and the remaining rows are still scored — a
// serving layer rejects exactly the bad requests instead of guessing which
// one failed. A bad candidate set fails every row with the same
// ErrInvalidCandidate error.
func (r *Ranker) ScoreMany(ctxs []Context, candidates []int) ([][]float32, []error) {
	out := make([][]float32, len(ctxs))
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(ctxs))
		}
		errs[i] = err
	}
	if err := r.ValidateCandidates(candidates); err != nil {
		for i := range ctxs {
			fail(i, err)
		}
		return out, errs
	}
	// Validate every context up front so one bad request cannot abort its
	// neighbours' scoring.
	for i, ctx := range ctxs {
		if err := r.Validate(ctx); err != nil {
			fail(i, fmt.Errorf("batch context %d: %w", i, err))
		}
	}
	for i, ctx := range ctxs {
		if errs != nil && errs[i] != nil {
			continue
		}
		scores, err := r.Score(ctx, candidates)
		if err != nil {
			fail(i, fmt.Errorf("batch context %d: %w", i, err))
			continue
		}
		out[i] = scores
	}
	return out, errs
}

// buildBatch replicates the context across rows, varying the item feature.
// It builds into fresh scratch (tests and one-shot callers); the hot path
// goes through the ranker's pooled Batcher.
func (r *Ranker) buildBatch(ctx Context, candidates []int) *data.Batch {
	return r.NewBatcher().Build(ctx, candidates)
}

// Scored pairs a candidate item with its predicted CTR.
type Scored struct {
	Item  int
	Score float32
}

// TopK returns the k highest-scoring candidates in descending score order
// (NaN scores rank below every real score, ties broken by lower item id).
// k larger than the candidate count returns all candidates ranked.
func (r *Ranker) TopK(ctx Context, candidates []int, k int) ([]Scored, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: non-positive k %d", ErrInvalidConfig, k)
	}
	scores, err := r.Score(ctx, candidates)
	if err != nil {
		return nil, err
	}
	return SelectTopK(candidates, scores, k), nil
}

// SelectTopK ranks already-scored candidates: the k highest scores in
// descending order, NaN ranking last, ties broken by lower item id. Shared
// by Ranker.TopK and serving front ends that score through coalesced
// batches and rank afterwards. scores[i] belongs to candidates[i]; k larger
// than the candidate count returns everything ranked.
func SelectTopK(candidates []int, scores []float32, k int) []Scored {
	h := &minHeap{}
	heap.Init(h)
	for i, c := range candidates {
		s := Scored{Item: c, Score: scores[i]}
		if h.Len() < k {
			heap.Push(h, s)
		} else if better(s, (*h)[0]) {
			(*h)[0] = s
			heap.Fix(h, 0)
		}
	}
	out := make([]Scored, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Scored)
	}
	return out
}

// better reports whether a outranks b: higher score first, then lower item
// id. NaN is defined to rank below every real score (two NaNs tie-break by
// item id), which keeps better a strict ordering — without this a NaN score
// answers false both ways and corrupts the top-k heap invariant.
func better(a, b Scored) bool {
	an, bn := isNaN(a.Score), isNaN(b.Score)
	if an || bn {
		if an != bn {
			return bn // exactly one NaN: the real score outranks it
		}
		return a.Item < b.Item
	}
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Item < b.Item
}

// isNaN is math.IsNaN for float32 without the float64 round trip.
func isNaN(x float32) bool { return x != x }

// minHeap keeps the current worst of the top-k at the root.
type minHeap []Scored

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return better(h[j], h[i]) }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Scored)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
