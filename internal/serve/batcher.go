package serve

import (
	"repro/internal/data"
	"repro/internal/tensor"
)

// Row is one scoring row of a coalesced batch: a request context paired with
// a single candidate item. A serving front end flattens many concurrent
// requests into a row list and scores them in one model forward pass.
type Row struct {
	Ctx  *Context
	Item int
}

// Batcher builds scoring batches into reusable scratch, amortizing the
// per-chunk allocations of batch construction across calls. A Batcher is
// owned by one goroutine at a time, and the batch it returns aliases its
// scratch — valid only until the next Build/BuildRows call.
type Batcher struct {
	itemFeature int
	dense       *tensor.Matrix
	sparse      [][]int
	offsets     []int
	labels      []float32
	batch       data.Batch
}

// NewBatcher returns a batch builder bound to the ranker's item feature.
func (r *Ranker) NewBatcher() *Batcher {
	return &Batcher{itemFeature: r.itemFeature}
}

// prepare resizes the scratch to n rows over numDense dense and numTables
// sparse features, reusing prior capacity.
//
//elrec:coldpath amortized scratch growth; a steady stream of same-shaped batches reuses every buffer
func (b *Batcher) prepare(n, numDense, numTables int) *data.Batch {
	b.dense = tensor.Reuse(b.dense, n, numDense)
	if cap(b.offsets) < n {
		b.offsets = make([]int, n)
		b.labels = make([]float32, n)
	}
	b.offsets = b.offsets[:n]
	b.labels = b.labels[:n]
	for len(b.sparse) < numTables {
		b.sparse = append(b.sparse, nil)
	}
	b.sparse = b.sparse[:numTables]
	for t := range b.sparse {
		if cap(b.sparse[t]) < n {
			b.sparse[t] = make([]int, n)
		}
		b.sparse[t] = b.sparse[t][:n]
	}
	for s := 0; s < n; s++ {
		b.offsets[s] = s
		b.labels[s] = 0
	}
	b.batch = data.Batch{Dense: b.dense, Sparse: b.sparse, Offsets: b.offsets, Labels: b.labels}
	return &b.batch
}

// Build replicates ctx across len(candidates) rows, varying the item
// feature — the single-context chunk path used by Ranker.Score.
//
//elrec:hotpath per-request batch assembly on the serving fast path
func (b *Batcher) Build(ctx Context, candidates []int) *data.Batch {
	n := len(candidates)
	out := b.prepare(n, len(ctx.Dense), len(ctx.Sparse))
	for s := 0; s < n; s++ {
		copy(out.Dense.Row(s), ctx.Dense)
	}
	for t := range ctx.Sparse {
		col := out.Sparse[t]
		if t == b.itemFeature {
			copy(col, candidates)
		} else {
			v := ctx.Sparse[t]
			for s := 0; s < n; s++ {
				col[s] = v
			}
		}
	}
	return out
}

// BuildRows builds a coalesced batch where every row carries its own
// context — the micro-batch path that merges concurrent requests. All
// contexts must already be validated against the same model.
//
//elrec:hotpath per-request batch assembly on the serving fast path
func (b *Batcher) BuildRows(rows []Row) *data.Batch {
	if len(rows) == 0 {
		return b.prepare(0, 0, 0)
	}
	out := b.prepare(len(rows), len(rows[0].Ctx.Dense), len(rows[0].Ctx.Sparse))
	for s, row := range rows {
		copy(out.Dense.Row(s), row.Ctx.Dense)
		for t, v := range row.Ctx.Sparse {
			if t == b.itemFeature {
				out.Sparse[t][s] = row.Item
			} else {
				out.Sparse[t][s] = v
			}
		}
	}
	return out
}
