package serve

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/tt"
)

func serveSpec() data.Spec {
	return data.Spec{
		Name: "serve", NumDense: 3, TableRows: []int{100, 2000},
		ZipfS: 1.2, ZipfV: 2, GroupSize: 16, ActiveGroups: 4, Locality: 0.8,
		Samples: 1 << 20, Seed: 61,
	}
}

func serveModel(t *testing.T) *dlrm.Model {
	t.Helper()
	tables, _, err := dlrm.BuildTables(serveSpec().TableRows,
		dlrm.TableSpec{Dim: 8, Rank: 4, TTThreshold: 1000, Opts: tt.EffOptions(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dlrm.NewModel(dlrm.Config{
		NumDense: 3, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 1.0, Seed: 4,
	}, tables)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := data.New(serveSpec())
	for it := 0; it < 20; it++ {
		m.TrainStep(d.Batch(it, 64))
	}
	return m
}

func TestNewRankerValidation(t *testing.T) {
	m := serveModel(t)
	if _, err := NewRanker(m, 5, 32); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("item feature out of range: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := NewRanker(m, 1, 0); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("zero batch: err = %v, want ErrInvalidConfig", err)
	}
}

func testContext() Context {
	return Context{Dense: []float32{0.5, -1, 0.2}, Sparse: []int{7, 0}}
}

func TestScoreMatchesModelPredict(t *testing.T) {
	m := serveModel(t)
	r, err := NewRanker(m, 1, 16) // item = table 1 (TT compressed)
	if err != nil {
		t.Fatal(err)
	}
	ctx := testContext()
	candidates := []int{0, 5, 1999, 42}
	scores, err := r.Score(ctx, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(candidates) {
		t.Fatalf("got %d scores", len(scores))
	}
	// Reference: score one candidate at a time via the model directly.
	for i, c := range candidates {
		single := r.buildBatch(ctx, []int{c})
		want := m.Predict(single)[0]
		if math.Abs(float64(scores[i]-want)) > 1e-6 {
			t.Fatalf("candidate %d: score %v want %v", c, scores[i], want)
		}
	}
}

func TestScoreBatchBoundary(t *testing.T) {
	m := serveModel(t)
	r, _ := NewRanker(m, 1, 3) // batch 3: forces multiple partial batches
	candidates := []int{1, 2, 3, 4, 5, 6, 7}
	a, err := r.Score(testContext(), candidates)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRanker(m, 1, 100)
	b, _ := r2.Score(testContext(), candidates)
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-6 {
			t.Fatalf("batch size changed score %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestScoreValidation(t *testing.T) {
	m := serveModel(t)
	r, _ := NewRanker(m, 1, 16)
	if _, err := r.Score(Context{Dense: []float32{1}, Sparse: []int{0, 0}}, []int{1}); !errors.Is(err, ErrInvalidContext) {
		t.Fatalf("wrong dense width: err = %v, want ErrInvalidContext", err)
	}
	if _, err := r.Score(Context{Dense: []float32{1, 2, 3}, Sparse: []int{0}}, []int{1}); !errors.Is(err, ErrInvalidContext) {
		t.Fatalf("wrong sparse count: err = %v, want ErrInvalidContext", err)
	}
	if _, err := r.Score(Context{Dense: []float32{1, 2, 3}, Sparse: []int{500, 0}}, []int{1}); !errors.Is(err, ErrInvalidContext) {
		t.Fatalf("context index out of range: err = %v, want ErrInvalidContext", err)
	}
	if _, err := r.Score(testContext(), []int{-1}); !errors.Is(err, ErrInvalidCandidate) {
		t.Fatalf("negative candidate: err = %v, want ErrInvalidCandidate", err)
	}
	if _, err := r.Score(testContext(), []int{2000}); !errors.Is(err, ErrInvalidCandidate) {
		t.Fatalf("candidate out of range: err = %v, want ErrInvalidCandidate", err)
	}
	if _, err := r.Score(testContext(), []int{1}); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
}

func TestTopKOrderingAndCompleteness(t *testing.T) {
	m := serveModel(t)
	r, _ := NewRanker(m, 1, 32)
	ctx := testContext()
	candidates := make([]int, 200)
	for i := range candidates {
		candidates[i] = i * 7 % 2000
	}
	scores, _ := r.Score(ctx, candidates)

	top, err := r.TopK(ctx, candidates, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("TopK returned %d items", len(top))
	}
	// Descending order.
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatalf("TopK not sorted: %v", top)
		}
	}
	// Agrees with a full sort.
	type pair struct {
		item  int
		score float32
	}
	all := make([]pair, len(candidates))
	for i := range candidates {
		all[i] = pair{candidates[i], scores[i]}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].score != all[b].score {
			return all[a].score > all[b].score
		}
		return all[a].item < all[b].item
	})
	for i := 0; i < 10; i++ {
		if top[i].Item != all[i].item {
			t.Fatalf("TopK[%d] = %d, full sort says %d", i, top[i].Item, all[i].item)
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	m := serveModel(t)
	r, _ := NewRanker(m, 1, 32)
	if _, err := r.TopK(testContext(), []int{1, 2}, 0); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("k=0: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := r.TopK(testContext(), []int{1, -2}, 1); !errors.Is(err, ErrInvalidCandidate) {
		t.Fatalf("bad candidate through TopK: err = %v, want ErrInvalidCandidate", err)
	}
	// k larger than candidates: all returned, ranked.
	top, err := r.TopK(testContext(), []int{3, 9}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("got %d items want 2", len(top))
	}
	if top[0].Score < top[1].Score {
		t.Fatal("not ranked")
	}
}

// TestSelectTopKNaNRanksLast: NaN scores must sort below every real score
// and must not corrupt the heap invariant (the old better() answered false
// both ways on NaN, which could evict real scores arbitrarily).
func TestSelectTopKNaNRanksLast(t *testing.T) {
	nan := float32(math.NaN())
	candidates := []int{10, 11, 12, 13, 14, 15}
	scores := []float32{nan, 0.9, nan, 0.1, 0.5, nan}

	// k covering everything: real scores descending first, NaNs last by id.
	all := SelectTopK(candidates, scores, len(candidates))
	wantItems := []int{11, 14, 13, 10, 12, 15}
	for i, w := range wantItems {
		if all[i].Item != w {
			t.Fatalf("rank %d = item %d, want %d (full: %v)", i, all[i].Item, w, all)
		}
	}
	for _, s := range all[3:] {
		if s.Score == s.Score {
			t.Fatalf("item %d ranked in the NaN tail with real score %v", s.Item, s.Score)
		}
	}

	// Small k must keep the real scores and drop NaNs first, regardless of
	// the order they streamed through the heap.
	top := SelectTopK(candidates, scores, 3)
	if len(top) != 3 {
		t.Fatalf("got %d items want 3", len(top))
	}
	for i, w := range []int{11, 14, 13} {
		if top[i].Item != w {
			t.Fatalf("top-3 rank %d = item %d, want %d (%v)", i, top[i].Item, w, top)
		}
	}

	// All-NaN input still yields a total order (by item id).
	allNaN := SelectTopK([]int{5, 3, 4}, []float32{nan, nan, nan}, 2)
	if allNaN[0].Item != 3 || allNaN[1].Item != 4 {
		t.Fatalf("all-NaN order %v, want items 3,4", allNaN)
	}
}

// TestBatcherReuseMatchesFreshBuild: the pooled Batcher must produce the
// same batches as fresh construction, across shrinking and growing row
// counts that exercise scratch reuse.
func TestBatcherReuseMatchesFreshBuild(t *testing.T) {
	m := serveModel(t)
	r, _ := NewRanker(m, 1, 16)
	ctx := testContext()
	b := r.NewBatcher()
	for _, candidates := range [][]int{{1, 2, 3, 4, 5}, {9}, {7, 8, 6, 5, 4, 3, 2}} {
		got := b.Build(ctx, candidates)
		want := r.NewBatcher().Build(ctx, candidates)
		if got.Size() != want.Size() || got.Dense.MaxAbsDiff(want.Dense) != 0 {
			t.Fatalf("reused dense differs for %v", candidates)
		}
		for tbl := range want.Sparse {
			for s := range want.Sparse[tbl] {
				if got.Sparse[tbl][s] != want.Sparse[tbl][s] {
					t.Fatalf("sparse[%d][%d] = %d want %d", tbl, s, got.Sparse[tbl][s], want.Sparse[tbl][s])
				}
			}
		}
		for s, o := range want.Offsets {
			if got.Offsets[s] != o {
				t.Fatalf("offsets[%d] = %d want %d", s, got.Offsets[s], o)
			}
		}
	}
}

// TestBatcherBuildRowsMatchesPerContextBuild: a coalesced multi-context
// batch must score row-for-row like the single-context path.
func TestBatcherBuildRowsMatchesPerContextBuild(t *testing.T) {
	m := serveModel(t)
	r, _ := NewRanker(m, 1, 64)
	ctxA := testContext()
	ctxB := Context{Dense: []float32{-0.3, 2, 1.1}, Sparse: []int{42, 0}}
	rows := []Row{{&ctxA, 3}, {&ctxB, 1999}, {&ctxA, 7}, {&ctxB, 0}}
	coalesced := m.Predict(r.NewBatcher().BuildRows(rows))

	sa, err := r.Score(ctxA, []int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := r.Score(ctxB, []int{1999, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{sa[0], sb[0], sa[1], sb[1]}
	for i := range want {
		if coalesced[i] != want[i] {
			t.Fatalf("coalesced row %d = %v, per-context path says %v", i, coalesced[i], want[i])
		}
	}
}
