package serve

import (
	"runtime/debug"
	"testing"

	"repro/internal/tensor"
)

// TestBatcherZeroAllocSteadyState cross-checks hotalloc's static claim for
// the serving batch assembly: once the Batcher scratch has grown to the
// working shape, Build and BuildRows construct batches without heap
// allocation.
func TestBatcherZeroAllocSteadyState(t *testing.T) {
	old := tensor.Workers()
	tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(old)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	m := serveModel(t)
	r, err := NewRanker(m, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	b := r.NewBatcher()
	ctx := testContext()
	candidates := []int{4, 9, 1, 12, 7, 3, 0, 8}

	rows := make([]Row, len(candidates))
	ctxs := make([]Context, len(candidates))
	for i, item := range candidates {
		ctxs[i] = Context{Dense: []float32{float32(i), -1, 0.2}, Sparse: []int{i % 3, 0}}
		rows[i] = Row{Ctx: &ctxs[i], Item: item}
	}

	b.Build(ctx, candidates) // warmup: grows the scratch to batch shape
	allocs := testing.AllocsPerRun(20, func() {
		b.Build(ctx, candidates)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Build allocated %v times per call, want 0", allocs)
	}

	b.BuildRows(rows)
	allocs = testing.AllocsPerRun(20, func() {
		b.BuildRows(rows)
	})
	if allocs != 0 {
		t.Fatalf("steady-state BuildRows allocated %v times per call, want 0", allocs)
	}
}
