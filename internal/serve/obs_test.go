package serve

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestScoreManyNamesOffendingBatchIndex checks the regression the batch API
// used to have: an invalid context inside a batch must name which batch
// index failed, and the wrapped sentinel must survive for errors.Is.
func TestScoreManyNamesOffendingBatchIndex(t *testing.T) {
	m := serveModel(t)
	r, err := NewRanker(m, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	good := testContext()
	bad := Context{Dense: []float32{1}, Sparse: []int{0, 0}} // wrong dense width

	_, err = r.ScoreMany([]Context{good, good, bad}, []int{1, 2})
	if !errors.Is(err, ErrInvalidContext) {
		t.Fatalf("err = %v, want ErrInvalidContext", err)
	}
	if !strings.Contains(err.Error(), "batch context 2") {
		t.Fatalf("error %q does not name the offending batch index 2", err)
	}

	// Same for a bad candidate: the error carries both the candidate's
	// position and, through ScoreMany, the batch index.
	_, err = r.ScoreMany([]Context{good}, []int{1, 5000})
	if !errors.Is(err, ErrInvalidCandidate) {
		t.Fatalf("err = %v, want ErrInvalidCandidate", err)
	}
	if !strings.Contains(err.Error(), "candidate 1") || !strings.Contains(err.Error(), "batch context 0") {
		t.Fatalf("error %q does not name the candidate position and batch index", err)
	}

	// A clean batch scores every context.
	out, err := r.ScoreMany([]Context{good, good}, []int{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0]) != 3 {
		t.Fatalf("result shape %dx%d want 2x3", len(out), len(out[0]))
	}
}

// TestServeMetrics checks the request/error counters and the latency and
// batch-size histograms against a manual clock.
func TestServeMetrics(t *testing.T) {
	m := serveModel(t)
	r, err := NewRanker(m, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	clock := obs.NewManual(time.Unix(0, 0))
	r.AttachMetrics(reg, clock)

	if _, err := r.Score(testContext(), []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Score(Context{}, []int{1}); err == nil {
		t.Fatal("invalid context accepted")
	}

	snap := reg.Snapshot()
	if got := snap.Counter("serve_requests"); got != 2 {
		t.Fatalf("serve_requests = %d want 2", got)
	}
	if got := snap.Counter("serve_errors"); got != 1 {
		t.Fatalf("serve_errors = %d want 1", got)
	}
	if got := snap.Counter("serve_candidates"); got != 4 {
		t.Fatalf("serve_candidates = %d want 4", got)
	}
	bs := snap.Histograms["serve_batch_size"]
	if bs.Count != 2 || bs.Max != 3 || bs.Min != 1 {
		t.Fatalf("serve_batch_size summary %+v want count=2 min=1 max=3", bs)
	}
	if lat := snap.Histograms["serve_score_latency_ns"]; lat.Count != 2 {
		t.Fatalf("serve_score_latency_ns count = %d want 2", lat.Count)
	}

	// Detach restores the zero-cost path.
	r.AttachMetrics(nil, nil)
	if _, err := r.Score(testContext(), []int{1}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counter("serve_requests"); got != 2 {
		t.Fatalf("detached ranker still recorded: serve_requests = %d", got)
	}
}
