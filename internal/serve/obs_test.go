package serve

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestScoreManyRejectsExactlyTheBadRows is the regression test for the old
// batch API, which returned nil for every row on the first bad context. Now
// a bad context fails only its own row: the error list names the offending
// index (with the sentinel intact for errors.Is) and the good rows still
// come back scored.
func TestScoreManyRejectsExactlyTheBadRows(t *testing.T) {
	m := serveModel(t)
	r, err := NewRanker(m, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	good := testContext()
	bad := Context{Dense: []float32{1}, Sparse: []int{0, 0}} // wrong dense width

	want, err := r.Score(good, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	out, errs := r.ScoreMany([]Context{good, bad, good}, []int{1, 2})
	if errs == nil {
		t.Fatal("bad context produced no error list")
	}
	if !errors.Is(errs[1], ErrInvalidContext) {
		t.Fatalf("errs[1] = %v, want ErrInvalidContext", errs[1])
	}
	if !strings.Contains(errs[1].Error(), "batch context 1") {
		t.Fatalf("error %q does not name the offending batch index 1", errs[1])
	}
	if out[1] != nil {
		t.Fatal("bad row came back with scores")
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("good row %d rejected: %v", i, errs[i])
		}
		if len(out[i]) != 2 {
			t.Fatalf("good row %d has %d scores, want 2", i, len(out[i]))
		}
		for j := range want {
			if out[i][j] != want[j] {
				t.Fatalf("row %d score %d: %v want %v", i, j, out[i][j], want[j])
			}
		}
	}

	// A bad candidate set fails every row with the candidate's position.
	out, errs = r.ScoreMany([]Context{good, good}, []int{1, 5000})
	for i := range out {
		if out[i] != nil {
			t.Fatalf("row %d scored against a bad candidate set", i)
		}
		if !errors.Is(errs[i], ErrInvalidCandidate) {
			t.Fatalf("errs[%d] = %v, want ErrInvalidCandidate", i, errs[i])
		}
		if !strings.Contains(errs[i].Error(), "candidate 1") {
			t.Fatalf("error %q does not name the candidate position", errs[i])
		}
	}

	// A clean batch scores every context with a nil error list.
	out, errs = r.ScoreMany([]Context{good, good}, []int{3, 4, 5})
	if errs != nil {
		t.Fatalf("clean batch produced errors: %v", errs)
	}
	if len(out) != 2 || len(out[0]) != 3 {
		t.Fatalf("result shape %dx%d want 2x3", len(out), len(out[0]))
	}
}

// TestServeMetrics checks the request/error counters and the latency and
// batch-size histograms against a manual clock.
func TestServeMetrics(t *testing.T) {
	m := serveModel(t)
	r, err := NewRanker(m, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	clock := obs.NewManual(time.Unix(0, 0))
	r.AttachMetrics(reg, clock)

	if _, err := r.Score(testContext(), []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Score(Context{}, []int{1}); err == nil {
		t.Fatal("invalid context accepted")
	}
	if _, err := r.Score(testContext(), []int{5000}); err == nil {
		t.Fatal("invalid candidate accepted")
	}

	snap := reg.Snapshot()
	if got := snap.Counter("serve_requests"); got != 3 {
		t.Fatalf("serve_requests = %d want 3", got)
	}
	if got := snap.Counter("serve_errors"); got != 2 {
		t.Fatalf("serve_errors = %d want 2", got)
	}
	// Traffic volume excludes the rejected request: only the valid call's 3
	// candidates count, and the batch-size histogram saw one observation.
	if got := snap.Counter("serve_candidates"); got != 3 {
		t.Fatalf("serve_candidates = %d want 3 (rejected request must not count)", got)
	}
	bs := snap.Histograms["serve_batch_size"]
	if bs.Count != 1 || bs.Max != 3 || bs.Min != 3 {
		t.Fatalf("serve_batch_size summary %+v want count=1 min=3 max=3", bs)
	}
	if lat := snap.Histograms["serve_score_latency_ns"]; lat.Count != 3 {
		t.Fatalf("serve_score_latency_ns count = %d want 3", lat.Count)
	}

	// Detach restores the zero-cost path.
	r.AttachMetrics(nil, nil)
	if _, err := r.Score(testContext(), []int{1}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counter("serve_requests"); got != 3 {
		t.Fatalf("detached ranker still recorded: serve_requests = %d", got)
	}
}
