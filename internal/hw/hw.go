// Package hw models the hardware the paper evaluates on. Real GPUs are not
// available in this environment, so end-to-end comparisons combine two
// ingredients: real, measured CPU compute time for every kernel, and a
// simulated clock charging transfer time for every byte that would cross a
// memory boundary (host↔device over PCIe, device↔device for all-reduce and
// model-parallel exchange). The systems being compared differ precisely in
// where parameters live and how many bytes they move, so this cost model
// preserves the paper's who-wins shape (Figures 11, 12, 13, 16) without
// pretending to reproduce absolute GPU throughput.
package hw

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Device describes one compute location. ComputeScale is its throughput
// relative to the host CPU this repository actually measures on: kernels
// that would run on the device are charged measured-time / ComputeScale.
// The absolute values are rough (a V100 runs dense DLRM kernels on the
// order of 50× a CPU socket; a T4 around 20×); only the relative order
// matters for the who-wins shape of the end-to-end figures.
type Device struct {
	Name     string
	HBMBytes int64
	// ComputeScale is the device's speedup over the measurement host.
	ComputeScale float64
}

// Fits reports whether bytes (plus a reserve for activations/optimizer
// state) fit in the device memory.
func (d Device) Fits(bytes, reserve int64) bool {
	return bytes+reserve <= d.HBMBytes
}

// TeslaV100 models the paper's primary evaluation GPU (16 GB HBM2). The
// compute scale is a calibration constant: the effective speedup of the GPU
// over the measurement host for DLRM's mix of small GEMMs and scattered
// embedding access (far below peak-FLOP ratios), chosen together with
// PSRowLatency so the paper's single-GPU anchor ratios (Figure 11: EL-Rec
// ≈3x DLRM, ≈1.5x FAE) land in the right regime.
func TeslaV100() Device {
	return Device{Name: "Tesla V100", HBMBytes: 16 << 30, ComputeScale: 6}
}

// TeslaT4 models the secondary platform (16 GB GDDR6, notably lower
// training throughput than the V100).
func TeslaT4() Device {
	return Device{Name: "Tesla T4", HBMBytes: 16 << 30, ComputeScale: 2.5}
}

// HostCPU is the measurement host itself (scale 1): host-side embedding
// gathers and parameter-server updates are charged at measured time.
func HostCPU() Device {
	return Device{Name: "host CPU", HBMBytes: 192 << 30, ComputeScale: 1}
}

// SetHostWorkers bounds the parallelism of the measured host-side kernels
// (the tensor worker pool). Benchmarks pin this to 1 for stable,
// reproducible numbers, or raise it to emulate a wider host; it funnels
// through the tensor package's race-safe setter so it can be flipped while
// kernels are running.
func SetHostWorkers(n int) {
	tensor.SetMaxWorkers(n)
}

// HostWorkers reports the current host-side kernel parallelism bound.
func HostWorkers() int {
	return tensor.Workers()
}

// Link models an interconnect with a latency + bandwidth cost.
type Link struct {
	Name         string
	BandwidthBps float64
	Latency      time.Duration
}

// TransferTime returns the modeled time to move the given bytes.
func (l Link) TransferTime(bytes int64) time.Duration {
	if bytes < 0 {
		//elrec:invariant simulator parameter contract: negative quantities are programming errors
		panic(fmt.Sprintf("hw: negative transfer size %d", bytes))
	}
	if bytes == 0 {
		return 0
	}
	return l.Latency + time.Duration(float64(bytes)/l.BandwidthBps*float64(time.Second))
}

// PCIe3x16 models the host↔device link of the AWS p3/g4dn instances
// (~12 GB/s effective).
func PCIe3x16() Link {
	return Link{Name: "PCIe 3.0 x16", BandwidthBps: 12e9, Latency: 10 * time.Microsecond}
}

// NVLinkPair models the device↔device path on the p3.8xlarge (per-direction
// effective bandwidth of one NVLink brick pair).
func NVLinkPair() Link {
	return Link{Name: "NVLink", BandwidthBps: 45e9, Latency: 5 * time.Microsecond}
}

// HostGather models CPU-side embedding gather/update throughput for
// parameter-server style accesses (random-access bound, far below stream
// bandwidth).
func HostGather() Link {
	return Link{Name: "host gather", BandwidthBps: 6e9, Latency: 2 * time.Microsecond}
}

// PSRowLatency is the modeled host-side cost per embedding row accessed
// through the parameter server (hash lookup, framework dispatch, optimizer
// state) on top of the raw copy our Go implementation measures. Real PS
// stacks (the Python/Gloo path the paper's DLRM baseline runs) pay on the
// order of a microsecond per row; this constant is the second half of the
// Figure 11 calibration.
const PSRowLatency = 800 * time.Nanosecond

// PSAccessTime returns the modeled host-side overhead for touching the
// given number of embedding rows through the parameter server.
func PSAccessTime(rows int64) time.Duration {
	if rows < 0 {
		//elrec:invariant simulator parameter contract: negative quantities are programming errors
		panic("hw: negative row count")
	}
	return PSRowLatency * time.Duration(rows)
}

// AllReduceTime returns the modeled time of a ring all-reduce of the given
// payload across n devices: 2·(n−1)/n · bytes over the link.
func AllReduceTime(l Link, n int, bytes int64) time.Duration {
	if n <= 1 || bytes == 0 {
		return 0
	}
	eff := 2 * float64(n-1) / float64(n) * float64(bytes)
	return l.Latency*time.Duration(2*(n-1)) + time.Duration(eff/l.BandwidthBps*float64(time.Second))
}

// CollectiveLaunch is the modeled fixed cost of issuing one collective
// operator (kernel launch + NCCL synchronization), the overhead that makes
// per-table model-parallel exchanges expensive even when payloads are small.
const CollectiveLaunch = 50 * time.Microsecond

// CollectiveOverhead returns the fixed cost of count collective operators.
func CollectiveOverhead(count int) time.Duration {
	if count < 0 {
		//elrec:invariant simulator parameter contract: negative quantities are programming errors
		panic("hw: negative collective count")
	}
	return CollectiveLaunch * time.Duration(count)
}

// AllToAllTime returns the modeled time of an all-to-all exchange where each
// of n devices sends bytesPerPeer to every other device (model-parallel
// embedding exchange in HugeCTR/TorchRec-style systems).
func AllToAllTime(l Link, n int, bytesPerPeer int64) time.Duration {
	if n <= 1 || bytesPerPeer == 0 {
		return 0
	}
	total := float64(n-1) * float64(bytesPerPeer)
	return l.Latency*time.Duration(n-1) + time.Duration(total/l.BandwidthBps*float64(time.Second))
}

// SimClock accumulates simulated time from concurrent sources.
type SimClock struct {
	mu sync.Mutex
	d  time.Duration
}

// Add charges d of simulated time.
func (c *SimClock) Add(d time.Duration) {
	if d < 0 {
		//elrec:invariant simulator parameter contract: negative quantities are programming errors
		panic("hw: negative simulated time")
	}
	c.mu.Lock()
	c.d += d
	c.mu.Unlock()
}

// Elapsed returns the accumulated simulated time.
func (c *SimClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.d
}

// Reset clears the clock.
func (c *SimClock) Reset() {
	c.mu.Lock()
	c.d = 0
	c.mu.Unlock()
}

// Meter measures one experiment run: real compute time scaled by the device
// speed plus simulated communication time. Overlappable communication (the
// pipeline's prefetch) can be charged as overlapped, contributing only the
// amount exceeding the concurrent compute window.
type Meter struct {
	Device Device
	// Clock is the timestamp source Measure reads; nil uses the system
	// clock. Tests inject a manual clock for deterministic measurements.
	Clock obs.Clock

	mu      sync.Mutex
	compute time.Duration
	comm    time.Duration
}

// NewMeter returns a meter for the given device.
func NewMeter(dev Device) *Meter {
	if dev.ComputeScale <= 0 {
		//elrec:invariant simulator parameter contract: negative quantities are programming errors
		panic("hw: device with non-positive compute scale")
	}
	return &Meter{Device: dev}
}

// AddCompute charges measured wall time, rescaled by the device speed.
func (m *Meter) AddCompute(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.mu.Lock()
	m.compute += time.Duration(float64(d) / m.Device.ComputeScale)
	m.mu.Unlock()
}

// AddComm charges simulated serialized communication time.
func (m *Meter) AddComm(d time.Duration) {
	if d < 0 {
		//elrec:invariant simulator parameter contract: negative quantities are programming errors
		panic("hw: negative comm time")
	}
	m.mu.Lock()
	m.comm += d
	m.mu.Unlock()
}

// AddOverlappedComm charges communication that executes concurrently with a
// compute window: only the excess beyond the window serializes.
func (m *Meter) AddOverlappedComm(comm, window time.Duration) {
	if comm > window {
		m.AddComm(comm - window)
	}
}

// Compute returns the accumulated (rescaled) compute time.
func (m *Meter) Compute() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compute
}

// Comm returns the accumulated serialized communication time.
func (m *Meter) Comm() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.comm
}

// Total returns modeled end-to-end time.
func (m *Meter) Total() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compute + m.comm
}

// Throughput returns samples/second for n samples under the modeled time.
func (m *Meter) Throughput(samples int) float64 {
	t := m.Total()
	if t <= 0 {
		return 0
	}
	return float64(samples) / t.Seconds()
}

// Measure runs fn, charging its wall time as compute.
func (m *Meter) Measure(fn func()) {
	clock := obs.OrSystem(m.Clock)
	start := clock.Now()
	fn()
	m.AddCompute(obs.Since(clock, start))
}
