package hw

import (
	"sync"
	"testing"
	"time"
)

func TestDeviceFits(t *testing.T) {
	dev := TeslaV100()
	if !dev.Fits(15<<30, 1<<29) {
		t.Fatal("15.5 GB should fit in 16 GB")
	}
	if dev.Fits(16<<30, 1) {
		t.Fatal("16 GB + 1 byte should not fit")
	}
}

func TestTransferTimeScalesWithBytes(t *testing.T) {
	l := PCIe3x16()
	small := l.TransferTime(1 << 20)
	big := l.TransferTime(1 << 30)
	if big <= small {
		t.Fatal("transfer time not increasing with size")
	}
	// 12 GB over 12 GB/s ≈ 1 s.
	sec := l.TransferTime(12e9)
	if sec < 900*time.Millisecond || sec > 1100*time.Millisecond {
		t.Fatalf("12GB transfer = %v want ≈1s", sec)
	}
	if l.TransferTime(0) != 0 {
		t.Fatal("zero bytes should cost nothing")
	}
}

func TestTransferTimeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative transfer did not panic")
		}
	}()
	PCIe3x16().TransferTime(-1)
}

func TestTransferLatencyFloor(t *testing.T) {
	l := PCIe3x16()
	if l.TransferTime(1) < l.Latency {
		t.Fatal("transfer below latency floor")
	}
}

func TestAllReduceTime(t *testing.T) {
	l := NVLinkPair()
	if AllReduceTime(l, 1, 1<<30) != 0 {
		t.Fatal("single device all-reduce should be free")
	}
	t2 := AllReduceTime(l, 2, 1<<30)
	t4 := AllReduceTime(l, 4, 1<<30)
	if t2 <= 0 || t4 <= t2 {
		t.Fatalf("ring all-reduce times t2=%v t4=%v", t2, t4)
	}
	// Ring factor 2(n-1)/n is bounded by 2: quadrupling devices must not
	// even double the time for fixed payload.
	if t4 > 2*t2 {
		t.Fatalf("all-reduce scaling broken: %v -> %v", t2, t4)
	}
}

func TestAllToAllTime(t *testing.T) {
	l := NVLinkPair()
	if AllToAllTime(l, 1, 1<<20) != 0 {
		t.Fatal("single device all-to-all should be free")
	}
	t2 := AllToAllTime(l, 2, 1<<20)
	t4 := AllToAllTime(l, 4, 1<<20)
	if t4 <= t2 {
		t.Fatalf("all-to-all should grow with device count: %v vs %v", t2, t4)
	}
}

func TestSimClock(t *testing.T) {
	var c SimClock
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Elapsed() != 1000*time.Microsecond {
		t.Fatalf("SimClock = %v want 1ms", c.Elapsed())
	}
	c.Reset()
	if c.Elapsed() != 0 {
		t.Fatal("Reset did not clear clock")
	}
}

func TestMeterComputeScaling(t *testing.T) {
	fast := NewMeter(TeslaV100())
	slow := NewMeter(TeslaT4())
	host := NewMeter(HostCPU())
	fast.AddCompute(100 * time.Millisecond)
	slow.AddCompute(100 * time.Millisecond)
	host.AddCompute(100 * time.Millisecond)
	if slow.Compute() <= fast.Compute() {
		t.Fatalf("T4 compute %v should exceed V100 %v", slow.Compute(), fast.Compute())
	}
	if host.Compute() <= slow.Compute() {
		t.Fatalf("host compute %v should exceed T4 %v", host.Compute(), slow.Compute())
	}
	if host.Compute() != 100*time.Millisecond {
		t.Fatalf("host compute %v should be unscaled", host.Compute())
	}
}

func TestMeterTotalsAndThroughput(t *testing.T) {
	m := NewMeter(HostCPU())
	m.AddCompute(200 * time.Millisecond)
	m.AddComm(300 * time.Millisecond)
	if m.Total() != 500*time.Millisecond {
		t.Fatalf("Total = %v", m.Total())
	}
	if th := m.Throughput(1000); th < 1999 || th > 2001 {
		t.Fatalf("Throughput = %v want 2000", th)
	}
}

func TestMeterOverlappedComm(t *testing.T) {
	m := NewMeter(HostCPU())
	m.AddOverlappedComm(100*time.Millisecond, 150*time.Millisecond)
	if m.Comm() != 0 {
		t.Fatal("fully overlapped comm should cost nothing")
	}
	m.AddOverlappedComm(200*time.Millisecond, 150*time.Millisecond)
	if m.Comm() != 50*time.Millisecond {
		t.Fatalf("excess comm = %v want 50ms", m.Comm())
	}
}

func TestMeterMeasure(t *testing.T) {
	m := NewMeter(HostCPU())
	m.Measure(func() { time.Sleep(5 * time.Millisecond) })
	if m.Compute() < 4*time.Millisecond {
		t.Fatalf("Measure recorded %v", m.Compute())
	}
}

func TestMeterZeroThroughput(t *testing.T) {
	m := NewMeter(TeslaV100())
	if m.Throughput(10) != 0 {
		t.Fatal("empty meter should report zero throughput")
	}
}

func TestNewMeterInvalidDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero compute scale accepted")
		}
	}()
	NewMeter(Device{Name: "bad"})
}

func TestPSAccessTime(t *testing.T) {
	if PSAccessTime(0) != 0 {
		t.Fatal("zero rows should cost nothing")
	}
	if PSAccessTime(1000) != 1000*PSRowLatency {
		t.Fatalf("PSAccessTime(1000) = %v", PSAccessTime(1000))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative rows accepted")
		}
	}()
	PSAccessTime(-1)
}

func TestCollectiveOverhead(t *testing.T) {
	if CollectiveOverhead(0) != 0 {
		t.Fatal("zero collectives should cost nothing")
	}
	if CollectiveOverhead(3) != 3*CollectiveLaunch {
		t.Fatalf("CollectiveOverhead(3) = %v", CollectiveOverhead(3))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative count accepted")
		}
	}()
	CollectiveOverhead(-1)
}

func TestSimClockNegativePanics(t *testing.T) {
	var c SimClock
	defer func() {
		if recover() == nil {
			t.Fatal("negative sim time accepted")
		}
	}()
	c.Add(-time.Second)
}

func TestMeterNegativeCommPanics(t *testing.T) {
	m := NewMeter(HostCPU())
	m.AddCompute(-time.Second) // clamped, no panic
	if m.Compute() != 0 {
		t.Fatal("negative compute not clamped")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative comm accepted")
		}
	}()
	m.AddComm(-time.Second)
}
