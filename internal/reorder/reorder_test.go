package reorder

import (
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/tensor"
)

func TestFrequencyOrder(t *testing.T) {
	counts := []int64{5, 100, 5, 0, 50}
	rank := FrequencyOrder(counts)
	// idx 1 (100) -> rank 0, idx 4 (50) -> rank 1, idx 0/2 (5) -> 2,3 by id,
	// idx 3 (0) -> rank 4.
	want := []int{2, 0, 3, 4, 1}
	for i := range want {
		if rank[i] != want[i] {
			t.Fatalf("rank = %v want %v", rank, want)
		}
	}
}

func TestIdentityBijection(t *testing.T) {
	b := Identity(5)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	got := b.Apply([]int{3, 1, 4})
	for i, v := range []int{3, 1, 4} {
		if got[i] != v {
			t.Fatalf("identity Apply changed indices: %v", got)
		}
	}
}

func TestApplyInPlace(t *testing.T) {
	b := Identity(4)
	b.Forward = []int32{1, 0, 3, 2}
	b.Inverse = []int32{1, 0, 3, 2}
	idx := []int{0, 2}
	b.ApplyInPlace(idx)
	if idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("ApplyInPlace = %v", idx)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	b := Identity(3)
	b.Forward[0] = 1 // duplicate
	if b.Validate() == nil {
		t.Fatal("duplicate new id accepted")
	}
	b = Identity(3)
	b.Forward[0] = 5 // out of range
	if b.Validate() == nil {
		t.Fatal("out-of-range id accepted")
	}
	b = Identity(3)
	b.Inverse[0] = 2 // inconsistent inverse
	if b.Validate() == nil {
		t.Fatal("inconsistent inverse accepted")
	}
}

func TestBuildHotRowsLandInFront(t *testing.T) {
	// 100 rows; rows 10 and 20 dominate access counts.
	counts := make([]int64, 100)
	counts[10] = 1000
	counts[20] = 900
	for i := range counts {
		counts[i]++
	}
	batches := [][]int{{1, 2, 3}, {4, 5, 6}}
	bij, err := Build(counts, batches, Config{HotRatio: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if err := bij.Validate(); err != nil {
		t.Fatal(err)
	}
	if bij.Forward[10] != 0 || bij.Forward[20] != 1 {
		t.Fatalf("hot rows at %d, %d; want 0, 1", bij.Forward[10], bij.Forward[20])
	}
}

func TestBuildGroupsCooccurringIndices(t *testing.T) {
	// Two clusters of ids that always co-occur must land contiguously.
	counts := make([]int64, 40)
	for i := range counts {
		counts[i] = 1
	}
	clusterA := []int{3, 17, 29}
	clusterB := []int{5, 11, 35}
	var batches [][]int
	for i := 0; i < 10; i++ {
		batches = append(batches, clusterA, clusterB)
	}
	bij, err := Build(counts, batches, Config{HotRatio: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := bij.Validate(); err != nil {
		t.Fatal(err)
	}
	spreadOf := func(cluster []int) int {
		lo, hi := int(bij.Forward[cluster[0]]), int(bij.Forward[cluster[0]])
		for _, idx := range cluster[1:] {
			v := int(bij.Forward[idx])
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi - lo
	}
	if s := spreadOf(clusterA); s != len(clusterA)-1 {
		t.Fatalf("cluster A spread %d, want contiguous", s)
	}
	if s := spreadOf(clusterB); s != len(clusterB)-1 {
		t.Fatalf("cluster B spread %d, want contiguous", s)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, DefaultConfig()); err == nil {
		t.Fatal("empty counts accepted")
	}
	if _, err := Build([]int64{1, 2}, nil, Config{HotRatio: 2}); err == nil {
		t.Fatal("hot ratio > 1 accepted")
	}
	if _, err := Build([]int64{1, 2}, [][]int{{5}}, DefaultConfig()); err == nil {
		t.Fatal("out-of-range batch index accepted")
	}
}

func TestBuildGraphNodeCap(t *testing.T) {
	counts := make([]int64, 1000)
	for i := range counts {
		counts[i] = int64(1000 - i)
	}
	batches := [][]int{{900, 901, 902}}
	bij, err := Build(counts, batches, Config{HotRatio: 0.01, MaxGraphNodes: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := bij.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rows beyond hot+cap keep frequency order: the coldest row stays last.
	if bij.Forward[999] != 999 {
		t.Fatalf("tail row moved to %d", bij.Forward[999])
	}
}

// Property: Build always yields a permutation.
func TestQuickBuildIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 5 + r.Intn(100)
		counts := make([]int64, n)
		for i := range counts {
			counts[i] = int64(r.Intn(50))
		}
		var batches [][]int
		for b := 0; b < r.Intn(6); b++ {
			batch := make([]int, 1+r.Intn(10))
			for i := range batch {
				batch[i] = r.Intn(n)
			}
			batches = append(batches, batch)
		}
		ratios := []float64{0, 0.05, 0.5, 1}
		cfg := Config{HotRatio: ratios[r.Intn(len(ratios))]}
		bij, err := Build(counts, batches, cfg)
		if err != nil {
			return false
		}
		return bij.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestReorderingImprovesPrefixSharing is the end-to-end property the paper
// relies on: after reordering, batches touch fewer distinct TT prefixes
// (index / m₃ buckets), increasing Eff-TT reuse.
func TestReorderingImprovesPrefixSharing(t *testing.T) {
	spec := data.Spec{
		Name: "reorder-e2e", NumDense: 1, TableRows: []int{4096},
		ZipfS: 1.2, ZipfV: 2, GroupSize: 32, ActiveGroups: 4, Locality: 0.85,
		Samples: 1 << 20, Seed: 99,
	}
	d, err := data.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	const (
		table     = 0
		batchSize = 256
		trainIt   = 40
		m3        = 16 // TT last-core length: prefix = idx / 16
	)
	counts := d.AccessCounts(table, trainIt, batchSize)
	var batches [][]int
	for it := 0; it < trainIt; it++ {
		batches = append(batches, d.Batch(it, batchSize).Sparse[table])
	}
	bij, err := Build(counts, batches, Config{HotRatio: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if err := bij.Validate(); err != nil {
		t.Fatal(err)
	}

	prefixes := func(indices []int) int {
		pfx := make([]int, len(indices))
		for i, idx := range indices {
			pfx[i] = idx / m3
		}
		uniq, _ := embedding.Unique(pfx)
		return len(uniq)
	}
	var before, after int
	for it := trainIt; it < trainIt+20; it++ { // held-out batches
		raw := d.Batch(it, batchSize).Sparse[table]
		before += prefixes(raw)
		after += prefixes(bij.Apply(raw))
	}
	if after >= before {
		t.Fatalf("reordering did not improve prefix sharing: %d -> %d unique prefixes", before, after)
	}
	t.Logf("unique prefixes per 20 batches: %d -> %d (%.1f%% reduction)",
		before, after, 100*(1-float64(after)/float64(before)))
}

// TestBuildIsDeterministic locks in the determinism contract the analyzer
// suite enforces statically: on a fixed input — large enough to exercise
// the hot prefix, the co-occurrence graph, Louvain aggregation and the
// cold tail — 20 repeated Build runs must produce the identical bijection.
// Before graphx sorted its neighbor traversals and accumulated modularity
// in first-appearance order, map iteration order leaked into tie-breaking
// and this test flaked.
func TestBuildIsDeterministic(t *testing.T) {
	const rows = 500
	counts := make([]int64, rows)
	for i := range counts {
		// Zipf-ish skew with deterministic arithmetic: no RNG involved.
		counts[i] = int64(1 + (rows-i)*(rows-i)/64)
	}
	var batches [][]int
	for b := 0; b < 200; b++ {
		batch := make([]int, 0, 8)
		for j := 0; j < 8; j++ {
			batch = append(batch, (b*37+j*j*13)%rows)
		}
		batches = append(batches, batch)
	}
	cfg := Config{HotRatio: 0.05, MaxPairsPerBatch: 32}

	first, err := Build(counts, batches, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Validate(); err != nil {
		t.Fatal(err)
	}
	for run := 1; run < 20; run++ {
		b, err := Build(counts, batches, cfg)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		for i := range first.Forward {
			if b.Forward[i] != first.Forward[i] {
				t.Fatalf("run %d: Forward[%d] = %d, run 0 had %d — bijection is not deterministic",
					run, i, b.Forward[i], first.Forward[i])
			}
		}
		for i := range first.Inverse {
			if b.Inverse[i] != first.Inverse[i] {
				t.Fatalf("run %d: Inverse[%d] = %d, run 0 had %d — bijection is not deterministic",
					run, i, b.Inverse[i], first.Inverse[i])
			}
		}
	}
}
