// Package reorder implements the paper's locality-based index reordering
// (§IV): an offline bijection over the rows of one embedding table that
// (1) gathers the most frequently accessed ("hot") rows at the front using
// global access statistics, and (2) assigns the remaining rows contiguous
// ids community-by-community, where communities come from modularity-based
// detection (Louvain) on the index co-occurrence graph of Algorithm 2.
// Rows that are close in the new id space share TT-index prefixes, which
// multiplies the Eff-TT table's intermediate-result reuse.
package reorder

import (
	"fmt"
	"sort"

	"repro/internal/graphx"
)

// Config tunes bijection generation.
type Config struct {
	// HotRatio is the fraction of table rows treated as hot (Algorithm 2's
	// Hot_ratio); hot rows occupy the first ids, ordered by frequency, and
	// do not join the index graph.
	HotRatio float64
	// MaxGraphNodes caps the number of non-hot rows that join the index
	// graph; colder rows keep their frequency order. Bounds memory on huge
	// tables. 0 means a default of 1<<20.
	MaxGraphNodes int
	// MaxPairsPerBatch caps the number of co-occurrence edges generated per
	// batch (Algorithm 2's self_combinations is quadratic in batch size);
	// beyond the cap, a deterministic stride subsamples pairs. 0 means a
	// default of 1<<16.
	MaxPairsPerBatch int
}

// DefaultConfig mirrors the paper's setup: 5% hot rows.
func DefaultConfig() Config {
	return Config{HotRatio: 0.05}
}

func (c *Config) normalize() {
	if c.MaxGraphNodes == 0 {
		c.MaxGraphNodes = 1 << 20
	}
	if c.MaxPairsPerBatch == 0 {
		c.MaxPairsPerBatch = 1 << 16
	}
}

// Bijection is a permutation of one table's row ids.
type Bijection struct {
	Forward []int32 // Forward[raw] = new id
	Inverse []int32 // Inverse[new] = raw id
}

// Identity returns the identity bijection over n rows.
func Identity(n int) *Bijection {
	b := &Bijection{Forward: make([]int32, n), Inverse: make([]int32, n)}
	for i := range b.Forward {
		b.Forward[i] = int32(i)
		b.Inverse[i] = int32(i)
	}
	return b
}

// Apply maps raw indices to reordered indices, returning a new slice.
func (b *Bijection) Apply(indices []int) []int {
	out := make([]int, len(indices))
	for i, idx := range indices {
		out[i] = int(b.Forward[idx])
	}
	return out
}

// ApplyInPlace maps raw indices to reordered indices in place.
func (b *Bijection) ApplyInPlace(indices []int) {
	for i, idx := range indices {
		indices[i] = int(b.Forward[idx])
	}
}

// Len returns the table size the bijection covers.
func (b *Bijection) Len() int { return len(b.Forward) }

// Validate reports whether the bijection is a permutation.
func (b *Bijection) Validate() error {
	if len(b.Forward) != len(b.Inverse) {
		return fmt.Errorf("reorder: forward/inverse length mismatch %d/%d", len(b.Forward), len(b.Inverse))
	}
	seen := make([]bool, len(b.Forward))
	for raw, nw := range b.Forward {
		if nw < 0 || int(nw) >= len(b.Forward) {
			return fmt.Errorf("reorder: Forward[%d] = %d out of range", raw, nw)
		}
		if seen[nw] {
			return fmt.Errorf("reorder: new id %d assigned twice", nw)
		}
		seen[nw] = true
		if b.Inverse[nw] != int32(raw) {
			return fmt.Errorf("reorder: Inverse[%d] = %d want %d", nw, b.Inverse[nw], raw)
		}
	}
	return nil
}

// FrequencyOrder returns rank[idx] = frequency rank of row idx
// (0 = most accessed; ties broken by row id for determinism). This is the
// Fre_order input of Algorithm 2.
func FrequencyOrder(counts []int64) []int {
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if counts[order[a]] != counts[order[b]] {
			return counts[order[a]] > counts[order[b]]
		}
		return order[a] < order[b]
	})
	rank := make([]int, len(counts))
	for r, idx := range order {
		rank[idx] = r
	}
	return rank
}

// BuildIndexGraph implements Algorithm 2: every batch contributes an edge
// between each pair of distinct non-hot rows it touches (in frequency-rank
// space shifted by the hot threshold). graphNodes is the number of non-hot
// ranks participating.
func BuildIndexGraph(rank []int, batches [][]int, hotCount, graphNodes, maxPairs int) *graphx.Graph {
	g := graphx.NewGraph(graphNodes)
	var nodes []int
	for _, batch := range batches {
		nodes = nodes[:0]
		seen := make(map[int]struct{}, len(batch))
		for _, idx := range batch {
			r := rank[idx]
			// Hot rows (rank below the threshold) clamp to the front and
			// generate no edges; ranks beyond the graph cap are skipped.
			if r < hotCount || r >= hotCount+graphNodes {
				continue
			}
			node := r - hotCount
			if _, ok := seen[node]; ok {
				continue
			}
			seen[node] = struct{}{}
			nodes = append(nodes, node)
		}
		addPairEdges(g, nodes, maxPairs)
	}
	return g
}

// addPairEdges adds self-combination edges among nodes, deterministically
// subsampling with a stride when the pair count exceeds maxPairs.
func addPairEdges(g *graphx.Graph, nodes []int, maxPairs int) {
	n := len(nodes)
	total := n * (n - 1) / 2
	if total == 0 {
		return
	}
	stride := 1
	if total > maxPairs {
		stride = (total + maxPairs - 1) / maxPairs
	}
	pair := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pair%stride == 0 {
				g.AddEdge(nodes[i], nodes[j], 1)
			}
			pair++
		}
	}
}

// Build generates the index bijection of one table from its access counts
// (global information) and a sample of batched indices (local information).
// The pipeline is Figure 8: frequency ordering → index graph → community
// detection → contiguous id assignment. Build runs offline; applying the
// bijection at train time is a single array lookup per index.
func Build(counts []int64, batches [][]int, cfg Config) (*Bijection, error) {
	cfg.normalize()
	n := len(counts)
	if n == 0 {
		return nil, fmt.Errorf("reorder: empty counts")
	}
	if cfg.HotRatio < 0 || cfg.HotRatio > 1 {
		return nil, fmt.Errorf("reorder: hot ratio %v outside [0,1]", cfg.HotRatio)
	}
	for bi, batch := range batches {
		for _, idx := range batch {
			if idx < 0 || idx >= n {
				return nil, fmt.Errorf("reorder: batch %d contains index %d outside [0,%d)", bi, idx, n)
			}
		}
	}

	rank := FrequencyOrder(counts)
	hotCount := int(cfg.HotRatio * float64(n))
	graphNodes := n - hotCount
	if graphNodes > cfg.MaxGraphNodes {
		graphNodes = cfg.MaxGraphNodes
	}

	// newOfRank[r] = final id of the row holding frequency rank r.
	newOfRank := make([]int32, n)
	// Hot block: ids 0..hotCount-1 in frequency order.
	for r := 0; r < hotCount; r++ {
		newOfRank[r] = int32(r)
	}
	// Tail beyond the graph: keep frequency order.
	for r := hotCount + graphNodes; r < n; r++ {
		newOfRank[r] = int32(r)
	}

	if graphNodes > 0 {
		g := BuildIndexGraph(rank, batches, hotCount, graphNodes, cfg.MaxPairsPerBatch)
		comm := graphx.Louvain(g)

		// Order nodes by (community weight desc, community id, rank asc):
		// heavier communities land earlier; within a community the hotter
		// rows come first.
		weight := make(map[int]float64)
		for node, c := range comm {
			weight[c] += g.Degree(node)
		}
		nodes := make([]int, graphNodes)
		for i := range nodes {
			nodes[i] = i
		}
		sort.SliceStable(nodes, func(a, b int) bool {
			ca, cb := comm[nodes[a]], comm[nodes[b]]
			if ca != cb {
				if weight[ca] != weight[cb] {
					return weight[ca] > weight[cb]
				}
				return ca < cb
			}
			return nodes[a] < nodes[b]
		})
		for seq, node := range nodes {
			newOfRank[hotCount+node] = int32(hotCount + seq)
		}
	}

	bij := &Bijection{Forward: make([]int32, n), Inverse: make([]int32, n)}
	for raw := 0; raw < n; raw++ {
		nw := newOfRank[rank[raw]]
		bij.Forward[raw] = nw
		bij.Inverse[nw] = int32(raw)
	}
	return bij, nil
}
