package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/embedding"
	"repro/internal/tt"
)

func TestTrainingRoundTripRestoresStateAndIter(t *testing.T) {
	d, _ := data.New(ckptSpec())
	src := buildModel(t, 30)
	for it := 0; it < 8; it++ {
		src.TrainStep(d.Batch(it, 32))
	}
	var buf bytes.Buffer
	if err := SaveTraining(&buf, src, nil, TrainState{NextIter: 8}); err != nil {
		t.Fatal(err)
	}
	dst := buildModel(t, 31)
	st, err := LoadTraining(bytes.NewReader(buf.Bytes()), dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NextIter != 8 {
		t.Fatalf("NextIter = %d want 8", st.NextIter)
	}
	probe := d.Batch(50, 16)
	if diff := dst.Forward(probe).MaxAbsDiff(src.Forward(probe)); diff != 0 {
		t.Fatalf("restored training state deviates by %v", diff)
	}
}

func TestTrainingFileAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "train.ckpt")
	src := buildModel(t, 32)
	n, err := SaveTrainingFile(path, src, nil, TrainState{NextIter: 120})
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != n {
		t.Fatalf("SaveTrainingFile reported %d bytes, file has %v (%v)", n, fi, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	dst := buildModel(t, 33)
	st, err := LoadTrainingFile(path, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NextIter != 120 {
		t.Fatalf("NextIter = %d want 120", st.NextIter)
	}
	if _, err := SaveTrainingFile(filepath.Join(t.TempDir(), "no", "dir", "x.ckpt"), src, nil, TrainState{}); err == nil {
		t.Fatal("save to bad path succeeded")
	}
}

// TestTrainingRejectsModelEnvelope checks the two envelopes are not
// interchangeable: a model file is not a training checkpoint and vice versa.
func TestTrainingRejectsModelEnvelope(t *testing.T) {
	m := buildModel(t, 34)
	var model, training bytes.Buffer
	if err := SaveModel(&model, m); err != nil {
		t.Fatal(err)
	}
	if err := SaveTraining(&training, m, nil, TrainState{NextIter: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTraining(bytes.NewReader(model.Bytes()), m, nil); err == nil {
		t.Fatal("model file accepted as a training checkpoint")
	}
	if err := LoadModel(bytes.NewReader(training.Bytes()), m); err == nil {
		t.Fatal("training checkpoint accepted as a model file")
	}
}

// TestAdagradBagRoundTrip covers the optimizer-state table kind: the dense
// bag plus its per-row Adagrad accumulator survive the round trip exactly.
func TestAdagradBagRoundTrip(t *testing.T) {
	build := func(seed uint64) (*dlrm.Model, *embedding.AdagradBag) {
		bag := embedding.NewAdagradBag(embedding.NewBag(64, 8, tensorRNG(seed)))
		m, err := dlrm.NewModel(dlrm.Config{
			NumDense: 3, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 0.5, Seed: seed,
		}, []dlrm.Table{bag})
		if err != nil {
			t.Fatal(err)
		}
		return m, bag
	}
	src, srcBag := build(40)
	spec := ckptSpec()
	spec.TableRows = []int{64}
	d, err := data.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 6; it++ {
		src.TrainStep(d.Batch(it, 32))
	}
	var buf bytes.Buffer
	if err := SaveTraining(&buf, src, nil, TrainState{NextIter: 6}); err != nil {
		t.Fatal(err)
	}
	dst, dstBag := build(41)
	if _, err := LoadTraining(bytes.NewReader(buf.Bytes()), dst, nil); err != nil {
		t.Fatal(err)
	}
	if diff := dstBag.Weights.MaxAbsDiff(srcBag.Weights); diff != 0 {
		t.Fatalf("weights deviate by %v", diff)
	}
	for r := 0; r < 64; r++ {
		want, got := srcBag.AccumRow(r), dstBag.AccumRow(r)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("Adagrad accumulator row %d deviates", r)
			}
		}
	}
}

// TestResolverSubstitutesTables checks TableResolver on both paths: a model
// whose table is a non-serializable wrapper saves and loads through the
// resolved backing bag (the pipeline-adapter scenario).
func TestResolverSubstitutesTables(t *testing.T) {
	backing := embedding.NewBag(32, 8, tensorRNG(50))
	m, err := dlrm.NewModel(dlrm.Config{
		NumDense: 3, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 0.5, Seed: 50,
	}, []dlrm.Table{unsupportedTable{backing}})
	if err != nil {
		t.Fatal(err)
	}
	resolve := func(i int, tbl dlrm.Table) dlrm.Table {
		if w, ok := tbl.(unsupportedTable); ok {
			return w.Table
		}
		return tbl
	}
	var buf bytes.Buffer
	if err := SaveTraining(&buf, m, nil, TrainState{}); err == nil {
		t.Fatal("wrapper table saved without a resolver")
	}
	buf.Reset()
	if err := SaveTraining(&buf, m, resolve, TrainState{NextIter: 3}); err != nil {
		t.Fatal(err)
	}
	restored := embedding.NewBag(32, 8, tensorRNG(51))
	m2, err := dlrm.NewModel(dlrm.Config{
		NumDense: 3, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 0.5, Seed: 51,
	}, []dlrm.Table{unsupportedTable{restored}})
	if err != nil {
		t.Fatal(err)
	}
	resolve2 := func(i int, tbl dlrm.Table) dlrm.Table {
		if w, ok := tbl.(unsupportedTable); ok {
			return w.Table
		}
		return tbl
	}
	st, err := LoadTraining(bytes.NewReader(buf.Bytes()), m2, resolve2)
	if err != nil {
		t.Fatal(err)
	}
	if st.NextIter != 3 {
		t.Fatalf("NextIter = %d want 3", st.NextIter)
	}
	if diff := restored.Weights.MaxAbsDiff(backing.Weights); diff != 0 {
		t.Fatalf("resolved table deviates by %v", diff)
	}
}

// TestMixedTTTrainingCheckpoint round-trips the Figure 16 configuration —
// a device TT table next to a dense bag — through the training envelope.
func TestMixedTTTrainingCheckpoint(t *testing.T) {
	d, _ := data.New(ckptSpec())
	src := buildModel(t, 60)
	src.Tables[1].(*tt.Table).EnableAdagrad()
	for it := 0; it < 5; it++ {
		src.TrainStep(d.Batch(it, 32))
	}
	var buf bytes.Buffer
	if err := SaveTraining(&buf, src, nil, TrainState{NextIter: 5}); err != nil {
		t.Fatal(err)
	}
	dst := buildModel(t, 61)
	if _, err := LoadTraining(bytes.NewReader(buf.Bytes()), dst, nil); err != nil {
		t.Fatal(err)
	}
	if !dst.Tables[1].(*tt.Table).AdagradEnabled() {
		t.Fatal("TT Adagrad state lost through the training envelope")
	}
	probe := d.Batch(40, 16)
	if diff := dst.Forward(probe).MaxAbsDiff(src.Forward(probe)); diff != 0 {
		t.Fatalf("mixed checkpoint deviates by %v", diff)
	}
}
