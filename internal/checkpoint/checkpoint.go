// Package checkpoint serializes and restores trained DLRM state — MLP
// parameters, uncompressed embedding tables and TT-compressed tables
// (including Adagrad accumulators) — in a small versioned binary format.
// A downstream user trains with EL-Rec, checkpoints, and serves or resumes
// later; the paper's artifact has the same facility through PyTorch.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dlrm"
	"repro/internal/embedding"
	"repro/internal/tensor"
	"repro/internal/tt"
)

// Format constants. Version 2 adds the Adagrad-wrapped dense bag kind and
// the training-state envelope; version-1 model files remain readable.
// Version 3 adds the remote-table skip marker (a table whose rows live on
// a distps parameter-server shard and are checkpointed there).
const (
	magic      = uint32(0xE17EC001)
	trainMagic = uint32(0xE17EC7A1)
	version    = uint32(3)

	kindBag        = uint8(0)
	kindTT         = uint8(1)
	kindGeneralTT  = uint8(2)
	kindAdagradBag = uint8(3)
	kindRemote     = uint8(4)
)

// ErrCorruptCheckpoint reports that a checkpoint file is truncated or not
// a checkpoint at all (bad magic, impossible version, or an EOF in the
// middle of a record). Restores distinguish it from architecture-mismatch
// errors: a corrupt file calls for falling back to an older checkpoint,
// a mismatch calls for fixing the model configuration.
var ErrCorruptCheckpoint = errors.New("checkpoint: corrupt or truncated checkpoint")

// corrupt classifies decode errors: an EOF (clean or mid-record) while
// restoring means the file ends before the format says it should — a torn
// or truncated checkpoint — and is wrapped in ErrCorruptCheckpoint.
// Shape/kind mismatches and I/O errors pass through unchanged.
func corrupt(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %w", ErrCorruptCheckpoint, err)
	}
	return err
}

// TableResolver substitutes a model table with its checkpointable backing
// store before serialization. The pipeline trainer uses it to map its
// parameter-server adapters to the host-memory bags they front; nil keeps
// every table as-is.
type TableResolver func(i int, t dlrm.Table) dlrm.Table

// TrainState is the durable training progress written around a model
// snapshot: the next iteration a resumed run should train.
type TrainState struct {
	NextIter int
}

// SaveModel writes the model's dense parameters and every embedding table
// to w. Tables must be *embedding.Bag, *embedding.AdagradBag, *tt.Table or
// *tt.GeneralTable (the trainable kinds); baseline executors and pipeline
// adapters need a TableResolver (see SaveTraining) that maps them to their
// backing store.
func SaveModel(w io.Writer, m *dlrm.Model) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, magic); err != nil {
		return err
	}
	if err := writeModelBody(bw, m, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadModel restores state saved by SaveModel into a model with the same
// architecture (same parameter shapes, table kinds and table shapes). The
// body must be followed by EOF: trailing bytes mean the file is not one
// clean checkpoint (a concatenation, a torn rename, a partially overwritten
// file) and are rejected with ErrCorruptCheckpoint.
func LoadModel(r io.Reader, m *dlrm.Model) error {
	br := bufio.NewReader(r)
	if err := readHeader(br, magic); err != nil {
		return err
	}
	if err := corrupt(readModelBody(br, m, nil)); err != nil {
		return err
	}
	return expectEOF(br)
}

// SaveTraining writes a training-state checkpoint: the iteration counter
// followed by the full model snapshot (dense parameters, embedding tables,
// optimizer state). resolve maps wrapper tables to their backing store and
// may be nil.
func SaveTraining(w io.Writer, m *dlrm.Model, resolve TableResolver, st TrainState) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, trainMagic); err != nil {
		return err
	}
	if err := writeInt(bw, st.NextIter); err != nil {
		return err
	}
	if err := writeModelBody(bw, m, resolve); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadTraining restores a checkpoint saved by SaveTraining and returns the
// recorded training state. Like LoadModel, it requires EOF after the body:
// trailing bytes are rejected with ErrCorruptCheckpoint.
func LoadTraining(r io.Reader, m *dlrm.Model, resolve TableResolver) (TrainState, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, trainMagic); err != nil {
		return TrainState{}, err
	}
	next, err := readInt(br)
	if err != nil {
		return TrainState{}, corrupt(err)
	}
	if err := readModelBody(br, m, resolve); err != nil {
		return TrainState{}, corrupt(err)
	}
	if err := expectEOF(br); err != nil {
		return TrainState{}, err
	}
	return TrainState{NextIter: next}, nil
}

// expectEOF rejects bytes after the checkpoint body. A format that reads
// exactly what it wrote would otherwise silently accept a concatenated or
// torn-rename file as "the prefix parsed fine" — the same class of
// corruption the truncation checks catch at the other end of the file.
func expectEOF(br *bufio.Reader) error {
	if _, err := br.ReadByte(); err == nil {
		return fmt.Errorf("%w: trailing bytes after checkpoint body", ErrCorruptCheckpoint)
	} else if !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// writeModelBody serializes the dense parameters and tables (post-resolve).
func writeModelBody(bw *bufio.Writer, m *dlrm.Model, resolve TableResolver) error {
	params := m.MLPParams()
	if err := writeInt(bw, len(params)); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeMatrix(bw, p.Value); err != nil {
			return fmt.Errorf("checkpoint: param %s: %w", p.Name, err)
		}
	}
	if err := writeInt(bw, len(m.Tables)); err != nil {
		return err
	}
	for i, table := range m.Tables {
		if resolve != nil {
			table = resolve(i, table)
		}
		if err := writeTable(bw, i, table); err != nil {
			return err
		}
	}
	return nil
}

// readModelBody restores what writeModelBody wrote.
func readModelBody(br *bufio.Reader, m *dlrm.Model, resolve TableResolver) error {
	nParams, err := readInt(br)
	if err != nil {
		return err
	}
	params := m.MLPParams()
	if nParams != len(params) {
		return fmt.Errorf("checkpoint: %d dense parameters in file, model has %d", nParams, len(params))
	}
	for _, p := range params {
		if err := readMatrixInto(br, p.Value); err != nil {
			return fmt.Errorf("checkpoint: param %s: %w", p.Name, err)
		}
	}
	nTables, err := readInt(br)
	if err != nil {
		return err
	}
	if nTables != len(m.Tables) {
		return fmt.Errorf("checkpoint: %d tables in file, model has %d", nTables, len(m.Tables))
	}
	for i, table := range m.Tables {
		if resolve != nil {
			table = resolve(i, table)
		}
		if err := readTable(br, i, table); err != nil {
			return err
		}
	}
	return nil
}

// writeTable serializes one (resolved) embedding table. A nil table (the
// resolver's "rows live on a remote shard" answer) writes only a skip
// marker: the shard checkpoints those rows itself, and the restore side
// must resolve the same table to nil.
func writeTable(bw *bufio.Writer, i int, table dlrm.Table) error {
	if table == nil {
		return bw.WriteByte(kindRemote)
	}
	switch tbl := table.(type) {
	case *embedding.Bag:
		if err := bw.WriteByte(kindBag); err != nil {
			return err
		}
		if err := writeMatrix(bw, tbl.Weights); err != nil {
			return fmt.Errorf("checkpoint: table %d: %w", i, err)
		}
	case *embedding.AdagradBag:
		if err := bw.WriteByte(kindAdagradBag); err != nil {
			return err
		}
		if err := writeAdagradBag(bw, tbl); err != nil {
			return fmt.Errorf("checkpoint: table %d: %w", i, err)
		}
	case *tt.Table:
		if err := bw.WriteByte(kindTT); err != nil {
			return err
		}
		if err := writeTT(bw, tbl); err != nil {
			return fmt.Errorf("checkpoint: table %d: %w", i, err)
		}
	case *tt.GeneralTable:
		if err := bw.WriteByte(kindGeneralTT); err != nil {
			return err
		}
		if err := writeGeneralTT(bw, tbl); err != nil {
			return fmt.Errorf("checkpoint: table %d: %w", i, err)
		}
	default:
		return fmt.Errorf("checkpoint: table %d has unsupported type %T", i, table)
	}
	return nil
}

// readTable restores one (resolved) embedding table.
func readTable(br *bufio.Reader, i int, table dlrm.Table) error {
	kind, err := br.ReadByte()
	if err != nil {
		return err
	}
	if table == nil {
		if kind != kindRemote {
			return fmt.Errorf("checkpoint: table %d kind %d, model expects a remote-table marker", i, kind)
		}
		return nil
	}
	if kind == kindRemote {
		return fmt.Errorf("checkpoint: table %d is a remote-table marker, model expects local state", i)
	}
	switch tbl := table.(type) {
	case *embedding.Bag:
		if kind != kindBag {
			return fmt.Errorf("checkpoint: table %d kind %d, model expects dense bag", i, kind)
		}
		if err := readMatrixInto(br, tbl.Weights); err != nil {
			return fmt.Errorf("checkpoint: table %d: %w", i, err)
		}
	case *embedding.AdagradBag:
		if kind != kindAdagradBag {
			return fmt.Errorf("checkpoint: table %d kind %d, model expects Adagrad bag", i, kind)
		}
		if err := readAdagradBagInto(br, tbl); err != nil {
			return fmt.Errorf("checkpoint: table %d: %w", i, err)
		}
	case *tt.Table:
		if kind != kindTT {
			return fmt.Errorf("checkpoint: table %d kind %d, model expects TT table", i, kind)
		}
		if err := readTTInto(br, tbl); err != nil {
			return fmt.Errorf("checkpoint: table %d: %w", i, err)
		}
	case *tt.GeneralTable:
		if kind != kindGeneralTT {
			return fmt.Errorf("checkpoint: table %d kind %d, model expects general TT table", i, kind)
		}
		if err := readGeneralTTInto(br, tbl); err != nil {
			return fmt.Errorf("checkpoint: table %d: %w", i, err)
		}
	default:
		return fmt.Errorf("checkpoint: table %d has unsupported type %T", i, table)
	}
	return nil
}

// SaveFile writes the model to path crash-consistently: the bytes land in a
// temp file that is fsynced before an atomic rename, so a crash leaves
// either the old checkpoint or the new one, never a torn file.
func SaveFile(path string, m *dlrm.Model) error {
	_, err := writeFileAtomic(path, func(f *os.File) error { return SaveModel(f, m) })
	return err
}

// LoadFile restores a model from path.
func LoadFile(path string, m *dlrm.Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadModel(f, m)
}

// SaveTrainingFile writes a training-state checkpoint to path with the same
// crash-consistency guarantee as SaveFile, returning the checkpoint size in
// bytes so callers can account for checkpoint I/O.
func SaveTrainingFile(path string, m *dlrm.Model, resolve TableResolver, st TrainState) (int64, error) {
	return writeFileAtomic(path, func(f *os.File) error { return SaveTraining(f, m, resolve, st) })
}

// LoadTrainingFile restores a training-state checkpoint from path.
func LoadTrainingFile(path string, m *dlrm.Model, resolve TableResolver) (TrainState, error) {
	f, err := os.Open(path)
	if err != nil {
		return TrainState{}, err
	}
	defer f.Close()
	return LoadTraining(f, m, resolve)
}

// WriteFileAtomic runs write against path+".tmp", fsyncs the file, renames
// it over path, and fsyncs the parent directory so the rename itself is
// durable — without the directory sync a crash shortly after rename can
// recover to a directory that still names the old file (or none). It
// returns the bytes written; the temp file is removed on any failure.
// Other packages (distps shard checkpoints) reuse it for their own durable
// state files.
func WriteFileAtomic(path string, write func(w io.Writer) error) (int64, error) {
	return writeFileAtomic(path, func(f *os.File) error { return write(f) })
}

// writeFileAtomic is WriteFileAtomic over the concrete *os.File.
func writeFileAtomic(path string, write func(*os.File) error) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	var size int64
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return size, syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Platforms whose directory handles reject Sync (some network and Windows
// filesystems) degrade to rename-only durability rather than failing the
// checkpoint.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// --- TT section ------------------------------------------------------------

func writeTT(w io.Writer, tbl *tt.Table) error {
	s := tbl.Shape
	header := []int{s.Rows, s.Dim, s.RowFactors[0], s.RowFactors[1], s.RowFactors[2],
		s.ColFactors[0], s.ColFactors[1], s.ColFactors[2], s.R1, s.R2}
	for _, v := range header {
		if err := writeInt(w, v); err != nil {
			return err
		}
	}
	for k := 0; k < tt.Dims; k++ {
		if err := writeMatrix(w, tbl.Cores[k]); err != nil {
			return err
		}
	}
	hasAdagrad := uint8(0)
	if tbl.AdagradEnabled() {
		hasAdagrad = 1
	}
	if err := binary.Write(w, binary.LittleEndian, hasAdagrad); err != nil {
		return err
	}
	if hasAdagrad == 1 {
		for k := 0; k < tt.Dims; k++ {
			if err := writeMatrix(w, tbl.AdagradAccum(k)); err != nil {
				return err
			}
		}
	}
	return nil
}

func readTTInto(r io.Reader, tbl *tt.Table) error {
	s := tbl.Shape
	want := []int{s.Rows, s.Dim, s.RowFactors[0], s.RowFactors[1], s.RowFactors[2],
		s.ColFactors[0], s.ColFactors[1], s.ColFactors[2], s.R1, s.R2}
	for i, w := range want {
		got, err := readInt(r)
		if err != nil {
			return err
		}
		if got != w {
			return fmt.Errorf("checkpoint: TT shape field %d is %d, model has %d", i, got, w)
		}
	}
	for k := 0; k < tt.Dims; k++ {
		if err := readMatrixInto(r, tbl.Cores[k]); err != nil {
			return err
		}
	}
	// Restoring writes core storage behind the version counters' back, so
	// any cross-batch prefix products are stale.
	tbl.InvalidatePrefixCache()
	var hasAdagrad uint8
	if err := binary.Read(r, binary.LittleEndian, &hasAdagrad); err != nil {
		return err
	}
	if hasAdagrad == 1 {
		tbl.EnableAdagrad()
		for k := 0; k < tt.Dims; k++ {
			if err := readMatrixInto(r, tbl.AdagradAccum(k)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeGeneralTT serializes an arbitrary-order TT table: d, the shape
// vectors, then the cores.
func writeGeneralTT(w io.Writer, tbl *tt.GeneralTable) error {
	s := tbl.Shape
	if err := writeInt(w, s.D()); err != nil {
		return err
	}
	header := []int{s.Rows, s.Dim}
	header = append(header, s.RowFactors...)
	header = append(header, s.ColFactors...)
	header = append(header, s.Ranks...)
	for _, v := range header {
		if err := writeInt(w, v); err != nil {
			return err
		}
	}
	for _, core := range tbl.Cores {
		if err := writeMatrix(w, core); err != nil {
			return err
		}
	}
	return nil
}

func readGeneralTTInto(r io.Reader, tbl *tt.GeneralTable) error {
	s := tbl.Shape
	d, err := readInt(r)
	if err != nil {
		return err
	}
	if d != s.D() {
		return fmt.Errorf("checkpoint: general TT has %d cores in file, model has %d", d, s.D())
	}
	want := []int{s.Rows, s.Dim}
	want = append(want, s.RowFactors...)
	want = append(want, s.ColFactors...)
	want = append(want, s.Ranks...)
	for i, w := range want {
		got, err := readInt(r)
		if err != nil {
			return err
		}
		if got != w {
			return fmt.Errorf("checkpoint: general TT shape field %d is %d, model has %d", i, got, w)
		}
	}
	for _, core := range tbl.Cores {
		if err := readMatrixInto(r, core); err != nil {
			return err
		}
	}
	return nil
}

// --- primitives -------------------------------------------------------------

func writeHeader(w io.Writer, wantMagic uint32) error {
	if err := binary.Write(w, binary.LittleEndian, wantMagic); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, version)
}

func readHeader(r io.Reader, wantMagic uint32) error {
	var m, v uint32
	if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
		return corrupt(fmt.Errorf("checkpoint: reading magic: %w", err))
	}
	if m != wantMagic {
		return fmt.Errorf("%w: bad magic %#x (not a checkpoint file of the expected kind?)", ErrCorruptCheckpoint, m)
	}
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
		return corrupt(fmt.Errorf("checkpoint: reading version: %w", err))
	}
	if v < 1 || v > version {
		return fmt.Errorf("checkpoint: unsupported version %d", v)
	}
	return nil
}

// writeAdagradBag serializes a dense bag plus its Adagrad accumulator (the
// optimizer state).
func writeAdagradBag(w io.Writer, bag *embedding.AdagradBag) error {
	if err := writeMatrix(w, bag.Weights); err != nil {
		return err
	}
	rows, dim := bag.NumRows(), bag.Dim()
	if err := writeInt(w, rows); err != nil {
		return err
	}
	if err := writeInt(w, dim); err != nil {
		return err
	}
	for r := 0; r < rows; r++ {
		if err := binary.Write(w, binary.LittleEndian, bag.AccumRow(r)); err != nil {
			return err
		}
	}
	return nil
}

// readAdagradBagInto restores a dense bag and its Adagrad accumulator.
func readAdagradBagInto(r io.Reader, bag *embedding.AdagradBag) error {
	if err := readMatrixInto(r, bag.Weights); err != nil {
		return err
	}
	rows, err := readInt(r)
	if err != nil {
		return err
	}
	dim, err := readInt(r)
	if err != nil {
		return err
	}
	if rows != bag.NumRows() || dim != bag.Dim() {
		return fmt.Errorf("checkpoint: Adagrad accumulator %dx%d in file, model has %dx%d", rows, dim, bag.NumRows(), bag.Dim())
	}
	for row := 0; row < rows; row++ {
		if err := binary.Read(r, binary.LittleEndian, bag.AccumRow(row)); err != nil {
			return err
		}
	}
	return nil
}

func writeInt(w io.Writer, v int) error {
	return binary.Write(w, binary.LittleEndian, int64(v))
}

func readInt(r io.Reader) (int, error) {
	var v int64
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
		return 0, err
	}
	return int(v), nil
}

func writeMatrix(w io.Writer, m *tensor.Matrix) error {
	if err := writeInt(w, m.Rows); err != nil {
		return err
	}
	if err := writeInt(w, m.Cols); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, m.Data)
}

func readMatrixInto(r io.Reader, m *tensor.Matrix) error {
	rows, err := readInt(r)
	if err != nil {
		return err
	}
	cols, err := readInt(r)
	if err != nil {
		return err
	}
	if rows != m.Rows || cols != m.Cols {
		return fmt.Errorf("checkpoint: matrix %dx%d in file, model has %dx%d", rows, cols, m.Rows, m.Cols)
	}
	return binary.Read(r, binary.LittleEndian, m.Data)
}
