package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/tensor"
	"repro/internal/tt"
)

// tensorRNG is a shorthand for seeded generators in tests.
func tensorRNG(seed uint64) *tensor.RNG { return tensor.NewRNG(seed) }

func ckptSpec() data.Spec {
	return data.Spec{
		Name: "ckpt", NumDense: 3, TableRows: []int{200, 1500},
		ZipfS: 1.2, ZipfV: 2, GroupSize: 16, ActiveGroups: 4, Locality: 0.8,
		Samples: 1 << 20, Seed: 51,
	}
}

// buildModel builds a mixed model: table 0 dense, table 1 TT.
func buildModel(t *testing.T, seed uint64) *dlrm.Model {
	t.Helper()
	tables, n, err := dlrm.BuildTables(ckptSpec().TableRows,
		dlrm.TableSpec{Dim: 8, Rank: 4, TTThreshold: 1000, Opts: tt.EffOptions(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("expected 1 compressed table, got %d", n)
	}
	m, err := dlrm.NewModel(dlrm.Config{
		NumDense: 3, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 0.5, Seed: seed,
	}, tables)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRoundTripRestoresPredictions(t *testing.T) {
	d, _ := data.New(ckptSpec())
	src := buildModel(t, 1)
	for it := 0; it < 10; it++ {
		src.TrainStep(d.Batch(it, 32))
	}

	var buf bytes.Buffer
	if err := SaveModel(&buf, src); err != nil {
		t.Fatal(err)
	}

	// A fresh model with different init must predict differently, then
	// identically after loading.
	dst := buildModel(t, 999)
	probe := d.Batch(50, 16)
	before := dst.Forward(probe)
	want := src.Forward(probe)
	if before.MaxAbsDiff(want) == 0 {
		t.Fatal("fresh model already matches; test has no power")
	}
	if err := LoadModel(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	after := dst.Forward(probe)
	if d := after.MaxAbsDiff(want); d != 0 {
		t.Fatalf("restored model deviates by %v", d)
	}
}

func TestRoundTripAdagradState(t *testing.T) {
	src := buildModel(t, 2)
	ttTbl := src.Tables[1].(*tt.Table)
	ttTbl.EnableAdagrad()
	d, _ := data.New(ckptSpec())
	for it := 0; it < 5; it++ {
		src.TrainStep(d.Batch(it, 32))
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := buildModel(t, 3)
	if err := LoadModel(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	got := dst.Tables[1].(*tt.Table)
	if !got.AdagradEnabled() {
		t.Fatal("Adagrad state not restored")
	}
	for k := 0; k < tt.Dims; k++ {
		if d := got.AdagradAccum(k).MaxAbsDiff(ttTbl.AdagradAccum(k)); d != 0 {
			t.Fatalf("accumulator %d deviates by %v", k, d)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	src := buildModel(t, 4)
	if err := SaveFile(path, src); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	dst := buildModel(t, 5)
	if err := LoadFile(path, dst); err != nil {
		t.Fatal(err)
	}
	d, _ := data.New(ckptSpec())
	probe := d.Batch(0, 8)
	if src.Forward(probe).MaxAbsDiff(dst.Forward(probe)) != 0 {
		t.Fatal("file round trip changed predictions")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	m := buildModel(t, 6)
	if err := LoadModel(bytes.NewReader([]byte("not a checkpoint")), m); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated valid header.
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := LoadModel(bytes.NewReader(buf.Bytes()[:20]), m); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestLoadRejectsArchitectureMismatch(t *testing.T) {
	src := buildModel(t, 7)
	var buf bytes.Buffer
	if err := SaveModel(&buf, src); err != nil {
		t.Fatal(err)
	}
	// A model with a different table shape must be rejected.
	tables, _, err := dlrm.BuildTables([]int{200, 3000},
		dlrm.TableSpec{Dim: 8, Rank: 4, TTThreshold: 1000, Opts: tt.EffOptions(), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	other, err := dlrm.NewModel(dlrm.Config{
		NumDense: 3, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 0.5, Seed: 8,
	}, tables)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadModel(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
}

func TestSaveRejectsUnsupportedTable(t *testing.T) {
	// A model whose table is neither Bag nor tt.Table (here: a pipeline
	// adapter stand-in via an anonymous implementation) cannot be saved.
	m := buildModel(t, 9)
	m.Tables[0] = unsupportedTable{m.Tables[0]}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err == nil {
		t.Fatal("unsupported table type accepted")
	}
}

type unsupportedTable struct{ dlrm.Table }

// failingWriter errors after n bytes, exercising the write error paths.
type failingWriter struct{ remaining int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, errWriteFailed
	}
	n := len(p)
	if n > f.remaining {
		n = f.remaining
	}
	f.remaining -= n
	if n < len(p) {
		return n, errWriteFailed
	}
	return n, nil
}

var errWriteFailed = os.ErrClosed

func TestSaveWriteFailures(t *testing.T) {
	m := buildModel(t, 20)
	// Fail at several cut points: header, params, tables.
	for _, budget := range []int{0, 4, 30, 2000} {
		if err := SaveModel(&failingWriter{remaining: budget}, m); err == nil {
			t.Fatalf("save with %d-byte budget succeeded", budget)
		}
	}
}

func TestSaveFileToBadPath(t *testing.T) {
	m := buildModel(t, 21)
	if err := SaveFile("/nonexistent-dir/x/y.ckpt", m); err == nil {
		t.Fatal("save to bad path succeeded")
	}
	if err := LoadFile("/nonexistent-dir/x/y.ckpt", m); err == nil {
		t.Fatal("load from bad path succeeded")
	}
}

func TestLoadRejectsWrongVersionAndKind(t *testing.T) {
	m := buildModel(t, 22)
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version field (bytes 4..8).
	raw := append([]byte(nil), buf.Bytes()...)
	raw[4] = 0xFF
	if err := LoadModel(bytes.NewReader(raw), m); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Swap the first table kind byte: find it right after the MLP params.
	// Easier: load into a model whose table kinds are swapped.
	tables, _, err := dlrm.BuildTables([]int{200, 1500},
		dlrm.TableSpec{Dim: 8, Rank: 4, TTThreshold: 0, Opts: tt.EffOptions(), Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	allTT, err := dlrm.NewModel(dlrm.Config{
		NumDense: 3, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 0.5, Seed: 23,
	}, tables)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadModel(bytes.NewReader(buf.Bytes()), allTT); err == nil {
		t.Fatal("mismatched table kind accepted")
	}
}

func TestGeneralTTRoundTrip(t *testing.T) {
	shape, err := tt.NewGeneralShape(300, 16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	build := func(seed uint64) *dlrm.Model {
		gen := tt.NewGeneralTable(shape, tensorRNG(seed), 0.1)
		m, err := dlrm.NewModel(dlrm.Config{
			NumDense: 2, EmbDim: 16, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 0.5, Seed: seed,
		}, []dlrm.Table{gen})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	src := build(1)
	var buf bytes.Buffer
	if err := SaveModel(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := build(2)
	if err := LoadModel(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	a := src.Tables[0].(*tt.GeneralTable).Materialize()
	b := dst.Tables[0].(*tt.GeneralTable).Materialize()
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("general TT round trip changed the table")
	}
	// Mismatched depth rejected.
	shape5, _ := tt.NewGeneralShape(300, 16, 2, 3)
	other, err := dlrm.NewModel(dlrm.Config{
		NumDense: 2, EmbDim: 16, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 0.5, Seed: 3,
	}, []dlrm.Table{tt.NewGeneralTable(shape5, tensorRNG(3), 0.1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadModel(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("depth mismatch accepted")
	}
}

// TestLoadTruncationTable saves a full training checkpoint, then replays
// the load against a table of truncation points spanning every section of
// the file — magic, header, MLP parameters, table records, and the
// training-state trailer. Every strict prefix must fail with the typed
// ErrCorruptCheckpoint sentinel so recovery code can tell a torn file from
// an architecture mismatch.
func TestLoadTruncationTable(t *testing.T) {
	src := buildModel(t, 21)
	var buf bytes.Buffer
	if err := SaveTraining(&buf, src, nil, TrainState{NextIter: 17}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	if len(whole) < 64 {
		t.Fatalf("checkpoint suspiciously small: %d bytes", len(whole))
	}
	cuts := []struct {
		name string
		n    int
	}{
		{"empty file", 0},
		{"inside magic", 2},
		{"after magic", 4},
		{"inside header", 7},
		{"inside MLP parameters", 64},
		{"early table data", len(whole) / 4},
		{"mid table data", len(whole) / 2},
		{"late table data", 3 * len(whole) / 4},
		{"missing trailer", len(whole) - 12},
		{"one byte short", len(whole) - 1},
	}
	for _, tc := range cuts {
		dst := buildModel(t, 22)
		_, err := LoadTraining(bytes.NewReader(whole[:tc.n]), dst, nil)
		if err == nil {
			t.Errorf("%s (%d/%d bytes): truncated checkpoint accepted", tc.name, tc.n, len(whole))
			continue
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("%s (%d/%d bytes): err = %v, want ErrCorruptCheckpoint", tc.name, tc.n, len(whole), err)
		}
	}
	// The untruncated file still loads, and the trailer survives.
	dst := buildModel(t, 23)
	st, err := LoadTraining(bytes.NewReader(whole), dst, nil)
	if err != nil {
		t.Fatalf("full load after truncation sweep: %v", err)
	}
	if st.NextIter != 17 {
		t.Fatalf("NextIter = %d, want 17", st.NextIter)
	}

	// The other direction of the same corruption class: trailing bytes
	// after the body (a concatenated or torn-rename file) must be rejected
	// with the same typed sentinel, not loaded "successfully".
	for _, extra := range [][]byte{{0x00}, {0xFF, 0xFE}, append([]byte(nil), whole[:32]...)} {
		dst := buildModel(t, 24)
		glued := append(append([]byte(nil), whole...), extra...)
		_, err := LoadTraining(bytes.NewReader(glued), dst, nil)
		if err == nil {
			t.Errorf("%d trailing bytes accepted", len(extra))
			continue
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("%d trailing bytes: err = %v, want ErrCorruptCheckpoint", len(extra), err)
		}
	}
}

// TestLoadModelRejectsTrailingBytes covers the model-only envelope: a valid
// SaveModel body followed by garbage must fail with ErrCorruptCheckpoint.
func TestLoadModelRejectsTrailingBytes(t *testing.T) {
	src := buildModel(t, 25)
	var buf bytes.Buffer
	if err := SaveModel(&buf, src); err != nil {
		t.Fatal(err)
	}
	glued := append(append([]byte(nil), buf.Bytes()...), 'x')
	dst := buildModel(t, 26)
	err := LoadModel(bytes.NewReader(glued), dst)
	if err == nil {
		t.Fatal("trailing byte accepted")
	}
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
	}
	// The clean file still loads.
	if err := LoadModel(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatalf("clean load: %v", err)
	}
}

// TestWriteFileAtomicDurability covers the crash-consistency contract: the
// temp file never survives, a failed write leaves no debris, and a write
// callback error propagates.
func TestWriteFileAtomicDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	n, err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len("payload")) {
		t.Fatalf("reported %d bytes, want %d", n, len("payload"))
	}
	if got, err := os.ReadFile(path); err != nil || string(got) != "payload" {
		t.Fatalf("readback: %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after success")
	}

	wantErr := errors.New("simulated write failure")
	if _, err := WriteFileAtomic(filepath.Join(dir, "bad.bin"), func(io.Writer) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("write-callback error lost: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.bin")); !os.IsNotExist(err) {
		t.Fatal("failed write left a destination file")
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.bin.tmp")); !os.IsNotExist(err) {
		t.Fatal("failed write left a temp file")
	}
}
