package dlrm

import (
	"testing"

	"repro/internal/data"
	"repro/internal/metrics"
)

func TestNewDataParallelValidation(t *testing.T) {
	spec := testSpec()
	tables := denseTables(t, spec)
	if _, err := NewDataParallel(0, testConfig(), tables); err == nil {
		t.Fatal("zero workers accepted")
	}
	dp, err := NewDataParallel(3, testConfig(), tables)
	if err != nil {
		t.Fatal(err)
	}
	if dp.NumWorkers() != 3 {
		t.Fatalf("NumWorkers = %d", dp.NumWorkers())
	}
}

func TestDataParallelReplicasStartIdentical(t *testing.T) {
	spec := testSpec()
	d, _ := data.New(spec)
	dp, err := NewDataParallel(2, testConfig(), denseTables(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	b := d.Batch(0, 16)
	l0 := dp.Models[0].Forward(b)
	l1 := dp.Models[1].Forward(b)
	if l0.MaxAbsDiff(l1) != 0 {
		t.Fatal("replicas disagree before training")
	}
}

func TestDataParallelStepKeepsReplicasInSync(t *testing.T) {
	spec := testSpec()
	d, _ := data.New(spec)
	dp, err := NewDataParallel(2, testConfig(), denseTables(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 5; it++ {
		dp.Step([]*data.Batch{d.Batch(2*it, 32), d.Batch(2*it+1, 32)})
	}
	b := d.Batch(100, 16)
	l0 := dp.Models[0].Forward(b)
	l1 := dp.Models[1].Forward(b)
	if l0.MaxAbsDiff(l1) != 0 {
		t.Fatal("replicas diverged after synchronized steps")
	}
}

func TestDataParallelBatchCountPanics(t *testing.T) {
	spec := testSpec()
	d, _ := data.New(spec)
	dp, _ := NewDataParallel(2, testConfig(), denseTables(t, spec))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong batch count did not panic")
		}
	}()
	dp.Step([]*data.Batch{d.Batch(0, 8)})
}

func TestDataParallelLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("long training test skipped in -short")
	}
	spec := testSpec()
	d, _ := data.New(spec)
	dp, err := NewDataParallel(4, testConfig(), ttTables(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 700; it++ {
		batches := make([]*data.Batch, 4)
		for w := range batches {
			batches[w] = d.Batch(it*4+w, 64)
		}
		dp.Step(batches)
	}
	var probs, labels []float32
	for it := 2800; it < 2820; it++ {
		b := d.Batch(it, 64)
		probs = append(probs, dp.Models[0].Predict(b)...)
		labels = append(labels, b.Labels...)
	}
	if auc := metrics.AUC(probs, labels); auc < 0.6 {
		t.Fatalf("data-parallel training failed to learn: AUC %.3f", auc)
	}
}

// TestDataParallelSingleWorkerMatchesSerial: a 1-worker DataParallel step is
// exactly TrainStep.
func TestDataParallelSingleWorkerMatchesSerial(t *testing.T) {
	spec := testSpec()
	d, _ := data.New(spec)

	serialTables := denseTables(t, spec)
	serial, _ := NewModel(testConfig(), serialTables)

	dpTables := denseTables(t, spec)
	dp, _ := NewDataParallel(1, testConfig(), dpTables)

	for it := 0; it < 5; it++ {
		b := d.Batch(it, 32)
		lossA := serial.TrainStep(b)
		lossB := dp.Step([]*data.Batch{b})
		if lossA != lossB {
			t.Fatalf("step %d: serial loss %v != dp loss %v", it, lossA, lossB)
		}
	}
	b := d.Batch(50, 16)
	if serial.Forward(b).MaxAbsDiff(dp.Models[0].Forward(b)) > 1e-6 {
		t.Fatal("single-worker DataParallel diverged from serial training")
	}
}
