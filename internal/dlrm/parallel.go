package dlrm

import (
	"fmt"
	"sync"

	"repro/internal/data"
	"repro/internal/tensor"
)

// lockedTable serializes access to an embedding table shared across
// data-parallel workers. Real multi-GPU EL-Rec replicates the table and
// all-reduces gradients; on a shared-memory host one instance behind a
// mutex is the equivalent state (the experiment harness charges the
// all-reduce communication separately). The lock also protects the TT
// table's internal lookup cache, which is not safe for concurrent batches.
type lockedTable struct {
	mu    sync.Mutex
	inner Table
}

var _ Table = (*lockedTable)(nil)

func (l *lockedTable) Lookup(indices, offsets []int) *tensor.Matrix {
	l.mu.Lock()
	defer l.mu.Unlock()
	// The table's Lookup returns an arena-owned matrix that the next
	// (serialized) Lookup overwrites; each worker needs its own copy to
	// carry past the lock.
	out := l.inner.Lookup(indices, offsets)
	cp := tensor.New(out.Rows, out.Cols)
	cp.CopyFrom(out)
	return cp
}

func (l *lockedTable) Update(indices, offsets []int, dOut *tensor.Matrix, lr float32) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.Update(indices, offsets, dOut, lr)
}

func (l *lockedTable) NumRows() int          { return l.inner.NumRows() }
func (l *lockedTable) Dim() int              { return l.inner.Dim() }
func (l *lockedTable) FootprintBytes() int64 { return l.inner.FootprintBytes() }

// DataParallel trains N model replicas in the hybrid-parallel style of the
// paper's multi-GPU setting (§V-A): MLP towers are replicated per worker and
// synchronized by gradient all-reduce each step; embedding tables are shared
// (the replicated-TT-table + gradient-all-reduce of EL-Rec collapses, on a
// shared-memory host, to concurrent updates on one table instance — the
// communication cost of the real all-reduce is charged separately by the
// experiment harness through the hw model).
type DataParallel struct {
	Models []*Model
}

// NewDataParallel builds n replicas over the shared tables with identical
// initial MLP weights.
func NewDataParallel(n int, cfg Config, tables []Table) (*DataParallel, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dlrm: need at least one worker, got %d", n)
	}
	shared := make([]Table, len(tables))
	for i, t := range tables {
		shared[i] = &lockedTable{inner: t}
	}
	dp := &DataParallel{}
	for w := 0; w < n; w++ {
		m, err := NewModel(cfg, shared)
		if err != nil {
			return nil, err
		}
		if w > 0 {
			m.CopyMLPFrom(dp.Models[0])
		}
		dp.Models = append(dp.Models, m)
	}
	return dp, nil
}

// Step trains one batch per worker concurrently: each worker runs
// forward/backward on its shard (updating the shared embedding tables),
// then MLP gradients are all-reduced (averaged), applied on worker 0 and
// broadcast. Returns the mean loss across workers.
func (dp *DataParallel) Step(batches []*data.Batch) float32 {
	if len(batches) != len(dp.Models) {
		//elrec:invariant harness wiring: one batch per worker by construction
		panic(fmt.Sprintf("dlrm: %d batches for %d workers", len(batches), len(dp.Models)))
	}
	losses := make([]float32, len(batches))
	var wg sync.WaitGroup
	for w := range dp.Models {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			losses[w] = dp.Models[w].ForwardBackward(batches[w], true)
		}(w)
	}
	wg.Wait()

	dp.allReduceMLP()
	dp.Models[0].ApplyStep()
	dp.broadcastMLP()

	var total float32
	for _, l := range losses {
		total += l
	}
	return total / float32(len(losses))
}

// allReduceMLP averages MLP gradients into worker 0 (and zeroes the rest).
func (dp *DataParallel) allReduceMLP() {
	n := float32(len(dp.Models))
	root := dp.Models[0].MLPParams()
	for w := 1; w < len(dp.Models); w++ {
		for pi, p := range dp.Models[w].MLPParams() {
			tensor.AddTo(root[pi].Grad.Data, p.Grad.Data)
			p.Grad.Zero()
		}
	}
	if n > 1 {
		for _, p := range root {
			tensor.Scale(1/n, p.Grad.Data)
		}
	}
}

// broadcastMLP copies worker 0's MLP parameters to every other worker.
func (dp *DataParallel) broadcastMLP() {
	for w := 1; w < len(dp.Models); w++ {
		dp.Models[w].CopyMLPFrom(dp.Models[0])
	}
}

// NumWorkers returns the replica count.
func (dp *DataParallel) NumWorkers() int { return len(dp.Models) }
