package dlrm

import (
	"fmt"
	"math"

	"repro/internal/embedding"
	"repro/internal/tensor"
	"repro/internal/tt"
)

// TableSpec selects how the embedding layer is built.
type TableSpec struct {
	Dim  int // embedding dimension
	Rank int // TT rank for compressed tables
	// TTThreshold: tables with at least this many rows are TT-compressed;
	// smaller tables stay dense (the paper compresses tables above 1M rows
	// and keeps the rest uncompressed). 0 compresses everything,
	// a negative value compresses nothing.
	TTThreshold int
	Opts        tt.Options // optimization set for the TT tables
	Seed        uint64
}

// BuildTables constructs one table per cardinality in rows following the
// spec. Returns the tables plus how many of them are TT-compressed.
func BuildTables(rows []int, spec TableSpec) ([]Table, int, error) {
	if spec.Dim <= 0 {
		return nil, 0, fmt.Errorf("dlrm: invalid embedding dim %d", spec.Dim)
	}
	tables := make([]Table, 0, len(rows))
	compressed := 0
	for i, r := range rows {
		if r <= 0 {
			return nil, 0, fmt.Errorf("dlrm: table %d has %d rows", i, r)
		}
		useTT := spec.TTThreshold >= 0 && r >= spec.TTThreshold
		if useTT {
			shape, err := tt.NewShape(r, spec.Dim, spec.Rank)
			if err != nil {
				return nil, 0, fmt.Errorf("dlrm: table %d: %w", i, err)
			}
			tbl := tt.NewTable(shape, tensor.NewRNG(spec.Seed+uint64(i)*7919), math.Sqrt(1/float64(r)))
			tbl.Opts = spec.Opts
			tables = append(tables, tbl)
			compressed++
		} else {
			tables = append(tables, embedding.NewBag(r, spec.Dim, tensor.NewRNG(spec.Seed+uint64(i)*7919)))
		}
	}
	return tables, compressed, nil
}

// MustDenseTable builds one uncompressed table (a convenience for placement
// code that has already validated its inputs).
func MustDenseTable(rows, dim int, seed uint64) Table {
	return embedding.NewBag(rows, dim, tensor.NewRNG(seed))
}

// TotalFootprint sums FootprintBytes over tables.
func TotalFootprint(tables []Table) int64 {
	var n int64
	for _, t := range tables {
		n += t.FootprintBytes()
	}
	return n
}
