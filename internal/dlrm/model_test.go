package dlrm

import (
	"testing"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/tt"
)

func testSpec() data.Spec {
	return data.Spec{
		Name: "dlrm-test", NumDense: 4, TableRows: []int{300, 50, 800},
		ZipfS: 1.2, ZipfV: 2, GroupSize: 16, ActiveGroups: 4, Locality: 0.8,
		Samples: 1 << 20, Seed: 11,
	}
}

func testConfig() Config {
	return Config{
		NumDense:    4,
		EmbDim:      8,
		BottomSizes: []int{16},
		TopSizes:    []int{16},
		LR:          2.0,
		Seed:        3,
	}
}

func denseTables(t *testing.T, spec data.Spec) []Table {
	t.Helper()
	tables, n, err := BuildTables(spec.TableRows, TableSpec{Dim: 8, Rank: 4, TTThreshold: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("dense build compressed %d tables", n)
	}
	return tables
}

func ttTables(t *testing.T, spec data.Spec) []Table {
	t.Helper()
	tables, n, err := BuildTables(spec.TableRows, TableSpec{Dim: 8, Rank: 8, TTThreshold: 0, Opts: tt.EffOptions(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(spec.TableRows) {
		t.Fatalf("tt build compressed only %d tables", n)
	}
	return tables
}

func TestNewModelValidation(t *testing.T) {
	spec := testSpec()
	tables := denseTables(t, spec)
	cfg := testConfig()
	if _, err := NewModel(cfg, nil); err == nil {
		t.Fatal("no tables accepted")
	}
	bad := cfg
	bad.EmbDim = 16 // tables are dim 8
	if _, err := NewModel(bad, tables); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	bad = cfg
	bad.LR = 0
	if _, err := NewModel(bad, tables); err == nil {
		t.Fatal("zero LR accepted")
	}
	if _, err := NewModel(cfg, tables); err != nil {
		t.Fatal(err)
	}
}

func TestForwardShapes(t *testing.T) {
	spec := testSpec()
	d, _ := data.New(spec)
	m, err := NewModel(testConfig(), denseTables(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	b := d.Batch(0, 32)
	logits := m.Forward(b)
	if logits.Rows != 32 || logits.Cols != 1 {
		t.Fatalf("logits %dx%d", logits.Rows, logits.Cols)
	}
	probs := m.Predict(b)
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestForwardBatchMismatchPanics(t *testing.T) {
	spec := testSpec()
	d, _ := data.New(spec)
	// Model with one fewer table than the batch provides.
	tables := denseTables(t, spec)[:2]
	m, err := NewModel(testConfig(), tables)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("table/batch mismatch did not panic")
		}
	}()
	m.Forward(d.Batch(0, 8))
}

// trainAndEval trains a model for steps batches and returns held-out
// accuracy and AUC.
func trainAndEval(t *testing.T, m *Model, d *data.Dataset, steps, batchSize int) (acc, auc float64) {
	t.Helper()
	for it := 0; it < steps; it++ {
		m.TrainStep(d.Batch(it, batchSize))
	}
	var probs, labels []float32
	for it := steps; it < steps+10; it++ {
		b := d.Batch(it, batchSize)
		probs = append(probs, m.Predict(b)...)
		labels = append(labels, b.Labels...)
	}
	return metrics.Accuracy(probs, labels, 0.5), metrics.AUC(probs, labels)
}

func TestTrainingLearnsSignalDenseTables(t *testing.T) {
	if testing.Short() {
		t.Skip("long training test skipped in -short")
	}
	spec := testSpec()
	d, _ := data.New(spec)
	m, err := NewModel(testConfig(), denseTables(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	acc, auc := trainAndEval(t, m, d, 2000, 128)
	if auc < 0.65 {
		t.Fatalf("dense DLRM failed to learn: acc=%.3f auc=%.3f", acc, auc)
	}
}

func TestTrainingLearnsSignalTTTables(t *testing.T) {
	if testing.Short() {
		t.Skip("long training test skipped in -short")
	}
	spec := testSpec()
	d, _ := data.New(spec)
	m, err := NewModel(testConfig(), ttTables(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	acc, auc := trainAndEval(t, m, d, 3000, 128)
	if auc < 0.65 {
		t.Fatalf("TT DLRM failed to learn: acc=%.3f auc=%.3f", acc, auc)
	}
}

// TestAccuracyParity is Table IV in miniature: the Eff-TT model must match
// the uncompressed model's held-out accuracy within a small margin.
func TestAccuracyParity(t *testing.T) {
	if testing.Short() {
		t.Skip("long training test skipped in -short")
	}
	spec := testSpec()
	d, _ := data.New(spec)
	dense, err := NewModel(testConfig(), denseTables(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	ttm, err := NewModel(testConfig(), ttTables(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	accD, aucD := trainAndEval(t, dense, d, 4000, 128)
	accT, aucT := trainAndEval(t, ttm, d, 4000, 128)
	t.Logf("dense acc=%.4f auc=%.4f | tt acc=%.4f auc=%.4f", accD, aucD, accT, aucT)
	if accT < accD-0.05 {
		t.Fatalf("TT accuracy %.4f more than 5pp below dense %.4f", accT, accD)
	}
	if aucT < aucD-0.07 {
		t.Fatalf("TT AUC %.4f far below dense %.4f", aucT, aucD)
	}
}

func TestLossDecreases(t *testing.T) {
	spec := testSpec()
	d, _ := data.New(spec)
	m, err := NewModel(testConfig(), ttTables(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	var first, last float32
	const steps = 50
	for it := 0; it < steps; it++ {
		loss := m.TrainStep(d.Batch(it, 128))
		if it < 5 {
			first += loss
		}
		if it >= steps-5 {
			last += loss
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first5=%v last5=%v", first/5, last/5)
	}
}

func TestBuildTablesThreshold(t *testing.T) {
	rows := []int{100, 5000, 100000}
	tables, n, err := BuildTables(rows, TableSpec{Dim: 8, Rank: 4, TTThreshold: 5000, Opts: tt.EffOptions(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("compressed %d tables want 2", n)
	}
	if tables[0].FootprintBytes() != 100*8*4 {
		t.Fatal("small table should be dense")
	}
	if tables[2].FootprintBytes() >= 100000*8*4/10 {
		t.Fatal("large table should be TT compressed")
	}
	if _, _, err := BuildTables([]int{0}, TableSpec{Dim: 8, Rank: 2}); err == nil {
		t.Fatal("zero-row table accepted")
	}
	if _, _, err := BuildTables(rows, TableSpec{Dim: 0}); err == nil {
		t.Fatal("zero dim accepted")
	}
}

func TestFootprintAccounting(t *testing.T) {
	spec := testSpec()
	tables := denseTables(t, spec)
	m, err := NewModel(testConfig(), tables)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, r := range spec.TableRows {
		want += int64(r) * 8 * 4
	}
	if got := m.EmbeddingBytes(); got != want {
		t.Fatalf("EmbeddingBytes = %d want %d", got, want)
	}
	if got := TotalFootprint(tables); got != want {
		t.Fatalf("TotalFootprint = %d want %d", got, want)
	}
	if m.MLPBytes() <= 0 {
		t.Fatal("MLPBytes not positive")
	}
}

func TestTimedTrainStepSplitsTime(t *testing.T) {
	spec := testSpec()
	d, _ := data.New(spec)
	m, err := NewModel(testConfig(), ttTables(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 3; it++ {
		m.TimedTrainStep(d.Batch(it, 64))
	}
	tm := m.Timing()
	if tm.Embed <= 0 || tm.Dense <= 0 {
		t.Fatalf("timing split empty: %+v", tm)
	}
	if tm.Total() != tm.Embed+tm.Dense {
		t.Fatal("Total() inconsistent")
	}
	m.ResetTiming()
	if m.Timing().Total() != 0 {
		t.Fatal("ResetTiming did not clear")
	}
}

func TestTimedTrainStepMatchesTrainStep(t *testing.T) {
	spec := testSpec()
	d, _ := data.New(spec)
	a, _ := NewModel(testConfig(), denseTables(t, spec))
	b, _ := NewModel(testConfig(), denseTables(t, spec))
	for it := 0; it < 5; it++ {
		batch := d.Batch(it, 32)
		la := a.TrainStep(batch)
		lb := b.TimedTrainStep(batch)
		if la != lb {
			t.Fatalf("step %d: losses diverge %v vs %v", it, la, lb)
		}
	}
	probe := d.Batch(50, 16)
	if a.Forward(probe).MaxAbsDiff(b.Forward(probe)) != 0 {
		t.Fatal("TimedTrainStep diverged from TrainStep")
	}
}

func TestModelTrainsOnMultiHotBags(t *testing.T) {
	spec := testSpec()
	spec.MultiHot = 3
	d, err := data.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(testConfig(), ttTables(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	var first, last float32
	const steps = 60
	for it := 0; it < steps; it++ {
		loss := m.TrainStep(d.Batch(it, 64))
		if it < 5 {
			first += loss
		}
		if it >= steps-5 {
			last += loss
		}
	}
	if last >= first {
		t.Fatalf("multi-hot training loss did not decrease: %v -> %v", first/5, last/5)
	}
}
