// Package dlrm assembles the full deep learning recommendation model of
// Figure 2 — bottom MLP over dense features, embedding tables over sparse
// features, dot-product feature interaction, top MLP — and provides the
// training loops the experiments drive. The embedding layer is abstracted
// behind the Table interface so the uncompressed baseline, TT-Rec-style
// tables, the Eff-TT table and the sharded/cached baseline executors are
// interchangeable.
package dlrm

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Table is the embedding-table abstraction: sum-pooling lookup over
// indices/offsets bags and a combined backward+SGD update.
// embedding.Bag, tt.Table and the baseline executors all satisfy it.
type Table interface {
	Lookup(indices, offsets []int) *tensor.Matrix
	Update(indices, offsets []int, dOut *tensor.Matrix, lr float32)
	NumRows() int
	Dim() int
	FootprintBytes() int64
}

// Config describes the dense part of a DLRM.
type Config struct {
	NumDense    int   // dense input features
	EmbDim      int   // embedding dimension (shared by all tables)
	BottomSizes []int // hidden sizes of the bottom MLP (output EmbDim appended)
	TopSizes    []int // hidden sizes of the top MLP (output 1 appended)
	LR          float32
	Seed        uint64
}

// DefaultConfig mirrors the DLRM reference tower sizes at a given embedding
// dimension.
func DefaultConfig(numDense, embDim int) Config {
	return Config{
		NumDense:    numDense,
		EmbDim:      embDim,
		BottomSizes: []int{64, 32},
		TopSizes:    []int{64, 32},
		LR:          0.1,
		Seed:        1,
	}
}

// Model is one replica of the DLRM.
type Model struct {
	Cfg         Config
	Bottom, Top *nn.MLP
	Interaction *nn.Interaction
	Tables      []Table

	opt    *nn.SGD
	timing Timing
	clock  obs.Clock        // timestamp source for TimedTrainStep; never nil
	embs   []*tensor.Matrix // per-step lookup results, slice reused across steps
}

// SetClock replaces the timestamp source TimedTrainStep measures against
// (nil restores the system clock). Tests inject a manual clock to make the
// embed/dense timing split deterministic.
func (m *Model) SetClock(c obs.Clock) { m.clock = obs.OrSystem(c) }

// NewModel builds a model over the given embedding tables, which must all
// share Cfg.EmbDim.
func NewModel(cfg Config, tables []Table) (*Model, error) {
	if cfg.NumDense < 0 || cfg.EmbDim <= 0 {
		return nil, fmt.Errorf("dlrm: invalid config dense=%d dim=%d", cfg.NumDense, cfg.EmbDim)
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("dlrm: no embedding tables")
	}
	for i, t := range tables {
		if t.Dim() != cfg.EmbDim {
			return nil, fmt.Errorf("dlrm: table %d dim %d != %d", i, t.Dim(), cfg.EmbDim)
		}
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("dlrm: non-positive learning rate %v", cfg.LR)
	}
	rng := tensor.NewRNG(cfg.Seed)
	bottomSizes := append(append([]int{cfg.NumDense}, cfg.BottomSizes...), cfg.EmbDim)
	it := nn.NewInteraction(cfg.EmbDim, len(tables))
	topSizes := append(append([]int{it.OutputDim()}, cfg.TopSizes...), 1)
	m := &Model{
		Cfg:         cfg,
		Bottom:      nn.NewMLP(bottomSizes, false, rng),
		Top:         nn.NewMLP(topSizes, false, rng),
		Interaction: it,
		Tables:      tables,
		opt:         nn.NewSGD(cfg.LR),
		clock:       obs.System(),
	}
	return m, nil
}

// checkBatch validates batch/table agreement.
func (m *Model) checkBatch(b *data.Batch) error {
	if len(b.Sparse) != len(m.Tables) {
		return fmt.Errorf("dlrm: batch has %d sparse features, model has %d tables", len(b.Sparse), len(m.Tables))
	}
	if b.Dense.Cols != m.Cfg.NumDense {
		return fmt.Errorf("dlrm: batch has %d dense features, model wants %d", b.Dense.Cols, m.Cfg.NumDense)
	}
	return nil
}

// Forward computes logits (batch×1) for a batch.
func (m *Model) Forward(b *data.Batch) *tensor.Matrix {
	if err := m.checkBatch(b); err != nil {
		//elrec:invariant batch/model agreement; the pipeline recover boundary converts this to ErrWorkerFault
		panic(err)
	}
	z0 := m.Bottom.Forward(b.Dense)
	if m.embs == nil {
		m.embs = make([]*tensor.Matrix, len(m.Tables))
	}
	for t, tbl := range m.Tables {
		m.embs[t] = tbl.Lookup(b.Sparse[t], b.Offsets)
	}
	x := m.Interaction.Forward(z0, m.embs)
	return m.Top.Forward(x)
}

// Predict returns CTR probabilities for a batch.
func (m *Model) Predict(b *data.Batch) []float32 {
	logits := m.Forward(b)
	return nn.SigmoidSlice(logits.Data)
}

// ForwardBackward runs one forward/backward pass, returning the batch loss.
// MLP gradients accumulate in the parameters (for a later ApplyStep or an
// all-reduce); embedding tables update immediately when updateTables is set
// (they own their sparse optimizers).
func (m *Model) ForwardBackward(b *data.Batch, updateTables bool) float32 {
	logits := m.Forward(b)
	loss, dLogits := nn.BCEWithLogits(logits, b.Labels)
	dx := m.Top.Backward(dLogits)
	dDense, dEmbs := m.Interaction.Backward(dx)
	m.Bottom.Backward(dDense)
	if updateTables {
		for t, tbl := range m.Tables {
			tbl.Update(b.Sparse[t], b.Offsets, dEmbs[t], m.Cfg.LR)
		}
	}
	return loss
}

// ApplyStep applies the accumulated MLP gradients with SGD and clears them.
func (m *Model) ApplyStep() {
	m.opt.Step(m.MLPParams())
}

// TrainStep is the single-worker convenience: forward, backward, update
// everything. Returns the batch loss.
func (m *Model) TrainStep(b *data.Batch) float32 {
	loss := m.ForwardBackward(b, true)
	m.ApplyStep()
	return loss
}

// MLPParams returns the dense parameters (bottom and top towers).
func (m *Model) MLPParams() []*nn.Param {
	return append(m.Bottom.Params(), m.Top.Params()...)
}

// MLPBytes returns the dense-parameter footprint, used by the hw model to
// charge all-reduce traffic.
func (m *Model) MLPBytes() int64 {
	var n int64
	for _, p := range m.MLPParams() {
		n += int64(len(p.Value.Data)) * 4
	}
	return n
}

// EmbeddingBytes sums the footprint of all embedding tables.
func (m *Model) EmbeddingBytes() int64 {
	var n int64
	for _, t := range m.Tables {
		n += t.FootprintBytes()
	}
	return n
}

// CopyMLPFrom replicates src's dense parameters into m.
func (m *Model) CopyMLPFrom(src *Model) {
	m.Bottom.CopyParamsFrom(src.Bottom)
	m.Top.CopyParamsFrom(src.Top)
}
