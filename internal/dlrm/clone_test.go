package dlrm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/data"
)

// trainedTTModel trains a small mixed dense/TT model for a few steps so the
// clone starts from non-trivial weights and a warm Eff-TT arena.
func trainedTTModel(t *testing.T, d *data.Dataset) *Model {
	t.Helper()
	m, err := NewModel(testConfig(), ttTables(t, testSpec()))
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 15; it++ {
		m.TrainStep(d.Batch(it, 64))
	}
	return m
}

// TestCloneForServingMatchesSource: a serving clone predicts bit-identically
// to the source model over several batches.
func TestCloneForServingMatchesSource(t *testing.T) {
	d, _ := data.New(testSpec())
	m := trainedTTModel(t, d)
	clone, err := m.CloneForServing()
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 4; it++ {
		b := d.Batch(100+it, 32)
		want := m.Predict(b)
		got := clone.Predict(b)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("batch %d row %d: clone %v != source %v", it, i, got[i], want[i])
			}
		}
	}
}

// TestCloneForServingConcurrentPredict drives distinct clones concurrently
// under -race and checks every prediction against the serial reference.
func TestCloneForServingConcurrentPredict(t *testing.T) {
	d, _ := data.New(testSpec())
	m := trainedTTModel(t, d)

	const goroutines = 8
	batches := make([]*data.Batch, goroutines)
	want := make([][]float32, goroutines)
	for g := range batches {
		batches[g] = d.Batch(200+g, 32)
		want[g] = append([]float32(nil), m.Predict(batches[g])...)
	}

	clones := make([]*Model, goroutines)
	for g := range clones {
		c, err := m.CloneForServing()
		if err != nil {
			t.Fatal(err)
		}
		clones[g] = c
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				got := clones[g].Predict(batches[g])
				for i := range want[g] {
					if got[i] != want[g][i] {
						errs <- fmt.Errorf("clone %d iter %d row %d: %v != %v", g, iter, i, got[i], want[g][i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCloneForServingIsolatesParameters: training the source after cloning
// must not change the clone's predictions.
func TestCloneForServingIsolatesParameters(t *testing.T) {
	d, _ := data.New(testSpec())
	m, err := NewModel(testConfig(), denseTables(t, testSpec()))
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 5; it++ {
		m.TrainStep(d.Batch(it, 64))
	}
	clone, err := m.CloneForServing()
	if err != nil {
		t.Fatal(err)
	}
	probe := d.Batch(300, 16)
	before := append([]float32(nil), clone.Predict(probe)...)
	// Embedding tables are shared read-only under the serving contract, so
	// isolation is about the dense towers: perturbing every source MLP
	// parameter must leave the clone untouched.
	for _, p := range m.MLPParams() {
		for i := range p.Value.Data {
			p.Value.Data[i] += 0.5
		}
	}
	after := clone.Predict(probe)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("row %d: clone prediction drifted after source update: %v -> %v", i, before[i], after[i])
		}
	}
}

// unservableTable is a Table implementation CloneForServing cannot replicate.
type unservableTable struct{ Table }

func TestCloneForServingRejectsUnknownTables(t *testing.T) {
	tables := denseTables(t, testSpec())
	tables[1] = unservableTable{tables[1]}
	m, err := NewModel(testConfig(), tables)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CloneForServing(); !errors.Is(err, ErrNotServable) {
		t.Fatalf("want ErrNotServable, got %v", err)
	}
}
