package dlrm

import (
	"errors"
	"fmt"

	"repro/internal/embedding"
	"repro/internal/nn"
	"repro/internal/tt"
)

// ErrNotServable reports a table type CloneForServing does not know how to
// replicate safely for concurrent inference.
var ErrNotServable = errors.New("dlrm: table not servable")

// CloneForServing returns a read-path replica of the model for concurrent
// inference. The clone owns every piece of mutable forward state — MLP layer
// scratch, interaction buffers, the per-step lookup slice, and the Eff-TT
// arena/prefix caches — while sharing only data that is immutable or
// self-serialized during serving:
//
//   - dense MLP parameters are deep-copied (nn.MLP.Clone), so the clone's
//     Forward never touches the source's layer buffers;
//   - *tt.Table becomes an arena-owning replica over shared read-only cores
//     (tt.Table.CloneForServing);
//   - *embedding.Bag / *embedding.AdagradBag / *tt.GeneralTable are shared
//     as-is: their Lookup is read-only and allocates fresh output;
//   - *lockedTable is shared as-is: it serializes access with its own mutex
//     and copies rows out under the lock.
//
// Any other table type yields ErrNotServable. The sharing contract is
// read-only: while any clone serves traffic, neither the source model nor any
// clone may train (Update/Backward). Train a new version and re-clone to
// update.
func (m *Model) CloneForServing() (*Model, error) {
	tables := make([]Table, len(m.Tables))
	for i, t := range m.Tables {
		switch tbl := t.(type) {
		case *tt.Table:
			tables[i] = tbl.CloneForServing()
		case *embedding.Bag, *embedding.AdagradBag, *tt.GeneralTable:
			tables[i] = t
		case *lockedTable:
			tables[i] = t
		default:
			return nil, fmt.Errorf("%w: table %d is %T", ErrNotServable, i, t)
		}
	}
	return &Model{
		Cfg:         m.Cfg,
		Bottom:      m.Bottom.Clone(),
		Top:         m.Top.Clone(),
		Interaction: nn.NewInteraction(m.Cfg.EmbDim, len(tables)),
		Tables:      tables,
		opt:         nn.NewSGD(m.Cfg.LR),
		clock:       m.clock,
	}, nil
}
