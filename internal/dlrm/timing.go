package dlrm

import (
	"time"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Timing splits one model's accumulated wall time into the embedding-side
// work (table lookups and updates) and the dense-side work (MLPs,
// interaction, loss). The experiment harness charges the two components to
// different compute locations under the hw model — for the PS-style DLRM
// baseline the embedding side runs on the host while the dense side runs on
// the device.
type Timing struct {
	Embed time.Duration
	Dense time.Duration
}

// Total returns the summed wall time.
func (t Timing) Total() time.Duration { return t.Embed + t.Dense }

// Timing returns the accumulated split since the last ResetTiming.
func (m *Model) Timing() Timing { return m.timing }

// ResetTiming clears the accumulated split.
func (m *Model) ResetTiming() { m.timing = Timing{} }

// TimedTrainStep is TrainStep with the embed/dense wall-time split recorded
// into the model's Timing accumulator, measured against the model's clock
// (see SetClock).
func (m *Model) TimedTrainStep(b *data.Batch) float32 {
	if err := m.checkBatch(b); err != nil {
		//elrec:invariant batch/model agreement; the pipeline recover boundary converts this to ErrWorkerFault
		panic(err)
	}
	clock := obs.OrSystem(m.clock)
	start := clock.Now()
	z0 := m.Bottom.Forward(b.Dense)
	denseMark := obs.Since(clock, start)

	embStart := clock.Now()
	if m.embs == nil {
		m.embs = make([]*tensor.Matrix, len(m.Tables))
	}
	embs := m.embs
	for t, tbl := range m.Tables {
		embs[t] = tbl.Lookup(b.Sparse[t], b.Offsets)
	}
	embedFwd := obs.Since(clock, embStart)

	denseStart := clock.Now()
	x := m.Interaction.Forward(z0, embs)
	logits := m.Top.Forward(x)
	loss, dLogits := nn.BCEWithLogits(logits, b.Labels)
	dx := m.Top.Backward(dLogits)
	dDense, dEmbs := m.Interaction.Backward(dx)
	m.Bottom.Backward(dDense)
	denseBody := obs.Since(clock, denseStart)

	embStart = clock.Now()
	for t, tbl := range m.Tables {
		tbl.Update(b.Sparse[t], b.Offsets, dEmbs[t], m.Cfg.LR)
	}
	embedBwd := obs.Since(clock, embStart)

	denseStart = clock.Now()
	m.ApplyStep()
	denseTail := obs.Since(clock, denseStart)

	m.timing.Embed += embedFwd + embedBwd
	m.timing.Dense += denseMark + denseBody + denseTail
	return loss
}
