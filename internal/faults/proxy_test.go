package faults

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// testSplit is a minimal frame format for proxy tests: one length byte
// followed by that many payload bytes.
func testSplit(r *bufio.Reader) ([]byte, error) {
	n, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 1+int(n))
	buf[0] = n
	if _, err := io.ReadFull(r, buf[1:]); err != nil {
		return nil, err
	}
	return buf, nil
}

func testFrame(payload string) []byte {
	return append([]byte{byte(len(payload))}, payload...)
}

// echoServer accepts connections and echoes every test frame back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	spawnTest(func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			spawnTest(func() {
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					f, err := testSplit(br)
					if err != nil {
						return
					}
					if _, err := c.Write(f); err != nil {
						return
					}
				}
			})
		}
	})
	return ln.Addr().String()
}

// spawnTest is the test helper's goroutine owner (see the gospawn analyzer).
func spawnTest(fn func()) { go fn() }

func newTestProxy(t *testing.T, cfg ProxyConfig) *Proxy {
	t.Helper()
	p, err := NewProxy(echoServer(t), testSplit, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dialProxy(t *testing.T, p *Proxy) (net.Conn, *bufio.Reader) {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetDeadline(time.Now().Add(5 * time.Second))
	return c, bufio.NewReader(c)
}

func TestProxyForwardsCleanly(t *testing.T) {
	p := newTestProxy(t, ProxyConfig{})
	c, br := dialProxy(t, p)
	for i := 0; i < 10; i++ {
		f := testFrame("hello")
		if _, err := c.Write(f); err != nil {
			t.Fatal(err)
		}
		got, err := testSplit(br)
		if err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
		if !bytes.Equal(got, f) {
			t.Fatalf("echo %d: got %q, want %q", i, got, f)
		}
	}
	if n := p.Schedule().Injected(); n != 0 {
		t.Fatalf("clean proxy injected %d faults", n)
	}
}

func TestProxyDuplicatesRequests(t *testing.T) {
	p := newTestProxy(t, ProxyConfig{Seed: 1, DupProb: 1, MaxFaults: 1})
	c, br := dialProxy(t, p)
	f := testFrame("dup")
	if _, err := c.Write(f); err != nil {
		t.Fatal(err)
	}
	// The first request frame is duplicated, so the echo server answers
	// twice; response duplication is budget-capped away (MaxFaults 1).
	for i := 0; i < 2; i++ {
		got, err := testSplit(br)
		if err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
		if !bytes.Equal(got, f) {
			t.Fatalf("echo %d: got %q", i, got)
		}
	}
	if got := p.Schedule().Count(Duplicate); got != 1 {
		t.Fatalf("duplicate count = %d, want 1", got)
	}
}

func TestProxyDropsFrames(t *testing.T) {
	p := newTestProxy(t, ProxyConfig{Seed: 2, DropProb: 1, MaxFaults: 1})
	c, br := dialProxy(t, p)
	// First frame dropped (request direction wins the budget); second passes.
	if _, err := c.Write(testFrame("lost")); err != nil {
		t.Fatal(err)
	}
	f := testFrame("kept")
	if _, err := c.Write(f); err != nil {
		t.Fatal(err)
	}
	got, err := testSplit(br)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, f) {
		t.Fatalf("got %q, want the second frame %q", got, f)
	}
	if got := p.Schedule().Count(Drop); got != 1 {
		t.Fatalf("drop count = %d, want 1", got)
	}
}

func TestProxyTruncateSeversConnection(t *testing.T) {
	p := newTestProxy(t, ProxyConfig{Seed: 3, TruncateProb: 1, MaxFaults: 1})
	c, br := dialProxy(t, p)
	if _, err := c.Write(testFrame("about to be cut")); err != nil {
		t.Fatal(err)
	}
	// The server side sees a torn frame and the pair is severed; the client
	// observes EOF (possibly after a partial response — none here, since the
	// request never reached the server whole).
	if _, err := io.ReadAll(br); err != nil {
		t.Fatalf("reading severed conn: %v", err)
	}
	if got := p.Schedule().Count(Truncate); got != 1 {
		t.Fatalf("truncate count = %d, want 1", got)
	}
}

func TestProxyKillConnAfterFrames(t *testing.T) {
	p := newTestProxy(t, ProxyConfig{Seed: 4, KillConnAfter: 3})
	c, br := dialProxy(t, p)
	for i := 0; i < 3; i++ {
		if _, err := c.Write(testFrame("x")); err != nil {
			t.Fatal(err)
		}
	}
	// At most the first few echoes arrive, then the connection dies. Drain
	// until EOF; a fresh connection works again.
	io.ReadAll(br)
	c2, br2 := dialProxy(t, p)
	f := testFrame("alive")
	if _, err := c2.Write(f); err != nil {
		t.Fatal(err)
	}
	got, err := testSplit(br2)
	if err != nil || !bytes.Equal(got, f) {
		t.Fatalf("fresh connection after kill: %q, %v", got, err)
	}
}

func TestProxyDelayUsesSleepHook(t *testing.T) {
	var mu sync.Mutex
	var slept []time.Duration
	p := newTestProxy(t, ProxyConfig{
		Seed: 5, DelayProb: 1, Delay: 7 * time.Millisecond,
		Sleep: func(d time.Duration) { mu.Lock(); slept = append(slept, d); mu.Unlock() },
	})
	c, br := dialProxy(t, p)
	f := testFrame("slow")
	if _, err := c.Write(f); err != nil {
		t.Fatal(err)
	}
	if got, err := testSplit(br); err != nil || !bytes.Equal(got, f) {
		t.Fatalf("delayed frame: %q, %v", got, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) == 0 || slept[0] != 7*time.Millisecond {
		t.Fatalf("sleep hook calls %v, want at least one 7ms delay", slept)
	}
	if n := p.Schedule().Injected(); n != 0 {
		t.Fatalf("delays consumed %d budget; they should be free", n)
	}
}

// TestScheduleDeterministicAcrossRuns: the probabilistic stream is a pure
// function of (seed, direction, index), independent of interleaving.
func TestScheduleDeterministicAcrossRuns(t *testing.T) {
	cfg := ProxyConfig{Seed: 99, DropProb: 0.2, DupProb: 0.1, TruncateProb: 0.05}
	a, b := NewProxySchedule(cfg), NewProxySchedule(cfg)
	for idx := 0; idx < 500; idx++ {
		for _, dir := range []Dir{DirRequest, DirResponse} {
			if va, vb := a.decide(dir, idx), b.decide(dir, idx); va != vb {
				t.Fatalf("(%s, %d): %v vs %v", dir, idx, va, vb)
			}
		}
	}
	if a.Injected() == 0 {
		t.Fatal("schedule with 20% drop probability injected nothing over 1000 frames")
	}
	other := NewProxySchedule(ProxyConfig{Seed: 100, DropProb: 0.2, DupProb: 0.1, TruncateProb: 0.05})
	diverged := false
	for idx := 0; idx < 500 && !diverged; idx++ {
		diverged = other.decide(DirRequest, idx) != a.decide(DirRequest, idx)
	}
	_ = diverged // seeds may rarely agree on a window; no assertion needed
}

// TestScheduleConcurrentBudget hammers one schedule from many goroutines
// under the race detector and checks the shared budget holds exactly.
func TestScheduleConcurrentBudget(t *testing.T) {
	s := NewProxySchedule(ProxyConfig{Seed: 7, DropProb: 0.5, MaxFaults: 25})
	var wg sync.WaitGroup
	const workers, frames = 8, 400
	for w := 0; w < workers; w++ {
		wg.Add(1)
		dir := DirRequest
		if w%2 == 1 {
			dir = DirResponse
		}
		base := w * frames
		spawnTest(func() {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				s.decide(dir, base+i)
			}
		})
	}
	wg.Wait()
	if got := s.Injected(); got != 25 {
		t.Fatalf("injected %d faults, budget is 25", got)
	}
}

// TestProxyConcurrentConnections drives several connections through one
// faulty proxy at once; with the race detector this exercises the shared
// schedule, connection registry and frame counters.
func TestProxyConcurrentConnections(t *testing.T) {
	p := newTestProxy(t, ProxyConfig{Seed: 11, DropProb: 0.3, DupProb: 0.2, MaxFaults: 30})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		spawnTest(func() {
			defer wg.Done()
			c, err := net.Dial("tcp", p.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(2 * time.Second))
			br := bufio.NewReader(c)
			for i := 0; i < 20; i++ {
				if _, err := c.Write(testFrame("ping")); err != nil {
					return
				}
				// Read whatever comes back (echo, duplicate echo, or a
				// timeout after a drop); errors just end this connection.
				c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
				if _, err := testSplit(br); err != nil {
					c.SetReadDeadline(time.Now().Add(2 * time.Second))
					continue
				}
			}
		})
	}
	wg.Wait()
	if p.Schedule().Injected() > 30 {
		t.Fatalf("budget exceeded: %d > 30", p.Schedule().Injected())
	}
}
