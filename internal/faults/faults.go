// Package faults is the deterministic fault-injection layer of the
// pipeline trainer. Production code runs with a nil (or Nop) injector and
// pays one interface call per operation; tests construct a Seeded injector
// that decides — as a pure function of (seed, operation, iteration,
// attempt) — whether a parameter-server gather or apply transiently fails,
// whether the server stalls, and whether the worker panics. Because the
// decision does not depend on goroutine interleaving, a faulty run is
// exactly reproducible, which is what lets the ps tests assert bit-exact
// convergence under injected failures.
package faults

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Op names an injection point inside the pipeline.
type Op string

// Injection points.
const (
	// OpGather is the parameter server's pre-fetch gather of host rows.
	OpGather Op = "gather"
	// OpApply is the server-side application of a pushed gradient.
	OpApply Op = "apply"
	// OpWorker is the worker's per-batch training step.
	OpWorker Op = "worker"
)

// ErrInjected is the sentinel every injected fault wraps; the pipeline uses
// it to distinguish injected failures (raised at known-consistent points)
// from genuine faults.
var ErrInjected = errors.New("faults: injected fault")

// Transient is an injected, retryable failure of one gather/apply attempt.
type Transient struct {
	Op      Op
	Iter    int
	Attempt int
}

func (e *Transient) Error() string {
	return fmt.Sprintf("faults: transient %s fault at iter %d (attempt %d)", e.Op, e.Iter, e.Attempt)
}

// Unwrap marks the fault as injected.
func (e *Transient) Unwrap() error { return ErrInjected }

// Temporary reports that the fault is retryable.
func (e *Transient) Temporary() bool { return true }

// Stall asks the injection site to sleep for D before proceeding — the
// slow-server scenario. It is not a failure: the operation continues after
// the delay.
type Stall struct {
	Op   Op
	Iter int
	D    time.Duration
}

func (e *Stall) Error() string {
	return fmt.Sprintf("faults: %s stall of %v at iter %d", e.Op, e.D, e.Iter)
}

// Unwrap marks the stall as injected.
func (e *Stall) Unwrap() error { return ErrInjected }

// WorkerFault is an injected worker panic. It is raised before the worker
// touches any model state, so training state remains consistent and the
// run is resumable from the reported iteration.
type WorkerFault struct {
	Iter int
}

func (e *WorkerFault) Error() string {
	return fmt.Sprintf("faults: worker panic injected at iter %d", e.Iter)
}

// Unwrap marks the fault as injected.
func (e *WorkerFault) Unwrap() error { return ErrInjected }

// IsInjected reports whether err originates from an injector.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// Injector decides, per attempt, whether an operation faults. Fault returns
// nil for success, a *Transient (retryable) or *WorkerFault (fatal) to
// fail the attempt, or a *Stall to delay it. Implementations must be safe
// for concurrent use: the pipeline consults the injector from the
// pre-fetcher, server and worker goroutines.
type Injector interface {
	Fault(op Op, iter, attempt int) error
}

// Nop injects nothing; it is the production injector (a nil Injector is
// treated the same way).
type Nop struct{}

// Fault never faults.
func (Nop) Fault(Op, int, int) error { return nil }

// Config parameterizes a Seeded injector. Probabilities are per attempt in
// [0, 1].
type Config struct {
	Seed uint64

	// GatherFailProb / ApplyFailProb make one gather or apply attempt fail
	// transiently; the pipeline retries with backoff.
	GatherFailProb float64
	ApplyFailProb  float64

	// StallProb delays the first attempt of a gather/apply by StallFor
	// (the slow-parameter-server scenario).
	StallProb float64
	StallFor  time.Duration

	// PanicWorker panics the worker at iteration PanicAt (before it
	// touches model state).
	PanicWorker bool
	PanicAt     int

	// MaxFaults caps the total number of injected transient faults
	// (0 = unlimited). Stalls and worker panics do not count.
	MaxFaults int
}

// Seeded is the deterministic injector: every decision is a pure hash of
// (seed, op, iter, attempt), so two runs with the same seed inject exactly
// the same faults regardless of scheduling.
type Seeded struct {
	cfg Config

	mu       sync.Mutex
	injected int // transient faults handed out, for MaxFaults
}

var _ Injector = (*Seeded)(nil)

// NewSeeded builds a deterministic injector from cfg.
func NewSeeded(cfg Config) *Seeded { return &Seeded{cfg: cfg} }

// Injected returns how many transient faults have been handed out.
func (s *Seeded) Injected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// Fault implements Injector.
func (s *Seeded) Fault(op Op, iter, attempt int) error {
	if op == OpWorker {
		if s.cfg.PanicWorker && iter == s.cfg.PanicAt {
			return &WorkerFault{Iter: iter}
		}
		return nil
	}
	if attempt == 0 && s.cfg.StallProb > 0 && s.cfg.StallFor > 0 &&
		chance(s.cfg.Seed, op, iter, 0, stallSalt) < s.cfg.StallProb {
		return &Stall{Op: op, Iter: iter, D: s.cfg.StallFor}
	}
	var prob float64
	switch op {
	case OpGather:
		prob = s.cfg.GatherFailProb
	case OpApply:
		prob = s.cfg.ApplyFailProb
	}
	if prob <= 0 || chance(s.cfg.Seed, op, iter, attempt, failSalt) >= prob {
		return nil
	}
	s.mu.Lock()
	capped := s.cfg.MaxFaults > 0 && s.injected >= s.cfg.MaxFaults
	if !capped {
		s.injected++
	}
	s.mu.Unlock()
	if capped {
		return nil
	}
	return &Transient{Op: op, Iter: iter, Attempt: attempt}
}

// Salts keep the stall and failure decision streams independent.
const (
	failSalt  = 0x9E3779B97F4A7C15
	stallSalt = 0xC2B2AE3D27D4EB4F
)

// chance hashes the decision coordinates into [0, 1).
func chance(seed uint64, op Op, iter, attempt int, salt uint64) float64 {
	h := seed ^ salt
	for _, c := range []byte(op) {
		h = (h ^ uint64(c)) * 0x100000001B3
	}
	h = mix(h ^ uint64(int64(iter)))
	h = mix(h ^ uint64(int64(attempt))<<32)
	// 53 bits of mantissa.
	return float64(h>>11) / float64(1<<53)
}

// mix is the splitmix64 finalizer.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
