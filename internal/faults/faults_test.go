package faults

import (
	"errors"
	"testing"
	"time"
)

func TestNopNeverFaults(t *testing.T) {
	var n Nop
	for iter := 0; iter < 100; iter++ {
		if err := n.Fault(OpGather, iter, 0); err != nil {
			t.Fatalf("Nop injected %v", err)
		}
	}
}

func TestSeededDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, GatherFailProb: 0.3, ApplyFailProb: 0.2, StallProb: 0.1, StallFor: time.Millisecond}
	a, b := NewSeeded(cfg), NewSeeded(cfg)
	for iter := 0; iter < 200; iter++ {
		for attempt := 0; attempt < 3; attempt++ {
			ea := a.Fault(OpGather, iter, attempt)
			eb := b.Fault(OpGather, iter, attempt)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("iter %d attempt %d: injectors disagree: %v vs %v", iter, attempt, ea, eb)
			}
			if ea != nil && ea.Error() != eb.Error() {
				t.Fatalf("iter %d attempt %d: different faults: %v vs %v", iter, attempt, ea, eb)
			}
		}
	}
	if a.Injected() == 0 {
		t.Fatal("probability 0.3 over 200 iterations injected nothing")
	}
	if a.Injected() != b.Injected() {
		t.Fatalf("fault counts diverge: %d vs %d", a.Injected(), b.Injected())
	}
}

func TestSeededFaultTypesAndSentinel(t *testing.T) {
	s := NewSeeded(Config{Seed: 7, GatherFailProb: 1})
	err := s.Fault(OpGather, 3, 1)
	var tr *Transient
	if !errors.As(err, &tr) {
		t.Fatalf("want *Transient, got %T (%v)", err, err)
	}
	if tr.Op != OpGather || tr.Iter != 3 || tr.Attempt != 1 {
		t.Fatalf("transient coordinates wrong: %+v", tr)
	}
	if !IsInjected(err) || !errors.Is(err, ErrInjected) {
		t.Fatal("transient fault does not wrap ErrInjected")
	}
	if !tr.Temporary() {
		t.Fatal("transient fault not temporary")
	}

	s = NewSeeded(Config{Seed: 7, StallProb: 1, StallFor: 5 * time.Millisecond})
	err = s.Fault(OpApply, 0, 0)
	var st *Stall
	if !errors.As(err, &st) {
		t.Fatalf("want *Stall, got %T (%v)", err, err)
	}
	if st.D != 5*time.Millisecond || !IsInjected(err) {
		t.Fatalf("stall wrong: %+v injected=%v", st, IsInjected(err))
	}
	// Stalls only hit the first attempt (retries must be able to make
	// progress).
	if err := s.Fault(OpApply, 0, 1); err != nil {
		t.Fatalf("stall injected on retry attempt: %v", err)
	}

	s = NewSeeded(Config{Seed: 7, PanicWorker: true, PanicAt: 12})
	if err := s.Fault(OpWorker, 11, 0); err != nil {
		t.Fatalf("worker fault at wrong iter: %v", err)
	}
	err = s.Fault(OpWorker, 12, 0)
	var wf *WorkerFault
	if !errors.As(err, &wf) || wf.Iter != 12 || !IsInjected(err) {
		t.Fatalf("want *WorkerFault at 12, got %T (%v)", err, err)
	}
}

func TestSeededMaxFaultsCap(t *testing.T) {
	s := NewSeeded(Config{Seed: 1, GatherFailProb: 1, MaxFaults: 4})
	n := 0
	for iter := 0; iter < 50; iter++ {
		if s.Fault(OpGather, iter, 0) != nil {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("cap 4 injected %d faults", n)
	}
	if s.Injected() != 4 {
		t.Fatalf("Injected() = %d", s.Injected())
	}
}

func TestWorkerOpIgnoresTransientProbs(t *testing.T) {
	s := NewSeeded(Config{Seed: 9, GatherFailProb: 1, ApplyFailProb: 1})
	for iter := 0; iter < 20; iter++ {
		if err := s.Fault(OpWorker, iter, 0); err != nil {
			t.Fatalf("worker op faulted without PanicWorker: %v", err)
		}
	}
}
