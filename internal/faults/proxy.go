package faults

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Dir names a forwarding direction through the proxy.
type Dir string

// Forwarding directions.
const (
	// DirRequest is client → server traffic.
	DirRequest Dir = "request"
	// DirResponse is server → client traffic.
	DirResponse Dir = "response"
)

// FrameSplitter reads exactly one protocol frame (raw bytes, header
// included) from r. It lets the proxy corrupt traffic at frame granularity
// without importing the protocol package: distps tests pass
// distps.ReadRawFrame. A splitter must return io.EOF only at a clean
// frame boundary.
type FrameSplitter func(r *bufio.Reader) ([]byte, error)

// ProxyConfig parameterizes a deterministic socket fault proxy.
// Probabilities are per frame in [0, 1] and are evaluated independently
// per (direction, frame index) — the decision stream is a pure hash, so a
// rerun with the same seed injects exactly the same faults no matter how
// goroutines interleave.
type ProxyConfig struct {
	Seed uint64

	// DropProb discards a frame entirely. The receiver times out waiting
	// for it.
	DropProb float64

	// DupProb forwards a frame twice back to back. A duplicated request
	// exercises server-side dedup; a duplicated response exercises the
	// client's request-id check.
	DupProb float64

	// TruncateProb forwards only a prefix of the frame and then severs the
	// connection (a half-written frame cannot be followed by anything — the
	// byte stream would desynchronize).
	TruncateProb float64

	// DelayProb stalls a frame for Delay before forwarding it.
	DelayProb float64
	Delay     time.Duration

	// KillConnAfter severs every connection after it has forwarded this
	// many frames (0 = never). Unlike the probabilistic faults it is
	// per-connection, modeling a peer that reliably dies mid-conversation.
	KillConnAfter int

	// MaxFaults caps the total number of injected faults across all
	// connections and directions (0 = unlimited). Delays do not count —
	// they perturb timing, not correctness.
	MaxFaults int

	// Sleep overrides how delays are served (tests make them instant).
	Sleep func(time.Duration)
}

// Verdict is one fault decision for one frame.
type Verdict int

// Frame verdicts, in the order the proxy checks them.
const (
	// Forward passes the frame through unchanged.
	Forward Verdict = iota
	// Drop discards the frame.
	Drop
	// Duplicate forwards the frame twice.
	Duplicate
	// Truncate forwards a prefix and severs the connection.
	Truncate
	// Delay stalls, then forwards.
	Delay
)

func (v Verdict) String() string {
	switch v {
	case Forward:
		return "forward"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Truncate:
		return "truncate"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Salts keep the per-fault decision streams independent.
const (
	dropSalt     = 0xA24BAED4963EE407
	dupSalt      = 0x9FB21C651E98DF25
	truncateSalt = 0xD6E8FEB86659FD93
	delaySalt    = 0xFF51AFD7ED558CCD
)

// ProxySchedule makes the fault decisions for a Proxy. The probabilistic
// part is a pure hash of (seed, direction, frame index); only the
// MaxFaults budget is shared mutable state, guarded by a mutex so
// concurrent connections can consult the schedule under the race detector.
type ProxySchedule struct {
	cfg ProxyConfig

	mu       sync.Mutex
	injected int
	counts   map[Verdict]int
}

// NewProxySchedule builds the decision function for cfg.
func NewProxySchedule(cfg ProxyConfig) *ProxySchedule {
	return &ProxySchedule{cfg: cfg, counts: make(map[Verdict]int)}
}

// Injected returns the total number of faults handed out (drops,
// duplicates, truncations and connection kills; not delays).
func (s *ProxySchedule) Injected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// Count returns how many times one verdict was handed out.
func (s *ProxySchedule) Count(v Verdict) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[v]
}

// charge consumes one unit of the fault budget; it reports false when the
// budget is exhausted (the caller forwards the frame unchanged instead).
func (s *ProxySchedule) charge(v Verdict) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.MaxFaults > 0 && s.injected >= s.cfg.MaxFaults {
		return false
	}
	s.injected++
	s.counts[v]++
	return true
}

// decide returns the verdict for frame `idx` flowing in direction `dir`.
// The probabilistic decision is deterministic; the budget check is the
// only shared state.
func (s *ProxySchedule) decide(dir Dir, idx int) Verdict {
	roll := func(salt uint64) float64 {
		h := s.cfg.Seed ^ salt
		for _, c := range []byte(dir) {
			h = (h ^ uint64(c)) * 0x100000001B3
		}
		h = mix(h ^ uint64(int64(idx)))
		return float64(h>>11) / float64(1<<53)
	}
	switch {
	case s.cfg.DropProb > 0 && roll(dropSalt) < s.cfg.DropProb:
		if s.charge(Drop) {
			return Drop
		}
	case s.cfg.DupProb > 0 && roll(dupSalt) < s.cfg.DupProb:
		if s.charge(Duplicate) {
			return Duplicate
		}
	case s.cfg.TruncateProb > 0 && roll(truncateSalt) < s.cfg.TruncateProb:
		if s.charge(Truncate) {
			return Truncate
		}
	case s.cfg.DelayProb > 0 && s.cfg.Delay > 0 && roll(delaySalt) < s.cfg.DelayProb:
		return Delay // delays are free: they do not consume budget
	}
	return Forward
}

// killConn reports whether a connection that has forwarded `frames` frames
// should now be severed, consuming budget when it fires.
func (s *ProxySchedule) killConn(frames int) bool {
	if s.cfg.KillConnAfter <= 0 || frames < s.cfg.KillConnAfter {
		return false
	}
	return s.charge(Truncate)
}

// Proxy is an in-process TCP fault injector: it listens on a loopback
// port, forwards each accepted connection to a target address, and
// corrupts the stream frame by frame according to a ProxySchedule. Tests
// point a distps client at the proxy instead of the shard and get
// deterministic drops, duplicates, truncations and connection kills
// without touching either endpoint.
type Proxy struct {
	sched    *ProxySchedule
	target   string
	split    FrameSplitter
	ln       net.Listener
	sleep    func(time.Duration)
	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	frameIdx struct {
		mu  sync.Mutex
		seq map[Dir]int
	}
}

// NewProxy starts a fault proxy on 127.0.0.1:0 forwarding to target.
// Frames are delimited by split. Close the proxy to release the port.
func NewProxy(target string, split FrameSplitter, cfg ProxyConfig) (*Proxy, error) {
	if split == nil {
		return nil, fmt.Errorf("faults: proxy needs a frame splitter")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faults: proxy listen: %w", err)
	}
	p := &Proxy{
		sched:  NewProxySchedule(cfg),
		target: target,
		split:  split,
		ln:     ln,
		sleep:  cfg.Sleep,
		conns:  make(map[net.Conn]struct{}),
	}
	if p.sleep == nil {
		p.sleep = time.Sleep
	}
	p.frameIdx.seq = make(map[Dir]int)
	p.wg.Add(1)
	spawn(func() {
		defer p.wg.Done()
		p.acceptLoop()
	})
	return p, nil
}

// spawn is the package's goroutine owner (see the gospawn analyzer).
func spawn(fn func()) { go fn() }

// Addr returns the proxy's listen address; dial this instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Schedule exposes the decision state (fault counts) for assertions.
func (p *Proxy) Schedule() *ProxySchedule { return p.sched }

// Close stops accepting, severs every proxied connection, and waits for
// the forwarding goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// track registers a connection for Close; it reports false (and closes the
// connection) when the proxy is already shut down.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

// nextIdx hands out the global frame index for one direction. A single
// cross-connection sequence per direction keeps the decision stream
// deterministic for the serialized request/response exchanges the distps
// client performs; concurrent connections still get a consistent (if
// interleaving-dependent) index, and the MaxFaults budget bounds total
// damage either way.
func (p *Proxy) nextIdx(dir Dir) int {
	p.frameIdx.mu.Lock()
	defer p.frameIdx.mu.Unlock()
	i := p.frameIdx.seq[dir]
	p.frameIdx.seq[dir] = i + 1
	return i
}

func (p *Proxy) acceptLoop() {
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			down.Close()
			continue
		}
		if !p.track(down) || !p.track(up) {
			down.Close()
			up.Close()
			return
		}
		pair := make(chan struct{}, 2)
		relay := func(dir Dir, src, dst net.Conn) {
			p.wg.Add(1)
			spawn(func() {
				defer p.wg.Done()
				p.relay(dir, src, dst)
				// Severing one direction severs the conversation: a
				// request/response protocol cannot survive half a pipe.
				pair <- struct{}{}
			})
		}
		relay(DirRequest, down, up)
		relay(DirResponse, up, down)
		p.wg.Add(1)
		spawn(func() {
			defer p.wg.Done()
			<-pair
			p.untrack(down)
			p.untrack(up)
		})
	}
}

// relay forwards frames from src to dst, applying the schedule to each.
func (p *Proxy) relay(dir Dir, src, dst net.Conn) {
	br := bufio.NewReader(src)
	forwarded := 0
	for {
		frame, err := p.split(br)
		if err != nil {
			return // peer closed or mid-frame cut; the pair teardown handles it
		}
		switch p.sched.decide(dir, p.nextIdx(dir)) {
		case Drop:
			continue
		case Duplicate:
			if !p.write(dst, frame) || !p.write(dst, frame) {
				return
			}
		case Truncate:
			// Forward a strict prefix, then sever: the receiver sees a
			// torn frame and must treat the connection as poisoned.
			cut := len(frame) / 2
			if cut == 0 {
				cut = 1
			}
			dst.Write(frame[:cut])
			return
		case Delay:
			p.sleep(p.sched.cfg.Delay)
			if !p.write(dst, frame) {
				return
			}
		default:
			if !p.write(dst, frame) {
				return
			}
		}
		forwarded++
		if p.sched.killConn(forwarded) {
			return
		}
	}
}

func (p *Proxy) write(dst io.Writer, frame []byte) bool {
	_, err := dst.Write(frame)
	return err == nil
}
