// Package core composes the paper's three contributions into the EL-Rec
// training system: Eff-TT compressed embedding tables (internal/tt),
// locality-based index reordering (internal/reorder) and the TT-based
// pipeline over a parameter server for whatever does not fit in device
// memory (internal/ps). Build performs the same placement decisions the
// paper describes — compress large tables into Eff-TT form, keep them in
// HBM, spill any remaining dense parameters to host memory — and returns a
// System ready to train.
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/embedding"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ps"
	"repro/internal/reorder"
	"repro/internal/tensor"
	"repro/internal/tt"
)

// Placement says where one embedding table ended up.
type Placement string

// Placement values.
const (
	PlaceTTDevice    Placement = "tt-device"    // TT-compressed, in HBM
	PlaceDenseDevice Placement = "dense-device" // uncompressed, in HBM
	PlaceHost        Placement = "host"         // uncompressed, host memory via PS
)

// Config configures a full EL-Rec system over one dataset.
type Config struct {
	Data  data.Spec
	Model dlrm.Config

	// Rank is the TT rank; TTThreshold is the minimum row count for a table
	// to be TT-compressed (the paper compresses tables above 1M rows).
	// TTThreshold < 0 disables compression entirely (the DLRM baseline).
	Rank        int
	TTThreshold int
	Opts        tt.Options

	// Reorder enables locality-based index reordering for the compressed
	// tables, driven by ProfileBatches×ProfileBatchSize profiled batches.
	Reorder          bool
	ReorderCfg       reorder.Config
	ProfileBatches   int
	ProfileBatchSize int

	// Adagrad switches the embedding tables from plain SGD to row-wise
	// (dense tables) / core-wise (TT tables) Adagrad. Host-resident tables
	// keep SGD (the parameter server applies raw gradient deltas).
	Adagrad bool

	// QueueDepth sets the pre-fetch/gradient queue capacity when host
	// placement is needed (1 = sequential).
	QueueDepth int

	// Lookahead sets the data-pipeline window size in batches: the
	// pre-fetcher plans the exact sparse access set of the next Lookahead
	// batches and uses it for oracle cache admission and cross-batch dedup
	// (rows reused within a window are gathered once), plus TT prefix-cache
	// protection on device tables. 0 or 1 disables the lookahead. Training
	// is bit-exact for every setting.
	Lookahead int

	// Faults injects deterministic failures into the pipeline trainer
	// (tests/chaos runs); nil trains fault-free.
	Faults faults.Injector

	// Retry bounds transient-fault retries in the pipeline; zero fields
	// take ps defaults.
	Retry ps.RetryPolicy

	// CheckpointPath / CheckpointEvery enable periodic crash-consistent
	// training-state checkpoints: the full state is written atomically to
	// CheckpointPath every CheckpointEvery completed iterations.
	CheckpointPath  string
	CheckpointEvery int

	// Device provides the HBM budget for placement; HBMReserve is held back
	// for activations and optimizer state.
	Device     hw.Device
	HBMReserve int64

	Seed uint64

	// Metrics, when non-nil, receives the system's instruments: the
	// pipeline's ps_* counters and the TT tables' tt_* counters/gauges.
	// Nil disables export at near-zero cost.
	Metrics *obs.Registry

	// Trace, when non-nil, records pipeline stage spans for Chrome trace
	// export (chrome://tracing / Perfetto).
	Trace *obs.Tracer

	// Clock supplies timestamps for stage timing; nil uses the system
	// clock. It never influences numeric results — only measurements.
	Clock obs.Clock
}

// DefaultConfig returns a ready-to-train configuration for a dataset spec.
func DefaultConfig(spec data.Spec) Config {
	model := dlrm.DefaultConfig(spec.NumDense, 16)
	model.LR = 1.0
	return Config{
		Data:             spec,
		Model:            model,
		Rank:             8,
		TTThreshold:      10_000,
		Opts:             tt.EffOptions(),
		Reorder:          true,
		ReorderCfg:       reorder.DefaultConfig(),
		ProfileBatches:   16,
		ProfileBatchSize: 512,
		QueueDepth:       4,
		Device:           hw.TeslaV100(),
		HBMReserve:       1 << 30,
		Seed:             7,
	}
}

// System is a built EL-Rec instance.
type System struct {
	Cfg        Config
	Dataset    *data.Dataset
	Bijections []*reorder.Bijection // per table; nil entry = identity
	Placements []Placement
	Pipeline   *ps.Pipeline // non-nil when any table lives on the host

	// pipe is the underlying trainer even when no table spilled to host
	// (Pipeline == nil); it carries the checkpoint machinery.
	pipe   *ps.Pipeline
	model  *dlrm.Model
	source ps.BatchSource

	// DeviceBytes / HostBytes are the embedding parameter footprints after
	// placement.
	DeviceBytes int64
	HostBytes   int64
}

// Build constructs the system: dataset, profiling, reordering bijections,
// table construction with HBM-aware placement, and the pipeline when host
// memory is needed.
func Build(cfg Config) (*System, error) {
	d, err := data.New(cfg.Data)
	if err != nil {
		return nil, err
	}
	return BuildWithDataset(cfg, d)
}

// BuildWithDataset is Build over an existing dataset (so several systems in
// one experiment share the generator).
func BuildWithDataset(cfg Config, d *data.Dataset) (*System, error) {
	if cfg.Model.EmbDim <= 0 {
		return nil, fmt.Errorf("core: invalid embedding dim %d", cfg.Model.EmbDim)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	s := &System{Cfg: cfg, Dataset: d}
	rows := cfg.Data.TableRows
	s.Bijections = make([]*reorder.Bijection, len(rows))
	s.Placements = make([]Placement, len(rows))

	// Decide compression per table.
	isTT := make([]bool, len(rows))
	for i, r := range rows {
		isTT[i] = cfg.TTThreshold >= 0 && r >= cfg.TTThreshold
	}

	// Profile + reorder the compressed tables.
	if cfg.Reorder {
		if cfg.ProfileBatches <= 0 || cfg.ProfileBatchSize <= 0 {
			return nil, fmt.Errorf("core: reordering requires profile batches")
		}
		batches := make([]*data.Batch, cfg.ProfileBatches)
		for it := range batches {
			batches[it] = d.Batch(it, cfg.ProfileBatchSize)
		}
		for i := range rows {
			if !isTT[i] {
				continue
			}
			counts := make([]int64, rows[i])
			cols := make([][]int, len(batches))
			for bi, b := range batches {
				cols[bi] = b.Sparse[i]
				for _, idx := range b.Sparse[i] {
					counts[idx]++
				}
			}
			bij, err := reorder.Build(counts, cols, cfg.ReorderCfg)
			if err != nil {
				return nil, fmt.Errorf("core: reorder table %d: %w", i, err)
			}
			s.Bijections[i] = bij
		}
	}

	// Construct tables with HBM-aware placement: TT tables first (tiny, in
	// HBM), then dense tables while they fit, the remainder on the host.
	budget := cfg.Device.HBMBytes - cfg.HBMReserve
	locs := make([]ps.TableLoc, len(rows))
	for i, r := range rows {
		if isTT[i] {
			shape, err := tt.NewShape(r, cfg.Model.EmbDim, cfg.Rank)
			if err != nil {
				return nil, fmt.Errorf("core: table %d: %w", i, err)
			}
			tbl := tt.NewTable(shape, tensor.NewRNG(cfg.Seed+uint64(i)*7919), math.Sqrt(1/float64(r)))
			tbl.Opts = cfg.Opts
			if cfg.Adagrad {
				tbl.EnableAdagrad()
			}
			if cfg.Metrics != nil {
				tbl.AttachMetrics(cfg.Metrics)
			}
			locs[i] = ps.TableLoc{Device: tbl}
			s.Placements[i] = PlaceTTDevice
			budget -= tbl.FootprintBytes()
			s.DeviceBytes += tbl.FootprintBytes()
		}
	}
	if budget < 0 {
		return nil, fmt.Errorf("core: TT tables alone exceed the HBM budget by %d bytes", -budget)
	}
	anyHost := false
	for i, r := range rows {
		if isTT[i] {
			continue
		}
		bytes := int64(r) * int64(cfg.Model.EmbDim) * 4
		if bytes <= budget {
			var bag dlrm.Table = dlrm.MustDenseTable(r, cfg.Model.EmbDim, cfg.Seed+uint64(i)*7919)
			if cfg.Adagrad {
				bag = embedding.NewAdagradBag(bag.(*embedding.Bag))
			}
			locs[i] = ps.TableLoc{Device: bag}
			s.Placements[i] = PlaceDenseDevice
			budget -= bytes
			s.DeviceBytes += bytes
		} else {
			locs[i] = ps.TableLoc{HostRows: r}
			s.Placements[i] = PlaceHost
			s.HostBytes += bytes
			anyHost = true
		}
	}

	pcfg := ps.Config{
		Model:      cfg.Model,
		QueueDepth: cfg.QueueDepth,
		Lookahead:  cfg.Lookahead,
		Seed:       cfg.Seed,
		Faults:     cfg.Faults,
		Retry:      cfg.Retry,
		Checkpoint: ps.CheckpointConfig{Path: cfg.CheckpointPath, Every: cfg.CheckpointEvery},
		Metrics:    cfg.Metrics,
		Trace:      cfg.Trace,
		Clock:      cfg.Clock,
	}
	if !anyHost {
		// Fully device-resident systems train through the sequential loop in
		// TrainContext, not the pipeline; registering the idle pipeline's
		// instruments would shadow a live pipeline sharing the registry with
		// permanently zero ps_* readings.
		pcfg.Metrics = nil
		pcfg.Trace = nil
	}
	pipe, err := ps.NewPipeline(pcfg, locs)
	if err != nil {
		return nil, err
	}
	if anyHost {
		s.Pipeline = pipe
	}
	s.pipe = pipe
	s.model = pipe.Model()
	s.model.SetClock(cfg.Clock)
	s.source = &remappedSource{d: d, bijections: s.Bijections}
	return s, nil
}

// remappedSource applies the per-table index bijections to every batch.
type remappedSource struct {
	d          *data.Dataset
	bijections []*reorder.Bijection
}

// Batch generates batch iter and remaps its sparse indices.
func (r *remappedSource) Batch(iter, size int) *data.Batch {
	b := r.d.Batch(iter, size)
	for t, bij := range r.bijections {
		if bij != nil {
			b.Sparse[t] = bij.Apply(b.Sparse[t])
		}
	}
	return b
}

// BatchIndices generates one table's index stream for batch iter with the
// same remapping Batch applies, so the lookahead planner (data.SparseSource)
// sees exactly the ids the pipeline will train on.
func (r *remappedSource) BatchIndices(iter, size, t int) []int {
	ids := r.d.BatchIndices(iter, size, t)
	if bij := r.bijections[t]; bij != nil {
		bij.ApplyInPlace(ids)
	}
	return ids
}

// Model returns the underlying DLRM.
func (s *System) Model() *dlrm.Model { return s.model }

// Source returns the (remapped) batch source the system trains on.
func (s *System) Source() ps.BatchSource { return s.source }

// TrainContext runs steps batches through the system (via the pipeline
// when host tables exist) with cancellation, fault handling and periodic
// checkpointing. On cancellation or failure the pipeline drains gracefully
// and the returned TrainResult carries the partial loss curve plus the
// next resumable iteration; see ps.Pipeline.Train for the consistency
// contract.
func (s *System) TrainContext(ctx context.Context, startIter, steps, batchSize int) (*ps.TrainResult, error) {
	if s.Pipeline != nil {
		return s.Pipeline.Train(ctx, s.source, startIter, steps, batchSize)
	}
	// Fully device-resident: a sequential timed loop (the hw cost model
	// reads the per-op timing), with the same cancellation and checkpoint
	// behaviour as the pipelined path.
	if ctx == nil {
		ctx = context.Background() //elrec:rootctx nil-ctx compatibility default for direct System embedders
	}
	curve := &metrics.LossCurve{}
	res := &ps.TrainResult{Curve: curve, NextIter: startIter, Resumable: true}
	for it := 0; it < steps; it++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		iter := startIter + it
		loss := s.model.TimedTrainStep(s.source.Batch(iter, batchSize))
		curve.Add(iter, float64(loss))
		res.Completed++
		res.NextIter = iter + 1
		if s.Cfg.CheckpointPath != "" && s.Cfg.CheckpointEvery > 0 && res.NextIter%s.Cfg.CheckpointEvery == 0 {
			if err := s.SaveCheckpoint(s.Cfg.CheckpointPath, res.NextIter); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// Train is the legacy convenience wrapper: no cancellation, panics on a
// pipeline fault (without an injector configured, faults cannot occur, so
// the experiment harness and examples keep their simple shape).
func (s *System) Train(startIter, steps, batchSize int) *metrics.LossCurve {
	//elrec:rootctx documented legacy API: Train has no cancellation by contract
	res, err := s.TrainContext(context.Background(), startIter, steps, batchSize)
	if err != nil {
		//elrec:invariant documented legacy API: without a fault injector TrainContext cannot fail
		panic(err)
	}
	return res.Curve
}

// SaveCheckpoint atomically persists the full training state (model,
// optimizer state, host tables, iteration counter) to path. Call between
// Train invocations, or rely on Cfg.CheckpointPath/CheckpointEvery for
// periodic checkpoints inside Train.
func (s *System) SaveCheckpoint(path string, nextIter int) error {
	return s.pipe.SaveCheckpoint(path, nextIter)
}

// ResumeFrom restores a checkpoint written by SaveCheckpoint into this
// system (which must be built with the same configuration) and returns the
// next iteration to train. Resumed training is bit-identical to a run that
// never stopped.
func (s *System) ResumeFrom(path string) (int, error) {
	return s.pipe.LoadCheckpoint(path)
}

// Evaluate computes held-out accuracy and AUC over batches starting at
// startIter.
func (s *System) Evaluate(startIter, batches, batchSize int) (acc, auc float64) {
	var probs, labels []float32
	for it := 0; it < batches; it++ {
		b := s.source.Batch(startIter+it, batchSize)
		probs = append(probs, s.model.Predict(b)...)
		labels = append(labels, b.Labels...)
	}
	return metrics.Accuracy(probs, labels, 0.5), metrics.AUC(probs, labels)
}

// CompressionRatio returns uncompressed embedding bytes over placed bytes.
func (s *System) CompressionRatio() float64 {
	raw := s.Cfg.Data.EmbeddingBytes(s.Cfg.Model.EmbDim)
	placed := s.DeviceBytes + s.HostBytes
	if placed == 0 {
		return 0
	}
	return float64(raw) / float64(placed)
}
