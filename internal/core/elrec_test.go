package core

import (
	"testing"

	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/hw"
	"repro/internal/tt"
)

func coreSpec() data.Spec {
	return data.Spec{
		Name: "core-test", NumDense: 3, TableRows: []int{2000, 80, 5000},
		ZipfS: 1.2, ZipfV: 2, GroupSize: 16, ActiveGroups: 4, Locality: 0.8,
		Samples: 1 << 20, Seed: 41,
	}
}

func coreConfig() Config {
	cfg := DefaultConfig(coreSpec())
	cfg.Model = dlrm.Config{NumDense: 3, EmbDim: 8, BottomSizes: []int{12}, TopSizes: []int{12}, LR: 2.0, Seed: 5}
	cfg.Rank = 8
	cfg.TTThreshold = 1000
	cfg.ProfileBatches = 8
	cfg.ProfileBatchSize = 128
	return cfg
}

func TestBuildPlacesTablesOnDevice(t *testing.T) {
	sys, err := Build(coreConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := []Placement{PlaceTTDevice, PlaceDenseDevice, PlaceTTDevice}
	for i, p := range sys.Placements {
		if p != want[i] {
			t.Fatalf("table %d placed %q want %q", i, p, want[i])
		}
	}
	if sys.Pipeline != nil {
		t.Fatal("no host tables, but a pipeline was kept")
	}
	if sys.HostBytes != 0 || sys.DeviceBytes == 0 {
		t.Fatalf("footprints device=%d host=%d", sys.DeviceBytes, sys.HostBytes)
	}
	// Reordering must have produced bijections exactly for the TT tables.
	for i, bij := range sys.Bijections {
		isTT := sys.Placements[i] == PlaceTTDevice
		if isTT && bij == nil {
			t.Fatalf("TT table %d missing bijection", i)
		}
		if !isTT && bij != nil {
			t.Fatalf("dense table %d has a bijection", i)
		}
		if bij != nil {
			if err := bij.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestBuildSpillsToHostWhenHBMSmall(t *testing.T) {
	cfg := coreConfig()
	// A device with almost no memory: TT tables fit (tiny) but the dense
	// 80-row table cannot.
	cfg.Device = hw.Device{Name: "tiny", HBMBytes: 20 << 10, ComputeScale: 1}
	cfg.HBMReserve = 0
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Placements[1] != PlaceHost {
		t.Fatalf("small dense table placed %q want host", sys.Placements[1])
	}
	if sys.Pipeline == nil {
		t.Fatal("host placement without pipeline")
	}
	if sys.HostBytes == 0 {
		t.Fatal("host bytes not accounted")
	}
	// The spilled system must still train.
	curve := sys.Train(100, 10, 64)
	if len(curve.Losses) != 10 {
		t.Fatalf("trained %d steps", len(curve.Losses))
	}
}

func TestBuildRejectsImpossibleBudget(t *testing.T) {
	cfg := coreConfig()
	cfg.Device = hw.Device{Name: "none", HBMBytes: 16, ComputeScale: 1}
	cfg.HBMReserve = 0
	if _, err := Build(cfg); err == nil {
		t.Fatal("TT tables exceeding HBM accepted")
	}
}

func TestSystemTrainsAndLearns(t *testing.T) {
	sys, err := Build(coreConfig())
	if err != nil {
		t.Fatal(err)
	}
	curve := sys.Train(100, 2200, 128)
	if curve.Final(50) >= curve.Smoothed(50)[49] {
		t.Fatalf("loss did not decrease: %v -> %v", curve.Smoothed(50)[49], curve.Final(50))
	}
	// Evaluate on batches from the trained region: held-out batches drift
	// to unseen hot groups on this small budget, which measures coverage,
	// not learning.
	acc, auc := sys.Evaluate(150, 10, 128)
	if auc < 0.57 {
		t.Fatalf("EL-Rec failed to learn: acc=%.3f auc=%.3f", acc, auc)
	}
}

func TestNoCompressionBaseline(t *testing.T) {
	cfg := coreConfig()
	cfg.TTThreshold = -1 // DLRM baseline: nothing compressed
	cfg.Reorder = false
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range sys.Placements {
		if p != PlaceDenseDevice {
			t.Fatalf("table %d placed %q want dense-device", i, p)
		}
	}
	if sys.CompressionRatio() != 1 {
		t.Fatalf("uncompressed ratio %v want 1", sys.CompressionRatio())
	}
}

func TestCompressionRatioAboveOneWithTT(t *testing.T) {
	sys, err := Build(coreConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r := sys.CompressionRatio(); r <= 1 {
		t.Fatalf("compression ratio %v not > 1", r)
	}
}

func TestRemappedSourcePermutesSparseOnly(t *testing.T) {
	sys, err := Build(coreConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw := sys.Dataset.Batch(5, 32)
	remapped := sys.Source().Batch(5, 32)
	if raw.Dense.MaxAbsDiff(remapped.Dense) != 0 {
		t.Fatal("remap altered dense features")
	}
	for s := range raw.Labels {
		if raw.Labels[s] != remapped.Labels[s] {
			t.Fatal("remap altered labels")
		}
	}
	// TT tables (0 and 2) are remapped through their bijections; the dense
	// table (1) is untouched.
	for s, idx := range raw.Sparse[1] {
		if remapped.Sparse[1][s] != idx {
			t.Fatal("identity table was remapped")
		}
	}
	diff := false
	for s, idx := range raw.Sparse[0] {
		want := int(sys.Bijections[0].Forward[idx])
		if remapped.Sparse[0][s] != want {
			t.Fatalf("remap wrong at sample %d", s)
		}
		if want != idx {
			diff = true
		}
	}
	if !diff {
		t.Fatal("bijection is identity; remap test has no power")
	}
}

func TestOptionsPropagateToTables(t *testing.T) {
	cfg := coreConfig()
	cfg.Opts = tt.NaiveOptions()
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, ok := sys.Model().Tables[0].(*tt.Table)
	if !ok {
		t.Fatal("table 0 is not a TT table")
	}
	if tbl.Opts != tt.NaiveOptions() {
		t.Fatalf("options not propagated: %+v", tbl.Opts)
	}
}

func TestEvaluateWithHostTables(t *testing.T) {
	// Evaluation must work when tables live behind the parameter server
	// (the inference path reads host memory synchronously).
	cfg := coreConfig()
	cfg.Device = hw.Device{Name: "tiny", HBMBytes: 20 << 10, ComputeScale: 1}
	cfg.HBMReserve = 0
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Pipeline == nil {
		t.Fatal("expected host placement")
	}
	sys.Train(0, 5, 32)
	acc, auc := sys.Evaluate(10, 2, 32)
	if acc < 0 || acc > 1 || auc < 0 || auc > 1 {
		t.Fatalf("evaluation out of range: %v %v", acc, auc)
	}
}

func TestAdagradSystem(t *testing.T) {
	cfg := coreConfig()
	cfg.Adagrad = true
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ttTbl, ok := sys.Model().Tables[0].(*tt.Table)
	if !ok {
		t.Fatal("table 0 not TT")
	}
	if !ttTbl.AdagradEnabled() {
		t.Fatal("TT table missing Adagrad state")
	}
	curve := sys.Train(0, 60, 64)
	early := curve.Smoothed(10)[9]
	if late := curve.Final(10); late >= early {
		t.Fatalf("Adagrad system did not reduce loss: %v -> %v", early, late)
	}
}
