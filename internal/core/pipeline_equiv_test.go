package core

import (
	"testing"

	"repro/internal/data"
	"repro/internal/hw"
)

// TestCorePipelineEquivalence: a full EL-Rec system (TT device tables +
// reordering + host spill) must produce bit-identical MLP parameters under
// sequential and pipelined schedules. This is the regression test for the
// Louvain nondeterminism that once made two identical Builds train
// differently.
func TestCorePipelineEquivalence(t *testing.T) {
	spec := data.KaggleSpec(0.001)
	run := func(depth int) *System {
		cfg := DefaultConfig(spec)
		cfg.Model.EmbDim = 16
		cfg.Rank = 8
		cfg.QueueDepth = depth
		cfg.Device = hw.Device{Name: "tiny-hbm", HBMBytes: 1 << 20, ComputeScale: 1}
		cfg.HBMReserve = 0
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.Train(0, 50, 64)
		return sys
	}
	seq := run(1)
	pipe := run(4)
	sp, pp := seq.Model().MLPParams(), pipe.Model().MLPParams()
	for i := range sp {
		if diff := sp[i].Value.MaxAbsDiff(pp[i].Value); diff != 0 {
			t.Fatalf("MLP param %d differs by %v", i, diff)
		}
	}
}
