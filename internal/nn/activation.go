package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation layer.
type ReLU struct {
	mask  []bool         // true where the input was positive
	y, dx *tensor.Matrix // layer-owned buffers, reused per step
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward computes max(0, x) element-wise. The returned matrix is
// layer-owned and overwritten by the next Forward.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	r.y = tensor.Reuse(r.y, x.Rows, x.Cols)
	y := r.y
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			r.mask[i] = true
		} else {
			y.Data[i] = 0
			r.mask[i] = false
		}
	}
	return y
}

// Backward zeroes gradient entries where the forward input was non-positive.
func (r *ReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if len(r.mask) != len(dy.Data) {
		//elrec:invariant forward/backward pairing: the MLP drives Backward with the tensor Forward produced
		panic(shapeErr("ReLU Backward shape does not match Forward"))
	}
	r.dx = tensor.Reuse(r.dx, dy.Rows, dy.Cols)
	dx := r.dx
	for i, v := range dy.Data {
		if r.mask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation layer.
type Sigmoid struct {
	y  *tensor.Matrix // cached output (layer-owned, reused per step)
	dx *tensor.Matrix
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward computes 1/(1+exp(-x)) element-wise. The returned matrix is
// layer-owned and overwritten by the next Forward.
func (s *Sigmoid) Forward(x *tensor.Matrix) *tensor.Matrix {
	s.y = tensor.Reuse(s.y, x.Rows, x.Cols)
	y := s.y
	for i, v := range x.Data {
		y.Data[i] = sigmoid(v)
	}
	return y
}

// Backward computes dx = dy · y·(1-y).
func (s *Sigmoid) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if s.y == nil || len(s.y.Data) != len(dy.Data) {
		//elrec:invariant forward/backward pairing: the MLP drives Backward with the tensor Forward produced
		panic(shapeErr("Sigmoid Backward shape does not match Forward"))
	}
	s.dx = tensor.Reuse(s.dx, dy.Rows, dy.Cols)
	dx := s.dx
	for i, v := range dy.Data {
		yv := s.y.Data[i]
		dx.Data[i] = v * yv * (1 - yv)
	}
	return dx
}

// Params returns no parameters.
func (s *Sigmoid) Params() []*Param { return nil }

// sigmoid is the scalar logistic function with overflow guards.
func sigmoid(v float32) float32 {
	x := float64(v)
	switch {
	case x >= 30:
		return 1
	case x <= -30:
		return 0
	}
	return float32(1 / (1 + math.Exp(-x)))
}
