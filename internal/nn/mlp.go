package nn

import (
	"repro/internal/tensor"
)

// MLP is a stack of Linear layers with ReLU between them, matching the
// bottom/top MLP towers of the DLRM reference implementation. When
// sigmoidOut is set the final layer output passes through a Sigmoid (the
// CTR prediction head).
type MLP struct {
	Sizes  []int
	layers []Layer
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes = [13, 512,
// 256, 64] builds three Linear layers. sigmoidOut appends a Sigmoid after
// the last Linear; hidden layers always use ReLU.
func NewMLP(sizes []int, sigmoidOut bool, rng *tensor.RNG) *MLP {
	if len(sizes) < 2 {
		//elrec:invariant model construction: layer sizes are fixed in the DLRM config
		panic(usageErr("MLP needs at least 2 sizes, got %v", sizes))
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	for i := 0; i+1 < len(sizes); i++ {
		m.layers = append(m.layers, NewLinear(sizes[i], sizes[i+1], rng))
		last := i+2 == len(sizes)
		if !last {
			m.layers = append(m.layers, NewReLU())
		} else if sigmoidOut {
			m.layers = append(m.layers, NewSigmoid())
		}
	}
	return m
}

// Forward runs the batch through every layer.
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the output gradient through every layer in reverse.
func (m *MLP) Backward(dy *tensor.Matrix) *tensor.Matrix {
	for i := len(m.layers) - 1; i >= 0; i-- {
		dy = m.layers[i].Backward(dy)
	}
	return dy
}

// Params returns all trainable parameters in layer order.
func (m *MLP) Params() []*Param {
	var out []*Param
	for _, l := range m.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total trainable element count, used for footprint
// accounting in the experiment harness.
func (m *MLP) NumParams() int {
	var n int
	for _, p := range m.Params() {
		n += len(p.Value.Data)
	}
	return n
}

// CloneArchitecture builds a fresh MLP with the same sizes and newly
// initialized weights drawn from rng (used to replicate workers).
func (m *MLP) CloneArchitecture(sigmoidOut bool, rng *tensor.RNG) *MLP {
	return NewMLP(m.Sizes, sigmoidOut, rng)
}

// Clone returns a deep copy of the MLP: same layer stack, copied parameter
// values, fresh gradient accumulators and fresh layer-owned scratch buffers.
// Because every mutable buffer is per-clone, a clone's Forward never races
// with its source's — the property the serving replica pool builds on.
func (m *MLP) Clone() *MLP {
	c := &MLP{Sizes: append([]int(nil), m.Sizes...)}
	for _, l := range m.layers {
		c.layers = append(c.layers, cloneLayer(l))
	}
	return c
}

// cloneLayer deep-copies one layer's parameters, leaving scratch unshared.
func cloneLayer(l Layer) Layer {
	switch v := l.(type) {
	case *Linear:
		return &Linear{In: v.In, Out: v.Out, W: v.W.clone(), B: v.B.clone()}
	case *ReLU:
		return NewReLU()
	case *Sigmoid:
		return NewSigmoid()
	default:
		//elrec:invariant NewMLP only stacks Linear/ReLU/Sigmoid layers
		panic(usageErr("Clone: unknown layer type %T", l))
	}
}

// CopyParamsFrom copies parameter values from src (same architecture) into
// m. Used to replicate MLP towers across data-parallel workers.
func (m *MLP) CopyParamsFrom(src *MLP) {
	sp, dp := src.Params(), m.Params()
	if len(sp) != len(dp) {
		//elrec:invariant parameter copies only run between identically configured models
		panic(usageErr("CopyParamsFrom architecture mismatch"))
	}
	for i := range sp {
		dp[i].Value.CopyFrom(sp[i].Value)
	}
}
