package nn

import "math"

// Adagrad is the adaptive-gradient optimizer commonly used for DLRM dense
// towers in production (the paper trains with SGD; Adagrad is provided as
// the natural extension — sparse embedding variants live with the tables).
// Each parameter entry accumulates the sum of squared gradients and is
// updated with lr / sqrt(accum + eps).
type Adagrad struct {
	LR  float32
	Eps float32

	state map[*Param][]float32
}

// NewAdagrad returns an optimizer with the given learning rate.
func NewAdagrad(lr float32) *Adagrad {
	return &Adagrad{LR: lr, Eps: 1e-8, state: make(map[*Param][]float32)}
}

// Step applies the Adagrad update to every parameter and clears gradients.
func (a *Adagrad) Step(params []*Param) {
	for _, p := range params {
		acc, ok := a.state[p]
		if !ok {
			acc = make([]float32, len(p.Value.Data))
			a.state[p] = acc
		}
		for i, g := range p.Grad.Data {
			acc[i] += g * g
			p.Value.Data[i] -= a.LR * g / float32(math.Sqrt(float64(acc[i])+float64(a.Eps)))
		}
		p.Grad.Zero()
	}
}

// Accum returns the squared-gradient accumulator of a parameter (nil if the
// parameter has not been stepped yet). Exposed for checkpointing.
func (a *Adagrad) Accum(p *Param) []float32 { return a.state[p] }

// SetAccum restores a checkpointed accumulator.
func (a *Adagrad) SetAccum(p *Param, acc []float32) {
	if len(acc) != len(p.Value.Data) {
		//elrec:invariant optimizer state is sized with its parameters at construction
		panic(shapeErr("Adagrad accumulator length mismatch"))
	}
	a.state[p] = acc
}
