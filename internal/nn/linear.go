package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Linear is a fully connected layer computing y = x·Wᵀ + b for a batch of
// row vectors, matching torch.nn.Linear's weight layout (W is out×in).
type Linear struct {
	In, Out int
	W       *Param // Out × In
	B       *Param // 1 × Out

	x     *tensor.Matrix // cached input from Forward
	y, dx *tensor.Matrix // layer-owned output/input-grad buffers, reused per step
}

// NewLinear constructs a Linear layer with Xavier-initialized weights.
func NewLinear(in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		W:   NewParam(fmt.Sprintf("linear%dx%d.W", out, in), out, in),
		B:   NewParam(fmt.Sprintf("linear%dx%d.b", out, in), 1, out),
	}
	tensor.XavierInit(l.W.Value, rng)
	return l
}

// Forward computes y = x·Wᵀ + b and caches x for Backward. The returned
// matrix is layer-owned and overwritten by the next Forward.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.In {
		//elrec:invariant layer widths are chained at MLP construction
		panic(shapeErr("Linear forward input width %d want %d", x.Cols, l.In))
	}
	l.x = x
	l.y = tensor.Reuse(l.y, x.Rows, l.Out)
	y := l.y
	tensor.MatMulTransB(y, x, l.W.Value)
	bias := l.B.Value.Data
	for i := 0; i < y.Rows; i++ {
		tensor.AddTo(y.Row(i), bias)
	}
	return y
}

// Backward accumulates dW += dyᵀ·x and db += Σᵢ dyᵢ, and returns dx = dy·W.
func (l *Linear) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if l.x == nil {
		//elrec:invariant the training step always runs Forward before Backward
		panic(usageErr("Linear Backward before Forward"))
	}
	if dy.Rows != l.x.Rows || dy.Cols != l.Out {
		//elrec:invariant the upstream gradient mirrors the Forward output shape
		panic(shapeErr("Linear backward grad %dx%d want %dx%d", dy.Rows, dy.Cols, l.x.Rows, l.Out))
	}
	tensor.MatMulTransAAdd(l.W.Grad, dy, l.x)
	db := l.B.Grad.Data
	for i := 0; i < dy.Rows; i++ {
		tensor.AddTo(db, dy.Row(i))
	}
	l.dx = tensor.Reuse(l.dx, dy.Rows, l.In)
	tensor.MatMul(l.dx, dy, l.W.Value)
	return l.dx
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }
