// Package nn implements the dense neural-network substrate of a DLRM: linear
// layers, activations, multi-layer perceptrons, the dot-product feature
// interaction, binary cross-entropy loss, and a plain SGD optimizer. Layers
// follow a manual forward/backward discipline: Forward caches what Backward
// needs; Backward accumulates parameter gradients and returns the gradient
// with respect to the layer input.
package nn

import "repro/internal/tensor"

// Param is a trainable dense parameter with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParam allocates a parameter and a zeroed gradient of the same shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(rows, cols),
		Grad:  tensor.New(rows, cols),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// clone deep-copies the parameter value with a fresh, zeroed gradient.
func (p *Param) clone() *Param {
	return &Param{
		Name:  p.Name,
		Value: p.Value.Clone(),
		Grad:  tensor.New(p.Grad.Rows, p.Grad.Cols),
	}
}

// Layer is the interface shared by all dense layers.
type Layer interface {
	// Forward consumes a batch×in matrix and returns a batch×out matrix.
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward consumes the gradient w.r.t. the output of the most recent
	// Forward call and returns the gradient w.r.t. its input, accumulating
	// parameter gradients along the way.
	Backward(dy *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// ZeroGrads clears gradients on every parameter of every layer given.
func ZeroGrads(layers ...Layer) {
	for _, l := range layers {
		for _, p := range l.Params() {
			p.ZeroGrad()
		}
	}
}
