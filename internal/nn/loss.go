package nn

import (
	"math"

	"repro/internal/tensor"
)

// BCEWithLogits computes the mean binary cross-entropy between logits
// (batch×1) and labels (0 or 1), returning the loss and the gradient with
// respect to the logits. The formulation is the numerically stable
// log-sum-exp form used by torch.nn.BCEWithLogitsLoss:
//
//	loss = max(z,0) − z·y + log(1 + exp(−|z|))
//	dz   = (σ(z) − y) / batch
func BCEWithLogits(logits *tensor.Matrix, labels []float32) (float32, *tensor.Matrix) {
	if logits.Cols != 1 {
		//elrec:invariant the top MLP ends in a single output column
		panic(shapeErr("BCEWithLogits expects batch×1 logits, got %dx%d", logits.Rows, logits.Cols))
	}
	if logits.Rows != len(labels) {
		//elrec:invariant logits and labels come from the same batch
		panic(shapeErr("BCEWithLogits %d logits vs %d labels", logits.Rows, len(labels)))
	}
	n := logits.Rows
	if n == 0 {
		return 0, tensor.New(0, 1)
	}
	grad := tensor.New(n, 1)
	var total float64
	inv := 1 / float32(n)
	for i := 0; i < n; i++ {
		z := float64(logits.Data[i])
		y := float64(labels[i])
		loss := math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
		total += loss
		grad.Data[i] = (sigmoid(logits.Data[i]) - labels[i]) * inv
	}
	return float32(total / float64(n)), grad
}

// BCE computes the mean binary cross-entropy between probabilities p∈(0,1)
// (batch×1) and labels, with clamping for numerical safety, returning the
// loss and gradient w.r.t. p. Used when a model ends in an explicit Sigmoid.
func BCE(probs *tensor.Matrix, labels []float32) (float32, *tensor.Matrix) {
	if probs.Cols != 1 {
		//elrec:invariant the top MLP ends in a single output column
		panic(shapeErr("BCE expects batch×1 probs, got %dx%d", probs.Rows, probs.Cols))
	}
	if probs.Rows != len(labels) {
		//elrec:invariant probs and labels come from the same batch
		panic(shapeErr("BCE %d probs vs %d labels", probs.Rows, len(labels)))
	}
	n := probs.Rows
	if n == 0 {
		return 0, tensor.New(0, 1)
	}
	const eps = 1e-7
	grad := tensor.New(n, 1)
	var total float64
	inv := 1 / float32(n)
	for i := 0; i < n; i++ {
		p := float64(probs.Data[i])
		if p < eps {
			p = eps
		} else if p > 1-eps {
			p = 1 - eps
		}
		y := float64(labels[i])
		total += -(y*math.Log(p) + (1-y)*math.Log(1-p))
		grad.Data[i] = float32((p-y)/(p*(1-p))) * inv
	}
	return float32(total / float64(n)), grad
}

// SigmoidSlice applies the logistic function to logits, producing
// probabilities (for evaluation/AUC).
func SigmoidSlice(logits []float32) []float32 {
	out := make([]float32, len(logits))
	SigmoidInto(out, logits)
	return out
}

// SigmoidInto writes the logistic function of logits into dst, which must
// have the same length — the allocation-free form of SigmoidSlice for hot
// serving paths that own their output scratch. Element results are
// bit-identical to SigmoidSlice.
func SigmoidInto(dst, logits []float32) {
	if len(dst) != len(logits) {
		//elrec:invariant caller sizes dst to logits; serving scratch is resliced to the row count
		panic(shapeErr("SigmoidInto dst len %d, logits len %d", len(dst), len(logits)))
	}
	for i, v := range logits {
		dst[i] = sigmoid(v)
	}
}
