package nn

import "repro/internal/tensor"

// SGD is a plain stochastic-gradient-descent optimizer, the optimizer the
// paper trains every system with (sparse embedding updates are handled by
// the embedding/tt packages themselves).
type SGD struct {
	LR float32
}

// NewSGD returns an optimizer with the given learning rate.
func NewSGD(lr float32) *SGD { return &SGD{LR: lr} }

// Step applies p.Value -= lr·p.Grad to every parameter and clears the
// gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		tensor.Axpy(-s.LR, p.Grad.Data, p.Value.Data)
		p.Grad.Zero()
	}
}

// StepNoZero applies the update without clearing gradients (used by tests
// that inspect the accumulated gradient afterwards).
func (s *SGD) StepNoZero(params []*Param) {
	for _, p := range params {
		tensor.Axpy(-s.LR, p.Grad.Data, p.Value.Data)
	}
}
