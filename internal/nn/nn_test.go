package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// numericGrad estimates d(loss)/d(x[idx]) by central differences where loss
// is recomputed by eval after perturbing x[idx].
func numericGrad(x []float32, idx int, eval func() float64) float64 {
	const h = 1e-3
	orig := x[idx]
	x[idx] = orig + h
	lp := eval()
	x[idx] = orig - h
	lm := eval()
	x[idx] = orig
	return (lp - lm) / (2 * h)
}

// scalarLoss reduces a matrix to 0.5·Σv² so its gradient w.r.t. the matrix
// is simply the matrix itself.
func scalarLoss(m *tensor.Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += 0.5 * float64(v) * float64(v)
	}
	return s
}

func TestLinearForwardKnownValues(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear(2, 3, rng)
	l.W.Value.CopyFrom(tensor.FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6}))
	l.B.Value.CopyFrom(tensor.FromSlice(1, 3, []float32{0.5, -0.5, 1}))
	x := tensor.FromSlice(1, 2, []float32{1, 1})
	y := l.Forward(x)
	want := []float32{3.5, 6.5, 12}
	for i, v := range want {
		if math.Abs(float64(y.Data[i]-v)) > 1e-6 {
			t.Fatalf("Forward[%d] = %v want %v", i, y.Data[i], v)
		}
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLinear(4, 3, rng)
	x := tensor.New(5, 4)
	rng.FillUniform(x.Data, 1)

	eval := func() float64 { return scalarLoss(l.Forward(x)) }
	y := l.Forward(x)
	ZeroGrads(l)
	dx := l.Backward(y) // d(0.5 Σy²)/dy = y

	// Check input gradient.
	for _, idx := range []int{0, 7, 19} {
		want := numericGrad(x.Data, idx, eval)
		if got := float64(dx.Data[idx]); math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("dx[%d] = %v want %v", idx, got, want)
		}
	}
	// Check weight gradient.
	for _, idx := range []int{0, 5, 11} {
		want := numericGrad(l.W.Value.Data, idx, eval)
		if got := float64(l.W.Grad.Data[idx]); math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("dW[%d] = %v want %v", idx, got, want)
		}
	}
	// Check bias gradient.
	for idx := 0; idx < 3; idx++ {
		want := numericGrad(l.B.Value.Data, idx, eval)
		if got := float64(l.B.Grad.Data[idx]); math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("db[%d] = %v want %v", idx, got, want)
		}
	}
}

func TestLinearBackwardBeforeForwardPanics(t *testing.T) {
	l := NewLinear(2, 2, tensor.NewRNG(3))
	defer func() {
		if recover() == nil {
			t.Fatal("Backward before Forward did not panic")
		}
	}()
	l.Backward(tensor.New(1, 2))
}

func TestReLU(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice(2, 2, []float32{-1, 2, 0, 3})
	y := r.Forward(x)
	want := []float32{0, 2, 0, 3}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("ReLU forward %v want %v", y.Data, want)
		}
	}
	dy := tensor.FromSlice(2, 2, []float32{5, 5, 5, 5})
	dx := r.Backward(dy)
	wantDx := []float32{0, 5, 0, 5}
	for i := range wantDx {
		if dx.Data[i] != wantDx[i] {
			t.Fatalf("ReLU backward %v want %v", dx.Data, wantDx)
		}
	}
}

func TestSigmoidForwardBackward(t *testing.T) {
	s := NewSigmoid()
	x := tensor.FromSlice(1, 3, []float32{0, 100, -100})
	y := s.Forward(x)
	if math.Abs(float64(y.Data[0])-0.5) > 1e-6 || y.Data[1] != 1 || y.Data[2] != 0 {
		t.Fatalf("Sigmoid forward %v", y.Data)
	}
	dy := tensor.FromSlice(1, 3, []float32{1, 1, 1})
	dx := s.Backward(dy)
	if math.Abs(float64(dx.Data[0])-0.25) > 1e-6 {
		t.Fatalf("Sigmoid backward at 0 = %v want 0.25", dx.Data[0])
	}
	if dx.Data[1] != 0 || dx.Data[2] != 0 {
		t.Fatalf("Sigmoid backward saturated = %v want 0", dx.Data[1:])
	}
}

func TestMLPShapesAndGradCheck(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := NewMLP([]int{6, 8, 4, 1}, false, rng)
	x := tensor.New(3, 6)
	rng.FillUniform(x.Data, 1)
	y := m.Forward(x)
	if y.Rows != 3 || y.Cols != 1 {
		t.Fatalf("MLP output %dx%d want 3x1", y.Rows, y.Cols)
	}
	eval := func() float64 { return scalarLoss(m.Forward(x)) }
	y = m.Forward(x)
	ZeroGrads(m)
	dx := m.Backward(y)
	for _, idx := range []int{0, 9, 17} {
		want := numericGrad(x.Data, idx, eval)
		if got := float64(dx.Data[idx]); math.Abs(got-want) > 2e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("MLP dx[%d] = %v want %v", idx, got, want)
		}
	}
	// Spot-check a weight gradient in the first layer.
	p := m.Params()[0]
	want := numericGrad(p.Value.Data, 3, eval)
	if got := float64(p.Grad.Data[3]); math.Abs(got-want) > 2e-2*math.Max(1, math.Abs(want)) {
		t.Fatalf("MLP dW[3] = %v want %v", got, want)
	}
}

func TestMLPSigmoidOutputRange(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := NewMLP([]int{4, 8, 1}, true, rng)
	x := tensor.New(16, 4)
	rng.FillUniform(x.Data, 3)
	y := m.Forward(x)
	for _, v := range y.Data {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid MLP output out of range: %v", v)
		}
	}
}

func TestMLPCopyParamsFrom(t *testing.T) {
	rng := tensor.NewRNG(6)
	a := NewMLP([]int{3, 5, 1}, false, rng)
	b := NewMLP([]int{3, 5, 1}, false, tensor.NewRNG(7))
	b.CopyParamsFrom(a)
	x := tensor.New(2, 3)
	rng.FillUniform(x.Data, 1)
	ya, yb := a.Forward(x), b.Forward(x)
	if ya.MaxAbsDiff(yb) != 0 {
		t.Fatal("CopyParamsFrom did not replicate outputs")
	}
}

func TestMLPNumParams(t *testing.T) {
	m := NewMLP([]int{3, 5, 1}, false, tensor.NewRNG(8))
	want := 3*5 + 5 + 5*1 + 1
	if got := m.NumParams(); got != want {
		t.Fatalf("NumParams = %d want %d", got, want)
	}
}

func TestInteractionOutputDim(t *testing.T) {
	it := NewInteraction(8, 3) // 4 features -> 6 pairs
	if got := it.OutputDim(); got != 8+6 {
		t.Fatalf("OutputDim = %d want 14", got)
	}
}

func TestInteractionForwardKnown(t *testing.T) {
	it := NewInteraction(2, 1)
	dense := tensor.FromSlice(1, 2, []float32{1, 2})
	emb := tensor.FromSlice(1, 2, []float32{3, 4})
	out := it.Forward(dense, []*tensor.Matrix{emb})
	// Output = [dense..., dot(emb,dense)] = [1, 2, 11]
	want := []float32{1, 2, 11}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("Interaction forward %v want %v", out.Data, want)
		}
	}
}

func TestInteractionGradCheck(t *testing.T) {
	rng := tensor.NewRNG(9)
	it := NewInteraction(4, 3)
	dense := tensor.New(2, 4)
	rng.FillUniform(dense.Data, 1)
	embs := make([]*tensor.Matrix, 3)
	for i := range embs {
		embs[i] = tensor.New(2, 4)
		rng.FillUniform(embs[i].Data, 1)
	}
	eval := func() float64 { return scalarLoss(it.Forward(dense, embs)) }
	out := it.Forward(dense, embs)
	dDense, dEmbs := it.Backward(out)
	for _, idx := range []int{0, 3, 6} {
		want := numericGrad(dense.Data, idx, eval)
		if got := float64(dDense.Data[idx]); math.Abs(got-want) > 2e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("Interaction dDense[%d] = %v want %v", idx, got, want)
		}
	}
	for ti := range embs {
		for _, idx := range []int{1, 5} {
			want := numericGrad(embs[ti].Data, idx, eval)
			if got := float64(dEmbs[ti].Data[idx]); math.Abs(got-want) > 2e-2*math.Max(1, math.Abs(want)) {
				t.Fatalf("Interaction dEmb[%d][%d] = %v want %v", ti, idx, got, want)
			}
		}
	}
}

func TestBCEWithLogitsKnownValues(t *testing.T) {
	logits := tensor.FromSlice(2, 1, []float32{0, 0})
	loss, grad := BCEWithLogits(logits, []float32{1, 0})
	// loss at z=0 is ln 2 for either label.
	if math.Abs(float64(loss)-math.Ln2) > 1e-6 {
		t.Fatalf("BCEWithLogits loss = %v want ln2", loss)
	}
	if math.Abs(float64(grad.Data[0])+0.25) > 1e-6 || math.Abs(float64(grad.Data[1])-0.25) > 1e-6 {
		t.Fatalf("BCEWithLogits grad = %v want [-0.25, 0.25]", grad.Data)
	}
}

func TestBCEWithLogitsGradCheck(t *testing.T) {
	rng := tensor.NewRNG(10)
	logits := tensor.New(6, 1)
	rng.FillUniform(logits.Data, 2)
	labels := []float32{1, 0, 1, 1, 0, 0}
	eval := func() float64 {
		l, _ := BCEWithLogits(logits, labels)
		return float64(l)
	}
	_, grad := BCEWithLogits(logits, labels)
	for idx := 0; idx < 6; idx++ {
		want := numericGrad(logits.Data, idx, eval)
		if got := float64(grad.Data[idx]); math.Abs(got-want) > 1e-3 {
			t.Fatalf("BCE grad[%d] = %v want %v", idx, got, want)
		}
	}
}

func TestBCEWithLogitsExtremeStable(t *testing.T) {
	logits := tensor.FromSlice(2, 1, []float32{1000, -1000})
	loss, grad := BCEWithLogits(logits, []float32{1, 0})
	if math.IsNaN(float64(loss)) || math.IsInf(float64(loss), 0) {
		t.Fatalf("extreme logits gave loss %v", loss)
	}
	if grad.Data[0] != 0 || grad.Data[1] != 0 {
		t.Fatalf("correct extreme predictions should have ~0 grad, got %v", grad.Data)
	}
}

func TestBCEProbabilityForm(t *testing.T) {
	probs := tensor.FromSlice(2, 1, []float32{0.5, 0.5})
	loss, grad := BCE(probs, []float32{1, 0})
	if math.Abs(float64(loss)-math.Ln2) > 1e-6 {
		t.Fatalf("BCE loss = %v want ln2", loss)
	}
	if math.Abs(float64(grad.Data[0])+1) > 1e-5 || math.Abs(float64(grad.Data[1])-1) > 1e-5 {
		t.Fatalf("BCE grad = %v want [-1, 1]", grad.Data)
	}
	// Clamped extremes must stay finite.
	probs = tensor.FromSlice(2, 1, []float32{0, 1})
	loss, _ = BCE(probs, []float32{1, 0})
	if math.IsInf(float64(loss), 0) || math.IsNaN(float64(loss)) {
		t.Fatalf("BCE at clamped extremes = %v", loss)
	}
}

func TestBCEEmptyBatch(t *testing.T) {
	loss, grad := BCEWithLogits(tensor.New(0, 1), nil)
	if loss != 0 || grad.Rows != 0 {
		t.Fatalf("empty batch loss=%v rows=%d", loss, grad.Rows)
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam("p", 1, 3)
	copy(p.Value.Data, []float32{1, 2, 3})
	copy(p.Grad.Data, []float32{1, 1, 1})
	NewSGD(0.5).Step([]*Param{p})
	want := []float32{0.5, 1.5, 2.5}
	for i := range want {
		if p.Value.Data[i] != want[i] {
			t.Fatalf("SGD value %v want %v", p.Value.Data, want)
		}
		if p.Grad.Data[i] != 0 {
			t.Fatal("SGD Step must zero gradients")
		}
	}
}

func TestSGDTrainsXORishTask(t *testing.T) {
	// A tiny integration test: the MLP should fit a separable toy problem.
	rng := tensor.NewRNG(11)
	m := NewMLP([]int{2, 16, 1}, false, rng)
	opt := NewSGD(0.5)
	x := tensor.FromSlice(4, 2, []float32{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []float32{0, 1, 1, 0}
	var loss float32
	for epoch := 0; epoch < 800; epoch++ {
		logits := m.Forward(x)
		var grad *tensor.Matrix
		loss, grad = BCEWithLogits(logits, labels)
		m.Backward(grad)
		opt.Step(m.Params())
	}
	if loss > 0.1 {
		t.Fatalf("MLP failed to fit XOR: final loss %v", loss)
	}
}

func TestSigmoidSlice(t *testing.T) {
	out := SigmoidSlice([]float32{0})
	if math.Abs(float64(out[0])-0.5) > 1e-6 {
		t.Fatalf("SigmoidSlice(0) = %v", out[0])
	}
}
