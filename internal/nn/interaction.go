package nn

import (
	"repro/internal/tensor"
)

// Interaction is the DLRM dot-product feature-interaction layer. For each
// sample it stacks the bottom-MLP output with the per-table embedding
// vectors, computes all pairwise dot products, and concatenates the strictly
// lower triangle of the Gram matrix after the original dense vector — exactly
// the reference DLRM "dot" interaction.
type Interaction struct {
	Dim       int // feature dimension shared by dense output and embeddings
	NumTables int // number of embedding vectors per sample

	dense *tensor.Matrix
	embs  []*tensor.Matrix

	// Layer-owned buffers, reused per step.
	out    *tensor.Matrix
	dDense *tensor.Matrix
	dEmbs  []*tensor.Matrix
}

// NewInteraction returns an interaction layer over numTables embeddings of
// width dim.
func NewInteraction(dim, numTables int) *Interaction {
	return &Interaction{Dim: dim, NumTables: numTables}
}

// OutputDim returns the width of the interaction output:
// dim + C(numTables+1, 2) pairwise terms.
func (it *Interaction) OutputDim() int {
	f := it.NumTables + 1
	return it.Dim + f*(f-1)/2
}

// Forward consumes the dense tower output (batch×dim) and one embedding
// matrix per table (each batch×dim) and returns the interaction features.
func (it *Interaction) Forward(dense *tensor.Matrix, embs []*tensor.Matrix) *tensor.Matrix {
	if len(embs) != it.NumTables {
		//elrec:invariant the model gathers one embedding per table it was built with
		panic(shapeErr("Interaction expected %d embedding tables, got %d", it.NumTables, len(embs)))
	}
	if dense.Cols != it.Dim {
		//elrec:invariant dense width is fixed by the bottom MLP output size
		panic(shapeErr("Interaction dense width %d want %d", dense.Cols, it.Dim))
	}
	batch := dense.Rows
	for i, e := range embs {
		if e.Rows != batch || e.Cols != it.Dim {
			//elrec:invariant embedding lookups are batch x dim by construction
			panic(shapeErr("Interaction emb[%d] is %dx%d want %dx%d", i, e.Rows, e.Cols, batch, it.Dim))
		}
	}
	it.dense, it.embs = dense, embs

	it.out = tensor.Reuse(it.out, batch, it.OutputDim())
	out := it.out // every element is written below; no zeroing needed
	f := it.NumTables + 1
	for s := 0; s < batch; s++ {
		row := out.Row(s)
		copy(row[:it.Dim], dense.Row(s))
		pos := it.Dim
		// Pairwise dots over the stacked feature list [dense, emb0, emb1, ...],
		// strictly lower triangle (i > j).
		for i := 1; i < f; i++ {
			vi := it.feature(i, s)
			for j := 0; j < i; j++ {
				row[pos] = tensor.Dot(vi, it.feature(j, s))
				pos++
			}
		}
	}
	return out
}

// feature returns stacked feature idx for sample s: 0 is the dense vector,
// 1..NumTables are embeddings.
func (it *Interaction) feature(idx, s int) []float32 {
	if idx == 0 {
		return it.dense.Row(s)
	}
	return it.embs[idx-1].Row(s)
}

// Backward returns gradients for the dense tower output and each embedding
// matrix given the gradient of the interaction output. The returned
// matrices are layer-owned and overwritten by the next Backward.
func (it *Interaction) Backward(dy *tensor.Matrix) (dDense *tensor.Matrix, dEmbs []*tensor.Matrix) {
	if it.dense == nil {
		//elrec:invariant the training step always runs Forward before Backward
		panic(usageErr("Interaction Backward before Forward"))
	}
	batch := it.dense.Rows
	if dy.Rows != batch || dy.Cols != it.OutputDim() {
		//elrec:invariant the upstream gradient mirrors the Forward output shape
		panic(shapeErr("Interaction backward grad %dx%d want %dx%d", dy.Rows, dy.Cols, batch, it.OutputDim()))
	}
	it.dDense = tensor.Reuse(it.dDense, batch, it.Dim)
	dDense = it.dDense
	dDense.Zero()
	if it.dEmbs == nil {
		it.dEmbs = make([]*tensor.Matrix, it.NumTables)
	}
	for i := range it.dEmbs {
		it.dEmbs[i] = tensor.Reuse(it.dEmbs[i], batch, it.Dim)
		it.dEmbs[i].Zero()
	}
	dEmbs = it.dEmbs
	grad := func(idx, s int) []float32 {
		if idx == 0 {
			return dDense.Row(s)
		}
		return dEmbs[idx-1].Row(s)
	}
	f := it.NumTables + 1
	for s := 0; s < batch; s++ {
		row := dy.Row(s)
		tensor.AddTo(dDense.Row(s), row[:it.Dim])
		pos := it.Dim
		for i := 1; i < f; i++ {
			for j := 0; j < i; j++ {
				g := row[pos]
				pos++
				if g == 0 {
					continue
				}
				tensor.Axpy(g, it.feature(j, s), grad(i, s))
				tensor.Axpy(g, it.feature(i, s), grad(j, s))
			}
		}
	}
	return dDense, dEmbs
}
