package nn

import (
	"errors"
	"fmt"
)

// Layer invariants panic with typed errors instead of bare strings so the
// pipeline's recover boundary (ps.PanicError unwraps the panic value) turns
// them into errors callers can classify with errors.Is(err, nn.ErrShape).
var (
	// ErrShape reports operands whose dimensions violate a layer's shape
	// contract (wrong input width, mismatched gradient, probs/labels length
	// skew).
	ErrShape = errors.New("nn: shape mismatch")

	// ErrUsage reports a layer protocol violation: Backward before Forward,
	// copying parameters across mismatched architectures, or constructing a
	// layer from an invalid specification.
	ErrUsage = errors.New("nn: layer misuse")
)

// shapeErr builds an ErrShape-wrapped error for panicking shape checks.
func shapeErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrShape, fmt.Sprintf(format, args...))
}

// usageErr builds an ErrUsage-wrapped error for panicking protocol checks.
func usageErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUsage, fmt.Sprintf(format, args...))
}
