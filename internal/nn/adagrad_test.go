package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestAdagradKnownUpdate(t *testing.T) {
	p := NewParam("p", 1, 2)
	copy(p.Value.Data, []float32{1, 1})
	copy(p.Grad.Data, []float32{2, 0})
	opt := NewAdagrad(0.5)
	opt.Step([]*Param{p})
	// Entry 0: accum=4, update = 0.5*2/sqrt(4) = 0.5 -> 0.5.
	if math.Abs(float64(p.Value.Data[0])-0.5) > 1e-6 {
		t.Fatalf("value[0] = %v want 0.5", p.Value.Data[0])
	}
	// Entry 1: zero gradient, unchanged.
	if p.Value.Data[1] != 1 {
		t.Fatalf("value[1] = %v want 1", p.Value.Data[1])
	}
	if p.Grad.Data[0] != 0 {
		t.Fatal("Step must zero gradients")
	}
	// Second identical step takes a smaller effective step: accum=8,
	// update = 0.5*2/sqrt(8) ≈ 0.3536.
	copy(p.Grad.Data, []float32{2, 0})
	opt.Step([]*Param{p})
	want := 0.5 - 0.5*2/float32(math.Sqrt(8))
	if math.Abs(float64(p.Value.Data[0]-want)) > 1e-5 {
		t.Fatalf("second step value %v want %v", p.Value.Data[0], want)
	}
}

func TestAdagradAccumRoundTrip(t *testing.T) {
	p := NewParam("p", 1, 3)
	opt := NewAdagrad(0.1)
	if opt.Accum(p) != nil {
		t.Fatal("accumulator should be nil before first step")
	}
	copy(p.Grad.Data, []float32{1, 2, 3})
	opt.Step([]*Param{p})
	acc := opt.Accum(p)
	if acc[2] != 9 {
		t.Fatalf("accum = %v", acc)
	}
	opt2 := NewAdagrad(0.1)
	opt2.SetAccum(p, acc)
	if opt2.Accum(p)[1] != 4 {
		t.Fatal("SetAccum did not restore state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched accumulator accepted")
		}
	}()
	opt2.SetAccum(p, []float32{1})
}

func TestAdagradTrainsXOR(t *testing.T) {
	rng := tensor.NewRNG(11)
	m := NewMLP([]int{2, 16, 1}, false, rng)
	opt := NewAdagrad(0.3)
	x := tensor.FromSlice(4, 2, []float32{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []float32{0, 1, 1, 0}
	var loss float32
	for epoch := 0; epoch < 800; epoch++ {
		logits := m.Forward(x)
		var grad *tensor.Matrix
		loss, grad = BCEWithLogits(logits, labels)
		m.Backward(grad)
		opt.Step(m.Params())
	}
	if loss > 0.1 {
		t.Fatalf("Adagrad failed to fit XOR: final loss %v", loss)
	}
}
