package tt

import (
	"runtime/debug"
	"testing"

	"repro/internal/tensor"
)

// trainOneStep runs one Lookup/Update cycle — the steady-state training
// step of the DLRM embedding layer.
func trainOneStep(tbl *Table, indices, offsets []int, dOut *tensor.Matrix, lr float32) {
	out := tbl.Lookup(indices, offsets)
	copy(dOut.Data, out.Data) // L = ½Σout² gradient, no allocation
	tbl.Update(indices, offsets, dOut, lr)
}

// TestLookupUpdateZeroAllocSteadyState pins the tentpole allocation
// contract: after warmup, a full Eff-TT Lookup/Update training step through
// the arena cache performs zero heap allocations.
func TestLookupUpdateZeroAllocSteadyState(t *testing.T) {
	old := tensor.Workers()
	tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(old)
	// The pack pool and arena survive GC in practice, but a collection in
	// the middle of AllocsPerRun could empty the sync.Pool and charge a
	// refill to one run; pause GC for a stable count.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	tbl := newTestTable(t, 400)
	r := tensor.NewRNG(401)
	indices, offsets := randomBatch(r, tbl.NumRows(), 16, 5)
	dOut := tensor.New(len(offsets), tbl.Dim())

	// Warmup: grows every arena buffer and the prefix cache to batch size.
	for i := 0; i < 3; i++ {
		trainOneStep(tbl, indices, offsets, dOut, 0.01)
	}
	allocs := testing.AllocsPerRun(20, func() {
		trainOneStep(tbl, indices, offsets, dOut, 0.01)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Lookup/Update allocated %v times per step, want 0", allocs)
	}
}

// TestForwardZeroAllocVariantsSteadyState checks the arena path stays
// allocation-free across option combinations that exercise the batch-local
// prefix buffer (Deterministic bypass) and the no-dedup identity WorkOf.
func TestForwardZeroAllocVariantsSteadyState(t *testing.T) {
	old := tensor.Workers()
	tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(old)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	cases := []struct {
		name string
		det  bool
		opts Options
	}{
		{"deterministic-bypass", true, EffOptions()},
		{"no-dedup-identity-workof", false, Options{ReusePrefix: true, InAdvanceAgg: true, FusedUpdate: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl := newTestTable(t, 402)
			tbl.Deterministic = tc.det
			tbl.Opts = tc.opts
			r := tensor.NewRNG(403)
			indices, offsets := randomBatch(r, tbl.NumRows(), 16, 5)
			dOut := tensor.New(len(offsets), tbl.Dim())
			for i := 0; i < 3; i++ {
				trainOneStep(tbl, indices, offsets, dOut, 0.01)
			}
			allocs := testing.AllocsPerRun(20, func() {
				trainOneStep(tbl, indices, offsets, dOut, 0.01)
			})
			if allocs != 0 {
				t.Fatalf("steady-state step allocated %v times, want 0", allocs)
			}
		})
	}
}

// TestIdentityWorkOfSkipped pins the satellite: without deduplication the
// forward pass must not materialize an identity WorkOf.
func TestIdentityWorkOfSkipped(t *testing.T) {
	tbl := newTestTable(t, 404)
	tbl.Opts = Options{ReusePrefix: true}
	_, cache := tbl.Forward([]int{3, 3, 9}, []int{0, 2})
	if cache.WorkOf != nil {
		t.Fatalf("WorkOf should be nil (identity) without dedup, got len %d", len(cache.WorkOf))
	}
	if len(cache.WorkIdx) != 3 {
		t.Fatalf("WorkIdx should alias indices, got len %d", len(cache.WorkIdx))
	}
}

// BenchmarkLookupUpdateStep measures the steady-state Eff-TT training step
// through the arena cache (the elrec-bench ttcore experiment's unit).
func BenchmarkLookupUpdateStep(b *testing.B) {
	shape, err := NewShape(50000, 32, 16)
	if err != nil {
		b.Fatal(err)
	}
	tbl := NewTable(shape, tensor.NewRNG(405), 0)
	r := tensor.NewRNG(406)
	indices, offsets := randomBatch(r, tbl.NumRows(), 256, 4)
	dOut := tensor.New(len(offsets), tbl.Dim())
	trainOneStep(tbl, indices, offsets, dOut, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trainOneStep(tbl, indices, offsets, dOut, 0.01)
	}
}

// BenchmarkForwardEff measures the concurrent-safe fresh-cache forward path.
func BenchmarkForwardEff(b *testing.B) {
	shape, err := NewShape(50000, 32, 16)
	if err != nil {
		b.Fatal(err)
	}
	tbl := NewTable(shape, tensor.NewRNG(407), 0)
	r := tensor.NewRNG(408)
	indices, offsets := randomBatch(r, tbl.NumRows(), 256, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Forward(indices, offsets)
	}
}
