package tt

import (
	"fmt"

	"repro/internal/tensor"
)

// bwScratch holds the per-executor intermediates of one backward work item.
type bwScratch struct {
	p12, dP12, dG1, dG2, dG3 []float32
}

func (s *bwScratch) ensure(t *Table) {
	sz := t.Shape.SliceSizes()
	s.p12 = growFloats(s.p12, t.Shape.PrefixSize())
	s.dP12 = growFloats(s.dP12, t.Shape.PrefixSize())
	s.dG1 = growFloats(s.dG1, sz[0])
	s.dG2 = growFloats(s.dG2, sz[1])
	s.dG3 = growFloats(s.dG3, sz[2])
}

// Backward computes TT-core gradients for the batch described by cache and
// applies the SGD update with learning rate lr. The executed path follows
// t.Opts:
//
//   - InAdvanceAgg aggregates dOut into one gradient row per unique index
//     first (Figure 6(b)); otherwise every occurrence of every index runs
//     the full chain-rule multiplications (Figure 6(a), TT-Rec behaviour).
//   - FusedUpdate applies −lr·grad to core slices inside the same pass;
//     otherwise gradients accumulate into full core-sized buffers and a
//     separate optimizer sweep updates the cores (extra memory traffic,
//     exactly the cost the fused kernel removes).
//
// dOut is the gradient of the loss w.r.t. the pooled batch output
// (batch×Dim).
func (t *Table) Backward(cache *ForwardCache, dOut *tensor.Matrix, lr float32) {
	if cache == nil {
		//elrec:invariant Table protocol: Update mirrors the preceding Lookup
		panic("tt: Backward with nil cache")
	}
	if dOut.Rows != len(cache.Offsets) || dOut.Cols != t.Shape.Dim {
		//elrec:invariant Table protocol: Update mirrors the preceding Lookup
		panic(fmt.Sprintf("tt: Backward grad %dx%d want %dx%d", dOut.Rows, dOut.Cols, len(cache.Offsets), t.Shape.Dim))
	}

	var workIdx []int
	var workGrad *tensor.Matrix
	cache.bwSlots = nil
	if t.Opts.InAdvanceAgg {
		workIdx, workGrad = t.aggregateGrads(cache, dOut)
	} else {
		workIdx, workGrad = t.perOccurrenceGrads(cache, dOut)
	}
	t.met.recordBackward(len(cache.Indices), len(workIdx))

	var gradBufs [Dims]*tensor.Matrix
	if !t.Opts.FusedUpdate {
		gradBufs = t.gradBuffers()
	}

	prefixNeeded := cache.PrefixBuf == nil
	var slots []int
	if !prefixNeeded {
		if cache.bwSlots != nil {
			slots = cache.bwSlots // built alongside the dense rebuild
		} else {
			slots = t.slotsFor(cache, workIdx)
		}
	}

	if t.serialItems() {
		cache.bw.ensure(t)
		t.backwardRange(cache, workIdx, workGrad, slots, gradBufs, &cache.bw, lr, 0, len(workIdx))
	} else {
		tensor.ParallelFor(len(workIdx), func(lo, hi int) {
			var s bwScratch
			s.ensure(t)
			t.backwardRange(cache, workIdx, workGrad, slots, gradBufs, &s, lr, lo, hi)
		})
	}

	if !t.Opts.FusedUpdate {
		// Separate optimizer sweep over the full core buffers: the extra
		// read-modify-write traffic the fused path avoids. The sweep
		// rewrites the prefix-source cores wholesale, so every cached
		// prefix product is invalidated at once.
		if t.AdagradEnabled() {
			t.adagradSweep(gradBufs, lr)
		} else {
			for k := 0; k < Dims; k++ {
				tensor.Axpy(-lr, gradBufs[k].Data, t.Cores[k].Data)
			}
		}
		t.bumpAllCoreVersions()
	}
}

// backwardRange runs the chain-rule multiplications and the core update for
// work items [lo,hi). s provides the per-executor scratch.
func (t *Table) backwardRange(cache *ForwardCache, workIdx []int, workGrad *tensor.Matrix, slots []int, gradBufs [Dims]*tensor.Matrix, s *bwScratch, lr float32, lo, hi int) {
	n := t.Shape.ColFactors
	r1, r2 := t.Shape.R1, t.Shape.R2
	for w := lo; w < hi; w++ {
		idx := workIdx[w]
		g := workGrad.Row(w)
		i1, i2, i3 := t.Shape.FactorIndex(idx)

		// Fetch or recompute the forward intermediate P₁₂.
		var pref []float32
		if slots == nil {
			t.computePrefix(i1, i2, s.p12)
			pref = s.p12
		} else {
			pref = cache.PrefixBuf.Row(slots[w])
		}

		// dG₃[i₃] = P₁₂ᵀ · g   (R₂ × n₃), P₁₂ viewed as n₁n₂ × R₂.
		zero(s.dG3)
		tensor.GemmTransAAddInto(r2, n[0]*n[1], n[2], pref, g, s.dG3)
		// dP₁₂ = g · G₃[i₃]ᵀ   (n₁n₂ × R₂).
		zero(s.dP12)
		tensor.GemmTransBAddInto(n[0]*n[1], n[2], r2, g, t.Slice3(i3), s.dP12)
		// dG₂[i₂] = G₁[i₁]ᵀ · dP₁₂  (R₁ × n₂R₂), dP₁₂ viewed as n₁ × n₂R₂.
		zero(s.dG2)
		tensor.GemmTransAAddInto(r1, n[0], n[1]*r2, t.Slice1(i1), s.dP12, s.dG2)
		// dG₁[i₁] = dP₁₂ · G₂[i₂]ᵀ  (n₁ × R₁).
		zero(s.dG1)
		tensor.GemmTransBAddInto(n[0], n[1]*r2, r1, s.dP12, t.Slice2(i2), s.dG1)

		if t.Opts.FusedUpdate {
			t.applyGradSlice(0, i1, s.dG1, lr)
			t.applyGradSlice(1, i2, s.dG2, lr)
			t.applyGradSlice(2, i3, s.dG3, lr)
		} else {
			t.accumSlice(gradBufs[0], 0, i1, s.dG1)
			t.accumSlice(gradBufs[1], 1, i2, s.dG2)
			t.accumSlice(gradBufs[2], 2, i3, s.dG3)
		}
	}
}

// slotsFor returns one reuse-buffer slot per backward work item. When the
// backward work list is the forward work list (the common case) the cached
// slots are reused directly; otherwise (aggregation enabled on a
// non-deduplicated forward) a prefix→slot map recovers them.
//
//elrec:coldpath map recovery only when the backward work list diverges from forward's; the common case returns cached slots
func (t *Table) slotsFor(cache *ForwardCache, workIdx []int) []int {
	if len(workIdx) == len(cache.WorkIdx) {
		same := true
		for i := range workIdx {
			if workIdx[i] != cache.WorkIdx[i] {
				same = false
				break
			}
		}
		if same {
			return cache.PrefixSlots
		}
	}
	byPrefix := make(map[int]int, len(cache.WorkIdx))
	for fw, fidx := range cache.WorkIdx {
		byPrefix[t.Shape.Prefix(fidx)] = cache.PrefixSlots[fw]
	}
	slots := make([]int, len(workIdx))
	for w, idx := range workIdx {
		slot, ok := byPrefix[t.Shape.Prefix(idx)]
		if !ok {
			//elrec:invariant Table protocol: Update mirrors the preceding Lookup
			panic(fmt.Sprintf("tt: prefix of index %d missing from forward cache", idx))
		}
		slots[w] = slot
	}
	return slots
}

// aggregateGrads computes one aggregated gradient row per unique index of
// the batch (in-advance gradient aggregation). When the forward pass already
// deduplicated, its unique structure is reused; otherwise it is built here.
// The gradient matrix lives in the cache arena, so steady-state batches
// reuse its storage.
func (t *Table) aggregateGrads(cache *ForwardCache, dOut *tensor.Matrix) ([]int, *tensor.Matrix) {
	workIdx, workOf := cache.WorkIdx, cache.WorkOf
	if !t.Opts.DedupIndices {
		workIdx, workOf = t.rebuildUnique(cache)
	}
	cache.workGrad = tensor.Reuse(cache.workGrad, len(workIdx), t.Shape.Dim)
	grads := cache.workGrad
	grads.Zero()
	for s := range cache.Offsets {
		start := cache.Offsets[s]
		end := len(cache.Indices)
		if s+1 < len(cache.Offsets) {
			end = cache.Offsets[s+1]
		}
		src := dOut.Row(s)
		for p := start; p < end; p++ {
			tensor.AddTo(grads.Row(workOf[p]), src)
		}
	}
	return workIdx, grads
}

// rebuildUnique constructs the unique-index structure in Backward when the
// forward pass ran per occurrence (DedupIndices off, InAdvanceAgg on). On
// the arena path it reuses the same stamped dense scratch as dedupRows —
// and records each unique index's reuse-buffer slot (first occurrence's
// forward slot) in cache.bwSlots, sparing slotsFor its map fallback — so
// steady-state batches allocate nothing. Fresh caches and huge tables keep
// the map-based rebuild.
//
//elrec:coldpath map rebuild for fresh caches and beyond-cap tables; the arena path amortizes its stamped scratch
func (t *Table) rebuildUnique(c *ForwardCache) ([]int, []int) {
	if !c.arena || t.Shape.Rows > rowDenseCap {
		pos := make(map[int]int, len(c.Indices))
		workIdx := make([]int, 0, len(c.Indices))
		workOf := make([]int, len(c.Indices))
		for p, idx := range c.Indices {
			u, ok := pos[idx]
			if !ok {
				u = len(workIdx)
				pos[idx] = u
				workIdx = append(workIdx, idx)
			}
			workOf[p] = u
		}
		return workIdx, workOf
	}
	if len(c.rowStamp) < t.Shape.Rows {
		c.rowStamp = make([]int64, t.Shape.Rows)
		c.rowSlot = make([]int32, t.Shape.Rows)
	}
	c.seq++ // fresh stamp generation; forward's stamps (if any) expire
	trackSlots := c.PrefixSlots != nil
	c.workIdxBuf = c.workIdxBuf[:0]
	c.workOfBuf = growInts(c.workOfBuf, len(c.Indices))
	c.slotsBuf = c.slotsBuf[:0]
	for p, idx := range c.Indices {
		if c.rowStamp[idx] != c.seq {
			c.rowStamp[idx] = c.seq
			c.rowSlot[idx] = int32(len(c.workIdxBuf))
			c.workIdxBuf = append(c.workIdxBuf, idx)
			if trackSlots {
				c.slotsBuf = append(c.slotsBuf, c.PrefixSlots[p])
			}
		}
		c.workOfBuf[p] = int(c.rowSlot[idx])
	}
	if trackSlots {
		c.bwSlots = c.slotsBuf
	}
	return c.workIdxBuf, c.workOfBuf
}

// perOccurrenceGrads materializes one gradient row per index occurrence
// (no aggregation): occurrence p of sample s receives a copy of dOut[s].
// The copy is the point — TT-Rec stores per-row gradients before reducing.
func (t *Table) perOccurrenceGrads(cache *ForwardCache, dOut *tensor.Matrix) ([]int, *tensor.Matrix) {
	cache.workGrad = tensor.Reuse(cache.workGrad, len(cache.Indices), t.Shape.Dim)
	grads := cache.workGrad
	for s := range cache.Offsets {
		start := cache.Offsets[s]
		end := len(cache.Indices)
		if s+1 < len(cache.Offsets) {
			end = cache.Offsets[s+1]
		}
		for p := start; p < end; p++ {
			copy(grads.Row(p), dOut.Row(s))
		}
	}
	return cache.Indices, grads
}

// accumSlice adds delta into the gradient buffer of core k under the stripe
// lock.
func (t *Table) accumSlice(buf *tensor.Matrix, k, row int, delta []float32) {
	mu := t.lockFor(k, row)
	mu.Lock()
	tensor.AddTo(buf.Row(row), delta)
	mu.Unlock()
}

func zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Lookup runs the forward pass through the table-owned arena cache and
// retains it for a following Update call, satisfying the embedding-table
// interface the DLRM model consumes. Unlike Forward, Lookup is serialized
// by the Table protocol and reuses every intermediate across batches —
// including the returned matrix, which is only valid until the next Lookup
// on this table — making steady-state training steps allocation-free.
//
//elrec:hotpath steady-state TT embedding lookup (paper: zero-alloc training step)
func (t *Table) Lookup(indices, offsets []int) *tensor.Matrix {
	if t.arena == nil {
		//elrec:coldpath one-time arena construction on the first Lookup
		t.arena = &ForwardCache{arena: true}
	}
	out := t.forwardInto(t.arena, indices, offsets)
	t.lastCache = t.arena
	return out
}

// Update applies gradients for the most recent Lookup batch. The batch
// description must match that Lookup call; if it does not (or no Lookup ran)
// a fresh forward pass rebuilds the intermediates.
//
//elrec:hotpath steady-state TT embedding update
func (t *Table) Update(indices, offsets []int, dOut *tensor.Matrix, lr float32) {
	cache := t.lastCache
	if cache == nil || !sameBatch(cache, indices, offsets) {
		//elrec:coldpath cache-miss fallback; the steady state reuses the preceding Lookup's cache
		_, cache = t.Forward(indices, offsets)
	}
	t.lastCache = nil
	t.Backward(cache, dOut, lr)
}

func sameBatch(c *ForwardCache, indices, offsets []int) bool {
	if len(c.Indices) != len(indices) || len(c.Offsets) != len(offsets) {
		return false
	}
	for i := range indices {
		if c.Indices[i] != indices[i] {
			return false
		}
	}
	for i := range offsets {
		if c.Offsets[i] != offsets[i] {
			return false
		}
	}
	return true
}
